//! Consistency checks across crate boundaries: the identifiers, units and
//! orderings that the crates must agree on.

use wattroute::geo::hubs;
use wattroute::prelude::*;

#[test]
fn every_cluster_hub_has_market_parameters_and_prices() {
    let clusters = ClusterSet::akamai_like_nine();
    let model = MarketModel::calibrated();
    for hub in clusters.hub_ids() {
        assert!(model.hub_params(hub).is_some(), "no market calibration for {hub:?}");
        assert!(hubs::hub(hub).rto.has_hourly_market(), "cluster hub {hub:?} must be in a market");
    }
    let generator = PriceGenerator::nine_cluster_default(1);
    let range = HourRange::new(SimHour(0), SimHour(24));
    let prices = generator.realtime_hourly(range);
    for hub in clusters.hub_ids() {
        assert!(prices.for_hub(hub).is_some());
    }
}

#[test]
fn simulation_hub_labels_match_cluster_labels() {
    let clusters = ClusterSet::akamai_like_nine();
    assert_eq!(clusters.labels(), hubs::SIMULATION_HUB_LABELS.to_vec());
    let sim_hubs = hubs::simulation_hubs();
    for (cluster, hub) in clusters.clusters().iter().zip(sim_hubs.iter()) {
        assert_eq!(cluster.hub, hub.id);
    }
}

#[test]
fn every_market_hub_has_model_parameters() {
    let model = MarketModel::calibrated();
    for hub in hubs::all_hubs() {
        assert!(model.hub_params(hub.id).is_some(), "missing calibration for {:?}", hub.id);
    }
    assert_eq!(model.hub_ids().len(), hubs::all_hubs().len());
}

#[test]
fn workload_states_align_with_geo_states() {
    let trace =
        SyntheticWorkloadConfig::default().generate(HourRange::new(SimHour(0), SimHour(24)));
    assert_eq!(trace.states.len(), UsState::all().count());
    for state in &trace.states {
        // Each state has a population and a centroid in the geo tables.
        assert!(state.population() > 0);
        assert!(state.centroid().lat.is_finite());
    }
}

#[test]
fn figure_15_energy_sweep_is_consistent_with_elasticity_ordering() {
    use wattroute::energy::model::ClusterPowerModel;
    let sweep = EnergyModelParams::figure_15_sweep();
    let elasticities: Vec<f64> =
        sweep.iter().map(|(_, p)| ClusterPowerModel::new(*p, 1000).elasticity_ratio()).collect();
    for pair in elasticities.windows(2) {
        assert!(pair[0] <= pair[1] + 1e-9, "sweep must be ordered from elastic to inelastic");
    }
    // The extremes match the paper's descriptions: a fully proportional
    // cluster idles at ~0 while the (65%, 2.0) cluster idles above 80% of
    // its peak draw.
    assert!(elasticities[0] < 0.05);
    assert!(elasticities[6] > 0.8);
}

#[test]
fn csv_roundtrip_preserves_simulation_results() {
    // Exporting prices to CSV and re-importing them must not change the
    // simulator's answer (beyond the 4-decimal rounding of the format).
    let start = SimHour::from_date(2008, 12, 19);
    let range = HourRange::new(start, start.plus_hours(48));
    let scenario = Scenario::custom_window(55, range);
    let baseline_original = scenario.baseline_report();

    let csv = wattroute::market::csv::to_csv(&scenario.prices);
    let reimported = wattroute::market::csv::from_csv(&csv).unwrap();
    let mut scenario2 = scenario.clone();
    scenario2.prices = reimported;
    let baseline_roundtrip = scenario2.baseline_report();

    let relative = (baseline_original.total_cost_dollars - baseline_roundtrip.total_cost_dollars)
        .abs()
        / baseline_original.total_cost_dollars;
    assert!(relative < 1e-4, "CSV roundtrip changed the answer by {relative}");
}

#[test]
fn units_are_coherent_from_watts_to_dollars() {
    // A cluster of 1000 servers at 250 W peak, fully utilised for one hour
    // in a PUE-1.0 facility, at $60/MWh, costs 0.25 MWh * $60 = $15.
    use wattroute::energy::cost::energy_cost_dollars;
    use wattroute::energy::model::ClusterPowerModel;
    let params = EnergyModelParams::new(250.0, 0.0, 1.0);
    let model = ClusterPowerModel::new(params, 1000);
    let wh = model.energy_watt_hours(1.0, 1.0);
    let dollars = energy_cost_dollars(wh, 60.0);
    assert!((wh - 250_000.0).abs() < 1e-6);
    assert!((dollars - 15.0).abs() < 1e-9);
}
