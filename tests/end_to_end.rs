//! End-to-end integration tests spanning the whole workspace: prices →
//! traffic → routing → energy → dollars.

use wattroute::prelude::*;

fn short_range() -> HourRange {
    let start = SimHour::from_date(2008, 12, 19);
    HourRange::new(start, start.plus_hours(3 * 24))
}

#[test]
fn full_pipeline_produces_consistent_reports() {
    let scenario = Scenario::custom_window(2024, short_range())
        .with_energy(EnergyModelParams::optimistic_future());

    let baseline = scenario.baseline_report();
    let mut optimizer = PriceConsciousPolicy::with_distance_threshold(1500.0);
    let optimized = scenario.execute(&mut optimizer, RunOptions::new());

    // Reports are internally consistent.
    for report in [&baseline, &optimized] {
        assert_eq!(report.steps, scenario.trace.num_steps());
        assert_eq!(report.clusters.len(), scenario.clusters.len());
        let per_cluster: f64 = report.clusters.iter().map(|c| c.cost_dollars).sum();
        assert!((per_cluster - report.total_cost_dollars).abs() < 1e-6 * report.total_cost_dollars);
        let energy: f64 = report.clusters.iter().map(|c| c.energy_mwh).sum();
        assert!((energy - report.total_energy_mwh).abs() < 1e-9 + 1e-6 * report.total_energy_mwh);
        assert!(report.mean_distance_km > 0.0);
        assert!(report.p99_distance_km >= report.mean_distance_km);
    }

    // The total hits served are identical across policies (routing moves
    // demand, it never creates or destroys it).
    let hits_baseline: f64 = baseline.clusters.iter().map(|c| c.total_hits).sum();
    let hits_optimized: f64 = optimized.clusters.iter().map(|c| c.total_hits).sum();
    assert!((hits_baseline - hits_optimized).abs() < 1e-6 * hits_baseline);
    assert!((hits_baseline - scenario.trace.total_us_hits()).abs() < 1e-6 * hits_baseline);

    // And the optimizer saves money with a fully elastic energy model.
    assert!(optimized.total_cost_dollars < baseline.total_cost_dollars);
}

#[test]
fn bandwidth_constrained_run_respects_baseline_p95() {
    let scenario = Scenario::custom_window(7, short_range())
        .with_energy(EnergyModelParams::optimistic_future());
    let baseline = scenario.baseline_report();
    let caps: Vec<f64> = baseline.clusters.iter().map(|c| c.p95_hits_per_sec).collect();

    let mut optimizer = PriceConsciousPolicy::with_distance_threshold(2500.0);
    let constrained = scenario.execute(
        &mut optimizer,
        RunOptions::new().with_config(scenario.config.clone().with_bandwidth_caps(caps.clone())),
    );
    assert!(constrained.bandwidth_constrained);
    assert!(constrained.respects_p95_caps(&caps, 0.05));

    let relaxed = scenario.execute(&mut optimizer, RunOptions::new());
    assert!(relaxed.total_cost_dollars <= constrained.total_cost_dollars + 1e-6);
}

#[test]
fn different_policies_are_ranked_sensibly_under_full_elasticity() {
    let scenario = Scenario::custom_window(99, short_range())
        .with_energy(EnergyModelParams::optimistic_future());
    let baseline = scenario.baseline_report();

    let nearest = scenario.execute(&mut NearestClusterPolicy::new(), RunOptions::new());
    let mut price = PriceConsciousPolicy::unconstrained_distance();
    let price_report = scenario.execute(&mut price, RunOptions::new());
    let mut static_policy = scenario.static_cheapest_policy();
    let static_report = scenario.execute(&mut static_policy, RunOptions::new());

    // Nearest routing is cheaper than the Akamai-like baseline (shorter
    // allocation is also more concentrated), and pure price routing is the
    // cheapest dynamic policy. The static cheapest-hub placement also beats
    // the baseline over this window (the dynamic-vs-static ordering is a
    // long-horizon claim, pinned in tests/paper_claims.rs instead).
    assert!(price_report.total_cost_dollars < baseline.total_cost_dollars);
    assert!(price_report.total_cost_dollars <= nearest.total_cost_dollars);
    assert!(static_report.total_cost_dollars < baseline.total_cost_dollars);

    // Distances: price routing travels farther than nearest routing.
    assert!(price_report.mean_distance_km >= nearest.mean_distance_km);
}

#[test]
fn carbon_and_joint_policies_run_end_to_end() {
    let scenario = Scenario::custom_window(5, short_range());
    let intensities = vec![0.5; scenario.clusters.len()];
    let mut carbon = CarbonAwarePolicy::new(1500.0, intensities);
    let carbon_report = scenario.execute(&mut carbon, RunOptions::new());
    assert!(carbon_report.total_cost_dollars > 0.0);

    let mut joint = JointCostPolicy::new(0.01);
    let joint_report = scenario.execute(&mut joint, RunOptions::new());
    assert!(joint_report.total_cost_dollars > 0.0);
    assert_eq!(joint_report.policy, "joint-price-distance");
}

#[test]
fn reports_serialize_to_json() {
    let scenario = Scenario::custom_window(3, short_range());
    let report = scenario.baseline_report();
    let json = report.to_json();
    assert!(json.contains("\"policy\""));
    let back: wattroute::report::SimulationReport =
        wattroute::report::SimulationReport::from_json(&json).expect("report deserializes");
    assert_eq!(back.policy, report.policy);
    assert!((back.total_cost_dollars - report.total_cost_dollars).abs() < 1e-9);
}
