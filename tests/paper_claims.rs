//! Integration tests pinning the paper's qualitative claims: the directions
//! and orderings its evaluation reports must hold on the reproduction.
//! (Exact magnitudes depend on the synthetic calibration and are recorded in
//! EXPERIMENTS.md rather than asserted here.)

use wattroute::market::analysis;
use wattroute::market::differential::Differential;
use wattroute::prelude::*;

fn window(days: u64) -> HourRange {
    let start = SimHour::from_date(2008, 12, 19);
    HourRange::new(start, start.plus_hours(days * 24))
}

/// §6.2 / Figure 15: savings grow with energy elasticity, and obeying the
/// 95/5 constraints reduces but does not eliminate them.
#[test]
fn savings_increase_with_elasticity_and_shrink_under_95_5() {
    let elastic =
        Scenario::custom_window(1, window(4)).with_energy(EnergyModelParams::optimistic_future());
    let google =
        Scenario::custom_window(1, window(4)).with_energy(EnergyModelParams::google_2009());

    let cmp_elastic = elastic.compare_price_conscious(1500.0);
    let cmp_google = google.compare_price_conscious(1500.0);

    let elastic_relaxed = cmp_elastic.alternatives[0].savings_percent_vs(&cmp_elastic.baseline);
    let elastic_strict = cmp_elastic.alternatives[1].savings_percent_vs(&cmp_elastic.baseline);
    let google_relaxed = cmp_google.alternatives[0].savings_percent_vs(&cmp_google.baseline);

    assert!(
        elastic_relaxed > 10.0,
        "fully elastic relaxed savings should be large, got {elastic_relaxed:.1}%"
    );
    assert!(
        elastic_relaxed > google_relaxed + 3.0,
        "savings must grow with elasticity: {elastic_relaxed:.1}% vs {google_relaxed:.1}%"
    );
    assert!(elastic_strict > 0.0, "following 95/5 must not eliminate savings entirely");
    assert!(elastic_strict < elastic_relaxed, "following 95/5 must reduce savings");
    assert!(google_relaxed > -0.5, "even at Google elasticity the optimizer should not lose money");
}

/// §6.2 / Figures 16-17: larger distance thresholds mean lower cost and
/// longer client-server distances.
#[test]
fn cost_falls_and_distance_rises_with_the_threshold() {
    let scenario =
        Scenario::custom_window(3, window(4)).with_energy(EnergyModelParams::optimistic_future());
    let baseline = scenario.baseline_report();

    let mut last_cost = f64::INFINITY;
    let mut costs = Vec::new();
    let mut distances = Vec::new();
    for threshold in [0.0, 1000.0, 2500.0] {
        let mut policy = PriceConsciousPolicy::with_distance_threshold(threshold);
        let report = scenario.execute(&mut policy, RunOptions::new());
        costs.push(report.normalized_cost_vs(&baseline));
        distances.push(report.mean_distance_km);
        assert!(report.normalized_cost_vs(&baseline) <= last_cost + 1e-9);
        last_cost = report.normalized_cost_vs(&baseline);
    }
    assert!(costs[2] < costs[0], "unconstrained threshold must be cheaper than nearest routing");
    assert!(
        distances[2] > distances[0],
        "savings are not free: distances must grow, {distances:?}"
    );
}

/// §6.3 / Figure 18: the dynamic price optimizer beats the static
/// cheapest-market placement over a long horizon.
#[test]
fn dynamic_beats_static_over_a_long_horizon() {
    let start = SimHour::from_date(2008, 1, 1);
    let range = HourRange::new(start, start.plus_hours(60 * 24));
    let scenario =
        Scenario::synthetic_over(17, range).with_energy(EnergyModelParams::optimistic_future());
    let baseline = scenario.baseline_report();

    let mut dynamic = PriceConsciousPolicy::unconstrained_distance();
    let dynamic_savings =
        scenario.execute(&mut dynamic, RunOptions::new()).savings_percent_vs(&baseline);
    let mut static_policy = scenario.static_cheapest_policy();
    let static_savings =
        scenario.execute(&mut static_policy, RunOptions::new()).savings_percent_vs(&baseline);

    assert!(dynamic_savings > 0.0);
    assert!(
        dynamic_savings > static_savings,
        "dynamic ({dynamic_savings:.1}%) must beat static ({static_savings:.1}%)"
    );
}

/// §6.4 / Figure 20: reacting late to prices costs money.
#[test]
fn reaction_delay_increases_cost() {
    let start = SimHour::from_date(2008, 5, 1);
    let range = HourRange::new(start, start.plus_hours(45 * 24));
    let scenario =
        Scenario::synthetic_over(23, range).with_energy(EnergyModelParams::optimistic_future());

    let mut policy = PriceConsciousPolicy::with_distance_threshold(1500.0);
    let immediate = scenario
        .execute(
            &mut policy,
            RunOptions::new().with_config(scenario.config.clone().with_reaction_delay(0)),
        )
        .total_cost_dollars;
    let delayed_12h = scenario
        .execute(
            &mut policy,
            RunOptions::new().with_config(scenario.config.clone().with_reaction_delay(12)),
        )
        .total_cost_dollars;
    assert!(
        delayed_12h > immediate,
        "a 12-hour stale view of prices must cost more: {delayed_12h:.0} vs {immediate:.0}"
    );
}

/// §3.2 / Figure 8: same-RTO hub pairs are better correlated than cross-RTO
/// pairs, and California's two hubs are tightly coupled.
#[test]
fn correlation_structure_matches_section_3() {
    let generator = PriceGenerator::new(MarketModel::calibrated(), 31);
    let range = HourRange::new(SimHour::from_date(2007, 1, 1), SimHour::from_date(2007, 7, 1));
    let prices = generator.realtime_hourly(range);
    let pairs = analysis::pairwise_correlations(&prices);
    let summary = analysis::correlation_summary(&pairs).unwrap();
    assert!(summary.mean_same_rto > summary.mean_cross_rto);
    assert!(summary.same_rto_above_06 > summary.cross_rto_above_06);
}

/// §3.3 / Figure 10: the cross-country PaloAlto-Virginia differential is
/// roughly zero-mean and dynamically exploitable, while Boston-NYC is skewed
/// toward Boston being cheaper.
#[test]
fn differential_shapes_match_section_3() {
    let generator = PriceGenerator::new(
        MarketModel::calibrated().restricted_to(&[
            HubId::PaloAltoCa,
            HubId::RichmondVa,
            HubId::BostonMa,
            HubId::NewYorkNy,
        ]),
        37,
    );
    let range = HourRange::new(SimHour::from_date(2006, 1, 1), SimHour::from_date(2006, 12, 1));
    let prices = generator.realtime_hourly(range);

    let pa_va = Differential::between(
        prices.for_hub(HubId::PaloAltoCa).unwrap(),
        prices.for_hub(HubId::RichmondVa).unwrap(),
    )
    .unwrap();
    assert!(pa_va.is_dynamically_exploitable(0.15), "{:?}", pa_va.stats());

    let bos_nyc = Differential::between(
        prices.for_hub(HubId::BostonMa).unwrap(),
        prices.for_hub(HubId::NewYorkNy).unwrap(),
    )
    .unwrap();
    let stats = bos_nyc.stats().unwrap();
    assert!(
        stats.mean < 0.0,
        "Boston should be cheaper than NYC on average, mean = {}",
        stats.mean
    );
    assert!(
        stats.fraction_b_cheaper_by_threshold > 0.05,
        "but NYC should still be meaningfully cheaper part of the time ({:.2})",
        stats.fraction_b_cheaper_by_threshold
    );
}
