//! Carbon-aware routing (§8 "Environmental Cost"): route requests toward the
//! grids whose current generation mix is cleanest, and compare the carbon
//! and dollar outcomes with price-conscious and distance-optimal routing.
//!
//! ```sh
//! cargo run --release --example carbon_aware
//! ```

use wattroute::market::auction::{Auction, DemandBid};
use wattroute::prelude::*;

/// Derive an hourly carbon intensity (tCO₂/MWh) per cluster hub from the
/// supply-stack model: higher regional demand pushes dirtier marginal units
/// online. We reuse each hub's (normalised) price as the demand proxy.
fn carbon_intensity_for(price: f64) -> f64 {
    // Map the price level to a load factor on a typical regional stack, then
    // read the dispatched mix's intensity off the auction model.
    let load_factor = ((price - 20.0) / 100.0).clamp(0.1, 0.95);
    let mut auction = Auction::with_typical_stack(1000.0);
    auction.bid(DemandBid { quantity_mw: 1000.0 * load_factor, max_price: None });
    auction.clear().carbon_intensity
}

fn main() {
    let start = SimHour::from_date(2008, 6, 1);
    let range = HourRange::new(start, start.plus_hours(7 * 24));
    let scenario =
        Scenario::custom_window(13, range).with_energy(EnergyModelParams::optimistic_future());

    let baseline = scenario.baseline_report();

    // Price-conscious routing.
    let mut price_policy = PriceConsciousPolicy::with_distance_threshold(1500.0);
    let price_report = scenario.execute(&mut price_policy, RunOptions::new());

    // Carbon-aware routing: the policy needs per-cluster intensities; we use
    // the scenario's mean prices as a (stable) proxy for each grid's typical
    // position on its supply stack over the window.
    let intensities: Vec<f64> =
        scenario.mean_prices().iter().map(|p| carbon_intensity_for(*p)).collect();
    let mut carbon_policy = CarbonAwarePolicy::new(1500.0, intensities.clone());
    let carbon_report = scenario.execute(&mut carbon_policy, RunOptions::new());

    // Estimate tons of CO₂ for a report: energy per cluster × intensity.
    let tons = |report: &wattroute::report::SimulationReport| -> f64 {
        report.clusters.iter().zip(&intensities).map(|(c, i)| c.energy_mwh * i).sum()
    };

    println!("Seven-day comparison on the nine-cluster deployment (fully elastic energy):\n");
    println!(
        "{:<28} {:>12} {:>12} {:>14} {:>12}",
        "policy", "cost $", "tCO2", "mean dist km", "savings %"
    );
    for (name, report) in [
        (baseline.policy.as_str(), &baseline),
        (price_report.policy.as_str(), &price_report),
        ("carbon-aware", &carbon_report),
    ] {
        println!(
            "{:<28} {:>12.0} {:>12.1} {:>14.0} {:>12.1}",
            name,
            report.total_cost_dollars,
            tons(report),
            report.mean_distance_km,
            report.savings_percent_vs(&baseline)
        );
    }

    println!("\nPer-cluster grid carbon intensity used (tCO2/MWh):");
    for (cluster, i) in scenario.clusters.clusters().iter().zip(&intensities) {
        println!("  {:>4}: {:.2}", cluster.label, i);
    }
    println!(
        "\nThe carbon-aware policy shifts load toward cleaner grids even when they are not the"
    );
    println!(
        "cheapest, trading a little of the dollar savings for a lower footprint — the trade-off"
    );
    println!("§8 of the paper sketches.");
}
