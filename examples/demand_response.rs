//! Selling flexibility (§7 of the paper): negawatt bids and triggered
//! demand-response programs for an energy-elastic cluster fleet.
//!
//! ```sh
//! cargo run --release --example demand_response
//! ```

use wattroute::market::auction::{Auction, DemandBid};
use wattroute::market::demand_response::{simulate_program, Aggregator, DemandResponseProgram};
use wattroute::prelude::*;

fn main() {
    // 1. Negawatts in the day-ahead auction: a data center offering a load
    //    reduction moderates the clearing price for everyone.
    println!("== Negawatt bids in a day-ahead auction ==\n");
    let mut auction = Auction::with_typical_stack(5_000.0); // a 5 GW region
    auction.bid(DemandBid { quantity_mw: 4_700.0, max_price: None });
    let before = auction.clear();
    println!(
        "clearing price with full load:        ${:.0}/MWh (carbon {:.2} t/MWh)",
        before.clearing_price, before.carbon_intensity
    );
    for negawatts in [50.0, 150.0, 400.0] {
        let after = auction.clear_with_negawatts(negawatts);
        println!(
            "clearing price after {negawatts:>4.0} MW negawatt bid: ${:.0}/MWh",
            after.clearing_price
        );
    }

    // 2. A triggered demand-response program: how much would each cluster of
    //    the nine-hub deployment earn by enrolling its flexible load?
    println!("\n== Triggered demand response, one year, nine clusters ==\n");
    let clusters = ClusterSet::akamai_like_nine();
    let generator = PriceGenerator::nine_cluster_default(2009);
    let range = HourRange::new(SimHour::from_date(2008, 1, 1), SimHour::from_date(2009, 1, 1));
    let prices = generator.realtime_hourly(range);
    let program = DemandResponseProgram::default();
    println!(
        "program: ${}/kW-month capacity + ${}/MWh during events, trigger ${}/MWh, cap {} h/month",
        program.capacity_payment_per_kw_month,
        program.event_energy_payment_per_mwh,
        program.event_trigger_price,
        program.max_event_hours_per_month
    );
    println!();

    let mut outcomes = Vec::new();
    let mut total = 0.0;
    for cluster in clusters.clusters() {
        // Enroll the flexible half of the cluster's peak power draw.
        let peak_mw = cluster.servers as f64 * 250.0 / 1.0e6;
        let curtailable_mw = peak_mw * 0.5;
        let series = prices.for_hub(cluster.hub).unwrap();
        let outcome = simulate_program(&program, series, curtailable_mw);
        println!(
            "  {:>4}: {:>5.1} MW enrolled, {:>3} event hours, revenue ${:>9.0} (capacity ${:>8.0} + events ${:>8.0})",
            cluster.label,
            curtailable_mw,
            outcome.event_hours,
            outcome.total_revenue(),
            outcome.capacity_revenue,
            outcome.event_revenue
        );
        total += outcome.total_revenue();
        outcomes.push(outcome);
    }
    println!("\n  fleet total: ${total:.0}/year");

    // 3. Going through an aggregator (the EnerNOC model).
    let aggregator = Aggregator::new(0.25);
    println!(
        "  via an aggregator taking 25%: participants keep ${:.0}/year",
        aggregator.participant_revenue(&outcomes)
    );
    println!(
        "\nDemand response pays even where wholesale markets (and price differentials) do not"
    );
    println!("exist — it monetises the same elasticity the price-conscious router exploits.");
}
