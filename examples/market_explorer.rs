//! Explore the simulated wholesale electricity markets: per-hub statistics,
//! geographic correlation, and the differentials that make dynamic routing
//! profitable.
//!
//! ```sh
//! cargo run --release --example market_explorer
//! ```

use wattroute::market::analysis;
use wattroute::market::differential::Differential;
use wattroute::prelude::*;

fn main() {
    let generator = PriceGenerator::new(MarketModel::calibrated(), 7);
    let range = HourRange::new(SimHour::from_date(2008, 1, 1), SimHour::from_date(2008, 7, 1));
    let prices = generator.realtime_hourly(range);

    println!("== Per-hub price statistics (1% trimmed), Jan-Jun 2008 ==\n");
    println!("{:<22} {:>6} {:>8} {:>8} {:>8}", "hub", "RTO", "mean", "stdev", "kurt");
    let mut rows: Vec<_> = prices.series.iter().filter_map(analysis::hub_price_stats).collect();
    rows.sort_by(|a, b| a.trimmed_mean.partial_cmp(&b.trimmed_mean).unwrap());
    for row in &rows {
        let hub = wattroute::geo::hubs::hub(row.hub);
        println!(
            "{:<22} {:>6} {:>8.1} {:>8.1} {:>8.1}",
            hub.city,
            row.rto.abbreviation(),
            row.trimmed_mean,
            row.trimmed_std_dev,
            row.trimmed_kurtosis
        );
    }

    println!("\n== Correlation structure (Figure 8) ==\n");
    let pairs = analysis::pairwise_correlations(&prices);
    let summary = analysis::correlation_summary(&pairs).unwrap();
    println!(
        "same-RTO pairs:  mean r = {:.2}  ({:.0}% above 0.6, n = {})",
        summary.mean_same_rto,
        summary.same_rto_above_06 * 100.0,
        summary.n_same
    );
    println!(
        "cross-RTO pairs: mean r = {:.2}  ({:.0}% above 0.6, n = {})",
        summary.mean_cross_rto,
        summary.cross_rto_above_06 * 100.0,
        summary.n_cross
    );

    println!("\n== The most exploitable hub pairs ==\n");
    let mut exploitable: Vec<(String, DifferentialStats)> = Vec::new();
    for (i, a) in prices.series.iter().enumerate() {
        for b in prices.series.iter().skip(i + 1) {
            if let Some(d) = Differential::between(a, b) {
                if let Some(stats) = d.stats() {
                    if d.is_dynamically_exploitable(0.15) {
                        let name = format!(
                            "{} / {}",
                            wattroute::geo::hubs::hub(a.hub).code,
                            wattroute::geo::hubs::hub(b.hub).code
                        );
                        exploitable.push((name, stats));
                    }
                }
            }
        }
    }
    exploitable.sort_by(|a, b| b.1.std_dev.partial_cmp(&a.1.std_dev).unwrap());
    println!(
        "{} pairs where each side is cheaper by >$5/MWh at least 15% of the time:",
        exploitable.len()
    );
    for (name, stats) in exploitable.iter().take(15) {
        println!(
            "  {:<22} mean {:+6.1}  sd {:5.1}  A-cheaper {:3.0}%",
            name,
            stats.mean,
            stats.std_dev,
            stats.fraction_a_cheaper * 100.0
        );
    }

    println!("\n== Export ==");
    let csv = wattroute::market::csv::to_csv(&prices);
    println!(
        "CSV export of this price set would be {:.1} MB ({} rows); use wattroute_market::csv to",
        csv.len() as f64 / 1.0e6,
        csv.lines().count() - 1
    );
    println!("load real RTO archives in the same format.");
}
