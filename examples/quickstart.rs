//! Quickstart: generate prices and traffic, run the price-conscious router,
//! and report the savings against an Akamai-like baseline.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use wattroute::prelude::*;

fn main() {
    // One week of the turn-of-2008/2009 window keeps the example fast; the
    // bench harness (`crates/bench/src/bin/`) runs the paper's full windows.
    let start = SimHour::from_date(2008, 12, 19);
    let range = HourRange::new(start, start.plus_hours(7 * 24));
    let scenario =
        Scenario::custom_window(42, range).with_energy(EnergyModelParams::optimistic_future());

    println!(
        "Deployment: {} clusters, {} servers total",
        scenario.clusters.len(),
        scenario.clusters.total_servers()
    );
    println!(
        "Traffic:    {} five-minute steps, US peak {:.2} M hits/s",
        scenario.trace.num_steps(),
        scenario.trace.peak_us_hits_per_sec() / 1e6
    );

    // 1. The baseline: an Akamai-like, distance-driven allocation.
    let baseline = scenario.baseline_report();
    println!("\nBaseline ({}):", baseline.policy);
    println!("  electricity cost: ${:.0}", baseline.total_cost_dollars);
    println!("  energy:           {:.1} MWh", baseline.total_energy_mwh);
    println!(
        "  mean distance:    {:.0} km (p99 {:.0} km)",
        baseline.mean_distance_km, baseline.p99_distance_km
    );

    // 2. The paper's price-conscious optimizer at a 1500 km distance threshold.
    let mut optimizer = PriceConsciousPolicy::with_distance_threshold(1500.0);
    let optimized = scenario.execute(&mut optimizer, RunOptions::new());
    println!("\nPrice-conscious routing (1500 km threshold, 95/5 relaxed):");
    println!("  electricity cost: ${:.0}", optimized.total_cost_dollars);
    println!("  savings:          {:.1}%", optimized.savings_percent_vs(&baseline));
    println!(
        "  mean distance:    {:.0} km (p99 {:.0} km)",
        optimized.mean_distance_km, optimized.p99_distance_km
    );

    // 3. Same policy, but never exceeding the baseline's 95th-percentile
    //    per-cluster load (the 95/5 bandwidth billing constraint).
    let caps = scenario.bandwidth_caps_from_baseline();
    let constrained = scenario.execute(
        &mut optimizer,
        RunOptions::new().with_config(scenario.config.clone().with_bandwidth_caps(caps)),
    );
    println!("\nPrice-conscious routing (following the original 95/5 constraints):");
    println!("  electricity cost: ${:.0}", constrained.total_cost_dollars);
    println!("  savings:          {:.1}%", constrained.savings_percent_vs(&baseline));

    println!("\nPer-cluster cost change vs the baseline (relaxed run):");
    for (label, change) in optimized.per_cluster_cost_change_vs(&baseline) {
        println!("  {label:>4}: {change:+6.1}%");
    }
}
