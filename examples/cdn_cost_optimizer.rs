//! A CDN operator's view: sweep energy-elasticity assumptions and distance
//! thresholds to decide whether price-conscious routing is worth deploying.
//!
//! ```sh
//! cargo run --release --example cdn_cost_optimizer
//! ```

use wattroute::prelude::*;

fn main() {
    let start = SimHour::from_date(2008, 12, 19);
    let range = HourRange::new(start, start.plus_hours(10 * 24));

    println!("== How much does energy elasticity matter? ==");
    println!("(ten-day window, 1500 km distance threshold, savings vs Akamai-like baseline)\n");
    println!("{:<28} {:>16} {:>16}", "energy model (idle, PUE)", "relax 95/5", "follow 95/5");
    for (label, params) in EnergyModelParams::figure_15_sweep() {
        let scenario = Scenario::custom_window(7, range).with_energy(params);
        let cmp = scenario.compare_price_conscious(1500.0);
        println!(
            "{:<28} {:>15.1}% {:>15.1}%",
            label,
            cmp.alternatives[0].savings_percent_vs(&cmp.baseline),
            cmp.alternatives[1].savings_percent_vs(&cmp.baseline),
        );
    }

    println!("\n== How far are we willing to send clients? ==");
    println!("(fully elastic model; cost normalized to the baseline)\n");
    let scenario =
        Scenario::custom_window(7, range).with_energy(EnergyModelParams::optimistic_future());
    let baseline = scenario.baseline_report();
    println!(
        "{:<22} {:>12} {:>14} {:>12}",
        "distance threshold", "norm. cost", "mean dist km", "p99 dist km"
    );
    for threshold in [0.0, 500.0, 1000.0, 1500.0, 2000.0, 2500.0] {
        let mut policy = PriceConsciousPolicy::with_distance_threshold(threshold);
        let report = scenario.execute(&mut policy, RunOptions::new());
        println!(
            "{:<22} {:>12.3} {:>14.0} {:>12.0}",
            format!("{threshold:.0} km"),
            report.normalized_cost_vs(&baseline),
            report.mean_distance_km,
            report.p99_distance_km
        );
    }

    println!("\n== Does a static move to the cheapest market do as well? ==\n");
    let mut static_policy = scenario.static_cheapest_policy();
    let static_report = scenario.execute(&mut static_policy, RunOptions::new());
    let mut dynamic = PriceConsciousPolicy::unconstrained_distance();
    let dynamic_report = scenario.execute(&mut dynamic, RunOptions::new());
    println!(
        "static cheapest-hub:     {:>5.1}% savings",
        static_report.savings_percent_vs(&baseline)
    );
    println!(
        "dynamic (unconstrained): {:>5.1}% savings",
        dynamic_report.savings_percent_vs(&baseline)
    );
    println!("\nThe dynamic router wins because price differentials keep reversing (Figure 9-13).");
}
