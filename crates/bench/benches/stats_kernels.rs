//! Criterion benchmark: the statistics kernels on price-sized inputs.

use criterion::{criterion_group, criterion_main, Criterion};
use wattroute_stats::{correlation, descriptive, quantiles, Histogram};

fn series(n: usize, phase: f64) -> Vec<f64> {
    (0..n)
        .map(|i| {
            let x = i as f64;
            50.0 + 20.0 * ((x / 24.0 + phase) * std::f64::consts::TAU).sin()
                + 10.0 * ((x * 2654435761.0).sin())
        })
        .collect()
}

fn bench_stats(c: &mut Criterion) {
    let mut group = c.benchmark_group("stats_kernels");
    // 39 months of hourly samples.
    let xs = series(28_464, 0.0);
    let ys = series(28_464, 0.3);

    group.bench_function("trimmed_stats_39_months", |b| b.iter(|| descriptive::trimmed(&xs, 0.01)));
    group.bench_function("pearson_39_months", |b| b.iter(|| correlation::pearson(&xs, &ys)));
    group.bench_function("mutual_information_39_months", |b| {
        b.iter(|| correlation::mutual_information(&xs, &ys, 8))
    });
    group
        .bench_function("percentile_95_39_months", |b| b.iter(|| quantiles::percentile(&xs, 95.0)));
    group.bench_function("histogram_39_months", |b| {
        b.iter(|| Histogram::from_samples(-50.0, 150.0, 80, &xs))
    });

    group.finish();
}

criterion_group!(benches, bench_stats);
criterion_main!(benches);
