//! Criterion benchmark: per-step latency of the routing policies.

use criterion::{criterion_group, criterion_main, Criterion};
use wattroute_geo::UsState;
use wattroute_market::time::SimHour;
use wattroute_routing::prelude::*;
use wattroute_workload::ClusterSet;

fn bench_policies(c: &mut Criterion) {
    let mut group = c.benchmark_group("routing_policies");

    let nine = ClusterSet::akamai_like_nine();
    let twenty_nine = ClusterSet::even_29_hub(800);
    let states: Vec<UsState> = UsState::all().collect();
    let demand: Vec<f64> = states.iter().map(|s| s.population() as f64 / 250.0).collect();
    let prices9: Vec<f64> = (0..9).map(|i| 40.0 + 5.0 * i as f64).collect();
    let prices29: Vec<f64> = (0..29).map(|i| 40.0 + 2.0 * i as f64).collect();

    group.bench_function("nearest_9_clusters_51_states", |b| {
        let ctx = RoutingContext::new(&nine, &states, &demand, &prices9, SimHour(12));
        let mut policy = NearestClusterPolicy::new();
        b.iter(|| policy.allocate(&ctx));
    });

    group.bench_function("akamai_like_9_clusters_51_states", |b| {
        let ctx = RoutingContext::new(&nine, &states, &demand, &prices9, SimHour(12));
        let mut policy = AkamaiLikePolicy::default();
        b.iter(|| policy.allocate(&ctx));
    });

    group.bench_function("price_conscious_9_clusters_51_states", |b| {
        let ctx = RoutingContext::new(&nine, &states, &demand, &prices9, SimHour(12));
        let mut policy = PriceConsciousPolicy::with_distance_threshold(1500.0);
        b.iter(|| policy.allocate(&ctx));
    });

    group.bench_function("price_conscious_29_clusters_51_states", |b| {
        let ctx = RoutingContext::new(&twenty_nine, &states, &demand, &prices29, SimHour(12));
        let mut policy = PriceConsciousPolicy::with_distance_threshold(1500.0);
        b.iter(|| policy.allocate(&ctx));
    });

    group.bench_function("joint_cost_9_clusters_51_states", |b| {
        let ctx = RoutingContext::new(&nine, &states, &demand, &prices9, SimHour(12));
        let mut policy = JointCostPolicy::new(0.02);
        b.iter(|| policy.allocate(&ctx));
    });

    group.finish();
}

criterion_group!(benches, bench_policies);
criterion_main!(benches);
