//! Criterion benchmark: distance kernels used inside the routing hot path.

use criterion::{criterion_group, criterion_main, Criterion};
use wattroute_geo::{distance, hubs, state_to_hub_km, UsState};

fn bench_geo(c: &mut Criterion) {
    let mut group = c.benchmark_group("geo_kernels");
    let market = hubs::market_hubs();
    let states: Vec<UsState> = UsState::all().collect();

    group.bench_function("all_state_hub_distances", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for &s in &states {
                for h in &market {
                    acc += state_to_hub_km(s, h);
                }
            }
            acc
        })
    });

    group.bench_function("hubs_within_1500km_all_states", |b| {
        b.iter(|| {
            states
                .iter()
                .map(|s| distance::hubs_within_threshold(*s, &market, 1500.0).len())
                .sum::<usize>()
        })
    });

    group.bench_function("all_hub_pair_distances", |b| {
        b.iter(|| {
            hubs::market_hub_pairs()
                .iter()
                .map(|(a, b)| wattroute_geo::hub_to_hub_km(a, b))
                .sum::<f64>()
        })
    });

    group.finish();
}

criterion_group!(benches, bench_geo);
criterion_main!(benches);
