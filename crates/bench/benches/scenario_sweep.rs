//! Criterion benchmark: a five-point distance-threshold sweep run through
//! the parallel [`ScenarioSweep`] engine versus the same five runs executed
//! sequentially — the evidence that sharing compiled price tables across a
//! worker pool beats back-to-back `Simulation::run` calls.

use criterion::{criterion_group, criterion_main, Criterion};
use wattroute::prelude::*;
use wattroute::sweep::ScenarioSweep;
use wattroute_market::time::SimHour;

const THRESHOLDS: [f64; 5] = [0.0, 500.0, 1000.0, 1500.0, 2500.0];

fn bench_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("scenario_sweep");
    group.sample_size(10);

    let start = SimHour::from_date(2008, 12, 19);
    let week = HourRange::new(start, start.plus_hours(7 * 24));
    let scenario =
        Scenario::custom_window(1, week).with_energy(EnergyModelParams::optimistic_future());

    group.bench_function("five_point_fig17_sequential", |b| {
        b.iter(|| {
            THRESHOLDS
                .iter()
                .map(|&t| {
                    let mut policy = PriceConsciousPolicy::with_distance_threshold(t);
                    scenario.execute(&mut policy, RunOptions::new())
                })
                .collect::<Vec<_>>()
        });
    });

    group.bench_function("five_point_fig17_parallel_sweep", |b| {
        b.iter(|| {
            let mut sweep =
                ScenarioSweep::new(&scenario.clusters, &scenario.trace, &scenario.prices);
            for (i, &t) in THRESHOLDS.iter().enumerate() {
                sweep.add_point(format!("t:{i}"), scenario.config.clone(), move || {
                    PriceConsciousPolicy::with_distance_threshold(t)
                });
            }
            sweep.execute(RunOptions::new())
        });
    });

    group.finish();
}

criterion_group!(benches, bench_sweep);
criterion_main!(benches);
