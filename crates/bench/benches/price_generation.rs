//! Criterion benchmark: throughput of the calibrated price generator.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use wattroute_market::prelude::*;
use wattroute_market::time::SimHour;

fn bench_price_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("price_generation");
    group.sample_size(10);

    for &days in &[7u64, 30u64] {
        group.bench_with_input(
            BenchmarkId::new("nine_hubs_rt_hourly_days", days),
            &days,
            |b, &days| {
                let generator = PriceGenerator::nine_cluster_default(1);
                let start = SimHour::from_date(2007, 1, 1);
                let range = HourRange::new(start, start.plus_hours(days * 24));
                b.iter(|| generator.realtime_hourly(range));
            },
        );
    }

    group.bench_function("thirty_hubs_rt_hourly_30_days", |b| {
        let generator = PriceGenerator::new(MarketModel::calibrated(), 1);
        let start = SimHour::from_date(2007, 1, 1);
        let range = HourRange::new(start, start.plus_hours(30 * 24));
        b.iter(|| generator.realtime_hourly(range));
    });

    group.bench_function("nyc_5min_7_days", |b| {
        let generator = PriceGenerator::nine_cluster_default(1);
        let start = SimHour::from_date(2009, 2, 1);
        let range = HourRange::new(start, start.plus_hours(7 * 24));
        b.iter(|| generator.realtime_5min(wattroute_geo::HubId::NewYorkNy, range));
    });

    group.finish();
}

criterion_group!(benches, bench_price_generation);
criterion_main!(benches);
