//! Criterion benchmark: end-to-end simulation throughput.

use criterion::{criterion_group, criterion_main, Criterion};
use wattroute::prelude::*;
use wattroute_market::time::SimHour;

fn bench_simulation(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulation_engine");
    group.sample_size(10);

    let start = SimHour::from_date(2008, 12, 19);
    let week = HourRange::new(start, start.plus_hours(7 * 24));

    group.bench_function("one_week_24day_trace_price_conscious", |b| {
        let scenario =
            Scenario::custom_window(1, week).with_energy(EnergyModelParams::optimistic_future());
        b.iter(|| {
            let mut policy = PriceConsciousPolicy::with_distance_threshold(1500.0);
            scenario.execute(&mut policy, RunOptions::new())
        });
    });

    group.bench_function("one_week_24day_trace_baseline", |b| {
        let scenario = Scenario::custom_window(1, week);
        b.iter(|| scenario.baseline_report());
    });

    // The 95/5-constrained hot path: the simulator borrows the run's one
    // ConstraintSet on every reallocation (the pre-ConstraintSet engine
    // cloned the cap vector per step, so this datapoint tracked an extra
    // ~2000 allocations/week). Constrained vs unconstrained throughput
    // should now differ only by the cap-respecting assignment itself.
    group.bench_function("one_week_24day_trace_price_conscious_constrained", |b| {
        let scenario =
            Scenario::custom_window(1, week).with_energy(EnergyModelParams::optimistic_future());
        let calibrated = CalibratedScenario::calibrate(&scenario);
        let config = calibrated.constrained_config(&scenario.config, 1.0);
        b.iter(|| {
            let mut policy = PriceConsciousPolicy::with_distance_threshold(1500.0);
            scenario.execute(&mut policy, RunOptions::new().with_config(config.clone()))
        });
    });

    group.bench_function("one_month_weekly_profile_hourly_realloc", |b| {
        let month_start = SimHour::from_date(2007, 5, 1);
        let month = HourRange::new(month_start, month_start.plus_hours(30 * 24));
        let scenario =
            Scenario::synthetic_over(1, month).with_energy(EnergyModelParams::optimistic_future());
        b.iter(|| {
            let mut policy = PriceConsciousPolicy::with_distance_threshold(1500.0);
            scenario.execute(&mut policy, RunOptions::new())
        });
    });

    group.finish();
}

criterion_group!(benches, bench_simulation);
criterion_main!(benches);
