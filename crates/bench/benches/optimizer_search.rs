//! Criterion benchmark: optimizer evaluation throughput and what the
//! persistent artifact cache buys a placement search.
//!
//! * `evaluate_24_neighbors_warm_cache` measures the optimizer's hot
//!   path — one greedy iteration's worth of candidates (24 single-quantum
//!   shifts over one hub list) batch-evaluated against an already-warm
//!   [`CompiledArtifacts`] cache. Evaluations/second = 24 / sample time.
//! * `evaluate_24_neighbors_cold_cache` runs the identical batch with a
//!   fresh evaluator per iteration, so every sample pays the one-off billing
//!   matrix + preference compile the cache normally amortises away.
//!
//! After the timed runs the bench prints the warm evaluator's cache
//! statistics (hit rate approaches 100% as iterations accumulate — only
//! the very first batch compiles).

use criterion::{criterion_group, criterion_main, Criterion};
use wattroute::prelude::*;
use wattroute_energy::model::EnergyModelParams;
use wattroute_market::time::SimHour;
use wattroute_optimizer::{price_conscious_factory, SearchSpace, SweepEvaluator};
use wattroute_workload::ClusterSet;

fn bench_evaluator(c: &mut Criterion) {
    let mut group = c.benchmark_group("optimizer_search");
    group.sample_size(10);

    let start = SimHour::from_date(2008, 12, 19);
    let scenario = Scenario::custom_window(3, HourRange::new(start, start.plus_hours(48)))
        .with_energy(EnergyModelParams::optimistic_future());
    let config = scenario.config.clone().with_overflow(OverflowMode::Reject);
    let policy = price_conscious_factory(1500.0);

    let (space, incumbent) = SearchSpace::from_deployment(&scenario.clusters, 1600);
    // One greedy iteration's neighbourhood, truncated to a fixed batch.
    let mut neighbors = space.shift_neighbors(&incumbent, 1);
    neighbors.truncate(24);
    let batch: Vec<ClusterSet> = neighbors.iter().map(|s| space.materialize(s)).collect();

    let mut warm = SweepEvaluator::new(&scenario.trace, &scenario.prices, config.clone());
    warm.evaluate(&batch, &policy); // prime the cache
    group.bench_function("evaluate_24_neighbors_warm_cache", |b| {
        b.iter(|| warm.evaluate(&batch, &policy));
    });

    group.bench_function("evaluate_24_neighbors_cold_cache", |b| {
        b.iter(|| {
            let mut cold = SweepEvaluator::new(&scenario.trace, &scenario.prices, config.clone());
            cold.evaluate(&batch, &policy)
        });
    });

    group.finish();

    let stats = warm.artifacts();
    println!(
        "optimizer_search: warm evaluator ran {} evaluations over {} compiled hub list(s); \
         cache hit rate {:.1}%",
        warm.evaluations(),
        stats.billing_matrices(),
        stats.hit_rate().unwrap_or(0.0) * 100.0
    );
}

criterion_group!(benches, bench_evaluator);
criterion_main!(benches);
