//! Criterion benchmark: the cost of telemetry on the replay hot path.
//!
//! Three datapoints over the same one-week scenario:
//!
//! * `replay_telemetry_off` — the baseline: every instrumentation site
//!   collapses to one relaxed atomic load per tick.
//! * `replay_telemetry_on` — spans recording into registry histograms
//!   (no trace sink; tracing is a diagnostic mode, not the overhead
//!   claim). The CI gate (`obs_report --check-overhead`) holds the
//!   on/off ratio under 5%.
//! * `replay_telemetry_on_traced` — spans *and* the JSONL trace sink,
//!   for a sense of what full diagnostics cost on top.
//!
//! The enabled flag is process-global, so each bench flips it for its
//! own iterations and restores the off state before finishing.

use criterion::{criterion_group, criterion_main, Criterion};
use wattroute::prelude::*;
use wattroute_market::time::SimHour;
use wattroute_obs::Telemetry;

fn bench_telemetry_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("telemetry_overhead");
    group.sample_size(10);

    let start = SimHour::from_date(2008, 12, 19);
    let week = HourRange::new(start, start.plus_hours(7 * 24));
    let scenario = Scenario::custom_window(1, week);

    group.bench_function("replay_telemetry_off", |b| {
        Telemetry::disable();
        b.iter(|| {
            let mut policy = PriceConsciousPolicy::with_distance_threshold(1500.0);
            scenario.execute(&mut policy, RunOptions::new())
        });
    });

    group.bench_function("replay_telemetry_on", |b| {
        Telemetry::enable();
        b.iter(|| {
            let mut policy = PriceConsciousPolicy::with_distance_threshold(1500.0);
            scenario.execute(&mut policy, RunOptions::new())
        });
        Telemetry::disable();
    });

    group.bench_function("replay_telemetry_on_traced", |b| {
        let path =
            std::env::temp_dir().join(format!("wr_bench_trace_{}.jsonl", std::process::id()));
        Telemetry::enable();
        Telemetry::trace_to(&path).expect("install trace sink");
        b.iter(|| {
            let mut policy = PriceConsciousPolicy::with_distance_threshold(1500.0);
            scenario.execute(&mut policy, RunOptions::new())
        });
        Telemetry::trace_close();
        Telemetry::disable();
        let _ = std::fs::remove_file(&path);
    });

    group.finish();
}

criterion_group!(benches, bench_telemetry_overhead);
criterion_main!(benches);
