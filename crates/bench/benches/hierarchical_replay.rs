//! Criterion benchmark: hierarchical replay throughput at CDN scale.
//!
//! Three tree sizes — the paper's 29-hub world embedded one-site-per-metro,
//! a 200-site build-out, and a 1000-site deployment — each replayed over
//! the same two-day trace, sequentially and sharded. The epoch-hoisted
//! shard loop keeps per-step work to accumulating adds, so throughput
//! should scale near-linearly in site count rather than in (sites × steps
//! × power-model evaluations).

use criterion::{criterion_group, criterion_main, Criterion};
use wattroute::hierarchy::HierarchicalReplay;
use wattroute::prelude::*;
use wattroute_geo::topology::Topology;
use wattroute_market::generator::PriceGenerator;
use wattroute_market::model::MarketModel;
use wattroute_market::time::SimHour;
use wattroute_routing::policy::RoutingPolicy;

fn make_policy() -> Box<dyn RoutingPolicy> {
    Box::new(PriceConsciousPolicy::with_distance_threshold(1500.0))
}

fn bench_hierarchical_replay(c: &mut Criterion) {
    let mut group = c.benchmark_group("hierarchical_replay");
    group.sample_size(10);

    let start = SimHour::from_date(2008, 12, 19);
    let window = HourRange::new(start, start.plus_hours(2 * 24));
    let trace = SyntheticWorkloadConfig::default().generate(window);
    let prices = PriceGenerator::new(MarketModel::calibrated(), 7).realtime_hourly(window);
    let config = SimulationConfig::default().with_reallocation_interval(12);

    for sites in [29usize, 200, 1000] {
        let topology = Topology::synthetic(7, sites).with_tier_slack(1.1);
        group.bench_function(&format!("two_days_{sites}_sites_sequential"), |b| {
            let replay = HierarchicalReplay::new(&topology, &trace, &prices, config.clone());
            b.iter(|| replay.run(&make_policy));
        });
        group.bench_function(&format!("two_days_{sites}_sites_sharded"), |b| {
            let replay = HierarchicalReplay::new(&topology, &trace, &prices, config.clone());
            b.iter(|| replay.run_sharded(&make_policy));
        });
    }

    group.finish();
}

criterion_group!(benches, bench_hierarchical_replay);
criterion_main!(benches);
