//! Criterion benchmark: steady-state tick throughput, epoch-cached vs
//! the legacy per-step-recompute loop.
//!
//! Both sides replay the same seeded two-week scenario at a
//! reallocation interval of 12 steps (the steady-state regime the
//! allocation-epoch cache targets; at the default interval of 1 every
//! tick reallocates and the paths converge). The acceptance bar is a
//! ≥2× speedup of `steady_state_epoch_cached` over
//! `steady_state_legacy_per_step_recompute`; the `tick_report` binary
//! measures the same pair and records the ratio in `BENCH_10.json`.

use criterion::{criterion_group, criterion_main, Criterion};
use wattroute_bench::tick::{cached_replay, legacy_replay, steady_policy, steady_scenario};

fn bench_tick_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("tick_throughput");
    group.sample_size(10);

    let scenario = steady_scenario(14);

    group.bench_function("steady_state_legacy_per_step_recompute", |b| {
        b.iter(|| legacy_replay(&scenario, &mut steady_policy()));
    });

    group.bench_function("steady_state_epoch_cached", |b| {
        b.iter(|| cached_replay(&scenario, &mut steady_policy()));
    });

    group.finish();
}

criterion_group!(benches, bench_tick_throughput);
criterion_main!(benches);
