//! Criterion benchmark: the sweep artifact cache versus per-run
//! compilation.
//!
//! Two groups:
//!
//! * `artifact_compile` isolates the compilation itself over the paper's
//!   full price horizon: building one self-contained `PriceTable` per
//!   delay (the pre-split behaviour — each rebuilds the billing matrix)
//!   versus one shared `BillingMatrix` plus thin per-delay views, and
//!   recompiling `CompiledPreferences` per run versus once. This is the
//!   cost that the `CompiledArtifacts` cache removes from every
//!   multi-delay / multi-run grid.
//! * `compiled_artifacts` runs a five-delay Figure-20-style grid end to
//!   end, per-run compile versus the sweep engine, both single-threaded.
//!   Simulation dominates here; the difference is the compile overhead.

use criterion::{criterion_group, criterion_main, Criterion};
use std::sync::Arc;
use wattroute::prelude::*;
use wattroute::sweep::ScenarioSweep;
use wattroute_market::generator::PriceGenerator;
use wattroute_market::price_table::{BillingMatrix, PriceTable};
use wattroute_market::time::SimHour;
use wattroute_routing::price_conscious::CompiledPreferences;
use wattroute_workload::ClusterSet;

const DELAYS: [u64; 5] = [0, 1, 2, 4, 8];

fn bench_compile(c: &mut Criterion) {
    let mut group = c.benchmark_group("artifact_compile");
    group.sample_size(10);

    // The paper's full 39-month horizon: the billing matrix is what a
    // fig20-style sweep used to rebuild (and store) once per delay.
    let range = HourRange::paper_39_months();
    let clusters = ClusterSet::akamai_like_nine();
    let hubs = clusters.hub_ids();
    let prices = PriceGenerator::nine_cluster_default(1).realtime_hourly(range);

    group.bench_function("five_delay_tables_per_run_compile", |b| {
        b.iter(|| {
            DELAYS.iter().map(|&d| PriceTable::build(&prices, &hubs, range, d)).collect::<Vec<_>>()
        });
    });

    group.bench_function("five_delay_tables_shared_billing", |b| {
        b.iter(|| {
            let billing = Arc::new(BillingMatrix::build(&prices, &hubs, range));
            DELAYS
                .iter()
                .map(|&d| PriceTable::delayed_view(billing.clone(), &prices, d))
                .collect::<Vec<_>>()
        });
    });

    let states: Vec<wattroute_geo::UsState> = wattroute_geo::UsState::all().collect();
    let wide = ClusterSet::even_29_hub(500);
    group.bench_function("ten_run_preferences_per_run_compile", |b| {
        b.iter(|| (0..10).map(|_| CompiledPreferences::build(&wide, &states)).collect::<Vec<_>>());
    });
    group.bench_function("ten_run_preferences_shared", |b| {
        b.iter(|| {
            let shared = Arc::new(CompiledPreferences::build(&wide, &states));
            (0..10).map(|_| shared.clone()).collect::<Vec<_>>()
        });
    });

    group.finish();
}

fn bench_grid(c: &mut Criterion) {
    let mut group = c.benchmark_group("compiled_artifacts");
    group.sample_size(10);

    let start = SimHour::from_date(2008, 12, 19);
    let week = HourRange::new(start, start.plus_hours(7 * 24));
    let scenario =
        Scenario::custom_window(1, week).with_energy(EnergyModelParams::optimistic_future());

    group.bench_function("five_delay_fig20_per_run_compile", |b| {
        b.iter(|| {
            DELAYS
                .iter()
                .map(|&d| {
                    let mut policy = PriceConsciousPolicy::with_distance_threshold(1500.0);
                    scenario.execute(
                        &mut policy,
                        RunOptions::new()
                            .with_config(scenario.config.clone().with_reaction_delay(d)),
                    )
                })
                .collect::<Vec<_>>()
        });
    });

    group.bench_function("five_delay_fig20_shared_artifacts", |b| {
        b.iter(|| {
            let mut sweep =
                ScenarioSweep::new(&scenario.clusters, &scenario.trace, &scenario.prices)
                    .with_threads(1);
            for (i, &d) in DELAYS.iter().enumerate() {
                sweep.add_point(
                    format!("d:{i}"),
                    scenario.config.clone().with_reaction_delay(d),
                    || PriceConsciousPolicy::with_distance_threshold(1500.0),
                );
            }
            sweep.execute(RunOptions::new())
        });
    });

    group.finish();
}

criterion_group!(benches, bench_compile, bench_grid);
criterion_main!(benches);
