//! Criterion benchmark: Monte Carlo path-replay throughput.
//!
//! One day of trace, replayed over seeded price paths at three path
//! budgets on one worker, plus the 64-path budget on two workers. Per-path
//! cost should stay flat as the budget grows — workspaces (generator,
//! engine snapshot, billing buffer, compiled preferences) are reused, so
//! drawing more paths compiles nothing and allocates almost nothing new.

use criterion::{criterion_group, criterion_main, Criterion};
use wattroute::montecarlo::MonteCarlo;
use wattroute::prelude::*;
use wattroute_market::time::SimHour;

fn bench_monte_carlo(c: &mut Criterion) {
    let mut group = c.benchmark_group("monte_carlo");
    group.sample_size(10);

    let start = SimHour::from_date(2008, 12, 19);
    let scenario = Scenario::custom_window(7, HourRange::new(start, start.plus_hours(24)));
    let model = MarketModel::calibrated().restricted_to(&scenario.clusters.hub_ids());

    for paths in [16usize, 64, 256] {
        group.bench_function(&format!("one_day_{paths}_paths_1_thread"), |b| {
            let mc = MonteCarlo::new(
                &scenario.clusters,
                &scenario.trace,
                model.clone(),
                scenario.config.clone(),
                7,
            )
            .with_paths(paths)
            .with_threads(1);
            b.iter(|| mc.run());
        });
    }
    group.bench_function("one_day_64_paths_2_threads", |b| {
        let mc = MonteCarlo::new(
            &scenario.clusters,
            &scenario.trace,
            model.clone(),
            scenario.config.clone(),
            7,
        )
        .with_paths(64)
        .with_threads(2);
        b.iter(|| mc.run());
    });

    group.finish();
}

criterion_group!(benches, bench_monte_carlo);
criterion_main!(benches);
