//! Experiment harness shared by the per-figure binaries in `src/bin/`.
//!
//! Every table and figure in the paper's evaluation has a binary named
//! `figNN_*` that regenerates its rows/series; this library holds the code
//! those binaries share: the default data windows, the savings sweeps, and
//! small table-printing helpers. `EXPERIMENTS.md` at the workspace root
//! records paper-vs-measured values produced by these harnesses.
//!
//! # Fast vs full mode
//!
//! The paper's long experiments cover 39 months of hourly prices. By default
//! the harness binaries run a shortened window (several months) so the whole
//! suite completes quickly; pass `--full` to any binary to run the exact
//! paper window. The *shape* of every result is unchanged; only statistical
//! noise shrinks in full mode.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod daemon;
pub mod tick;

use wattroute::prelude::*;
use wattroute::report::SimulationReport;
use wattroute_energy::model::EnergyModelParams;
use wattroute_market::time::{HourRange, SimHour};
use wattroute_market::types::PriceSet;
use wattroute_optimizer::{policy_factory, price_conscious_factory, SweepEvaluator};
use wattroute_workload::trace::Trace;

/// Whether `--full` was passed on the command line.
pub fn full_mode() -> bool {
    std::env::args().any(|a| a == "--full")
}

/// The price-analysis window: the paper's full 39 months in `--full` mode,
/// otherwise a representative 9-month slice (which still spans seasons and
/// the 2008 fuel-price run-up start).
pub fn price_window() -> HourRange {
    if full_mode() {
        HourRange::paper_39_months()
    } else {
        HourRange::new(SimHour::from_date(2008, 1, 1), SimHour::from_date(2008, 10, 1))
    }
}

/// The long-simulation window (Figures 18-20): 39 months in `--full` mode,
/// otherwise 4 months.
pub fn long_simulation_window() -> HourRange {
    if full_mode() {
        HourRange::paper_39_months()
    } else {
        HourRange::new(SimHour::from_date(2008, 3, 1), SimHour::from_date(2008, 7, 1))
    }
}

/// The seed shared by all harness binaries so figures are mutually
/// consistent.
pub const HARNESS_SEED: u64 = 2009;

/// Print a header naming the experiment and the paper artifact it
/// regenerates.
pub fn banner(figure: &str, description: &str) {
    println!("================================================================");
    println!("{figure}: {description}");
    println!(
        "mode: {}",
        if full_mode() { "FULL (paper window)" } else { "fast (pass --full for the paper window)" }
    );
    println!("================================================================");
}

/// Print a simple aligned table.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: &[String]| {
        let padded: Vec<String> = cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>width$}", c, width = widths.get(i).copied().unwrap_or(8)))
            .collect();
        println!("  {}", padded.join("  "));
    };
    line(&headers.iter().map(|h| h.to_string()).collect::<Vec<_>>());
    line(&widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>());
    for row in rows {
        line(row);
    }
}

/// Format a float with a fixed number of decimals.
pub fn fmt(x: f64, decimals: usize) -> String {
    format!("{x:.decimals$}")
}

/// The 24-day scenario shared by the Figure 15-17 harnesses.
pub fn scenario_24_day() -> Scenario {
    Scenario::akamai_24_day(HARNESS_SEED)
}

/// The long synthetic scenario shared by the Figure 18-20 harnesses.
pub fn scenario_long() -> Scenario {
    Scenario::synthetic_over(HARNESS_SEED, long_simulation_window())
}

/// One row of a savings sweep: energy-model label, relaxed and constrained
/// savings percentages.
#[derive(Debug, Clone)]
pub struct SavingsRow {
    /// Energy model label, e.g. `(0%, 1.1)`.
    pub label: String,
    /// Savings (%) with 95/5 constraints relaxed.
    pub relaxed_percent: f64,
    /// Savings (%) obeying the baseline's 95/5 constraints.
    pub constrained_percent: f64,
}

/// Figure 15: maximum savings vs energy-model parameters, with and without
/// the 95/5 constraints, at a fixed distance threshold.
///
/// Runs as two parallel [`ScenarioSweep`]s sharing one compiled price
/// table: first every model's Akamai-like baseline (whose observed 95th
/// percentiles become the "follow 95/5" caps), then the relaxed and
/// constrained optimizer runs for every model.
pub fn elasticity_savings_sweep(
    scenario: &Scenario,
    distance_threshold_km: f64,
    models: &[(String, EnergyModelParams)],
) -> Vec<SavingsRow> {
    let mut baselines = ScenarioSweep::new(&scenario.clusters, &scenario.trace, &scenario.prices);
    for (i, (_, params)) in models.iter().enumerate() {
        baselines.add_point(
            format!("base:{i}"),
            scenario.config.clone().with_energy(*params),
            AkamaiLikePolicy::default,
        );
    }
    let baselines = baselines.execute(RunOptions::new());

    let mut grid = ScenarioSweep::new(&scenario.clusters, &scenario.trace, &scenario.prices);
    for (i, (_, params)) in models.iter().enumerate() {
        let caps: Vec<f64> =
            baselines.runs[i].report.clusters.iter().map(|c| c.p95_hits_per_sec).collect();
        let config = scenario.config.clone().with_energy(*params);
        grid.add_point(format!("relaxed:{i}"), config.clone(), move || {
            PriceConsciousPolicy::with_distance_threshold(distance_threshold_km)
        });
        grid.add_point(format!("follow:{i}"), config.with_bandwidth_caps(caps), move || {
            PriceConsciousPolicy::with_distance_threshold(distance_threshold_km)
        });
    }
    let grid = grid.execute(RunOptions::new());

    // Both sweeps return one run per point in grid order, so rows pair up
    // by index.
    models
        .iter()
        .enumerate()
        .map(|(i, (label, _))| {
            let baseline = &baselines.runs[i].report;
            SavingsRow {
                label: label.clone(),
                relaxed_percent: grid.runs[2 * i].report.savings_percent_vs(baseline),
                constrained_percent: grid.runs[2 * i + 1].report.savings_percent_vs(baseline),
            }
        })
        .collect()
}

/// One row of a distance-threshold sweep (Figures 16-18).
#[derive(Debug, Clone)]
pub struct ThresholdRow {
    /// Distance threshold in km.
    pub threshold_km: f64,
    /// Normalised cost (vs the baseline allocation) with 95/5 relaxed.
    pub normalized_cost_relaxed: f64,
    /// Normalised cost obeying the baseline 95/5 constraints.
    pub normalized_cost_constrained: f64,
    /// Demand-weighted mean client–server distance (relaxed run), km.
    pub mean_distance_km: f64,
    /// Demand-weighted 99th-percentile distance (relaxed run), km.
    pub p99_distance_km: f64,
    /// Mean distance for the constrained run, km.
    pub mean_distance_constrained_km: f64,
    /// 99th-percentile distance for the constrained run, km.
    pub p99_distance_constrained_km: f64,
}

/// Sweep the price optimizer's distance threshold against a fixed baseline.
///
/// All `2 × thresholds` runs (relaxed and 95/5-constrained per threshold)
/// execute as one parallel [`ScenarioSweep`] over a shared compiled price
/// table.
pub fn distance_threshold_sweep(
    scenario: &Scenario,
    baseline: &SimulationReport,
    caps: &[f64],
    thresholds_km: &[f64],
) -> Vec<ThresholdRow> {
    let mut sweep = ScenarioSweep::new(&scenario.clusters, &scenario.trace, &scenario.prices);
    for (i, &threshold_km) in thresholds_km.iter().enumerate() {
        sweep.add_point(format!("relaxed:{i}"), scenario.config.clone(), move || {
            PriceConsciousPolicy::with_distance_threshold(threshold_km)
        });
        sweep.add_point(
            format!("follow:{i}"),
            scenario.config.clone().with_bandwidth_caps(caps.to_vec()),
            move || PriceConsciousPolicy::with_distance_threshold(threshold_km),
        );
    }
    let report = sweep.execute(RunOptions::new());
    thresholds_km
        .iter()
        .enumerate()
        .map(|(i, &threshold_km)| {
            let relaxed = report.get(&format!("relaxed:{i}")).expect("point ran");
            let constrained = report.get(&format!("follow:{i}")).expect("point ran");
            ThresholdRow {
                threshold_km,
                normalized_cost_relaxed: relaxed.normalized_cost_vs(baseline),
                normalized_cost_constrained: constrained.normalized_cost_vs(baseline),
                mean_distance_km: relaxed.mean_distance_km,
                p99_distance_km: relaxed.p99_distance_km,
                mean_distance_constrained_km: constrained.mean_distance_km,
                p99_distance_constrained_km: constrained.p99_distance_km,
            }
        })
        .collect()
}

/// The distance thresholds swept by Figures 16-18.
pub fn standard_thresholds() -> Vec<f64> {
    vec![0.0, 250.0, 500.0, 750.0, 1000.0, 1250.0, 1500.0, 1750.0, 2000.0, 2500.0]
}

/// One row of a deployment-dimension sweep: how much price-conscious
/// routing saves when the clusters sit *here* rather than there.
#[derive(Debug, Clone)]
pub struct DeploymentRow {
    /// Deployment label.
    pub label: String,
    /// Number of clusters in the deployment.
    pub clusters: usize,
    /// The deployment's Akamai-like baseline cost in dollars.
    pub baseline_cost_dollars: f64,
    /// Savings (%) of the price-conscious optimizer over that baseline.
    pub savings_percent: f64,
    /// Demand-weighted mean client–server distance of the optimized run, km.
    pub mean_distance_km: f64,
    /// Demand-weighted 99th-percentile distance of the optimized run, km.
    pub p99_distance_km: f64,
}

/// Sweep the *deployment* dimension (the paper's Figures 15–19 intuition
/// that savings depend on where the clusters are): for every candidate
/// cluster set, run the Akamai-like baseline and the price-conscious
/// optimizer at one distance threshold, through the deployment
/// optimizer's [`SweepEvaluator`] — the same batch evaluator the
/// placement search uses. Both policy batches share one persistent
/// [`CompiledArtifacts`](wattroute::sweep::CompiledArtifacts) cache, so
/// each distinct hub list compiles its billing matrix and ranked
/// preference geometry exactly once across the whole grid —
/// capacity-rebalanced variants of one deployment share everything but
/// their runs.
///
/// The trace is per-client-state and therefore deployment-independent;
/// `prices` must cover every hub any deployment uses.
pub fn deployment_savings_sweep(
    deployments: &[(String, ClusterSet)],
    trace: &Trace,
    prices: &PriceSet,
    config: &SimulationConfig,
    distance_threshold_km: f64,
) -> Vec<DeploymentRow> {
    assert!(!deployments.is_empty(), "need at least one deployment");
    let sets: Vec<ClusterSet> = deployments.iter().map(|(_, c)| c.clone()).collect();
    let mut evaluator = SweepEvaluator::new(trace, prices, config.clone());
    // One combined sweep: every (deployment, policy) cell runs on one
    // worker pool, sharing the compiled artifacts.
    let mut rows = evaluator.evaluate_grid(
        &sets,
        &[
            policy_factory(AkamaiLikePolicy::default),
            price_conscious_factory(distance_threshold_km),
        ],
    );
    let optimized = rows.pop().expect("two policy rows");
    let baselines = rows.pop().expect("two policy rows");
    deployments
        .iter()
        .enumerate()
        .map(|(i, (label, clusters))| {
            let baseline = &baselines[i];
            let optimized = &optimized[i];
            DeploymentRow {
                label: label.clone(),
                clusters: clusters.len(),
                baseline_cost_dollars: baseline.total_cost_dollars,
                savings_percent: optimized.savings_percent_vs(baseline),
                mean_distance_km: optimized.mean_distance_km,
                p99_distance_km: optimized.p99_distance_km,
            }
        })
        .collect()
}

/// Reaction-delay sweep (Figure 20): percentage cost increase relative to
/// an immediate reaction, for a given energy model and distance threshold.
///
/// Each delay needs its own delayed-price table, but the runs themselves
/// execute in parallel as one [`ScenarioSweep`] (tables are compiled once
/// per distinct delay and shared).
pub fn reaction_delay_sweep(
    scenario: &Scenario,
    distance_threshold_km: f64,
    delays_hours: &[u64],
) -> Vec<(u64, f64)> {
    let mut sweep = ScenarioSweep::new(&scenario.clusters, &scenario.trace, &scenario.prices);
    sweep.add_point("reference", scenario.config.clone().with_reaction_delay(0), move || {
        PriceConsciousPolicy::with_distance_threshold(distance_threshold_km)
    });
    for (i, &delay) in delays_hours.iter().enumerate() {
        sweep.add_point(
            format!("delay:{i}"),
            scenario.config.clone().with_reaction_delay(delay),
            move || PriceConsciousPolicy::with_distance_threshold(distance_threshold_km),
        );
    }
    let report = sweep.execute(RunOptions::new());
    let reference = report.get("reference").expect("reference ran");
    delays_hours
        .iter()
        .enumerate()
        .map(|(i, &delay)| {
            let run = report.get(&format!("delay:{i}")).expect("point ran");
            let increase = (run.total_cost_dollars / reference.total_cost_dollars - 1.0) * 100.0;
            (delay, increase)
        })
        .collect()
}

/// One point of the savings-vs-bandwidth-slack curve (`fig_bandwidth`).
#[derive(Debug, Clone)]
pub struct SlackRow {
    /// The cap multiplier (`f64::INFINITY` = bandwidth unconstrained).
    pub multiplier: f64,
    /// Savings (%) of the price-conscious optimizer over the calibration
    /// baseline, at this slack level.
    pub savings_percent: f64,
    /// Total hours any cluster spent pinned at its 95/5 cap (zero without
    /// a tariff — binding accounting is tariff-gated).
    pub binding_hours: f64,
    /// The run's full report.
    pub report: SimulationReport,
}

/// The savings-vs-bandwidth-slack curve (§4/§6.1 made a sweep): calibrate
/// a scenario once against its baseline assignment, then run the
/// price-conscious optimizer under the calibrated 95/5 caps scaled by each
/// multiplier — `1.0` is the paper's "follow original 95/5 constraints"
/// regime, `f64::INFINITY` removes the caps entirely and reproduces the
/// unconstrained run bit-for-bit. All points run as one [`ScenarioSweep`]
/// constraint axis over shared compiled artifacts. An optional
/// [`BandwidthTariff`] adds the 95/5 accounting fields (observed p95 bill,
/// binding hours) to every report.
pub fn bandwidth_slack_sweep(
    scenario: &Scenario,
    calibrated: &CalibratedScenario,
    distance_threshold_km: f64,
    multipliers: &[f64],
    tariff: Option<BandwidthTariff>,
) -> Vec<SlackRow> {
    let mut config = scenario.config.clone();
    if let Some(tariff) = tariff {
        config = config.with_bandwidth_tariff(tariff);
    }
    let mut sweep = ScenarioSweep::new(&scenario.clusters, &scenario.trace, &scenario.prices);
    sweep.add_constraint_axis(
        0,
        "pc",
        config,
        multipliers.iter().enumerate().map(|(i, &m)| {
            (format!("{i}"), calibrated.constraints(&scenario.config.constraints, m))
        }),
        move || PriceConsciousPolicy::with_distance_threshold(distance_threshold_km),
    );
    let grid = sweep.execute(RunOptions::new());
    multipliers
        .iter()
        .enumerate()
        .map(|(i, &multiplier)| {
            let report = grid.get(&format!("pc@{i}")).expect("point ran").clone();
            SlackRow {
                multiplier,
                savings_percent: report.savings_percent_vs(calibrated.baseline()),
                binding_hours: report.total_bandwidth_binding_hours,
                report,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windows_are_ordered() {
        assert!(price_window().len_hours() > 24 * 200);
        assert!(long_simulation_window().len_hours() >= 24 * 100);
    }

    #[test]
    fn table_printing_does_not_panic() {
        banner("FigX", "smoke test");
        print_table(
            &["a", "bbbb"],
            &[vec!["1".into(), "2".into()], vec!["33".into(), "4444".into()]],
        );
        assert_eq!(fmt(1.23456, 2), "1.23");
    }

    #[test]
    fn sweeps_produce_rows() {
        // Tiny scenario to keep the unit test quick.
        let start = SimHour::from_date(2008, 12, 19);
        let scenario = Scenario::custom_window(3, HourRange::new(start, start.plus_hours(24)))
            .with_energy(EnergyModelParams::optimistic_future());
        let baseline = scenario.baseline_report();
        let caps: Vec<f64> = baseline.clusters.iter().map(|c| c.p95_hits_per_sec).collect();
        let rows = distance_threshold_sweep(&scenario, &baseline, &caps, &[0.0, 1500.0]);
        assert_eq!(rows.len(), 2);
        assert!(rows[1].normalized_cost_relaxed <= rows[0].normalized_cost_relaxed + 1e-9);
        let delays = reaction_delay_sweep(&scenario, 1500.0, &[0, 3]);
        assert_eq!(delays.len(), 2);
        assert!((delays[0].1).abs() < 1e-9);
    }

    #[test]
    fn slack_sweep_is_anchored_by_the_unconstrained_run() {
        let start = SimHour::from_date(2008, 12, 19);
        let scenario = Scenario::custom_window(3, HourRange::new(start, start.plus_hours(36)))
            .with_energy(EnergyModelParams::optimistic_future());
        let calibrated = CalibratedScenario::calibrate(&scenario);
        let rows = bandwidth_slack_sweep(
            &scenario,
            &calibrated,
            1500.0,
            &[1.0, f64::INFINITY],
            Some(BandwidthTariff::default_cdn()),
        );
        assert_eq!(rows.len(), 2);
        assert!(rows[0].report.bandwidth_constrained);
        assert!(!rows[1].report.bandwidth_constrained);
        assert!(rows[1].savings_percent >= rows[0].savings_percent - 1e-9);
        // The tariff prices every run, constrained or not.
        assert!(rows.iter().all(|r| r.report.total_bandwidth_cost_dollars > 0.0));
        // Binding hours only exist where caps do.
        assert_eq!(rows[1].binding_hours, 0.0);
    }

    #[test]
    fn deployment_sweep_produces_one_row_per_deployment() {
        let start = SimHour::from_date(2008, 12, 19);
        let scenario = Scenario::custom_window(3, HourRange::new(start, start.plus_hours(24)))
            .with_energy(EnergyModelParams::optimistic_future());
        let nine = scenario.clusters.clone();
        let rebalanced = nine.scaled(0.8);
        let rows = deployment_savings_sweep(
            &[("nine".into(), nine), ("rebalanced".into(), rebalanced)],
            &scenario.trace,
            &scenario.prices,
            &scenario.config,
            1500.0,
        );
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].label, "nine");
        assert_eq!(rows[0].clusters, 9);
        assert!(rows.iter().all(|r| r.baseline_cost_dollars > 0.0));
        assert!(rows.iter().all(|r| r.mean_distance_km >= 0.0));
    }
}
