//! A long-running router daemon over the incremental tick engine.
//!
//! [`serve`] replays a [`Scenario`]'s trace through a
//! [`SimulationEngine`] in accelerated wall-clock time — one 5-minute
//! simulation step per [`DaemonOptions::step_wait`] — while answering
//! queries over a Unix-domain socket. Prices are not read from a compiled
//! table: each simulated hour's row is ingested into a bounded
//! [`PriceFeed`], exactly as a live deployment would learn market prices,
//! and the engine routes on the feed's delayed view. Fed the same history,
//! the daemon's final report is bit-identical to a batch
//! [`Scenario::execute`] run (pinned by `tests/daemon_smoke.rs`).
//!
//! # Wire protocol
//!
//! Newline-delimited JSON, one request object per line, one reply object
//! per line (see `docs/daemon.md` for the full schema):
//!
//! | request | reply |
//! |---|---|
//! | `{"cmd":"route?","state":"MA"}` | the current per-cluster allocation for that state |
//! | `{"cmd":"stats"}` | the mid-run [`SimulationReport`] plus daemon health (uptime, connection and per-verb request counters) |
//! | `{"cmd":"metrics"}` | the process-wide [`wattroute_obs`] registry as a Prometheus-style text exposition |
//! | `{"cmd":"snapshot"}` | a lossless [`EngineSnapshot`] of the router state |
//! | `{"cmd":"shutdown"}` | acknowledges, then the daemon flushes its final report and exits |
//!
//! Every reply carries `"ok": true` or `"ok": false` plus an `"error"`
//! string; a malformed request line gets an error reply rather than a
//! dropped connection.
//!
//! Request handling is instrumented on the [`wattroute_obs`] registry:
//! per-verb counters (`daemon.requests.*`), connection counters
//! (`daemon.connections.total` / `.rejected`), and — with telemetry
//! enabled — a `daemon.request` latency histogram. The `stats` reply
//! mirrors the same numbers per daemon instance, so they survive even
//! when telemetry stays off.

use std::io::{self, BufRead, BufReader, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};
use wattroute::engine::{DemandSlice, PriceSlice, SimulationEngine};
use wattroute::json::{self, JsonValue};
use wattroute::prelude::*;
use wattroute::report::SimulationReport;
use wattroute_geo::UsState;
use wattroute_market::feed::PriceFeed;
use wattroute_routing::policy::RoutingPolicy;

/// How [`serve`] paces and terminates the replay loop.
#[derive(Debug, Clone)]
pub struct DaemonOptions {
    /// Where to bind the Unix-domain socket. Created on start, removed on
    /// shutdown; serving fails if the path is already bound.
    pub socket_path: PathBuf,
    /// Wall-clock pause per 5-minute simulation step — the replay
    /// acceleration knob. `Duration::ZERO` free-runs the trace (useful for
    /// bit-identity tests); 20ms replays a day of trace in ~5.8 seconds.
    pub step_wait: Duration,
    /// After the trace is exhausted, keep serving queries until a
    /// `shutdown` command arrives (`true`), or flush the final report and
    /// exit immediately (`false`).
    pub linger: bool,
    /// Most query connections served concurrently. A connection beyond the
    /// cap is answered with a single `"ok": false` error reply and closed
    /// instead of being given a handler thread, so a connection flood
    /// cannot exhaust the daemon's threads.
    pub max_connections: usize,
}

/// Default [`DaemonOptions::max_connections`]: generous for interactive
/// use, small enough that a runaway client loop fails fast.
pub const DEFAULT_MAX_CONNECTIONS: usize = 64;

impl DaemonOptions {
    /// Free-running, non-lingering options for a socket path — the
    /// configuration batch-equivalence tests use.
    pub fn free_run(socket_path: impl Into<PathBuf>) -> Self {
        Self {
            socket_path: socket_path.into(),
            step_wait: Duration::ZERO,
            linger: false,
            max_connections: DEFAULT_MAX_CONNECTIONS,
        }
    }

    /// Override the concurrent-connection cap (minimum 1).
    pub fn with_max_connections(mut self, max_connections: usize) -> Self {
        assert!(max_connections >= 1, "the daemon needs at least one connection slot");
        self.max_connections = max_connections;
        self
    }
}

/// Per-daemon health counters surfaced in the `stats` reply. The same
/// events are mirrored onto the process-wide [`wattroute_obs`] registry
/// (`daemon.*` series); the instance copy keeps `stats` meaningful when
/// several daemons share one process (tests do) or telemetry is off.
#[derive(Debug, Default)]
struct DaemonMetrics {
    connections_total: AtomicU64,
    connections_rejected: AtomicU64,
    requests_route: AtomicU64,
    requests_stats: AtomicU64,
    requests_metrics: AtomicU64,
    requests_snapshot: AtomicU64,
    requests_shutdown: AtomicU64,
    requests_errors: AtomicU64,
}

impl DaemonMetrics {
    fn record_connection(&self) {
        self.connections_total.fetch_add(1, Ordering::Relaxed);
        wattroute_obs::counter!("daemon.connections.opened").inc();
    }

    fn record_rejected_connection(&self) {
        self.connections_rejected.fetch_add(1, Ordering::Relaxed);
        wattroute_obs::counter!("daemon.connections.rejected").inc();
    }

    fn record_verb(&self, cmd: &str) {
        match cmd {
            "route?" => {
                self.requests_route.fetch_add(1, Ordering::Relaxed);
                wattroute_obs::counter!("daemon.requests.route").inc();
            }
            "stats" => {
                self.requests_stats.fetch_add(1, Ordering::Relaxed);
                wattroute_obs::counter!("daemon.requests.stats").inc();
            }
            "metrics" => {
                self.requests_metrics.fetch_add(1, Ordering::Relaxed);
                wattroute_obs::counter!("daemon.requests.metrics").inc();
            }
            "snapshot" => {
                self.requests_snapshot.fetch_add(1, Ordering::Relaxed);
                wattroute_obs::counter!("daemon.requests.snapshot").inc();
            }
            "shutdown" => {
                self.requests_shutdown.fetch_add(1, Ordering::Relaxed);
                wattroute_obs::counter!("daemon.requests.shutdown").inc();
            }
            _ => {}
        }
    }

    fn record_error(&self) {
        self.requests_errors.fetch_add(1, Ordering::Relaxed);
        wattroute_obs::counter!("daemon.requests.errors").inc();
    }

    fn requests_by_verb(&self) -> JsonValue {
        json::object([
            ("route?", JsonValue::Number(self.requests_route.load(Ordering::Relaxed) as f64)),
            ("stats", JsonValue::Number(self.requests_stats.load(Ordering::Relaxed) as f64)),
            ("metrics", JsonValue::Number(self.requests_metrics.load(Ordering::Relaxed) as f64)),
            ("snapshot", JsonValue::Number(self.requests_snapshot.load(Ordering::Relaxed) as f64)),
            ("shutdown", JsonValue::Number(self.requests_shutdown.load(Ordering::Relaxed) as f64)),
            ("errors", JsonValue::Number(self.requests_errors.load(Ordering::Relaxed) as f64)),
        ])
    }
}

/// Replay `scenario` through a tick engine, serving queries on a Unix
/// socket, until the trace ends (and, with [`DaemonOptions::linger`], a
/// `shutdown` command arrives). Returns the final flushed
/// [`SimulationReport`] — bit-identical to the batch run of the same
/// scenario and policy.
///
/// # Errors
/// Returns any socket bind/IO error. Query-connection errors are per
/// connection and never abort the daemon.
pub fn serve(
    scenario: &Scenario,
    policy: &mut dyn RoutingPolicy,
    options: &DaemonOptions,
) -> io::Result<SimulationReport> {
    let listener = UnixListener::bind(&options.socket_path)?;
    listener.set_nonblocking(true)?;

    let hubs = scenario.clusters.hub_ids();
    let series: Vec<_> = hubs
        .iter()
        .map(|hub| scenario.prices.for_hub(*hub).expect("scenario covers every cluster hub"))
        .collect();
    let mut feed = PriceFeed::new(hubs, scenario.config.reaction_delay_hours);

    let engine = Mutex::new(SimulationEngine::new(
        &scenario.clusters,
        &scenario.trace.states,
        scenario.config.clone(),
    ));
    let shutdown = AtomicBool::new(false);
    let metrics = DaemonMetrics::default();
    let started = Instant::now();

    // Pre-register the engine series the `metrics` verb promises, so the
    // exposition carries them from the first scrape (at zero) instead of
    // only after the engine happens to take each branch.
    wattroute_obs::counter!("engine.alloc_cache.hits").get();
    wattroute_obs::counter!("engine.alloc_cache.misses").get();
    wattroute_obs::histogram!("engine.tick").count();

    std::thread::scope(|scope| {
        scope.spawn(|| {
            accept_loop(&listener, &engine, &shutdown, options.max_connections, &metrics, started)
        });

        let mut row = Vec::with_capacity(series.len());
        for (i, step) in scenario.trace.steps().iter().enumerate() {
            if shutdown.load(Ordering::SeqCst) {
                break;
            }
            let hour = scenario.trace.step_hour(i);
            if feed.current_hour() != Some(hour) {
                row.clear();
                row.extend(
                    series.iter().map(|s| s.price_at(hour).expect("series covers the trace")),
                );
                feed.ingest(hour, &row).expect("trace hours are contiguous");
            }
            {
                let mut engine = engine.lock().expect("engine lock");
                engine.set_clamped_lead_hours(feed.clamped_lead_hours());
                engine.tick(
                    policy,
                    PriceSlice::new(
                        hour,
                        feed.delayed().expect("ingested above"),
                        feed.billing().expect("ingested above"),
                    ),
                    DemandSlice::new(&step.us_demand),
                );
            }
            if !options.step_wait.is_zero() {
                std::thread::sleep(options.step_wait);
            }
        }
        if options.linger {
            while !shutdown.load(Ordering::SeqCst) {
                std::thread::sleep(Duration::from_millis(5));
            }
        } else {
            shutdown.store(true, Ordering::SeqCst);
        }
    });

    let report = engine.into_inner().expect("all threads joined").report();
    let _ = std::fs::remove_file(&options.socket_path);
    Ok(report)
}

/// Accept connections until shutdown, answering each request line against
/// the shared engine. At most `max_connections` handler threads are live
/// at once; a connection beyond the cap gets one JSON error reply and is
/// closed.
fn accept_loop(
    listener: &UnixListener,
    engine: &Mutex<SimulationEngine<'_>>,
    shutdown: &AtomicBool,
    max_connections: usize,
    metrics: &DaemonMetrics,
    started: Instant,
) {
    let live = AtomicUsize::new(0);
    let live = &live;
    std::thread::scope(|scope| loop {
        match listener.accept() {
            Ok((mut stream, _)) => {
                // A slow client must not wedge the daemon: each connection
                // gets its own thread, and bounded reads let every thread
                // re-check the shutdown flag.
                let _ = stream.set_read_timeout(Some(Duration::from_millis(50)));
                metrics.record_connection();
                if live.fetch_add(1, Ordering::SeqCst) >= max_connections {
                    live.fetch_sub(1, Ordering::SeqCst);
                    // Saturation must be visible, not silent: count the
                    // rejection so `--max-conns` floods show up in stats
                    // and the metrics exposition.
                    metrics.record_rejected_connection();
                    metrics.record_error();
                    let mut reply =
                        error_reply(&format!("connection limit reached ({max_connections})"))
                            .to_string();
                    reply.push('\n');
                    let _ = stream.write_all(reply.as_bytes());
                } else {
                    scope.spawn(move || {
                        let _ = handle_connection(stream, engine, shutdown, metrics, started);
                        live.fetch_sub(1, Ordering::SeqCst);
                    });
                }
                if shutdown.load(Ordering::SeqCst) {
                    break;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                if shutdown.load(Ordering::SeqCst) {
                    break;
                }
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => break,
        }
    });
}

/// Serve one connection: a sequence of newline-delimited request objects,
/// answered in order, until EOF or shutdown.
fn handle_connection(
    stream: UnixStream,
    engine: &Mutex<SimulationEngine<'_>>,
    shutdown: &AtomicBool,
    metrics: &DaemonMetrics,
    started: Instant,
) -> io::Result<()> {
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    // One request-line buffer and one reply buffer per connection: at
    // steady state a long-lived client (the poller behind `routed query
    // --watch`) is served with zero per-request allocations on the framing
    // path, however many lines it sends.
    let mut line = String::new();
    let mut reply_buf = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => return Ok(()), // EOF
            Ok(_) => {
                let reply = handle_request(line.trim(), engine, shutdown, metrics, started);
                reply_buf.clear();
                reply.write_to(&mut reply_buf);
                reply_buf.push('\n');
                writer.write_all(reply_buf.as_bytes())?;
                writer.flush()?;
                if shutdown.load(Ordering::SeqCst) {
                    return Ok(());
                }
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                if shutdown.load(Ordering::SeqCst) {
                    return Ok(());
                }
            }
            Err(e) => return Err(e),
        }
    }
}

/// Answer one request line. Always produces a reply object; never panics
/// on malformed input. Wraps the dispatch in a `daemon.request` latency
/// span and books the verb / error counters.
fn handle_request(
    line: &str,
    engine: &Mutex<SimulationEngine<'_>>,
    shutdown: &AtomicBool,
    metrics: &DaemonMetrics,
    started: Instant,
) -> JsonValue {
    let _request_span = wattroute_obs::span!("daemon.request");
    let reply = dispatch_request(line, engine, shutdown, metrics, started);
    if reply.get("ok").and_then(JsonValue::as_bool) != Some(true) {
        metrics.record_error();
    }
    reply
}

/// The verb dispatch behind [`handle_request`].
fn dispatch_request(
    line: &str,
    engine: &Mutex<SimulationEngine<'_>>,
    shutdown: &AtomicBool,
    metrics: &DaemonMetrics,
    started: Instant,
) -> JsonValue {
    if line.is_empty() {
        return error_reply("empty request line");
    }
    let request = match JsonValue::parse(line) {
        Ok(v) => v,
        Err(e) => return error_reply(&format!("malformed request: {e}")),
    };
    let Some(cmd) = request.get("cmd").and_then(JsonValue::as_str) else {
        return error_reply("request has no string 'cmd' field");
    };
    metrics.record_verb(cmd);
    match cmd {
        "route?" => {
            let Some(code) = request.get("state").and_then(JsonValue::as_str) else {
                return error_reply("route? needs a 'state' field (two-letter postal code)");
            };
            let Some(state) = UsState::from_abbreviation(code) else {
                return error_reply(&format!("unknown state '{code}'"));
            };
            let engine = engine.lock().expect("engine lock");
            route_reply(&engine, state, code)
        }
        "stats" => {
            let engine = engine.lock().expect("engine lock");
            let health = [
                ("uptime_secs", JsonValue::Number(started.elapsed().as_secs_f64())),
                (
                    "connections_total",
                    JsonValue::Number(metrics.connections_total.load(Ordering::Relaxed) as f64),
                ),
                ("requests_by_verb", metrics.requests_by_verb()),
            ];
            match tier_load_reply(&engine) {
                Some(tier_load) => json::object_iter(
                    [
                        ("ok", JsonValue::Bool(true)),
                        ("steps", JsonValue::Number(engine.steps() as f64)),
                        ("report", engine.report().to_json_value()),
                        ("tier_load", tier_load),
                    ]
                    .into_iter()
                    .chain(health),
                ),
                None => json::object_iter(
                    [
                        ("ok", JsonValue::Bool(true)),
                        ("steps", JsonValue::Number(engine.steps() as f64)),
                        ("report", engine.report().to_json_value()),
                    ]
                    .into_iter()
                    .chain(health),
                ),
            }
        }
        "metrics" => json::object([
            ("ok", JsonValue::Bool(true)),
            ("uptime_secs", JsonValue::Number(started.elapsed().as_secs_f64())),
            ("telemetry_enabled", JsonValue::Bool(wattroute_obs::Telemetry::enabled())),
            ("exposition", JsonValue::String(wattroute_obs::telemetry().prometheus())),
        ]),
        "snapshot" => {
            let engine = engine.lock().expect("engine lock");
            json::object([
                ("ok", JsonValue::Bool(true)),
                ("steps", JsonValue::Number(engine.steps() as f64)),
                ("snapshot", engine.snapshot().to_json_value()),
            ])
        }
        "shutdown" => {
            shutdown.store(true, Ordering::SeqCst);
            json::object([("ok", JsonValue::Bool(true)), ("shutting_down", JsonValue::Bool(true))])
        }
        other => error_reply(&format!("unknown command '{other}'")),
    }
}

/// The `route?` reply: where the allocation in force sends one state's
/// demand, as hits/second per cluster label.
fn route_reply(engine: &SimulationEngine<'_>, state: UsState, code: &str) -> JsonValue {
    let Some(allocation) = engine.current_allocation() else {
        return error_reply("no allocation yet (no tick has run)");
    };
    let Some(s) = engine.states().iter().position(|x| *x == state) else {
        return error_reply(&format!("state '{code}' is not in this scenario's client set"));
    };
    let hour = engine.last_allocation_hour().expect("allocation implies an hour");
    let per_cluster =
        json::object_iter(
            engine.clusters().clusters().iter().enumerate().map(|(c, cluster)| {
                (cluster.label.as_str(), JsonValue::Number(allocation.row(c)[s]))
            }),
        );
    json::object([
        ("ok", JsonValue::Bool(true)),
        ("state", JsonValue::String(code.to_uppercase())),
        ("hour", JsonValue::Number(hour.0 as f64)),
        ("hits_per_sec", per_cluster),
    ])
}

/// The `stats` reply's tier-level view of the allocation in force: the
/// daemon's flat deployment embedded as a one-region tree, with
/// [`TierLoads`] aggregating the current per-cluster loads up it. `None`
/// until the first tick installs an allocation.
fn tier_load_reply(engine: &SimulationEngine<'_>) -> Option<JsonValue> {
    let allocation = engine.current_allocation()?;
    let topology = single_region_of(engine.clusters());
    let loads = TierLoads::aggregate(&topology, &allocation.cluster_loads());
    Some(json::object([
        (
            "metros",
            json::object_iter(
                topology
                    .metro_labels()
                    .iter()
                    .zip(&loads.metro)
                    .map(|(label, load)| (label.as_str(), JsonValue::Number(*load))),
            ),
        ),
        (
            "regions",
            json::object_iter(
                topology
                    .region_labels()
                    .iter()
                    .zip(&loads.region)
                    .map(|(label, load)| (label.as_str(), JsonValue::Number(*load))),
            ),
        ),
        ("total_hits_per_sec", JsonValue::Number(loads.total)),
    ]))
}

fn error_reply(message: &str) -> JsonValue {
    json::object([
        ("ok", JsonValue::Bool(false)),
        ("error", JsonValue::String(message.to_string())),
    ])
}

/// A minimal blocking client for the daemon's wire protocol — used by the
/// `routed query` subcommand and the smoke tests.
#[derive(Debug)]
pub struct DaemonClient {
    stream: BufReader<UnixStream>,
}

impl DaemonClient {
    /// Connect to a daemon socket, retrying for up to `timeout` while the
    /// daemon starts up.
    pub fn connect(socket_path: &std::path::Path, timeout: Duration) -> io::Result<Self> {
        let deadline = std::time::Instant::now() + timeout;
        loop {
            match UnixStream::connect(socket_path) {
                Ok(stream) => return Ok(Self { stream: BufReader::new(stream) }),
                Err(e) => {
                    if std::time::Instant::now() >= deadline {
                        return Err(e);
                    }
                    std::thread::sleep(Duration::from_millis(10));
                }
            }
        }
    }

    /// Send one request line and read the reply line.
    pub fn request(&mut self, request: &JsonValue) -> io::Result<JsonValue> {
        let inner = self.stream.get_mut();
        inner.write_all(request.to_string().as_bytes())?;
        inner.write_all(b"\n")?;
        inner.flush()?;
        let mut reply = String::new();
        self.stream.read_line(&mut reply)?;
        JsonValue::parse(reply.trim())
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("bad reply: {e}")))
    }

    /// Convenience: send a bare `{"cmd": ...}` request.
    pub fn command(&mut self, cmd: &str) -> io::Result<JsonValue> {
        self.request(&json::object([("cmd", JsonValue::String(cmd.to_string()))]))
    }
}
