//! The savings-vs-bandwidth-slack curve (§4, §6.1): how much of the
//! price-conscious savings survives as the 95/5 bandwidth constraint
//! tightens from "unconstrained" down to the paper's "follow the original
//! 95/5 levels" regime.
//!
//! The pipeline is calibrate → constrain → account: one baseline
//! (Akamai-like) replay records every cluster's five-minute load series
//! and fixes the per-cluster 95th-percentile caps; the optimizer then
//! re-runs under those caps scaled by each slack multiplier (1.0× is the
//! paper's regime, ∞ removes the caps — and must reproduce the
//! unconstrained run bit-for-bit); finally a 95/5 tariff prices the
//! observed percentiles so the bandwidth bill appears next to the
//! electricity bill.

use wattroute::prelude::*;
use wattroute_bench::{bandwidth_slack_sweep, banner, fmt, print_table, scenario_24_day};

const THRESHOLD_KM: f64 = 1500.0;
const MULTIPLIERS: [f64; 4] = [1.0, 1.1, 1.3, f64::INFINITY];

fn multiplier_label(m: f64) -> String {
    if m.is_finite() {
        format!("{m:.1}x")
    } else {
        "inf".to_string()
    }
}

fn main() {
    banner(
        "Bandwidth slack",
        "24-day savings vs 95/5 cap multiplier, price-conscious routing @ 1500 km",
    );
    let scenario = scenario_24_day();
    let calibrated = CalibratedScenario::calibrate(&scenario);
    let rows = bandwidth_slack_sweep(&scenario, &calibrated, THRESHOLD_KM, &MULTIPLIERS, None);

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                multiplier_label(r.multiplier),
                fmt(r.savings_percent, 2),
                fmt(r.report.total_cost_dollars, 0),
                if r.report.bandwidth_constrained { "yes" } else { "no" }.to_string(),
            ]
        })
        .collect();
    print_table(&["cap multiplier", "savings %", "cost $", "95/5 capped"], &table);

    // The curve must be monotone: more slack can only help the optimizer.
    for pair in rows.windows(2) {
        assert!(
            pair[1].savings_percent >= pair[0].savings_percent - 1e-9,
            "savings must not decrease as the cap multiplier grows: {}% @ {} vs {}% @ {}",
            pair[0].savings_percent,
            multiplier_label(pair[0].multiplier),
            pair[1].savings_percent,
            multiplier_label(pair[1].multiplier),
        );
    }
    // The ∞ point *is* the unconstrained run — identical report, not just
    // close.
    let unconstrained = scenario.execute(
        &mut PriceConsciousPolicy::with_distance_threshold(THRESHOLD_KM),
        RunOptions::new(),
    );
    assert_eq!(
        rows.last().expect("at least one multiplier").report,
        unconstrained,
        "the infinite-slack point must reproduce the unconstrained run bit-for-bit"
    );
    println!("\nchecked: savings monotone in slack; inf point == unconstrained run, bit-for-bit");

    // The "account" phase: re-run the paper's 1.0x regime under a 95/5
    // transit tariff so the reports carry the bandwidth bill the caps
    // protect.
    let tariff = BandwidthTariff::default_cdn();
    let accounted =
        bandwidth_slack_sweep(&scenario, &calibrated, THRESHOLD_KM, &[1.0], Some(tariff));
    let run = &accounted[0].report;
    let table: Vec<Vec<String>> = run
        .clusters
        .iter()
        .map(|c| {
            vec![
                c.label.clone(),
                fmt(c.p95_hits_per_sec, 0),
                c.bandwidth_cap_hits_per_sec.map(|cap| fmt(cap, 0)).unwrap_or_default(),
                fmt(c.bandwidth_binding_hours, 1),
                fmt(c.bandwidth_cost_dollars, 0),
            ]
        })
        .collect();
    println!(
        "\n95/5 accounting at 1.0x (tariff: ${}/Mbps*month, {} Mbit/hit):",
        fmt(tariff.dollars_per_mbps_month, 0),
        tariff.megabits_per_hit
    );
    print_table(&["cluster", "p95 hits/s", "cap hits/s", "binding h", "bw bill $"], &table);
    println!(
        "totals: electricity ${} + bandwidth ${} ({}h binding across clusters)",
        fmt(run.total_cost_dollars, 0),
        fmt(run.total_bandwidth_cost_dollars, 0),
        fmt(run.total_bandwidth_binding_hours, 1),
    );
}
