//! `obs_report` — exercise every instrumented subsystem with telemetry
//! on, snapshot the [`wattroute_obs`] registry, and emit the PR's
//! `BENCH_09.json` (or gate CI on the enabled-telemetry overhead).
//!
//! ```text
//! obs_report [--out PATH] [--date YYYY-MM-DD] [--reps N]
//! obs_report --check-overhead [--max-overhead-pct P] [--reps N]
//! ```
//!
//! Default mode runs a representative instrumented workload of each
//! subsystem — a one-week batch replay, a sharded hierarchical replay, a
//! scenario sweep, and a small Monte Carlo — with spans enabled, measures
//! the off-vs-on overhead of the two replay hot paths (untimed warmups,
//! then the median of `--reps` *interleaved* off/on timed pairs; the
//! per-side minimum is recorded alongside), and writes one JSON document
//! whose `registry` section is
//! the live [`Telemetry::snapshot`] rendered by the crate's own JSON
//! exposition: nothing in the file is hand-written.
//!
//! `--check-overhead` skips the document and exits non-zero when either
//! replay's enabled overhead — the median of the per-pair on/off ratios,
//! the noise-robust statistic — exceeds `--max-overhead-pct` (default 5):
//! the CI gate backing the "zero-cost when off, cheap when on" claim.

use std::process::ExitCode;
use std::time::Instant;
use wattroute::hierarchy::HierarchicalReplay;
use wattroute::json::{self, JsonValue};
use wattroute::montecarlo::MonteCarlo;
use wattroute::prelude::*;
use wattroute::sweep::ScenarioSweep;
use wattroute_bench::HARNESS_SEED;
use wattroute_geo::topology::Topology;
use wattroute_market::generator::PriceGenerator;
use wattroute_market::model::MarketModel;
use wattroute_market::time::SimHour;
use wattroute_obs::{telemetry, Telemetry};
use wattroute_optimizer::{DeploymentOptimizer, GreedyDescent, SearchBudget, SearchSpace};
use wattroute_routing::policy::RoutingPolicy;

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).map(String::as_str)
}

fn make_policy() -> Box<dyn RoutingPolicy> {
    Box::new(PriceConsciousPolicy::with_distance_threshold(1500.0))
}

fn week_scenario() -> Scenario {
    let start = SimHour::from_date(2008, 12, 19);
    Scenario::custom_window(HARNESS_SEED, HourRange::new(start, start.plus_hours(7 * 24)))
}

/// Median of a sample set (mean of the middle pair for even counts).
fn median(samples: &[f64]) -> f64 {
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let mid = sorted.len() / 2;
    if sorted.len() % 2 == 0 {
        (sorted[mid - 1] + sorted[mid]) / 2.0
    } else {
        sorted[mid]
    }
}

fn minimum(timings: &[f64]) -> f64 {
    timings.iter().copied().fold(f64::INFINITY, f64::min)
}

/// One off/on overhead datapoint for telemetry disabled vs enabled
/// (spans only, no trace sink — tracing is a diagnostic mode, not the
/// overhead claim). Methodology, tuned for a noisy shared 1-vCPU box:
///
/// * one untimed warmup run per side, so cold caches, lazy statics, and
///   the allocator's first growth never land in a timed repetition;
/// * `reps` **interleaved** off/on pairs — measuring all-off then all-on
///   turns any drift in background load into systematic bias, which is
///   how BENCH_09 recorded a spurious −7.8% "overhead" (best-of-N over
///   back-to-back blocks); alternating sides makes drift hit both series
///   equally;
/// * the gated statistic is the **median of the per-pair overhead
///   ratios**: a background burst longer than one pair skews a
///   ratio-of-medians, but it lands on both runs of the pairs it covers,
///   so the per-pair ratio stays honest and its median shrugs off the
///   pairs a burst straddles. Per-side medians and minimums are recorded
///   alongside as references, never gated on (the minimum is too easily
///   won by whichever side caught a quiet scheduler slice).
struct Overhead {
    off_secs: Vec<f64>,
    on_secs: Vec<f64>,
}

impl Overhead {
    fn measure(reps: usize, mut workload: impl FnMut()) -> Self {
        let timed = |f: &mut dyn FnMut()| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64()
        };
        // Warmup, untimed, one run per side.
        Telemetry::disable();
        workload();
        Telemetry::enable();
        workload();

        let mut off_secs = Vec::with_capacity(reps);
        let mut on_secs = Vec::with_capacity(reps);
        for _ in 0..reps.max(1) {
            Telemetry::disable();
            off_secs.push(timed(&mut workload));
            Telemetry::enable();
            on_secs.push(timed(&mut workload));
        }
        Telemetry::disable();
        Self { off_secs, on_secs }
    }

    fn off_median(&self) -> f64 {
        median(&self.off_secs)
    }

    fn on_median(&self) -> f64 {
        median(&self.on_secs)
    }

    fn overhead_pct(&self) -> f64 {
        let ratios: Vec<f64> =
            self.off_secs.iter().zip(&self.on_secs).map(|(off, on)| on / off).collect();
        (median(&ratios) - 1.0) * 100.0
    }

    fn to_json(&self) -> JsonValue {
        json::object([
            ("off_median_ms", JsonValue::Number(self.off_median() * 1.0e3)),
            ("off_min_ms", JsonValue::Number(minimum(&self.off_secs) * 1.0e3)),
            ("on_median_ms", JsonValue::Number(self.on_median() * 1.0e3)),
            ("on_min_ms", JsonValue::Number(minimum(&self.on_secs) * 1.0e3)),
            ("overhead_pct", JsonValue::Number(self.overhead_pct())),
        ])
    }
}

/// The two replay hot paths the <5% acceptance gate covers. The windows
/// are twice the subsystem-exercise ones: with the epoch-cached tick a
/// one-week batch replay finishes in ~15ms, small enough for scheduler
/// jitter on a 1-vCPU box to swamp a few percent of signal even in a
/// median; doubling the work halves the relative noise at trivial cost.
fn measure_overheads(reps: usize) -> (Overhead, Overhead) {
    let start = SimHour::from_date(2008, 12, 19);
    let scenario =
        Scenario::custom_window(HARNESS_SEED, HourRange::new(start, start.plus_hours(14 * 24)));
    let engine = Overhead::measure(reps, || {
        let mut policy = PriceConsciousPolicy::with_distance_threshold(1500.0);
        let _ = scenario.execute(&mut policy, RunOptions::new());
    });

    let topology = Topology::synthetic(HARNESS_SEED, 120).with_tier_slack(1.1);
    let start = SimHour::from_date(2007, 1, 1);
    let range = HourRange::new(start, start.plus_hours(28 * 24));
    let trace =
        SyntheticWorkloadConfig { seed: HARNESS_SEED, ..Default::default() }.generate(range);
    let prices =
        PriceGenerator::new(MarketModel::calibrated(), HARNESS_SEED).realtime_hourly(range);
    let config = SimulationConfig::default().with_reallocation_interval(12);
    let replay = HierarchicalReplay::new(&topology, &trace, &prices, config);
    let hierarchy = Overhead::measure(reps, || {
        let _ = replay.run_sharded(&make_policy);
    });
    (engine, hierarchy)
}

/// Run one representative workload of every instrumented subsystem with
/// telemetry on, so the registry snapshot covers each metric family.
fn exercise_subsystems() {
    Telemetry::enable();
    let scenario = week_scenario();

    // Batch replay: engine.tick phases, price view, alloc cache.
    let mut policy = PriceConsciousPolicy::with_distance_threshold(1500.0);
    let _ = scenario.execute(&mut policy, RunOptions::new());

    // Scenario sweep: per-cell latency plus artifact-cache hits/misses
    // (the mirror deployment shares the default's hub list, so its
    // compiled artifacts come from the cache).
    let mut sweep = ScenarioSweep::new(&scenario.clusters, &scenario.trace, &scenario.prices);
    let mirror = sweep.add_deployment("mirror", &scenario.clusters);
    sweep.add_point("pc", scenario.config.clone(), || {
        PriceConsciousPolicy::with_distance_threshold(1500.0)
    });
    sweep.add_point("baseline", scenario.config.clone(), AkamaiLikePolicy::default);
    sweep.add_point_on(mirror, "pc-mirror", scenario.config.clone(), || {
        PriceConsciousPolicy::with_distance_threshold(1500.0)
    });
    let _ = sweep.execute(RunOptions::new());

    // Hierarchical replay: shard + merge timings.
    let topology = Topology::synthetic(HARNESS_SEED, 60).with_tier_slack(1.1);
    let start = SimHour::from_date(2007, 1, 1);
    let range = HourRange::new(start, start.plus_hours(7 * 24));
    let trace =
        SyntheticWorkloadConfig { seed: HARNESS_SEED, ..Default::default() }.generate(range);
    let prices =
        PriceGenerator::new(MarketModel::calibrated(), HARNESS_SEED).realtime_hourly(range);
    let replay = HierarchicalReplay::new(
        &topology,
        &trace,
        &prices,
        SimulationConfig::default().with_reallocation_interval(12),
    );
    let _ = replay.run_sharded(&make_policy);

    // Optimizer: candidate-evaluation counter, over a tiny 36-hour
    // greedy search on the full nine-hub deployment.
    let day_and_half = HourRange::new(
        SimHour::from_date(2008, 12, 19),
        SimHour::from_date(2008, 12, 19).plus_hours(36),
    );
    let opt_scenario = Scenario::custom_window(HARNESS_SEED, day_and_half);
    let (space, start) = SearchSpace::from_deployment(&opt_scenario.clusters, 800);
    let _ = DeploymentOptimizer::new(
        space,
        &opt_scenario.trace,
        &opt_scenario.prices,
        opt_scenario.config.clone(),
    )
    .with_budget(SearchBudget::smoke())
    .with_start(start)
    .run(&mut GreedyDescent::default());

    // Monte Carlo: per-path durations and worker utilization.
    let two_days = HourRange::new(
        SimHour::from_date(2008, 12, 19),
        SimHour::from_date(2008, 12, 19).plus_hours(2 * 24),
    );
    let mc_scenario = Scenario::custom_window(HARNESS_SEED, two_days);
    let model = MarketModel::calibrated().restricted_to(&mc_scenario.clusters.hub_ids());
    let _ = MonteCarlo::new(
        &mc_scenario.clusters,
        &mc_scenario.trace,
        model,
        mc_scenario.config.clone(),
        HARNESS_SEED,
    )
    .with_paths(8)
    .with_threads(2)
    .run();

    Telemetry::disable();
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let reps: usize = flag_value(&args, "--reps").map_or(5, |v| v.parse().expect("--reps N"));

    if args.iter().any(|a| a == "--check-overhead") {
        let max_pct: f64 = flag_value(&args, "--max-overhead-pct")
            .map_or(5.0, |v| v.parse().expect("--max-overhead-pct P"));
        let (engine, hierarchy) = measure_overheads(reps);
        let mut failed = false;
        for (label, o) in [("simulation_engine", &engine), ("hierarchical_replay", &hierarchy)] {
            eprintln!(
                "obs_report: {label}: off median {:.1}ms on median {:.1}ms -> {:+.2}% (max {max_pct}%)",
                o.off_median() * 1.0e3,
                o.on_median() * 1.0e3,
                o.overhead_pct(),
            );
            if o.overhead_pct() > max_pct {
                eprintln!("obs_report: {label} enabled-telemetry overhead exceeds the budget");
                failed = true;
            }
        }
        return if failed { ExitCode::FAILURE } else { ExitCode::SUCCESS };
    }

    let date = flag_value(&args, "--date").unwrap_or("unknown").to_string();
    let (engine, hierarchy) = measure_overheads(reps);
    exercise_subsystems();

    // The registry section is the obs crate's own JSON exposition of the
    // live snapshot — parsed back only to embed it in the document.
    let registry =
        JsonValue::parse(&telemetry().snapshot_json()).expect("snapshot_json emits valid JSON");

    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let doc = json::object([
        ("pr", JsonValue::Number(9.0)),
        (
            "title",
            JsonValue::String(
                "wattroute_obs telemetry layer: metrics registry, phase tracing, daemon metrics endpoint"
                    .to_string(),
            ),
        ),
        ("date", JsonValue::String(date)),
        (
            "environment",
            json::object([
                ("profile", JsonValue::String(if cfg!(debug_assertions) {
                    "debug".to_string()
                } else {
                    "release".to_string()
                })),
                ("cores", JsonValue::Number(cores as f64)),
                (
                    "note",
                    JsonValue::String(
                        "Generated by obs_report: overheads are warmed-up medians over N \
                         interleaved off/on wall-clock pairs (minimum also recorded) for the \
                         telemetry-off vs telemetry-on (spans, no trace sink) replays; the \
                         registry section is Telemetry::snapshot_json() after one instrumented \
                         run of each subsystem (batch replay, sweep, sharded hierarchy, Monte \
                         Carlo). Histogram units are seconds."
                            .to_string(),
                    ),
                ),
            ]),
        ),
        (
            "groups",
            json::object([(
                "telemetry_overhead",
                json::object([
                    ("simulation_engine", engine.to_json()),
                    ("hierarchical_replay", hierarchy.to_json()),
                    ("budget_pct", JsonValue::Number(5.0)),
                ]),
            )]),
        ),
        ("registry", registry),
    ]);

    let text = format!("{doc}\n");
    match flag_value(&args, "--out") {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &text) {
                eprintln!("obs_report: cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("obs_report: wrote {path}");
        }
        None => print!("{text}"),
    }
    ExitCode::SUCCESS
}
