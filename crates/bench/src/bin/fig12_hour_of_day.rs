//! Figure 12: price-differential distributions by hour of day for three pairs.

use wattroute_bench::{banner, fmt, price_window, print_table, HARNESS_SEED};
use wattroute_geo::HubId;
use wattroute_market::differential::Differential;
use wattroute_market::prelude::*;

fn main() {
    banner("Figure 12", "Differential (median, IQR) for each hour of day (EST/EDT)");
    let pairs = [
        ("PaloAlto - Richmond", HubId::PaloAltoCa, HubId::RichmondVa),
        ("Boston - NYC", HubId::BostonMa, HubId::NewYorkNy),
        ("Chicago - Peoria", HubId::ChicagoIl, HubId::PeoriaIl),
    ];
    let mut hubs: Vec<HubId> = pairs.iter().flat_map(|(_, a, b)| [*a, *b]).collect();
    hubs.sort();
    hubs.dedup();
    let generator =
        PriceGenerator::new(MarketModel::calibrated().restricted_to(&hubs), HARNESS_SEED);
    let set = generator.realtime_hourly(price_window());

    for (name, a, b) in pairs {
        let d = Differential::between(set.for_hub(a).unwrap(), set.for_hub(b).unwrap()).unwrap();
        println!("\n{name}:");
        let rows: Vec<Vec<String>> = d
            .hour_of_day_distribution()
            .iter()
            .map(|(hour, s)| {
                vec![format!("{hour:02}:00"), fmt(s.q1, 1), fmt(s.median, 1), fmt(s.q3, 1)]
            })
            .collect();
        print_table(&["hour (EST)", "Q1", "median", "Q3"], &rows);
    }
    println!();
    println!("Expected shape (PaloAlto-Richmond): Virginia has the edge before ~5am Eastern, the");
    println!("situation reverses by mid-morning, and mid-afternoon is roughly neutral — driven by");
    println!("the three-hour offset between the coasts' demand peaks.");
}
