//! Golden-file smoke test for the deployment optimizer: a tiny, fully
//! deterministic five-hub search — greedy descent plus seeded local
//! search on a 36-hour window — whose `OptimizerReport` JSON (both
//! strategies, full audit trails) is checked into
//! `crates/bench/golden/optimize_smoke.json`. CI runs this with
//! `--check`; any change to the search order, the objective arithmetic,
//! the evaluator or the engine underneath fails the diff instead of
//! silently shifting placements.
//!
//! Without arguments the binary prints the JSON to stdout (pipe it to the
//! golden file to re-bless after an *intentional* behaviour change).

use wattroute::json::{self, JsonValue};
use wattroute::objective::Objective;
use wattroute::prelude::*;
use wattroute_bench::HARNESS_SEED;
use wattroute_energy::model::EnergyModelParams;
use wattroute_market::time::SimHour;
use wattroute_optimizer::{
    DeploymentOptimizer, GreedyDescent, LocalSearch, SearchBudget, SearchSpace,
};
use wattroute_workload::ClusterSet;

/// Relative tolerance for numeric comparison against the golden file (see
/// `sweep_smoke` for why exact equality is too strict across libm
/// builds). Splits and counts are integers and compare exactly.
const REL_TOLERANCE: f64 = 1e-9;

/// Structural JSON comparison with a relative tolerance on numbers.
fn approx_eq(a: &JsonValue, b: &JsonValue) -> bool {
    match (a, b) {
        (JsonValue::Number(x), JsonValue::Number(y)) => {
            x == y || (x - y).abs() <= REL_TOLERANCE * x.abs().max(y.abs()).max(1.0)
        }
        (JsonValue::Array(xs), JsonValue::Array(ys)) => {
            xs.len() == ys.len() && xs.iter().zip(ys.iter()).all(|(x, y)| approx_eq(x, y))
        }
        (JsonValue::Object(xs), JsonValue::Object(ys)) => {
            xs.len() == ys.len()
                && xs
                    .iter()
                    .zip(ys.iter())
                    .all(|((ka, va), (kb, vb))| ka == kb && approx_eq(va, vb))
        }
        _ => a == b,
    }
}

fn smoke_json() -> JsonValue {
    let start = SimHour::from_date(2008, 12, 19);
    let scenario =
        Scenario::custom_window(HARNESS_SEED, HourRange::new(start, start.plus_hours(36)))
            .with_energy(EnergyModelParams::optimistic_future());
    let config = scenario.config.clone().with_overflow(OverflowMode::Reject);

    // Five of the nine clusters, coarse quantum: a space small enough
    // that the whole search fits a CI smoke job.
    let five = ClusterSet::new(
        scenario
            .clusters
            .clusters()
            .iter()
            .filter(|c| matches!(c.label.as_str(), "CA1" | "NY" | "IL" | "VA" | "TX1"))
            .cloned()
            .collect::<Vec<_>>(),
    );
    let (space, start_split) = SearchSpace::from_deployment(&five, 800);

    let run = |strategy: &mut dyn wattroute_optimizer::OptimizerStrategy| {
        DeploymentOptimizer::new(space.clone(), &scenario.trace, &scenario.prices, config.clone())
            .with_objective(Objective::default_qos())
            .with_budget(SearchBudget::smoke())
            .with_start(start_split.clone())
            .run(strategy)
            .to_json_value()
    };
    json::object([
        ("greedy", run(&mut GreedyDescent::default())),
        ("local_search", run(&mut LocalSearch::seeded(HARNESS_SEED))),
    ])
}

fn golden_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("golden/optimize_smoke.json")
}

fn main() {
    wattroute_obs::Telemetry::enable_from_env();
    let check = std::env::args().any(|a| a == "--check");
    let report = smoke_json();

    if !check {
        println!("{report}");
        return;
    }

    let golden_text = std::fs::read_to_string(golden_path())
        .unwrap_or_else(|e| panic!("cannot read {:?}: {e}", golden_path()));
    let golden = JsonValue::parse(golden_text.trim()).expect("golden file parses as JSON");
    if approx_eq(&report, &golden) {
        println!(
            "optimize_smoke: OK — both strategy trails match {:?} (rel tolerance {REL_TOLERANCE:e})",
            golden_path()
        );
        return;
    }
    for key in ["greedy", "local_search"] {
        match (report.get(key), golden.get(key)) {
            (Some(got), Some(want)) if !approx_eq(got, want) => {
                let total = |v: &JsonValue| {
                    v.get("best")
                        .and_then(|b| b.get("terms"))
                        .and_then(|t| t.get("total_dollars"))
                        .and_then(JsonValue::as_f64)
                };
                eprintln!(
                    "optimize_smoke: '{key}' diverged from golden: best objective {:?} vs {:?}",
                    total(got),
                    total(want)
                );
            }
            _ => {}
        }
    }
    eprintln!(
        "optimize_smoke: FAILED — the optimizer no longer reproduces the golden search. If \
         the change is intentional, re-bless with:\n  cargo run --release -p wattroute_bench \
         --bin optimize_smoke > crates/bench/golden/optimize_smoke.json"
    );
    std::process::exit(1);
}
