//! Figure 10: price differential histograms for five hub pairs.

use wattroute_bench::{banner, fmt, price_window, print_table, HARNESS_SEED};
use wattroute_geo::HubId;
use wattroute_market::differential::Differential;
use wattroute_market::prelude::*;
use wattroute_stats::Histogram;

fn main() {
    banner(
        "Figure 10",
        "Differential distributions for five hub pairs (39 months of hourly prices)",
    );
    let pairs = [
        ("PaloAlto - Virginia", HubId::PaloAltoCa, HubId::RichmondVa, "paper: mu=0.0 sd=55.7"),
        ("Austin - Virginia", HubId::AustinTx, HubId::RichmondVa, "paper: mu=0.9 sd=87.7"),
        ("Boston - NYC", HubId::BostonMa, HubId::NewYorkNy, "paper: mu=-12.3 sd=52.5"),
        ("Chicago - Virginia", HubId::ChicagoIl, HubId::RichmondVa, "paper: mu=-17.2 sd=31.3"),
        ("Chicago - Peoria", HubId::ChicagoIl, HubId::PeoriaIl, "paper: mu=-4.2 sd=32.0"),
    ];
    let mut hubs: Vec<HubId> = pairs.iter().flat_map(|(_, a, b, _)| [*a, *b]).collect();
    hubs.sort();
    hubs.dedup();
    let generator =
        PriceGenerator::new(MarketModel::calibrated().restricted_to(&hubs), HARNESS_SEED);
    let set = generator.realtime_hourly(price_window());

    for (name, a, b, paper) in pairs {
        let d = Differential::between(set.for_hub(a).unwrap(), set.for_hub(b).unwrap()).unwrap();
        let s = d.stats().unwrap();
        println!("\n{name}   ({paper})");
        println!(
            "  mu={} sd={} kurt={}  A cheaper {}%   A cheaper by >$5 {}%   B cheaper by >$5 {}%   dynamic-exploitable: {}",
            fmt(s.mean, 1),
            fmt(s.std_dev, 1),
            fmt(s.kurtosis, 0),
            fmt(s.fraction_a_cheaper * 100.0, 0),
            fmt(s.fraction_a_cheaper_by_threshold * 100.0, 0),
            fmt(s.fraction_b_cheaper_by_threshold * 100.0, 0),
            d.is_dynamically_exploitable(0.10)
        );
        let hist = Histogram::from_samples(-100.0, 100.0, 20, &d.values);
        let rows: Vec<Vec<String>> =
            hist.rows().iter().map(|(c, f)| vec![fmt(*c, 0), fmt(*f, 3)]).collect();
        print_table(&["$ diff (bin center)", "fraction"], &rows);
    }
    println!("\nExpected shape: cross-country pairs (a, b) are ~zero-mean with large spread;");
    println!("Boston-NYC is skewed but still exploitable; Chicago-Virginia is one-sided;");
    println!("Chicago-Peoria shows the dispersion introduced by a market boundary.");
}
