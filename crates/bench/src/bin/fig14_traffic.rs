//! Figure 14: traffic in the Akamai-like data set (global / US / 9-region).

use wattroute_bench::{banner, fmt, print_table, HARNESS_SEED};
use wattroute_market::time::HourRange;
use wattroute_workload::{ClusterSet, SyntheticWorkloadConfig};

fn main() {
    banner("Figure 14", "Synthetic Akamai-like traffic over the 24-day turn-of-year window");
    let trace = SyntheticWorkloadConfig { seed: HARNESS_SEED, ..Default::default() }
        .generate(HourRange::akamai_24_days());
    let clusters = ClusterSet::akamai_like_nine();

    let global = trace.global_series();
    let us = trace.us_series();
    let nine = trace.region_subset_series(&clusters, 1200.0);

    // Print 6-hourly (72-step) samples in millions of hits/sec.
    let rows: Vec<Vec<String>> = (0..trace.num_steps())
        .step_by(72)
        .map(|i| {
            let hour = trace.step_hour(i);
            let (y, m, d) = hour.calendar_date();
            vec![
                format!("{y}-{m:02}-{d:02} {:02}:00", hour.hour_of_day_eastern()),
                fmt(global[i] / 1.0e6, 2),
                fmt(us[i] / 1.0e6, 2),
                fmt(nine[i] / 1.0e6, 2),
            ]
        })
        .collect();
    print_table(&["UTC-5 time", "Global (M hits/s)", "USA", "9-region subset"], &rows);

    println!();
    println!(
        "peaks: global {} M hits/s, US {} M hits/s, 9-region {} M hits/s",
        fmt(trace.peak_global_hits_per_sec() / 1.0e6, 2),
        fmt(trace.peak_us_hits_per_sec() / 1.0e6, 2),
        fmt(nine.iter().copied().fold(0.0, f64::max) / 1.0e6, 2)
    );
    println!(
        "Paper: global peak just over 2 M hits/s, of which ~1.25 M from the US; strong diurnal"
    );
    println!("swing and a visible dip over the holidays.");
}
