//! Deployment-dimension sweep (the Figure 15–19 intuition made explicit):
//! the paper's savings depend on *where the clusters are* — how much
//! capacity sits near cheap hubs — as much as on any policy knob. This
//! harness routes the same synthetic traffic and the same price history
//! over four candidate deployments and reports each one's price-conscious
//! savings, as a single multi-deployment [`ScenarioSweep`] grid: one
//! billing matrix and one ranked preference geometry per distinct hub
//! list, shared across all runs (the capacity-rebalanced variants share
//! even those with the nine-cluster original).

use wattroute::prelude::*;
use wattroute_bench::{
    banner, deployment_savings_sweep, fmt, full_mode, long_simulation_window, print_table,
    HARNESS_SEED,
};
use wattroute_energy::model::EnergyModelParams;
use wattroute_market::generator::PriceGenerator;
use wattroute_market::model::MarketModel;
use wattroute_workload::derive::WeeklyProfile;

/// Rescale a deployment's per-cluster capacity by a label-dependent factor
/// (hub list unchanged — only the capacity split moves).
fn rebalanced(base: &ClusterSet, factor_of: impl Fn(&str) -> f64) -> ClusterSet {
    ClusterSet::new(
        base.clusters()
            .iter()
            .map(|c| {
                let mut c = c.clone();
                c.servers = ((c.servers as f64 * factor_of(&c.label)).round() as u32).max(1);
                c
            })
            .collect(),
    )
}

fn main() {
    banner("Deployment grid", "Price-conscious savings as a function of where the clusters are");

    // One trace (per-client-state, deployment-independent) and one price
    // history covering *all* market hubs, so every deployment — including
    // the 29-hub spread — prices against the same market.
    let (range, config) = if full_mode() {
        (long_simulation_window(), SimulationConfig::default().with_reallocation_interval(12))
    } else {
        (HourRange::akamai_24_days(), SimulationConfig::default())
    };
    let trace = if full_mode() {
        let base = SyntheticWorkloadConfig { seed: HARNESS_SEED, ..Default::default() }
            .generate(HourRange::akamai_24_days());
        WeeklyProfile::from_trace(&base)
            .expect("24-day trace covers every hour-of-week")
            .replay(range)
    } else {
        SyntheticWorkloadConfig { seed: HARNESS_SEED, ..Default::default() }.generate(range)
    };
    let prices =
        PriceGenerator::new(MarketModel::calibrated(), HARNESS_SEED).realtime_hourly(range);
    let config = config.with_energy(EnergyModelParams::optimistic_future());

    let nine = ClusterSet::akamai_like_nine();
    // Shift capacity toward the (expensive) Northeast or the (cheap) West
    // without moving any cluster: same hub list, different split.
    let east_heavy = rebalanced(&nine, |label| match label {
        "MA" | "NY" | "VA" | "NJ" => 1.8,
        "CA1" | "CA2" => 0.3,
        _ => 0.8,
    });
    let west_heavy = rebalanced(&nine, |label| match label {
        "CA1" | "CA2" => 1.8,
        "MA" | "NY" | "VA" | "NJ" => 0.45,
        _ => 1.0,
    });
    // The §6.3 thought experiment: the same total capacity spread evenly
    // across every market hub.
    let even_29 = ClusterSet::even_29_hub((nine.total_servers() as f64 / 29.0).round() as u32);

    let deployments = [
        ("nine-cluster".to_string(), nine),
        ("east-heavy".to_string(), east_heavy),
        ("west-heavy".to_string(), west_heavy),
        ("even-29-hub".to_string(), even_29),
    ];
    let rows = deployment_savings_sweep(&deployments, &trace, &prices, &config, 1500.0);

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.label.clone(),
                r.clusters.to_string(),
                format!("${}", fmt(r.baseline_cost_dollars, 0)),
                format!("{}%", fmt(r.savings_percent, 2)),
                fmt(r.mean_distance_km, 0),
                fmt(r.p99_distance_km, 0),
            ]
        })
        .collect();
    print_table(
        &["deployment", "clusters", "baseline cost", "savings", "mean km", "p99 km"],
        &table,
    );
    println!();
    println!("Reading: more hubs mean more arbitrage room — the 29-hub spread saves the most");
    println!("(the paper's §6.3 thought experiment). Capacity pinned in the expensive Northeast");
    println!("(east-heavy) pays the highest baseline bill; capacity already parked at cheap");
    println!("western hubs (west-heavy) leaves the optimizer the least left to arbitrage.");
    println!("Distances grow as the router chases price instead of proximity.");
}
