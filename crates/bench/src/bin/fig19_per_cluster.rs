//! Figure 19: per-cluster cost change for the long-horizon simulation at
//! several distance thresholds ((0% idle, 1.1 PUE), following 95/5).
//!
//! The four constrained optimizer runs execute as one parallel
//! [`ScenarioSweep`] grid sharing a single compiled billing matrix and
//! ranked preference geometry.

use wattroute::run::RunOptions;
use wattroute::sweep::ScenarioSweep;
use wattroute_bench::{banner, fmt, print_table, scenario_long};
use wattroute_energy::model::EnergyModelParams;
use wattroute_routing::prelude::*;

fn main() {
    wattroute_obs::Telemetry::enable_from_env();
    banner("Figure 19", "Per-cluster cost change vs the Akamai-like allocation, obeying 95/5");
    let scenario = scenario_long().with_energy(EnergyModelParams::optimistic_future());
    let baseline = scenario.baseline_report();
    let caps: Vec<f64> = baseline.clusters.iter().map(|c| c.p95_hits_per_sec).collect();

    let thresholds = [500.0, 1000.0, 1500.0, 2000.0];
    let mut sweep = ScenarioSweep::new(&scenario.clusters, &scenario.trace, &scenario.prices);
    for (i, &t) in thresholds.iter().enumerate() {
        sweep.add_point(
            format!("follow:{i}"),
            scenario.config.clone().with_bandwidth_caps(caps.clone()),
            move || PriceConsciousPolicy::with_distance_threshold(t),
        );
    }
    let report = sweep.execute(RunOptions::new());
    let per_threshold: Vec<_> = (0..thresholds.len())
        .map(|i| {
            report
                .get(&format!("follow:{i}"))
                .expect("point ran")
                .per_cluster_cost_change_vs(&baseline)
        })
        .collect();

    let labels = baseline.cluster_labels();
    let rows: Vec<Vec<String>> = labels
        .iter()
        .enumerate()
        .map(|(i, label)| {
            let mut row = vec![label.to_string()];
            for changes in &per_threshold {
                row.push(format!("{}%", fmt(changes[i].1, 1)));
            }
            row
        })
        .collect();
    print_table(&["cluster", "<500km", "<1000km", "<1500km", "<2000km"], &rows);
    println!();
    println!("Paper shape: the largest reduction is at NYC (the most expensive hub); cheap hubs");
    println!("(Chicago, Texas) pick up cost as they absorb rerouted load; savings deepen as the");
    println!("threshold grows.");
}
