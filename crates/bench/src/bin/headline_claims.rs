//! The paper's headline quantitative claims (§1 "Results", §6.2, §6.3),
//! measured on the reproduction.

use wattroute::run::RunOptions;
use wattroute_bench::{banner, fmt, print_table, scenario_24_day, scenario_long};
use wattroute_energy::model::EnergyModelParams;
use wattroute_routing::prelude::*;

fn main() {
    wattroute_obs::Telemetry::enable_from_env();
    banner("Headline claims", "The bulleted results of §1, measured on this reproduction");

    // Claim 1: >= 2% savings at Google-like elasticity with 95/5 constraints.
    let google = scenario_24_day().with_energy(EnergyModelParams::google_2009());
    let cmp_google = google.compare_price_conscious(1500.0);
    let google_constrained = cmp_google.alternatives[1].savings_percent_vs(&cmp_google.baseline);

    // Claim 2: fully elastic system saves >30% relaxed, ~13% with strict 95/5.
    let elastic = scenario_24_day().with_energy(EnergyModelParams::optimistic_future());
    let cmp_elastic = elastic.compare_price_conscious(2500.0);
    let elastic_relaxed = cmp_elastic.alternatives[0].savings_percent_vs(&cmp_elastic.baseline);
    let elastic_constrained = cmp_elastic.alternatives[1].savings_percent_vs(&cmp_elastic.baseline);

    // Claim 3: over the long horizon, dynamic beats static (45% vs 35% max savings).
    let long = scenario_long().with_energy(EnergyModelParams::optimistic_future());
    let baseline = long.baseline_report();
    let mut unconstrained = PriceConsciousPolicy::unconstrained_distance();
    let dynamic = long.execute(&mut unconstrained, RunOptions::new()).savings_percent_vs(&baseline);
    let mut static_policy = long.static_cheapest_policy();
    let static_savings =
        long.execute(&mut static_policy, RunOptions::new()).savings_percent_vs(&baseline);

    print_table(
        &["claim", "paper", "measured"],
        &[
            vec![
                "savings @ Google elasticity, 95/5 obeyed, 1500km".into(),
                ">= 2%".into(),
                format!("{}%", fmt(google_constrained, 1)),
            ],
            vec![
                "fully elastic, relaxed 95/5".into(),
                "> 30%".into(),
                format!("{}%", fmt(elastic_relaxed, 1)),
            ],
            vec![
                "fully elastic, strict 95/5".into(),
                "~ 13%".into(),
                format!("{}%", fmt(elastic_constrained, 1)),
            ],
            vec![
                "long horizon, dynamic unconstrained-distance".into(),
                "~ 45% max".into(),
                format!("{}%", fmt(dynamic, 1)),
            ],
            vec![
                "long horizon, static cheapest market".into(),
                "~ 35% max".into(),
                format!("{}%", fmt(static_savings, 1)),
            ],
            vec![
                "dynamic beats static".into(),
                "yes".into(),
                format!("{}", dynamic > static_savings),
            ],
        ],
    );
    println!();
    println!("Absolute numbers depend on the synthetic price/traffic calibration; the comparisons");
    println!(
        "(who wins, how savings scale with elasticity and constraints) are the reproduced result."
    );
}
