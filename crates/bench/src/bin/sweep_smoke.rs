//! Golden-file smoke test for the sweep engine: a small, fully
//! deterministic Figure-17-style grid — three thresholds × two bandwidth
//! regimes plus one multi-deployment point routing a five-cluster eastern
//! subset — whose `SweepReport` JSON is checked into
//! `crates/bench/golden/sweep_smoke.json`. CI runs this with `--check`;
//! any engine refactor that changes a simulated number fails the diff
//! instead of silently shifting results.
//!
//! Without arguments the binary prints the JSON to stdout (pipe it to the
//! golden file to re-bless after an *intentional* behaviour change).

use wattroute::json::JsonValue;
use wattroute::prelude::*;
use wattroute::sweep::{ScenarioSweep, SweepReport};
use wattroute_bench::HARNESS_SEED;
use wattroute_energy::model::EnergyModelParams;
use wattroute_market::time::SimHour;
use wattroute_routing::baseline::AkamaiLikePolicy;

const THRESHOLDS: [f64; 3] = [0.0, 1100.0, 1500.0];

/// Relative tolerance for numeric comparison against the golden file. The
/// simulation is deterministic, but costs flow through `powf` and trig
/// whose last few ulps may differ across libm implementations (glibc
/// versions, macOS, non-x86 runners); a refactor that changes results
/// moves numbers by far more than this.
const REL_TOLERANCE: f64 = 1e-9;

/// Structural JSON comparison with a relative tolerance on numbers.
fn approx_eq(a: &JsonValue, b: &JsonValue) -> bool {
    match (a, b) {
        (JsonValue::Number(x), JsonValue::Number(y)) => {
            x == y || (x - y).abs() <= REL_TOLERANCE * x.abs().max(y.abs()).max(1.0)
        }
        (JsonValue::Array(xs), JsonValue::Array(ys)) => {
            xs.len() == ys.len() && xs.iter().zip(ys.iter()).all(|(x, y)| approx_eq(x, y))
        }
        (JsonValue::Object(xs), JsonValue::Object(ys)) => {
            xs.len() == ys.len()
                && xs
                    .iter()
                    .zip(ys.iter())
                    .all(|((ka, va), (kb, vb))| ka == kb && approx_eq(va, vb))
        }
        _ => a == b,
    }
}

fn smoke_report() -> SweepReport {
    // Four days at the turn of 2008/2009 — long enough for price structure
    // to matter, short enough for a CI smoke job.
    let start = SimHour::from_date(2008, 12, 19);
    let range = HourRange::new(start, start.plus_hours(4 * 24));
    let scenario = Scenario::custom_window(HARNESS_SEED, range)
        .with_energy(EnergyModelParams::optimistic_future());
    let baseline = scenario.baseline_report();
    let caps: Vec<f64> = baseline.clusters.iter().map(|c| c.p95_hits_per_sec).collect();

    // A second deployment exercises the multi-deployment grid path: the
    // eastern five of the nine clusters, routed over the same trace and
    // prices.
    let east = wattroute_workload::ClusterSet::new(
        scenario
            .clusters
            .clusters()
            .iter()
            .filter(|c| matches!(c.label.as_str(), "MA" | "NY" | "VA" | "NJ" | "IL"))
            .cloned()
            .collect::<Vec<_>>(),
    );

    let mut sweep = ScenarioSweep::new(&scenario.clusters, &scenario.trace, &scenario.prices);
    sweep.add_point("baseline", scenario.config.clone(), AkamaiLikePolicy::default);
    for (i, &threshold) in THRESHOLDS.iter().enumerate() {
        sweep.add_point(format!("relaxed:{i}"), scenario.config.clone(), move || {
            PriceConsciousPolicy::with_distance_threshold(threshold)
        });
        sweep.add_point(
            format!("follow:{i}"),
            scenario.config.clone().with_bandwidth_caps(caps.clone()),
            move || PriceConsciousPolicy::with_distance_threshold(threshold),
        );
    }
    let east_id = sweep.add_deployment("east-five", &east);
    sweep.add_point_on(east_id, "east:relaxed", scenario.config.clone(), || {
        PriceConsciousPolicy::with_distance_threshold(1100.0)
    });
    sweep.execute(RunOptions::new())
}

fn golden_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("golden/sweep_smoke.json")
}

fn main() {
    wattroute_obs::Telemetry::enable_from_env();
    let check = std::env::args().any(|a| a == "--check");
    let report = smoke_report();

    if !check {
        println!("{}", report.to_json());
        return;
    }

    let golden_text = std::fs::read_to_string(golden_path())
        .unwrap_or_else(|e| panic!("cannot read {:?}: {e}", golden_path()));
    let golden =
        SweepReport::from_json(golden_text.trim()).expect("golden file parses as a SweepReport");
    if approx_eq(&report.to_json_value(), &golden.to_json_value()) {
        println!(
            "sweep_smoke: OK — {} runs match {:?} (rel tolerance {REL_TOLERANCE:e})",
            report.runs.len(),
            golden_path()
        );
        return;
    }
    // Pinpoint the diverging runs to make CI failures actionable.
    for (got, want) in report.runs.iter().zip(&golden.runs) {
        if got.label != want.label
            || !approx_eq(&got.report.to_json_value(), &want.report.to_json_value())
        {
            eprintln!(
                "sweep_smoke: run '{}' diverged from golden '{}': cost {} vs {}, energy {} vs {}",
                got.label,
                want.label,
                got.report.total_cost_dollars,
                want.report.total_cost_dollars,
                got.report.total_energy_mwh,
                want.report.total_energy_mwh,
            );
        }
    }
    if report.runs.len() != golden.runs.len() {
        eprintln!(
            "sweep_smoke: run count changed: {} vs golden {}",
            report.runs.len(),
            golden.runs.len()
        );
    }
    eprintln!(
        "sweep_smoke: FAILED — engine output no longer matches the golden file. If the \
         change is intentional, re-bless with:\n  cargo run --release -p wattroute_bench \
         --bin sweep_smoke > crates/bench/golden/sweep_smoke.json"
    );
    std::process::exit(1);
}
