//! `hierarchy_smoke` — replay a seeded synthetic region → metro → site
//! tree through [`HierarchicalReplay`] and assert a wall-clock budget.
//!
//! CI runs this twice in `--release`: a 200-site two-month tree as the
//! fast gate, and the acceptance-scale 1000-site two-year replay that must
//! finish in single-digit seconds. Prints one JSON summary line on stdout
//! (site/metro/region counts, total cost, elapsed seconds, mode) so the
//! numbers land in the job log; exits non-zero if `--budget-secs` is
//! exceeded or if the sharded and sequential replays disagree.
//!
//! ```text
//! hierarchy_smoke [--sites N] [--days D] [--seed N] [--budget-secs S]
//!                 [--mode sharded|sequential|both]
//! ```
//!
//! `--mode both` (the default) runs sequential then sharded and asserts
//! bit-identity between them; the budget applies to each run separately.

use std::process::ExitCode;
use std::time::Instant;
use wattroute::hierarchy::HierarchicalReplay;
use wattroute::json::{self, JsonValue};
use wattroute::prelude::*;
use wattroute::report::SimulationReport;
use wattroute_geo::topology::Topology;
use wattroute_market::generator::PriceGenerator;
use wattroute_market::model::MarketModel;
use wattroute_market::time::SimHour;
use wattroute_routing::policy::RoutingPolicy;

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).map(String::as_str)
}

fn make_policy() -> Box<dyn RoutingPolicy> {
    Box::new(PriceConsciousPolicy::with_distance_threshold(1500.0))
}

fn summary_line(
    mode: &str,
    topology: &Topology,
    report: &SimulationReport,
    elapsed_secs: f64,
) -> JsonValue {
    json::object([
        ("mode", JsonValue::String(mode.to_string())),
        ("sites", JsonValue::Number(topology.num_sites() as f64)),
        ("metros", JsonValue::Number(topology.num_metros() as f64)),
        ("regions", JsonValue::Number(topology.num_regions() as f64)),
        ("steps", JsonValue::Number(report.steps as f64)),
        ("total_cost_dollars", JsonValue::Number(report.total_cost_dollars)),
        ("total_energy_mwh", JsonValue::Number(report.total_energy_mwh)),
        ("tier_rollup", JsonValue::Bool(report.tiers.is_some())),
        ("elapsed_secs", JsonValue::Number(elapsed_secs)),
    ])
}

fn main() -> ExitCode {
    wattroute_obs::Telemetry::enable_from_env();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let sites: usize = flag_value(&args, "--sites").map_or(200, |v| v.parse().expect("--sites N"));
    let days: u64 = flag_value(&args, "--days").map_or(60, |v| v.parse().expect("--days D"));
    let seed: u64 = flag_value(&args, "--seed").map_or(42, |v| v.parse().expect("--seed N"));
    let budget_secs: Option<f64> =
        flag_value(&args, "--budget-secs").map(|v| v.parse().expect("--budget-secs S"));
    let mode = flag_value(&args, "--mode").unwrap_or("both");
    if !matches!(mode, "sharded" | "sequential" | "both") {
        eprintln!("hierarchy_smoke: unknown --mode '{mode}' (expected sharded|sequential|both)");
        return ExitCode::from(2);
    }

    let topology = Topology::synthetic(seed, sites).with_tier_slack(1.1);
    let start = SimHour::from_date(2007, 1, 1);
    let range = HourRange::new(start, start.plus_hours(days * 24));
    eprintln!(
        "hierarchy_smoke: {} sites / {} metros / {} regions, {days} days ({} steps), seed {seed}",
        topology.num_sites(),
        topology.num_metros(),
        topology.num_regions(),
        days * 12 * 24,
    );
    let trace =
        SyntheticWorkloadConfig { seed, ..SyntheticWorkloadConfig::default() }.generate(range);
    let prices = PriceGenerator::new(MarketModel::calibrated(), seed).realtime_hourly(range);
    let config = SimulationConfig::default().with_reallocation_interval(12);
    let replay = HierarchicalReplay::new(&topology, &trace, &prices, config);

    let mut over_budget = false;
    let mut timed = |label: &str, report: &SimulationReport, elapsed: f64| {
        println!("{}", summary_line(label, &topology, report, elapsed));
        if let Some(budget) = budget_secs {
            if elapsed > budget {
                eprintln!("hierarchy_smoke: {label} replay took {elapsed:.2}s > budget {budget}s");
                over_budget = true;
            }
        }
    };

    let mut sequential: Option<SimulationReport> = None;
    if mode != "sharded" {
        let t0 = Instant::now();
        let report = replay.run(&make_policy);
        timed("sequential", &report, t0.elapsed().as_secs_f64());
        sequential = Some(report);
    }
    if mode != "sequential" {
        let t0 = Instant::now();
        let report = replay.run_sharded(&make_policy);
        timed("sharded", &report, t0.elapsed().as_secs_f64());
        if let Some(sequential) = &sequential {
            if &report != sequential {
                eprintln!("hierarchy_smoke: sharded and sequential replays DISAGREE");
                return ExitCode::FAILURE;
            }
            eprintln!("hierarchy_smoke: sharded ≡ sequential (bit-identical)");
        }
    }

    if over_budget {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
