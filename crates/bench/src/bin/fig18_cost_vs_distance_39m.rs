//! Figure 18: normalized long-horizon (39-month) cost vs distance threshold,
//! including the static cheapest-hub placement.

use wattroute::run::RunOptions;
use wattroute_bench::{
    banner, distance_threshold_sweep, fmt, print_table, scenario_long, standard_thresholds,
};
use wattroute_energy::model::EnergyModelParams;

fn main() {
    wattroute_obs::Telemetry::enable_from_env();
    banner(
        "Figure 18",
        "Long-horizon cost vs distance threshold, (0% idle, 1.1 PUE), normalized to the Akamai-like allocation",
    );
    let scenario = scenario_long().with_energy(EnergyModelParams::optimistic_future());
    let baseline = scenario.baseline_report();
    let caps: Vec<f64> = baseline.clusters.iter().map(|c| c.p95_hits_per_sec).collect();

    // The static comparison: move everything to the cheapest market.
    let mut static_policy = scenario.static_cheapest_policy();
    let static_report = scenario.execute(&mut static_policy, RunOptions::new());
    let static_norm = static_report.normalized_cost_vs(&baseline);

    let rows = distance_threshold_sweep(&scenario, &baseline, &caps, &standard_thresholds());
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                fmt(r.threshold_km, 0),
                fmt(r.normalized_cost_constrained, 3),
                fmt(r.normalized_cost_relaxed, 3),
            ]
        })
        .collect();
    print_table(
        &["distance threshold (km)", "follow 95/5 (norm. cost)", "relax 95/5 (norm. cost)"],
        &table,
    );
    println!();
    println!(
        "Static 'only use cheapest hub' allocation: normalized cost {} (savings {}%)",
        fmt(static_norm, 3),
        fmt((1.0 - static_norm) * 100.0, 1)
    );
    let best = rows.iter().map(|r| r.normalized_cost_relaxed).fold(f64::INFINITY, f64::min);
    println!(
        "Best dynamic (relaxed) normalized cost: {} (savings {}%)",
        fmt(best, 3),
        fmt((1.0 - best) * 100.0, 1)
    );
    println!("Paper shape: the dynamic solution reaches ~0.55 normalized cost (45% savings) while");
    println!("the static cheapest-market placement only reaches ~0.65 (35% savings); no sharp");
    println!("diminishing returns above 2000 km over the long horizon.");
}
