//! Figure 17: mean and 99th-percentile client-server distance vs the
//! optimizer's distance threshold.

use wattroute_bench::{
    banner, distance_threshold_sweep, fmt, print_table, scenario_24_day, standard_thresholds,
};
use wattroute_energy::model::EnergyModelParams;

fn main() {
    wattroute_obs::Telemetry::enable_from_env();
    banner("Figure 17", "Client-server distance vs distance threshold (24-day scenario)");
    let scenario = scenario_24_day().with_energy(EnergyModelParams::optimistic_future());
    let baseline = scenario.baseline_report();
    let caps: Vec<f64> = baseline.clusters.iter().map(|c| c.p95_hits_per_sec).collect();
    let rows = distance_threshold_sweep(&scenario, &baseline, &caps, &standard_thresholds());

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                fmt(r.threshold_km, 0),
                fmt(r.mean_distance_constrained_km, 0),
                fmt(r.p99_distance_constrained_km, 0),
                fmt(r.mean_distance_km, 0),
                fmt(r.p99_distance_km, 0),
            ]
        })
        .collect();
    print_table(
        &[
            "threshold (km)",
            "mean dist (follow 95/5)",
            "p99 dist (follow 95/5)",
            "mean dist (ignore 95/5)",
            "p99 dist (ignore 95/5)",
        ],
        &table,
    );
    println!();
    println!(
        "Akamai-like baseline for reference: mean {} km, p99 {} km",
        fmt(baseline.mean_distance_km, 0),
        fmt(baseline.p99_distance_km, 0)
    );
    println!("Paper shape: distances grow with the threshold; at an 1100 km threshold the 99th");
    println!("percentile stays near 800 km (Boston-DC scale, ~20 ms RTT), and there is a jump");
    println!("around 1500 km when Boston-Chicago scale moves become admissible.");
}
