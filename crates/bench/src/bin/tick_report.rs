//! `tick_report` — measure the steady-state tick path (epoch-cached vs
//! the legacy per-step-recompute loop) plus the trajectory benchmarks,
//! and emit the PR's `BENCH_10.json` (or gate CI on a throughput floor).
//!
//! ```text
//! tick_report [--out PATH] [--date YYYY-MM-DD] [--reps N]
//! tick_report --check [--min-steps-per-sec N] [--min-speedup S] [--reps N]
//! ```
//!
//! Default mode times, with telemetry off throughout:
//!
//! * the steady-state tick pair from `benches/tick_throughput.rs` —
//!   first asserting the two replays still agree bit for bit, so the
//!   speedup can never be won by computing less;
//! * the `simulation_engine` and `hierarchical_replay` criterion
//!   workloads, re-measured here so `BENCH_10.json` carries the same
//!   keys as `BENCH_07.json` for the bench trajectory;
//! * the acceptance-scale 1000-site × 730-day hierarchy replay
//!   (`hierarchy_smoke`'s exact configuration, seed 42), once per mode.
//!
//! Every number in the document is measured by this binary at emit
//! time; nothing is hand-written. Timing methodology matches
//! `obs_report`: untimed warmups, then medians over `--reps`
//! repetitions, with the paired tick comparison *interleaved*
//! (legacy/cached/legacy/cached…) and its speedup taken as the median
//! of per-pair ratios so background-load drift cancels instead of
//! biasing one side.
//!
//! `--check` skips the document and exits non-zero when either the
//! steady-state speedup falls below `--min-speedup` (default 2, the
//! acceptance bar) or the 1000-site × 730-day sequential replay drops
//! below `--min-steps-per-sec` (default 15000, generous headroom under
//! the ~27k steps/sec this box measures): the CI throughput gate.

use std::process::ExitCode;
use std::time::Instant;
use wattroute::hierarchy::HierarchicalReplay;
use wattroute::json::{self, JsonValue};
use wattroute::prelude::*;
use wattroute_bench::tick::{
    cached_replay, legacy_replay, steady_policy, steady_scenario, STEADY_REALLOC_INTERVAL,
};
use wattroute_geo::topology::Topology;
use wattroute_market::generator::PriceGenerator;
use wattroute_market::model::MarketModel;
use wattroute_market::time::SimHour;
use wattroute_routing::policy::RoutingPolicy;

/// Days in the steady-state tick window (mirrors `tick_throughput`).
const STEADY_DAYS: u64 = 14;
/// `hierarchy_smoke`'s acceptance-scale configuration.
const SCALE_SEED: u64 = 42;
const SCALE_SITES: usize = 1000;
const SCALE_DAYS: u64 = 730;

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).map(String::as_str)
}

fn make_policy() -> Box<dyn RoutingPolicy> {
    Box::new(PriceConsciousPolicy::with_distance_threshold(1500.0))
}

/// Median of a sample set (mean of the middle pair for even counts).
fn median(samples: &[f64]) -> f64 {
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let mid = sorted.len() / 2;
    if sorted.len() % 2 == 0 {
        (sorted[mid - 1] + sorted[mid]) / 2.0
    } else {
        sorted[mid]
    }
}

fn timed(f: &mut dyn FnMut()) -> f64 {
    let t0 = Instant::now();
    f();
    t0.elapsed().as_secs_f64()
}

/// Warmed-up median wall clock over `reps` repetitions of `workload`.
fn median_secs(reps: usize, mut workload: impl FnMut()) -> f64 {
    workload();
    let samples: Vec<f64> = (0..reps.max(1)).map(|_| timed(&mut workload)).collect();
    median(&samples)
}

/// The steady-state tick comparison: interleaved legacy/cached timing
/// pairs over one shared scenario, after a bit-identity check.
struct TickComparison {
    steps: usize,
    legacy_secs: Vec<f64>,
    cached_secs: Vec<f64>,
}

impl TickComparison {
    fn measure(reps: usize) -> Self {
        let scenario = steady_scenario(STEADY_DAYS);
        let legacy = legacy_replay(&scenario, &mut steady_policy());
        let cached = cached_replay(&scenario, &mut steady_policy());
        assert_eq!(
            legacy, cached,
            "legacy and epoch-cached replays disagree; timing them would be meaningless"
        );
        let steps = cached.steps;

        let mut run_legacy = || {
            let _ = legacy_replay(&scenario, &mut steady_policy());
        };
        let mut run_cached = || {
            let _ = cached_replay(&scenario, &mut steady_policy());
        };
        // Warmup, untimed, one run per side (the identity check above
        // already ran each once, but keep the sides symmetric).
        run_legacy();
        run_cached();
        let mut legacy_secs = Vec::with_capacity(reps);
        let mut cached_secs = Vec::with_capacity(reps);
        for _ in 0..reps.max(1) {
            legacy_secs.push(timed(&mut run_legacy));
            cached_secs.push(timed(&mut run_cached));
        }
        Self { steps, legacy_secs, cached_secs }
    }

    /// Median of the per-pair legacy/cached wall-clock ratios — the
    /// drift-robust statistic (a background burst lands on both runs of
    /// the pairs it covers, so their ratio stays honest).
    fn speedup(&self) -> f64 {
        let ratios: Vec<f64> = self
            .legacy_secs
            .iter()
            .zip(&self.cached_secs)
            .map(|(legacy, cached)| legacy / cached)
            .collect();
        median(&ratios)
    }

    fn to_json(&self) -> JsonValue {
        let legacy = median(&self.legacy_secs);
        let cached = median(&self.cached_secs);
        json::object([
            ("steady_state_window_days", JsonValue::Number(STEADY_DAYS as f64)),
            (
                "steady_state_realloc_interval_steps",
                JsonValue::Number(STEADY_REALLOC_INTERVAL as f64),
            ),
            ("steps", JsonValue::Number(self.steps as f64)),
            ("legacy_per_step_recompute_median_ms", JsonValue::Number(legacy * 1.0e3)),
            ("epoch_cached_median_ms", JsonValue::Number(cached * 1.0e3)),
            ("legacy_steps_per_sec", JsonValue::Number(self.steps as f64 / legacy)),
            ("epoch_cached_steps_per_sec", JsonValue::Number(self.steps as f64 / cached)),
            ("speedup", JsonValue::Number(self.speedup())),
        ])
    }
}

/// Re-measure the `simulation_engine` criterion workloads (same keys as
/// `BENCH_07.json`, `_ms` suffixed medians).
fn simulation_engine_group(reps: usize) -> JsonValue {
    let start = SimHour::from_date(2008, 12, 19);
    let week = HourRange::new(start, start.plus_hours(7 * 24));

    let pc = Scenario::custom_window(1, week).with_energy(EnergyModelParams::optimistic_future());
    let pc_ms = median_secs(reps, || {
        let mut policy = PriceConsciousPolicy::with_distance_threshold(1500.0);
        let _ = pc.execute(&mut policy, RunOptions::new());
    }) * 1.0e3;

    let base = Scenario::custom_window(1, week);
    let base_ms = median_secs(reps, || {
        let _ = base.baseline_report();
    }) * 1.0e3;

    let calibrated = CalibratedScenario::calibrate(&pc);
    let config = calibrated.constrained_config(&pc.config, 1.0);
    let constrained_ms = median_secs(reps, || {
        let mut policy = PriceConsciousPolicy::with_distance_threshold(1500.0);
        let _ = pc.execute(&mut policy, RunOptions::new().with_config(config.clone()));
    }) * 1.0e3;

    let month_start = SimHour::from_date(2007, 5, 1);
    let month = HourRange::new(month_start, month_start.plus_hours(30 * 24));
    let monthly =
        Scenario::synthetic_over(1, month).with_energy(EnergyModelParams::optimistic_future());
    let month_ms = median_secs(reps, || {
        let mut policy = PriceConsciousPolicy::with_distance_threshold(1500.0);
        let _ = monthly.execute(&mut policy, RunOptions::new());
    }) * 1.0e3;

    json::object([
        ("one_week_24day_trace_price_conscious_ms", JsonValue::Number(pc_ms)),
        ("one_week_24day_trace_baseline_ms", JsonValue::Number(base_ms)),
        ("one_week_24day_trace_price_conscious_constrained_ms", JsonValue::Number(constrained_ms)),
        ("one_month_weekly_profile_hourly_realloc_ms", JsonValue::Number(month_ms)),
    ])
}

/// Re-measure the `hierarchical_replay` criterion workloads (same keys
/// as `BENCH_07.json`).
fn hierarchical_replay_group(reps: usize) -> JsonValue {
    let start = SimHour::from_date(2008, 12, 19);
    let window = HourRange::new(start, start.plus_hours(2 * 24));
    let trace = SyntheticWorkloadConfig::default().generate(window);
    let prices = PriceGenerator::new(MarketModel::calibrated(), 7).realtime_hourly(window);
    let config = SimulationConfig::default().with_reallocation_interval(12);

    let mut fields: Vec<(String, JsonValue)> = Vec::new();
    for sites in [29usize, 200, 1000] {
        let topology = Topology::synthetic(7, sites).with_tier_slack(1.1);
        let replay = HierarchicalReplay::new(&topology, &trace, &prices, config.clone());
        let sequential_ms = median_secs(reps, || {
            let _ = replay.run(&make_policy);
        }) * 1.0e3;
        let sharded_ms = median_secs(reps, || {
            let _ = replay.run_sharded(&make_policy);
        }) * 1.0e3;
        fields.push((
            format!("two_days_{sites}_sites_sequential_ms"),
            JsonValue::Number(sequential_ms),
        ));
        fields.push((format!("two_days_{sites}_sites_sharded_ms"), JsonValue::Number(sharded_ms)));
    }
    JsonValue::Object(fields.into_iter().collect())
}

/// Build the acceptance-scale replay (`hierarchy_smoke`'s exact seeded
/// 1000-site × 730-day configuration).
fn scale_replay() -> (Topology, wattroute_workload::trace::Trace, wattroute_market::types::PriceSet)
{
    let topology = Topology::synthetic(SCALE_SEED, SCALE_SITES).with_tier_slack(1.1);
    let start = SimHour::from_date(2007, 1, 1);
    let range = HourRange::new(start, start.plus_hours(SCALE_DAYS * 24));
    let trace = SyntheticWorkloadConfig { seed: SCALE_SEED, ..SyntheticWorkloadConfig::default() }
        .generate(range);
    let prices = PriceGenerator::new(MarketModel::calibrated(), SCALE_SEED).realtime_hourly(range);
    (topology, trace, prices)
}

/// One timed acceptance-scale run; returns (steps, elapsed seconds) —
/// no warmup or repetition, matching how `hierarchy_smoke` reports it.
fn scale_run(replay: &HierarchicalReplay, sharded: bool) -> (usize, f64) {
    let t0 = Instant::now();
    let report = if sharded { replay.run_sharded(&make_policy) } else { replay.run(&make_policy) };
    (report.steps, t0.elapsed().as_secs_f64())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let reps: usize = flag_value(&args, "--reps").map_or(3, |v| v.parse().expect("--reps N"));

    if args.iter().any(|a| a == "--check") {
        let min_speedup: f64 =
            flag_value(&args, "--min-speedup").map_or(2.0, |v| v.parse().expect("--min-speedup S"));
        let min_steps_per_sec: f64 = flag_value(&args, "--min-steps-per-sec")
            .map_or(15_000.0, |v| v.parse().expect("--min-steps-per-sec N"));
        let mut failed = false;

        let tick = TickComparison::measure(reps);
        eprintln!(
            "tick_report: steady-state tick: legacy median {:.1}ms, cached median {:.1}ms -> {:.2}x (min {min_speedup}x)",
            median(&tick.legacy_secs) * 1.0e3,
            median(&tick.cached_secs) * 1.0e3,
            tick.speedup(),
        );
        if tick.speedup() < min_speedup {
            eprintln!("tick_report: steady-state speedup below the acceptance bar");
            failed = true;
        }

        let (topology, trace, prices) = scale_replay();
        let config = SimulationConfig::default().with_reallocation_interval(12);
        let replay = HierarchicalReplay::new(&topology, &trace, &prices, config);
        let (steps, elapsed) = scale_run(&replay, false);
        let steps_per_sec = steps as f64 / elapsed;
        eprintln!(
            "tick_report: {SCALE_SITES}-site x {SCALE_DAYS}-day sequential replay: {steps} steps in {elapsed:.2}s -> {steps_per_sec:.0} steps/sec (min {min_steps_per_sec})",
        );
        if steps_per_sec < min_steps_per_sec {
            eprintln!("tick_report: acceptance-scale replay below the throughput floor");
            failed = true;
        }

        return if failed { ExitCode::FAILURE } else { ExitCode::SUCCESS };
    }

    let date = flag_value(&args, "--date").unwrap_or("unknown").to_string();
    let tick = TickComparison::measure(reps);
    let engine_group = simulation_engine_group(reps);
    let hierarchy_group = hierarchical_replay_group(reps);

    let (topology, trace, prices) = scale_replay();
    let config = SimulationConfig::default().with_reallocation_interval(12);
    let replay = HierarchicalReplay::new(&topology, &trace, &prices, config);
    let (steps, sequential_secs) = scale_run(&replay, false);
    let (_, sharded_secs) = scale_run(&replay, true);

    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let doc = json::object([
        ("pr", JsonValue::Number(10.0)),
        (
            "title",
            JsonValue::String(
                "Epoch-cached tick accounting: zero-allocation hot path for replay, sweeps, and \
                 Monte Carlo"
                    .to_string(),
            ),
        ),
        ("date", JsonValue::String(date)),
        (
            "environment",
            json::object([
                (
                    "profile",
                    JsonValue::String(if cfg!(debug_assertions) {
                        "debug".to_string()
                    } else {
                        "release".to_string()
                    }),
                ),
                ("cores", JsonValue::Number(cores as f64)),
                (
                    "note",
                    JsonValue::String(
                        "Generated by tick_report with telemetry off: warmed-up medians over N \
                         repetitions; the tick comparison interleaves legacy/cached pairs and \
                         reports the median per-pair ratio as the speedup, after asserting the \
                         two replays' reports are bit-identical. The acceptance-scale rows are \
                         single timed runs of hierarchy_smoke's seeded 1000-site x 730-day \
                         configuration."
                            .to_string(),
                    ),
                ),
            ]),
        ),
        (
            "groups",
            json::object([
                ("tick_throughput", tick.to_json()),
                ("simulation_engine", engine_group),
                ("hierarchical_replay", hierarchy_group),
            ]),
        ),
        (
            "acceptance_scale_runs",
            json::object([
                (
                    "hierarchy_smoke_1000_sites_730_days_sequential_secs",
                    JsonValue::Number(sequential_secs),
                ),
                (
                    "hierarchy_smoke_1000_sites_730_days_sharded_secs",
                    JsonValue::Number(sharded_secs),
                ),
                ("steps", JsonValue::Number(steps as f64)),
                ("steps_per_sec_sequential", JsonValue::Number(steps as f64 / sequential_secs)),
                (
                    "note",
                    JsonValue::String(
                        "The allocation-epoch cache turns the steady-state tick into an \
                         add-scaled-constants loop; the two-year 1000-site replay rides the \
                         same accumulate path through the sharded SoA core."
                            .to_string(),
                    ),
                ),
            ]),
        ),
    ]);

    let text = format!("{doc}\n");
    match flag_value(&args, "--out") {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &text) {
                eprintln!("tick_report: cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("tick_report: wrote {path}");
        }
        None => print!("{text}"),
    }
    ExitCode::SUCCESS
}
