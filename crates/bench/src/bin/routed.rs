//! `routed` — the live router daemon over the incremental tick engine.
//!
//! Two subcommands:
//!
//! * `routed serve --socket PATH [--hours N] [--seed N] [--step-ms M]
//!   [--policy pc|baseline] [--linger] [--max-conns N] [--telemetry]` —
//!   replay a synthetic scenario in accelerated wall-clock time, serving
//!   `route?` / `stats` / `metrics` / `snapshot` / `shutdown` queries over
//!   the Unix socket
//!   (newline-delimited JSON; see `docs/daemon.md`). At most `--max-conns`
//!   query connections are served concurrently; one past the cap receives
//!   a single `"ok": false` error reply and is closed. `--telemetry` (or
//!   `WATTROUTE_TELEMETRY=1`) turns on span timing, populating the
//!   `metrics` exposition with engine-tick phase histograms; the report is
//!   byte-identical either way. On shutdown, prints the final flushed
//!   [`SimulationReport`] as one JSON
//!   line on stdout — bit-identical to the batch run of the same scenario.
//!
//! * `routed query --socket PATH <REQUEST_JSON>` — send one request line,
//!   print the reply line. Exits non-zero if the reply carries
//!   `"ok": false`, so CI can assert on query success directly.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;
use wattroute::json::JsonValue;
use wattroute::prelude::*;
use wattroute_bench::daemon::{serve, DaemonClient, DaemonOptions, DEFAULT_MAX_CONNECTIONS};
use wattroute_market::time::{HourRange, SimHour};
use wattroute_routing::policy::RoutingPolicy;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("serve") => run_serve(&args[1..]),
        Some("query") => run_query(&args[1..]),
        _ => {
            eprintln!("usage: routed serve --socket PATH [--hours N] [--seed N] [--step-ms M] [--policy pc|baseline] [--linger] [--max-conns N] [--telemetry]");
            eprintln!("       routed query --socket PATH <REQUEST_JSON>");
            ExitCode::from(2)
        }
    }
}

/// Pull the value following a `--flag` out of the argument list.
fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).map(String::as_str)
}

fn run_serve(args: &[String]) -> ExitCode {
    let Some(socket) = flag_value(args, "--socket") else {
        eprintln!("routed serve: --socket PATH is required");
        return ExitCode::from(2);
    };
    let hours: u64 = flag_value(args, "--hours").map_or(48, |v| v.parse().expect("--hours N"));
    let seed: u64 = flag_value(args, "--seed").map_or(42, |v| v.parse().expect("--seed N"));
    let step_ms: u64 = flag_value(args, "--step-ms").map_or(0, |v| v.parse().expect("--step-ms M"));
    let linger = args.iter().any(|a| a == "--linger");
    let max_conns: usize = flag_value(args, "--max-conns")
        .map_or(DEFAULT_MAX_CONNECTIONS, |v| v.parse().expect("--max-conns N"));
    if max_conns == 0 {
        eprintln!("routed serve: --max-conns must be at least 1");
        return ExitCode::from(2);
    }
    if args.iter().any(|a| a == "--telemetry") {
        wattroute_obs::Telemetry::enable();
    } else {
        wattroute_obs::Telemetry::enable_from_env();
    }

    let start = SimHour::from_date(2008, 12, 19);
    let scenario = Scenario::custom_window(seed, HourRange::new(start, start.plus_hours(hours)));
    let mut policy: Box<dyn RoutingPolicy> = match flag_value(args, "--policy").unwrap_or("pc") {
        "baseline" => Box::new(AkamaiLikePolicy::default()),
        "pc" => Box::new(PriceConsciousPolicy::with_distance_threshold(1500.0)),
        other => {
            eprintln!("routed serve: unknown --policy '{other}' (expected pc|baseline)");
            return ExitCode::from(2);
        }
    };

    let options = DaemonOptions {
        socket_path: PathBuf::from(socket),
        step_wait: Duration::from_millis(step_ms),
        linger,
        max_connections: max_conns,
    };
    eprintln!(
        "routed: serving {hours}h trace (seed {seed}) on {socket}, {step_ms}ms/step{}",
        if linger { ", lingering until shutdown" } else { "" }
    );
    match serve(&scenario, policy.as_mut(), &options) {
        Ok(report) => {
            println!("{}", report.to_json_value());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("routed: serve failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run_query(args: &[String]) -> ExitCode {
    let Some(socket) = flag_value(args, "--socket") else {
        eprintln!("routed query: --socket PATH is required");
        return ExitCode::from(2);
    };
    // The request is the one positional argument: skip every --flag and
    // the value that follows it.
    let mut request_text = None;
    let mut i = 0;
    while i < args.len() {
        if args[i].starts_with("--") {
            i += 2;
        } else {
            request_text = Some(args[i].as_str());
            i += 1;
        }
    }
    let Some(request_text) = request_text else {
        eprintln!("routed query: a REQUEST_JSON argument is required");
        return ExitCode::from(2);
    };
    let request = match JsonValue::parse(request_text) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("routed query: request is not valid JSON: {e}");
            return ExitCode::from(2);
        }
    };
    let mut client =
        match DaemonClient::connect(std::path::Path::new(socket), Duration::from_secs(10)) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("routed query: cannot connect to {socket}: {e}");
                return ExitCode::FAILURE;
            }
        };
    match client.request(&request) {
        Ok(reply) => {
            println!("{reply}");
            if reply.get("ok").and_then(JsonValue::as_bool) == Some(true) {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("routed query: {e}");
            ExitCode::FAILURE
        }
    }
}
