//! Figure 1: estimated annual electricity costs for large companies.

use wattroute_bench::{banner, fmt, print_table};
use wattroute_energy::fleet;

fn main() {
    banner("Figure 1", "Estimated annual electricity cost @ $60/MWh (servers + infrastructure)");
    let rows: Vec<Vec<String>> = fleet::figure_1_rows()
        .into_iter()
        .map(|r| {
            vec![
                r.name,
                format!("{}K", r.servers / 1000),
                format!("{:.1}e5 MWh", r.annual_mwh / 1.0e5),
                format!("${:.1}M", r.annual_cost_dollars / 1.0e6),
            ]
        })
        .collect();
    print_table(&["Company", "Servers", "Electricity", "Cost"], &rows);

    println!();
    println!(
        "Google search cross-check (1.2B searches/day @ 1 kJ): {} MWh/yr",
        fmt(fleet::google_search_energy_mwh_per_year(1.2e9, 1000.0), 0)
    );
    println!(
        "Paper reference rows: eBay ~0.6e5 MWh/$3.7M, Akamai ~1.7e5/$10M, Rackspace ~2e5/$12M,"
    );
    println!("                      Microsoft >6e5/$36M, Google >6.3e5/$38M");
}
