//! Figure 11: monthly evolution of the PaloAlto-Virginia differential.

use wattroute_bench::{banner, fmt, price_window, print_table, HARNESS_SEED};
use wattroute_geo::HubId;
use wattroute_market::differential::Differential;
use wattroute_market::prelude::*;

fn main() {
    banner(
        "Figure 11",
        "PaloAlto-Virginia differential, per-month median and inter-quartile range",
    );
    let hubs = [HubId::PaloAltoCa, HubId::RichmondVa];
    let generator =
        PriceGenerator::new(MarketModel::calibrated().restricted_to(&hubs), HARNESS_SEED);
    let set = generator.realtime_hourly(price_window());
    let d = Differential::between(
        set.for_hub(HubId::PaloAltoCa).unwrap(),
        set.for_hub(HubId::RichmondVa).unwrap(),
    )
    .unwrap();

    let rows: Vec<Vec<String>> = d
        .monthly_distribution()
        .iter()
        .map(|(month, summary)| {
            let year = 2006 + month / 12;
            let m = month % 12 + 1;
            vec![
                format!("{year}-{m:02}"),
                fmt(summary.q1, 1),
                fmt(summary.median, 1),
                fmt(summary.q3, 1),
                fmt(summary.q3 - summary.q1, 1),
            ]
        })
        .collect();
    print_table(&["month", "Q1", "median", "Q3", "IQR"], &rows);
    println!();
    println!("Expected shape: the median drifts above and below zero over months (sustained");
    println!("asymmetries that later reverse) and the spread changes from month to month.");
}
