//! Golden-file smoke test for the Monte Carlo price engine: a small, fully
//! deterministic 16-path replay of the two-day harness scenario — the
//! price-conscious policy against the Akamai-like baseline, with a CVaR
//! tail summary — whose [`SavingsDistribution`] JSON is checked into
//! `crates/bench/golden/mc_smoke.json`. CI runs this with `--check`; any
//! change to the path-seed stream, the generator, the replay core or the
//! aggregation fails the diff instead of silently shifting results.
//!
//! Without arguments the binary prints the JSON to stdout (pipe it to the
//! golden file to re-bless after an *intentional* behaviour change).

use wattroute::json::JsonValue;
use wattroute::montecarlo::{MonteCarlo, SavingsDistribution};
use wattroute::prelude::*;
use wattroute_bench::HARNESS_SEED;
use wattroute_market::time::SimHour;

const N_PATHS: usize = 16;

/// Relative tolerance for numeric comparison against the golden file (see
/// `sweep_smoke` for why byte equality is too strict across libm builds).
const REL_TOLERANCE: f64 = 1e-9;

/// Structural JSON comparison with a relative tolerance on numbers.
fn approx_eq(a: &JsonValue, b: &JsonValue) -> bool {
    match (a, b) {
        (JsonValue::Number(x), JsonValue::Number(y)) => {
            x == y || (x - y).abs() <= REL_TOLERANCE * x.abs().max(y.abs()).max(1.0)
        }
        (JsonValue::Array(xs), JsonValue::Array(ys)) => {
            xs.len() == ys.len() && xs.iter().zip(ys.iter()).all(|(x, y)| approx_eq(x, y))
        }
        (JsonValue::Object(xs), JsonValue::Object(ys)) => {
            xs.len() == ys.len()
                && xs
                    .iter()
                    .zip(ys.iter())
                    .all(|((ka, va), (kb, vb))| ka == kb && approx_eq(va, vb))
        }
        _ => a == b,
    }
}

fn smoke_distribution() -> SavingsDistribution {
    // Two days at the turn of 2008/2009, matching the other smoke grids.
    let start = SimHour::from_date(2008, 12, 19);
    let range = HourRange::new(start, start.plus_hours(2 * 24));
    let scenario = Scenario::custom_window(HARNESS_SEED, range);
    let model = MarketModel::calibrated().restricted_to(&scenario.clusters.hub_ids());
    // Two worker threads on purpose: the aggregate is pinned to be
    // thread-count invariant, so CI exercising the parallel path costs
    // nothing in reproducibility.
    MonteCarlo::new(
        &scenario.clusters,
        &scenario.trace,
        model,
        scenario.config.clone(),
        HARNESS_SEED,
    )
    .with_paths(N_PATHS)
    .with_threads(2)
    .run()
}

fn golden_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("golden/mc_smoke.json")
}

fn main() {
    wattroute_obs::Telemetry::enable_from_env();
    let check = std::env::args().any(|a| a == "--check");
    let dist = smoke_distribution();

    if !check {
        println!("{}", dist.to_json());
        return;
    }

    let golden_text = std::fs::read_to_string(golden_path())
        .unwrap_or_else(|e| panic!("cannot read {:?}: {e}", golden_path()));
    let golden = JsonValue::parse(golden_text.trim()).expect("golden file parses as JSON");
    let got = dist.to_json_value();
    if approx_eq(&got, &golden) {
        println!(
            "mc_smoke: OK — {N_PATHS} paths match {:?} (rel tolerance {REL_TOLERANCE:e})",
            golden_path()
        );
        return;
    }
    // Pinpoint the diverging paths to make CI failures actionable.
    let costs = |v: &JsonValue| -> Vec<(f64, f64)> {
        v.get("per_path")
            .and_then(JsonValue::as_array)
            .map(|paths| {
                paths
                    .iter()
                    .map(|p| {
                        (
                            p.get("cost_dollars").and_then(JsonValue::as_f64).unwrap_or(f64::NAN),
                            p.get("baseline_cost_dollars")
                                .and_then(JsonValue::as_f64)
                                .unwrap_or(f64::NAN),
                        )
                    })
                    .collect()
            })
            .unwrap_or_default()
    };
    let (got_costs, want_costs) = (costs(&got), costs(&golden));
    if got_costs.len() != want_costs.len() {
        eprintln!(
            "mc_smoke: path count changed: {} vs golden {}",
            got_costs.len(),
            want_costs.len()
        );
    }
    for (k, (g, w)) in got_costs.iter().zip(&want_costs).enumerate() {
        if (g.0 - w.0).abs() > REL_TOLERANCE * g.0.abs().max(1.0)
            || (g.1 - w.1).abs() > REL_TOLERANCE * g.1.abs().max(1.0)
        {
            eprintln!(
                "mc_smoke: path {k} diverged: cost {} vs {}, baseline {} vs {}",
                g.0, w.0, g.1, w.1
            );
        }
    }
    eprintln!(
        "mc_smoke: FAILED — Monte Carlo output no longer matches the golden file. If the \
         change is intentional, re-bless with:\n  cargo run --release -p wattroute_bench \
         --bin mc_smoke > crates/bench/golden/mc_smoke.json"
    );
    std::process::exit(1);
}
