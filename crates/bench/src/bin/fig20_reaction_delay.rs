//! Figure 20: cost increase vs the delay in reacting to prices
//! ((65% idle, 1.3 PUE) model, 1500 km threshold).

use wattroute_bench::{banner, fmt, print_table, reaction_delay_sweep, scenario_long};
use wattroute_energy::model::EnergyModelParams;

fn main() {
    wattroute_obs::Telemetry::enable_from_env();
    banner(
        "Figure 20",
        "Cost increase vs price-reaction delay, (65% idle, 1.3 PUE), 1500 km threshold",
    );
    let scenario = scenario_long().with_energy(EnergyModelParams::google_2009());
    let delays: Vec<u64> = vec![0, 1, 2, 3, 6, 9, 12, 15, 18, 21, 24, 27, 30];
    let rows = reaction_delay_sweep(&scenario, 1500.0, &delays);

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|(delay, increase)| vec![delay.to_string(), format!("{}%", fmt(*increase, 3))])
        .collect();
    print_table(&["delay (hours)", "cost increase vs immediate reaction"], &table);
    println!();
    println!(
        "Paper shape: an initial jump between immediate and next-hour reaction, a rise toward"
    );
    println!("~1-1.5% at large delays, and a local dip near 24 hours (day-over-day price");
    println!(
        "correlation). With the (65%, 1.3) model a ~1% increase erases much of the ~5% savings."
    );
}
