//! Figure 9: hourly price differentials for two hub pairs over eight days.

use wattroute_bench::{banner, fmt, print_table, HARNESS_SEED};
use wattroute_geo::HubId;
use wattroute_market::differential::Differential;
use wattroute_market::prelude::*;
use wattroute_market::time::SimHour;

fn main() {
    banner(
        "Figure 9",
        "Price differentials (PaloAlto-Richmond, Austin-Richmond), two weeks of Aug 2008",
    );
    let hubs = [HubId::PaloAltoCa, HubId::AustinTx, HubId::RichmondVa];
    let generator =
        PriceGenerator::new(MarketModel::calibrated().restricted_to(&hubs), HARNESS_SEED);
    let start = SimHour::from_date(2008, 8, 9);
    let range = HourRange::new(start, start.plus_hours(14 * 24));
    let set = generator.realtime_hourly(range);

    let pa_va = Differential::between(
        set.for_hub(HubId::PaloAltoCa).unwrap(),
        set.for_hub(HubId::RichmondVa).unwrap(),
    )
    .unwrap();
    let tx_va = Differential::between(
        set.for_hub(HubId::AustinTx).unwrap(),
        set.for_hub(HubId::RichmondVa).unwrap(),
    )
    .unwrap();

    // Print 6-hourly samples of both differentials.
    let rows: Vec<Vec<String>> = (0..pa_va.values.len())
        .step_by(6)
        .map(|i| {
            let hour = SimHour(range.start.0 + i as u64);
            let (_, month, day) = hour.calendar_date();
            vec![
                format!("{month:02}-{day:02} {:02}h", hour.hour_of_day_eastern()),
                fmt(pa_va.values[i], 1),
                fmt(tx_va.values[i], 1),
            ]
        })
        .collect();
    print_table(&["time (EDT)", "PaloAlto - Richmond", "Austin - Richmond"], &rows);

    for (name, d) in [("PaloAlto-Richmond", &pa_va), ("Austin-Richmond", &tx_va)] {
        let s = d.stats().unwrap();
        println!(
            "{name}: mean {} sd {} | A cheaper {}% of hours, B cheaper by >$5 {}% of hours",
            fmt(s.mean, 1),
            fmt(s.std_dev, 1),
            fmt(s.fraction_a_cheaper * 100.0, 0),
            fmt(s.fraction_b_cheaper_by_threshold * 100.0, 0)
        );
    }
    println!("Expected shape: spikes in both directions and multi-hour asymmetries that sometimes");
    println!("favour one coast, sometimes the other -> a static assignment cannot be optimal.");
}
