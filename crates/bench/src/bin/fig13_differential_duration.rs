//! Figure 13: how much time is spent in sustained differentials of each
//! duration (PaloAlto-Virginia, >$5/MWh).

use wattroute_bench::{banner, fmt, price_window, print_table, HARNESS_SEED};
use wattroute_geo::HubId;
use wattroute_market::differential::{Differential, DEFAULT_PRICE_THRESHOLD};
use wattroute_market::prelude::*;

fn main() {
    banner(
        "Figure 13",
        "Fraction of total time in sustained PaloAlto-Virginia differentials, by duration",
    );
    let hubs = [HubId::PaloAltoCa, HubId::RichmondVa];
    let generator =
        PriceGenerator::new(MarketModel::calibrated().restricted_to(&hubs), HARNESS_SEED);
    let set = generator.realtime_hourly(price_window());
    let d = Differential::between(
        set.for_hub(HubId::PaloAltoCa).unwrap(),
        set.for_hub(HubId::RichmondVa).unwrap(),
    )
    .unwrap();

    let fractions = d.duration_time_fractions(DEFAULT_PRICE_THRESHOLD);
    let rows: Vec<Vec<String>> = fractions
        .iter()
        .filter(|(dur, _)| *dur <= 36)
        .map(|(dur, frac)| vec![dur.to_string(), fmt(*frac, 4)])
        .collect();
    print_table(&["duration (hours)", "fraction of total time"], &rows);

    let durations = d.sustained_durations(DEFAULT_PRICE_THRESHOLD);
    let short: f64 = fractions.iter().filter(|(d, _)| *d < 3).map(|(_, f)| f).sum();
    let medium: f64 = fractions.iter().filter(|(d, _)| *d < 9).map(|(_, f)| f).sum();
    let long: f64 = fractions.iter().filter(|(d, _)| *d > 24).map(|(_, f)| f).sum();
    println!();
    println!(
        "{} sustained differentials; time share: <3h {}%, <9h {}%, >24h {}%",
        durations.len(),
        fmt(short * 100.0, 1),
        fmt(medium * 100.0, 1),
        fmt(long * 100.0, 1)
    );
    println!("Expected shape: short differentials (<3h) account for the most time, medium (<9h)");
    println!(
        "differentials are common, and day-long differentials are rare for this balanced pair."
    );
}
