//! Figure 4: real-time 5-minute vs real-time hourly vs day-ahead prices, NYC.

use wattroute_bench::{banner, fmt, print_table, HARNESS_SEED};
use wattroute_geo::HubId;
use wattroute_market::prelude::*;
use wattroute_market::time::SimHour;
use wattroute_stats as stats;

fn main() {
    banner("Figure 4", "Price variation across market products, NYC hub, Feb/Mar 2009");
    let generator = PriceGenerator::new(
        MarketModel::calibrated().restricted_to(&[HubId::NewYorkNy]),
        HARNESS_SEED,
    );

    for (label, start, days) in [
        ("2009-02-10 .. 2009-02-20", SimHour::from_date(2009, 2, 10), 10u64),
        ("2009-03-03 .. 2009-03-13", SimHour::from_date(2009, 3, 3), 10u64),
    ] {
        let range = HourRange::new(start, start.plus_hours(days * 24));
        let rt = generator.realtime_hourly(range);
        let da = generator.day_ahead(range);
        let five = generator.realtime_5min(HubId::NewYorkNy, range).unwrap();
        let rt_prices = &rt.for_hub(HubId::NewYorkNy).unwrap().prices;
        let da_prices = &da.for_hub(HubId::NewYorkNy).unwrap().prices;

        println!("\nWindow {label}:");
        let stats_row = |name: &str, xs: &[f64]| {
            vec![
                name.to_string(),
                fmt(stats::mean(xs).unwrap(), 1),
                fmt(stats::std_dev(xs).unwrap(), 1),
                fmt(stats::descriptive::min(xs).unwrap(), 1),
                fmt(stats::descriptive::max(xs).unwrap(), 1),
            ]
        };
        print_table(
            &["series", "mean", "stdev", "min", "max"],
            &[
                stats_row("real-time 5-min", &five.prices),
                stats_row("real-time hourly", rt_prices),
                stats_row("day-ahead hourly", da_prices),
            ],
        );

        // Daily profile of the first three days, hourly resolution.
        let rows: Vec<Vec<String>> = (0..24)
            .map(|h| {
                vec![
                    format!("{h:02}:00"),
                    fmt(rt_prices[h], 1),
                    fmt(da_prices[h], 1),
                    fmt(five.price_at(SimHour(range.start.0 + h as u64)).unwrap(), 1),
                ]
            })
            .collect();
        println!("First day, hour by hour:");
        print_table(&["hour", "RT hourly", "DA hourly", "RT 5-min (hr avg)"], &rows);
    }
    println!("\nExpected shape: the RT series is more volatile than day-ahead; 5-minute prices");
    println!("are noisier still and average to the hourly RT series.");
}
