//! Figure 2: the RTO regions studied and representative hubs.

use wattroute_bench::{banner, print_table};
use wattroute_geo::{hubs, Rto};

fn main() {
    banner("Figure 2", "RTO regions and the hubs embedded in this reproduction");
    let rows: Vec<Vec<String>> = Rto::ALL
        .iter()
        .map(|rto| {
            let members: Vec<String> = hubs::hubs_in_rto(*rto)
                .iter()
                .map(|h| format!("{} ({})", h.city, h.code))
                .collect();
            vec![rto.abbreviation().to_string(), rto.region().to_string(), members.join(", ")]
        })
        .collect();
    print_table(&["RTO", "Region", "Hubs"], &rows);
    println!();
    println!(
        "{} market hubs ({} hub pairs for Figure 8); the Northwest (MID-C) lacks an hourly market.",
        hubs::market_hubs().len(),
        hubs::market_hub_pairs().len()
    );
}
