//! Golden-file smoke test for the calibrate → constrain → account
//! pipeline: a tiny deterministic grid — one baseline calibration pass,
//! then the price-conscious optimizer under the calibrated 95/5 caps at
//! three slack multipliers (1.0×, 1.2×, ∞), all priced under the default
//! CDN transit tariff so every report carries the new bandwidth
//! accounting fields — whose `SweepReport` JSON is checked into
//! `crates/bench/golden/bandwidth_smoke.json`. CI runs this with
//! `--check`; any change to constraint derivation, cap enforcement or
//! 95/5 billing fails the diff instead of silently shifting results.
//!
//! Without arguments the binary prints the JSON to stdout (pipe it to the
//! golden file to re-bless after an *intentional* behaviour change).

use wattroute::json::JsonValue;
use wattroute::prelude::*;
use wattroute::sweep::{ScenarioSweep, SweepReport};
use wattroute_bench::HARNESS_SEED;
use wattroute_energy::model::EnergyModelParams;
use wattroute_market::time::SimHour;
use wattroute_routing::baseline::AkamaiLikePolicy;

const THRESHOLD_KM: f64 = 1500.0;
const MULTIPLIERS: [f64; 3] = [1.0, 1.2, f64::INFINITY];

/// Relative tolerance for numeric comparison against the golden file (see
/// `sweep_smoke` for why byte equality is too strict across libm builds).
const REL_TOLERANCE: f64 = 1e-9;

/// Structural JSON comparison with a relative tolerance on numbers.
fn approx_eq(a: &JsonValue, b: &JsonValue) -> bool {
    match (a, b) {
        (JsonValue::Number(x), JsonValue::Number(y)) => {
            x == y || (x - y).abs() <= REL_TOLERANCE * x.abs().max(y.abs()).max(1.0)
        }
        (JsonValue::Array(xs), JsonValue::Array(ys)) => {
            xs.len() == ys.len() && xs.iter().zip(ys.iter()).all(|(x, y)| approx_eq(x, y))
        }
        (JsonValue::Object(xs), JsonValue::Object(ys)) => {
            xs.len() == ys.len()
                && xs
                    .iter()
                    .zip(ys.iter())
                    .all(|((ka, va), (kb, vb))| ka == kb && approx_eq(va, vb))
        }
        _ => a == b,
    }
}

fn smoke_report() -> SweepReport {
    // Three days at the turn of 2008/2009 — enough for the caps to bind,
    // short enough for a CI smoke job.
    let start = SimHour::from_date(2008, 12, 19);
    let range = HourRange::new(start, start.plus_hours(3 * 24));
    let scenario = Scenario::custom_window(HARNESS_SEED, range)
        .with_energy(EnergyModelParams::optimistic_future());

    // Calibrate: one baseline pass fixes the per-cluster 95/5 levels.
    let calibrated = CalibratedScenario::calibrate(&scenario);

    // Constrain + account: the optimizer under the calibrated caps at
    // three slack levels, everything billed under the default tariff.
    let tariff_config =
        scenario.config.clone().with_bandwidth_tariff(BandwidthTariff::default_cdn());
    let mut sweep = ScenarioSweep::new(&scenario.clusters, &scenario.trace, &scenario.prices);
    sweep.add_point("baseline", tariff_config.clone(), AkamaiLikePolicy::default);
    sweep.add_constraint_axis(
        0,
        "pc",
        tariff_config,
        MULTIPLIERS.iter().enumerate().map(|(i, &m)| {
            (format!("{i}"), calibrated.constraints(&scenario.config.constraints, m))
        }),
        || PriceConsciousPolicy::with_distance_threshold(THRESHOLD_KM),
    );
    sweep.execute(RunOptions::new())
}

fn golden_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("golden/bandwidth_smoke.json")
}

fn main() {
    wattroute_obs::Telemetry::enable_from_env();
    let check = std::env::args().any(|a| a == "--check");
    let report = smoke_report();

    if !check {
        println!("{}", report.to_json());
        return;
    }

    let golden_text = std::fs::read_to_string(golden_path())
        .unwrap_or_else(|e| panic!("cannot read {:?}: {e}", golden_path()));
    let golden =
        SweepReport::from_json(golden_text.trim()).expect("golden file parses as a SweepReport");
    if approx_eq(&report.to_json_value(), &golden.to_json_value()) {
        println!(
            "bandwidth_smoke: OK — {} runs match {:?} (rel tolerance {REL_TOLERANCE:e})",
            report.runs.len(),
            golden_path()
        );
        return;
    }
    // Pinpoint the diverging runs to make CI failures actionable.
    for (got, want) in report.runs.iter().zip(&golden.runs) {
        if got.label != want.label
            || !approx_eq(&got.report.to_json_value(), &want.report.to_json_value())
        {
            eprintln!(
                "bandwidth_smoke: run '{}' diverged from golden '{}': cost {} vs {}, \
                 bandwidth {} vs {}",
                got.label,
                want.label,
                got.report.total_cost_dollars,
                want.report.total_cost_dollars,
                got.report.total_bandwidth_cost_dollars,
                want.report.total_bandwidth_cost_dollars,
            );
        }
    }
    if report.runs.len() != golden.runs.len() {
        eprintln!(
            "bandwidth_smoke: run count changed: {} vs golden {}",
            report.runs.len(),
            golden.runs.len()
        );
    }
    eprintln!(
        "bandwidth_smoke: FAILED — the calibrate → constrain → account pipeline no longer \
         matches the golden file. If the change is intentional, re-bless with \
         `cargo run --release --bin bandwidth_smoke > crates/bench/golden/bandwidth_smoke.json`."
    );
    std::process::exit(1);
}
