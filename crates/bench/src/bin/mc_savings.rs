//! Monte Carlo savings distributions and replay throughput.
//!
//! Replays the harness scenario over seeded price paths and prints what the
//! rest of the repo's point estimates hide: the p5/p50/p95 bands of the
//! electric bill and the savings percentage, the CVaR tail of the bill,
//! per-cluster cost bands, and the shrinking confidence interval on the
//! mean savings as the path budget grows. A throughput table reports
//! paths/sec at 16/64/256 paths — first run cold (process start, fresh
//! compiled preferences), second run warm — for the perf trajectory file.

use std::time::Instant;
use wattroute::montecarlo::MonteCarlo;
use wattroute::prelude::*;
use wattroute_bench::{banner, fmt, full_mode, print_table, HARNESS_SEED};
use wattroute_market::time::SimHour;

fn main() {
    wattroute_obs::Telemetry::enable_from_env();
    banner("mc_savings", "Monte Carlo price paths: savings distributions and throughput");

    // One week fast / the 24-day window in full mode: long enough for the
    // diurnal and weekly structure the router exploits, short enough that a
    // 256-path draw stays interactive.
    let start = SimHour::from_date(2008, 12, 19);
    let days = if full_mode() { 24 } else { 7 };
    let scenario =
        Scenario::custom_window(HARNESS_SEED, HourRange::new(start, start.plus_hours(days * 24)));
    let model = MarketModel::calibrated().restricted_to(&scenario.clusters.hub_ids());
    let mc = |paths: usize| {
        MonteCarlo::new(
            &scenario.clusters,
            &scenario.trace,
            model.clone(),
            scenario.config.clone(),
            HARNESS_SEED,
        )
        .with_paths(paths)
    };

    let dist = mc(64).run();
    println!(
        "\n{} vs {} over {days} days, 64 paths, master seed {HARNESS_SEED}:",
        dist.policy, dist.baseline
    );
    let band = |label: &str, b: &wattroute::montecarlo::BandSummary, unit: &str| {
        vec![
            label.to_string(),
            fmt(b.mean, 2),
            fmt(b.p5, 2),
            fmt(b.p50, 2),
            fmt(b.p95, 2),
            unit.to_string(),
        ]
    };
    print_table(
        &["metric", "mean", "p5", "p50", "p95", "unit"],
        &[
            band("bill", &dist.bill, "$"),
            band("baseline bill", &dist.baseline_bill, "$"),
            band("savings", &dist.savings_percent, "%"),
        ],
    );
    println!(
        "  CVaR[{:.2}](bill) = ${}  (mean + ${} of tail exposure)",
        dist.cvar_alpha,
        fmt(dist.bill_cvar_dollars, 2),
        fmt(dist.bill_cvar_dollars - dist.bill.mean, 2),
    );

    println!("\nPer-cluster cost bands ($):");
    print_table(
        &["cluster", "mean", "p5", "p95"],
        &dist
            .clusters
            .iter()
            .map(|c| {
                vec![c.label.clone(), fmt(c.cost.mean, 2), fmt(c.cost.p5, 2), fmt(c.cost.p95, 2)]
            })
            .collect::<Vec<_>>(),
    );

    println!("\nConvergence and throughput (cold first, then warm):");
    let mut rows = Vec::new();
    for paths in [16usize, 64, 256] {
        let engine = mc(paths);
        let cold_start = Instant::now();
        let d = engine.run();
        let cold = cold_start.elapsed().as_secs_f64();
        let warm_start = Instant::now();
        let _ = engine.run();
        let warm = warm_start.elapsed().as_secs_f64();
        rows.push(vec![
            paths.to_string(),
            fmt(d.savings_percent.mean, 3),
            fmt(d.mean_savings_ci90_width().unwrap_or(0.0), 3),
            fmt(paths as f64 / cold, 1),
            fmt(paths as f64 / warm, 1),
        ]);
    }
    print_table(&["paths", "mean savings %", "ci90 width", "cold paths/s", "warm paths/s"], &rows);
}
