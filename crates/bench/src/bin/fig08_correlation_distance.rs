//! Figure 8: pairwise price correlation vs hub distance, by RTO.

use wattroute_bench::{banner, fmt, price_window, print_table, HARNESS_SEED};
use wattroute_market::analysis::{correlation_summary, pairwise_correlations};
use wattroute_market::prelude::*;

fn main() {
    banner("Figure 8", "Price correlation vs distance for all market-hub pairs");
    let generator = PriceGenerator::new(MarketModel::calibrated(), HARNESS_SEED);
    let set = generator.realtime_hourly(price_window());
    // Drop the non-market Northwest hub, as the paper does.
    let market_only = PriceSet::new(
        set.series
            .iter()
            .filter(|s| wattroute_geo::hubs::hub(s.hub).rto.has_hourly_market())
            .cloned()
            .collect(),
    );
    let pairs = pairwise_correlations(&market_only);
    println!("{} hub pairs analysed (paper: 406)\n", pairs.len());

    // Distance-banded summary, split same-RTO vs different-RTO.
    let bands = [(0.0, 250.0), (250.0, 500.0), (500.0, 1000.0), (1000.0, 2000.0), (2000.0, 5000.0)];
    let mut rows = Vec::new();
    for (lo, hi) in bands {
        let in_band: Vec<_> =
            pairs.iter().filter(|p| p.distance_km >= lo && p.distance_km < hi).collect();
        let same: Vec<f64> = in_band.iter().filter(|p| p.same_rto).map(|p| p.correlation).collect();
        let cross: Vec<f64> =
            in_band.iter().filter(|p| !p.same_rto).map(|p| p.correlation).collect();
        rows.push(vec![
            format!("{lo:.0}-{hi:.0} km"),
            same.len().to_string(),
            fmt(wattroute_stats::mean(&same).unwrap_or(f64::NAN), 2),
            cross.len().to_string(),
            fmt(wattroute_stats::mean(&cross).unwrap_or(f64::NAN), 2),
        ]);
    }
    print_table(
        &["distance band", "#same-RTO", "mean r (same)", "#cross-RTO", "mean r (cross)"],
        &rows,
    );

    let summary = correlation_summary(&pairs).unwrap();
    println!();
    println!(
        "same-RTO pairs: mean r = {} ({}% above 0.6);  cross-RTO pairs: mean r = {} ({}% above 0.6)",
        fmt(summary.mean_same_rto, 2),
        fmt(summary.same_rto_above_06 * 100.0, 0),
        fmt(summary.mean_cross_rto, 2),
        fmt(summary.cross_rto_above_06 * 100.0, 0)
    );
    let ca = pairs
        .iter()
        .find(|p| {
            (p.hub_a == wattroute_geo::HubId::PaloAltoCa
                && p.hub_b == wattroute_geo::HubId::LosAngelesCa)
                || (p.hub_b == wattroute_geo::HubId::PaloAltoCa
                    && p.hub_a == wattroute_geo::HubId::LosAngelesCa)
        })
        .unwrap();
    println!("LA - Palo Alto correlation: {} (paper: 0.94)", fmt(ca.correlation, 2));
    println!(
        "Expected shape: correlation decreases with distance; same-RTO pairs sit mostly above"
    );
    println!("0.6 while cross-RTO pairs sit below it.");
}
