//! Figure 15: maximum 24-day savings vs energy-model parameters, with and
//! without the 95/5 bandwidth constraints (1500 km distance threshold).

use wattroute_bench::{banner, elasticity_savings_sweep, fmt, print_table, scenario_24_day};
use wattroute_energy::model::EnergyModelParams;

fn main() {
    wattroute_obs::Telemetry::enable_from_env();
    banner(
        "Figure 15",
        "24-day savings vs (idle %, PUE), price-conscious routing @ 1500 km threshold",
    );
    let scenario = scenario_24_day();
    let rows = elasticity_savings_sweep(&scenario, 1500.0, &EnergyModelParams::figure_15_sweep());

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| vec![r.label.clone(), fmt(r.relaxed_percent, 1), fmt(r.constrained_percent, 1)])
        .collect();
    print_table(&["(idle, PUE)", "savings % (relax 95/5)", "savings % (follow 95/5)"], &table);

    println!();
    println!("Paper shape: ~40% relaxed savings for a fully proportional system, dropping steeply");
    println!(
        "as idle power and PUE rise (roughly 5% at Google's (65%, 1.3)); obeying the original"
    );
    println!("95/5 constraints cuts savings to roughly a third of the relaxed value.");

    // Ablation called out in DESIGN.md: spike-free prices and a linear
    // utilization curve.
    println!("\nAblation: linear (r = 1) utilization curve, same sweep:");
    let linear_models: Vec<(String, EnergyModelParams)> = EnergyModelParams::figure_15_sweep()
        .into_iter()
        .map(|(label, p)| (label, p.with_linear_curve()))
        .collect();
    let linear_rows = elasticity_savings_sweep(&scenario, 1500.0, &linear_models);
    let table: Vec<Vec<String>> = linear_rows
        .iter()
        .map(|r| vec![r.label.clone(), fmt(r.relaxed_percent, 1), fmt(r.constrained_percent, 1)])
        .collect();
    print_table(&["(idle, PUE)", "savings % (relax)", "savings % (follow)"], &table);
}
