//! Figure 6: trimmed mean / std-dev / kurtosis of hourly RT prices for the
//! six hubs named in the paper.

use wattroute_bench::{banner, fmt, price_window, print_table, HARNESS_SEED};
use wattroute_geo::HubId;
use wattroute_market::analysis::hub_price_stats;
use wattroute_market::prelude::*;

fn main() {
    banner("Figure 6", "Real-time market statistics (1% trimmed), Jan 2006 - Mar 2009");
    let named = [
        ("Chicago, IL", HubId::ChicagoIl, (40.6, 26.9, 4.6)),
        ("Indianapolis, IN", HubId::IndianapolisIn, (44.0, 28.3, 5.8)),
        ("Palo Alto, CA", HubId::PaloAltoCa, (54.0, 34.2, 11.9)),
        ("Richmond, VA", HubId::RichmondVa, (57.8, 39.2, 6.6)),
        ("Boston, MA", HubId::BostonMa, (66.5, 25.8, 5.7)),
        ("New York, NY", HubId::NewYorkNy, (77.9, 40.26, 7.9)),
    ];
    let hubs: Vec<HubId> = named.iter().map(|(_, h, _)| *h).collect();
    let generator =
        PriceGenerator::new(MarketModel::calibrated().restricted_to(&hubs), HARNESS_SEED);
    let set = generator.realtime_hourly(price_window());

    let rows: Vec<Vec<String>> = named
        .iter()
        .map(|(name, hub, (p_mean, p_sd, p_kurt))| {
            let stats = hub_price_stats(set.for_hub(*hub).unwrap()).unwrap();
            vec![
                name.to_string(),
                stats.rto.abbreviation().to_string(),
                fmt(stats.trimmed_mean, 1),
                fmt(stats.trimmed_std_dev, 1),
                fmt(stats.trimmed_kurtosis, 1),
                format!("({p_mean}, {p_sd}, {p_kurt})"),
            ]
        })
        .collect();
    print_table(&["Location", "RTO", "Mean*", "StDev*", "Kurt.*", "paper (mean, sd, kurt)"], &rows);
    println!();
    println!(
        "Expected shape: the ordering Chicago < Indianapolis < PaloAlto < Richmond < Boston < NYC"
    );
    println!("holds for the mean; every distribution is heavy-tailed (kurtosis > 3).");
}
