//! Figure 5: standard deviation of NYC Q1-2009 prices under different
//! averaging windows, real-time vs day-ahead.

use wattroute_bench::{banner, fmt, print_table, HARNESS_SEED};
use wattroute_geo::HubId;
use wattroute_market::analysis::windowed_std_devs;
use wattroute_market::prelude::*;

fn main() {
    banner("Figure 5", "Std-dev of NYC Q1-2009 prices vs averaging window (RT vs DA)");
    let generator = PriceGenerator::new(
        MarketModel::calibrated().restricted_to(&[HubId::NewYorkNy]),
        HARNESS_SEED,
    );
    let range = HourRange::q1_2009();
    let rt_hourly = generator.realtime_hourly(range);
    let da = generator.day_ahead(range);
    let five = generator.realtime_5min(HubId::NewYorkNy, range).unwrap();

    let rt = rt_hourly.for_hub(HubId::NewYorkNy).unwrap();
    let da = da.for_hub(HubId::NewYorkNy).unwrap();

    // Windows in hours: 5 min, 1h, 3h, 12h, 24h.
    let rt_rows = windowed_std_devs(rt, &[1, 3, 12, 24]);
    let da_rows = windowed_std_devs(da, &[1, 3, 12, 24]);
    let five_sd = wattroute_stats::std_dev(&five.prices).unwrap();

    let header = ["Window", "5 min", "1 hr", "3 hr", "12 hr", "24 hr"];
    let rt_cells = vec![
        "Real-time σ".to_string(),
        fmt(five_sd, 1),
        fmt(rt_rows[0].1, 1),
        fmt(rt_rows[1].1, 1),
        fmt(rt_rows[2].1, 1),
        fmt(rt_rows[3].1, 1),
    ];
    let da_cells = vec![
        "Day-ahead σ".to_string(),
        "N/A".to_string(),
        fmt(da_rows[0].1, 1),
        fmt(da_rows[1].1, 1),
        fmt(da_rows[2].1, 1),
        fmt(da_rows[3].1, 1),
    ];
    print_table(&header, &[rt_cells, da_cells]);
    println!();
    println!(
        "Paper values: RT 28.5 / 24.8 / 21.9 / 18.1 / 15.6; DA N/A / 20.0 / 19.4 / 17.1 / 16.0"
    );
    println!("Expected shape: RT exceeds DA at short windows; both fall as the window grows.");
}
