//! Deployment-placement search (the §6.3 thought experiment, automated):
//! instead of enumerating hand-picked capacity splits like
//! `deployment_grid`, let the optimizer *search* the space — the
//! nine-cluster budget spread over the nine original hubs plus six extra
//! candidate hubs in cheap midwestern/southern markets. Both strategies
//! run on the same grid; the table reports objective improvements,
//! evaluation throughput and how hard the compiled-artifact cache worked.
//!
//! Pass `--json` to also dump each strategy's full `OptimizerReport`
//! audit trail (every candidate, every objective term) to stdout.

use std::time::Instant;
use wattroute::objective::Objective;
use wattroute::prelude::*;
use wattroute_bench::{banner, fmt, full_mode, print_table, HARNESS_SEED};
use wattroute_energy::model::EnergyModelParams;
use wattroute_geo::HubId;
use wattroute_market::generator::PriceGenerator;
use wattroute_market::model::MarketModel;
use wattroute_optimizer::{
    CandidateHub, DeploymentOptimizer, GreedyDescent, LocalSearch, OptimizerReport,
    OptimizerStrategy, SearchBudget, SearchSpace, SweepEvaluator,
};
use wattroute_workload::derive::WeeklyProfile;

/// Capacity quantum: one search move shifts this many servers.
const QUANTUM: u32 = 800;

fn main() {
    banner("Deployment optimizer", "Searching capacity splits over candidate hubs");
    let emit_json = std::env::args().any(|a| a == "--json");
    let constrained_mode = std::env::args().any(|a| a == "--constrained");

    let range = if full_mode() {
        HourRange::new(SimHour::from_date(2008, 1, 1), SimHour::from_date(2008, 7, 1))
    } else {
        HourRange::akamai_24_days()
    };
    let trace = if full_mode() {
        let base = SyntheticWorkloadConfig { seed: HARNESS_SEED, ..Default::default() }
            .generate(HourRange::akamai_24_days());
        WeeklyProfile::from_trace(&base)
            .expect("24-day trace covers every hour-of-week")
            .replay(range)
    } else {
        SyntheticWorkloadConfig { seed: HARNESS_SEED, ..Default::default() }.generate(range)
    };
    // Calibrated prices for *all* market hubs, so the search may activate
    // hubs the nine-cluster deployment never used.
    let prices =
        PriceGenerator::new(MarketModel::calibrated(), HARNESS_SEED).realtime_hourly(range);
    let mut config = SimulationConfig::default()
        .with_energy(EnergyModelParams::optimistic_future())
        // Turned-away demand must be visible to the objective, not billed
        // away silently.
        .with_overflow(OverflowMode::Reject);
    if full_mode() {
        config = config.with_reallocation_interval(12);
    }

    // Candidates: the nine original hubs (seeded with the incumbent
    // split) plus six extra hubs in historically cheaper markets.
    let nine = ClusterSet::akamai_like_nine();
    let (nine_space, nine_split) = SearchSpace::from_deployment(&nine, QUANTUM);
    let mut hubs = nine_space.hubs().to_vec();
    for (label, hub) in [
        ("MN", HubId::MinneapolisMn),
        ("MO", HubId::StLouisMo),
        ("OH", HubId::ColumbusOh),
        ("TX3", HubId::HoustonTx),
        ("DC", HubId::WashingtonDc),
        ("PA", HubId::PittsburghPa),
    ] {
        hubs.push(CandidateHub::new(label, hub));
    }
    let space = SearchSpace::new(hubs, nine_space.total_units(), QUANTUM);
    let mut start = nine_split;
    start.resize(space.num_hubs(), 0);

    let objective = Objective::default_qos();
    let budget = SearchBudget { max_evaluations: 400, ..SearchBudget::default() };

    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut reports: Vec<OptimizerReport> = Vec::new();
    // One evaluator (and compiled-artifact cache) per strategy, kept
    // alive so a constrained re-run can share the warmed cache.
    let mut evaluators: Vec<SweepEvaluator<'_>> = Vec::new();
    let strategies: Vec<Box<dyn OptimizerStrategy>> =
        vec![Box::new(GreedyDescent::default()), Box::new(LocalSearch::seeded(HARNESS_SEED))];
    for mut strategy in strategies {
        let optimizer = DeploymentOptimizer::new(space.clone(), &trace, &prices, config.clone())
            .with_objective(objective.clone())
            .with_budget(budget.clone())
            .with_start(start.clone());
        let mut evaluator = SweepEvaluator::new(&trace, &prices, config.clone());
        let started = Instant::now();
        let report = optimizer.run_on(strategy.as_mut(), &mut evaluator);
        let elapsed = started.elapsed().as_secs_f64();
        evaluators.push(evaluator);
        rows.push(vec![
            report.strategy.clone(),
            report.evaluations.to_string(),
            fmt(report.evaluations as f64 / elapsed, 1),
            format!("${}", fmt(report.start.total_dollars(), 0)),
            format!("${}", fmt(report.best.total_dollars(), 0)),
            format!("{}%", fmt(report.improvement_percent(), 2)),
            format!("{}%", fmt(report.cache.hit_rate().unwrap_or(0.0) * 100.0, 1)),
            report.cache.hub_lists_compiled.to_string(),
            report.best_hubs.join("+"),
        ]);
        reports.push(report);
    }

    print_table(
        &[
            "strategy",
            "evals",
            "evals/s",
            "start obj",
            "best obj",
            "improved",
            "cache hits",
            "hub lists",
            "best hubs",
        ],
        &rows,
    );
    println!();
    println!(
        "Objective: energy dollars + ${}/Mhit SLA penalty on rejected demand",
        objective.sla_penalty_per_mhit
    );
    println!(
        "(capacity quantum {QUANTUM} servers, {} candidate hubs, {} units)",
        space.num_hubs(),
        space.total_units()
    );
    println!("Reading: the search sheds capacity from expensive north-eastern hubs toward");
    println!("cheap midwestern/southern candidates, beating every hand-picked deployment_grid");
    println!("split — and nearly every evaluation reuses the compiled-artifact cache, since");
    println!("capacity-only moves never change the hub list.");

    if constrained_mode {
        // The same search *under calibrated 95/5 caps*: one baseline pass
        // over the incumbent nine-cluster deployment fixes per-hub
        // bandwidth ceilings (hubs the baseline never used stay
        // unconstrained — a fresh hub would negotiate a fresh contract),
        // and every candidate is simulated with those caps resolved
        // against its own active hubs. Constraints are run-state, not
        // compiled geometry, so each constrained search runs on its
        // unconstrained sibling's *warmed* evaluator: every artifact the
        // first pass compiled is reused, and the cumulative cache hit
        // rate can only rise.
        let scenario = wattroute::scenario::Scenario {
            clusters: nine.clone(),
            trace: trace.clone(),
            prices: prices.clone(),
            config: config.clone(),
        };
        let calibrated = CalibratedScenario::calibrate(&scenario);
        let hub_caps = calibrated.hub_caps(1.0);

        println!();
        println!("Constrained search (calibrated 95/5 caps @ 1.0x on the nine incumbent hubs):");
        let mut constrained_rows: Vec<Vec<String>> = Vec::new();
        let strategies: Vec<Box<dyn OptimizerStrategy>> =
            vec![Box::new(GreedyDescent::default()), Box::new(LocalSearch::seeded(HARNESS_SEED))];
        for ((mut strategy, unconstrained), evaluator) in
            strategies.into_iter().zip(&reports).zip(evaluators.iter_mut())
        {
            evaluator.set_hub_caps(Some(hub_caps.clone()));
            let optimizer =
                DeploymentOptimizer::new(space.clone(), &trace, &prices, config.clone())
                    .with_objective(objective.clone())
                    .with_budget(budget.clone())
                    .with_start(start.clone());
            let report = optimizer.run_on(strategy.as_mut(), evaluator);
            let hit_rate = report.cache.hit_rate().unwrap_or(0.0);
            let unconstrained_hit_rate = unconstrained.cache.hit_rate().unwrap_or(0.0);
            assert!(
                hit_rate >= unconstrained_hit_rate - 1e-12,
                "{}: calibrated caps must not invalidate CompiledArtifacts reuse \
                 (constrained hit rate {hit_rate:.4} < unconstrained {unconstrained_hit_rate:.4})",
                report.strategy,
            );
            constrained_rows.push(vec![
                report.strategy.clone(),
                report.evaluations.to_string(),
                format!("${}", fmt(report.best.total_dollars(), 0)),
                format!("{}%", fmt(report.improvement_percent(), 2)),
                format!("{}%", fmt(hit_rate * 100.0, 1)),
                format!("{}%", fmt(unconstrained_hit_rate * 100.0, 1)),
                report.best_hubs.join("+"),
            ]);
            if emit_json {
                println!("{}", report.to_json());
            }
        }
        print_table(
            &["strategy", "evals", "best obj", "improved", "cache hits", "(uncon.)", "best hubs"],
            &constrained_rows,
        );
        println!("checked: constrained cache hit rate >= unconstrained, per strategy");
    }

    if emit_json {
        for report in &reports {
            println!("{}", report.to_json());
        }
    }
}
