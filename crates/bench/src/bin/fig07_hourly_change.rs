//! Figure 7: histograms of hour-to-hour price changes, Palo Alto and Chicago.

use wattroute_bench::{banner, fmt, price_window, print_table, HARNESS_SEED};
use wattroute_geo::HubId;
use wattroute_market::analysis::hourly_change_distribution;
use wattroute_market::prelude::*;

fn main() {
    banner("Figure 7", "Hour-to-hour change in RT hourly prices (heavy-tailed, zero-mean)");
    let hubs = [HubId::PaloAltoCa, HubId::ChicagoIl];
    let generator =
        PriceGenerator::new(MarketModel::calibrated().restricted_to(&hubs), HARNESS_SEED);
    let set = generator.realtime_hourly(price_window());

    for (name, hub, paper) in [
        (
            "Palo Alto (NP15)",
            HubId::PaloAltoCa,
            "paper: sigma=37.2 kurt=17.8, 78%/89% within +/-20/40",
        ),
        ("Chicago (PJM)", HubId::ChicagoIl, "paper: sigma=22.5 kurt=33.3, 82%/96% within +/-20/40"),
    ] {
        let dist = hourly_change_distribution(set.for_hub(hub).unwrap()).unwrap();
        println!("\n{name}  ({paper})");
        println!(
            "  mean={} sigma={} kurtosis={}  |change|>=$20 for {}% of hours",
            fmt(dist.mean, 2),
            fmt(dist.std_dev, 1),
            fmt(dist.kurtosis, 1),
            fmt(dist.fraction_change_at_least_20 * 100.0, 1)
        );
        println!(
            "  within +/-$20: {}%   within +/-$40: {}%",
            fmt(dist.histogram.fraction_between(-20.0, 20.0) * 100.0, 1),
            fmt(dist.histogram.fraction_between(-40.0, 40.0) * 100.0, 1)
        );
        let rows: Vec<Vec<String>> = dist
            .histogram
            .rows()
            .iter()
            .step_by(2)
            .map(|(center, frac)| vec![fmt(*center, 1), fmt(*frac, 4)])
            .collect();
        print_table(&["$ change (bin center)", "fraction"], &rows);
    }
}
