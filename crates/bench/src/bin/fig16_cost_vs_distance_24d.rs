//! Figure 16: normalized 24-day electricity cost vs distance threshold
//! (fully elastic (0% idle, 1.1 PUE) energy model).

use wattroute_bench::{
    banner, distance_threshold_sweep, fmt, print_table, scenario_24_day, standard_thresholds,
};
use wattroute_energy::model::EnergyModelParams;

fn main() {
    wattroute_obs::Telemetry::enable_from_env();
    banner("Figure 16", "24-day cost vs distance threshold, (0% idle, 1.1 PUE), normalized to the Akamai-like allocation");
    let scenario = scenario_24_day().with_energy(EnergyModelParams::optimistic_future());
    let baseline = scenario.baseline_report();
    let caps: Vec<f64> = baseline.clusters.iter().map(|c| c.p95_hits_per_sec).collect();
    let rows = distance_threshold_sweep(&scenario, &baseline, &caps, &standard_thresholds());

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                fmt(r.threshold_km, 0),
                fmt(r.normalized_cost_constrained, 3),
                fmt(r.normalized_cost_relaxed, 3),
            ]
        })
        .collect();
    print_table(
        &["distance threshold (km)", "follow 95/5 (norm. cost)", "relax 95/5 (norm. cost)"],
        &table,
    );
    println!();
    println!("Baseline (Akamai-like) normalized cost = 1.000 by construction.");
    println!("Paper shape: costs fall as the threshold grows, with a pronounced drop around");
    println!("1500 km (Boston-Chicago distance) and diminishing returns beyond ~2000 km;");
    println!("relaxed 95/5 saves roughly 2-3x more than following the original constraints.");
}
