//! Figure 3: daily averages of day-ahead peak prices at four hubs.

use wattroute_bench::{banner, fmt, full_mode, print_table, HARNESS_SEED};
use wattroute_geo::HubId;
use wattroute_market::prelude::*;
use wattroute_market::time::SimHour;

fn main() {
    banner("Figure 3", "Daily average day-ahead prices, Jan 2006 - Apr 2009, four hubs");
    let hubs = [HubId::PortlandOr, HubId::RichmondVa, HubId::HoustonTx, HubId::PaloAltoCa];
    let model = MarketModel::calibrated().restricted_to(&hubs);
    let generator = PriceGenerator::new(model, HARNESS_SEED);
    let range = if full_mode() {
        HourRange::paper_39_months()
    } else {
        HourRange::new(SimHour::from_date(2006, 1, 1), SimHour::from_date(2009, 4, 1))
    };
    let set = generator.day_ahead(range);

    // Print monthly averages of the daily series (full daily series would be
    // ~1200 rows; the monthly summary shows the 2008 hump, the 2009 decline
    // and the Northwest's spring dips).
    let mut rows = Vec::new();
    for month in 0..range.iter().last().map(|h| h.month_index() + 1).unwrap_or(0) {
        let mut cells = vec![format!("2006+{:02}m", month)];
        for hub in hubs {
            let series = set.for_hub(hub).unwrap();
            let monthly: Vec<f64> = series
                .range()
                .iter()
                .filter(|h| h.month_index() == month)
                .filter_map(|h| series.price_at(h))
                .collect();
            cells.push(fmt(wattroute_stats::mean(&monthly).unwrap_or(f64::NAN), 1));
        }
        rows.push(cells);
    }
    print_table(&["month", "MID-C", "DOM", "ERCOT-H", "NP15"], &rows);
    println!();
    println!("Expected shape: 2008 elevation from natural-gas prices (absent at hydro-dominated");
    println!("MID-C), April dips at MID-C, and a downturn-correlated decline in 2009.");
}
