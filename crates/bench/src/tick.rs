//! Steady-state tick-path workloads shared by the `tick_throughput`
//! criterion bench and the `tick_report` binary.
//!
//! Both consumers compare the same two replays over the same scenario:
//!
//! * [`legacy_replay`] — the pre-epoch-cache engine, reimplemented
//!   verbatim: a fresh `policy.allocate` per reallocation and a full
//!   per-step recompute of `cluster_loads` / `distance_samples` with
//!   per-step accounting. This is the same reference loop the core
//!   crate's `proptest_epoch_equivalence` test pins bit-identity
//!   against; here it serves as the timing baseline.
//! * [`cached_replay`] — the shipping engine, whose allocation-epoch
//!   cache folds everything constant between reallocations into
//!   precomputed per-cluster constants.
//!
//! The interesting regime is *steady state* — a reallocation interval
//! of several steps, where the cache actually amortises. At the default
//! interval of 1 every tick reallocates and the two paths converge.

use wattroute::prelude::*;
use wattroute::report::{cluster_labels, ClusterReport, DistanceHistogram, SimulationReport};
use wattroute_energy::cost::energy_cost_dollars;
use wattroute_energy::model::ClusterPowerModel;
use wattroute_market::time::{HourRange, SimHour};
use wattroute_routing::allocation::Allocation;
use wattroute_routing::constraints::OverflowMode;
use wattroute_routing::policy::{RoutingContext, RoutingPolicy};
use wattroute_stats::{quantiles, OnlineStats};
use wattroute_workload::trace::STEP_SECONDS;

use crate::HARNESS_SEED;

/// The steady-state reallocation interval used by the tick benchmarks:
/// well past the acceptance criterion's "interval ≥ 6 steps" and equal
/// to the hierarchical-replay benchmarks' interval, so numbers line up
/// across benches.
pub const STEADY_REALLOC_INTERVAL: usize = 12;

/// The seeded scenario both tick benchmarks replay: the harness seed,
/// a window starting 2008-12-19 (the figure harnesses' anchor date),
/// and the steady-state reallocation interval.
pub fn steady_scenario(days: u64) -> Scenario {
    let start = SimHour::from_date(2008, 12, 19);
    let mut scenario =
        Scenario::custom_window(HARNESS_SEED, HourRange::new(start, start.plus_hours(days * 24)));
    scenario.config = scenario.config.with_reallocation_interval(STEADY_REALLOC_INTERVAL);
    scenario
}

/// The policy both tick benchmarks route with.
pub fn steady_policy() -> PriceConsciousPolicy {
    PriceConsciousPolicy::with_distance_threshold(1500.0)
}

/// The epoch-cached engine: just the batch driver.
pub fn cached_replay(scenario: &Scenario, policy: &mut dyn RoutingPolicy) -> SimulationReport {
    scenario.execute(policy, RunOptions::new())
}

/// The pre-epoch-cache engine, verbatim: one *freshly allocated*
/// `Allocation` per reallocation (the legacy `allocate` path), and a
/// full recompute of per-cluster loads and distance samples on
/// **every** step with the historical per-step accounting order. The
/// report is assembled exactly as `SimulationEngine::report` assembles
/// it, so the caller can assert the two paths still agree bit for bit
/// before trusting the timing comparison.
pub fn legacy_replay(scenario: &Scenario, policy: &mut dyn RoutingPolicy) -> SimulationReport {
    let clusters = &scenario.clusters;
    let trace = &scenario.trace;
    let config = &scenario.config;
    let sim = Simulation::new(clusters, trace, &scenario.prices, config.clone());
    let table = sim.price_table();

    let n_clusters = clusters.len();
    let step_hours = STEP_SECONDS as f64 / 3600.0;
    let constraints = &config.constraints;
    let tariff = config.bandwidth_tariff.as_ref();
    let accounted_caps = tariff.and(constraints.bandwidth_caps());
    let capacities: Vec<f64> =
        clusters.clusters().iter().map(|c| c.capacity_hits_per_sec()).collect();
    let power_models: Vec<ClusterPowerModel> = clusters
        .clusters()
        .iter()
        .map(|c| ClusterPowerModel::new(config.energy, c.servers))
        .collect();

    let mut cost = vec![0.0f64; n_clusters];
    let mut energy_wh = vec![0.0f64; n_clusters];
    let mut hits = vec![0.0f64; n_clusters];
    let mut overflow_hits = vec![0.0f64; n_clusters];
    let mut rejected_hits = vec![0.0f64; n_clusters];
    let mut binding_steps = vec![0usize; n_clusters];
    let mut load_series = vec![Vec::<f64>::new(); n_clusters];
    let mut util_stats = vec![OnlineStats::new(); n_clusters];
    let mut distances = DistanceHistogram::default_resolution();

    let mut cached: Option<Allocation> = None;
    let mut last_alloc_hour: Option<SimHour> = None;
    for (i, step) in trace.steps().iter().enumerate() {
        let hour = trace.step_hour(i);
        let reallocate = cached.is_none()
            || i % config.reallocate_every_steps == 0
            || Some(hour) != last_alloc_hour;
        if reallocate {
            let ctx = RoutingContext::new(
                clusters,
                &trace.states,
                &step.us_demand,
                table.delayed_at(hour).expect("table covers the trace"),
                hour,
            )
            .with_constraints(constraints);
            cached = Some(policy.allocate(&ctx));
            last_alloc_hour = Some(hour);
        }
        let allocation = cached.as_ref().expect("just populated");
        let loads = allocation.cluster_loads();
        let samples = allocation.distance_samples(clusters, &trace.states);
        let billing = table.billing_at(hour).expect("table covers the trace");

        for c in 0..n_clusters {
            let cluster = clusters.get(c).expect("index in range");
            let raw_utilization = cluster.utilization(loads[c]);
            let mut served = loads[c];
            if raw_utilization > 1.0 {
                let over = loads[c] - capacities[c];
                match constraints.overflow() {
                    OverflowMode::BillAtCapacity => {
                        overflow_hits[c] += over * STEP_SECONDS as f64;
                    }
                    OverflowMode::Reject => {
                        rejected_hits[c] += over * STEP_SECONDS as f64;
                        served = capacities[c];
                    }
                }
            }
            let utilization = raw_utilization.min(1.0);
            let watts = power_models[c].power_watts(utilization);
            let wh = watts * step_hours;
            energy_wh[c] += wh;
            cost[c] += energy_cost_dollars(wh, billing[c]);
            hits[c] += served * STEP_SECONDS as f64;
            util_stats[c].push(utilization);
            load_series[c].push(loads[c]);
            if let Some(caps) = accounted_caps {
                if caps[c].is_finite() && loads[c] > 0.0 && loads[c] >= caps[c] * (1.0 - 1e-9) {
                    binding_steps[c] += 1;
                }
            }
        }
        for (distance_km, weight) in samples {
            distances.add(distance_km, weight * STEP_SECONDS as f64);
        }
    }

    let n_steps = trace.num_steps();
    let labels = cluster_labels(clusters);
    let clusters_report = (0..n_clusters)
        .map(|c| {
            let p95 = quantiles::percentile(&load_series[c], 95.0).unwrap_or(0.0);
            ClusterReport {
                label: labels[c].clone(),
                cost_dollars: cost[c],
                energy_mwh: energy_wh[c] / 1.0e6,
                mean_utilization: util_stats[c].mean().unwrap_or(0.0),
                p95_hits_per_sec: p95,
                peak_hits_per_sec: load_series[c].iter().copied().fold(0.0, f64::max),
                total_hits: hits[c],
                overflow_hits: overflow_hits[c],
                rejected_hits: rejected_hits[c],
                bandwidth_cap_hits_per_sec: accounted_caps
                    .map(|caps| caps[c])
                    .filter(|cap| cap.is_finite()),
                bandwidth_binding_hours: binding_steps[c] as f64 * STEP_SECONDS as f64 / 3600.0,
                bandwidth_cost_dollars: tariff.map_or(0.0, |t| t.bill_dollars(p95, n_steps)),
            }
        })
        .collect::<Vec<_>>();

    SimulationReport {
        policy: policy.name().to_string(),
        steps: n_steps,
        reaction_delay_hours: config.reaction_delay_hours,
        bandwidth_constrained: constraints.is_bandwidth_constrained(),
        total_cost_dollars: cost.iter().sum(),
        total_energy_mwh: energy_wh.iter().sum::<f64>() / 1.0e6,
        total_overflow_hits: overflow_hits.iter().sum(),
        total_rejected_hits: rejected_hits.iter().sum(),
        total_bandwidth_binding_hours: clusters_report
            .iter()
            .map(|c| c.bandwidth_binding_hours)
            .sum(),
        total_bandwidth_cost_dollars: clusters_report
            .iter()
            .map(|c| c.bandwidth_cost_dollars)
            .sum(),
        delay_clamped_hours: table.clamped_lead_hours(),
        clusters: clusters_report,
        mean_distance_km: distances.mean_km().unwrap_or(0.0),
        p99_distance_km: distances.percentile_km(99.0).unwrap_or(0.0),
        distances,
        tiers: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn legacy_and_cached_replays_agree_on_the_steady_scenario() {
        let scenario = steady_scenario(1);
        let legacy = legacy_replay(&scenario, &mut steady_policy());
        let cached = cached_replay(&scenario, &mut steady_policy());
        assert_eq!(legacy, cached);
    }
}
