//! In-process smoke and batch-equivalence tests for the `routed` daemon.
//!
//! The daemon replays a trace through the incremental tick engine while
//! serving queries over a Unix socket; these tests pin (a) the wire
//! protocol — `route?`, `stats`, `metrics`, `snapshot`, `shutdown`, and
//! error replies — and (b) the headline guarantee that a free-running
//! daemon's final report is bit-identical to the batch `Scenario::execute`
//! run of the same scenario and policy.

use std::path::PathBuf;
use std::time::Duration;
use wattroute::engine::EngineSnapshot;
use wattroute::json::{self, JsonValue};
use wattroute::prelude::*;
use wattroute::report::SimulationReport;
use wattroute_bench::daemon::{serve, DaemonClient, DaemonOptions, DEFAULT_MAX_CONNECTIONS};
use wattroute_market::time::{HourRange, SimHour};

fn short_scenario(hours: u64) -> Scenario {
    let start = SimHour::from_date(2008, 12, 19);
    Scenario::custom_window(42, HourRange::new(start, start.plus_hours(hours)))
}

/// A unique, short socket path (Unix socket paths have a ~100-byte limit,
/// so always anchor in the system temp dir).
fn socket_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("wr_{tag}_{}.sock", std::process::id()))
}

#[test]
fn free_running_daemon_matches_the_batch_run_bit_for_bit() {
    let scenario = short_scenario(48);
    let path = socket_path("eq");
    let _ = std::fs::remove_file(&path);

    let mut daemon_policy = PriceConsciousPolicy::with_distance_threshold(1500.0);
    let daemon_report =
        serve(&scenario, &mut daemon_policy, &DaemonOptions::free_run(&path)).expect("serve");

    let mut batch_policy = PriceConsciousPolicy::with_distance_threshold(1500.0);
    let batch_report = scenario.execute(&mut batch_policy, RunOptions::new());

    assert_eq!(
        daemon_report, batch_report,
        "a free-running daemon must reproduce the batch run exactly"
    );
    // And byte-identically through the JSON encoding.
    assert_eq!(daemon_report.to_json_value().to_string(), batch_report.to_json_value().to_string());
    assert!(!path.exists(), "the daemon must remove its socket on shutdown");
}

#[test]
fn wire_protocol_answers_all_commands_mid_run() {
    let scenario = short_scenario(24);
    let path = socket_path("wire");
    let _ = std::fs::remove_file(&path);

    let options = DaemonOptions {
        socket_path: path.clone(),
        // Slow enough that queries land mid-trace: 24h × 12 steps × 3ms ≈ 0.9s.
        step_wait: Duration::from_millis(3),
        linger: true,
        max_connections: DEFAULT_MAX_CONNECTIONS,
    };
    let scenario_ref = &scenario;
    let final_report = std::thread::scope(|scope| {
        let server = scope.spawn(move || {
            let mut policy = PriceConsciousPolicy::with_distance_threshold(1500.0);
            serve(scenario_ref, &mut policy, &options).expect("serve")
        });

        let mut client = DaemonClient::connect(&path, Duration::from_secs(10)).expect("connect");

        // stats: a mid-run report that parses as a SimulationReport.
        let stats = client.command("stats").expect("stats");
        assert_eq!(stats.get("ok").and_then(JsonValue::as_bool), Some(true));
        // ... plus the daemon-health block.
        assert!(stats.get("uptime_secs").and_then(JsonValue::as_f64).expect("uptime") >= 0.0);
        assert!(
            stats.get("connections_total").and_then(JsonValue::as_f64).expect("connections") >= 1.0,
            "this very connection must be counted"
        );
        let verbs = stats.get("requests_by_verb").expect("requests_by_verb object");
        assert!(
            verbs.get("stats").and_then(JsonValue::as_f64).expect("stats verb counter") >= 1.0,
            "this very request must be counted"
        );
        let report = SimulationReport::from_json_value(stats.get("report").expect("report field"))
            .expect("mid-run report decodes");
        assert_eq!(report.policy, "price-conscious");
        // The policy name proves a tick ran, so an allocation is in force
        // and the stats reply carries its tier-level aggregation.
        let tier_load = stats.get("tier_load").expect("tier_load field");
        let total = tier_load.get("total_hits_per_sec").and_then(JsonValue::as_f64).expect("total");
        assert!(total >= 0.0);
        let regions = tier_load.get("regions").expect("regions object");
        assert!(regions.get("US").and_then(JsonValue::as_f64).is_some(), "one-region embedding");

        // route?: the current allocation routes Massachusetts somewhere.
        let route = client
            .request(&json::object([
                ("cmd", JsonValue::String("route?".into())),
                ("state", JsonValue::String("ma".into())),
            ]))
            .expect("route?");
        assert_eq!(route.get("ok").and_then(JsonValue::as_bool), Some(true), "{route}");
        assert_eq!(route.get("state").and_then(JsonValue::as_str), Some("MA"));
        let per_cluster = route.get("hits_per_sec").expect("hits_per_sec");
        let total: f64 = scenario
            .clusters
            .clusters()
            .iter()
            .map(|c| per_cluster.get(&c.label).and_then(JsonValue::as_f64).expect("every cluster"))
            .sum();
        assert!(total >= 0.0);

        // snapshot: losslessly decodable engine state.
        let snap = client.command("snapshot").expect("snapshot");
        assert_eq!(snap.get("ok").and_then(JsonValue::as_bool), Some(true));
        let snapshot = EngineSnapshot::from_json_value(snap.get("snapshot").expect("snapshot"))
            .expect("snapshot decodes");
        assert_eq!(snapshot.policy_name(), Some("price-conscious"));

        // metrics: a Prometheus-style exposition of the obs registry. The
        // daemon's request counters are always-live, so the series are
        // present even with telemetry off (span histograms need
        // --telemetry / WATTROUTE_TELEMETRY=1).
        let metrics = client.command("metrics").expect("metrics");
        assert_eq!(metrics.get("ok").and_then(JsonValue::as_bool), Some(true));
        assert!(metrics.get("uptime_secs").and_then(JsonValue::as_f64).expect("uptime") >= 0.0);
        assert!(metrics.get("telemetry_enabled").and_then(JsonValue::as_bool).is_some());
        let expo = metrics.get("exposition").and_then(JsonValue::as_str).expect("exposition text");
        assert!(
            expo.contains("# TYPE wattroute_daemon_requests_stats_total counter"),
            "exposition must carry the per-verb request counters: {expo}"
        );
        assert!(expo.contains("wattroute_daemon_requests_metrics_total 1"), "{expo}");
        assert!(expo.contains("wattroute_daemon_connections_opened_total"), "{expo}");

        // Errors are replies, not dropped connections.
        let bad = client.command("no-such-command").expect("error reply");
        assert_eq!(bad.get("ok").and_then(JsonValue::as_bool), Some(false));
        let malformed = client.request(&JsonValue::String("not an object".into()));
        assert_eq!(malformed.expect("reply").get("ok").and_then(JsonValue::as_bool), Some(false));
        let unknown_state = client
            .request(&json::object([
                ("cmd", JsonValue::String("route?".into())),
                ("state", JsonValue::String("ZZ".into())),
            ]))
            .expect("reply");
        assert_eq!(unknown_state.get("ok").and_then(JsonValue::as_bool), Some(false));

        // shutdown: acknowledged, then the daemon flushes its final report.
        let ack = client.command("shutdown").expect("shutdown");
        assert_eq!(ack.get("ok").and_then(JsonValue::as_bool), Some(true));
        server.join().expect("server thread")
    });

    assert!(final_report.steps > 0, "the daemon accumulated ticks before shutdown");
    assert_eq!(final_report.policy, "price-conscious");
    assert!(!path.exists(), "socket removed after shutdown");
}

#[test]
fn connections_beyond_the_cap_get_an_error_reply_and_are_closed() {
    use std::io::BufRead;

    let scenario = short_scenario(24);
    let path = socket_path("cap");
    let _ = std::fs::remove_file(&path);

    let options = DaemonOptions {
        socket_path: path.clone(),
        step_wait: Duration::from_millis(3),
        linger: true,
        max_connections: 1,
    };
    std::thread::scope(|scope| {
        let scenario_ref = &scenario;
        let options_ref = &options;
        let server = scope.spawn(move || {
            let mut policy = AkamaiLikePolicy::default();
            serve(scenario_ref, &mut policy, options_ref).expect("serve")
        });

        // The first client occupies the single slot; a served request
        // proves its handler thread is live (not merely queued).
        let mut first = DaemonClient::connect(&path, Duration::from_secs(10)).expect("connect");
        let stats = first.command("stats").expect("stats");
        assert_eq!(stats.get("ok").and_then(JsonValue::as_bool), Some(true));

        // The second connection is rejected with a parseable reply — no
        // request needs to be sent — and then closed.
        let second = std::os::unix::net::UnixStream::connect(&path).expect("connect second");
        let mut reader = std::io::BufReader::new(second);
        let mut line = String::new();
        reader.read_line(&mut line).expect("rejection reply");
        let reply = JsonValue::parse(line.trim()).expect("reply is JSON");
        assert_eq!(reply.get("ok").and_then(JsonValue::as_bool), Some(false), "{reply}");
        let error = reply.get("error").and_then(JsonValue::as_str).expect("error string");
        assert!(error.contains("connection limit"), "unexpected error: {error}");
        line.clear();
        assert_eq!(reader.read_line(&mut line).expect("EOF"), 0, "rejected stream is closed");

        // The rejection is visible in the daemon's health counters: the
        // rejected connection was opened, and its error reply was counted.
        let stats = first.command("stats").expect("stats after rejection");
        assert!(
            stats.get("connections_total").and_then(JsonValue::as_f64).expect("connections") >= 2.0,
            "the rejected connection still counts as opened: {stats}"
        );
        let verbs = stats.get("requests_by_verb").expect("requests_by_verb");
        assert!(
            verbs.get("errors").and_then(JsonValue::as_f64).expect("errors counter") >= 1.0,
            "--max-conns saturation must surface as a counted error: {stats}"
        );

        // The admitted client still works, and freeing its slot admits a
        // successor.
        let ack = first.command("shutdown").expect("shutdown");
        assert_eq!(ack.get("ok").and_then(JsonValue::as_bool), Some(true));
        server.join().expect("server thread")
    });
}

#[test]
fn shutdown_mid_trace_flushes_a_partial_report() {
    let scenario = short_scenario(24);
    let path = socket_path("part");
    let _ = std::fs::remove_file(&path);

    let options = DaemonOptions {
        socket_path: path.clone(),
        step_wait: Duration::from_millis(10),
        linger: false,
        max_connections: DEFAULT_MAX_CONNECTIONS,
    };
    let scenario_ref = &scenario;
    let report = std::thread::scope(|scope| {
        let server = scope.spawn(move || {
            let mut policy = AkamaiLikePolicy::default();
            serve(scenario_ref, &mut policy, &options).expect("serve")
        });
        let mut client = DaemonClient::connect(&path, Duration::from_secs(10)).expect("connect");
        // Give the tick loop a moment, then stop it mid-trace.
        std::thread::sleep(Duration::from_millis(100));
        client.command("shutdown").expect("shutdown");
        server.join().expect("server thread")
    });

    assert!(report.steps > 0, "some ticks ran");
    assert!(report.steps < scenario.trace.num_steps(), "shutdown interrupted the trace");
    assert!(report.total_cost_dollars > 0.0);
}
