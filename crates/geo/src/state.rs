//! US states as client populations.
//!
//! The Akamai traffic data localises clients to US states (§4 of the paper),
//! and the simulator's distance metric is a population-density-weighted
//! geographic distance derived from census data (§6.1). This module embeds
//! the needed per-state facts: population (2007-era census estimates, the
//! period covered by the paper's data), land area, an approximate centre of
//! population, and the state's primary time zone (for local-time diurnal
//! demand patterns).

use crate::latlon::LatLon;
use serde::{Deserialize, Serialize};

/// Two-letter identifiers for the 50 US states plus the District of Columbia.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum UsState {
    AL,
    AK,
    AZ,
    AR,
    CA,
    CO,
    CT,
    DE,
    DC,
    FL,
    GA,
    HI,
    ID,
    IL,
    IN,
    IA,
    KS,
    KY,
    LA,
    ME,
    MD,
    MA,
    MI,
    MN,
    MS,
    MO,
    MT,
    NE,
    NV,
    NH,
    NJ,
    NM,
    NY,
    NC,
    ND,
    OH,
    OK,
    OR,
    PA,
    RI,
    SC,
    SD,
    TN,
    TX,
    UT,
    VT,
    VA,
    WA,
    WV,
    WI,
    WY,
}

/// Static facts about a state.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StateInfo {
    /// State identifier.
    pub state: UsState,
    /// Full name.
    pub name: &'static str,
    /// Estimated population circa 2007 (the middle of the paper's price
    /// data window), in persons.
    pub population: u64,
    /// Land area in square kilometres.
    pub area_km2: f64,
    /// Approximate centre of population.
    pub centroid: LatLon,
    /// Standard-time UTC offset in hours (negative west of Greenwich).
    /// Multi-zone states use the zone containing most of the population.
    pub utc_offset_hours: i8,
}

macro_rules! state {
    ($id:ident, $name:literal, $pop:literal, $area:literal, $lat:literal, $lon:literal, $tz:literal) => {
        StateInfo {
            state: UsState::$id,
            name: $name,
            population: $pop,
            area_km2: $area,
            centroid: LatLon { lat: $lat, lon: $lon },
            utc_offset_hours: $tz,
        }
    };
}

/// The embedded state table (51 entries: 50 states + DC).
pub const ALL_STATES: [StateInfo; 51] = [
    state!(AL, "Alabama", 4_627_851, 131_171.0, 33.0, -86.8, -6),
    state!(AK, "Alaska", 683_478, 1_477_953.0, 61.2, -149.9, -9),
    state!(AZ, "Arizona", 6_338_755, 294_207.0, 33.4, -112.1, -7),
    state!(AR, "Arkansas", 2_834_797, 134_771.0, 34.9, -92.4, -6),
    state!(CA, "California", 36_553_215, 403_466.0, 35.5, -119.5, -8),
    state!(CO, "Colorado", 4_861_515, 268_431.0, 39.5, -105.0, -7),
    state!(CT, "Connecticut", 3_502_309, 12_542.0, 41.5, -72.9, -5),
    state!(DE, "Delaware", 864_764, 5_047.0, 39.4, -75.6, -5),
    state!(DC, "District of Columbia", 588_292, 158.0, 38.9, -77.0, -5),
    state!(FL, "Florida", 18_251_243, 138_887.0, 27.8, -81.6, -5),
    state!(GA, "Georgia", 9_544_750, 148_959.0, 33.4, -83.9, -5),
    state!(HI, "Hawaii", 1_283_388, 16_635.0, 21.3, -157.8, -10),
    state!(ID, "Idaho", 1_499_402, 214_045.0, 43.8, -115.5, -7),
    state!(IL, "Illinois", 12_852_548, 143_793.0, 41.3, -88.4, -6),
    state!(IN, "Indiana", 6_345_289, 92_789.0, 39.9, -86.3, -5),
    state!(IA, "Iowa", 2_988_046, 144_669.0, 41.9, -93.4, -6),
    state!(KS, "Kansas", 2_775_997, 211_754.0, 38.5, -96.8, -6),
    state!(KY, "Kentucky", 4_241_474, 102_269.0, 37.8, -85.3, -5),
    state!(LA, "Louisiana", 4_293_204, 111_898.0, 30.7, -91.5, -6),
    state!(ME, "Maine", 1_317_207, 79_883.0, 44.4, -69.8, -5),
    state!(MD, "Maryland", 5_618_344, 25_142.0, 39.1, -76.8, -5),
    state!(MA, "Massachusetts", 6_449_755, 20_202.0, 42.3, -71.5, -5),
    state!(MI, "Michigan", 10_071_822, 146_435.0, 42.9, -84.2, -5),
    state!(MN, "Minnesota", 5_197_621, 206_232.0, 45.0, -93.5, -6),
    state!(MS, "Mississippi", 2_918_785, 121_531.0, 32.6, -89.8, -6),
    state!(MO, "Missouri", 5_878_415, 178_040.0, 38.5, -92.5, -6),
    state!(MT, "Montana", 957_861, 376_962.0, 46.5, -111.2, -7),
    state!(NE, "Nebraska", 1_774_571, 198_974.0, 41.2, -96.9, -6),
    state!(NV, "Nevada", 2_565_382, 284_332.0, 36.8, -115.7, -8),
    state!(NH, "New Hampshire", 1_315_828, 23_187.0, 43.1, -71.6, -5),
    state!(NJ, "New Jersey", 8_685_920, 19_047.0, 40.4, -74.5, -5),
    state!(NM, "New Mexico", 1_969_915, 314_161.0, 34.8, -106.4, -7),
    state!(NY, "New York", 19_297_729, 122_057.0, 41.5, -74.7, -5),
    state!(NC, "North Carolina", 9_061_032, 125_920.0, 35.5, -79.4, -5),
    state!(ND, "North Dakota", 639_715, 178_711.0, 47.0, -97.9, -6),
    state!(OH, "Ohio", 11_466_917, 105_829.0, 40.2, -82.7, -5),
    state!(OK, "Oklahoma", 3_617_316, 177_660.0, 35.6, -97.0, -6),
    state!(OR, "Oregon", 3_747_455, 248_608.0, 44.6, -122.6, -8),
    state!(PA, "Pennsylvania", 12_432_792, 115_883.0, 40.5, -77.0, -5),
    state!(RI, "Rhode Island", 1_057_832, 2_678.0, 41.8, -71.4, -5),
    state!(SC, "South Carolina", 4_407_709, 77_857.0, 34.0, -81.0, -5),
    state!(SD, "South Dakota", 796_214, 196_350.0, 44.0, -98.5, -6),
    state!(TN, "Tennessee", 6_156_719, 106_798.0, 35.8, -86.4, -6),
    state!(TX, "Texas", 23_904_380, 676_587.0, 30.9, -97.4, -6),
    state!(UT, "Utah", 2_645_330, 212_818.0, 40.4, -111.7, -7),
    state!(VT, "Vermont", 621_254, 23_871.0, 44.1, -72.8, -5),
    state!(VA, "Virginia", 7_712_091, 102_279.0, 37.8, -77.8, -5),
    state!(WA, "Washington", 6_468_424, 172_119.0, 47.4, -121.8, -8),
    state!(WV, "West Virginia", 1_812_035, 62_259.0, 38.8, -80.7, -5),
    state!(WI, "Wisconsin", 5_601_640, 140_268.0, 43.7, -88.7, -6),
    state!(WY, "Wyoming", 522_830, 251_470.0, 42.3, -106.3, -7),
];

impl UsState {
    /// Every state including DC, in a stable order.
    pub fn all() -> impl Iterator<Item = UsState> {
        ALL_STATES.iter().map(|s| s.state)
    }

    /// The static record for this state.
    pub fn info(&self) -> &'static StateInfo {
        ALL_STATES.iter().find(|s| s.state == *self).expect("every UsState has a table entry")
    }

    /// Two-letter postal abbreviation.
    pub fn abbreviation(&self) -> &'static str {
        // Derive from the Debug representation, which is exactly the
        // two-letter code by construction of the enum.
        match self {
            UsState::AL => "AL",
            UsState::AK => "AK",
            UsState::AZ => "AZ",
            UsState::AR => "AR",
            UsState::CA => "CA",
            UsState::CO => "CO",
            UsState::CT => "CT",
            UsState::DE => "DE",
            UsState::DC => "DC",
            UsState::FL => "FL",
            UsState::GA => "GA",
            UsState::HI => "HI",
            UsState::ID => "ID",
            UsState::IL => "IL",
            UsState::IN => "IN",
            UsState::IA => "IA",
            UsState::KS => "KS",
            UsState::KY => "KY",
            UsState::LA => "LA",
            UsState::ME => "ME",
            UsState::MD => "MD",
            UsState::MA => "MA",
            UsState::MI => "MI",
            UsState::MN => "MN",
            UsState::MS => "MS",
            UsState::MO => "MO",
            UsState::MT => "MT",
            UsState::NE => "NE",
            UsState::NV => "NV",
            UsState::NH => "NH",
            UsState::NJ => "NJ",
            UsState::NM => "NM",
            UsState::NY => "NY",
            UsState::NC => "NC",
            UsState::ND => "ND",
            UsState::OH => "OH",
            UsState::OK => "OK",
            UsState::OR => "OR",
            UsState::PA => "PA",
            UsState::RI => "RI",
            UsState::SC => "SC",
            UsState::SD => "SD",
            UsState::TN => "TN",
            UsState::TX => "TX",
            UsState::UT => "UT",
            UsState::VT => "VT",
            UsState::VA => "VA",
            UsState::WA => "WA",
            UsState::WV => "WV",
            UsState::WI => "WI",
            UsState::WY => "WY",
        }
    }

    /// Parse a two-letter postal abbreviation (case-insensitive).
    pub fn from_abbreviation(code: &str) -> Option<UsState> {
        let upper = code.to_ascii_uppercase();
        ALL_STATES.iter().find(|s| s.state.abbreviation() == upper).map(|s| s.state)
    }

    /// Population circa 2007.
    pub fn population(&self) -> u64 {
        self.info().population
    }

    /// Centre of population.
    pub fn centroid(&self) -> LatLon {
        self.info().centroid
    }

    /// Standard-time UTC offset in hours.
    pub fn utc_offset_hours(&self) -> i8 {
        self.info().utc_offset_hours
    }

    /// Characteristic geographic dispersion of the state's population, in
    /// kilometres. Modelled as the radius of a disc with the state's land
    /// area, scaled down because population clusters in metropolitan areas.
    ///
    /// Used by the population-density-weighted distance metric: clients in a
    /// large, spread-out state are on average farther from any single point
    /// than the centroid distance alone suggests.
    pub fn dispersion_km(&self) -> f64 {
        let area = self.info().area_km2;
        0.5 * (area / std::f64::consts::PI).sqrt()
    }

    /// Whether the state lies in the contiguous (lower-48 + DC) US. The
    /// paper's distance analysis ignores non-US clients; we additionally
    /// treat AK/HI clients like other domestic clients but they have no
    /// nearby hubs.
    pub fn is_contiguous(&self) -> bool {
        !matches!(self, UsState::AK | UsState::HI)
    }
}

impl std::fmt::Display for UsState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.abbreviation())
    }
}

/// Total US population over all embedded states.
pub fn total_us_population() -> u64 {
    ALL_STATES.iter().map(|s| s.population).sum()
}

/// Fraction of the national population living in a given state.
pub fn population_share(state: UsState) -> f64 {
    state.population() as f64 / total_us_population() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn fifty_one_entries() {
        assert_eq!(ALL_STATES.len(), 51);
        assert_eq!(UsState::all().count(), 51);
    }

    #[test]
    fn abbreviations_unique_and_roundtrip() {
        let set: HashSet<_> = UsState::all().map(|s| s.abbreviation()).collect();
        assert_eq!(set.len(), 51);
        for s in UsState::all() {
            assert_eq!(UsState::from_abbreviation(s.abbreviation()), Some(s));
            assert_eq!(UsState::from_abbreviation(&s.abbreviation().to_lowercase()), Some(s));
        }
        assert_eq!(UsState::from_abbreviation("ZZ"), None);
    }

    #[test]
    fn total_population_close_to_2007_estimate() {
        // The 2007 US population was roughly 301 million.
        let total = total_us_population();
        assert!(total > 295_000_000 && total < 310_000_000, "total = {total}");
    }

    #[test]
    fn california_and_texas_are_largest() {
        let mut by_pop: Vec<_> = ALL_STATES.iter().collect();
        by_pop.sort_by_key(|s| std::cmp::Reverse(s.population));
        assert_eq!(by_pop[0].state, UsState::CA);
        assert_eq!(by_pop[1].state, UsState::TX);
        assert_eq!(by_pop[2].state, UsState::NY);
    }

    #[test]
    fn population_shares_sum_to_one() {
        let sum: f64 = UsState::all().map(population_share).sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn time_zones_are_sane() {
        assert_eq!(UsState::NY.utc_offset_hours(), -5);
        assert_eq!(UsState::IL.utc_offset_hours(), -6);
        assert_eq!(UsState::CO.utc_offset_hours(), -7);
        assert_eq!(UsState::CA.utc_offset_hours(), -8);
        assert_eq!(UsState::HI.utc_offset_hours(), -10);
        for s in UsState::all() {
            let tz = s.utc_offset_hours();
            assert!((-10..=-5).contains(&tz), "{s}: {tz}");
        }
    }

    #[test]
    fn centroids_are_plausible() {
        for s in ALL_STATES.iter() {
            assert!(s.centroid.lat > 18.0 && s.centroid.lat < 72.0, "{}", s.name);
            assert!(s.centroid.lon > -170.0 && s.centroid.lon < -60.0, "{}", s.name);
        }
    }

    #[test]
    fn dispersion_scales_with_area() {
        assert!(UsState::TX.dispersion_km() > UsState::RI.dispersion_km() * 5.0);
        assert!(UsState::RI.dispersion_km() > 5.0);
        assert!(UsState::CA.dispersion_km() < 400.0);
    }

    #[test]
    fn contiguous_flag() {
        assert!(!UsState::AK.is_contiguous());
        assert!(!UsState::HI.is_contiguous());
        assert!(UsState::CA.is_contiguous());
        assert_eq!(UsState::all().filter(|s| s.is_contiguous()).count(), 49);
    }

    #[test]
    fn display_is_abbreviation() {
        assert_eq!(UsState::MA.to_string(), "MA");
    }
}
