//! The region → metro → site deployment tree.
//!
//! The paper's world is flat: nine clusters, one per market hub. A
//! production CDN is a tree — a handful of market *regions*, each holding
//! the *metros* (hubs) inside its footprint, each metro holding many edge
//! *sites*. [`Topology`] is the arena-backed form of that tree: every node
//! lives in a flat per-tier vector, children of one parent occupy a
//! contiguous index range, and per-node attributes (hub, server counts,
//! optional tier bandwidth caps) sit in parallel vectors so the replay
//! core can walk a 1000-site tree without chasing pointers.
//!
//! Two constructions matter:
//!
//! * [`Topology::synthetic`] — a seeded generator that spreads N sites
//!   over the 29 market hubs, grouped by RTO, for at-scale replays;
//! * the *trivial embedding* (one region, one metro per cluster, one site
//!   per metro — see `wattroute_workload::hierarchy::single_region_of`),
//!   which represents today's flat deployments losslessly: a replay over
//!   it is bit-identical to the flat engine.

use crate::distance::state_to_hub_km;
use crate::hubs::{self, HubId};
use crate::rto::Rto;
use crate::state::UsState;

/// An arena-backed region → metro → site tree. Nodes are indexed per tier;
/// children of one parent are contiguous, so a `(start, end)` range is all
/// the tree structure a traversal needs.
#[derive(Debug, Clone, PartialEq)]
pub struct Topology {
    region_labels: Vec<String>,
    metro_labels: Vec<String>,
    site_labels: Vec<String>,
    /// Parent region of each metro.
    metro_region: Vec<usize>,
    /// Parent metro of each site.
    site_metro: Vec<usize>,
    /// Parent region of each site (derived, kept for O(1) lookup).
    site_region: Vec<usize>,
    /// Contiguous metro range `[start, end)` of each region.
    region_metros: Vec<(usize, usize)>,
    /// Contiguous site range `[start, end)` of each metro.
    metro_sites: Vec<(usize, usize)>,
    /// Contiguous site range `[start, end)` of each region.
    region_sites: Vec<(usize, usize)>,
    /// Market hub each site buys power at.
    site_hub: Vec<HubId>,
    /// Server count per site.
    site_servers: Vec<u32>,
    /// Per-server request capacity per site (hits/second).
    site_hits_per_server: Vec<f64>,
    /// Aggregate bandwidth cap per metro in hits/second (`∞` = uncapped).
    metro_cap_hits_per_sec: Vec<f64>,
    /// Aggregate bandwidth cap per region in hits/second (`∞` = uncapped).
    region_cap_hits_per_sec: Vec<f64>,
}

/// Incrementally builds a [`Topology`]. Regions, metros and sites are
/// appended in order; a metro always attaches to the most recently added
/// region and a site to the most recently added metro, which makes child
/// ranges contiguous by construction.
#[derive(Debug, Clone, Default)]
pub struct TopologyBuilder {
    region_labels: Vec<String>,
    metro_labels: Vec<String>,
    site_labels: Vec<String>,
    metro_region: Vec<usize>,
    site_metro: Vec<usize>,
    site_hub: Vec<HubId>,
    site_servers: Vec<u32>,
    site_hits_per_server: Vec<f64>,
    metro_cap_hits_per_sec: Vec<f64>,
    region_cap_hits_per_sec: Vec<f64>,
}

impl TopologyBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a region (uncapped by default) and return its index.
    pub fn add_region(&mut self, label: impl Into<String>) -> usize {
        self.region_labels.push(label.into());
        self.region_cap_hits_per_sec.push(f64::INFINITY);
        self.region_labels.len() - 1
    }

    /// Append a metro under the most recently added region and return its
    /// index.
    ///
    /// # Panics
    /// Panics if no region has been added yet.
    pub fn add_metro(&mut self, label: impl Into<String>) -> usize {
        assert!(!self.region_labels.is_empty(), "add a region before adding metros");
        self.metro_labels.push(label.into());
        self.metro_region.push(self.region_labels.len() - 1);
        self.metro_cap_hits_per_sec.push(f64::INFINITY);
        self.metro_labels.len() - 1
    }

    /// Append a site under the most recently added metro and return its
    /// index.
    ///
    /// # Panics
    /// Panics if no metro has been added yet, or on a non-finite or
    /// negative per-server capacity.
    pub fn add_site(
        &mut self,
        label: impl Into<String>,
        hub: HubId,
        servers: u32,
        hits_per_server_per_sec: f64,
    ) -> usize {
        assert!(!self.metro_labels.is_empty(), "add a metro before adding sites");
        assert!(
            hits_per_server_per_sec.is_finite() && hits_per_server_per_sec >= 0.0,
            "per-server capacity must be finite and non-negative"
        );
        self.site_labels.push(label.into());
        self.site_metro.push(self.metro_labels.len() - 1);
        self.site_hub.push(hub);
        self.site_servers.push(servers);
        self.site_hits_per_server.push(hits_per_server_per_sec);
        self.site_labels.len() - 1
    }

    /// Cap a region's aggregate bandwidth (hits/second; `∞` relaxes).
    pub fn set_region_cap(&mut self, region: usize, cap_hits_per_sec: f64) {
        assert!(!cap_hits_per_sec.is_nan() && cap_hits_per_sec >= 0.0, "cap must be >= 0");
        self.region_cap_hits_per_sec[region] = cap_hits_per_sec;
    }

    /// Cap a metro's aggregate bandwidth (hits/second; `∞` relaxes).
    pub fn set_metro_cap(&mut self, metro: usize, cap_hits_per_sec: f64) {
        assert!(!cap_hits_per_sec.is_nan() && cap_hits_per_sec >= 0.0, "cap must be >= 0");
        self.metro_cap_hits_per_sec[metro] = cap_hits_per_sec;
    }

    /// Finalize the tree: derive the contiguous child ranges and the
    /// site → region parent vector.
    ///
    /// # Panics
    /// Panics on an empty tree (no regions or no sites).
    pub fn build(self) -> Topology {
        assert!(!self.region_labels.is_empty(), "topology has no regions");
        assert!(!self.site_labels.is_empty(), "topology has no sites");
        let region_metros = child_ranges(&self.metro_region, self.region_labels.len());
        let metro_sites = child_ranges(&self.site_metro, self.metro_labels.len());
        let site_region: Vec<usize> =
            self.site_metro.iter().map(|&m| self.metro_region[m]).collect();
        let region_sites = child_ranges(&site_region, self.region_labels.len());
        Topology {
            region_labels: self.region_labels,
            metro_labels: self.metro_labels,
            site_labels: self.site_labels,
            metro_region: self.metro_region,
            site_metro: self.site_metro,
            site_region,
            region_metros,
            metro_sites,
            region_sites,
            site_hub: self.site_hub,
            site_servers: self.site_servers,
            site_hits_per_server: self.site_hits_per_server,
            metro_cap_hits_per_sec: self.metro_cap_hits_per_sec,
            region_cap_hits_per_sec: self.region_cap_hits_per_sec,
        }
    }
}

/// Derive contiguous `[start, end)` child ranges from a child → parent
/// vector whose parent indices are non-decreasing (guaranteed by the
/// builder's append discipline).
fn child_ranges(parents: &[usize], num_parents: usize) -> Vec<(usize, usize)> {
    let mut ranges = vec![(0usize, 0usize); num_parents];
    let mut cursor = 0usize;
    for (parent, range) in ranges.iter_mut().enumerate() {
        let start = cursor;
        while cursor < parents.len() && parents[cursor] == parent {
            cursor += 1;
        }
        *range = (start, cursor);
    }
    assert_eq!(cursor, parents.len(), "child parent indices must be non-decreasing");
    ranges
}

/// A tiny deterministic generator (SplitMix64) so synthetic topologies are
/// reproducible without pulling a random-number dependency into the geo
/// crate.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform draw in `[0, 1)`.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Topology {
    /// A seeded synthetic deployment: one region per market RTO (in
    /// [`Rto::MARKETS`] order), one metro per market hub, and `n_sites`
    /// sites spread as evenly as possible over the 29 metros with seeded
    /// per-site server-count jitter. Total capacity is sized to match the
    /// paper's nine-cluster deployment (so the synthetic traces drive it
    /// at comparable utilization) regardless of `n_sites`. All tier caps
    /// start uncapped; see [`Self::with_tier_slack`].
    ///
    /// # Panics
    /// Panics when `n_sites` is zero.
    pub fn synthetic(seed: u64, n_sites: usize) -> Self {
        assert!(n_sites > 0, "a synthetic topology needs at least one site");
        let metros: Vec<&'static hubs::Hub> =
            Rto::MARKETS.iter().flat_map(|&rto| hubs::hubs_in_rto(rto)).collect();
        let base = n_sites / metros.len();
        let extra = n_sites % metros.len();
        // The paper's nine clusters total 19 400 servers at 200 hits/s
        // each; hold that total so demand-to-capacity ratios carry over.
        let mean_servers = (19_400.0 / n_sites as f64).max(1.0);
        let mut rng = SplitMix64(seed ^ 0xC0FF_EE00_D15E_A5E5);
        let mut builder = TopologyBuilder::new();
        let mut metro_cursor = 0usize;
        for &rto in &Rto::MARKETS {
            builder.add_region(rto.abbreviation());
            for hub in hubs::hubs_in_rto(rto) {
                builder.add_metro(hub.code);
                let sites_here = base + usize::from(metro_cursor < extra);
                for k in 0..sites_here {
                    let jitter = 0.5 + rng.next_f64(); // [0.5, 1.5)
                    let servers = ((mean_servers * jitter).round() as u32).max(1);
                    builder.add_site(format!("{}-{:03}", hub.code, k), hub.id, servers, 200.0);
                }
                metro_cursor += 1;
            }
        }
        builder.build()
    }

    /// Derive a capped copy: every metro cap becomes `slack ×` the sum of
    /// its sites' capacities, every region cap `slack ×` the sum of its
    /// metros' caps. A slack below 1.0 makes the tier constraints bind.
    ///
    /// # Panics
    /// Panics on a non-finite or negative slack.
    pub fn with_tier_slack(mut self, slack: f64) -> Self {
        assert!(slack.is_finite() && slack >= 0.0, "tier slack must be finite and >= 0");
        for m in 0..self.num_metros() {
            let (s0, s1) = self.metro_sites[m];
            let capacity: f64 = (s0..s1).map(|s| self.site_capacity_hits_per_sec(s)).sum();
            self.metro_cap_hits_per_sec[m] = slack * capacity;
        }
        for r in 0..self.num_regions() {
            let (m0, m1) = self.region_metros[r];
            let capacity: f64 = (m0..m1).map(|m| self.metro_cap_hits_per_sec[m]).sum();
            self.region_cap_hits_per_sec[r] = slack * capacity;
        }
        self
    }

    /// Number of regions.
    pub fn num_regions(&self) -> usize {
        self.region_labels.len()
    }

    /// Number of metros.
    pub fn num_metros(&self) -> usize {
        self.metro_labels.len()
    }

    /// Number of sites (the leaves the replay core routes over).
    pub fn num_sites(&self) -> usize {
        self.site_labels.len()
    }

    /// Region labels in index order.
    pub fn region_labels(&self) -> &[String] {
        &self.region_labels
    }

    /// Metro labels in index order.
    pub fn metro_labels(&self) -> &[String] {
        &self.metro_labels
    }

    /// Site labels in index order.
    pub fn site_labels(&self) -> &[String] {
        &self.site_labels
    }

    /// Parent region of a metro.
    pub fn metro_region(&self, metro: usize) -> usize {
        self.metro_region[metro]
    }

    /// Parent metro of a site.
    pub fn site_metro(&self, site: usize) -> usize {
        self.site_metro[site]
    }

    /// Parent region of a site.
    pub fn site_region(&self, site: usize) -> usize {
        self.site_region[site]
    }

    /// The site → metro parent vector (tree-indexed SoA form).
    pub fn site_metros(&self) -> &[usize] {
        &self.site_metro
    }

    /// The site → region parent vector (tree-indexed SoA form).
    pub fn site_regions(&self) -> &[usize] {
        &self.site_region
    }

    /// Contiguous metro range `[start, end)` of a region.
    pub fn region_metros(&self, region: usize) -> (usize, usize) {
        self.region_metros[region]
    }

    /// Contiguous site range `[start, end)` of a metro.
    pub fn metro_sites(&self, metro: usize) -> (usize, usize) {
        self.metro_sites[metro]
    }

    /// Contiguous site range `[start, end)` of a region.
    pub fn region_sites(&self, region: usize) -> (usize, usize) {
        self.region_sites[region]
    }

    /// The hub a site buys power at.
    pub fn site_hub(&self, site: usize) -> HubId {
        self.site_hub[site]
    }

    /// Server count of a site.
    pub fn site_servers(&self, site: usize) -> u32 {
        self.site_servers[site]
    }

    /// Per-server capacity of a site in hits/second.
    pub fn site_hits_per_server(&self, site: usize) -> f64 {
        self.site_hits_per_server[site]
    }

    /// Total request capacity of a site in hits/second.
    pub fn site_capacity_hits_per_sec(&self, site: usize) -> f64 {
        self.site_servers[site] as f64 * self.site_hits_per_server[site]
    }

    /// A metro's aggregate bandwidth cap (`∞` = uncapped).
    pub fn metro_cap_hits_per_sec(&self, metro: usize) -> f64 {
        self.metro_cap_hits_per_sec[metro]
    }

    /// A region's aggregate bandwidth cap (`∞` = uncapped).
    pub fn region_cap_hits_per_sec(&self, region: usize) -> f64 {
        self.region_cap_hits_per_sec[region]
    }

    /// Whether any metro or region carries a finite bandwidth cap.
    pub fn has_tier_caps(&self) -> bool {
        self.metro_cap_hits_per_sec.iter().any(|c| c.is_finite())
            || self.region_cap_hits_per_sec.iter().any(|c| c.is_finite())
    }

    /// Whether the tree is a trivial embedding of a flat deployment: a
    /// single region, exactly one site per metro, and no tier caps. Replays
    /// over such a tree are bit-identical to the flat engine.
    pub fn is_flat_embedding(&self) -> bool {
        self.num_regions() == 1 && self.num_metros() == self.num_sites() && !self.has_tier_caps()
    }

    /// Assign every client state to the region serving it best: the region
    /// whose closest site (population-weighted state-to-hub distance) is
    /// nearest. Ties break toward the lower region index, so the
    /// assignment is deterministic.
    pub fn assign_states(&self, states: &[UsState]) -> Vec<usize> {
        states
            .iter()
            .map(|&state| {
                let mut best_region = 0usize;
                let mut best_km = f64::INFINITY;
                for r in 0..self.num_regions() {
                    let (s0, s1) = self.region_sites[r];
                    let mut region_km = f64::INFINITY;
                    for s in s0..s1 {
                        let km = state_to_hub_km(state, hubs::hub(self.site_hub[s]));
                        if km < region_km {
                            region_km = km;
                        }
                    }
                    if region_km < best_km {
                        best_km = region_km;
                        best_region = r;
                    }
                }
                best_region
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_region_toy() -> Topology {
        let mut b = TopologyBuilder::new();
        b.add_region("EAST");
        b.add_metro("NYC");
        b.add_site("NYC-0", HubId::NewYorkNy, 100, 200.0);
        b.add_site("NYC-1", HubId::NewYorkNy, 50, 200.0);
        b.add_metro("BOS");
        b.add_site("BOS-0", HubId::BostonMa, 80, 200.0);
        b.add_region("WEST");
        b.add_metro("SFO");
        b.add_site("SFO-0", HubId::PaloAltoCa, 120, 200.0);
        b.build()
    }

    #[test]
    fn ranges_are_contiguous_and_parents_consistent() {
        let t = two_region_toy();
        assert_eq!(t.num_regions(), 2);
        assert_eq!(t.num_metros(), 3);
        assert_eq!(t.num_sites(), 4);
        assert_eq!(t.region_metros(0), (0, 2));
        assert_eq!(t.region_metros(1), (2, 3));
        assert_eq!(t.metro_sites(0), (0, 2));
        assert_eq!(t.metro_sites(2), (3, 4));
        assert_eq!(t.region_sites(0), (0, 3));
        assert_eq!(t.region_sites(1), (3, 4));
        for s in 0..t.num_sites() {
            let m = t.site_metro(s);
            assert_eq!(t.metro_region(m), t.site_region(s));
            let (s0, s1) = t.metro_sites(m);
            assert!((s0..s1).contains(&s));
        }
    }

    #[test]
    fn site_capacity_and_tier_slack() {
        let t = two_region_toy();
        assert_eq!(t.site_capacity_hits_per_sec(0), 20_000.0);
        assert!(!t.has_tier_caps());
        let capped = t.with_tier_slack(0.5);
        assert!(capped.has_tier_caps());
        // Metro NYC: (100 + 50) servers × 200 = 30 000; slack 0.5 → 15 000.
        assert_eq!(capped.metro_cap_hits_per_sec(0), 15_000.0);
        // Region EAST: (15 000 + 8 000) × 0.5 = 11 500.
        assert_eq!(capped.region_cap_hits_per_sec(0), 11_500.0);
    }

    #[test]
    fn synthetic_spreads_sites_over_all_metros() {
        let t = Topology::synthetic(7, 200);
        assert_eq!(t.num_regions(), 6);
        assert_eq!(t.num_metros(), 29);
        assert_eq!(t.num_sites(), 200);
        // Even spread: every metro holds ⌊200/29⌋ or ⌈200/29⌉ sites.
        for m in 0..t.num_metros() {
            let (s0, s1) = t.metro_sites(m);
            assert!((6..=7).contains(&(s1 - s0)), "metro {m} holds {} sites", s1 - s0);
        }
        // Total capacity tracks the paper's deployment within jitter.
        let total: f64 = (0..t.num_sites()).map(|s| t.site_capacity_hits_per_sec(s)).sum();
        assert!((2.0e6..=6.0e6).contains(&total), "total capacity {total}");
        assert!(!t.is_flat_embedding());
    }

    #[test]
    fn synthetic_is_deterministic_per_seed() {
        assert_eq!(Topology::synthetic(3, 150), Topology::synthetic(3, 150));
        assert_ne!(Topology::synthetic(3, 150), Topology::synthetic(4, 150));
    }

    #[test]
    fn state_assignment_is_total_and_deterministic() {
        let t = two_region_toy();
        let states = [UsState::MA, UsState::NY, UsState::CA, UsState::NV];
        let owners = t.assign_states(&states);
        assert_eq!(owners.len(), 4);
        assert!(owners.iter().all(|&r| r < t.num_regions()));
        assert_eq!(owners[0], 0, "Massachusetts belongs to the east region");
        assert_eq!(owners[2], 1, "California belongs to the west region");
        assert_eq!(owners, t.assign_states(&states));
    }

    #[test]
    fn single_region_owns_every_state() {
        let mut b = TopologyBuilder::new();
        b.add_region("US");
        b.add_metro("NYC");
        b.add_site("NYC-0", HubId::NewYorkNy, 100, 200.0);
        let t = b.build();
        assert!(t.is_flat_embedding());
        let owners = t.assign_states(&[UsState::CA, UsState::TX, UsState::ME]);
        assert!(owners.iter().all(|&r| r == 0));
    }

    #[test]
    #[should_panic(expected = "add a region")]
    fn metro_without_region_panics() {
        TopologyBuilder::new().add_metro("NYC");
    }

    #[test]
    #[should_panic(expected = "no sites")]
    fn empty_tree_panics() {
        let mut b = TopologyBuilder::new();
        b.add_region("US");
        b.add_metro("NYC");
        b.build();
    }
}
