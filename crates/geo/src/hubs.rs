//! Wholesale electricity market hubs.
//!
//! The paper uses hourly price data for 29 market hubs (plus the non-market
//! Pacific Northwest / Mid-Columbia hub, which is shown in Figure 3 but
//! excluded from the routing analysis because the Northwest lacks an hourly
//! wholesale market). Figure 2 lists representative hubs per RTO; this
//! module embeds a concrete set of 30 locations with coordinates so that
//! hub-to-hub distances (Figure 8) and client-to-hub distances (§6) can be
//! computed.
//!
//! Nine of the hubs correspond to the Akamai public-cluster locations used
//! in the simulations (labelled CA1, CA2, MA, NY, IL, VA, NJ, TX1, TX2 in
//! Figure 19); see [`simulation_hubs`].

use crate::latlon::LatLon;
use crate::rto::Rto;
use crate::state::UsState;
use serde::{Deserialize, Serialize};

/// Identifier for one of the 30 embedded market hubs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum HubId {
    // ISO New England
    BostonMa,
    PortlandMe,
    HartfordCt,
    ManchesterNh,
    // NYISO
    NewYorkNy,
    AlbanyNy,
    BuffaloNy,
    LongIslandNy,
    PoughkeepsieNy,
    // PJM
    ChicagoIl,
    RichmondVa,
    NewarkNj,
    WashingtonDc,
    BaltimoreMd,
    PittsburghPa,
    ColumbusOh,
    // MISO
    PeoriaIl,
    MinneapolisMn,
    IndianapolisIn,
    DetroitMi,
    MadisonWi,
    StLouisMo,
    // CAISO
    PaloAltoCa,
    LosAngelesCa,
    FresnoCa,
    // ERCOT
    DallasTx,
    AustinTx,
    HoustonTx,
    OdessaTx,
    // Pacific Northwest (no hourly market)
    PortlandOr,
}

/// A wholesale market hub: a pricing location attached to an RTO.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Hub {
    /// Stable identifier.
    pub id: HubId,
    /// Market location code, e.g. `NP15`, `MA-BOS`, `DOM`.
    pub code: &'static str,
    /// Nearest city, for human-readable output.
    pub city: &'static str,
    /// US state containing the hub.
    pub state: UsState,
    /// Parent RTO / market region.
    pub rto: Rto,
    /// Geographic coordinates of the hub's reference city.
    pub location: LatLon,
}

macro_rules! hub {
    ($id:ident, $code:literal, $city:literal, $state:ident, $rto:ident, $lat:literal, $lon:literal) => {
        Hub {
            id: HubId::$id,
            code: $code,
            city: $city,
            state: UsState::$state,
            rto: Rto::$rto,
            location: LatLon { lat: $lat, lon: $lon },
        }
    };
}

/// The full embedded hub table (30 hubs: 29 market hubs + Mid-Columbia).
pub const ALL_HUBS: [Hub; 30] = [
    // ISO New England
    hub!(BostonMa, "MA-BOS", "Boston", MA, IsoNe, 42.36, -71.06),
    hub!(PortlandMe, "ME", "Portland (ME)", ME, IsoNe, 43.66, -70.26),
    hub!(HartfordCt, "CT", "Hartford", CT, IsoNe, 41.77, -72.67),
    hub!(ManchesterNh, "NH", "Manchester", NH, IsoNe, 42.99, -71.46),
    // NYISO
    hub!(NewYorkNy, "NYC", "New York City", NY, Nyiso, 40.71, -74.01),
    hub!(AlbanyNy, "CAPITL", "Albany", NY, Nyiso, 42.65, -73.75),
    hub!(BuffaloNy, "WEST", "Buffalo", NY, Nyiso, 42.89, -78.88),
    hub!(LongIslandNy, "LONGIL", "Long Island", NY, Nyiso, 40.79, -73.13),
    hub!(PoughkeepsieNy, "HUD-VL", "Poughkeepsie", NY, Nyiso, 41.70, -73.92),
    // PJM
    hub!(ChicagoIl, "CHI", "Chicago", IL, Pjm, 41.88, -87.63),
    hub!(RichmondVa, "DOM", "Richmond", VA, Pjm, 37.54, -77.44),
    hub!(NewarkNj, "NJ", "Newark", NJ, Pjm, 40.74, -74.17),
    hub!(WashingtonDc, "PEPCO", "Washington", DC, Pjm, 38.90, -77.04),
    hub!(BaltimoreMd, "BGE", "Baltimore", MD, Pjm, 39.29, -76.61),
    hub!(PittsburghPa, "WESTERN", "Pittsburgh", PA, Pjm, 40.44, -79.99),
    hub!(ColumbusOh, "AEP", "Columbus", OH, Pjm, 39.96, -83.00),
    // MISO
    hub!(PeoriaIl, "IL", "Peoria", IL, Miso, 40.69, -89.59),
    hub!(MinneapolisMn, "MN", "Minneapolis", MN, Miso, 44.98, -93.27),
    hub!(IndianapolisIn, "CINERGY", "Indianapolis", IN, Miso, 39.77, -86.16),
    hub!(DetroitMi, "MICH", "Detroit", MI, Miso, 42.33, -83.05),
    hub!(MadisonWi, "WUMS", "Madison", WI, Miso, 43.07, -89.40),
    hub!(StLouisMo, "AMMO", "St. Louis", MO, Miso, 38.63, -90.20),
    // CAISO
    hub!(PaloAltoCa, "NP15", "Palo Alto", CA, Caiso, 37.44, -122.14),
    hub!(LosAngelesCa, "SP15", "Los Angeles", CA, Caiso, 34.05, -118.24),
    hub!(FresnoCa, "ZP26", "Fresno", CA, Caiso, 36.75, -119.77),
    // ERCOT
    hub!(DallasTx, "ERCOT-N", "Dallas", TX, Ercot, 32.78, -96.80),
    hub!(AustinTx, "ERCOT-S", "Austin", TX, Ercot, 30.27, -97.74),
    hub!(HoustonTx, "ERCOT-H", "Houston", TX, Ercot, 29.76, -95.37),
    hub!(OdessaTx, "ERCOT-W", "Odessa", TX, Ercot, 31.85, -102.37),
    // Pacific Northwest
    hub!(PortlandOr, "MID-C", "Portland (OR)", OR, NonMarketNorthwest, 45.52, -122.68),
];

/// Look up the static record for a hub.
pub fn hub(id: HubId) -> &'static Hub {
    ALL_HUBS.iter().find(|h| h.id == id).expect("every HubId has a table entry")
}

/// All hubs, including the non-market Pacific Northwest hub.
pub fn all_hubs() -> &'static [Hub] {
    &ALL_HUBS
}

/// The 29 hubs that belong to an hourly wholesale market — the price data
/// set used throughout the paper's analysis (§3, §6.1).
pub fn market_hubs() -> Vec<&'static Hub> {
    ALL_HUBS.iter().filter(|h| h.rto.has_hourly_market()).collect()
}

/// Hubs belonging to a specific RTO.
pub fn hubs_in_rto(rto: Rto) -> Vec<&'static Hub> {
    ALL_HUBS.iter().filter(|h| h.rto == rto).collect()
}

/// Find a hub by its market location code (case-insensitive).
pub fn find_by_code(code: &str) -> Option<&'static Hub> {
    ALL_HUBS.iter().find(|h| h.code.eq_ignore_ascii_case(code))
}

/// The nine hubs with Akamai public clusters used in the simulations.
///
/// These are the clusters labelled CA1, CA2, MA, NY, IL, VA, NJ, TX1, TX2 in
/// Figure 19 of the paper, in that order.
pub fn simulation_hubs() -> [&'static Hub; 9] {
    [
        hub(HubId::PaloAltoCa),   // CA1
        hub(HubId::LosAngelesCa), // CA2
        hub(HubId::BostonMa),     // MA
        hub(HubId::NewYorkNy),    // NY
        hub(HubId::ChicagoIl),    // IL
        hub(HubId::RichmondVa),   // VA
        hub(HubId::NewarkNj),     // NJ
        hub(HubId::DallasTx),     // TX1
        hub(HubId::AustinTx),     // TX2
    ]
}

/// Short labels for the nine simulation hubs, matching Figure 19.
pub const SIMULATION_HUB_LABELS: [&str; 9] =
    ["CA1", "CA2", "MA", "NY", "IL", "VA", "NJ", "TX1", "TX2"];

/// All distinct unordered pairs of market hubs: the 29·28/2 = 406 pairs of
/// Figure 8.
pub fn market_hub_pairs() -> Vec<(&'static Hub, &'static Hub)> {
    let hubs = market_hubs();
    let mut pairs = Vec::with_capacity(hubs.len() * (hubs.len() - 1) / 2);
    for i in 0..hubs.len() {
        for j in i + 1..hubs.len() {
            pairs.push((hubs[i], hubs[j]));
        }
    }
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn thirty_hubs_total_twenty_nine_market() {
        assert_eq!(all_hubs().len(), 30);
        assert_eq!(market_hubs().len(), 29);
    }

    #[test]
    fn hub_ids_and_codes_unique() {
        let ids: HashSet<_> = ALL_HUBS.iter().map(|h| h.id).collect();
        let codes: HashSet<_> = ALL_HUBS.iter().map(|h| h.code).collect();
        assert_eq!(ids.len(), 30);
        assert_eq!(codes.len(), 30);
    }

    #[test]
    fn lookup_roundtrip() {
        for h in all_hubs() {
            assert_eq!(hub(h.id).code, h.code);
            assert_eq!(find_by_code(h.code).unwrap().id, h.id);
        }
        assert_eq!(find_by_code("np15").unwrap().id, HubId::PaloAltoCa);
        assert!(find_by_code("NOPE").is_none());
    }

    #[test]
    fn paper_figure_2_hubs_present() {
        // Figure 2's explicitly listed hubs should all exist.
        for code in [
            "MA-BOS", "ME", "CT", "NYC", "CAPITL", "WEST", "CHI", "DOM", "NJ", "IL", "MN",
            "CINERGY", "NP15", "SP15", "ERCOT-N", "ERCOT-S",
        ] {
            assert!(find_by_code(code).is_some(), "missing hub {code}");
        }
    }

    #[test]
    fn rto_memberships_match_paper() {
        assert_eq!(hub(HubId::PaloAltoCa).rto, Rto::Caiso);
        assert_eq!(hub(HubId::ChicagoIl).rto, Rto::Pjm);
        assert_eq!(hub(HubId::PeoriaIl).rto, Rto::Miso);
        assert_eq!(hub(HubId::RichmondVa).rto, Rto::Pjm);
        assert_eq!(hub(HubId::NewYorkNy).rto, Rto::Nyiso);
        assert_eq!(hub(HubId::BostonMa).rto, Rto::IsoNe);
        assert_eq!(hub(HubId::AustinTx).rto, Rto::Ercot);
        assert_eq!(hub(HubId::PortlandOr).rto, Rto::NonMarketNorthwest);
    }

    #[test]
    fn every_market_rto_has_hubs() {
        for rto in Rto::MARKETS {
            assert!(
                hubs_in_rto(rto).len() >= 3,
                "RTO {rto} should have at least 3 hubs for intra-market diversity"
            );
        }
    }

    #[test]
    fn simulation_hubs_are_nine_distinct_market_hubs() {
        let sim = simulation_hubs();
        let ids: HashSet<_> = sim.iter().map(|h| h.id).collect();
        assert_eq!(ids.len(), 9);
        assert!(sim.iter().all(|h| h.rto.has_hourly_market()));
        assert_eq!(SIMULATION_HUB_LABELS.len(), 9);
    }

    #[test]
    fn four_hundred_six_market_pairs() {
        // 29 choose 2 = 406, the number of points in Figure 8.
        assert_eq!(market_hub_pairs().len(), 406);
    }

    #[test]
    fn coordinates_are_in_continental_us() {
        for h in all_hubs() {
            assert!(h.location.lat > 24.0 && h.location.lat < 50.0, "{}", h.city);
            assert!(h.location.lon > -125.0 && h.location.lon < -66.0, "{}", h.city);
        }
    }

    #[test]
    fn chicago_and_peoria_are_different_markets() {
        // The "dispersion introduced by a market boundary" example of Fig 10e
        // requires Chicago (PJM) and Peoria (MISO) to straddle a boundary
        // even though both are in Illinois.
        let chi = hub(HubId::ChicagoIl);
        let peo = hub(HubId::PeoriaIl);
        assert_eq!(chi.state, UsState::IL);
        assert_eq!(peo.state, UsState::IL);
        assert_ne!(chi.rto, peo.rto);
    }
}
