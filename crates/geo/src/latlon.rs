//! Latitude/longitude coordinates and great-circle distances.

use serde::{Deserialize, Serialize};

/// Mean Earth radius in kilometres (IUGG value).
pub const EARTH_RADIUS_KM: f64 = 6371.0088;

/// A geographic coordinate in decimal degrees.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatLon {
    /// Latitude in degrees, positive north.
    pub lat: f64,
    /// Longitude in degrees, positive east (US longitudes are negative).
    pub lon: f64,
}

impl LatLon {
    /// Construct a coordinate. Latitude is clamped to `[-90, 90]` and
    /// longitude normalised to `[-180, 180)`.
    pub fn new(lat: f64, lon: f64) -> Self {
        let lat = lat.clamp(-90.0, 90.0);
        let mut lon = lon % 360.0;
        if lon >= 180.0 {
            lon -= 360.0;
        } else if lon < -180.0 {
            lon += 360.0;
        }
        Self { lat, lon }
    }

    /// Great-circle (haversine) distance to another coordinate, in km.
    pub fn distance_km(&self, other: &LatLon) -> f64 {
        haversine_km(*self, *other)
    }
}

/// Great-circle distance between two coordinates using the haversine formula.
///
/// Accurate to well under 0.5 % for the continental-US distances this
/// workspace cares about, which is far more precise than the "coarse proxy
/// for network distance" role the metric plays in the paper.
pub fn haversine_km(a: LatLon, b: LatLon) -> f64 {
    let lat1 = a.lat.to_radians();
    let lat2 = b.lat.to_radians();
    let dlat = (b.lat - a.lat).to_radians();
    let dlon = (b.lon - a.lon).to_radians();

    let h = (dlat / 2.0).sin().powi(2) + lat1.cos() * lat2.cos() * (dlon / 2.0).sin().powi(2);
    2.0 * EARTH_RADIUS_KM * h.sqrt().asin()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_distance_to_self() {
        let p = LatLon::new(42.36, -71.06);
        assert!(haversine_km(p, p) < 1e-9);
    }

    #[test]
    fn boston_to_nyc_about_300km() {
        let boston = LatLon::new(42.36, -71.06);
        let nyc = LatLon::new(40.71, -74.01);
        let d = haversine_km(boston, nyc);
        assert!((d - 306.0).abs() < 15.0, "got {d}");
    }

    #[test]
    fn boston_to_chicago_about_1400km() {
        // The paper quotes ~1400 km for Boston-Chicago (§6.2).
        let boston = LatLon::new(42.36, -71.06);
        let chicago = LatLon::new(41.88, -87.63);
        let d = haversine_km(boston, chicago);
        assert!((d - 1390.0).abs() < 60.0, "got {d}");
    }

    #[test]
    fn boston_to_dc_about_650km() {
        // The paper quotes ~650 km for Boston-Alexandria VA (§6.2).
        let boston = LatLon::new(42.36, -71.06);
        let alexandria = LatLon::new(38.80, -77.05);
        let d = haversine_km(boston, alexandria);
        assert!((d - 640.0).abs() < 50.0, "got {d}");
    }

    #[test]
    fn coast_to_coast_about_4100km() {
        let palo_alto = LatLon::new(37.44, -122.14);
        let nyc = LatLon::new(40.71, -74.01);
        let d = haversine_km(palo_alto, nyc);
        assert!(d > 3900.0 && d < 4300.0, "got {d}");
    }

    #[test]
    fn symmetry() {
        let a = LatLon::new(30.0, -97.0);
        let b = LatLon::new(47.6, -122.3);
        assert!((haversine_km(a, b) - haversine_km(b, a)).abs() < 1e-9);
    }

    #[test]
    fn latitude_clamped_and_longitude_normalised() {
        let p = LatLon::new(95.0, 190.0);
        assert_eq!(p.lat, 90.0);
        assert_eq!(p.lon, -170.0);
        let q = LatLon::new(-95.0, -190.0);
        assert_eq!(q.lat, -90.0);
        assert_eq!(q.lon, 170.0);
    }

    #[test]
    fn method_matches_function() {
        let a = LatLon::new(30.0, -97.0);
        let b = LatLon::new(47.6, -122.3);
        assert_eq!(a.distance_km(&b), haversine_km(a, b));
    }
}
