//! Geography substrate for the `wattroute` workspace.
//!
//! The paper's simulation needs three geographic ingredients:
//!
//! 1. **Electricity market hubs** — the 29 wholesale-market locations (plus
//!    the non-market Pacific Northwest hub) whose prices drive routing
//!    decisions, each attached to its Regional Transmission Organization
//!    (Figure 2 of the paper).
//! 2. **US states as client populations** — the Akamai trace localises
//!    clients to US states; request volume is proportional to population and
//!    follows each state's local time of day.
//! 3. **Distances** — a population-density-weighted geographic distance from
//!    a client state to a server hub is used as a coarse proxy for network
//!    performance (§6.1 of the paper), and hub-to-hub distances are needed
//!    for the correlation-vs-distance analysis (Figure 8).
//!
//! All data are embedded constants (US Census population estimates and
//! public hub coordinates); no external data files are required.
//!
//! # Example
//!
//! ```
//! use wattroute_geo::{hubs, state::UsState, distance};
//!
//! let boston = hubs::hub(hubs::HubId::BostonMa);
//! let chicago = hubs::hub(hubs::HubId::ChicagoIl);
//! let d = distance::hub_to_hub_km(boston, chicago);
//! assert!((d - 1400.0).abs() < 150.0, "Boston-Chicago is about 1400 km, got {d}");
//!
//! // Population-weighted distance from Massachusetts clients to the NYC hub.
//! let ma = UsState::MA;
//! let nyc = hubs::hub(hubs::HubId::NewYorkNy);
//! let dma = distance::state_to_hub_km(ma, nyc);
//! assert!(dma > 100.0 && dma < 500.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod distance;
pub mod hubs;
pub mod latlon;
pub mod rto;
pub mod state;
pub mod topology;

pub use distance::{hub_to_hub_km, state_to_hub_km};
pub use hubs::{Hub, HubId};
pub use latlon::LatLon;
pub use rto::Rto;
pub use state::UsState;
pub use topology::{Topology, TopologyBuilder};
