//! Distance metrics.
//!
//! The paper uses geographic distance as a coarse proxy for network
//! performance (§4, §6.1): the price-conscious optimizer has a *distance
//! threshold* parameter, and results report mean and 99th-percentile
//! client–server distances (Figure 17). Two metrics are needed:
//!
//! * **hub-to-hub distance** — plain great-circle distance between two
//!   market hubs (the x-axis of Figure 8);
//! * **state-to-hub distance** — a population-density-weighted distance
//!   from a client state to a hub. The paper derives per-state population
//!   density functions from census data; we approximate each state's
//!   population as a Gaussian cloud centred on its centre of population with
//!   a dispersion radius derived from the state's land area, which yields
//!   the closed form `sqrt(d_centroid² + dispersion²)` for the expected
//!   distance. This preserves the property the metric exists for: clients
//!   in big, spread-out states are on average farther from any hub than
//!   their centroid suggests, and the ordering of candidate hubs by distance
//!   is essentially unchanged.

use crate::hubs::Hub;
use crate::latlon::haversine_km;
use crate::state::UsState;

/// Great-circle distance between two hubs in kilometres.
pub fn hub_to_hub_km(a: &Hub, b: &Hub) -> f64 {
    haversine_km(a.location, b.location)
}

/// Population-density-weighted distance from a client state to a hub, in
/// kilometres.
///
/// Approximates the expected distance from a person drawn from the state's
/// population distribution to the hub: `sqrt(d² + σ²)` where `d` is the
/// centroid-to-hub distance and `σ` the state's population dispersion
/// radius ([`UsState::dispersion_km`]).
pub fn state_to_hub_km(state: UsState, hub: &Hub) -> f64 {
    let d = haversine_km(state.centroid(), hub.location);
    let sigma = state.dispersion_km();
    (d * d + sigma * sigma).sqrt()
}

/// Population-weighted mean distance from *all* US clients to the single
/// nearest hub of a candidate deployment. Useful for characterising a
/// server placement independent of any traffic trace.
pub fn mean_nearest_hub_distance_km(hubs: &[&Hub]) -> Option<f64> {
    if hubs.is_empty() {
        return None;
    }
    let mut weighted = 0.0;
    let mut total_pop = 0.0;
    for state in UsState::all() {
        let nearest = hubs.iter().map(|h| state_to_hub_km(state, h)).fold(f64::INFINITY, f64::min);
        let pop = state.population() as f64;
        weighted += nearest * pop;
        total_pop += pop;
    }
    Some(weighted / total_pop)
}

/// A hub identified by its index into a caller-supplied hub slice, paired
/// with a distance in kilometres. The routing crate sorts and partitions
/// collections of these when ranking candidate clusters.
pub type RankedHub = (usize, f64);

/// The hub (by index into `hubs`) nearest to a client state, together with
/// the distance. Returns `None` for an empty slice.
pub fn nearest_hub_index(state: UsState, hubs: &[&Hub]) -> Option<RankedHub> {
    hubs.iter()
        .enumerate()
        .map(|(i, h)| (i, state_to_hub_km(state, h)))
        .min_by(|a, b| a.1.partial_cmp(&b.1).expect("distances are finite"))
}

/// Indices of all hubs within `threshold_km` of the client state, sorted by
/// ascending distance. If none are within the threshold, returns the single
/// nearest hub plus any other hubs within 50 km of that nearest hub — the
/// fallback rule used by the paper's price-conscious router (§6.1).
pub fn hubs_within_threshold(state: UsState, hubs: &[&Hub], threshold_km: f64) -> Vec<RankedHub> {
    let mut distances: Vec<RankedHub> =
        hubs.iter().enumerate().map(|(i, h)| (i, state_to_hub_km(state, h))).collect();
    distances.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("distances are finite"));
    if distances.is_empty() {
        return distances;
    }
    let within: Vec<RankedHub> =
        distances.iter().copied().filter(|(_, d)| *d <= threshold_km).collect();
    if !within.is_empty() {
        return within;
    }
    // Fallback: nearest cluster plus any cluster within 50 km of it.
    let nearest = distances[0];
    distances.into_iter().filter(|(_, d)| *d <= nearest.1 + 50.0).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hubs::{hub, simulation_hubs, HubId};

    #[test]
    fn hub_to_hub_boston_chicago() {
        let d = hub_to_hub_km(hub(HubId::BostonMa), hub(HubId::ChicagoIl));
        assert!((d - 1390.0).abs() < 80.0, "got {d}");
    }

    #[test]
    fn state_to_hub_exceeds_centroid_distance() {
        let nyc = hub(HubId::NewYorkNy);
        let centroid = haversine_km(UsState::CA.centroid(), nyc.location);
        let weighted = state_to_hub_km(UsState::CA, nyc);
        assert!(weighted >= centroid);
        assert!(weighted < centroid + UsState::CA.dispersion_km());
    }

    #[test]
    fn in_state_hub_is_close_but_not_zero() {
        let boston = hub(HubId::BostonMa);
        let d = state_to_hub_km(UsState::MA, boston);
        // The dispersion term keeps the distance positive even though the
        // hub is inside the state.
        assert!(d > 10.0 && d < 150.0, "got {d}");
    }

    #[test]
    fn nearest_hub_for_massachusetts_is_boston() {
        let hubs = simulation_hubs();
        let refs: Vec<&Hub> = hubs.to_vec();
        let (idx, d) = nearest_hub_index(UsState::MA, &refs).unwrap();
        assert_eq!(refs[idx].id, HubId::BostonMa);
        assert!(d < 200.0);
    }

    #[test]
    fn nearest_hub_for_california_is_in_california() {
        let hubs = simulation_hubs();
        let refs: Vec<&Hub> = hubs.to_vec();
        let (idx, _) = nearest_hub_index(UsState::CA, &refs).unwrap();
        assert!(matches!(refs[idx].id, HubId::PaloAltoCa | HubId::LosAngelesCa));
    }

    #[test]
    fn threshold_zero_falls_back_to_nearest() {
        let hubs = simulation_hubs();
        let refs: Vec<&Hub> = hubs.to_vec();
        let within = hubs_within_threshold(UsState::MA, &refs, 0.0);
        assert!(!within.is_empty());
        assert_eq!(refs[within[0].0].id, HubId::BostonMa);
    }

    #[test]
    fn large_threshold_includes_all_hubs() {
        let hubs = simulation_hubs();
        let refs: Vec<&Hub> = hubs.to_vec();
        let within = hubs_within_threshold(UsState::MO, &refs, 5000.0);
        assert_eq!(within.len(), refs.len());
        // Sorted ascending.
        for w in within.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
    }

    #[test]
    fn moderate_threshold_selects_subset() {
        let hubs = simulation_hubs();
        let refs: Vec<&Hub> = hubs.to_vec();
        let within = hubs_within_threshold(UsState::NY, &refs, 1000.0);
        assert!(!within.is_empty());
        assert!(within.len() < refs.len());
        assert!(within.iter().all(|(_, d)| *d <= 1000.0));
    }

    #[test]
    fn mean_nearest_distance_shrinks_with_more_hubs() {
        let all = simulation_hubs();
        let refs: Vec<&Hub> = all.to_vec();
        let one = vec![refs[0]];
        let d_one = mean_nearest_hub_distance_km(&one).unwrap();
        let d_all = mean_nearest_hub_distance_km(&refs).unwrap();
        assert!(d_all < d_one);
        assert!(mean_nearest_hub_distance_km(&[]).is_none());
    }
}
