//! Regional Transmission Organizations (RTOs).
//!
//! Each RTO administers a wholesale electricity market and sets hourly
//! locational prices for the hubs within its footprint (Figure 2 of the
//! paper). Market boundaries matter: the paper finds that hub pairs in the
//! *same* RTO are usually well correlated (> 0.6) while pairs straddling a
//! boundary never are.

use serde::{Deserialize, Serialize};

/// The six organized wholesale markets studied in the paper, plus the
/// non-market Pacific Northwest (which lacks an hourly wholesale market and
/// is therefore excluded from the routing analysis, as in the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Rto {
    /// ISO New England (Boston, Maine, Connecticut, ...).
    IsoNe,
    /// New York ISO (NYC, Albany, Buffalo, ...).
    Nyiso,
    /// PJM Interconnection (Chicago, Virginia, New Jersey, ...).
    Pjm,
    /// Midwest ISO (Peoria, Minnesota, Indiana, ...).
    Miso,
    /// California ISO (Palo Alto / NP15, Los Angeles / SP15).
    Caiso,
    /// Electric Reliability Council of Texas (Dallas, Austin, Houston).
    Ercot,
    /// Pacific Northwest (Mid-Columbia); hydro-dominated, no hourly
    /// wholesale market, excluded from the routing simulations.
    NonMarketNorthwest,
}

impl Rto {
    /// All RTOs with an hourly wholesale market (i.e. excluding the
    /// Northwest), in a stable order.
    pub const MARKETS: [Rto; 6] =
        [Rto::IsoNe, Rto::Nyiso, Rto::Pjm, Rto::Miso, Rto::Caiso, Rto::Ercot];

    /// Every region including the non-market Northwest.
    pub const ALL: [Rto; 7] = [
        Rto::IsoNe,
        Rto::Nyiso,
        Rto::Pjm,
        Rto::Miso,
        Rto::Caiso,
        Rto::Ercot,
        Rto::NonMarketNorthwest,
    ];

    /// Abbreviated name as used in the paper ("ISONE", "NYISO", ...).
    pub fn abbreviation(&self) -> &'static str {
        match self {
            Rto::IsoNe => "ISONE",
            Rto::Nyiso => "NYISO",
            Rto::Pjm => "PJM",
            Rto::Miso => "MISO",
            Rto::Caiso => "CAISO",
            Rto::Ercot => "ERCOT",
            Rto::NonMarketNorthwest => "NW (no RTO)",
        }
    }

    /// Human-readable region description (the "Region" column of Figure 2).
    pub fn region(&self) -> &'static str {
        match self {
            Rto::IsoNe => "New England",
            Rto::Nyiso => "New York",
            Rto::Pjm => "Eastern",
            Rto::Miso => "Midwest",
            Rto::Caiso => "California",
            Rto::Ercot => "Texas",
            Rto::NonMarketNorthwest => "Pacific Northwest",
        }
    }

    /// Whether this region runs hourly wholesale markets usable by the
    /// price-conscious router.
    pub fn has_hourly_market(&self) -> bool {
        !matches!(self, Rto::NonMarketNorthwest)
    }
}

impl std::fmt::Display for Rto {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.abbreviation())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_market_regions() {
        assert_eq!(Rto::MARKETS.len(), 6);
        assert!(Rto::MARKETS.iter().all(|r| r.has_hourly_market()));
    }

    #[test]
    fn northwest_has_no_market() {
        assert!(!Rto::NonMarketNorthwest.has_hourly_market());
        assert_eq!(Rto::ALL.len(), 7);
    }

    #[test]
    fn abbreviations_are_unique() {
        use std::collections::HashSet;
        let set: HashSet<_> = Rto::ALL.iter().map(|r| r.abbreviation()).collect();
        assert_eq!(set.len(), Rto::ALL.len());
    }

    #[test]
    fn display_matches_abbreviation() {
        assert_eq!(Rto::Caiso.to_string(), "CAISO");
        assert_eq!(format!("{}", Rto::IsoNe), "ISONE");
    }

    #[test]
    fn regions_match_paper_figure_2() {
        assert_eq!(Rto::IsoNe.region(), "New England");
        assert_eq!(Rto::Nyiso.region(), "New York");
        assert_eq!(Rto::Pjm.region(), "Eastern");
        assert_eq!(Rto::Miso.region(), "Midwest");
        assert_eq!(Rto::Caiso.region(), "California");
        assert_eq!(Rto::Ercot.region(), "Texas");
    }
}
