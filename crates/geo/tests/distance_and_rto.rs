//! Integration tests: haversine distance sanity against well-known city
//! pairs, and RTO/hub lookup consistency (Figure 2 of the paper maps every
//! market hub to its Regional Transmission Organization).

use wattroute_geo::hubs::{self, HubId};
use wattroute_geo::latlon::{haversine_km, LatLon};
use wattroute_geo::{hub_to_hub_km, Rto, UsState};

#[test]
fn haversine_matches_known_city_distances() {
    // Great-circle distances from public geodesic calculators.
    let cases = [
        (LatLon::new(42.36, -71.06), LatLon::new(40.71, -74.01), 306.0, "Boston-NYC"),
        (LatLon::new(40.71, -74.01), LatLon::new(34.05, -118.24), 3936.0, "NYC-LA"),
        (LatLon::new(41.88, -87.63), LatLon::new(29.76, -95.37), 1514.0, "Chicago-Houston"),
        (LatLon::new(47.61, -122.33), LatLon::new(25.77, -80.19), 4404.0, "Seattle-Miami"),
    ];
    for (a, b, expected_km, label) in cases {
        let d = haversine_km(a, b);
        let err = (d - expected_km).abs() / expected_km;
        assert!(err < 0.01, "{label}: expected ~{expected_km} km, got {d:.1} km");
    }
}

#[test]
fn haversine_degenerate_and_antipodal_cases() {
    let boston = LatLon::new(42.36, -71.06);
    assert!(haversine_km(boston, boston) < 1e-9);
    // Antipodal points are half the circumference (~20015 km) apart.
    let north = LatLon::new(90.0, 0.0);
    let south = LatLon::new(-90.0, 0.0);
    let d = haversine_km(north, south);
    assert!((d - 20_015.0).abs() < 25.0, "pole-to-pole = {d:.0} km");
}

#[test]
fn every_market_hub_resolves_by_code_and_rto() {
    for hub in hubs::market_hubs() {
        let found = hubs::find_by_code(hub.code)
            .unwrap_or_else(|| panic!("hub code {} should resolve", hub.code));
        assert_eq!(found.id, hub.id, "code {} resolved to the wrong hub", hub.code);
        assert!(hub.rto.has_hourly_market(), "market hub {} must sit in a market RTO", hub.code);
        assert!(
            hubs::hubs_in_rto(hub.rto).iter().any(|h| h.id == hub.id),
            "hub {} missing from its own RTO listing",
            hub.code
        );
    }
}

#[test]
fn rto_hub_lookup_matches_paper_geography() {
    // Spot-check the paper's Figure 2 assignments.
    assert_eq!(hubs::hub(HubId::BostonMa).rto, Rto::IsoNe);
    assert_eq!(hubs::hub(HubId::NewYorkNy).rto, Rto::Nyiso);
    assert_eq!(hubs::hub(HubId::ChicagoIl).rto, Rto::Pjm);
    assert_eq!(hubs::hub(HubId::PaloAltoCa).rto, Rto::Caiso);
    // NP15 is the paper's Northern California hub.
    assert_eq!(hubs::find_by_code("NP15").unwrap().id, HubId::PaloAltoCa);
    assert_eq!(hubs::hub(HubId::PaloAltoCa).state, UsState::CA);
    // Every RTO with an hourly market contributes at least one hub.
    for rto in Rto::MARKETS {
        assert!(!hubs::hubs_in_rto(rto).is_empty(), "{rto:?} should have hubs");
    }
}

#[test]
fn hub_to_hub_distances_are_geographically_plausible() {
    let boston = hubs::hub(HubId::BostonMa);
    let nyc = hubs::hub(HubId::NewYorkNy);
    let palo_alto = hubs::hub(HubId::PaloAltoCa);
    let near = hub_to_hub_km(boston, nyc);
    let far = hub_to_hub_km(boston, palo_alto);
    assert!((near - 306.0).abs() < 15.0, "Boston-NYC = {near:.0} km");
    assert!(far > 4000.0, "Boston-Palo Alto = {far:.0} km");
    assert!(near < far);
}
