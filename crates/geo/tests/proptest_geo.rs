//! Property-based tests for the geography substrate.

use proptest::prelude::*;
use wattroute_geo::hubs::{all_hubs, market_hubs, Hub};
use wattroute_geo::latlon::{haversine_km, LatLon, EARTH_RADIUS_KM};
use wattroute_geo::state::UsState;
use wattroute_geo::{distance, hub_to_hub_km, state_to_hub_km};

fn arbitrary_latlon() -> impl Strategy<Value = LatLon> {
    (-90.0f64..90.0, -180.0f64..180.0).prop_map(|(lat, lon)| LatLon::new(lat, lon))
}

fn arbitrary_state() -> impl Strategy<Value = UsState> {
    let states: Vec<UsState> = UsState::all().collect();
    prop::sample::select(states)
}

fn arbitrary_hub() -> impl Strategy<Value = &'static Hub> {
    prop::sample::select(all_hubs().iter().collect::<Vec<_>>())
}

proptest! {
    #[test]
    fn haversine_is_symmetric_and_nonnegative(a in arbitrary_latlon(), b in arbitrary_latlon()) {
        let d1 = haversine_km(a, b);
        let d2 = haversine_km(b, a);
        prop_assert!(d1 >= 0.0);
        prop_assert!((d1 - d2).abs() < 1e-9);
    }

    #[test]
    fn haversine_bounded_by_half_circumference(a in arbitrary_latlon(), b in arbitrary_latlon()) {
        let d = haversine_km(a, b);
        prop_assert!(d <= std::f64::consts::PI * EARTH_RADIUS_KM + 1e-6);
    }

    #[test]
    fn haversine_triangle_inequality(a in arbitrary_latlon(), b in arbitrary_latlon(), c in arbitrary_latlon()) {
        let ab = haversine_km(a, b);
        let bc = haversine_km(b, c);
        let ac = haversine_km(a, c);
        prop_assert!(ac <= ab + bc + 1e-6);
    }

    #[test]
    fn identity_of_indiscernibles(a in arbitrary_latlon()) {
        prop_assert!(haversine_km(a, a) < 1e-9);
    }

    #[test]
    fn state_to_hub_at_least_centroid_distance(state in arbitrary_state(), hub in arbitrary_hub()) {
        let centroid_d = haversine_km(state.centroid(), hub.location);
        let weighted = state_to_hub_km(state, hub);
        prop_assert!(weighted >= centroid_d - 1e-9);
        prop_assert!(weighted <= centroid_d + state.dispersion_km() + 1e-9);
    }

    #[test]
    fn hub_pair_distances_consistent(hub_a in arbitrary_hub(), hub_b in arbitrary_hub()) {
        let d = hub_to_hub_km(hub_a, hub_b);
        prop_assert!((d - hub_to_hub_km(hub_b, hub_a)).abs() < 1e-9);
        if hub_a.id == hub_b.id {
            prop_assert!(d < 1e-9);
        }
    }

    #[test]
    fn threshold_filtering_is_sound(state in arbitrary_state(), threshold in 0.0f64..4000.0) {
        let hubs = market_hubs();
        let within = distance::hubs_within_threshold(state, &hubs, threshold);
        prop_assert!(!within.is_empty(), "fallback must always return at least one hub");
        // Sorted ascending and distances consistent with the metric.
        for w in within.windows(2) {
            prop_assert!(w[0].1 <= w[1].1 + 1e-9);
        }
        for (i, d) in &within {
            prop_assert!((state_to_hub_km(state, hubs[*i]) - d).abs() < 1e-9);
        }
        // Either all results are within the threshold, or the fallback rule
        // applied (nearest + 50 km neighbourhood).
        let all_within = within.iter().all(|(_, d)| *d <= threshold);
        if !all_within {
            let nearest = within[0].1;
            prop_assert!(nearest > threshold);
            prop_assert!(within.iter().all(|(_, d)| *d <= nearest + 50.0 + 1e-9));
        }
    }

    #[test]
    fn nearest_hub_is_argmin(state in arbitrary_state()) {
        let hubs = market_hubs();
        let (idx, d) = distance::nearest_hub_index(state, &hubs).unwrap();
        for (i, h) in hubs.iter().enumerate() {
            let di = state_to_hub_km(state, h);
            prop_assert!(d <= di + 1e-9, "hub {i} closer than chosen {idx}");
        }
    }
}
