//! Compile-count instrumentation for the optimizer's evaluator, extending
//! the exact-count methodology of the core crate's
//! `sweep_compile_counts.rs`.
//!
//! This file intentionally holds a single `#[test]` so it runs as the
//! only code in its process: the build counters on [`BillingMatrix`],
//! [`PriceTable`] and [`CompiledPreferences`] are process-global, and any
//! concurrently running test that compiles price tables would make exact
//! assertions racy. Keep it that way — add further compile-count
//! scenarios inside this one test, not as siblings.

use std::collections::BTreeSet;
use wattroute::prelude::*;
use wattroute_market::price_table::{BillingMatrix, PriceTable};
use wattroute_market::time::SimHour;
use wattroute_optimizer::{
    price_conscious_factory, DeploymentOptimizer, GreedyDescent, SearchBudget, SearchSpace,
    SweepEvaluator,
};
use wattroute_routing::price_conscious::CompiledPreferences;

/// The optimizer re-visiting a hub list — in a later batch, or through a
/// capacity-only move — must not recompile any artifact: exactly one
/// billing matrix, one preference geometry and one delayed view per
/// distinct *active-hub set* the search ever touches.
#[test]
fn optimizer_compiles_each_visited_hub_list_exactly_once() {
    let start_hour = SimHour::from_date(2008, 12, 19);
    let scenario =
        Scenario::custom_window(47, HourRange::new(start_hour, start_hour.plus_hours(24)))
            .with_energy(EnergyModelParams::optimistic_future());
    let config = scenario.config.clone().with_overflow(OverflowMode::Reject);

    // Scenario 1: hand-driven evaluator batches. Three hubs, coarse
    // quantum; batch 2 re-visits batch 1's hub lists exactly.
    let (nine_space, _) = SearchSpace::from_deployment(&scenario.clusters, 800);
    let three = SearchSpace::new(nine_space.hubs()[..3].to_vec(), 6, 800);
    let policy = price_conscious_factory(1500.0);
    let mut evaluator = SweepEvaluator::new(&scenario.trace, &scenario.prices, config.clone());

    let billing_before = BillingMatrix::build_count();
    let views_before = PriceTable::view_count();
    let prefs_before = CompiledPreferences::build_count();

    // Batch 1: two all-active splits (one hub list) and one subset split
    // (a second hub list).
    let batch1 = [vec![4, 1, 1], vec![1, 4, 1], vec![3, 3, 0]];
    let sets1: Vec<_> = batch1.iter().map(|s| three.materialize(s)).collect();
    evaluator.evaluate(&sets1, &policy);
    assert_eq!(BillingMatrix::build_count() - billing_before, 2);
    assert_eq!(PriceTable::view_count() - views_before, 2);
    assert_eq!(CompiledPreferences::build_count() - prefs_before, 2);

    // Batch 2: revisit both hub lists with different capacity splits —
    // zero recompiles.
    let batch2 = [vec![2, 2, 2], vec![5, 1, 0]];
    let sets2: Vec<_> = batch2.iter().map(|s| three.materialize(s)).collect();
    evaluator.evaluate(&sets2, &policy);
    assert_eq!(
        BillingMatrix::build_count() - billing_before,
        2,
        "revisited hub lists must hit the CompiledArtifacts cache, not recompile"
    );
    assert_eq!(PriceTable::view_count() - views_before, 2);
    assert_eq!(CompiledPreferences::build_count() - prefs_before, 2);
    assert_eq!(evaluator.artifacts().hub_list_misses(), 2);
    assert_eq!(evaluator.artifacts().hub_list_hits(), 3);

    // Scenario 2: a full strategy run. Count the distinct active-hub sets
    // in the audit trail; global compile counters must have moved by
    // exactly that much.
    let billing_before = BillingMatrix::build_count();
    let views_before = PriceTable::view_count();
    let prefs_before = CompiledPreferences::build_count();

    let (space, start) = SearchSpace::from_deployment(&scenario.clusters, 800);
    let report = DeploymentOptimizer::new(space, &scenario.trace, &scenario.prices, config)
        .with_budget(SearchBudget::smoke())
        .with_start(start)
        .run(&mut GreedyDescent::default());

    let distinct_hub_sets: BTreeSet<Vec<usize>> = report
        .iterations
        .iter()
        .flat_map(|it| it.candidates.iter())
        .map(|c| {
            c.split
                .iter()
                .enumerate()
                .filter(|(_, &u)| u > 0)
                .map(|(i, _)| i)
                .collect::<Vec<usize>>()
        })
        .collect();
    let compiled = distinct_hub_sets.len();
    assert_eq!(
        BillingMatrix::build_count() - billing_before,
        compiled,
        "one billing matrix per distinct active-hub set over the whole search"
    );
    assert_eq!(PriceTable::view_count() - views_before, compiled);
    assert_eq!(CompiledPreferences::build_count() - prefs_before, compiled);
    assert_eq!(report.cache.hub_list_misses, compiled);
    assert_eq!(
        report.cache.hub_list_hits + report.cache.hub_list_misses,
        report.evaluations,
        "every evaluation resolves its hub list exactly once"
    );

    // Scenario 3: the same search *under calibrated 95/5 caps*. The
    // constraints travel in per-run configuration, not compiled geometry,
    // so a constrained greedy descent over the same space compiles exactly
    // one artifact set per distinct active-hub set it visits — and its
    // cache hit rate is no worse than the unconstrained run's.
    let calibrated = CalibratedScenario::calibrate(&scenario);
    let billing_before = BillingMatrix::build_count();

    let (space, start) = SearchSpace::from_deployment(&scenario.clusters, 800);
    let constrained = DeploymentOptimizer::new(
        space,
        &scenario.trace,
        &scenario.prices,
        scenario.config.clone().with_overflow(OverflowMode::Reject),
    )
    .with_budget(SearchBudget::smoke())
    .with_start(start)
    .with_hub_caps(calibrated.hub_caps(1.0))
    .run(&mut GreedyDescent::default());

    let constrained_distinct: BTreeSet<Vec<usize>> = constrained
        .iterations
        .iter()
        .flat_map(|it| it.candidates.iter())
        .map(|c| {
            c.split
                .iter()
                .enumerate()
                .filter(|(_, &u)| u > 0)
                .map(|(i, _)| i)
                .collect::<Vec<usize>>()
        })
        .collect();
    assert_eq!(
        BillingMatrix::build_count() - billing_before,
        constrained_distinct.len(),
        "calibrated caps must not invalidate CompiledArtifacts reuse"
    );
    assert_eq!(constrained.cache.hub_list_misses, constrained_distinct.len());
    assert!(
        constrained.cache.hit_rate().unwrap_or(0.0) >= report.cache.hit_rate().unwrap_or(0.0),
        "a constrained search must reuse the cache at least as well as an unconstrained one \
         (constrained {:?} vs unconstrained {:?})",
        constrained.cache.hit_rate(),
        report.cache.hit_rate(),
    );
}
