//! Behavioural guarantees of the deployment optimizer: determinism of the
//! full audit trail, budget respect, and the acceptance bar — the search
//! must match or beat every hand-picked `deployment_grid`-style capacity
//! split on the same candidate hubs.

use wattroute::objective::Objective;
use wattroute::prelude::*;
use wattroute_market::time::SimHour;
use wattroute_optimizer::{
    price_conscious_factory, DeploymentOptimizer, GreedyDescent, LocalSearch, SearchBudget,
    SearchSpace, SweepEvaluator,
};
use wattroute_workload::ClusterSet;

const QUANTUM: u32 = 800;

fn scenario() -> Scenario {
    let start = SimHour::from_date(2008, 12, 19);
    Scenario::custom_window(41, HourRange::new(start, start.plus_hours(36)))
        .with_energy(EnergyModelParams::optimistic_future())
}

fn reject_config(s: &Scenario) -> SimulationConfig {
    s.config.clone().with_overflow(OverflowMode::Reject)
}

/// Rescale per-cluster capacity by a label-dependent factor (the
/// `deployment_grid` harness's hand-picked splits).
fn rebalanced(base: &ClusterSet, factor_of: impl Fn(&str) -> f64) -> ClusterSet {
    ClusterSet::new(
        base.clusters()
            .iter()
            .map(|c| {
                let mut c = c.clone();
                c.servers = ((c.servers as f64 * factor_of(&c.label)).round() as u32).max(1);
                c
            })
            .collect(),
    )
}

#[test]
fn same_seed_and_grid_reproduce_the_identical_report_json() {
    let s = scenario();
    let run = |seed: u64| {
        let (space, start) = SearchSpace::from_deployment(&s.clusters, QUANTUM);
        DeploymentOptimizer::new(space, &s.trace, &s.prices, reject_config(&s))
            .with_budget(SearchBudget::smoke())
            .with_start(start)
            .with_threads(2)
            .run(&mut LocalSearch::seeded(seed))
    };
    let a = run(17);
    let b = run(17);
    assert_eq!(a, b, "same seed + same grid must reproduce the identical report");
    assert_eq!(a.to_json(), b.to_json(), "... and the identical JSON bytes");

    // Greedy draws no randomness at all: two runs are identical too.
    let greedy = |_| {
        let (space, start) = SearchSpace::from_deployment(&s.clusters, QUANTUM);
        DeploymentOptimizer::new(space, &s.trace, &s.prices, reject_config(&s))
            .with_budget(SearchBudget::smoke())
            .with_start(start)
            .run(&mut GreedyDescent::default())
    };
    assert_eq!(greedy(()).to_json(), greedy(()).to_json());
}

#[test]
fn optimizer_matches_or_beats_every_hand_picked_split() {
    let s = scenario();
    let objective = Objective::default_qos();
    let config = reject_config(&s);

    // The deployment_grid harness's hand-picked candidates on the nine
    // hubs: the original split, east-heavy, west-heavy.
    let nine = s.clusters.clone();
    let east_heavy = rebalanced(&nine, |label| match label {
        "MA" | "NY" | "VA" | "NJ" => 1.8,
        "CA1" | "CA2" => 0.3,
        _ => 0.8,
    });
    let west_heavy = rebalanced(&nine, |label| match label {
        "CA1" | "CA2" => 1.8,
        "MA" | "NY" | "VA" | "NJ" => 0.45,
        _ => 1.0,
    });

    let (space, incumbent_split) = SearchSpace::from_deployment(&nine, QUANTUM);
    // Encode each hand-picked split into the space (same candidate hubs,
    // capacity re-quantised) and score it through the same evaluator and
    // objective the optimizer uses.
    let hand_picked: Vec<Vec<u32>> = [&nine, &east_heavy, &west_heavy]
        .iter()
        .map(|set| {
            let units: Vec<u32> = set
                .clusters()
                .iter()
                .map(|c| ((c.servers as f64 / QUANTUM as f64).round() as u32).max(1))
                .collect();
            // Re-balance the rounded split onto the space's exact budget
            // by trimming/padding the largest entry.
            let mut units = units;
            let budget: u32 = space.total_units();
            let mut sum: u32 = units.iter().sum();
            while sum != budget {
                let target = if sum > budget {
                    units.iter().position(|&u| u == *units.iter().max().unwrap()).unwrap()
                } else {
                    units.iter().position(|&u| u == *units.iter().min().unwrap()).unwrap()
                };
                if sum > budget {
                    units[target] -= 1;
                    sum -= 1;
                } else {
                    units[target] += 1;
                    sum += 1;
                }
            }
            units
        })
        .collect();

    let policy = price_conscious_factory(1500.0);
    let mut evaluator = SweepEvaluator::new(&s.trace, &s.prices, config.clone());
    let sets: Vec<ClusterSet> = hand_picked.iter().map(|u| space.materialize(u)).collect();
    let best_hand_picked = evaluator
        .evaluate(&sets, &policy)
        .iter()
        .map(|r| objective.score(r).total())
        .fold(f64::INFINITY, f64::min);

    // Seed the search with the incumbent nine-cluster split (one of the
    // hand-picked candidates): greedy monotonicity then guarantees the
    // acceptance bar, and in practice the search improves well past it.
    let optimizer = DeploymentOptimizer::new(space, &s.trace, &s.prices, config)
        .with_objective(objective)
        .with_budget(SearchBudget {
            max_evaluations: 240,
            max_iterations: 3,
            ..SearchBudget::default()
        })
        .with_start(incumbent_split);
    let report = optimizer.run(&mut GreedyDescent::default());

    assert!(
        report.best.total_dollars() <= best_hand_picked + 1e-9,
        "optimizer ({}) must match or beat the best hand-picked split ({best_hand_picked})",
        report.best.total_dollars()
    );
    assert!(report.best.total_dollars() <= report.start.total_dollars());
    // The trail is complete: iteration 0 is the start, and every recorded
    // candidate count sums to the evaluation count.
    let recorded: usize = report.iterations.iter().map(|i| i.candidates.len()).sum();
    assert_eq!(recorded, report.evaluations);
    assert_eq!(report.iterations[0].candidates.len(), 1);

    // A seeded local search from the same start also never regresses.
    let (space2, start2) = SearchSpace::from_deployment(&nine, QUANTUM);
    let local = DeploymentOptimizer::new(space2, &s.trace, &s.prices, reject_config(&s))
        .with_budget(SearchBudget::smoke())
        .with_start(start2)
        .run(&mut LocalSearch::seeded(5));
    assert!(local.best.total_dollars() <= local.start.total_dollars());
}

#[test]
fn budget_caps_evaluations_and_cache_reuses_hub_lists() {
    let s = scenario();
    let (space, start) = SearchSpace::from_deployment(&s.clusters, QUANTUM);
    let budget = SearchBudget { max_evaluations: 30, ..SearchBudget::smoke() };
    let report = DeploymentOptimizer::new(space, &s.trace, &s.prices, reject_config(&s))
        .with_budget(budget)
        .with_start(start)
        .run(&mut GreedyDescent::default());
    // The cap binds the strategy's own batches; the driver adds exactly
    // one start evaluation on top.
    assert!(report.evaluations <= 31, "evaluated {} > 31", report.evaluations);
    // Capacity-only moves never touch a new hub list, so the whole search
    // compiles at most a handful of hub lists and hits the cache for the
    // rest.
    assert!(
        report.cache.hub_list_hits > report.cache.hub_list_misses,
        "search should mostly revisit cached hub lists: {:?}",
        report.cache
    );
    assert!(report.cache.hit_rate().unwrap() > 0.5);
}
