//! Risk-adjusted candidate scoring on top of the Monte Carlo layer.
//!
//! The [`SweepEvaluator`](crate::SweepEvaluator) scores every candidate on
//! one deterministic price history, so two placements with the same
//! expected bill look identical even when one of them falls apart in the
//! tail price regimes the stochastic model can produce. A
//! [`RiskEvaluator`] replays each candidate over `N` Monte Carlo price
//! paths ([`wattroute::montecarlo`]) and scores the resulting
//! [`SavingsDistribution`] with
//! [`Objective::score_distribution`] — which adds the
//! [`with_cvar_weight`](Objective::with_cvar_weight) risk premium,
//! `cvar_weight × (CVaR_α(bill) − mean bill)`, pricing a candidate's tail
//! exposure in dollars. A fragile placement (cheap on average, terrible in
//! spiky regimes) then loses to a robust one even at equal expected cost.
//!
//! Scoring is deterministic for a master seed: the path stream is derived
//! with [`wattroute_market::generator::path_seed`], so repeated `score`
//! calls (and candidate rankings) are exactly reproducible.

use crate::evaluator::SharedPolicyFactory;
use std::sync::Arc;
use wattroute::montecarlo::{MonteCarlo, SavingsDistribution};
use wattroute::objective::{Objective, ObjectiveTerms};
use wattroute::simulation::SimulationConfig;
use wattroute_market::model::MarketModel;
use wattroute_workload::trace::Trace;
use wattroute_workload::ClusterSet;

/// Scores candidate deployments over Monte Carlo price-path distributions
/// instead of one deterministic history.
pub struct RiskEvaluator<'a> {
    trace: &'a Trace,
    model: MarketModel,
    config: SimulationConfig,
    objective: Objective,
    master_seed: u64,
    n_paths: usize,
    cvar_alpha: f64,
    threads: Option<usize>,
}

impl<'a> RiskEvaluator<'a> {
    /// Bind an evaluator to a trace, a calibrated price model (which must
    /// cover every hub a candidate may use), a simulation configuration
    /// and the master seed every candidate's path stream derives from.
    ///
    /// Defaults: 32 paths, CVaR level 0.95, [`Objective::default_qos`]
    /// (risk-neutral until [`Self::with_objective`] sets a `cvar_weight`).
    pub fn new(
        trace: &'a Trace,
        model: MarketModel,
        config: SimulationConfig,
        master_seed: u64,
    ) -> Self {
        Self {
            trace,
            model,
            config,
            objective: Objective::default_qos(),
            master_seed,
            n_paths: 32,
            cvar_alpha: 0.95,
            threads: None,
        }
    }

    /// Replace the objective (set a nonzero
    /// [`cvar_weight`](Objective::cvar_weight) to make the ranking
    /// risk-averse).
    pub fn with_objective(mut self, objective: Objective) -> Self {
        self.objective = objective;
        self
    }

    /// Set the number of price paths per candidate (at least one).
    pub fn with_paths(mut self, n_paths: usize) -> Self {
        assert!(n_paths > 0, "at least one path is required");
        self.n_paths = n_paths;
        self
    }

    /// Set the CVaR confidence level `α ∈ [0, 1)` (default 0.95).
    pub fn with_cvar_alpha(mut self, alpha: f64) -> Self {
        assert!((0.0..1.0).contains(&alpha), "CVaR level must be in [0, 1)");
        self.cvar_alpha = alpha;
        self
    }

    /// Pin the Monte Carlo worker-thread count (results do not depend on
    /// it).
    pub fn with_threads(mut self, threads: usize) -> Self {
        assert!(threads >= 1, "worker pool needs at least one thread");
        self.threads = Some(threads);
        self
    }

    /// The objective candidates are scored under.
    pub fn objective(&self) -> &Objective {
        &self.objective
    }

    /// Replay one candidate over the path distribution and score it.
    pub fn score(
        &self,
        candidate: &ClusterSet,
        policy: &SharedPolicyFactory,
    ) -> (SavingsDistribution, ObjectiveTerms) {
        let mut mc = MonteCarlo::new(
            candidate,
            self.trace,
            self.model.clone(),
            self.config.clone(),
            self.master_seed,
        )
        .with_paths(self.n_paths)
        .with_cvar_alpha(self.cvar_alpha)
        .with_policy_factory(Arc::clone(policy));
        if let Some(threads) = self.threads {
            mc = mc.with_threads(threads);
        }
        let dist = mc.run();
        let terms = self.objective.score_distribution(&dist);
        (dist, terms)
    }

    /// Score every candidate and rank them by total objective, cheapest
    /// (most robust) first. Returns `(candidate index, distribution,
    /// terms)` triples; ties keep candidate order.
    pub fn rank(
        &self,
        candidates: &[ClusterSet],
        policy: &SharedPolicyFactory,
    ) -> Vec<(usize, SavingsDistribution, ObjectiveTerms)> {
        let mut scored: Vec<(usize, SavingsDistribution, ObjectiveTerms)> = candidates
            .iter()
            .enumerate()
            .map(|(i, candidate)| {
                let (dist, terms) = self.score(candidate, policy);
                (i, dist, terms)
            })
            .collect();
        scored.sort_by(|a, b| {
            a.2.total().partial_cmp(&b.2.total()).expect("finite totals").then(a.0.cmp(&b.0))
        });
        scored
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluator::price_conscious_factory;
    use wattroute::prelude::*;

    fn small_scenario() -> Scenario {
        let start = SimHour::from_date(2008, 6, 1);
        Scenario::custom_window(9, HourRange::new(start, start.plus_hours(24)))
    }

    fn nine_hub_model(scenario: &Scenario) -> MarketModel {
        MarketModel::calibrated().restricted_to(&scenario.clusters.hub_ids())
    }

    #[test]
    fn scoring_is_deterministic_and_risk_neutral_by_default() {
        let s = small_scenario();
        let evaluator = RiskEvaluator::new(&s.trace, nine_hub_model(&s), s.config.clone(), 2009)
            .with_paths(6)
            .with_threads(2);
        let policy = price_conscious_factory(1500.0);
        let (dist, terms) = evaluator.score(&s.clusters, &policy);
        assert_eq!(dist.n_paths, 6);
        assert_eq!(terms.risk_premium_dollars, 0.0, "default objective is risk-neutral");
        assert!((terms.energy_cost_dollars - dist.bill.mean).abs() < 1e-9);
        // Same seed, same candidate: byte-identical distribution.
        let (again, terms_again) = evaluator.score(&s.clusters, &policy);
        assert_eq!(dist.to_json(), again.to_json());
        assert_eq!(terms, terms_again);
    }

    #[test]
    fn cvar_weight_charges_tail_exposure() {
        let s = small_scenario();
        let policy = price_conscious_factory(1500.0);
        let neutral = RiskEvaluator::new(&s.trace, nine_hub_model(&s), s.config.clone(), 2009)
            .with_paths(8)
            .with_threads(2);
        let averse = RiskEvaluator::new(&s.trace, nine_hub_model(&s), s.config.clone(), 2009)
            .with_paths(8)
            .with_threads(2)
            .with_objective(Objective::default_qos().with_cvar_weight(1.0));
        let (dist_n, terms_n) = neutral.score(&s.clusters, &policy);
        let (dist_a, terms_a) = averse.score(&s.clusters, &policy);
        // The replay is identical; only the scoring changes.
        assert_eq!(dist_n.to_json(), dist_a.to_json());
        assert_eq!(terms_n.risk_premium_dollars, 0.0);
        // Eight distinct price paths have a real tail above the mean.
        assert!(dist_a.bill_cvar_dollars > dist_a.bill.mean);
        let expected = dist_a.bill_cvar_dollars - dist_a.bill.mean;
        assert!((terms_a.risk_premium_dollars - expected).abs() < 1e-9);
        assert!((terms_a.total() - terms_n.total() - expected).abs() < 1e-9);
    }

    #[test]
    fn rank_orders_by_total_ascending() {
        let s = small_scenario();
        let policy = price_conscious_factory(1500.0);
        let evaluator = RiskEvaluator::new(&s.trace, nine_hub_model(&s), s.config.clone(), 2009)
            .with_paths(4)
            .with_threads(2);
        // An under-provisioned copy of the deployment pays SLA penalties,
        // so the full-capacity candidate must rank first.
        let starved = s.clusters.scaled(0.05);
        let ranking = evaluator.rank(&[starved, s.clusters.clone()], &policy);
        assert_eq!(ranking.len(), 2);
        assert_eq!(ranking[0].0, 1, "full-capacity candidate is the robust one");
        assert!(ranking[0].2.total() <= ranking[1].2.total());
        assert!(ranking[1].2.sla_penalty_dollars > 0.0, "starved candidate pays for overflow");
    }
}
