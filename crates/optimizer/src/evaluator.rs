//! Batch candidate evaluation on top of the sweep engine.
//!
//! Every optimizer iteration produces a batch of candidate deployments
//! that must all be simulated over the same trace and price history. A
//! [`SweepEvaluator`] turns each batch into one
//! [`ScenarioSweep`] and runs it through
//! [`execute_streaming`](ScenarioSweep::execute_streaming) against a
//! **persistent** [`CompiledArtifacts`] cache, so:
//!
//! * the batch executes in parallel on the sweep's worker pool
//!   (respecting `available_parallelism`, overridable via
//!   [`SweepEvaluator::with_threads`]);
//! * every candidate whose hub list — its set of *active* hubs — was
//!   already visited, in this batch or any earlier one, reuses the cached
//!   billing matrix and routing-preference geometry. Capacity-only moves
//!   never recompile anything; only activating or deactivating a hub
//!   compiles a new hub list, exactly once for the whole search.

use std::sync::Arc;
use wattroute::report::SimulationReport;
use wattroute::run::RunOptions;
use wattroute::simulation::SimulationConfig;
use wattroute::sweep::{CompiledArtifacts, ScenarioSweep};
use wattroute_market::types::PriceSet;
use wattroute_routing::constraints::HubBandwidthCaps;
use wattroute_routing::policy::RoutingPolicy;
use wattroute_routing::price_conscious::PriceConsciousPolicy;
use wattroute_workload::trace::Trace;
use wattroute_workload::ClusterSet;

/// A cloneable policy factory shared by every candidate evaluation (each
/// run still gets a fresh policy instance — policies are stateful).
pub type SharedPolicyFactory = Arc<dyn Fn() -> Box<dyn RoutingPolicy> + Send + Sync>;

/// Wrap any concrete policy constructor as a [`SharedPolicyFactory`].
pub fn policy_factory<P, F>(f: F) -> SharedPolicyFactory
where
    P: RoutingPolicy + 'static,
    F: Fn() -> P + Send + Sync + 'static,
{
    Arc::new(move || Box::new(f()))
}

/// The workspace-standard policy for placement search: price-conscious
/// routing at a distance threshold.
pub fn price_conscious_factory(distance_threshold_km: f64) -> SharedPolicyFactory {
    policy_factory(move || PriceConsciousPolicy::with_distance_threshold(distance_threshold_km))
}

/// Evaluates batches of candidate deployments over one trace and price
/// set, sharing compiled artifacts across every batch it ever runs.
pub struct SweepEvaluator<'a> {
    trace: &'a Trace,
    prices: &'a PriceSet,
    config: SimulationConfig,
    hub_caps: Option<HubBandwidthCaps>,
    threads: Option<usize>,
    artifacts: CompiledArtifacts,
    evaluations: usize,
}

impl<'a> SweepEvaluator<'a> {
    /// Bind an evaluator to a trace, price set and simulation
    /// configuration. The price set must cover every candidate hub the
    /// search may activate.
    pub fn new(trace: &'a Trace, prices: &'a PriceSet, config: SimulationConfig) -> Self {
        Self {
            trace,
            prices,
            config,
            hub_caps: None,
            threads: None,
            artifacts: CompiledArtifacts::new(),
            evaluations: 0,
        }
    }

    /// Constrain every candidate evaluation under calibrated, hub-keyed
    /// 95/5 bandwidth caps (see
    /// [`CalibratedScenario::hub_caps`](wattroute::constraints::CalibratedScenario::hub_caps)):
    /// each candidate's configuration gets the caps resolved against *its
    /// own* cluster list — hubs the calibration never observed are
    /// unconstrained. Constraints are run-state, so this changes no
    /// compiled artifact and costs no cache reuse.
    pub fn with_hub_caps(mut self, caps: HubBandwidthCaps) -> Self {
        self.set_hub_caps(Some(caps));
        self
    }

    /// Replace (or remove) the hub-keyed caps on a live evaluator. The
    /// artifact cache is untouched — constraints are run-state, so an
    /// evaluator warmed by unconstrained batches keeps every compiled
    /// artifact when the constraint regime changes.
    pub fn set_hub_caps(&mut self, caps: Option<HubBandwidthCaps>) {
        self.hub_caps = caps;
    }

    /// The simulation configuration a specific candidate runs under: the
    /// base configuration, with hub-keyed caps (when set) resolved against
    /// the candidate's clusters.
    pub fn candidate_config(&self, candidate: &ClusterSet) -> SimulationConfig {
        let mut config = self.config.clone();
        if let Some(caps) = &self.hub_caps {
            config.constraints = caps.apply(candidate, &self.config.constraints);
        }
        config
    }

    /// Pin the worker-pool size used for each batch (default: the sweep
    /// engine's default, `std::thread::available_parallelism`).
    pub fn with_threads(mut self, threads: usize) -> Self {
        assert!(threads >= 1, "worker pool needs at least one thread");
        self.threads = Some(threads);
        self
    }

    /// The simulation configuration every candidate runs under.
    pub fn config(&self) -> &SimulationConfig {
        &self.config
    }

    /// Evaluate one policy on every candidate deployment; returns one
    /// report per candidate, in candidate order.
    pub fn evaluate(
        &mut self,
        candidates: &[ClusterSet],
        policy: &SharedPolicyFactory,
    ) -> Vec<SimulationReport> {
        self.evaluate_grid(candidates, std::slice::from_ref(policy)).pop().unwrap_or_default()
    }

    /// Evaluate a full candidates × policies grid as **one** sweep (every
    /// cell in parallel on one worker pool, all sharing the persistent
    /// artifact cache). Returns one row per policy, each holding one
    /// report per candidate in candidate order.
    pub fn evaluate_grid(
        &mut self,
        candidates: &[ClusterSet],
        policies: &[SharedPolicyFactory],
    ) -> Vec<Vec<SimulationReport>> {
        if candidates.is_empty() || policies.is_empty() {
            return vec![Vec::new(); policies.len()];
        }
        let mut sweep = ScenarioSweep::new(&candidates[0], self.trace, self.prices);
        if let Some(threads) = self.threads {
            sweep = sweep.with_threads(threads);
        }
        for (i, candidate) in candidates.iter().enumerate() {
            let id = sweep.add_deployment(format!("candidate:{i}"), candidate);
            let config = self.candidate_config(candidate);
            for (p, policy) in policies.iter().enumerate() {
                let factory = Arc::clone(policy);
                sweep.add_boxed_point_on(
                    id,
                    format!("candidate:{i}:policy:{p}"),
                    config.clone(),
                    Box::new(move || factory()),
                );
            }
        }
        let mut slots: Vec<Vec<Option<SimulationReport>>> = Vec::new();
        slots.resize_with(policies.len(), || {
            let mut row = Vec::new();
            row.resize_with(candidates.len(), || None);
            row
        });
        // Points were added candidate-major: index = candidate × policies + policy.
        sweep.execute_streaming(RunOptions::new().reuse_artifacts(&mut self.artifacts), |result| {
            slots[result.index % policies.len()][result.index / policies.len()] =
                Some(result.report);
        });
        self.evaluations += candidates.len() * policies.len();
        wattroute_obs::counter!("optimizer.evaluations")
            .add((candidates.len() * policies.len()) as u64);
        slots
            .into_iter()
            .map(|row| row.into_iter().map(|slot| slot.expect("every cell ran")).collect())
            .collect()
    }

    /// The shared artifact cache (hit/miss counters live here).
    pub fn artifacts(&self) -> &CompiledArtifacts {
        &self.artifacts
    }

    /// Total candidate simulations run through this evaluator.
    pub fn evaluations(&self) -> usize {
        self.evaluations
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wattroute::prelude::*;
    use wattroute_market::time::{HourRange, SimHour};

    #[test]
    fn batch_reports_match_sequential_simulations_and_cache_persists() {
        let start = SimHour::from_date(2008, 12, 19);
        let s = Scenario::custom_window(31, HourRange::new(start, start.plus_hours(24)));
        let policy = price_conscious_factory(1500.0);
        let mut evaluator =
            SweepEvaluator::new(&s.trace, &s.prices, s.config.clone()).with_threads(2);

        let nine = s.clusters.clone();
        let rescaled = nine.scaled(0.7);
        let reports = evaluator.evaluate(&[nine.clone(), rescaled.clone()], &policy);
        assert_eq!(reports.len(), 2);
        for (candidate, report) in [(&nine, &reports[0]), (&rescaled, &reports[1])] {
            let sequential = Simulation::new(candidate, &s.trace, &s.prices, s.config.clone())
                .execute(
                    &mut PriceConsciousPolicy::with_distance_threshold(1500.0),
                    RunOptions::new(),
                );
            assert_eq!(report, &sequential);
        }
        // Both candidates share one hub list: one miss, one hit.
        assert_eq!(evaluator.artifacts().hub_list_misses(), 1);
        assert_eq!(evaluator.artifacts().hub_list_hits(), 1);

        // A second batch revisiting the hub list is all hits.
        let again = evaluator.evaluate(std::slice::from_ref(&nine), &policy);
        assert_eq!(again[0], reports[0]);
        assert_eq!(evaluator.artifacts().hub_list_misses(), 1);
        assert_eq!(evaluator.artifacts().hub_list_hits(), 2);
        assert_eq!(evaluator.evaluations(), 3);
    }

    #[test]
    fn grid_rows_match_per_policy_batches() {
        let start = SimHour::from_date(2008, 12, 19);
        let s = Scenario::custom_window(31, HourRange::new(start, start.plus_hours(24)));
        let candidates = [s.clusters.clone(), s.clusters.scaled(0.6)];
        let policies = [price_conscious_factory(1500.0), price_conscious_factory(0.0)];

        let mut grid_eval = SweepEvaluator::new(&s.trace, &s.prices, s.config.clone());
        let rows = grid_eval.evaluate_grid(&candidates, &policies);
        assert_eq!(grid_eval.evaluations(), 4);

        let mut batch_eval = SweepEvaluator::new(&s.trace, &s.prices, s.config.clone());
        for (row, policy) in rows.iter().zip(&policies) {
            assert_eq!(row, &batch_eval.evaluate(&candidates, policy));
        }
    }

    #[test]
    fn hub_caps_constrain_each_candidate_against_its_own_hubs() {
        let start = SimHour::from_date(2008, 12, 19);
        let s = Scenario::custom_window(31, HourRange::new(start, start.plus_hours(24)));
        let calibrated = CalibratedScenario::calibrate(&s);
        let hub_caps = calibrated.hub_caps(1.0);
        let policy = price_conscious_factory(1500.0);

        let nine = s.clusters.clone();
        let east = ClusterSet::new(
            nine.clusters()
                .iter()
                .filter(|c| matches!(c.label.as_str(), "MA" | "NY" | "VA" | "NJ" | "IL"))
                .cloned()
                .collect::<Vec<_>>(),
        );

        let mut constrained = SweepEvaluator::new(&s.trace, &s.prices, s.config.clone())
            .with_hub_caps(hub_caps.clone())
            .with_threads(2);
        let reports = constrained.evaluate(&[nine.clone(), east.clone()], &policy);
        assert!(reports.iter().all(|r| r.bandwidth_constrained));

        // Each candidate ran under the caps resolved against its own
        // cluster list — bit-identical to a sequential constrained run.
        for (candidate, report) in [(&nine, &reports[0]), (&east, &reports[1])] {
            let config = constrained.candidate_config(candidate);
            assert_eq!(config.constraints.bandwidth_caps(), Some(&hub_caps.resolve(candidate)[..]));
            let sequential = Simulation::new(candidate, &s.trace, &s.prices, config).execute(
                &mut PriceConsciousPolicy::with_distance_threshold(1500.0),
                RunOptions::new(),
            );
            assert_eq!(report, &sequential);
        }

        // The constrained evaluator's cache behaviour is identical to an
        // unconstrained one over the same candidates.
        let mut relaxed =
            SweepEvaluator::new(&s.trace, &s.prices, s.config.clone()).with_threads(2);
        let _ = relaxed.evaluate(&[nine, east], &policy);
        assert_eq!(
            (constrained.artifacts().hub_list_hits(), constrained.artifacts().hub_list_misses()),
            (relaxed.artifacts().hub_list_hits(), relaxed.artifacts().hub_list_misses()),
        );
    }

    #[test]
    fn empty_batch_is_fine() {
        let start = SimHour::from_date(2008, 12, 19);
        let s = Scenario::custom_window(31, HourRange::new(start, start.plus_hours(24)));
        let mut evaluator = SweepEvaluator::new(&s.trace, &s.prices, s.config.clone());
        assert!(evaluator.evaluate(&[], &price_conscious_factory(1500.0)).is_empty());
        assert_eq!(evaluator.evaluations(), 0);
    }
}
