//! The optimizer's audit trail: every candidate, every term, every
//! iteration, JSON-serializable through the workspace's dependency-free
//! JSON layer.
//!
//! A placement recommendation is only trustworthy if the search that
//! produced it can be replayed and inspected, so the driver records the
//! full trail: the scored starting point, one [`IterationRecord`] per
//! evaluated batch (iteration 0 is the start's own evaluation), the
//! evaluation count, and the artifact-cache statistics proving how much
//! compilation the search reused. Determinism is pinned by test: the same
//! strategy, seed and grid must reproduce this report byte-for-byte.

use crate::space::CandidateSplit;
use crate::strategy::ScoredCandidate;
use wattroute::json::{self, JsonValue};
use wattroute::objective::ObjectiveTerms;
use wattroute::sweep::CompiledArtifacts;

/// One scored candidate as recorded in the trail.
#[derive(Debug, Clone, PartialEq)]
pub struct CandidateRecord {
    /// Units per candidate hub.
    pub split: CandidateSplit,
    /// Objective breakdown.
    pub terms: ObjectiveTerms,
}

impl CandidateRecord {
    /// Record a scored candidate.
    pub fn from_scored(scored: &ScoredCandidate) -> Self {
        Self { split: scored.split.clone(), terms: scored.terms }
    }

    /// The candidate's scalar objective.
    pub fn total_dollars(&self) -> f64 {
        self.terms.total()
    }

    /// Encode as a JSON value.
    pub fn to_json_value(&self) -> JsonValue {
        json::object([
            (
                "split",
                JsonValue::Array(self.split.iter().map(|&u| JsonValue::Number(u as f64)).collect()),
            ),
            ("terms", self.terms.to_json_value()),
        ])
    }
}

/// One evaluated batch: the candidates scored and the incumbent after
/// seeing them.
#[derive(Debug, Clone, PartialEq)]
pub struct IterationRecord {
    /// Every candidate the batch evaluated, in proposal order.
    pub candidates: Vec<CandidateRecord>,
    /// Best objective total known once this batch was scored.
    pub incumbent_total_dollars: f64,
}

impl IterationRecord {
    /// Encode as a JSON value.
    pub fn to_json_value(&self) -> JsonValue {
        json::object([
            (
                "candidates",
                JsonValue::Array(
                    self.candidates.iter().map(CandidateRecord::to_json_value).collect(),
                ),
            ),
            ("incumbent_total_dollars", JsonValue::Number(self.incumbent_total_dollars)),
        ])
    }
}

/// Compile/reuse statistics of the evaluator's artifact cache over the
/// whole search.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheStats {
    /// Distinct hub lists compiled (billing matrix + preference geometry
    /// each).
    pub hub_lists_compiled: usize,
    /// Per-(hub list, delay) price-table views compiled.
    pub delayed_views_compiled: usize,
    /// Deployment resolutions served from cache.
    pub hub_list_hits: usize,
    /// Deployment resolutions that had to compile.
    pub hub_list_misses: usize,
}

impl CacheStats {
    /// Snapshot an artifact cache.
    pub fn from_artifacts(artifacts: &CompiledArtifacts) -> Self {
        Self {
            hub_lists_compiled: artifacts.billing_matrices(),
            delayed_views_compiled: artifacts.delayed_views(),
            hub_list_hits: artifacts.hub_list_hits(),
            hub_list_misses: artifacts.hub_list_misses(),
        }
    }

    /// Fraction of resolutions served from cache (`None` if none
    /// happened).
    pub fn hit_rate(&self) -> Option<f64> {
        let lookups = self.hub_list_hits + self.hub_list_misses;
        (lookups > 0).then(|| self.hub_list_hits as f64 / lookups as f64)
    }

    /// Encode as a JSON value.
    pub fn to_json_value(&self) -> JsonValue {
        json::object([
            ("hub_lists_compiled", JsonValue::Number(self.hub_lists_compiled as f64)),
            ("delayed_views_compiled", JsonValue::Number(self.delayed_views_compiled as f64)),
            ("hub_list_hits", JsonValue::Number(self.hub_list_hits as f64)),
            ("hub_list_misses", JsonValue::Number(self.hub_list_misses as f64)),
        ])
    }
}

/// The full, replayable result of one optimizer run.
#[derive(Debug, Clone, PartialEq)]
pub struct OptimizerReport {
    /// Strategy name (`greedy-descent`, `local-search`, ...).
    pub strategy: String,
    /// Labels of the hubs active in the best split, in candidate order.
    pub best_hubs: Vec<String>,
    /// The scored starting point.
    pub start: CandidateRecord,
    /// The best candidate found.
    pub best: CandidateRecord,
    /// Total candidate simulations run (including the start).
    pub evaluations: usize,
    /// One record per evaluated batch; iteration 0 is the start's own
    /// evaluation.
    pub iterations: Vec<IterationRecord>,
    /// Artifact-cache statistics over the whole search.
    pub cache: CacheStats,
}

impl OptimizerReport {
    /// Savings of the best split over the starting split, in percent of
    /// the start's objective.
    pub fn improvement_percent(&self) -> f64 {
        let start = self.start.total_dollars();
        if start <= 0.0 {
            return 0.0;
        }
        (1.0 - self.best.total_dollars() / start) * 100.0
    }

    /// Encode as a JSON value.
    pub fn to_json_value(&self) -> JsonValue {
        json::object([
            ("strategy", JsonValue::String(self.strategy.clone())),
            (
                "best_hubs",
                JsonValue::Array(
                    self.best_hubs.iter().map(|h| JsonValue::String(h.clone())).collect(),
                ),
            ),
            ("start", self.start.to_json_value()),
            ("best", self.best.to_json_value()),
            ("evaluations", JsonValue::Number(self.evaluations as f64)),
            (
                "iterations",
                JsonValue::Array(
                    self.iterations.iter().map(IterationRecord::to_json_value).collect(),
                ),
            ),
            ("cache", self.cache.to_json_value()),
        ])
    }

    /// Serialize to a compact JSON string.
    pub fn to_json(&self) -> String {
        self.to_json_value().to_string()
    }
}
