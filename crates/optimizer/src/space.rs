//! The search space: capacity splits over candidate hubs.
//!
//! A deployment is encoded as a [`CandidateSplit`] — one unsigned unit
//! count per candidate hub, summing to the space's fixed total. One unit
//! is [`SearchSpace::servers_per_unit`] servers (the capacity quantum),
//! so the space is a discrete simplex: every candidate spends exactly the
//! same server budget, and search moves shift quanta between hubs. A hub
//! at zero units is *inactive* and simply absent from the materialized
//! [`ClusterSet`], so subset selection (which hubs to build at all) and
//! capacity splitting (how much to build where) are one encoding.
//!
//! Keeping the hub list of a candidate equal to the hub list of another
//! candidate (same set of active hubs) is what lets the sweep engine's
//! [`CompiledArtifacts`](wattroute::sweep::CompiledArtifacts) cache reuse
//! billing matrices and preference geometries across most of a search:
//! only a move that activates or deactivates a hub touches a new hub list.

use wattroute_geo::HubId;
use wattroute_workload::{Cluster, ClusterSet};

/// One hub the optimizer may place capacity at.
#[derive(Debug, Clone, PartialEq)]
pub struct CandidateHub {
    /// Label used for the materialized cluster (e.g. `NY`).
    pub label: String,
    /// The market hub capacity placed here buys power at.
    pub hub: HubId,
    /// Per-server sustainable capacity in hits/second.
    pub hits_per_server_per_sec: f64,
    /// Whether the materialized cluster is public (steerable).
    pub public: bool,
}

impl CandidateHub {
    /// A candidate with the workspace-standard 200 hits/s/server public
    /// cluster profile.
    pub fn new(label: impl Into<String>, hub: HubId) -> Self {
        Self { label: label.into(), hub, hits_per_server_per_sec: 200.0, public: true }
    }

    /// A candidate inheriting an existing cluster's profile.
    pub fn from_cluster(cluster: &Cluster) -> Self {
        Self {
            label: cluster.label.clone(),
            hub: cluster.hub,
            hits_per_server_per_sec: cluster.hits_per_server_per_sec,
            public: cluster.public,
        }
    }
}

/// A capacity split: units per candidate hub, in candidate order, summing
/// to [`SearchSpace::total_units`]. Zero means the hub is inactive.
pub type CandidateSplit = Vec<u32>;

/// The discrete space of capacity splits the optimizer searches.
#[derive(Debug, Clone)]
pub struct SearchSpace {
    hubs: Vec<CandidateHub>,
    total_units: u32,
    servers_per_unit: u32,
}

impl SearchSpace {
    /// Build a space over candidate hubs with a fixed budget of
    /// `total_units` capacity quanta of `servers_per_unit` servers each.
    ///
    /// # Panics
    /// Panics on an empty hub list, duplicate hubs, or a zero budget or
    /// quantum.
    pub fn new(hubs: Vec<CandidateHub>, total_units: u32, servers_per_unit: u32) -> Self {
        assert!(!hubs.is_empty(), "search space needs at least one candidate hub");
        assert!(total_units >= 1, "capacity budget must be at least one unit");
        assert!(servers_per_unit >= 1, "capacity quantum must be at least one server");
        for i in 0..hubs.len() {
            for j in i + 1..hubs.len() {
                assert!(
                    hubs[i].hub != hubs[j].hub,
                    "candidate hubs {} and {} share market hub {:?}",
                    hubs[i].label,
                    hubs[j].label,
                    hubs[i].hub
                );
            }
        }
        Self { hubs, total_units, servers_per_unit }
    }

    /// Build a space whose candidates are an existing deployment's
    /// clusters and whose budget is that deployment's total capacity,
    /// quantised to `servers_per_unit`. Also returns the deployment
    /// itself encoded as a split (each cluster rounded to units, minimum
    /// one), so a search can start from — and be compared against — the
    /// incumbent placement.
    pub fn from_deployment(clusters: &ClusterSet, servers_per_unit: u32) -> (Self, CandidateSplit) {
        assert!(!clusters.is_empty(), "deployment has no clusters");
        let split: CandidateSplit = clusters
            .clusters()
            .iter()
            .map(|c| ((c.servers as f64 / servers_per_unit as f64).round() as u32).max(1))
            .collect();
        let total_units = split.iter().sum();
        let hubs = clusters.clusters().iter().map(CandidateHub::from_cluster).collect();
        (Self::new(hubs, total_units, servers_per_unit), split)
    }

    /// The candidate hubs, in split order.
    pub fn hubs(&self) -> &[CandidateHub] {
        &self.hubs
    }

    /// Number of candidate hubs.
    pub fn num_hubs(&self) -> usize {
        self.hubs.len()
    }

    /// The fixed capacity budget in units.
    pub fn total_units(&self) -> u32 {
        self.total_units
    }

    /// Servers per capacity unit (the move quantum).
    pub fn servers_per_unit(&self) -> u32 {
        self.servers_per_unit
    }

    /// The budget spread as evenly as integer units allow, earlier hubs
    /// taking the remainder (deterministic).
    pub fn even_split(&self) -> CandidateSplit {
        let n = self.hubs.len() as u32;
        let base = self.total_units / n;
        let remainder = self.total_units % n;
        (0..n).map(|i| base + u32::from(i < remainder)).collect()
    }

    /// Panics unless `split` belongs to this space: right arity, exact
    /// budget, at least one active hub.
    pub fn validate(&self, split: &[u32]) {
        assert_eq!(split.len(), self.hubs.len(), "split arity does not match candidate hubs");
        let sum: u32 = split.iter().sum();
        assert_eq!(
            sum, self.total_units,
            "split spends {sum} units, budget is {}",
            self.total_units
        );
        assert!(split.iter().any(|&u| u > 0), "split activates no hub");
    }

    /// Materialize a split as a deployment: one cluster per active hub,
    /// `units × servers_per_unit` servers each; inactive hubs are absent.
    pub fn materialize(&self, split: &[u32]) -> ClusterSet {
        self.validate(split);
        ClusterSet::new(
            self.hubs
                .iter()
                .zip(split)
                .filter(|(_, &units)| units > 0)
                .map(|(hub, &units)| Cluster {
                    label: hub.label.clone(),
                    hub: hub.hub,
                    servers: units * self.servers_per_unit,
                    hits_per_server_per_sec: hub.hits_per_server_per_sec,
                    public: hub.public,
                })
                .collect(),
        )
    }

    /// Apply one move: take `units` (clamped to what `from` holds) from
    /// one hub and give them to another. Returns `None` for a no-op (zero
    /// transferable units or `from == to`).
    pub fn shifted(
        &self,
        split: &[u32],
        from: usize,
        to: usize,
        units: u32,
    ) -> Option<CandidateSplit> {
        if from == to {
            return None;
        }
        let moved = units.min(split[from]);
        if moved == 0 {
            return None;
        }
        let mut next = split.to_vec();
        next[from] -= moved;
        next[to] += moved;
        Some(next)
    }

    /// Every split reachable by moving (up to) `units` quanta from one
    /// active hub to any other hub, in deterministic (from, to) order.
    /// Moves that drain a hub deactivate it; moves onto a zero hub
    /// activate it — so this neighbourhood covers capacity reallocation
    /// *and* hub swap-in/out.
    pub fn shift_neighbors(&self, split: &[u32], units: u32) -> Vec<CandidateSplit> {
        self.validate(split);
        let n = self.hubs.len();
        let mut out = Vec::new();
        for from in 0..n {
            for to in 0..n {
                if let Some(next) = self.shifted(split, from, to, units) {
                    out.push(next);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn three_hub_space() -> SearchSpace {
        SearchSpace::new(
            vec![
                CandidateHub::new("NY", HubId::NewYorkNy),
                CandidateHub::new("IL", HubId::ChicagoIl),
                CandidateHub::new("TX", HubId::DallasTx),
            ],
            10,
            100,
        )
    }

    #[test]
    fn even_split_spends_exactly_the_budget() {
        let space = three_hub_space();
        let split = space.even_split();
        assert_eq!(split, vec![4, 3, 3]);
        space.validate(&split);
    }

    #[test]
    fn materialize_drops_inactive_hubs_and_scales_by_quantum() {
        let space = three_hub_space();
        let set = space.materialize(&[7, 0, 3]);
        assert_eq!(set.labels(), vec!["NY", "TX"]);
        assert_eq!(set.clusters()[0].servers, 700);
        assert_eq!(set.total_servers(), 1000);
    }

    #[test]
    fn shift_neighbors_cover_reallocation_and_swap() {
        let space = three_hub_space();
        let neighbors = space.shift_neighbors(&[9, 1, 0], 1);
        // Two active hubs × two destinations each.
        assert_eq!(neighbors.len(), 4);
        // Draining IL deactivates it; moving onto TX activates it.
        assert!(neighbors.contains(&vec![10, 0, 0]));
        assert!(neighbors.contains(&vec![9, 0, 1]));
        assert!(neighbors.contains(&vec![8, 2, 0]));
        assert!(neighbors.contains(&vec![8, 1, 1]));
        // Every neighbour still spends the budget.
        for n in &neighbors {
            space.validate(n);
        }
    }

    #[test]
    fn shifted_clamps_to_available_units() {
        let space = three_hub_space();
        assert_eq!(space.shifted(&[9, 1, 0], 1, 2, 5), Some(vec![9, 0, 1]));
        assert_eq!(space.shifted(&[9, 1, 0], 2, 0, 5), None);
        assert_eq!(space.shifted(&[9, 1, 0], 0, 0, 5), None);
    }

    #[test]
    fn from_deployment_round_trips_the_incumbent() {
        let nine = ClusterSet::akamai_like_nine();
        let (space, split) = SearchSpace::from_deployment(&nine, 100);
        space.validate(&split);
        let back = space.materialize(&split);
        assert_eq!(back.labels(), nine.labels());
        // Quantisation error is bounded by half a unit per cluster.
        for (a, b) in back.clusters().iter().zip(nine.clusters()) {
            assert!((a.servers as i64 - b.servers as i64).unsigned_abs() <= 50);
        }
    }

    #[test]
    #[should_panic(expected = "budget")]
    fn wrong_budget_is_rejected() {
        three_hub_space().validate(&[4, 3, 2]);
    }

    #[test]
    #[should_panic(expected = "share market hub")]
    fn duplicate_candidate_hubs_are_rejected() {
        let _ = SearchSpace::new(
            vec![
                CandidateHub::new("A", HubId::NewYorkNy),
                CandidateHub::new("B", HubId::NewYorkNy),
            ],
            4,
            100,
        );
    }
}
