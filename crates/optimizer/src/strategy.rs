//! Search strategies over capacity splits.
//!
//! Strategies are deliberately thin: they see the search space, a scored
//! starting point, a budget, and a batch-scoring callback, and return the
//! best candidate they found. The driver ([`DeploymentOptimizer`]) owns
//! evaluation, objective scoring and the audit trail, so every strategy
//! gets caching, parallel batch evaluation and full reporting for free.
//!
//! Both built-in strategies are deterministic: [`GreedyDescent`] draws no
//! randomness at all, and [`LocalSearch`] drives every draw from one
//! `StdRng` seed — same seed, same space, same
//! objective ⇒ the identical sequence of batches, and therefore an
//! identical [`OptimizerReport`](crate::report::OptimizerReport).
//!
//! [`DeploymentOptimizer`]: crate::DeploymentOptimizer

use crate::space::{CandidateSplit, SearchSpace};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;
use wattroute::objective::ObjectiveTerms;

/// A candidate split together with its objective breakdown.
#[derive(Debug, Clone, PartialEq)]
pub struct ScoredCandidate {
    /// The capacity split.
    pub split: CandidateSplit,
    /// Its objective terms.
    pub terms: ObjectiveTerms,
}

impl ScoredCandidate {
    /// The scalar being minimized.
    pub fn total(&self) -> f64 {
        self.terms.total()
    }
}

/// Early-termination knobs shared by all strategies.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchBudget {
    /// Hard cap on candidate evaluations (batches are truncated to fit).
    pub max_evaluations: usize,
    /// Cap on search iterations (neighbourhood batches).
    pub max_iterations: usize,
    /// A move must improve the objective by at least this many dollars to
    /// be accepted (guards against chasing float noise forever).
    pub min_improvement_dollars: f64,
    /// Local search stops after this many consecutive non-improving
    /// rounds (greedy descent stops on the first).
    pub patience: usize,
}

impl Default for SearchBudget {
    fn default() -> Self {
        Self {
            max_evaluations: 2000,
            max_iterations: 64,
            min_improvement_dollars: 1e-6,
            patience: 3,
        }
    }
}

impl SearchBudget {
    /// A tiny budget for smoke tests and CI goldens.
    pub fn smoke() -> Self {
        Self { max_evaluations: 60, max_iterations: 8, min_improvement_dollars: 1e-6, patience: 2 }
    }
}

/// Scores a batch of splits, returning one [`ScoredCandidate`] per split
/// in order (provided by the driver; also records the audit trail).
pub type BatchScorer<'x> = dyn FnMut(&[CandidateSplit]) -> Vec<ScoredCandidate> + 'x;

/// A deterministic, seeded search procedure over capacity splits.
pub trait OptimizerStrategy {
    /// Short name recorded in the report (`greedy-descent`, ...).
    fn name(&self) -> &'static str;

    /// Search from `start`, scoring candidate batches through `score`,
    /// and return the best candidate found (which is `start` itself if
    /// nothing beats it).
    fn search(
        &mut self,
        space: &SearchSpace,
        start: ScoredCandidate,
        budget: &SearchBudget,
        score: &mut BatchScorer<'_>,
    ) -> ScoredCandidate;
}

/// The strictly better of two candidates, preferring `a` on ties so that
/// earlier (deterministically ordered) candidates win.
fn better(a: ScoredCandidate, b: ScoredCandidate) -> ScoredCandidate {
    if b.total() < a.total() {
        b
    } else {
        a
    }
}

/// Pick the best of a batch (first wins ties). `None` on an empty batch.
fn best_of(batch: Vec<ScoredCandidate>) -> Option<ScoredCandidate> {
    batch.into_iter().reduce(better)
}

/// Greedy coordinate descent: evaluate every single-quantum shift around
/// the incumbent, take the steepest improvement, repeat until no move
/// improves (or the budget runs out). Deterministic — no randomness, ties
/// broken by (from, to) order.
#[derive(Debug, Clone)]
pub struct GreedyDescent {
    /// Quanta moved per step (1 = finest neighbourhood).
    pub step_units: u32,
}

impl Default for GreedyDescent {
    fn default() -> Self {
        Self { step_units: 1 }
    }
}

impl OptimizerStrategy for GreedyDescent {
    fn name(&self) -> &'static str {
        "greedy-descent"
    }

    fn search(
        &mut self,
        space: &SearchSpace,
        start: ScoredCandidate,
        budget: &SearchBudget,
        score: &mut BatchScorer<'_>,
    ) -> ScoredCandidate {
        let mut incumbent = start;
        let mut evaluations = 0usize;
        // Every split scored so far. The incumbent is always the minimum
        // over scored splits, so re-scoring a seen split can never change
        // the outcome — skip it and spend the budget on new ground.
        let mut seen: BTreeSet<CandidateSplit> = BTreeSet::new();
        seen.insert(incumbent.split.clone());
        for _ in 0..budget.max_iterations {
            if evaluations >= budget.max_evaluations {
                break;
            }
            let mut neighbors: Vec<CandidateSplit> = space
                .shift_neighbors(&incumbent.split, self.step_units)
                .into_iter()
                .filter(|s| seen.insert(s.clone()))
                .collect();
            neighbors.truncate(budget.max_evaluations - evaluations);
            if neighbors.is_empty() {
                break;
            }
            evaluations += neighbors.len();
            let Some(best) = best_of(score(&neighbors)) else { break };
            if best.total() < incumbent.total() - budget.min_improvement_dollars {
                incumbent = best;
            } else {
                break;
            }
        }
        incumbent
    }
}

/// Seeded local search: each round proposes a batch of random moves
/// around the incumbent — mostly capacity shifts of 1..=`max_shift_units`
/// quanta between random hubs, sometimes a full hub swap (drain one
/// active hub onto an inactive one) — and accepts the best proposal if it
/// improves. Stops after [`SearchBudget::patience`] non-improving rounds.
#[derive(Debug, Clone)]
pub struct LocalSearch {
    /// RNG seed; same seed, same search.
    pub seed: u64,
    /// Proposals per round.
    pub moves_per_round: usize,
    /// Largest capacity shift proposed, in units.
    pub max_shift_units: u32,
}

impl LocalSearch {
    /// A local search with the workspace-default round size.
    pub fn seeded(seed: u64) -> Self {
        Self { seed, moves_per_round: 12, max_shift_units: 4 }
    }
}

impl OptimizerStrategy for LocalSearch {
    fn name(&self) -> &'static str {
        "local-search"
    }

    fn search(
        &mut self,
        space: &SearchSpace,
        start: ScoredCandidate,
        budget: &SearchBudget,
        score: &mut BatchScorer<'_>,
    ) -> ScoredCandidate {
        assert!(self.moves_per_round >= 1, "local search needs at least one proposal per round");
        assert!(self.max_shift_units >= 1, "capacity shifts must move at least one unit");
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut incumbent = start;
        let mut evaluations = 0usize;
        let mut stale_rounds = 0usize;
        let n = space.num_hubs();
        if n < 2 {
            // A one-hub space has a single legal split; nothing to search.
            return incumbent;
        }
        // Every split scored so far (see GreedyDescent::search): skipping
        // duplicate and reverse-move proposals cannot change the outcome,
        // only save their full simulations.
        let mut seen: BTreeSet<CandidateSplit> = BTreeSet::new();
        seen.insert(incumbent.split.clone());

        for _ in 0..budget.max_iterations {
            if stale_rounds >= budget.patience || evaluations >= budget.max_evaluations {
                break;
            }
            let mut batch: Vec<CandidateSplit> = Vec::with_capacity(self.moves_per_round);
            for _ in 0..self.moves_per_round {
                let active: Vec<usize> = (0..n).filter(|&i| incumbent.split[i] > 0).collect();
                let inactive: Vec<usize> = (0..n).filter(|&i| incumbent.split[i] == 0).collect();
                let from = active[rng.gen_range(0..active.len())];
                // A quarter of proposals are hub swaps when one is
                // possible; the rest shift a small number of quanta.
                let swap = !inactive.is_empty() && active.len() > 1 && rng.gen_bool(0.25);
                let (to, units) = if swap {
                    (inactive[rng.gen_range(0..inactive.len())], incumbent.split[from])
                } else {
                    // Any destination but `from` (may activate a hub).
                    let mut to = rng.gen_range(0..n - 1);
                    if to >= from {
                        to += 1;
                    }
                    (to, rng.gen_range(1..=self.max_shift_units))
                };
                if let Some(split) = space.shifted(&incumbent.split, from, to, units) {
                    if seen.insert(split.clone()) {
                        batch.push(split);
                    }
                }
            }
            batch.truncate(budget.max_evaluations - evaluations);
            if batch.is_empty() {
                stale_rounds += 1;
                continue;
            }
            evaluations += batch.len();
            let Some(best) = best_of(score(&batch)) else { break };
            if best.total() < incumbent.total() - budget.min_improvement_dollars {
                incumbent = best;
                stale_rounds = 0;
            } else {
                stale_rounds += 1;
            }
        }
        incumbent
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::CandidateHub;
    use wattroute_geo::HubId;

    fn space() -> SearchSpace {
        SearchSpace::new(
            vec![
                CandidateHub::new("A", HubId::NewYorkNy),
                CandidateHub::new("B", HubId::ChicagoIl),
                CandidateHub::new("C", HubId::DallasTx),
            ],
            6,
            100,
        )
    }

    /// A synthetic separable objective with its minimum at "everything on
    /// hub C": total = Σ units × weight(hub).
    fn toy_scorer(weights: [f64; 3]) -> impl FnMut(&[CandidateSplit]) -> Vec<ScoredCandidate> {
        move |splits: &[CandidateSplit]| {
            splits
                .iter()
                .map(|s| ScoredCandidate {
                    split: s.clone(),
                    terms: ObjectiveTerms {
                        energy_cost_dollars: s
                            .iter()
                            .zip(weights)
                            .map(|(&u, w)| u as f64 * w)
                            .sum(),
                        sla_penalty_dollars: 0.0,
                        distance_penalty_dollars: 0.0,
                        bandwidth_cost_dollars: 0.0,
                        risk_premium_dollars: 0.0,
                    },
                })
                .collect()
        }
    }

    fn scored(space: &SearchSpace, split: CandidateSplit, weights: [f64; 3]) -> ScoredCandidate {
        let _ = space;
        toy_scorer(weights)(&[split]).pop().unwrap()
    }

    #[test]
    fn greedy_descent_walks_to_the_separable_optimum() {
        let space = space();
        let weights = [3.0, 2.0, 1.0];
        let mut score = toy_scorer(weights);
        let start = scored(&space, space.even_split(), weights);
        let best =
            GreedyDescent::default().search(&space, start, &SearchBudget::default(), &mut score);
        assert_eq!(best.split, vec![0, 0, 6], "all capacity should end on the cheapest hub");
        assert_eq!(best.total(), 6.0);
    }

    #[test]
    fn no_split_is_ever_scored_twice() {
        let space = space();
        let weights = [3.0, 2.0, 1.0];
        let mut counts: std::collections::BTreeMap<CandidateSplit, usize> = Default::default();
        let mut inner = toy_scorer(weights);
        let mut score = |splits: &[CandidateSplit]| {
            for s in splits {
                *counts.entry(s.clone()).or_insert(0) += 1;
            }
            inner(splits)
        };
        let start = scored(&space, space.even_split(), weights);
        let _ = GreedyDescent::default().search(
            &space,
            start.clone(),
            &SearchBudget::default(),
            &mut score,
        );
        assert!(counts.values().all(|&c| c == 1), "greedy re-scored a split: {counts:?}");
        assert!(!counts.contains_key(&start.split), "the start is already scored by the driver");

        counts.clear();
        let mut inner = toy_scorer(weights);
        let mut score = |splits: &[CandidateSplit]| {
            for s in splits {
                *counts.entry(s.clone()).or_insert(0) += 1;
            }
            inner(splits)
        };
        let _ = LocalSearch::seeded(3).search(&space, start, &SearchBudget::default(), &mut score);
        assert!(counts.values().all(|&c| c == 1), "local search re-scored a split: {counts:?}");
    }

    #[test]
    fn single_hub_space_returns_the_start_without_scoring() {
        let space = SearchSpace::new(vec![CandidateHub::new("A", HubId::NewYorkNy)], 4, 100);
        let start = ScoredCandidate {
            split: vec![4],
            terms: ObjectiveTerms {
                energy_cost_dollars: 1.0,
                sla_penalty_dollars: 0.0,
                distance_penalty_dollars: 0.0,
                bandwidth_cost_dollars: 0.0,
                risk_premium_dollars: 0.0,
            },
        };
        let mut score = |_: &[CandidateSplit]| -> Vec<ScoredCandidate> {
            panic!("a one-hub space has no neighbours to score")
        };
        let budget = SearchBudget::default();
        let greedy = GreedyDescent::default().search(&space, start.clone(), &budget, &mut score);
        assert_eq!(greedy, start);
        let local = LocalSearch::seeded(1).search(&space, start.clone(), &budget, &mut score);
        assert_eq!(local, start);
    }

    #[test]
    fn greedy_descent_respects_the_evaluation_cap() {
        let space = space();
        let weights = [3.0, 2.0, 1.0];
        let mut evaluated = 0usize;
        let mut inner = toy_scorer(weights);
        let mut score = |splits: &[CandidateSplit]| {
            evaluated += splits.len();
            inner(splits)
        };
        let budget = SearchBudget { max_evaluations: 7, ..SearchBudget::default() };
        let start = scored(&space, space.even_split(), weights);
        let _ = GreedyDescent::default().search(&space, start, &budget, &mut score);
        assert!(evaluated <= 7, "evaluated {evaluated} > cap 7");
    }

    #[test]
    fn local_search_is_deterministic_and_never_worse_than_start() {
        let space = space();
        let weights = [5.0, 1.0, 4.0];
        let start = scored(&space, space.even_split(), weights);
        let run = |seed: u64| {
            LocalSearch::seeded(seed).search(
                &space,
                start.clone(),
                &SearchBudget::default(),
                &mut toy_scorer(weights),
            )
        };
        let a = run(7);
        let b = run(7);
        assert_eq!(a, b, "same seed must reproduce the same result");
        assert!(a.total() <= start.total());
        let c = run(8);
        // A different seed is allowed to find a different path; both must
        // still never regress below the starting point.
        assert!(c.total() <= start.total());
    }
}
