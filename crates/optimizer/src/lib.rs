//! # wattroute_optimizer
//!
//! A deployment-*placement* optimizer: searches capacity splits across
//! candidate market hubs for the placement minimizing a configurable
//! cost-vs-QoS objective, using the sweep engine as its batch evaluator.
//!
//! The paper's §6.3 thought experiment — the same total capacity spread
//! over 29 hubs instead of nine clusters saves markedly more — shows that
//! *where capacity sits* moves the achievable electricity savings as much
//! as any routing knob. The `deployment_grid` harness can enumerate a
//! handful of hand-picked placements; this crate searches the space:
//!
//! * a [`SearchSpace`] encodes placements as integer capacity quanta over
//!   candidate hubs (zero = hub not built), so capacity reallocation and
//!   hub subset selection are one move vocabulary;
//! * a [`SweepEvaluator`] turns each candidate batch into a
//!   [`ScenarioSweep`](wattroute::sweep::ScenarioSweep) over a persistent
//!   [`CompiledArtifacts`](wattroute::sweep::CompiledArtifacts) cache —
//!   revisiting a hub list never recompiles billing matrices or routing
//!   geometry (pinned by an exact compile-count test);
//! * an [`wattroute::objective::Objective`] scores each
//!   simulated report as energy dollars + SLA penalty on rejected or
//!   overflowed demand + an optional distance-performance penalty;
//! * a [`RiskEvaluator`] re-scores candidates over Monte Carlo price-path
//!   distributions ([`wattroute::montecarlo`]), adding a CVaR risk premium
//!   so robust placements beat fragile ones at equal expected cost;
//! * two deterministic, seeded [`OptimizerStrategy`] implementations —
//!   [`GreedyDescent`] and [`LocalSearch`] — search the simplex with
//!   early termination;
//! * a [`DeploymentOptimizer`] drives the loop and emits an
//!   [`OptimizerReport`] audit trail (every candidate, every objective
//!   term, the evaluation count, the cache statistics), JSON-serializable
//!   through `wattroute::json`.
//!
//! ```
//! use wattroute::prelude::*;
//! use wattroute_optimizer::{DeploymentOptimizer, GreedyDescent, SearchBudget, SearchSpace};
//!
//! let start = SimHour::from_date(2008, 12, 19);
//! let scenario = Scenario::custom_window(9, HourRange::new(start, start.plus_hours(24)));
//! // Search the nine-cluster deployment's own hubs at a coarse quantum.
//! let (space, incumbent) = SearchSpace::from_deployment(&scenario.clusters, 800);
//! let config = scenario.config.clone().with_overflow(OverflowMode::Reject);
//! let report = DeploymentOptimizer::new(space, &scenario.trace, &scenario.prices, config)
//!     .with_budget(SearchBudget::smoke())
//!     .with_start(incumbent)
//!     .run(&mut GreedyDescent::default());
//! assert!(report.best.total_dollars() <= report.start.total_dollars());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod evaluator;
pub mod report;
pub mod risk;
pub mod space;
pub mod strategy;

pub use evaluator::{policy_factory, price_conscious_factory, SharedPolicyFactory, SweepEvaluator};
pub use report::{CacheStats, CandidateRecord, IterationRecord, OptimizerReport};
pub use risk::RiskEvaluator;
pub use space::{CandidateHub, CandidateSplit, SearchSpace};
pub use strategy::{GreedyDescent, LocalSearch, OptimizerStrategy, ScoredCandidate, SearchBudget};

use wattroute::objective::Objective;
use wattroute::simulation::SimulationConfig;
use wattroute_market::types::PriceSet;
use wattroute_routing::constraints::HubBandwidthCaps;
use wattroute_workload::trace::Trace;

/// The optimizer driver: binds a search space to a scenario (trace,
/// prices, simulation configuration), an objective, a policy and a
/// budget, and runs strategies over it.
pub struct DeploymentOptimizer<'a> {
    space: SearchSpace,
    trace: &'a Trace,
    prices: &'a PriceSet,
    config: SimulationConfig,
    objective: Objective,
    policy: SharedPolicyFactory,
    budget: SearchBudget,
    threads: Option<usize>,
    start: Option<CandidateSplit>,
    hub_caps: Option<HubBandwidthCaps>,
}

impl<'a> DeploymentOptimizer<'a> {
    /// Bind an optimizer. Defaults: price-conscious routing at the
    /// paper's preferred 1500 km threshold, the
    /// [`Objective::default_qos`] objective, the default
    /// [`SearchBudget`], the sweep engine's default worker count, and an
    /// even starting split.
    ///
    /// Run candidates under
    /// [`OverflowMode::Reject`](wattroute_routing::constraints::OverflowMode) (set
    /// it on `config`) so under-provisioned placements surface
    /// `rejected_hits` for the objective's SLA term to price.
    pub fn new(
        space: SearchSpace,
        trace: &'a Trace,
        prices: &'a PriceSet,
        config: SimulationConfig,
    ) -> Self {
        Self {
            space,
            trace,
            prices,
            config,
            objective: Objective::default_qos(),
            policy: price_conscious_factory(1500.0),
            budget: SearchBudget::default(),
            threads: None,
            start: None,
            hub_caps: None,
        }
    }

    /// Search *under* calibrated 95/5 bandwidth caps: every candidate is
    /// simulated with the hub-keyed caps resolved against its own active
    /// hubs (see
    /// [`CalibratedScenario::hub_caps`](wattroute::constraints::CalibratedScenario::hub_caps)).
    /// Hubs the calibration never observed are unconstrained. Constraints
    /// are run-state, not compiled geometry, so the artifact cache works
    /// exactly as hard as an unconstrained search over the same
    /// trajectory.
    pub fn with_hub_caps(mut self, caps: HubBandwidthCaps) -> Self {
        self.hub_caps = Some(caps);
        self
    }

    /// Replace the objective.
    pub fn with_objective(mut self, objective: Objective) -> Self {
        self.objective = objective;
        self
    }

    /// Replace the routing policy evaluated for every candidate.
    pub fn with_policy(mut self, policy: SharedPolicyFactory) -> Self {
        self.policy = policy;
        self
    }

    /// Replace the search budget.
    pub fn with_budget(mut self, budget: SearchBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Pin the evaluator's worker-pool size (default:
    /// `std::thread::available_parallelism`).
    pub fn with_threads(mut self, threads: usize) -> Self {
        assert!(threads >= 1, "worker pool needs at least one thread");
        self.threads = Some(threads);
        self
    }

    /// Start the search from a specific split instead of the even one.
    pub fn with_start(mut self, start: CandidateSplit) -> Self {
        self.space.validate(&start);
        self.start = Some(start);
        self
    }

    /// The search space.
    pub fn space(&self) -> &SearchSpace {
        &self.space
    }

    /// Run one strategy to completion and return the audit trail. Each
    /// call builds a fresh evaluator (and artifact cache) so separate
    /// runs are independent and individually reproducible.
    pub fn run(&self, strategy: &mut dyn OptimizerStrategy) -> OptimizerReport {
        let mut evaluator = SweepEvaluator::new(self.trace, self.prices, self.config.clone());
        if let Some(threads) = self.threads {
            evaluator = evaluator.with_threads(threads);
        }
        if let Some(caps) = &self.hub_caps {
            evaluator = evaluator.with_hub_caps(caps.clone());
        }
        self.run_on(strategy, &mut evaluator)
    }

    /// Like [`Self::run`], but on a caller-supplied evaluator, so a
    /// *sequence* of searches — an unconstrained pass followed by a
    /// capped one, or several strategies — shares one persistent
    /// [`CompiledArtifacts`](wattroute::sweep::CompiledArtifacts) cache:
    /// hub lists any earlier run compiled are never recompiled, whatever
    /// the constraint regime. The evaluator's own configuration and hub
    /// caps define the simulation regime (this optimizer's `config` /
    /// `with_hub_caps` settings only shape the evaluator [`Self::run`]
    /// builds internally); the report's `evaluations` counts this run
    /// alone, while its cache statistics are the evaluator's cumulative
    /// totals.
    pub fn run_on(
        &self,
        strategy: &mut dyn OptimizerStrategy,
        evaluator: &mut SweepEvaluator<'_>,
    ) -> OptimizerReport {
        let evaluations_before = evaluator.evaluations();

        let mut iterations: Vec<IterationRecord> = Vec::new();
        let mut best_total = f64::INFINITY;
        let space = &self.space;
        let objective = &self.objective;
        let policy = &self.policy;
        let mut score = |splits: &[CandidateSplit]| -> Vec<ScoredCandidate> {
            let candidates: Vec<_> = splits.iter().map(|s| space.materialize(s)).collect();
            let reports = evaluator.evaluate(&candidates, policy);
            let scored: Vec<ScoredCandidate> = splits
                .iter()
                .zip(&reports)
                .map(|(split, report)| ScoredCandidate {
                    split: split.clone(),
                    terms: objective.score(report),
                })
                .collect();
            for candidate in &scored {
                best_total = best_total.min(candidate.total());
            }
            iterations.push(IterationRecord {
                candidates: scored.iter().map(CandidateRecord::from_scored).collect(),
                incumbent_total_dollars: best_total,
            });
            scored
        };

        // Iteration 0: score the starting split itself.
        let start_split = self.start.clone().unwrap_or_else(|| self.space.even_split());
        let start = score(std::slice::from_ref(&start_split))
            .pop()
            .expect("start evaluation produces one candidate");

        let best = strategy.search(&self.space, start.clone(), &self.budget, &mut score);

        let best_hubs = self
            .space
            .hubs()
            .iter()
            .zip(&best.split)
            .filter(|(_, &units)| units > 0)
            .map(|(hub, _)| hub.label.clone())
            .collect();
        OptimizerReport {
            strategy: strategy.name().to_string(),
            best_hubs,
            start: CandidateRecord::from_scored(&start),
            best: CandidateRecord::from_scored(&best),
            evaluations: evaluator.evaluations() - evaluations_before,
            iterations,
            cache: CacheStats::from_artifacts(evaluator.artifacts()),
        }
    }
}
