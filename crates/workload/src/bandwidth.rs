//! 95/5 bandwidth percentiles and capacity estimation (§4 of the paper).
//!
//! Carriers bill on the 95th percentile of five-minute traffic samples.
//! Akamai's client→cluster assignment is already optimised against those
//! percentiles, so the paper constrains its price-conscious router to never
//! push a cluster's 95th percentile above the level observed under the
//! original assignment. This module computes those per-cluster levels and
//! derives cluster capacity estimates from observed peaks.

use serde::{Deserialize, Serialize};
use wattroute_stats::quantiles;

/// 95th percentile of a series of five-minute samples.
///
/// Returns `None` for an empty series.
pub fn percentile_95(samples: &[f64]) -> Option<f64> {
    quantiles::percentile(samples, 95.0)
}

/// Per-cluster bandwidth/billing profile derived from an observed assignment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BandwidthProfile {
    /// 95th percentile of each cluster's five-minute hit rate under the
    /// observed (baseline) assignment, in hits/second. Indexed by cluster
    /// position.
    pub p95_hits_per_sec: Vec<f64>,
    /// Peak five-minute hit rate per cluster under the observed assignment.
    pub peak_hits_per_sec: Vec<f64>,
    /// Mean five-minute hit rate per cluster.
    pub mean_hits_per_sec: Vec<f64>,
}

impl BandwidthProfile {
    /// Build a profile from per-cluster load series (`loads[cluster][step]`,
    /// hits/second at 5-minute resolution).
    ///
    /// Returns `None` if any cluster's series is empty.
    pub fn from_cluster_loads(loads: &[Vec<f64>]) -> Option<BandwidthProfile> {
        let mut p95 = Vec::with_capacity(loads.len());
        let mut peak = Vec::with_capacity(loads.len());
        let mut mean = Vec::with_capacity(loads.len());
        for series in loads {
            p95.push(percentile_95(series)?);
            peak.push(series.iter().copied().fold(f64::NAN, f64::max));
            mean.push(wattroute_stats::mean(series)?);
        }
        Some(BandwidthProfile {
            p95_hits_per_sec: p95,
            peak_hits_per_sec: peak,
            mean_hits_per_sec: mean,
        })
    }

    /// Number of clusters covered.
    pub fn len(&self) -> usize {
        self.p95_hits_per_sec.len()
    }

    /// Whether the profile is empty.
    pub fn is_empty(&self) -> bool {
        self.p95_hits_per_sec.is_empty()
    }

    /// Headroom (in hits/second) between a cluster's current load and its
    /// 95th-percentile ceiling; negative when the ceiling is already
    /// exceeded.
    pub fn headroom(&self, cluster: usize, current_load: f64) -> Option<f64> {
        self.p95_hits_per_sec.get(cluster).map(|p| p - current_load)
    }

    /// Scale every ceiling by a factor — "relaxing" (factor > 1) or
    /// tightening the 95/5 constraints, as explored in Figures 15, 16 and 18.
    pub fn scaled(&self, factor: f64) -> BandwidthProfile {
        assert!(factor >= 0.0, "scale factor must be non-negative");
        BandwidthProfile {
            p95_hits_per_sec: self.p95_hits_per_sec.iter().map(|p| p * factor).collect(),
            peak_hits_per_sec: self.peak_hits_per_sec.clone(),
            mean_hits_per_sec: self.mean_hits_per_sec.clone(),
        }
    }
}

/// Estimate cluster request capacities from observed peak loads and a target
/// peak utilization. §6.1: "Capacity estimates were derived using observed
/// hit rates and corresponding region load level data."
///
/// `peak_loads[cluster]` is the largest five-minute hit rate observed at the
/// cluster; `peak_utilization` is the load level (0..1] the cluster was
/// judged to be running at during that peak. The estimated capacity is
/// `peak / peak_utilization`.
pub fn estimate_capacities(peak_loads: &[f64], peak_utilization: f64) -> Vec<f64> {
    assert!(
        peak_utilization > 0.0 && peak_utilization <= 1.0,
        "peak utilization must be in (0, 1]"
    );
    peak_loads.iter().map(|p| p / peak_utilization).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_95_ignores_top_five_percent() {
        let mut series: Vec<f64> = vec![100.0; 95];
        series.extend(vec![10_000.0; 5]);
        let p = percentile_95(&series).unwrap();
        assert!(p < 5_000.0, "p95 = {p} should be dominated by the 100s");
        assert_eq!(percentile_95(&[]), None);
    }

    #[test]
    fn profile_from_loads() {
        let loads = vec![(0..100).map(|i| i as f64).collect::<Vec<_>>(), vec![50.0; 100]];
        let profile = BandwidthProfile::from_cluster_loads(&loads).unwrap();
        assert_eq!(profile.len(), 2);
        assert!(!profile.is_empty());
        assert!((profile.p95_hits_per_sec[0] - 94.05).abs() < 0.5);
        assert_eq!(profile.peak_hits_per_sec[0], 99.0);
        assert_eq!(profile.p95_hits_per_sec[1], 50.0);
        assert!((profile.mean_hits_per_sec[0] - 49.5).abs() < 1e-9);
    }

    #[test]
    fn empty_cluster_series_rejected() {
        let loads = vec![vec![1.0, 2.0], vec![]];
        assert!(BandwidthProfile::from_cluster_loads(&loads).is_none());
    }

    #[test]
    fn headroom() {
        let profile = BandwidthProfile {
            p95_hits_per_sec: vec![1000.0],
            peak_hits_per_sec: vec![1200.0],
            mean_hits_per_sec: vec![600.0],
        };
        assert_eq!(profile.headroom(0, 400.0), Some(600.0));
        assert_eq!(profile.headroom(0, 1400.0), Some(-400.0));
        assert_eq!(profile.headroom(3, 0.0), None);
    }

    #[test]
    fn scaling_relaxes_ceilings() {
        let profile = BandwidthProfile {
            p95_hits_per_sec: vec![1000.0, 2000.0],
            peak_hits_per_sec: vec![1100.0, 2100.0],
            mean_hits_per_sec: vec![500.0, 900.0],
        };
        let relaxed = profile.scaled(1.5);
        assert_eq!(relaxed.p95_hits_per_sec, vec![1500.0, 3000.0]);
        assert_eq!(relaxed.peak_hits_per_sec, profile.peak_hits_per_sec);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_scale_rejected() {
        let profile = BandwidthProfile {
            p95_hits_per_sec: vec![1.0],
            peak_hits_per_sec: vec![1.0],
            mean_hits_per_sec: vec![1.0],
        };
        let _ = profile.scaled(-1.0);
    }

    #[test]
    fn capacity_estimation() {
        let caps = estimate_capacities(&[700.0, 1400.0], 0.7);
        assert!((caps[0] - 1000.0).abs() < 1e-9);
        assert!((caps[1] - 2000.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "peak utilization")]
    fn bad_utilization_rejected() {
        let _ = estimate_capacities(&[1.0], 0.0);
    }
}
