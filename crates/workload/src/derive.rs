//! Deriving long-horizon synthetic workloads from a short trace.
//!
//! §6.1 of the paper: "In order to simulate longer periods we derived a
//! synthetic workload from the 24-day Akamai workload (US traffic only). We
//! calculated an average hit rate for every hub and client state pair. We
//! produced a different average for each hour of the day and each day of the
//! week."
//!
//! [`WeeklyProfile`] implements exactly that reduction — averaging demand
//! per (state, hour-of-week) — and can then replay the profile over any
//! hour range (for example the full 39 months of price data used in §6.3).
//! Because the routing policy re-decides the client→cluster assignment at
//! simulation time, averaging per state is equivalent to the paper's
//! per-(hub, state) averaging for every policy the simulator supports.

use crate::trace::{Trace, TraceStep, STEPS_PER_HOUR};
use serde::{Deserialize, Serialize};
use wattroute_geo::UsState;
use wattroute_market::time::HourRange;
#[cfg(test)]
use wattroute_market::time::SimHour;

/// Hours in a week.
const HOURS_PER_WEEK: usize = 168;

/// Average demand per (state, hour-of-week), derived from a trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WeeklyProfile {
    /// Client states, defining the column order.
    pub states: Vec<UsState>,
    /// `profile[hour_of_week][state_index]` = average hits/second.
    profile: Vec<Vec<f64>>,
    /// Average non-US demand per hour of week.
    non_us: Vec<f64>,
}

impl WeeklyProfile {
    /// Build the profile by averaging a trace per (state, hour-of-week).
    ///
    /// Returns `None` if the trace is empty or does not cover at least one
    /// full week's worth of distinct hour-of-week slots (the paper's trace
    /// covers 24 days, i.e. more than three full weeks).
    pub fn from_trace(trace: &Trace) -> Option<WeeklyProfile> {
        if trace.num_steps() == 0 {
            return None;
        }
        let n_states = trace.states.len();
        let mut sums = vec![vec![0.0f64; n_states]; HOURS_PER_WEEK];
        let mut non_us_sums = vec![0.0f64; HOURS_PER_WEEK];
        let mut counts = vec![0usize; HOURS_PER_WEEK];

        for (i, step) in trace.steps().iter().enumerate() {
            let how = trace.step_hour(i).hour_of_week() as usize;
            for (j, d) in step.us_demand.iter().enumerate() {
                sums[how][j] += d;
            }
            non_us_sums[how] += step.non_us_hits_per_sec;
            counts[how] += 1;
        }

        if counts.contains(&0) {
            return None;
        }

        let profile = sums
            .into_iter()
            .zip(&counts)
            .map(|(row, &c)| row.into_iter().map(|s| s / c as f64).collect())
            .collect();
        let non_us = non_us_sums.into_iter().zip(&counts).map(|(s, &c)| s / c as f64).collect();
        Some(WeeklyProfile { states: trace.states.clone(), profile, non_us })
    }

    /// Average demand for a state at a given hour of the week.
    pub fn demand(&self, state: UsState, hour_of_week: u64) -> Option<f64> {
        let idx = self.states.iter().position(|s| *s == state)?;
        self.profile.get((hour_of_week as usize) % HOURS_PER_WEEK).map(|row| row[idx])
    }

    /// Replay the weekly profile over an arbitrary hour range, producing a
    /// 5-minute trace in which every step of an hour carries that hour's
    /// average demand. This is the synthetic workload used for the 39-month
    /// simulations (§6.3).
    pub fn replay(&self, range: HourRange) -> Trace {
        let mut steps = Vec::with_capacity(range.len_hours() as usize * STEPS_PER_HOUR);
        for hour in range.iter() {
            let how = hour.hour_of_week() as usize;
            let row = &self.profile[how];
            let non_us = self.non_us[how];
            for _ in 0..STEPS_PER_HOUR {
                steps.push(TraceStep { us_demand: row.clone(), non_us_hits_per_sec: non_us });
            }
        }
        Trace::new(range.start, self.states.clone(), steps)
    }

    /// Total average US demand at a given hour of the week.
    pub fn total_us_demand(&self, hour_of_week: u64) -> f64 {
        self.profile[(hour_of_week as usize) % HOURS_PER_WEEK].iter().sum()
    }

    /// The peak hour-of-week by total US demand.
    pub fn peak_hour_of_week(&self) -> u64 {
        (0..HOURS_PER_WEEK as u64)
            .max_by(|&a, &b| {
                self.total_us_demand(a)
                    .partial_cmp(&self.total_us_demand(b))
                    .expect("finite demand")
            })
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::SyntheticWorkloadConfig;

    fn base_trace() -> Trace {
        SyntheticWorkloadConfig::default().generate(HourRange::akamai_24_days())
    }

    #[test]
    fn profile_from_24_day_trace() {
        let trace = base_trace();
        let profile = WeeklyProfile::from_trace(&trace).unwrap();
        assert_eq!(profile.states.len(), 51);
        // Every hour-of-week slot is populated.
        for how in 0..168 {
            assert!(profile.total_us_demand(how) > 0.0);
        }
    }

    #[test]
    fn too_short_a_trace_is_rejected() {
        let short =
            SyntheticWorkloadConfig::default().generate(HourRange::new(SimHour(0), SimHour(24))); // one day only
        assert!(WeeklyProfile::from_trace(&short).is_none());
        let empty = Trace::new(SimHour(0), vec![UsState::MA], vec![]);
        assert!(WeeklyProfile::from_trace(&empty).is_none());
    }

    #[test]
    fn replay_covers_requested_range() {
        let profile = WeeklyProfile::from_trace(&base_trace()).unwrap();
        let start = SimHour::from_date(2006, 1, 1);
        let range = HourRange::new(start, start.plus_hours(14 * 24));
        let replayed = profile.replay(range);
        assert_eq!(replayed.num_steps(), 14 * 24 * 12);
        assert_eq!(replayed.states.len(), 51);
    }

    #[test]
    fn replay_is_periodic_by_week() {
        let profile = WeeklyProfile::from_trace(&base_trace()).unwrap();
        let start = SimHour::from_date(2006, 1, 1);
        let replayed = profile.replay(HourRange::new(start, start.plus_hours(2 * 168)));
        let us = replayed.us_series();
        let week_steps = 168 * 12;
        for i in 0..week_steps {
            assert!((us[i] - us[i + week_steps]).abs() < 1e-6);
        }
    }

    #[test]
    fn replay_preserves_average_volume() {
        let trace = base_trace();
        let profile = WeeklyProfile::from_trace(&trace).unwrap();
        // Replaying over the same number of whole weeks should conserve
        // total traffic to within the truncation of partial weeks and the
        // holiday dip (which the weekly average smears out).
        let start = SimHour::from_date(2006, 1, 1);
        let replayed = profile.replay(HourRange::new(start, start.plus_hours(21 * 24)));
        let original_mean = wattroute_stats::mean(&trace.us_series()).unwrap();
        let replay_mean = wattroute_stats::mean(&replayed.us_series()).unwrap();
        assert!(
            (original_mean - replay_mean).abs() < original_mean * 0.10,
            "replayed mean {replay_mean} drifted from original {original_mean}"
        );
    }

    #[test]
    fn peak_hour_is_an_evening_weekday_hour() {
        let profile = WeeklyProfile::from_trace(&base_trace()).unwrap();
        let peak = profile.peak_hour_of_week();
        let hour_of_day = peak % 24;
        // US aggregate traffic peaks in the (Eastern) evening.
        assert!(
            (17..=23).contains(&hour_of_day),
            "peak hour-of-day should be evening, got {hour_of_day}"
        );
    }

    #[test]
    fn demand_lookup() {
        let profile = WeeklyProfile::from_trace(&base_trace()).unwrap();
        assert!(profile.demand(UsState::CA, 100).unwrap() > 0.0);
        assert!(profile.demand(UsState::CA, 100 + 168).unwrap() > 0.0);
        // Unknown state (if restricted) returns None.
        let restricted = SyntheticWorkloadConfig::default()
            .generate_for_states(HourRange::akamai_24_days(), vec![UsState::CA, UsState::NY]);
        let p2 = WeeklyProfile::from_trace(&restricted).unwrap();
        assert!(p2.demand(UsState::TX, 5).is_none());
    }
}
