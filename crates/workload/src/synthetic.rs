//! Synthetic Akamai-like traffic generation.
//!
//! # Substitution note
//!
//! The paper's 24-day Akamai trace is proprietary. This generator produces a
//! trace with the same observable structure (Figure 14 and §4):
//!
//! * a global peak of roughly 2 million hits/second, of which about
//!   1.25 million originate in the US;
//! * per-state demand proportional to population, following each state's
//!   *local* time of day (West-coast evening peaks arrive three hours after
//!   East-coast ones — exactly the offset the price-differential analysis
//!   of Figure 12 exploits);
//! * a weekly cycle (weekend traffic lower than weekday traffic) and a dip
//!   over the end-of-December holidays, which the real trace straddles;
//! * multiplicative noise and occasional flash crowds concentrated in one
//!   state.
//!
//! Because the routing simulator only consumes per-state demand series, a
//! generator matching those marginal shapes exercises the same code paths
//! as the original trace.

use crate::trace::{Trace, TraceStep, STEPS_PER_HOUR};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use wattroute_geo::{state::population_share, UsState};
use wattroute_market::time::{HourRange, SimHour};

/// Configuration of the synthetic workload generator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SyntheticWorkloadConfig {
    /// Peak global demand in hits/second (Figure 14 shows just over 2 M).
    pub peak_global_hits_per_sec: f64,
    /// Fraction of global traffic originating in the US at comparable local
    /// times (Figure 14: ~1.25 M of ~2 M).
    pub us_fraction: f64,
    /// Ratio of the overnight trough to the evening peak (0..1).
    pub diurnal_trough_ratio: f64,
    /// Multiplier applied to weekend demand.
    pub weekend_multiplier: f64,
    /// Multiplier applied during the end-of-December holiday dip.
    pub holiday_multiplier: f64,
    /// Standard deviation of the multiplicative per-step noise.
    pub noise_sigma: f64,
    /// Expected number of flash-crowd events per day.
    pub flash_crowds_per_day: f64,
    /// Peak relative amplitude of a flash crowd (e.g. 0.5 adds 50 % to one
    /// state's demand at the flash crowd's peak).
    pub flash_crowd_amplitude: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SyntheticWorkloadConfig {
    fn default() -> Self {
        Self {
            peak_global_hits_per_sec: 2.3e6,
            us_fraction: 0.58,
            diurnal_trough_ratio: 0.45,
            weekend_multiplier: 0.88,
            holiday_multiplier: 0.80,
            noise_sigma: 0.03,
            flash_crowds_per_day: 1.5,
            flash_crowd_amplitude: 0.6,
            seed: 0xACA_11A1,
        }
    }
}

impl SyntheticWorkloadConfig {
    /// Generate a trace covering `range` at 5-minute resolution, including
    /// every state (plus DC) as a client population.
    pub fn generate(&self, range: HourRange) -> Trace {
        self.generate_for_states(range, UsState::all().collect())
    }

    /// Generate a trace for a specific set of client states.
    pub fn generate_for_states(&self, range: HourRange, states: Vec<UsState>) -> Trace {
        assert!(!states.is_empty(), "need at least one client state");
        let mut rng = StdRng::seed_from_u64(self.seed);
        let n_steps = (range.len_hours() as usize) * STEPS_PER_HOUR;

        // Population shares renormalised over the selected states.
        let raw_shares: Vec<f64> = states.iter().map(|s| population_share(*s)).collect();
        let share_sum: f64 = raw_shares.iter().sum();
        let shares: Vec<f64> = raw_shares.iter().map(|s| s / share_sum).collect();

        // Scale so that the US total peaks at roughly us_fraction * peak.
        // The diurnal shape peaks at 1.0, so the scale is simply the target
        // US peak (flash crowds and noise push individual samples slightly
        // above it, as in the real trace).
        let us_peak_target = self.peak_global_hits_per_sec * self.us_fraction;

        // Pre-plan flash crowds: (step index, state index, amplitude).
        let expected_crowds = self.flash_crowds_per_day * range.len_hours() as f64 / 24.0;
        let n_crowds = expected_crowds.round() as usize;
        let crowds: Vec<(usize, usize, f64)> = (0..n_crowds)
            .map(|_| {
                (
                    rng.gen_range(0..n_steps.max(1)),
                    rng.gen_range(0..states.len()),
                    self.flash_crowd_amplitude * (0.5 + rng.gen::<f64>()),
                )
            })
            .collect();

        let mut steps = Vec::with_capacity(n_steps);
        for step_idx in 0..n_steps {
            let hour = SimHour(range.start.0 + (step_idx / STEPS_PER_HOUR) as u64);
            let minute_frac = (step_idx % STEPS_PER_HOUR) as f64 / STEPS_PER_HOUR as f64;

            let holiday = self.holiday_factor(hour);
            let weekend = if hour.is_weekend() { self.weekend_multiplier } else { 1.0 };

            let mut us_demand = Vec::with_capacity(states.len());
            for (state_idx, state) in states.iter().enumerate() {
                let local_hour =
                    hour.hour_of_day_local(state.utc_offset_hours()) as f64 + minute_frac;
                let diurnal = self.diurnal_shape(local_hour);
                let noise =
                    (1.0 + self.noise_sigma * crate::synthetic::gaussian(&mut rng)).max(0.0);
                let mut demand =
                    us_peak_target * shares[state_idx] * diurnal * weekend * holiday * noise;
                // Apply any flash crowd affecting this state near this step.
                for &(crowd_step, crowd_state, amplitude) in &crowds {
                    if crowd_state == state_idx {
                        let distance = (step_idx as f64 - crowd_step as f64).abs();
                        // Flash crowds ramp up and decay over about two hours.
                        let width = 24.0;
                        if distance < width * 4.0 {
                            demand *= 1.0
                                + amplitude * (-distance * distance / (2.0 * width * width)).exp();
                        }
                    }
                }
                us_demand.push(demand);
            }

            // Non-US demand mixes many time zones (Europe + Asia), so it is
            // much flatter than the US curve and keeps the global series
            // elevated around the clock, as in Figure 14.
            let overseas_local = (hour.hour_of_day_eastern() as f64 + minute_frac + 7.0) % 24.0;
            let non_us = self.peak_global_hits_per_sec
                * (1.0 - self.us_fraction)
                * (0.70 + 0.30 * self.diurnal_shape(overseas_local))
                * holiday
                * (1.0 + self.noise_sigma * gaussian(&mut rng)).max(0.0);

            steps.push(TraceStep { us_demand, non_us_hits_per_sec: non_us });
        }

        Trace::new(range.start, states, steps)
    }

    /// Smooth diurnal shape in `[trough_ratio, 1]`, peaking in the local
    /// evening (~19:00) with a trough in the early morning (~05:00).
    fn diurnal_shape(&self, local_hour: f64) -> f64 {
        let phase = (local_hour - 5.0) / 24.0 * std::f64::consts::TAU;
        let base = 0.5 * (1.0 - phase.cos()); // 0 at 5am, 1 at 5pm
        let evening_boost = 0.35 * (-(local_hour - 20.0) * (local_hour - 20.0) / 8.0).exp();
        // Normalise so the evening peak reaches ~1.0 without flattening into
        // a plateau; a distinct peak hour preserves the 3-hour East/West
        // offset the price-differential analysis relies on.
        let shape = ((base + evening_boost) / 1.25).min(1.0);
        self.diurnal_trough_ratio + (1.0 - self.diurnal_trough_ratio) * shape
    }

    /// Multiplier modelling the end-of-December holiday dip.
    fn holiday_factor(&self, hour: SimHour) -> f64 {
        let (_, month, day) = hour.calendar_date();
        if month == 12 && day >= 23 || month == 1 && day <= 2 {
            self.holiday_multiplier
        } else {
            1.0
        }
    }
}

/// Standard normal sample (module-private helper; Box-Muller).
fn gaussian<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen::<f64>();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use wattroute_stats as stats;

    fn akamai_trace() -> Trace {
        SyntheticWorkloadConfig::default().generate(HourRange::akamai_24_days())
    }

    #[test]
    fn trace_covers_24_days_at_5_minutes() {
        let t = akamai_trace();
        assert_eq!(t.num_steps(), 24 * 24 * 12);
        assert_eq!(t.states.len(), 51);
    }

    #[test]
    fn peaks_match_figure_14() {
        let t = akamai_trace();
        let global_peak = t.peak_global_hits_per_sec();
        let us_peak = t.peak_us_hits_per_sec();
        assert!(
            global_peak > 1.6e6 && global_peak < 2.6e6,
            "global peak should be ~2M hits/s, got {global_peak}"
        );
        assert!(
            us_peak > 1.0e6 && us_peak < 1.7e6,
            "US peak should be ~1.25M hits/s, got {us_peak}"
        );
        assert!(us_peak < global_peak);
    }

    #[test]
    fn demand_is_deterministic_per_seed() {
        let a = SyntheticWorkloadConfig::default().generate(HourRange::akamai_24_days());
        let b = SyntheticWorkloadConfig::default().generate(HourRange::akamai_24_days());
        assert_eq!(a, b);
        let c = SyntheticWorkloadConfig { seed: 999, ..Default::default() }
            .generate(HourRange::akamai_24_days());
        assert_ne!(a, c);
    }

    #[test]
    fn diurnal_swing_is_strong() {
        // Figure 14 shows peak-to-trough swings of roughly 2x.
        let t = akamai_trace();
        let us = t.us_series();
        let peak = us.iter().copied().fold(0.0, f64::max);
        let trough = us.iter().copied().fold(f64::INFINITY, f64::min);
        let ratio = peak / trough;
        assert!(ratio > 1.6 && ratio < 4.0, "peak/trough = {ratio}");
    }

    #[test]
    fn demand_tracks_population() {
        let t = akamai_trace();
        let means = t.mean_state_demand();
        let by_state = |s: UsState| means.iter().find(|(st, _)| *st == s).unwrap().1;
        assert!(by_state(UsState::CA) > by_state(UsState::WY) * 20.0);
        assert!(by_state(UsState::TX) > by_state(UsState::VT) * 10.0);
        assert!(by_state(UsState::NY) > by_state(UsState::RI) * 5.0);
    }

    #[test]
    fn california_peaks_later_than_new_york_in_eastern_time() {
        let t = akamai_trace();
        let ca = t.state_index(UsState::CA).unwrap();
        let ny = t.state_index(UsState::NY).unwrap();
        // Average demand by hour-of-day (Eastern) for each state; the
        // argmax for California should be ~3 hours later.
        let mut ca_by_hour = vec![0.0f64; 24];
        let mut ny_by_hour = vec![0.0f64; 24];
        let mut counts = [0usize; 24];
        for (i, step) in t.steps().iter().enumerate() {
            let h = t.step_hour(i).hour_of_day_eastern() as usize;
            ca_by_hour[h] += step.us_demand[ca];
            ny_by_hour[h] += step.us_demand[ny];
            counts[h] += 1;
        }
        for h in 0..24 {
            ca_by_hour[h] /= counts[h] as f64;
            ny_by_hour[h] /= counts[h] as f64;
        }
        let argmax = |xs: &[f64]| {
            xs.iter().enumerate().max_by(|a, b| a.1.partial_cmp(b.1).unwrap()).unwrap().0 as i64
        };
        let lag = (argmax(&ca_by_hour) - argmax(&ny_by_hour)).rem_euclid(24);
        assert!((2..=4).contains(&lag), "California peak should lag New York by ~3h, got {lag}");
    }

    #[test]
    fn holiday_dip_present() {
        let t = akamai_trace();
        // Compare Christmas day with a comparable non-holiday weekday.
        let christmas = t.slice(HourRange::new(
            SimHour::from_date(2008, 12, 25),
            SimHour::from_date(2008, 12, 26),
        ));
        let early_january =
            t.slice(HourRange::new(SimHour::from_date(2009, 1, 8), SimHour::from_date(2009, 1, 9)));
        let christmas_mean = stats::mean(&christmas.us_series()).unwrap();
        let january_mean = stats::mean(&early_january.us_series()).unwrap();
        assert!(
            christmas_mean < january_mean * 0.92,
            "holiday traffic {christmas_mean} should be below normal {january_mean}"
        );
    }

    #[test]
    fn weekend_dip_present() {
        let t = SyntheticWorkloadConfig { holiday_multiplier: 1.0, ..Default::default() }
            .generate(HourRange::akamai_24_days());
        let mut weekday = Vec::new();
        let mut weekend = Vec::new();
        for (i, step) in t.steps().iter().enumerate() {
            if t.step_hour(i).is_weekend() {
                weekend.push(step.us_total());
            } else {
                weekday.push(step.us_total());
            }
        }
        assert!(stats::mean(&weekend).unwrap() < stats::mean(&weekday).unwrap());
    }

    #[test]
    fn restricted_state_set() {
        let cfg = SyntheticWorkloadConfig::default();
        let t = cfg.generate_for_states(
            HourRange::new(SimHour(0), SimHour(24)),
            vec![UsState::CA, UsState::NY],
        );
        assert_eq!(t.states.len(), 2);
        // Shares renormalise: the two states carry the whole US target.
        assert!(t.peak_us_hits_per_sec() > 0.5e6);
    }

    #[test]
    #[should_panic(expected = "at least one client state")]
    fn empty_state_set_panics() {
        let _ = SyntheticWorkloadConfig::default()
            .generate_for_states(HourRange::new(SimHour(0), SimHour(24)), vec![]);
    }
}
