//! Traffic traces: 5-minute samples of client demand localised to US states.
//!
//! The Akamai data set (§4 of the paper) records, per public cluster and
//! 5-minute interval, the hits served and a coarse geography of the clients.
//! For the simulator the essential content is *how much demand each client
//! state offered at each instant*; which cluster served it is a decision the
//! routing policy re-makes. A [`Trace`] therefore stores per-state demand
//! series plus the non-US demand (needed only to reproduce the "Global
//! traffic" line of Figure 14).

use crate::cluster::ClusterSet;
use serde::{Deserialize, Serialize};
use wattroute_geo::UsState;
use wattroute_market::time::{HourRange, SimHour};

/// Seconds per trace step (the Akamai data is 5-minute resolution).
pub const STEP_SECONDS: u64 = 300;
/// Trace steps per hour.
pub const STEPS_PER_HOUR: usize = 12;

/// Demand observed during one 5-minute interval.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceStep {
    /// Demand per US state in hits/second, indexed in the order of
    /// [`Trace::states`].
    pub us_demand: Vec<f64>,
    /// Demand originating outside the US in hits/second (not routed by the
    /// simulator; shown in Figure 14 only).
    pub non_us_hits_per_sec: f64,
}

impl TraceStep {
    /// Total US demand in hits/second.
    pub fn us_total(&self) -> f64 {
        self.us_demand.iter().sum()
    }

    /// Total (global) demand in hits/second.
    pub fn global_total(&self) -> f64 {
        self.us_total() + self.non_us_hits_per_sec
    }
}

/// A 5-minute-resolution traffic trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    /// First hour covered by the trace (steps start at the top of this hour).
    pub start: SimHour,
    /// Client states, defining the column order of every step.
    pub states: Vec<UsState>,
    steps: Vec<TraceStep>,
}

impl Trace {
    /// Build a trace from explicit steps.
    ///
    /// # Panics
    /// Panics if any step's `us_demand` length differs from the state list,
    /// or contains negative or non-finite values.
    pub fn new(start: SimHour, states: Vec<UsState>, steps: Vec<TraceStep>) -> Self {
        for (i, step) in steps.iter().enumerate() {
            assert_eq!(
                step.us_demand.len(),
                states.len(),
                "step {i} has {} demand entries for {} states",
                step.us_demand.len(),
                states.len()
            );
            assert!(
                step.us_demand.iter().all(|d| d.is_finite() && *d >= 0.0)
                    && step.non_us_hits_per_sec.is_finite()
                    && step.non_us_hits_per_sec >= 0.0,
                "step {i} contains negative or non-finite demand"
            );
        }
        Self { start, states, steps }
    }

    /// Number of 5-minute steps.
    pub fn num_steps(&self) -> usize {
        self.steps.len()
    }

    /// Number of whole hours covered (rounded down).
    pub fn num_hours(&self) -> u64 {
        (self.steps.len() / STEPS_PER_HOUR) as u64
    }

    /// The hour range covered (partial trailing hours are excluded).
    pub fn hour_range(&self) -> HourRange {
        HourRange::new(self.start, self.start.plus_hours(self.num_hours()))
    }

    /// The simulation hour a step falls in.
    pub fn step_hour(&self, step: usize) -> SimHour {
        SimHour(self.start.0 + (step / STEPS_PER_HOUR) as u64)
    }

    /// The steps in order.
    pub fn steps(&self) -> &[TraceStep] {
        &self.steps
    }

    /// A single step.
    pub fn step(&self, index: usize) -> Option<&TraceStep> {
        self.steps.get(index)
    }

    /// Index of a state in the demand vectors.
    pub fn state_index(&self, state: UsState) -> Option<usize> {
        self.states.iter().position(|s| *s == state)
    }

    /// Total US demand per step, in hits/second (the "USA traffic" series of
    /// Figure 14).
    pub fn us_series(&self) -> Vec<f64> {
        self.steps.iter().map(TraceStep::us_total).collect()
    }

    /// Total global demand per step (the "Global traffic" series of
    /// Figure 14).
    pub fn global_series(&self) -> Vec<f64> {
        self.steps.iter().map(TraceStep::global_total).collect()
    }

    /// Demand per step summed over the subset of states whose nearest
    /// cluster (of the given deployment) is within `radius_km`. This is the
    /// analogue of the paper's "9-region subset" series in Figure 14: the
    /// traffic that the studied clusters would plausibly serve.
    pub fn region_subset_series(&self, clusters: &ClusterSet, radius_km: f64) -> Vec<f64> {
        let hubs: Vec<&wattroute_geo::Hub> =
            clusters.hub_ids().iter().map(|id| wattroute_geo::hubs::hub(*id)).collect();
        let included: Vec<bool> = self
            .states
            .iter()
            .map(|s| {
                hubs.iter()
                    .map(|h| wattroute_geo::state_to_hub_km(*s, h))
                    .fold(f64::INFINITY, f64::min)
                    <= radius_km
            })
            .collect();
        self.steps
            .iter()
            .map(|step| {
                step.us_demand.iter().zip(&included).filter(|(_, inc)| **inc).map(|(d, _)| d).sum()
            })
            .collect()
    }

    /// Peak US demand over the trace in hits/second.
    pub fn peak_us_hits_per_sec(&self) -> f64 {
        self.us_series().iter().copied().fold(0.0, f64::max)
    }

    /// Peak global demand over the trace in hits/second.
    pub fn peak_global_hits_per_sec(&self) -> f64 {
        self.global_series().iter().copied().fold(0.0, f64::max)
    }

    /// Total hits served over the whole trace (hits/second × seconds).
    pub fn total_us_hits(&self) -> f64 {
        self.us_series().iter().sum::<f64>() * STEP_SECONDS as f64
    }

    /// Average demand per state over the whole trace, in hits/second.
    pub fn mean_state_demand(&self) -> Vec<(UsState, f64)> {
        if self.steps.is_empty() {
            return self.states.iter().map(|s| (*s, 0.0)).collect();
        }
        let n = self.steps.len() as f64;
        self.states
            .iter()
            .enumerate()
            .map(|(i, s)| (*s, self.steps.iter().map(|st| st.us_demand[i]).sum::<f64>() / n))
            .collect()
    }

    /// Restrict the trace to the steps whose hour falls inside `range`.
    pub fn slice(&self, range: HourRange) -> Trace {
        let steps: Vec<TraceStep> = self
            .steps
            .iter()
            .enumerate()
            .filter(|(i, _)| {
                let h = self.step_hour(*i);
                h.0 >= range.start.0 && h.0 < range.end.0
            })
            .map(|(_, s)| s.clone())
            .collect();
        let start = SimHour(range.start.0.max(self.start.0));
        Trace::new(start, self.states.clone(), steps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_trace() -> Trace {
        let states = vec![UsState::MA, UsState::CA];
        let steps = (0..24)
            .map(|i| TraceStep {
                us_demand: vec![100.0 + i as f64, 300.0],
                non_us_hits_per_sec: 50.0,
            })
            .collect();
        Trace::new(SimHour(10), states, steps)
    }

    #[test]
    fn step_accounting() {
        let t = tiny_trace();
        assert_eq!(t.num_steps(), 24);
        assert_eq!(t.num_hours(), 2);
        assert_eq!(t.hour_range().len_hours(), 2);
        assert_eq!(t.step_hour(0), SimHour(10));
        assert_eq!(t.step_hour(11), SimHour(10));
        assert_eq!(t.step_hour(12), SimHour(11));
    }

    #[test]
    fn totals_and_peaks() {
        let t = tiny_trace();
        assert_eq!(t.us_series().len(), 24);
        assert!((t.us_series()[0] - 400.0).abs() < 1e-9);
        assert!((t.global_series()[0] - 450.0).abs() < 1e-9);
        assert!((t.peak_us_hits_per_sec() - 423.0).abs() < 1e-9);
        assert!((t.peak_global_hits_per_sec() - 473.0).abs() < 1e-9);
        assert!(t.total_us_hits() > 0.0);
    }

    #[test]
    fn state_indexing_and_means() {
        let t = tiny_trace();
        assert_eq!(t.state_index(UsState::CA), Some(1));
        assert_eq!(t.state_index(UsState::TX), None);
        let means = t.mean_state_demand();
        assert_eq!(means.len(), 2);
        assert!((means[1].1 - 300.0).abs() < 1e-9);
        assert!(means[0].1 > 100.0 && means[0].1 < 124.0);
    }

    #[test]
    fn slicing_by_hour() {
        let t = tiny_trace();
        let sub = t.slice(HourRange::new(SimHour(11), SimHour(12)));
        assert_eq!(sub.num_steps(), 12);
        assert_eq!(sub.start, SimHour(11));
        // Values come from the second hour of the original trace.
        assert!((sub.steps()[0].us_demand[0] - 112.0).abs() < 1e-9);
    }

    #[test]
    fn region_subset_is_a_subset_of_us() {
        let t = tiny_trace();
        let clusters = crate::cluster::ClusterSet::akamai_like_nine();
        let subset = t.region_subset_series(&clusters, 500.0);
        let us = t.us_series();
        for (s, u) in subset.iter().zip(&us) {
            assert!(s <= u);
        }
        // With an enormous radius every state is included.
        let all = t.region_subset_series(&clusters, 50_000.0);
        for (a, u) in all.iter().zip(&us) {
            assert!((a - u).abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "demand entries")]
    fn mismatched_step_length_panics() {
        let _ = Trace::new(
            SimHour(0),
            vec![UsState::MA],
            vec![TraceStep { us_demand: vec![1.0, 2.0], non_us_hits_per_sec: 0.0 }],
        );
    }

    #[test]
    #[should_panic(expected = "negative or non-finite")]
    fn negative_demand_panics() {
        let _ = Trace::new(
            SimHour(0),
            vec![UsState::MA],
            vec![TraceStep { us_demand: vec![-1.0], non_us_hits_per_sec: 0.0 }],
        );
    }

    #[test]
    fn empty_trace_is_valid() {
        let t = Trace::new(SimHour(0), vec![UsState::MA], vec![]);
        assert_eq!(t.num_steps(), 0);
        assert_eq!(t.peak_us_hits_per_sec(), 0.0);
        assert_eq!(t.mean_state_demand()[0].1, 0.0);
    }
}
