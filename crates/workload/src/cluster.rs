//! Server clusters and deployments.
//!
//! A *cluster* is a set of servers in one co-location facility, attached to
//! an electricity-market hub so its energy can be priced. A [`ClusterSet`]
//! is the deployment the simulator routes over; the built-in
//! [`ClusterSet::akamai_like_nine`] mirrors the nine-hub public-cluster
//! subset used in the paper's simulations (Figure 19's CA1, CA2, MA, NY, IL,
//! VA, NJ, TX1, TX2).

use serde::{Deserialize, Serialize};
use wattroute_geo::{hubs, HubId};

/// A server cluster at one location.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cluster {
    /// Short label, e.g. `CA1` or `NY`.
    pub label: String,
    /// Electricity-market hub the cluster buys power at.
    pub hub: HubId,
    /// Number of servers.
    pub servers: u32,
    /// Sustainable request capacity per server in hits/second. Multiplied by
    /// `servers` this gives the cluster capacity; the ratio of offered load
    /// to capacity is the utilization fed to the energy model.
    pub hits_per_server_per_sec: f64,
    /// Whether the cluster is *public* (serves arbitrary clients and is
    /// therefore steerable) or *private* (dedicated to a specific user base,
    /// §4). Only public clusters participate in price-conscious routing.
    pub public: bool,
}

impl Cluster {
    /// Total request capacity in hits/second.
    pub fn capacity_hits_per_sec(&self) -> f64 {
        self.servers as f64 * self.hits_per_server_per_sec
    }

    /// Utilization (0..1+) for a given offered load in hits/second. Values
    /// above 1.0 indicate overload; callers are expected to cap assignment
    /// at capacity but the energy model clamps defensively.
    pub fn utilization(&self, load_hits_per_sec: f64) -> f64 {
        if self.capacity_hits_per_sec() <= 0.0 {
            return 0.0;
        }
        (load_hits_per_sec / self.capacity_hits_per_sec()).max(0.0)
    }
}

/// An ordered deployment of clusters. Order is significant: allocation
/// matrices index clusters by position.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterSet {
    clusters: Vec<Cluster>,
}

impl ClusterSet {
    /// Build a deployment from a list of clusters.
    ///
    /// # Panics
    /// Panics if two clusters share a hub (the simulator aggregates
    /// same-city clusters, as the paper does in §4).
    pub fn new(clusters: Vec<Cluster>) -> Self {
        for i in 0..clusters.len() {
            for j in i + 1..clusters.len() {
                assert!(
                    clusters[i].hub != clusters[j].hub,
                    "clusters {} and {} share hub {:?}; aggregate them first",
                    clusters[i].label,
                    clusters[j].label,
                    clusters[i].hub
                );
            }
        }
        Self { clusters }
    }

    /// Build a deployment that may place several clusters at the same hub.
    ///
    /// Hierarchical deployments put many edge sites in one metro, all buying
    /// power at that metro's hub — the one-cluster-per-hub aggregation rule
    /// of [`Self::new`] does not apply to them. Flat paper-style deployments
    /// should keep using [`Self::new`] and its duplicate-hub check.
    pub fn with_shared_hubs(clusters: Vec<Cluster>) -> Self {
        Self { clusters }
    }

    /// The nine-cluster Akamai-like deployment used throughout the paper's
    /// simulations. Server counts are synthetic but sized so that the whole
    /// deployment runs at roughly 30 % average utilization under the
    /// Figure 14 traffic levels, matching the utilization assumptions of §2.1.
    pub fn akamai_like_nine() -> Self {
        let spec: [(&str, HubId, u32); 9] = [
            ("CA1", HubId::PaloAltoCa, 2000),
            ("CA2", HubId::LosAngelesCa, 2400),
            ("MA", HubId::BostonMa, 1500),
            ("NY", HubId::NewYorkNy, 3000),
            ("IL", HubId::ChicagoIl, 2200),
            ("VA", HubId::RichmondVa, 2600),
            ("NJ", HubId::NewarkNj, 2800),
            ("TX1", HubId::DallasTx, 1700),
            ("TX2", HubId::AustinTx, 1200),
        ];
        let clusters = spec
            .into_iter()
            .map(|(label, hub, servers)| Cluster {
                label: label.to_string(),
                hub,
                servers,
                hits_per_server_per_sec: 200.0,
                public: true,
            })
            .collect();
        Self::new(clusters)
    }

    /// A deployment with one equal-sized cluster at every market hub
    /// ("evenly distributed across all 29 hubs", §6.3).
    pub fn even_29_hub(servers_per_cluster: u32) -> Self {
        let clusters = hubs::market_hubs()
            .into_iter()
            .map(|h| Cluster {
                label: h.code.to_string(),
                hub: h.id,
                servers: servers_per_cluster,
                hits_per_server_per_sec: 200.0,
                public: true,
            })
            .collect();
        Self::new(clusters)
    }

    /// Number of clusters.
    pub fn len(&self) -> usize {
        self.clusters.len()
    }

    /// Whether the deployment is empty.
    pub fn is_empty(&self) -> bool {
        self.clusters.is_empty()
    }

    /// The clusters in order.
    pub fn clusters(&self) -> &[Cluster] {
        &self.clusters
    }

    /// The cluster at a position.
    pub fn get(&self, index: usize) -> Option<&Cluster> {
        self.clusters.get(index)
    }

    /// Position of the cluster at a given hub.
    pub fn index_of_hub(&self, hub: HubId) -> Option<usize> {
        self.clusters.iter().position(|c| c.hub == hub)
    }

    /// Total server count.
    pub fn total_servers(&self) -> u64 {
        self.clusters.iter().map(|c| c.servers as u64).sum()
    }

    /// Total request capacity in hits/second.
    pub fn total_capacity_hits_per_sec(&self) -> f64 {
        self.clusters.iter().map(|c| c.capacity_hits_per_sec()).sum()
    }

    /// Hub ids in cluster order.
    pub fn hub_ids(&self) -> Vec<HubId> {
        self.clusters.iter().map(|c| c.hub).collect()
    }

    /// Labels in cluster order.
    pub fn labels(&self) -> Vec<&str> {
        self.clusters.iter().map(|c| c.label.as_str()).collect()
    }

    /// Scale every cluster's server count by a factor (rounding to at least
    /// one server). Useful for heterogeneous-deployment experiments.
    pub fn scaled(&self, factor: f64) -> Self {
        assert!(factor > 0.0, "scale factor must be positive");
        let clusters = self
            .clusters
            .iter()
            .map(|c| Cluster {
                servers: ((c.servers as f64 * factor).round() as u32).max(1),
                label: c.label.clone(),
                ..*c
            })
            .collect();
        Self { clusters }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nine_cluster_deployment_matches_figure_19_labels() {
        let set = ClusterSet::akamai_like_nine();
        assert_eq!(set.len(), 9);
        assert_eq!(set.labels(), vec!["CA1", "CA2", "MA", "NY", "IL", "VA", "NJ", "TX1", "TX2"]);
        assert!(set.clusters().iter().all(|c| c.public));
    }

    #[test]
    fn nine_cluster_capacity_supports_us_peak_at_moderate_utilization() {
        // US peak traffic is ~1.25 M hits/s (Figure 14); the deployment
        // should absorb it at well under full utilization so the router has
        // freedom to move load.
        let set = ClusterSet::akamai_like_nine();
        let capacity = set.total_capacity_hits_per_sec();
        assert!(capacity > 2.0e6, "capacity {capacity} too small");
        let utilization_at_peak = 1.25e6 / capacity;
        assert!(
            utilization_at_peak > 0.2 && utilization_at_peak < 0.5,
            "average utilization at peak should be ~30%, got {utilization_at_peak}"
        );
    }

    #[test]
    fn even_29_hub_deployment() {
        let set = ClusterSet::even_29_hub(500);
        assert_eq!(set.len(), 29);
        assert_eq!(set.total_servers(), 29 * 500);
    }

    #[test]
    fn utilization_math() {
        let c = Cluster {
            label: "X".into(),
            hub: HubId::BostonMa,
            servers: 100,
            hits_per_server_per_sec: 200.0,
            public: true,
        };
        assert_eq!(c.capacity_hits_per_sec(), 20_000.0);
        assert!((c.utilization(10_000.0) - 0.5).abs() < 1e-12);
        assert_eq!(c.utilization(-5.0), 0.0);
        assert!(c.utilization(30_000.0) > 1.0);
    }

    #[test]
    fn index_of_hub() {
        let set = ClusterSet::akamai_like_nine();
        assert_eq!(set.index_of_hub(HubId::NewYorkNy), Some(3));
        assert_eq!(set.index_of_hub(HubId::PortlandOr), None);
        assert_eq!(set.get(0).unwrap().label, "CA1");
        assert!(set.get(99).is_none());
    }

    #[test]
    #[should_panic(expected = "share hub")]
    fn duplicate_hub_rejected() {
        let c = |label: &str| Cluster {
            label: label.to_string(),
            hub: HubId::BostonMa,
            servers: 10,
            hits_per_server_per_sec: 200.0,
            public: true,
        };
        let _ = ClusterSet::new(vec![c("A"), c("B")]);
    }

    #[test]
    fn scaling_preserves_structure() {
        let set = ClusterSet::akamai_like_nine();
        let doubled = set.scaled(2.0);
        assert_eq!(doubled.len(), set.len());
        assert_eq!(doubled.total_servers(), set.total_servers() * 2);
        let tiny = set.scaled(1e-9);
        assert!(tiny.clusters().iter().all(|c| c.servers >= 1));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_scale_rejected() {
        let _ = ClusterSet::akamai_like_nine().scaled(0.0);
    }

    #[test]
    fn zero_capacity_cluster_has_zero_utilization() {
        let c = Cluster {
            label: "empty".into(),
            hub: HubId::BostonMa,
            servers: 0,
            hits_per_server_per_sec: 200.0,
            public: true,
        };
        assert_eq!(c.utilization(1000.0), 0.0);
    }
}
