//! CDN workload substrate for the `wattroute` workspace.
//!
//! The paper drives its simulations with 24 days of traffic data from
//! Akamai's public clusters: 5-minute samples of hits served per cluster,
//! a coarse geography of where the clients were (US states), estimates of
//! cluster capacity, and the 95th-percentile levels used for bandwidth
//! billing (§4). That data set is proprietary, so this crate provides a
//! synthetic equivalent with the same shape:
//!
//! * [`cluster`] — server clusters co-located with electricity-market hubs,
//!   with server counts and request capacities (an Akamai-like nine-cluster
//!   deployment is built in);
//! * [`trace`] — 5-minute-resolution traces of per-state client demand;
//! * [`synthetic`] — a seeded generator producing Akamai-like traffic:
//!   population-proportional state demand, local-time diurnal and weekly
//!   cycles, a turn-of-year dip, noise and flash crowds, scaled to the
//!   ~2 M hits/s global peak shown in Figure 14;
//! * [`mod@derive`] — the paper's own procedure (§6.1) for extending the 24-day
//!   trace to arbitrary horizons by averaging per (state, hour-of-week);
//! * [`bandwidth`] — 95/5 percentile computation and capacity estimation.
//!
//! # Example
//!
//! ```
//! use wattroute_workload::prelude::*;
//! use wattroute_market::time::HourRange;
//!
//! let clusters = ClusterSet::akamai_like_nine();
//! let config = SyntheticWorkloadConfig::default();
//! let trace = config.generate(HourRange::akamai_24_days());
//! assert_eq!(trace.num_steps(), 24 * 24 * 12);
//! let peak = trace.peak_us_hits_per_sec();
//! assert!(peak > 1.0e6, "US peak should be around 1.25M hits/s, got {peak}");
//! assert_eq!(clusters.len(), 9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bandwidth;
pub mod cluster;
pub mod derive;
pub mod hierarchy;
pub mod synthetic;
pub mod trace;

/// Convenient re-exports of the most commonly used items.
pub mod prelude {
    pub use crate::bandwidth::{percentile_95, BandwidthProfile};
    pub use crate::cluster::{Cluster, ClusterSet};
    pub use crate::derive::WeeklyProfile;
    pub use crate::hierarchy::{single_region_of, site_clusters, TierLoads};
    pub use crate::synthetic::SyntheticWorkloadConfig;
    pub use crate::trace::{Trace, TraceStep};
}

pub use prelude::*;
