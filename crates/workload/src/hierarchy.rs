//! Hierarchical deployments: trees of sites as routable cluster sets, and
//! conservation-checked per-tier load aggregation.
//!
//! The bridge between [`wattroute_geo::topology::Topology`] (the pure tree)
//! and the flat per-cluster world the simulator routes over:
//!
//! * [`site_clusters`] flattens a tree's sites, in site order, into a
//!   [`ClusterSet`] (several sites may share a hub);
//! * [`single_region_of`] goes the other way — it embeds a flat deployment
//!   as a trivial one-region tree, losslessly;
//! * [`TierLoads`] aggregates a per-site load vector up the tree, and can
//!   check that nothing was lost or invented at any tier.

use crate::cluster::{Cluster, ClusterSet};
use wattroute_geo::topology::{Topology, TopologyBuilder};

/// Flatten a topology's sites, in site order, into the [`ClusterSet`] the
/// simulator routes over. Sites in one metro share that metro's hub, so the
/// set is built with [`ClusterSet::with_shared_hubs`].
pub fn site_clusters(topology: &Topology) -> ClusterSet {
    let clusters = (0..topology.num_sites())
        .map(|s| Cluster {
            label: topology.site_labels()[s].clone(),
            hub: topology.site_hub(s),
            servers: topology.site_servers(s),
            hits_per_server_per_sec: topology.site_hits_per_server(s),
            public: true,
        })
        .collect();
    ClusterSet::with_shared_hubs(clusters)
}

/// Embed a flat deployment as a trivial one-region tree: one region (`US`),
/// one metro per cluster (labelled by the cluster label), one site per
/// metro, no tier caps. The embedding is lossless — replaying it through
/// the hierarchical core is bit-identical to the flat engine, and
/// [`Topology::is_flat_embedding`] holds for the result.
pub fn single_region_of(clusters: &ClusterSet) -> Topology {
    let mut builder = TopologyBuilder::new();
    builder.add_region("US");
    for cluster in clusters.clusters() {
        builder.add_metro(cluster.label.clone());
        builder.add_site(
            cluster.label.clone(),
            cluster.hub,
            cluster.servers,
            cluster.hits_per_server_per_sec,
        );
    }
    builder.build()
}

/// Per-tier load rollup: the given per-site loads aggregated to metros,
/// regions, and the deployment total, each in tree index order.
#[derive(Debug, Clone, PartialEq)]
pub struct TierLoads {
    /// Per-site loads, as given (hits/second).
    pub site: Vec<f64>,
    /// Per-metro sums over each metro's contiguous site range.
    pub metro: Vec<f64>,
    /// Per-region sums over each region's contiguous site range.
    pub region: Vec<f64>,
    /// Deployment-wide total.
    pub total: f64,
}

impl TierLoads {
    /// Aggregate per-site loads up the tree. Each tier sums its children's
    /// contiguous ranges in order, so the rollup is deterministic.
    ///
    /// # Panics
    /// Panics when `site_loads` does not have one entry per site.
    pub fn aggregate(topology: &Topology, site_loads: &[f64]) -> Self {
        assert_eq!(site_loads.len(), topology.num_sites(), "one load entry per site required");
        let metro: Vec<f64> = (0..topology.num_metros())
            .map(|m| {
                let (s0, s1) = topology.metro_sites(m);
                site_loads[s0..s1].iter().sum()
            })
            .collect();
        let region: Vec<f64> = (0..topology.num_regions())
            .map(|r| {
                let (m0, m1) = topology.region_metros(r);
                metro[m0..m1].iter().sum()
            })
            .collect();
        let total = region.iter().sum();
        Self { site: site_loads.to_vec(), metro, region, total }
    }

    /// The largest relative conservation error across all tiers: every
    /// metro, every region, and the total are re-summed directly from the
    /// site loads and compared against the rollup. Zero means every tier
    /// accounts for exactly what its children carry (up to float
    /// re-association, which this measures).
    pub fn max_conservation_error(&self, topology: &Topology) -> f64 {
        let rel = |sum: f64, direct: f64| {
            let scale = direct.abs().max(1.0);
            (sum - direct).abs() / scale
        };
        let mut worst: f64 = 0.0;
        for m in 0..topology.num_metros() {
            let (s0, s1) = topology.metro_sites(m);
            let direct: f64 = self.site[s0..s1].iter().sum();
            worst = worst.max(rel(self.metro[m], direct));
        }
        for r in 0..topology.num_regions() {
            let (s0, s1) = topology.region_sites(r);
            let direct: f64 = self.site[s0..s1].iter().sum();
            worst = worst.max(rel(self.region[r], direct));
        }
        let direct_total: f64 = self.site.iter().sum();
        worst.max(rel(self.total, direct_total))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_embedding_round_trips() {
        let nine = ClusterSet::akamai_like_nine();
        let tree = single_region_of(&nine);
        assert!(tree.is_flat_embedding());
        assert_eq!(tree.num_sites(), 9);
        let back = site_clusters(&tree);
        assert_eq!(back, nine);
    }

    #[test]
    fn site_clusters_preserves_order_and_capacity() {
        let tree = Topology::synthetic(11, 200);
        let clusters = site_clusters(&tree);
        assert_eq!(clusters.len(), 200);
        for (s, cluster) in clusters.clusters().iter().enumerate() {
            assert_eq!(cluster.label, tree.site_labels()[s]);
            assert_eq!(cluster.hub, tree.site_hub(s));
            assert_eq!(cluster.capacity_hits_per_sec(), tree.site_capacity_hits_per_sec(s));
        }
    }

    #[test]
    fn tier_loads_conserve() {
        let tree = Topology::synthetic(5, 137);
        let loads: Vec<f64> = (0..tree.num_sites()).map(|s| (s as f64) * 13.7 + 1.0).collect();
        let tiers = TierLoads::aggregate(&tree, &loads);
        assert_eq!(tiers.metro.len(), 29);
        assert_eq!(tiers.region.len(), 6);
        assert!(tiers.max_conservation_error(&tree) < 1e-12);
        let direct: f64 = loads.iter().sum();
        assert!((tiers.total - direct).abs() / direct < 1e-12);
    }

    #[test]
    #[should_panic(expected = "one load entry per site")]
    fn wrong_length_rejected() {
        let tree = Topology::synthetic(1, 10);
        let _ = TierLoads::aggregate(&tree, &[1.0, 2.0]);
    }
}
