//! The metric registry: name → handle interning, and frozen snapshots.
//!
//! Registration is the *only* locked path in the crate, and it is cold:
//! each distinct metric name is resolved once (call sites cache the
//! returned `&'static` handle, usually via the [`counter!`](crate::counter)
//! / [`gauge!`](crate::gauge) / [`span!`](crate::span) macros), after
//! which every mutation is lock-free. Handles live for the whole process
//! — the registry leaks one small allocation per name, which is exactly
//! the lifetime a process-wide metrics surface needs.

use crate::metrics::{Counter, Gauge, Histogram, HistogramSnapshot};
use std::collections::BTreeMap;
use std::sync::Mutex;

/// What a registered name resolves to.
#[derive(Debug, Clone, Copy)]
enum Handle {
    Counter(&'static Counter),
    Gauge(&'static Gauge),
    Histogram(&'static Histogram),
}

/// The process-wide metric table. Obtain the global instance through
/// [`telemetry()`](crate::telemetry); constructing private registries is
/// possible (tests do) but instrumented library code always talks to the
/// global one.
#[derive(Debug, Default)]
pub struct Registry {
    // BTreeMap so snapshots iterate in stable (sorted) name order — the
    // exposition formats are deterministic for a given set of metrics.
    inner: Mutex<BTreeMap<&'static str, Handle>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Resolve (registering on first use) the counter `name`.
    ///
    /// # Panics
    /// Panics if `name` is already registered as a different metric kind
    /// — two subsystems disagreeing about a name is a programming error.
    pub fn counter(&self, name: &'static str) -> &'static Counter {
        let mut inner = self.inner.lock().expect("registry lock");
        match inner.entry(name).or_insert_with(|| Handle::Counter(Box::leak(Box::default()))) {
            Handle::Counter(c) => c,
            other => panic!("metric '{name}' is already registered as {}", kind_name(other)),
        }
    }

    /// Resolve (registering on first use) the gauge `name`.
    ///
    /// # Panics
    /// Panics if `name` is already registered as a different metric kind.
    pub fn gauge(&self, name: &'static str) -> &'static Gauge {
        let mut inner = self.inner.lock().expect("registry lock");
        match inner.entry(name).or_insert_with(|| Handle::Gauge(Box::leak(Box::default()))) {
            Handle::Gauge(g) => g,
            other => panic!("metric '{name}' is already registered as {}", kind_name(other)),
        }
    }

    /// Resolve (registering on first use) the duration histogram `name`.
    ///
    /// # Panics
    /// Panics if `name` is already registered as a different metric kind.
    pub fn histogram(&self, name: &'static str) -> &'static Histogram {
        let mut inner = self.inner.lock().expect("registry lock");
        match inner.entry(name).or_insert_with(|| Handle::Histogram(Box::leak(Box::default()))) {
            Handle::Histogram(h) => h,
            other => panic!("metric '{name}' is already registered as {}", kind_name(other)),
        }
    }

    /// Freeze every registered metric into a [`RegistrySnapshot`], sorted
    /// by name. Counters and gauges are read with relaxed loads;
    /// histograms copy their bucket arrays. Registration that races the
    /// snapshot lands in the next one.
    pub fn snapshot(&self) -> RegistrySnapshot {
        let inner = self.inner.lock().expect("registry lock");
        let mut counters = Vec::new();
        let mut gauges = Vec::new();
        let mut histograms = Vec::new();
        for (&name, handle) in inner.iter() {
            match handle {
                Handle::Counter(c) => counters.push((name, c.get())),
                Handle::Gauge(g) => gauges.push((name, g.get())),
                Handle::Histogram(h) => histograms.push((name, h.snapshot())),
            }
        }
        RegistrySnapshot { counters, gauges, histograms }
    }
}

fn kind_name(handle: &Handle) -> &'static str {
    match handle {
        Handle::Counter(_) => "a counter",
        Handle::Gauge(_) => "a gauge",
        Handle::Histogram(_) => "a histogram",
    }
}

/// A frozen, name-sorted copy of every registered metric — what the JSON
/// and Prometheus-style expositions are rendered from.
#[derive(Debug, Clone, PartialEq)]
pub struct RegistrySnapshot {
    /// `(name, value)` for every counter, sorted by name.
    pub counters: Vec<(&'static str, u64)>,
    /// `(name, value)` for every gauge, sorted by name.
    pub gauges: Vec<(&'static str, f64)>,
    /// `(name, snapshot)` for every histogram, sorted by name.
    pub histograms: Vec<(&'static str, HistogramSnapshot)>,
}

impl RegistrySnapshot {
    /// Look up a counter value by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|(n, _)| *n == name).map(|(_, v)| *v)
    }

    /// Look up a gauge value by name.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(n, _)| *n == name).map(|(_, v)| *v)
    }

    /// Look up a histogram snapshot by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|(n, _)| *n == name).map(|(_, h)| h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_returns_the_same_handle() {
        let r = Registry::new();
        let a = r.counter("x.y.z");
        let b = r.counter("x.y.z");
        assert!(std::ptr::eq(a, b), "same name must intern to the same counter");
        a.inc();
        assert_eq!(b.get(), 1);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_conflict_panics() {
        let r = Registry::new();
        let _ = r.counter("conflict.metric");
        let _ = r.gauge("conflict.metric");
    }

    #[test]
    fn snapshot_is_sorted_and_complete() {
        let r = Registry::new();
        r.counter("b.counter").add(2);
        r.gauge("a.gauge").set(0.5);
        r.histogram("c.hist").record(1.0);
        let s = r.snapshot();
        assert_eq!(s.counter("b.counter"), Some(2));
        assert_eq!(s.gauge("a.gauge"), Some(0.5));
        assert_eq!(s.histogram("c.hist").unwrap().count, 1);
        assert_eq!(s.counter("missing"), None);
        let names: Vec<_> = s.counters.iter().map(|(n, _)| *n).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted);
    }
}
