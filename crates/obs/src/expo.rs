//! Rendering a [`RegistrySnapshot`] as text: the Prometheus-style
//! exposition the daemon's `metrics` verb serves, and the JSON dump
//! `obs_report` builds `BENCH_*.json` entries from.
//!
//! Naming: registry names are dotted `subsystem.phase.metric` paths; the
//! exposition mangles them to `wattroute_subsystem_phase_metric`, with
//! the conventional unit/kind suffixes appended — `_total` for counters,
//! `_seconds` for histograms (every registry histogram is a duration
//! histogram), gauges bare.

use crate::metrics::HistogramSnapshot;
use crate::registry::RegistrySnapshot;
use std::fmt::Write;

/// Escape a string for embedding in a JSON double-quoted literal.
pub(crate) fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Format an `f64` for JSON: finite shortest round-trip representation;
/// non-finite values (unrepresentable in JSON) become `null`.
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Mangle a dotted metric name into a Prometheus-style identifier:
/// `engine.tick.realloc` → `wattroute_engine_tick_realloc`.
pub fn prometheus_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 10);
    out.push_str("wattroute_");
    for c in name.chars() {
        out.push(match c {
            'a'..='z' | 'A'..='Z' | '0'..='9' => c,
            _ => '_',
        });
    }
    out
}

/// Render the snapshot as a Prometheus-style text exposition
/// (`# TYPE` comments, `_total`/`_seconds` suffixes, cumulative
/// `_bucket{le="..."}` series per histogram). Deterministic: metrics
/// appear in sorted name order, counters first, then gauges, then
/// histograms.
pub fn prometheus(snapshot: &RegistrySnapshot) -> String {
    let mut out = String::new();
    for (name, value) in &snapshot.counters {
        let id = prometheus_name(name) + "_total";
        let _ = writeln!(out, "# TYPE {id} counter");
        let _ = writeln!(out, "{id} {value}");
    }
    for (name, value) in &snapshot.gauges {
        let id = prometheus_name(name);
        let _ = writeln!(out, "# TYPE {id} gauge");
        let _ = writeln!(out, "{id} {}", json_f64(*value));
    }
    for (name, hist) in &snapshot.histograms {
        let id = prometheus_name(name) + "_seconds";
        let _ = writeln!(out, "# TYPE {id} histogram");
        let mut cum = hist.underflow;
        let _ = writeln!(out, "{id}_bucket{{le=\"{}\"}} {cum}", json_f64(hist.lo));
        for (i, &c) in hist.counts.iter().enumerate() {
            cum += c;
            let _ = writeln!(out, "{id}_bucket{{le=\"{}\"}} {cum}", json_f64(hist.bucket_hi(i)));
        }
        let _ = writeln!(out, "{id}_bucket{{le=\"+Inf\"}} {}", hist.count);
        let _ = writeln!(out, "{id}_sum {}", json_f64(hist.sum));
        let _ = writeln!(out, "{id}_count {}", hist.count);
    }
    out
}

/// One histogram as a JSON object: count, sum, mean, and the p50/p95/p99
/// extracted from the bucket counts.
fn histogram_json(hist: &HistogramSnapshot) -> String {
    let pct = |p: f64| hist.percentile(p).map_or("null".to_string(), json_f64);
    format!(
        "{{\"count\":{},\"sum_secs\":{},\"mean_secs\":{},\"p50_secs\":{},\"p95_secs\":{},\"p99_secs\":{}}}",
        hist.count,
        json_f64(hist.sum),
        hist.mean().map_or("null".to_string(), json_f64),
        pct(50.0),
        pct(95.0),
        pct(99.0),
    )
}

/// Render the snapshot as one JSON object:
///
/// ```json
/// {"counters":{"market.billing_matrix.builds":3},
///  "gauges":{"sweep.artifact_cache.hit_rate":0.5},
///  "histograms":{"engine.tick":{"count":2016,"sum_secs":0.02,
///    "mean_secs":1.0e-5,"p50_secs":9.1e-6,"p95_secs":1.4e-5,"p99_secs":2.8e-5}}}
/// ```
///
/// Keys are the raw dotted registry names, sorted; values for
/// histograms carry the derived summary, not the raw buckets (the
/// Prometheus exposition is the bucket-level view).
pub fn snapshot_json(snapshot: &RegistrySnapshot) -> String {
    let mut out = String::from("{\"counters\":{");
    for (i, (name, value)) in snapshot.counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\":{}", escape_json(name), value);
    }
    out.push_str("},\"gauges\":{");
    for (i, (name, value)) in snapshot.gauges.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\":{}", escape_json(name), json_f64(*value));
    }
    out.push_str("},\"histograms\":{");
    for (i, (name, hist)) in snapshot.histograms.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\":{}", escape_json(name), histogram_json(hist));
    }
    out.push_str("}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Histogram;
    use crate::registry::Registry;

    fn sample_registry() -> Registry {
        let r = Registry::new();
        r.counter("daemon.requests.stats").add(3);
        r.gauge("montecarlo.worker_utilization").set(0.875);
        let h: &Histogram = r.histogram("engine.tick");
        h.record(1.0e-5);
        h.record(2.0e-5);
        r
    }

    #[test]
    fn prometheus_exposition_shape() {
        let text = prometheus(&sample_registry().snapshot());
        assert!(text.contains("# TYPE wattroute_daemon_requests_stats_total counter"));
        assert!(text.contains("wattroute_daemon_requests_stats_total 3"));
        assert!(text.contains("# TYPE wattroute_montecarlo_worker_utilization gauge"));
        assert!(text.contains("wattroute_montecarlo_worker_utilization 0.875"));
        assert!(text.contains("# TYPE wattroute_engine_tick_seconds histogram"));
        assert!(text.contains("wattroute_engine_tick_seconds_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("wattroute_engine_tick_seconds_count 2"));
        // Cumulative buckets never decrease.
        let mut last = 0u64;
        for line in text.lines().filter(|l| l.contains("_bucket{le=")) {
            let v: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(v >= last, "bucket counts must be cumulative: {line}");
            last = v;
        }
    }

    #[test]
    fn snapshot_json_is_valid_and_complete() {
        let json = snapshot_json(&sample_registry().snapshot());
        assert!(json.contains("\"daemon.requests.stats\":3"));
        assert!(json.contains("\"montecarlo.worker_utilization\":0.875"));
        assert!(json.contains("\"engine.tick\":{\"count\":2"));
        // Braces balance (cheap structural sanity; full parsing happens in
        // the bench harness, which has a real JSON parser).
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert!(json.starts_with('{') && json.ends_with('}'));
    }

    #[test]
    fn name_mangling() {
        assert_eq!(prometheus_name("engine.tick.realloc"), "wattroute_engine_tick_realloc");
        assert_eq!(prometheus_name("a-b c"), "wattroute_a_b_c");
    }

    #[test]
    fn json_escaping() {
        assert_eq!(escape_json("plain"), "plain");
        assert_eq!(escape_json("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }
}
