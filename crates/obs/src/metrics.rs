//! The three metric primitives: monotonic counters, gauges, and
//! fixed-boundary log-scale histograms.
//!
//! All three are lock-free: every mutation is a handful of relaxed atomic
//! operations, so instrumented hot paths never contend on a lock and
//! never allocate. Handles are `&'static` (the registry leaks one small
//! allocation per distinct metric name for the life of the process), so
//! call sites can cache them in a `OnceLock` — the [`counter!`](crate::counter),
//! [`gauge!`](crate::gauge) and [`span!`](crate::span) macros do exactly
//! that.

use std::sync::atomic::{AtomicU64, Ordering};
use wattroute_stats::quantiles::quantile_sorted;

/// A monotonic event counter.
///
/// Counters are *always live* — they count whether or not telemetry is
/// enabled — because they are the substrate of the compile-count test
/// pins (`BillingMatrix::build_count` and friends) and cost one relaxed
/// `fetch_add` on a cold path. Hot-path instrumentation that must be
/// free when telemetry is off belongs behind
/// [`Telemetry::enabled`](crate::Telemetry::enabled) instead.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A fresh counter at zero.
    pub const fn new() -> Self {
        Self { value: AtomicU64::new(0) }
    }

    /// Add one.
    pub fn inc(&self) {
        self.value.fetch_add(1, Ordering::Relaxed);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A last-value-wins gauge holding one `f64` (stored as raw bits in an
/// `AtomicU64`, so `set` is a single relaxed store).
#[derive(Debug)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Default for Gauge {
    fn default() -> Self {
        Self::new()
    }
}

impl Gauge {
    /// A fresh gauge at `0.0`.
    pub const fn new() -> Self {
        Self { bits: AtomicU64::new(0) }
    }

    /// Replace the value.
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// Number of log₂ buckets every registry histogram carries.
pub const HISTOGRAM_BUCKETS: usize = 33;

/// Lower edge of bucket 0 in seconds (1 µs). Bucket `i` covers
/// `[LO·2^i, LO·2^(i+1))`, so 33 buckets span 1 µs … ~2.4 h — every
/// duration this codebase produces, from a single engine tick to a
/// 1000-site two-year replay.
pub const HISTOGRAM_LO_SECONDS: f64 = 1.0e-6;

/// A fixed-boundary log₂-scale histogram of durations in seconds.
///
/// Boundaries are fixed at construction (`lo · 2^i`), so recording is
/// branch-light and lock-free: one `log2`, two relaxed `fetch_add`s, and
/// a CAS loop for the running sum. Observations below `lo` land in an
/// explicit underflow bucket and observations at or above the top edge
/// (plus non-finite values) in an overflow bucket — nothing is silently
/// dropped. Percentiles are extracted from a frozen
/// [`HistogramSnapshot`], interpolating inside the covering bucket with
/// the same R-7 rule `wattroute_stats` uses everywhere else.
#[derive(Debug)]
pub struct Histogram {
    lo: f64,
    buckets: Box<[AtomicU64]>,
    underflow: AtomicU64,
    overflow: AtomicU64,
    count: AtomicU64,
    sum_bits: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::duration()
    }
}

impl Histogram {
    /// The standard duration histogram: [`HISTOGRAM_BUCKETS`] log₂
    /// buckets from [`HISTOGRAM_LO_SECONDS`].
    pub fn duration() -> Self {
        Self::log2(HISTOGRAM_LO_SECONDS, HISTOGRAM_BUCKETS)
    }

    /// A histogram with `buckets` log₂ buckets, the first covering
    /// `[lo, 2·lo)`.
    ///
    /// # Panics
    /// Panics if `lo` is not positive and finite or `buckets` is zero —
    /// programming errors, not data conditions.
    pub fn log2(lo: f64, buckets: usize) -> Self {
        assert!(lo > 0.0 && lo.is_finite(), "histogram lower edge must be positive and finite");
        assert!(buckets > 0, "histogram needs at least one bucket");
        Self {
            lo,
            buckets: (0..buckets).map(|_| AtomicU64::new(0)).collect(),
            underflow: AtomicU64::new(0),
            overflow: AtomicU64::new(0),
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0),
        }
    }

    /// Lower edge of bucket 0.
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Number of log₂ buckets (excluding under/overflow).
    pub fn buckets(&self) -> usize {
        self.buckets.len()
    }

    /// Upper edge of bucket `i` (`lo · 2^(i+1)`).
    pub fn bucket_hi(&self, i: usize) -> f64 {
        self.lo * 2f64.powi(i as i32 + 1)
    }

    /// Record one observation (a duration in seconds).
    pub fn record(&self, v: f64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        if !v.is_finite() {
            self.overflow.fetch_add(1, Ordering::Relaxed);
            return;
        }
        // Running sum of a f64 behind an AtomicU64: CAS loop. Contention
        // is negligible (histograms are per-phase, writers are few), so
        // the loop almost always succeeds first try.
        let mut cur = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match self.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(actual) => cur = actual,
            }
        }
        if v < self.lo {
            self.underflow.fetch_add(1, Ordering::Relaxed);
        } else {
            let idx = (v / self.lo).log2().floor() as usize;
            match self.buckets.get(idx) {
                Some(bucket) => bucket.fetch_add(1, Ordering::Relaxed),
                None => self.overflow.fetch_add(1, Ordering::Relaxed),
            };
        }
    }

    /// Total observations recorded (including under/overflow).
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all finite observations, in seconds.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }

    /// Freeze the current state into a consistent-enough copy for
    /// reporting. Concurrent recorders may land between the individual
    /// loads (snapshots are diagnostics, not transactions); each loaded
    /// value is itself exact.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            lo: self.lo,
            counts: self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
            underflow: self.underflow.load(Ordering::Relaxed),
            overflow: self.overflow.load(Ordering::Relaxed),
            count: self.count(),
            sum: self.sum(),
        }
    }
}

/// A frozen copy of a [`Histogram`], the unit percentile extraction and
/// the exposition formats work from.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Lower edge of bucket 0, seconds.
    pub lo: f64,
    /// Count per log₂ bucket.
    pub counts: Vec<u64>,
    /// Observations below `lo`.
    pub underflow: u64,
    /// Observations at/above the top edge, plus non-finite ones.
    pub overflow: u64,
    /// Total observations.
    pub count: u64,
    /// Sum of finite observations, seconds.
    pub sum: f64,
}

impl HistogramSnapshot {
    /// Upper edge of bucket `i`.
    pub fn bucket_hi(&self, i: usize) -> f64 {
        self.lo * 2f64.powi(i as i32 + 1)
    }

    /// Mean observation in seconds (`None` when empty).
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }

    /// The `p`-th percentile (0–100) in seconds, reconstructed from the
    /// bucket counts: the covering bucket is found by cumulative count
    /// and the value interpolated between its edges with the R-7 rule
    /// ([`wattroute_stats::quantiles::quantile_sorted`]). Resolution is
    /// therefore one log₂ bucket (a factor-of-two band) — ample for the
    /// p50/p95/p99 trend lines this layer exists to expose. `None` when
    /// empty or `p` is out of range.
    pub fn percentile(&self, p: f64) -> Option<f64> {
        if !(0.0..=100.0).contains(&p) || self.count == 0 {
            return None;
        }
        let target = p / 100.0 * self.count as f64;
        let mut cum = self.underflow as f64;
        if self.underflow > 0 && target <= cum {
            // Inside the underflow bucket: all we know is [0, lo).
            return Some(quantile_sorted(&[0.0, self.lo], target / self.underflow as f64));
        }
        for (i, &c) in self.counts.iter().enumerate() {
            let next = cum + c as f64;
            if target <= next && c > 0 {
                let frac = (target - cum) / c as f64;
                let lo = self.lo * 2f64.powi(i as i32);
                return Some(quantile_sorted(&[lo, self.bucket_hi(i)], frac));
            }
            cum = next;
        }
        // Overflow bucket: unbounded above; report its lower edge.
        Some(self.lo * 2f64.powi(self.counts.len() as i32))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
    }

    #[test]
    fn gauge_holds_last_value() {
        let g = Gauge::new();
        assert_eq!(g.get(), 0.0);
        g.set(0.75);
        assert_eq!(g.get(), 0.75);
        g.set(-1.5);
        assert_eq!(g.get(), -1.5);
    }

    #[test]
    fn histogram_buckets_by_powers_of_two() {
        let h = Histogram::log2(1.0, 4); // buckets [1,2) [2,4) [4,8) [8,16)
        for v in [1.0, 1.99, 2.0, 4.0, 15.9] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.counts, vec![2, 1, 1, 1]);
        assert_eq!(s.underflow, 0);
        assert_eq!(s.overflow, 0);
        assert_eq!(s.count, 5);
        assert!((s.sum - (1.0 + 1.99 + 2.0 + 4.0 + 15.9)).abs() < 1e-12);
    }

    #[test]
    fn histogram_under_and_overflow() {
        let h = Histogram::log2(1.0, 2); // covers [1, 4)
        h.record(0.5);
        h.record(4.0);
        h.record(f64::NAN);
        let s = h.snapshot();
        assert_eq!(s.underflow, 1);
        assert_eq!(s.overflow, 2);
        assert_eq!(s.count, 3);
    }

    #[test]
    fn percentiles_land_in_the_right_bucket() {
        let h = Histogram::log2(1.0, 10);
        // 99 values in [1,2), one in [512, 1024).
        for _ in 0..99 {
            h.record(1.5);
        }
        h.record(600.0);
        let s = h.snapshot();
        let p50 = s.percentile(50.0).unwrap();
        assert!((1.0..2.0).contains(&p50), "p50 = {p50}");
        let p99 = s.percentile(99.0).unwrap();
        assert!(p99 < 2.0 + 1e-9, "p99 covers the 99 small values, got {p99}");
        let p100 = s.percentile(100.0).unwrap();
        assert!((512.0..=1024.0).contains(&p100), "max lands in the top bucket, got {p100}");
    }

    #[test]
    fn percentile_edge_cases() {
        let h = Histogram::duration();
        let s = h.snapshot();
        assert_eq!(s.percentile(50.0), None, "empty histogram has no percentiles");
        h.record(1e-9); // below lo: underflow
        let s = h.snapshot();
        let p = s.percentile(50.0).unwrap();
        assert!((0.0..HISTOGRAM_LO_SECONDS).contains(&p), "underflow interpolates in [0, lo)");
        assert_eq!(s.percentile(101.0), None);
        assert_eq!(s.percentile(-1.0), None);
    }

    #[test]
    fn duration_histogram_covers_the_workloads() {
        let h = Histogram::duration();
        assert!(h.bucket_hi(h.buckets() - 1) > 7200.0, "top edge must exceed two hours");
        h.record(5e-6);
        h.record(7.0);
        let s = h.snapshot();
        assert_eq!(s.underflow + s.overflow, 0);
        assert_eq!(s.count, 2);
        let mean = s.mean().unwrap();
        assert!((mean - 3.5000025).abs() < 1e-6);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = Histogram::duration();
        let c = Counter::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..1000 {
                        h.record(1e-3);
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(h.count(), 4000);
        assert_eq!(c.get(), 4000);
        assert!((h.sum() - 4.0).abs() < 1e-9);
    }
}
