//! The optional structured trace sink: one JSON object per line.
//!
//! When a [`TraceWriter`] is installed, every span close appends an
//! event line, giving a replayable phase-level timeline of a run:
//!
//! ```json
//! {"seq":17,"t_us":83211,"kind":"span","name":"engine.tick.realloc","dur_ns":52100}
//! ```
//!
//! `t_us` is microseconds since the writer was installed (monotonic
//! clock — wall-clock timestamps would break run-to-run diffing), `seq`
//! a process-wide event counter. The sink costs one acquire load per
//! span when *not* installed; when installed, writes go through a
//! buffered file behind a mutex, which is exactly as expensive as it
//! sounds — tracing is a diagnostic mode, not a production default, and
//! the telemetry-transparency property test pins that it still never
//! changes simulated results.

use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Fast-path flag: is a writer installed? Checked before touching the
/// mutex so the common no-sink case costs one load.
static TRACE_ACTIVE: AtomicBool = AtomicBool::new(false);

static TRACE: Mutex<Option<TraceWriter>> = Mutex::new(None);

/// A JSONL event sink over a buffered file.
#[derive(Debug)]
pub struct TraceWriter {
    out: BufWriter<File>,
    epoch: Instant,
    seq: u64,
}

impl TraceWriter {
    /// Create a writer truncating `path`.
    ///
    /// # Errors
    /// Returns the underlying file-creation error.
    pub fn create(path: &Path) -> io::Result<Self> {
        Ok(Self { out: BufWriter::new(File::create(path)?), epoch: Instant::now(), seq: 0 })
    }

    fn write_span(&mut self, name: &str, secs: f64) -> io::Result<()> {
        self.seq += 1;
        let t_us = self.epoch.elapsed().as_micros();
        let dur_ns = (secs * 1.0e9).round() as u64;
        writeln!(
            self.out,
            "{{\"seq\":{},\"t_us\":{},\"kind\":\"span\",\"name\":\"{}\",\"dur_ns\":{}}}",
            self.seq,
            t_us,
            crate::expo::escape_json(name),
            dur_ns
        )
    }
}

/// Install a trace sink writing to `path` (truncated). Replaces any
/// previously installed writer, flushing it first.
///
/// # Errors
/// Returns the file-creation error; on error no writer is installed.
pub fn install(path: &Path) -> io::Result<()> {
    let writer = TraceWriter::create(path)?;
    let mut slot = TRACE.lock().expect("trace lock");
    if let Some(mut old) = slot.take() {
        let _ = old.out.flush();
    }
    *slot = Some(writer);
    TRACE_ACTIVE.store(true, Ordering::Release);
    Ok(())
}

/// Flush and remove the installed trace sink, if any.
pub fn uninstall() {
    TRACE_ACTIVE.store(false, Ordering::Release);
    let mut slot = TRACE.lock().expect("trace lock");
    if let Some(mut writer) = slot.take() {
        let _ = writer.out.flush();
    }
}

/// Append one span event, if a writer is installed. Write errors are
/// swallowed after disabling the sink — telemetry must never turn a
/// full disk into a routing failure.
pub(crate) fn emit_span(name: &str, secs: f64) {
    if !TRACE_ACTIVE.load(Ordering::Acquire) {
        return;
    }
    let mut slot = TRACE.lock().expect("trace lock");
    if let Some(writer) = slot.as_mut() {
        if writer.write_span(name, secs).is_err() {
            TRACE_ACTIVE.store(false, Ordering::Release);
            *slot = None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_append_jsonl_events() {
        let path = std::env::temp_dir().join(format!("wr_obs_trace_{}.jsonl", std::process::id()));
        install(&path).expect("install trace sink");
        emit_span("unit.test.span", 0.001);
        emit_span("unit.test.span", 0.002);
        uninstall();
        let text = std::fs::read_to_string(&path).expect("trace file exists");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"seq\":1"));
        assert!(lines[0].contains("\"name\":\"unit.test.span\""));
        assert!(lines[0].contains("\"dur_ns\":1000000"));
        assert!(lines[1].contains("\"seq\":2"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn emit_without_writer_is_a_no_op() {
        uninstall();
        emit_span("nobody.listening", 1.0); // must not panic
    }
}
