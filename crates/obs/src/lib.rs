//! `wattroute_obs` — the zero-cost telemetry layer.
//!
//! Every performance claim this repo makes (tick throughput, sweep cell
//! latency, Monte Carlo paths/second, daemon request latency) flows
//! through one process-wide surface: a lock-free metrics registry of
//! monotonic [`Counter`]s, [`Gauge`]s and log₂-bucketed duration
//! [`Histogram`]s, fed by [`Span`] timers in the instrumented
//! subsystems, rendered as a Prometheus-style text exposition (the
//! `routed` daemon's `metrics` verb) or a JSON dump (the `obs_report`
//! bench harness). See `docs/observability.md`.
//!
//! # Cost model
//!
//! * **Telemetry off** (the default): every hot-path instrumentation
//!   site is guarded by [`Telemetry::enabled`] — one relaxed atomic
//!   load — and opens no span, takes no timestamp, records nothing.
//!   Simulated results are byte-identical either way (telemetry never
//!   touches engine state; pinned by the transparency property test).
//! * **Telemetry on**: spans cost two `Instant::now` calls plus a
//!   lock-free histogram record. The `telemetry_overhead` criterion
//!   bench and the CI gate hold the end-to-end replay overhead under
//!   5%.
//! * **Counters are always live** regardless of the flag: they are cold
//!   (artifact compiles, daemon requests) and the compile-count test
//!   pins (`BillingMatrix::build_count` et al.) rely on them counting
//!   unconditionally.
//!
//! # Naming
//!
//! Dotted `subsystem.phase.metric` paths, e.g. `engine.tick.realloc`,
//! `sweep.artifact_cache.hits`, `daemon.requests.stats`. The exposition
//! mangles these to `wattroute_*` identifiers with `_total`/`_seconds`
//! suffixes (see [`expo::prometheus_name`]).
//!
//! # Usage
//!
//! ```
//! use wattroute_obs::{telemetry, Telemetry};
//!
//! Telemetry::enable();
//! {
//!     let _span = wattroute_obs::span!("example.phase");
//!     // ... timed work ...
//! }
//! wattroute_obs::counter!("example.events").inc();
//! let snapshot = telemetry().snapshot();
//! assert_eq!(snapshot.counter("example.events"), Some(1));
//! assert!(telemetry().prometheus().contains("wattroute_example_phase_seconds_count"));
//! Telemetry::disable();
//! ```

#![warn(missing_docs)]

pub mod expo;
mod metrics;
mod registry;
mod span;
mod trace;

pub use metrics::{
    Counter, Gauge, Histogram, HistogramSnapshot, HISTOGRAM_BUCKETS, HISTOGRAM_LO_SECONDS,
};
pub use registry::{Registry, RegistrySnapshot};
pub use span::Span;
pub use trace::TraceWriter;

use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

/// Environment variable consulted by [`Telemetry::enable_from_env`]:
/// `1`, `true`, `on` or `yes` (case-insensitive) enable telemetry.
pub const TELEMETRY_ENV: &str = "WATTROUTE_TELEMETRY";

static ENABLED: AtomicBool = AtomicBool::new(false);

/// The process-wide telemetry handle: the global flag, the global
/// registry, the trace sink, and the exposition renderers. All methods
/// are callable from any thread.
#[derive(Debug)]
pub struct Telemetry {
    registry: Registry,
}

/// The global [`Telemetry`] instance.
pub fn telemetry() -> &'static Telemetry {
    static GLOBAL: OnceLock<Telemetry> = OnceLock::new();
    GLOBAL.get_or_init(|| Telemetry { registry: Registry::new() })
}

impl Telemetry {
    /// Is hot-path instrumentation (spans, phase timers) live? One
    /// relaxed load — the entire cost of disabled telemetry on the hot
    /// path.
    #[inline]
    pub fn enabled() -> bool {
        ENABLED.load(Ordering::Relaxed)
    }

    /// Turn hot-path instrumentation on.
    pub fn enable() {
        ENABLED.store(true, Ordering::Relaxed);
    }

    /// Turn hot-path instrumentation off. Registered metrics keep their
    /// accumulated values; only new span timings stop being recorded.
    pub fn disable() {
        ENABLED.store(false, Ordering::Relaxed);
    }

    /// Enable telemetry if the [`TELEMETRY_ENV`] environment variable is
    /// set to a truthy value; returns whether telemetry is now enabled.
    /// The harness binaries call this on startup so CI can flip the
    /// whole figure pipeline to instrumented mode without new flags.
    pub fn enable_from_env() -> bool {
        if let Ok(v) = std::env::var(TELEMETRY_ENV) {
            if matches!(v.to_ascii_lowercase().as_str(), "1" | "true" | "on" | "yes") {
                Self::enable();
            }
        }
        Self::enabled()
    }

    /// Resolve (registering on first use) a monotonic counter. Prefer
    /// the [`counter!`] macro on hot call sites — it caches this lookup.
    pub fn counter(&self, name: &'static str) -> &'static Counter {
        self.registry.counter(name)
    }

    /// Resolve (registering on first use) a gauge. Prefer the
    /// [`gauge!`] macro on hot call sites.
    pub fn gauge(&self, name: &'static str) -> &'static Gauge {
        self.registry.gauge(name)
    }

    /// Resolve (registering on first use) a duration histogram. Prefer
    /// the [`span!`] macro for timing scopes.
    pub fn histogram(&self, name: &'static str) -> &'static Histogram {
        self.registry.histogram(name)
    }

    /// Freeze every registered metric into a [`RegistrySnapshot`].
    pub fn snapshot(&self) -> RegistrySnapshot {
        self.registry.snapshot()
    }

    /// The registry as one JSON object (counters, gauges, histogram
    /// summaries with p50/p95/p99) — the payload `obs_report` builds
    /// `BENCH_*.json` entries from. See [`expo::snapshot_json`].
    pub fn snapshot_json(&self) -> String {
        expo::snapshot_json(&self.snapshot())
    }

    /// The registry as a Prometheus-style text exposition — the payload
    /// of the daemon's `metrics` verb. See [`expo::prometheus`].
    pub fn prometheus(&self) -> String {
        expo::prometheus(&self.snapshot())
    }

    /// Install the JSONL trace sink at `path` (truncated): from now on
    /// every span close appends one event line.
    ///
    /// # Errors
    /// Returns the file-creation error; on error no sink is installed.
    pub fn trace_to(path: &Path) -> io::Result<()> {
        trace::install(path)
    }

    /// Flush and remove the trace sink, if one is installed.
    pub fn trace_close() {
        trace::uninstall();
    }
}

/// Resolve a counter by literal name, caching the registry lookup at the
/// call site: `wattroute_obs::counter!("daemon.requests.stats").inc()`.
/// After the first call the expansion is one `OnceLock` load.
#[macro_export]
macro_rules! counter {
    ($name:literal) => {{
        static __WR_OBS_COUNTER: ::std::sync::OnceLock<&'static $crate::Counter> =
            ::std::sync::OnceLock::new();
        *__WR_OBS_COUNTER.get_or_init(|| $crate::telemetry().counter($name))
    }};
}

/// Resolve a gauge by literal name, caching the registry lookup at the
/// call site: `wattroute_obs::gauge!("montecarlo.workers").set(4.0)`.
#[macro_export]
macro_rules! gauge {
    ($name:literal) => {{
        static __WR_OBS_GAUGE: ::std::sync::OnceLock<&'static $crate::Gauge> =
            ::std::sync::OnceLock::new();
        *__WR_OBS_GAUGE.get_or_init(|| $crate::telemetry().gauge($name))
    }};
}

/// Resolve a duration histogram by literal name, caching the registry
/// lookup at the call site.
#[macro_export]
macro_rules! histogram {
    ($name:literal) => {{
        static __WR_OBS_HISTOGRAM: ::std::sync::OnceLock<&'static $crate::Histogram> =
            ::std::sync::OnceLock::new();
        *__WR_OBS_HISTOGRAM.get_or_init(|| $crate::telemetry().histogram($name))
    }};
}

/// Open a [`Span`] timing the enclosing scope onto the named duration
/// histogram: `let _span = wattroute_obs::span!("engine.tick");`.
///
/// When telemetry is disabled this costs exactly one relaxed atomic
/// load and returns an inert span — no timestamp, no registry lookup,
/// nothing recorded on drop. When enabled, the registry lookup is
/// cached at the call site after the first hit.
#[macro_export]
macro_rules! span {
    ($name:literal) => {
        if $crate::Telemetry::enabled() {
            $crate::Span::active($name, $crate::histogram!($name))
        } else {
            $crate::Span::disabled()
        }
    };
}

#[cfg(test)]
pub(crate) fn test_guard() -> std::sync::MutexGuard<'static, ()> {
    // Tests that toggle the global enabled flag or the trace sink must
    // not interleave; everything else is lock-free and order-free.
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_by_default_and_toggleable() {
        let _guard = test_guard();
        Telemetry::disable();
        assert!(!Telemetry::enabled());
        Telemetry::enable();
        assert!(Telemetry::enabled());
        Telemetry::disable();
    }

    #[test]
    fn macros_intern_one_handle_per_name() {
        let a = counter!("lib.test.counter");
        let b = telemetry().counter("lib.test.counter");
        assert!(std::ptr::eq(a, b));
        a.inc();
        assert_eq!(telemetry().snapshot().counter("lib.test.counter"), Some(b.get()));
    }

    #[test]
    fn span_macro_is_inert_when_disabled() {
        let _guard = test_guard();
        Telemetry::disable();
        {
            let span = span!("lib.test.inert_span");
            assert!(!span.is_active());
        }
        // The histogram may not even be registered: the disabled arm
        // never touches the registry.
        Telemetry::enable();
        {
            let span = span!("lib.test.inert_span");
            assert!(span.is_active());
        }
        Telemetry::disable();
        let snap = telemetry().snapshot();
        assert_eq!(snap.histogram("lib.test.inert_span").map(|h| h.count), Some(1));
    }

    #[test]
    fn spans_feed_trace_sink_when_installed() {
        let _guard = test_guard();
        let path =
            std::env::temp_dir().join(format!("wr_obs_lib_trace_{}.jsonl", std::process::id()));
        Telemetry::enable();
        Telemetry::trace_to(&path).expect("install sink");
        {
            let _span = span!("lib.test.traced_span");
        }
        Telemetry::trace_close();
        Telemetry::disable();
        let text = std::fs::read_to_string(&path).expect("trace file");
        assert!(text.contains("\"name\":\"lib.test.traced_span\""), "got: {text}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn enable_from_env_respects_the_variable() {
        let _guard = test_guard();
        Telemetry::disable();
        // SAFETY(test-only): no other thread reads the environment here
        // (the guard serializes every env-touching test in this binary).
        std::env::set_var(TELEMETRY_ENV, "0");
        assert!(!Telemetry::enable_from_env());
        std::env::set_var(TELEMETRY_ENV, "1");
        assert!(Telemetry::enable_from_env());
        std::env::remove_var(TELEMETRY_ENV);
        Telemetry::disable();
    }
}
