//! Lightweight span timers: time a scope, record the duration into a
//! histogram on drop, and optionally emit a structured trace event.

use crate::metrics::Histogram;
use crate::trace;
use crate::Telemetry;
use std::time::Instant;

/// A scope timer. While a `Span` is alive the phase is "open"; dropping
/// it records the elapsed wall time (seconds) into the phase's duration
/// histogram and, when a [`TraceWriter`](crate::TraceWriter) is
/// installed, appends one JSONL event.
///
/// A span obtained while telemetry is disabled is *inert*: it holds no
/// timestamp (no `Instant::now` call was made) and its drop does
/// nothing. The [`span!`](crate::span) macro produces inert spans behind
/// a single relaxed atomic load, which is the entire hot-path cost of
/// disabled telemetry.
#[derive(Debug)]
#[must_use = "a span records on drop; binding it to _ drops it immediately"]
pub struct Span {
    active: Option<ActiveSpan>,
}

#[derive(Debug)]
struct ActiveSpan {
    name: &'static str,
    histogram: &'static Histogram,
    start: Instant,
}

impl Span {
    /// Open a span by name, resolving the histogram through the global
    /// registry. Convenient for cold paths; hot paths should prefer the
    /// [`span!`](crate::span) macro, which caches the registry lookup at
    /// the call site.
    ///
    /// Returns an inert span when telemetry is disabled.
    pub fn enter(name: &'static str) -> Self {
        if !Telemetry::enabled() {
            return Self::disabled();
        }
        Self::active(name, crate::telemetry().histogram(name))
    }

    /// Open a span onto an already-resolved histogram (what the
    /// [`span!`](crate::span) macro expands to). The caller has already
    /// checked [`Telemetry::enabled`].
    pub fn active(name: &'static str, histogram: &'static Histogram) -> Self {
        Self { active: Some(ActiveSpan { name, histogram, start: Instant::now() }) }
    }

    /// An inert span: no timestamp, records nothing on drop.
    pub fn disabled() -> Self {
        Self { active: None }
    }

    /// Whether this span is live (telemetry was enabled when it opened).
    pub fn is_active(&self) -> bool {
        self.active.is_some()
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(span) = self.active.take() {
            let secs = span.start.elapsed().as_secs_f64();
            span.histogram.record(secs);
            trace::emit_span(span.name, secs);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_span_is_inert() {
        let span = Span::disabled();
        assert!(!span.is_active());
        drop(span); // must not panic or record
    }

    #[test]
    fn active_span_records_on_drop() {
        // A private histogram keeps this test independent of the global
        // enabled flag (other tests toggle it).
        static HIST: std::sync::OnceLock<Histogram> = std::sync::OnceLock::new();
        let hist = HIST.get_or_init(Histogram::duration);
        {
            let _span = Span::active("test.span", hist);
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert_eq!(hist.count(), 1);
        assert!(hist.sum() >= 0.001, "recorded at least the slept millisecond");
    }
}
