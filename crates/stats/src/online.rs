//! Streaming (single-pass) statistics.
//!
//! The simulation engine accumulates per-cluster cost, utilization and
//! client–server distance over hundreds of thousands of 5-minute steps;
//! [`OnlineStats`] (Welford's algorithm) lets it do so without storing every
//! sample, tracking minima and maxima alongside, and [`SampleReservoir`]
//! keeps a bounded uniform sample when the full distribution is needed.

use serde::{Deserialize, Serialize};

/// Welford online mean / variance accumulator.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
    sum: f64,
}

impl OnlineStats {
    /// Create an empty accumulator.
    pub fn new() -> Self {
        Self { count: 0, mean: 0.0, m2: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY, sum: 0.0 }
    }

    /// Add one observation. Non-finite observations are ignored.
    pub fn push(&mut self, x: f64) {
        if !x.is_finite() {
            return;
        }
        self.count += 1;
        self.sum += x;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Add a weighted observation by pushing it `weight` times' worth of mass.
    ///
    /// Weights must be positive and finite; other weights are ignored.
    /// This supports population-weighted distance statistics where each
    /// client state contributes according to its request volume.
    pub fn push_weighted(&mut self, x: f64, weight: f64) {
        if !x.is_finite() || !weight.is_finite() || weight <= 0.0 {
            return;
        }
        // Weighted Welford update (West 1979). We fold the weight into the
        // count as fractional mass; `count` keeps integral observations, so
        // we track weighted aggregates through mean/m2/sum only.
        // For simplicity and robustness we treat the weight as a repeat
        // count scaled to preserve the mean exactly.
        let w_count = self.count as f64 + weight;
        let delta = x - self.mean;
        self.mean += delta * (weight / w_count);
        self.m2 += weight * delta * (x - self.mean);
        self.sum += x * weight;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
        // Round the stored count up by the integer part of the weight,
        // minimum 1, so `count()` still reflects "observations seen".
        self.count += weight.max(1.0) as u64;
    }

    /// Rebuild an accumulator from its raw parts — the inverse of reading
    /// [`Self::count`]/[`Self::mean`]/[`Self::m2`]/[`Self::min`]/
    /// [`Self::max`]/[`Self::sum`]. Callers that persist an accumulator
    /// (e.g. an engine snapshot) round-trip through this; a zero `count`
    /// yields an accumulator equal to [`Self::new`] regardless of the other
    /// arguments.
    pub fn from_parts(count: u64, mean: f64, m2: f64, min: f64, max: f64, sum: f64) -> Self {
        if count == 0 {
            return Self::new();
        }
        Self { count, mean, m2, min, max, sum }
    }

    /// Number of (finite) observations pushed.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The raw second-moment accumulator (Σ·(x−mean)² mass), exposed so the
    /// accumulator can be persisted losslessly via [`Self::from_parts`].
    pub fn m2(&self) -> f64 {
        self.m2
    }

    /// Sum of observations (weighted where applicable).
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Current mean; `None` before any observation.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then_some(self.mean)
    }

    /// Population variance; `None` before any observation.
    pub fn variance(&self) -> Option<f64> {
        (self.count > 0).then(|| self.m2 / self.count as f64)
    }

    /// Population standard deviation; `None` before any observation.
    pub fn std_dev(&self) -> Option<f64> {
        self.variance().map(f64::sqrt)
    }

    /// Minimum observation; `None` before any observation.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Maximum observation; `None` before any observation.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Merge another accumulator into this one (parallel Welford merge).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean = (n1 * self.mean + n2 * other.mean) / total;
        self.m2 = self.m2 + other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// A small reservoir that keeps *all* samples up to a cap, after which it
/// keeps a uniformly-spaced subsample. Exact percentiles for bounded runs,
/// bounded memory for very long runs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SampleReservoir {
    cap: usize,
    stride: usize,
    seen: u64,
    samples: Vec<f64>,
}

impl SampleReservoir {
    /// Create a reservoir that holds at most `cap` samples (`cap >= 2`).
    pub fn new(cap: usize) -> Self {
        Self { cap: cap.max(2), stride: 1, seen: 0, samples: Vec::new() }
    }

    /// Offer a sample to the reservoir.
    pub fn push(&mut self, x: f64) {
        if !x.is_finite() {
            return;
        }
        // The stride starts at 1 and only ever doubles, so it is always a
        // power of two and the stride test is a mask, not a division —
        // this is the hottest branch in long replays.
        debug_assert!(self.stride.is_power_of_two());
        if self.seen & (self.stride as u64 - 1) == 0 {
            if self.samples.len() >= self.cap {
                // Decimate: keep every other retained sample and double the stride.
                let mut kept = Vec::with_capacity(self.cap / 2 + 1);
                for (i, &s) in self.samples.iter().enumerate() {
                    if i % 2 == 0 {
                        kept.push(s);
                    }
                }
                self.samples = kept;
                self.stride *= 2;
                if self.seen & (self.stride as u64 - 1) == 0 {
                    self.samples.push(x);
                }
            } else {
                self.samples.push(x);
            }
        }
        self.seen += 1;
    }

    /// Number of samples offered so far.
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// The retained samples (unsorted).
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// Approximate percentile (exact while under the cap).
    pub fn percentile(&self, p: f64) -> Option<f64> {
        crate::quantiles::percentile(&self.samples, p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::descriptive;

    fn assert_close(a: f64, b: f64, eps: f64) {
        assert!((a - b).abs() < eps, "{a} vs {b}");
    }

    #[test]
    fn online_matches_batch() {
        let xs: Vec<f64> = (0..500).map(|i| ((i * 37) % 113) as f64 - 50.0).collect();
        let mut o = OnlineStats::new();
        for &x in &xs {
            o.push(x);
        }
        assert_close(o.mean().unwrap(), descriptive::mean(&xs).unwrap(), 1e-9);
        assert_close(o.variance().unwrap(), descriptive::variance(&xs).unwrap(), 1e-9);
        assert_eq!(o.count(), xs.len() as u64);
        assert_eq!(o.min().unwrap(), descriptive::min(&xs).unwrap());
        assert_eq!(o.max().unwrap(), descriptive::max(&xs).unwrap());
    }

    #[test]
    fn online_empty_is_none() {
        let o = OnlineStats::new();
        assert_eq!(o.mean(), None);
        assert_eq!(o.variance(), None);
        assert_eq!(o.std_dev(), None);
        assert_eq!(o.min(), None);
        assert_eq!(o.max(), None);
    }

    #[test]
    fn online_ignores_nan() {
        let mut o = OnlineStats::new();
        o.push(1.0);
        o.push(f64::NAN);
        o.push(3.0);
        assert_eq!(o.count(), 2);
        assert_close(o.mean().unwrap(), 2.0, 1e-12);
    }

    #[test]
    fn weighted_mean_matches_expanded() {
        let mut w = OnlineStats::new();
        w.push_weighted(10.0, 3.0);
        w.push_weighted(20.0, 1.0);
        // Equivalent expanded sample: [10, 10, 10, 20]
        assert_close(w.mean().unwrap(), 12.5, 1e-9);
        assert_close(w.sum(), 50.0, 1e-9);
    }

    #[test]
    fn merge_matches_single_pass() {
        let xs: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let (a, b) = xs.split_at(37);
        let mut oa = OnlineStats::new();
        let mut ob = OnlineStats::new();
        for &x in a {
            oa.push(x);
        }
        for &x in b {
            ob.push(x);
        }
        let mut all = OnlineStats::new();
        for &x in &xs {
            all.push(x);
        }
        oa.merge(&ob);
        assert_close(oa.mean().unwrap(), all.mean().unwrap(), 1e-9);
        assert_close(oa.variance().unwrap(), all.variance().unwrap(), 1e-9);
        assert_eq!(oa.count(), all.count());
    }

    #[test]
    fn merge_with_empty() {
        let mut a = OnlineStats::new();
        a.push(5.0);
        let empty = OnlineStats::new();
        let mut b = a;
        b.merge(&empty);
        assert_eq!(b, a);
        let mut c = OnlineStats::new();
        c.merge(&a);
        assert_eq!(c.mean(), a.mean());
    }

    #[test]
    fn reservoir_exact_under_cap() {
        let mut r = SampleReservoir::new(1000);
        for i in 0..500 {
            r.push(i as f64);
        }
        assert_eq!(r.samples().len(), 500);
        assert_close(r.percentile(95.0).unwrap(), 474.05, 0.5);
    }

    #[test]
    fn reservoir_bounded_over_cap() {
        let mut r = SampleReservoir::new(100);
        for i in 0..100_000 {
            r.push(i as f64);
        }
        assert!(r.samples().len() <= 101);
        assert_eq!(r.seen(), 100_000);
        // Median of 0..100k should still be roughly 50k.
        let med = r.percentile(50.0).unwrap();
        assert!((med - 50_000.0).abs() < 5_000.0, "median drifted: {med}");
    }

    #[test]
    fn reservoir_ignores_nan() {
        let mut r = SampleReservoir::new(10);
        r.push(f64::NAN);
        assert_eq!(r.seen(), 0);
        assert!(r.samples().is_empty());
    }
}
