//! Statistics utilities used throughout the `wattroute` workspace.
//!
//! The reproduction of *Cutting the Electric Bill for Internet-Scale Systems*
//! (Qureshi et al., SIGCOMM 2009) leans heavily on a small set of statistical
//! primitives: trimmed means and standard deviations (Figure 6), kurtosis of
//! price-change distributions (Figure 7), pairwise correlation coefficients
//! and mutual information (Figure 8), histograms of price differentials
//! (Figure 10), quantiles / inter-quartile ranges (Figures 11 and 12),
//! 95th-percentile bandwidth computations for the 95/5 billing model (§4),
//! and conditional value-at-risk ([`quantiles::cvar`]) for the Monte Carlo
//! layer's electric-bill distributions.
//!
//! This crate implements those primitives with no external numeric
//! dependencies so that the rest of the workspace can rely on a single,
//! well-tested implementation.
//!
//! # Conventions
//!
//! * All functions operate on `&[f64]` slices.
//! * Empty inputs return [`None`] from functions that would otherwise have to
//!   invent a value; panicking variants are never provided.
//! * Non-finite samples (NaN, ±∞) are the caller's responsibility; helper
//!   [`descriptive::retain_finite`] is provided to filter them.
//!
//! # Example
//!
//! ```
//! use wattroute_stats::descriptive::{mean, std_dev, trimmed};
//!
//! let prices = [40.0, 42.0, 38.0, 41.0, 1900.0]; // one spike, like NYC RT
//! let all = mean(&prices).unwrap();
//! let trimmed_stats = trimmed(&prices, 0.2).unwrap();
//! assert!(all > 400.0);                 // spike dominates the raw mean
//! assert!(trimmed_stats.mean < 45.0);   // trimming removes it
//! assert!(std_dev(&prices).unwrap() > 700.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod correlation;
pub mod descriptive;
pub mod histogram;
pub mod online;
pub mod quantiles;
pub mod timeseries;

pub use correlation::{mutual_information, pearson, spearman};
pub use descriptive::{kurtosis, mean, skewness, std_dev, trimmed, variance, TrimmedStats};
pub use histogram::Histogram;
pub use online::{OnlineStats, SampleReservoir};
pub use quantiles::{cvar, iqr, median, percentile, quantile, quartiles};
pub use timeseries::{diff_series, window_average};
