//! Descriptive statistics: moments, trimmed statistics, and basic helpers.
//!
//! The paper reports 1 %-trimmed means, standard deviations and kurtosis for
//! hourly real-time prices (Figure 6) and raw moments for hour-to-hour price
//! changes (Figure 7). Both are provided here.

use serde::{Deserialize, Serialize};

/// Remove non-finite values from a sample, returning an owned vector.
///
/// Market data sets occasionally contain sentinel values or gaps; this keeps
/// downstream moment computations well-defined.
pub fn retain_finite(samples: &[f64]) -> Vec<f64> {
    samples.iter().copied().filter(|x| x.is_finite()).collect()
}

/// Arithmetic mean. Returns `None` for an empty slice.
pub fn mean(samples: &[f64]) -> Option<f64> {
    if samples.is_empty() {
        return None;
    }
    Some(samples.iter().sum::<f64>() / samples.len() as f64)
}

/// Population variance (divides by `n`). Returns `None` for an empty slice.
pub fn variance(samples: &[f64]) -> Option<f64> {
    let m = mean(samples)?;
    let n = samples.len() as f64;
    Some(samples.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / n)
}

/// Sample variance (divides by `n - 1`). Returns `None` if fewer than two samples.
pub fn sample_variance(samples: &[f64]) -> Option<f64> {
    if samples.len() < 2 {
        return None;
    }
    let m = mean(samples)?;
    let n = samples.len() as f64;
    Some(samples.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (n - 1.0))
}

/// Population standard deviation. Returns `None` for an empty slice.
pub fn std_dev(samples: &[f64]) -> Option<f64> {
    variance(samples).map(f64::sqrt)
}

/// Sample standard deviation (`n - 1` denominator).
pub fn sample_std_dev(samples: &[f64]) -> Option<f64> {
    sample_variance(samples).map(f64::sqrt)
}

/// Skewness (third standardized moment, population form).
///
/// Returns `None` for fewer than two samples or zero variance.
pub fn skewness(samples: &[f64]) -> Option<f64> {
    if samples.len() < 2 {
        return None;
    }
    let m = mean(samples)?;
    let sd = std_dev(samples)?;
    if sd == 0.0 {
        return None;
    }
    let n = samples.len() as f64;
    let m3 = samples.iter().map(|x| (x - m).powi(3)).sum::<f64>() / n;
    Some(m3 / sd.powi(3))
}

/// Kurtosis (fourth standardized moment, *non-excess*, population form).
///
/// A Gaussian has kurtosis 3.0. The paper reports values between ~4.6 and
/// ~466 for price and price-differential distributions, reflecting very
/// heavy tails.
///
/// Returns `None` for fewer than two samples or zero variance.
pub fn kurtosis(samples: &[f64]) -> Option<f64> {
    if samples.len() < 2 {
        return None;
    }
    let m = mean(samples)?;
    let var = variance(samples)?;
    if var == 0.0 {
        return None;
    }
    let n = samples.len() as f64;
    let m4 = samples.iter().map(|x| (x - m).powi(4)).sum::<f64>() / n;
    Some(m4 / (var * var))
}

/// Excess kurtosis: [`kurtosis`] minus 3 (zero for a Gaussian).
pub fn excess_kurtosis(samples: &[f64]) -> Option<f64> {
    kurtosis(samples).map(|k| k - 3.0)
}

/// Minimum of a sample. `None` when empty.
pub fn min(samples: &[f64]) -> Option<f64> {
    samples.iter().copied().fold(None, |acc, x| match acc {
        None => Some(x),
        Some(m) => Some(m.min(x)),
    })
}

/// Maximum of a sample. `None` when empty.
pub fn max(samples: &[f64]) -> Option<f64> {
    samples.iter().copied().fold(None, |acc, x| match acc {
        None => Some(x),
        Some(m) => Some(m.max(x)),
    })
}

/// Statistics of a symmetrically trimmed sample.
///
/// Produced by [`trimmed`]; mirrors the `Mean* / StDev* / Kurt.*` columns of
/// Figure 6 in the paper, which are computed from 1 %-trimmed data.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrimmedStats {
    /// Fraction trimmed from *each* tail (e.g. 0.01 for the paper's 1 % trim).
    pub trim_fraction: f64,
    /// Number of samples remaining after trimming.
    pub retained: usize,
    /// Mean of the trimmed sample.
    pub mean: f64,
    /// Population standard deviation of the trimmed sample.
    pub std_dev: f64,
    /// Kurtosis (non-excess) of the trimmed sample.
    pub kurtosis: f64,
    /// Minimum retained value.
    pub min: f64,
    /// Maximum retained value.
    pub max: f64,
}

/// Compute mean / standard deviation / kurtosis of a symmetrically trimmed
/// sample.
///
/// `trim_fraction` is the fraction removed from **each** tail, so `0.01`
/// discards the lowest 1 % and the highest 1 % of samples (the paper's
/// "1 % trimmed data"). Values are clamped to `[0, 0.5)`.
///
/// Returns `None` if the trimmed sample would be empty.
pub fn trimmed(samples: &[f64], trim_fraction: f64) -> Option<TrimmedStats> {
    if samples.is_empty() {
        return None;
    }
    let trim_fraction = trim_fraction.clamp(0.0, 0.499_999);
    let mut sorted = retain_finite(samples);
    if sorted.is_empty() {
        return None;
    }
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite values are comparable"));
    let n = sorted.len();
    let cut = ((n as f64) * trim_fraction).floor() as usize;
    let kept = &sorted[cut..n - cut];
    if kept.is_empty() {
        return None;
    }
    Some(TrimmedStats {
        trim_fraction,
        retained: kept.len(),
        mean: mean(kept)?,
        std_dev: std_dev(kept)?,
        kurtosis: kurtosis(kept).unwrap_or(f64::NAN),
        min: kept[0],
        max: kept[kept.len() - 1],
    })
}

/// Root mean square of a sample. `None` when empty.
pub fn rms(samples: &[f64]) -> Option<f64> {
    if samples.is_empty() {
        return None;
    }
    Some((samples.iter().map(|x| x * x).sum::<f64>() / samples.len() as f64).sqrt())
}

/// Coefficient of variation (`σ / μ`). `None` when the mean is zero or the
/// sample is empty.
pub fn coefficient_of_variation(samples: &[f64]) -> Option<f64> {
    let m = mean(samples)?;
    if m == 0.0 {
        return None;
    }
    Some(std_dev(samples)? / m)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, eps: f64) {
        assert!((a - b).abs() < eps, "{a} vs {b} (eps {eps})");
    }

    #[test]
    fn mean_of_empty_is_none() {
        assert_eq!(mean(&[]), None);
    }

    #[test]
    fn mean_of_constant() {
        assert_eq!(mean(&[5.0; 10]), Some(5.0));
    }

    #[test]
    fn mean_simple() {
        assert_close(mean(&[1.0, 2.0, 3.0, 4.0]).unwrap(), 2.5, 1e-12);
    }

    #[test]
    fn variance_of_constant_is_zero() {
        assert_eq!(variance(&[3.0; 7]), Some(0.0));
    }

    #[test]
    fn population_vs_sample_variance() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_close(variance(&xs).unwrap(), 4.0, 1e-12);
        assert_close(sample_variance(&xs).unwrap(), 32.0 / 7.0, 1e-12);
    }

    #[test]
    fn std_dev_known_value() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_close(std_dev(&xs).unwrap(), 2.0, 1e-12);
    }

    #[test]
    fn sample_variance_requires_two_points() {
        assert_eq!(sample_variance(&[1.0]), None);
    }

    #[test]
    fn skewness_of_symmetric_is_zero() {
        let xs = [-2.0, -1.0, 0.0, 1.0, 2.0];
        assert_close(skewness(&xs).unwrap(), 0.0, 1e-12);
    }

    #[test]
    fn skewness_right_tail_positive() {
        let xs = [1.0, 1.0, 1.0, 1.0, 50.0];
        assert!(skewness(&xs).unwrap() > 1.0);
    }

    #[test]
    fn kurtosis_of_constant_is_none() {
        assert_eq!(kurtosis(&[4.0; 5]), None);
    }

    #[test]
    fn kurtosis_two_point_distribution() {
        // Symmetric two-point distribution has kurtosis exactly 1.
        let xs = [-1.0, 1.0, -1.0, 1.0];
        assert_close(kurtosis(&xs).unwrap(), 1.0, 1e-12);
    }

    #[test]
    fn kurtosis_heavy_tail_exceeds_gaussian() {
        // Mostly small values with one huge spike, like an RT price series.
        let mut xs = vec![0.0; 999];
        xs.push(100.0);
        assert!(kurtosis(&xs).unwrap() > 100.0);
    }

    #[test]
    fn excess_kurtosis_is_offset_by_three() {
        let xs = [-1.0, 1.0, -1.0, 1.0];
        assert_close(excess_kurtosis(&xs).unwrap(), 1.0 - 3.0, 1e-12);
    }

    #[test]
    fn trimmed_removes_spikes() {
        let mut xs: Vec<f64> = (0..100).map(|i| 40.0 + (i % 5) as f64).collect();
        xs.push(1900.0); // the paper's largest observed differential spike
        xs.push(-150.0); // a negative-price hour
        let t = trimmed(&xs, 0.02).unwrap();
        assert!(t.mean < 50.0, "trimmed mean should ignore the spike");
        assert!(t.max < 100.0);
        assert!(t.min > 0.0);
        assert_eq!(t.retained, 102 - 4);
    }

    #[test]
    fn trimmed_zero_fraction_equals_raw() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        let t = trimmed(&xs, 0.0).unwrap();
        assert_close(t.mean, mean(&xs).unwrap(), 1e-12);
        assert_close(t.std_dev, std_dev(&xs).unwrap(), 1e-12);
        assert_eq!(t.retained, xs.len());
    }

    #[test]
    fn trimmed_empty_is_none() {
        assert!(trimmed(&[], 0.01).is_none());
    }

    #[test]
    fn trimmed_handles_nan() {
        let xs = [1.0, f64::NAN, 3.0];
        let t = trimmed(&xs, 0.0).unwrap();
        assert_eq!(t.retained, 2);
        assert_close(t.mean, 2.0, 1e-12);
    }

    #[test]
    fn retain_finite_filters() {
        let xs = [1.0, f64::NAN, f64::INFINITY, 2.0, f64::NEG_INFINITY];
        assert_eq!(retain_finite(&xs), vec![1.0, 2.0]);
    }

    #[test]
    fn min_max() {
        let xs = [3.0, -1.0, 7.0, 2.0];
        assert_eq!(min(&xs), Some(-1.0));
        assert_eq!(max(&xs), Some(7.0));
        assert_eq!(min(&[]), None);
        assert_eq!(max(&[]), None);
    }

    #[test]
    fn rms_known() {
        assert_close(rms(&[3.0, 4.0]).unwrap(), (12.5f64).sqrt(), 1e-12);
    }

    #[test]
    fn coefficient_of_variation_known() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_close(coefficient_of_variation(&xs).unwrap(), 2.0 / 5.0, 1e-12);
        assert_eq!(coefficient_of_variation(&[0.0, 0.0]), None);
    }
}
