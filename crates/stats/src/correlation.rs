//! Correlation measures between price series.
//!
//! Figure 8 of the paper plots the Pearson correlation coefficient of hourly
//! prices for all 406 hub pairs against inter-hub distance, and footnote 8
//! notes that *mutual information* separates same-RTO from different-RTO
//! pairs even more cleanly. Both measures are implemented here, along with
//! Spearman rank correlation as a robustness check.

use crate::quantiles::quantile_sorted;

/// Pearson product-moment correlation coefficient of two equal-length series.
///
/// Returns `None` if the series are empty, of different lengths, or either
/// has zero variance.
pub fn pearson(xs: &[f64], ys: &[f64]) -> Option<f64> {
    if xs.len() != ys.len() || xs.is_empty() {
        return None;
    }
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        let dx = x - mx;
        let dy = y - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx == 0.0 || syy == 0.0 {
        return None;
    }
    Some(sxy / (sxx.sqrt() * syy.sqrt()))
}

/// Assign average ranks to a series (ties receive the mean of their ranks).
fn ranks(xs: &[f64]) -> Vec<f64> {
    let mut idx: Vec<usize> = (0..xs.len()).collect();
    idx.sort_by(|&a, &b| xs[a].partial_cmp(&xs[b]).unwrap_or(std::cmp::Ordering::Equal));
    let mut out = vec![0.0; xs.len()];
    let mut i = 0;
    while i < idx.len() {
        let mut j = i;
        while j + 1 < idx.len() && xs[idx[j + 1]] == xs[idx[i]] {
            j += 1;
        }
        // average rank for the tie group [i, j]
        let avg_rank = (i + j) as f64 / 2.0 + 1.0;
        for &k in &idx[i..=j] {
            out[k] = avg_rank;
        }
        i = j + 1;
    }
    out
}

/// Spearman rank correlation coefficient.
///
/// Returns `None` under the same conditions as [`pearson`].
pub fn spearman(xs: &[f64], ys: &[f64]) -> Option<f64> {
    if xs.len() != ys.len() || xs.is_empty() {
        return None;
    }
    pearson(&ranks(xs), &ranks(ys))
}

/// Binned mutual information (in bits) between two equal-length series.
///
/// Each series is discretised into `bins` equi-probable bins (using its own
/// quantiles), and `I(X;Y) = Σ p(x,y) log2( p(x,y) / (p(x)p(y)) )` is
/// estimated from the joint counts. This is the measure the paper uses
/// (footnote 8) to show that intra-RTO relationships can be non-linear.
///
/// Returns `None` if the series are empty, mismatched in length, or constant.
pub fn mutual_information(xs: &[f64], ys: &[f64], bins: usize) -> Option<f64> {
    if xs.len() != ys.len() || xs.is_empty() || bins < 2 {
        return None;
    }
    let bx = quantile_bin_edges(xs, bins)?;
    let by = quantile_bin_edges(ys, bins)?;

    let mut joint = vec![vec![0u64; bins]; bins];
    let mut px = vec![0u64; bins];
    let mut py = vec![0u64; bins];
    for (&x, &y) in xs.iter().zip(ys) {
        let ix = bin_index(&bx, x);
        let iy = bin_index(&by, y);
        joint[ix][iy] += 1;
        px[ix] += 1;
        py[iy] += 1;
    }
    let n = xs.len() as f64;
    let mut mi = 0.0;
    for ix in 0..bins {
        for iy in 0..bins {
            let pxy = joint[ix][iy] as f64 / n;
            if pxy > 0.0 {
                let pxi = px[ix] as f64 / n;
                let pyi = py[iy] as f64 / n;
                mi += pxy * (pxy / (pxi * pyi)).log2();
            }
        }
    }
    Some(mi.max(0.0))
}

/// Interior bin edges (length `bins - 1`) at the equi-probable quantiles of a
/// series. Returns `None` for empty or all-identical series.
fn quantile_bin_edges(xs: &[f64], bins: usize) -> Option<Vec<f64>> {
    let mut sorted: Vec<f64> = xs.iter().copied().filter(|v| v.is_finite()).collect();
    if sorted.is_empty() {
        return None;
    }
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    if sorted[0] == sorted[sorted.len() - 1] {
        return None; // constant series carries no information
    }
    let edges: Vec<f64> =
        (1..bins).map(|i| quantile_sorted(&sorted, i as f64 / bins as f64)).collect();
    Some(edges)
}

/// Index of the bin that `x` falls into given interior `edges`.
fn bin_index(edges: &[f64], x: f64) -> usize {
    edges.iter().take_while(|&&e| x > e).count()
}

/// Pearson correlation between one series and a lagged copy of another:
/// `corr(xs[t], ys[t + lag])`. Useful for checking that synthetic series are
/// not trivially shifted copies of one another (the paper verified its
/// correlation findings against shifted signals).
pub fn lagged_correlation(xs: &[f64], ys: &[f64], lag: usize) -> Option<f64> {
    if lag >= ys.len() || xs.len() != ys.len() {
        return None;
    }
    let n = ys.len() - lag;
    pearson(&xs[..n], &ys[lag..])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, eps: f64) {
        assert!((a - b).abs() < eps, "{a} vs {b}");
    }

    #[test]
    fn pearson_perfect_positive() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [10.0, 20.0, 30.0, 40.0];
        assert_close(pearson(&xs, &ys).unwrap(), 1.0, 1e-12);
    }

    #[test]
    fn pearson_perfect_negative() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [4.0, 3.0, 2.0, 1.0];
        assert_close(pearson(&xs, &ys).unwrap(), -1.0, 1e-12);
    }

    #[test]
    fn pearson_uncorrelated() {
        let xs = [1.0, 2.0, 1.0, 2.0, 1.0, 2.0, 1.0, 2.0];
        let ys = [1.0, 1.0, 2.0, 2.0, 1.0, 1.0, 2.0, 2.0];
        assert_close(pearson(&xs, &ys).unwrap(), 0.0, 1e-12);
    }

    #[test]
    fn pearson_rejects_degenerate() {
        assert_eq!(pearson(&[], &[]), None);
        assert_eq!(pearson(&[1.0], &[1.0, 2.0]), None);
        assert_eq!(pearson(&[1.0, 1.0], &[2.0, 3.0]), None);
    }

    #[test]
    fn spearman_monotone_nonlinear() {
        // y = x^3 is nonlinear but perfectly monotone: Spearman = 1.
        let xs: Vec<f64> = (-5..=5).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| x.powi(3)).collect();
        assert_close(spearman(&xs, &ys).unwrap(), 1.0, 1e-12);
        // Pearson is high but below 1.
        assert!(pearson(&xs, &ys).unwrap() < 1.0);
    }

    #[test]
    fn spearman_handles_ties() {
        let xs = [1.0, 2.0, 2.0, 3.0];
        let ys = [1.0, 2.0, 2.0, 3.0];
        assert_close(spearman(&xs, &ys).unwrap(), 1.0, 1e-12);
    }

    #[test]
    fn ranks_average_ties() {
        let r = ranks(&[10.0, 20.0, 20.0, 30.0]);
        assert_eq!(r, vec![1.0, 2.5, 2.5, 4.0]);
    }

    #[test]
    fn mutual_information_of_identical_series_is_high() {
        let xs: Vec<f64> = (0..1000).map(|i| (i as f64 * 0.37).sin() * 20.0 + 50.0).collect();
        let mi_self = mutual_information(&xs, &xs, 8).unwrap();
        assert!(mi_self > 2.0, "self MI should approach log2(bins) = 3, got {mi_self}");
    }

    /// SplitMix64 finalizer: a cheap deterministic hash used to build
    /// independent-looking sequences for the tests below.
    fn mix(mut z: u64) -> u64 {
        z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    #[test]
    fn mutual_information_of_independent_series_is_low() {
        // Deterministic pseudo-independent sequences built from different
        // hash streams of the sample index.
        let xs: Vec<f64> = (0..5000u64).map(|i| mix(i) as f64).collect();
        let ys: Vec<f64> =
            (0..5000u64).map(|i| mix(i.wrapping_add(0xDEAD_BEEF) * 31) as f64).collect();
        let mi = mutual_information(&xs, &ys, 8).unwrap();
        assert!(mi < 0.15, "independent MI should be near zero, got {mi}");
    }

    #[test]
    fn mutual_information_detects_nonlinear_dependence() {
        // y = |x| has near-zero Pearson correlation but high MI.
        let xs: Vec<f64> = (-2000..2000).map(|i| i as f64 / 100.0).collect();
        let ys: Vec<f64> = xs.iter().map(|x| x.abs()).collect();
        let r = pearson(&xs, &ys).unwrap().abs();
        let mi = mutual_information(&xs, &ys, 8).unwrap();
        assert!(r < 0.05, "pearson should miss |x| dependence, got {r}");
        assert!(mi > 1.0, "MI should catch |x| dependence, got {mi}");
    }

    #[test]
    fn mutual_information_degenerate_inputs() {
        assert_eq!(mutual_information(&[1.0; 10], &[2.0; 10], 4), None);
        assert_eq!(mutual_information(&[], &[], 4), None);
        assert_eq!(mutual_information(&[1.0, 2.0], &[1.0, 2.0], 1), None);
    }

    #[test]
    fn lagged_correlation_shifted_sine() {
        let xs: Vec<f64> = (0..500).map(|i| (i as f64 * 0.1).sin()).collect();
        let shifted: Vec<f64> = (0..500).map(|i| ((i as f64 - 10.0) * 0.1).sin()).collect();
        // At lag 10 the shifted copy realigns with the original.
        let realigned = lagged_correlation(&xs, &shifted, 10).unwrap();
        assert!(realigned > 0.999, "realigned = {realigned}");
        assert!(realigned > pearson(&xs, &shifted).unwrap());
    }
}
