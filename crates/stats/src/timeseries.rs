//! Time-series helpers: differencing, window averaging, aggregation and
//! autocorrelation.
//!
//! Figure 5 of the paper averages NYC prices over 5-minute, 1-hour, 3-hour,
//! 12-hour and 24-hour windows before taking standard deviations; Figure 3
//! plots daily averages of hourly prices; Figure 7 histograms the
//! hour-to-hour *differences*. These transformations live here.

/// First differences: `out[i] = xs[i + 1] - xs[i]`.
///
/// Returns an empty vector for inputs with fewer than two samples.
pub fn diff_series(xs: &[f64]) -> Vec<f64> {
    if xs.len() < 2 {
        return Vec::new();
    }
    xs.windows(2).map(|w| w[1] - w[0]).collect()
}

/// Element-wise difference of two equal-length series: `a[i] - b[i]`.
///
/// Returns `None` if the lengths differ. This is the "price differential"
/// series of §3.3.
pub fn pairwise_difference(a: &[f64], b: &[f64]) -> Option<Vec<f64>> {
    if a.len() != b.len() {
        return None;
    }
    Some(a.iter().zip(b).map(|(x, y)| x - y).collect())
}

/// Non-overlapping window averages with window length `window` (in samples).
///
/// A trailing partial window is averaged over however many samples it holds.
/// Returns an empty vector when `window == 0` or the input is empty.
pub fn window_average(xs: &[f64], window: usize) -> Vec<f64> {
    if window == 0 || xs.is_empty() {
        return Vec::new();
    }
    xs.chunks(window).map(|c| c.iter().sum::<f64>() / c.len() as f64).collect()
}

/// Centered moving average with an odd window; edges use a shrunken window.
pub fn moving_average(xs: &[f64], window: usize) -> Vec<f64> {
    if window == 0 || xs.is_empty() {
        return Vec::new();
    }
    let half = window / 2;
    (0..xs.len())
        .map(|i| {
            let lo = i.saturating_sub(half);
            let hi = (i + half + 1).min(xs.len());
            xs[lo..hi].iter().sum::<f64>() / (hi - lo) as f64
        })
        .collect()
}

/// Sample autocorrelation at a given lag.
///
/// Returns `None` when the lag leaves fewer than two overlapping samples or
/// the series has zero variance.
pub fn autocorrelation(xs: &[f64], lag: usize) -> Option<f64> {
    if xs.len() <= lag + 1 {
        return None;
    }
    let n = xs.len();
    let mean = xs.iter().sum::<f64>() / n as f64;
    let denom: f64 = xs.iter().map(|x| (x - mean) * (x - mean)).sum();
    if denom == 0.0 {
        return None;
    }
    let num: f64 = (0..n - lag).map(|i| (xs[i] - mean) * (xs[i + lag] - mean)).sum();
    Some(num / denom)
}

/// Group samples by a key function and average each group, returning groups
/// in ascending key order.
///
/// Used to aggregate hourly prices by hour-of-day (Figure 12) or by month
/// (Figure 11).
pub fn group_average<F>(xs: &[f64], key: F) -> Vec<(usize, f64)>
where
    F: Fn(usize) -> usize,
{
    use std::collections::BTreeMap;
    let mut sums: BTreeMap<usize, (f64, usize)> = BTreeMap::new();
    for (i, &x) in xs.iter().enumerate() {
        let entry = sums.entry(key(i)).or_insert((0.0, 0));
        entry.0 += x;
        entry.1 += 1;
    }
    sums.into_iter().map(|(k, (sum, count))| (k, sum / count as f64)).collect()
}

/// Collect the values of each group defined by a key function, in ascending
/// key order. Like [`group_average`] but returning the raw per-group samples
/// so the caller can compute medians / IQRs.
pub fn group_values<F>(xs: &[f64], key: F) -> Vec<(usize, Vec<f64>)>
where
    F: Fn(usize) -> usize,
{
    use std::collections::BTreeMap;
    let mut groups: BTreeMap<usize, Vec<f64>> = BTreeMap::new();
    for (i, &x) in xs.iter().enumerate() {
        groups.entry(key(i)).or_default().push(x);
    }
    groups.into_iter().collect()
}

/// Lengths of maximal runs for which `predicate` holds, measured in samples.
///
/// §3.3 defines the *duration* of a sustained price differential as the
/// number of consecutive hours one location is favoured by more than
/// $5/MWh; [`run_lengths`] extracts exactly those runs.
pub fn run_lengths<F>(xs: &[f64], predicate: F) -> Vec<usize>
where
    F: Fn(f64) -> bool,
{
    let mut runs = Vec::new();
    let mut current = 0usize;
    for &x in xs {
        if predicate(x) {
            current += 1;
        } else if current > 0 {
            runs.push(current);
            current = 0;
        }
    }
    if current > 0 {
        runs.push(current);
    }
    runs
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, eps: f64) {
        assert!((a - b).abs() < eps, "{a} vs {b}");
    }

    #[test]
    fn diff_series_basic() {
        assert_eq!(diff_series(&[1.0, 4.0, 2.0]), vec![3.0, -2.0]);
        assert!(diff_series(&[1.0]).is_empty());
        assert!(diff_series(&[]).is_empty());
    }

    #[test]
    fn pairwise_difference_basic() {
        assert_eq!(pairwise_difference(&[5.0, 7.0], &[1.0, 10.0]), Some(vec![4.0, -3.0]));
        assert_eq!(pairwise_difference(&[1.0], &[1.0, 2.0]), None);
    }

    #[test]
    fn window_average_exact_chunks() {
        let xs = [1.0, 3.0, 5.0, 7.0];
        assert_eq!(window_average(&xs, 2), vec![2.0, 6.0]);
    }

    #[test]
    fn window_average_partial_tail() {
        let xs = [1.0, 3.0, 5.0];
        assert_eq!(window_average(&xs, 2), vec![2.0, 5.0]);
    }

    #[test]
    fn window_average_degenerate() {
        assert!(window_average(&[1.0], 0).is_empty());
        assert!(window_average(&[], 3).is_empty());
        assert_eq!(window_average(&[1.0, 2.0], 1), vec![1.0, 2.0]);
    }

    #[test]
    fn window_averaging_reduces_variance() {
        // The core observation behind Figure 5: longer averaging windows
        // lower the standard deviation of a noisy series.
        let xs: Vec<f64> = (0..2000)
            .map(|i| 50.0 + 30.0 * ((i * 2654435761u64 as usize) % 100) as f64 / 100.0)
            .collect();
        let sd_raw = crate::descriptive::std_dev(&xs).unwrap();
        let sd_12 = crate::descriptive::std_dev(&window_average(&xs, 12)).unwrap();
        let sd_24 = crate::descriptive::std_dev(&window_average(&xs, 24)).unwrap();
        assert!(sd_12 < sd_raw);
        assert!(sd_24 < sd_12 * 1.05, "24h window should not be much noisier than 12h");
    }

    #[test]
    fn moving_average_smooths() {
        let xs = [0.0, 10.0, 0.0, 10.0, 0.0];
        let sm = moving_average(&xs, 3);
        assert_eq!(sm.len(), xs.len());
        assert_close(sm[2], 20.0 / 3.0, 1e-12);
    }

    #[test]
    fn autocorrelation_periodic_signal() {
        let xs: Vec<f64> =
            (0..240).map(|i| ((i % 24) as f64 / 24.0 * std::f64::consts::TAU).sin()).collect();
        let ac24 = autocorrelation(&xs, 24).unwrap();
        let ac12 = autocorrelation(&xs, 12).unwrap();
        assert!(ac24 > 0.8, "diurnal signal should correlate at lag 24, got {ac24}");
        assert!(ac12 < -0.5, "and anti-correlate at lag 12, got {ac12}");
    }

    #[test]
    fn autocorrelation_degenerate() {
        assert_eq!(autocorrelation(&[1.0, 2.0], 5), None);
        assert_eq!(autocorrelation(&[3.0; 10], 2), None);
    }

    #[test]
    fn group_average_by_hour_of_day() {
        // 48 "hourly" samples: value = hour of day.
        let xs: Vec<f64> = (0..48).map(|i| (i % 24) as f64).collect();
        let grouped = group_average(&xs, |i| i % 24);
        assert_eq!(grouped.len(), 24);
        for (hour, avg) in grouped {
            assert_close(avg, hour as f64, 1e-12);
        }
    }

    #[test]
    fn group_values_collects_all() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let groups = group_values(&xs, |i| i % 2);
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].1, vec![1.0, 3.0, 5.0]);
        assert_eq!(groups[1].1, vec![2.0, 4.0, 6.0]);
    }

    #[test]
    fn run_lengths_basic() {
        let xs = [6.0, 7.0, 1.0, 8.0, 9.0, 10.0, 0.0];
        let runs = run_lengths(&xs, |x| x > 5.0);
        assert_eq!(runs, vec![2, 3]);
    }

    #[test]
    fn run_lengths_trailing_run_counted() {
        let xs = [0.0, 6.0, 6.0];
        assert_eq!(run_lengths(&xs, |x| x > 5.0), vec![2]);
    }

    #[test]
    fn run_lengths_no_matches() {
        assert!(run_lengths(&[1.0, 2.0], |x| x > 5.0).is_empty());
    }
}
