//! Quantiles, medians, inter-quartile ranges, and the 95th percentile used by
//! the 95/5 bandwidth billing model (§4 of the paper).

use serde::{Deserialize, Serialize};

/// Compute the `q`-th quantile (`0.0 ..= 1.0`) of a sample using linear
/// interpolation between order statistics (the "R-7" rule used by most
/// spreadsheet and numerical packages).
///
/// Non-finite samples are ignored. Returns `None` if no finite samples
/// remain or if `q` is outside `[0, 1]`.
pub fn quantile(samples: &[f64], q: f64) -> Option<f64> {
    if !(0.0..=1.0).contains(&q) {
        return None;
    }
    let mut sorted: Vec<f64> = samples.iter().copied().filter(|x| x.is_finite()).collect();
    if sorted.is_empty() {
        return None;
    }
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite values are comparable"));
    Some(quantile_sorted(&sorted, q))
}

/// Quantile of an **already sorted, finite** sample. Panics only if the slice
/// is empty (callers should guard, as [`quantile`] does).
pub fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "quantile of empty sample");
    let n = sorted.len();
    if n == 1 {
        return sorted[0];
    }
    let pos = q.clamp(0.0, 1.0) * (n - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Percentile in `[0, 100]`; thin wrapper over [`quantile`].
///
/// `percentile(samples, 95.0)` is the value used for 95/5 bandwidth billing:
/// traffic is divided into five-minute intervals and the 95th percentile of
/// those intervals is what the carrier bills for.
pub fn percentile(samples: &[f64], p: f64) -> Option<f64> {
    quantile(samples, p / 100.0)
}

/// Conditional value-at-risk (expected shortfall) at level `alpha` in
/// `[0, 1)`: the expected value of a sample *given* that it falls in the
/// worst (highest) `1 - alpha` tail. For a cost distribution,
/// `cvar(bills, 0.95)` answers "when the bill lands in its worst 5% of
/// outcomes, how much do I pay on average?" — the risk measure the Monte
/// Carlo layer reports for the electric bill.
///
/// Computed with the Rockafellar–Uryasev estimator
///
/// ```text
/// CVaR_α = VaR_α + E[(X − VaR_α)⁺] / (1 − α)
/// ```
///
/// where `VaR_α` is the R-7 [`quantile`] at `alpha`. This form is
/// continuous in `alpha`, agrees with the closed-form tail mean for
/// continuous distributions, and degrades gracefully on tiny samples:
/// a single sample is its own CVaR, an all-equal sample returns the
/// common value, and `alpha = 0` reduces to the plain mean.
///
/// Non-finite samples are ignored. Returns `None` if no finite samples
/// remain or if `alpha` is outside `[0, 1)`.
pub fn cvar(samples: &[f64], alpha: f64) -> Option<f64> {
    if !(0.0..1.0).contains(&alpha) {
        return None;
    }
    let finite: Vec<f64> = samples.iter().copied().filter(|x| x.is_finite()).collect();
    if finite.is_empty() {
        return None;
    }
    let var = quantile(&finite, alpha).expect("finite non-empty sample has a quantile");
    let n = finite.len() as f64;
    let excess: f64 = finite.iter().map(|x| (x - var).max(0.0)).sum::<f64>() / n;
    Some(var + excess / (1.0 - alpha))
}

/// Median (50th percentile).
pub fn median(samples: &[f64]) -> Option<f64> {
    quantile(samples, 0.5)
}

/// First, second (median) and third quartiles.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Quartiles {
    /// 25th percentile.
    pub q1: f64,
    /// 50th percentile (median).
    pub q2: f64,
    /// 75th percentile.
    pub q3: f64,
}

impl Quartiles {
    /// Inter-quartile range `q3 - q1`.
    pub fn iqr(&self) -> f64 {
        self.q3 - self.q1
    }
}

/// Compute the three quartiles of a sample. `None` if the sample has no
/// finite values.
pub fn quartiles(samples: &[f64]) -> Option<Quartiles> {
    let mut sorted: Vec<f64> = samples.iter().copied().filter(|x| x.is_finite()).collect();
    if sorted.is_empty() {
        return None;
    }
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite values are comparable"));
    Some(Quartiles {
        q1: quantile_sorted(&sorted, 0.25),
        q2: quantile_sorted(&sorted, 0.50),
        q3: quantile_sorted(&sorted, 0.75),
    })
}

/// Inter-quartile range. `None` if the sample has no finite values.
pub fn iqr(samples: &[f64]) -> Option<f64> {
    quartiles(samples).map(|q| q.iqr())
}

/// A (median, inter-quartile-range) summary, used to describe price
/// differential distributions per month (Figure 11) and per hour-of-day
/// (Figure 12).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MedianIqr {
    /// Median of the sample.
    pub median: f64,
    /// 25th percentile.
    pub q1: f64,
    /// 75th percentile.
    pub q3: f64,
    /// Number of finite samples summarised.
    pub count: usize,
}

/// Summarise a sample as median plus quartiles, the representation used by
/// Figures 11 and 12 of the paper.
pub fn median_iqr(samples: &[f64]) -> Option<MedianIqr> {
    let finite: Vec<f64> = samples.iter().copied().filter(|x| x.is_finite()).collect();
    let q = quartiles(&finite)?;
    Some(MedianIqr { median: q.q2, q1: q.q1, q3: q.q3, count: finite.len() })
}

/// Fraction of samples strictly below `threshold`. Returns `None` when empty.
pub fn fraction_below(samples: &[f64], threshold: f64) -> Option<f64> {
    if samples.is_empty() {
        return None;
    }
    let below = samples.iter().filter(|&&x| x < threshold).count();
    Some(below as f64 / samples.len() as f64)
}

/// Fraction of samples with absolute value at or above `threshold`.
/// Returns `None` when empty.
///
/// Used for statements like "the price per MWh changed hourly by $20 or more
/// roughly 20 % of the time" (§3.1).
pub fn fraction_abs_at_least(samples: &[f64], threshold: f64) -> Option<f64> {
    if samples.is_empty() {
        return None;
    }
    let hits = samples.iter().filter(|&&x| x.abs() >= threshold).count();
    Some(hits as f64 / samples.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, eps: f64) {
        assert!((a - b).abs() < eps, "{a} vs {b}");
    }

    #[test]
    fn quantile_bounds() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(quantile(&xs, 0.0), Some(1.0));
        assert_eq!(quantile(&xs, 1.0), Some(5.0));
    }

    #[test]
    fn quantile_interpolates() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_close(quantile(&xs, 0.5).unwrap(), 2.5, 1e-12);
        assert_close(quantile(&xs, 0.25).unwrap(), 1.75, 1e-12);
    }

    #[test]
    fn quantile_rejects_out_of_range() {
        assert_eq!(quantile(&[1.0], 1.5), None);
        assert_eq!(quantile(&[1.0], -0.1), None);
    }

    #[test]
    fn quantile_empty_is_none() {
        assert_eq!(quantile(&[], 0.5), None);
        assert_eq!(quantile(&[f64::NAN], 0.5), None);
    }

    #[test]
    fn quantile_unsorted_input() {
        let xs = [9.0, 1.0, 5.0, 3.0, 7.0];
        assert_close(median(&xs).unwrap(), 5.0, 1e-12);
    }

    #[test]
    fn percentile_95_for_billing() {
        // 100 five-minute samples: 95/5 billing should ignore the top 5.
        let xs: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let p95 = percentile(&xs, 95.0).unwrap();
        assert!((95.0..=96.0).contains(&p95), "p95 = {p95}");
    }

    #[test]
    fn median_odd_and_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), Some(2.0));
        assert_close(median(&[4.0, 1.0, 2.0, 3.0]).unwrap(), 2.5, 1e-12);
    }

    #[test]
    fn quartiles_and_iqr() {
        let xs: Vec<f64> = (0..=100).map(|i| i as f64).collect();
        let q = quartiles(&xs).unwrap();
        assert_close(q.q1, 25.0, 1e-9);
        assert_close(q.q2, 50.0, 1e-9);
        assert_close(q.q3, 75.0, 1e-9);
        assert_close(q.iqr(), 50.0, 1e-9);
        assert_close(iqr(&xs).unwrap(), 50.0, 1e-9);
    }

    #[test]
    fn median_iqr_summary() {
        let xs = [10.0, 20.0, 30.0, 40.0, f64::NAN];
        let s = median_iqr(&xs).unwrap();
        assert_eq!(s.count, 4);
        assert_close(s.median, 25.0, 1e-12);
        assert!(s.q1 < s.median && s.median < s.q3);
    }

    #[test]
    fn fraction_below_works() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_close(fraction_below(&xs, 3.0).unwrap(), 0.5, 1e-12);
        assert_eq!(fraction_below(&[], 1.0), None);
    }

    #[test]
    fn fraction_abs_at_least_works() {
        // Mimics "hourly change of $20 or more ~20% of the time".
        let xs = [-25.0, 5.0, 3.0, 21.0, -2.0, 0.0, 1.0, -4.0, 6.0, 2.0];
        assert_close(fraction_abs_at_least(&xs, 20.0).unwrap(), 0.2, 1e-12);
    }

    #[test]
    fn single_sample_quantiles() {
        assert_eq!(quantile(&[42.0], 0.3), Some(42.0));
        let q = quartiles(&[42.0]).unwrap();
        assert_eq!(q.q1, 42.0);
        assert_eq!(q.q3, 42.0);
    }

    #[test]
    fn cvar_closed_form_fixture() {
        // 1..=100 at α = 0.95: VaR = 95.05 (R-7), excess mass above it is
        // (0.95 + 1.95 + 2.95 + 3.95 + 4.95)/100 = 0.1475, so
        // CVaR = 95.05 + 0.1475/0.05 = 98.0 exactly.
        let xs: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_close(cvar(&xs, 0.95).unwrap(), 98.0, 1e-12);
    }

    #[test]
    fn cvar_alpha_zero_is_the_mean() {
        let xs = [10.0, 20.0, 60.0, 30.0];
        assert_close(cvar(&xs, 0.0).unwrap(), 30.0, 1e-12);
    }

    #[test]
    fn cvar_dominates_var_and_orders_with_alpha() {
        let xs: Vec<f64> = (0..500).map(|i| (i as f64 * 0.7).sin() * 30.0 + 60.0).collect();
        let c90 = cvar(&xs, 0.90).unwrap();
        let c95 = cvar(&xs, 0.95).unwrap();
        let v95 = quantile(&xs, 0.95).unwrap();
        assert!(c95 >= v95, "CVaR must not be below VaR: {c95} vs {v95}");
        assert!(c95 >= c90, "deeper tails cannot be cheaper: {c95} vs {c90}");
        let max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(c95 <= max + 1e-12, "CVaR cannot exceed the worst outcome");
    }

    #[test]
    fn cvar_edge_cases() {
        // Empty and all-NaN samples have no tail to average.
        assert_eq!(cvar(&[], 0.95), None);
        assert_eq!(cvar(&[f64::NAN, f64::INFINITY], 0.95), None);
        // A single sample is its own worst case.
        assert_eq!(cvar(&[42.0], 0.95), Some(42.0));
        // An all-equal sample returns the common value.
        assert_close(cvar(&[7.0; 12], 0.9).unwrap(), 7.0, 1e-12);
        // Non-finite samples are ignored, not propagated.
        assert_close(cvar(&[1.0, 2.0, f64::NAN, 3.0], 0.0).unwrap(), 2.0, 1e-12);
        // α = 1 would divide by zero; it is rejected, as is anything outside
        // [0, 1).
        assert_eq!(cvar(&[1.0, 2.0], 1.0), None);
        assert_eq!(cvar(&[1.0, 2.0], -0.1), None);
        assert_eq!(cvar(&[1.0, 2.0], f64::NAN), None);
    }

    #[test]
    fn cvar_handles_negative_costs() {
        // Negative electricity prices are real (§2.2); the estimator must
        // not assume positivity.
        let xs = [-50.0, -20.0, -10.0, 0.0, 5.0];
        let c = cvar(&xs, 0.8).unwrap();
        // The estimator never exceeds the worst sample (modulo rounding in
        // the excess/(1−α) division).
        assert!(c > 0.0 && c <= 5.0 + 1e-9, "tail of {xs:?} is the +5 outcome, got {c}");
    }
}
