//! Fixed-bin histograms.
//!
//! Figures 7, 10 and 13 of the paper are histograms (hour-to-hour price
//! change, pairwise price differentials, and sustained-differential
//! durations). [`Histogram`] provides the binning, normalised densities and
//! in-range fractions those figures report.

use serde::{Deserialize, Serialize};

/// A histogram with uniformly sized bins over `[lo, hi)`, plus explicit
/// underflow/overflow counters so that no sample is silently dropped.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bin_width: f64,
    counts: Vec<u64>,
    underflow: u64,
    overflow: u64,
    total: u64,
}

impl Histogram {
    /// Create a histogram with `bins` uniform bins covering `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `bins == 0` or `hi <= lo` — these are programming errors,
    /// not data errors.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(hi > lo, "histogram range must be non-empty");
        Self {
            lo,
            hi,
            bin_width: (hi - lo) / bins as f64,
            counts: vec![0; bins],
            underflow: 0,
            overflow: 0,
            total: 0,
        }
    }

    /// Build a histogram directly from a sample.
    pub fn from_samples(lo: f64, hi: f64, bins: usize, samples: &[f64]) -> Self {
        let mut h = Self::new(lo, hi, bins);
        h.add_all(samples);
        h
    }

    /// Record one observation. Non-finite values count as overflow.
    pub fn add(&mut self, x: f64) {
        self.total += 1;
        if !x.is_finite() {
            self.overflow += 1;
            return;
        }
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let idx = ((x - self.lo) / self.bin_width) as usize;
            // Guard against floating point landing exactly on the upper edge.
            let idx = idx.min(self.counts.len() - 1);
            self.counts[idx] += 1;
        }
    }

    /// Record many observations.
    pub fn add_all(&mut self, xs: &[f64]) {
        for &x in xs {
            self.add(x);
        }
    }

    /// Number of bins.
    pub fn bins(&self) -> usize {
        self.counts.len()
    }

    /// Lower edge of the histogram range.
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Upper edge of the histogram range.
    pub fn hi(&self) -> f64 {
        self.hi
    }

    /// Width of each bin.
    pub fn bin_width(&self) -> f64 {
        self.bin_width
    }

    /// Raw counts per bin.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Observations below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above the upper edge (plus non-finite values).
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total number of observations recorded (including under/overflow).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Center of bin `i`.
    pub fn bin_center(&self, i: usize) -> f64 {
        self.lo + (i as f64 + 0.5) * self.bin_width
    }

    /// Lower edge of bin `i`.
    pub fn bin_lo(&self, i: usize) -> f64 {
        self.lo + i as f64 * self.bin_width
    }

    /// Fraction of all observations in each bin (sums to ≤ 1; the rest is
    /// under/overflow). This is the y-axis of Figures 7 and 10.
    pub fn fractions(&self) -> Vec<f64> {
        if self.total == 0 {
            return vec![0.0; self.counts.len()];
        }
        self.counts.iter().map(|&c| c as f64 / self.total as f64).collect()
    }

    /// Probability density estimate per bin (fraction / bin width).
    pub fn densities(&self) -> Vec<f64> {
        self.fractions().into_iter().map(|f| f / self.bin_width).collect()
    }

    /// Fraction of all observations falling within `[a, b]`, computed from
    /// the raw samples' bin assignment (approximate at bin resolution).
    ///
    /// The paper annotates Figure 7 with "78 % of samples within ±20" style
    /// callouts; this provides the same quantity.
    pub fn fraction_between(&self, a: f64, b: f64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let mut covered = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            let lo = self.bin_lo(i);
            let hi = lo + self.bin_width;
            if lo >= a && hi <= b {
                covered += c;
            }
        }
        covered as f64 / self.total as f64
    }

    /// Index of the bin with the largest count, if any observation landed in
    /// a bin at all.
    pub fn mode_bin(&self) -> Option<usize> {
        if self.counts.iter().all(|&c| c == 0) {
            return None;
        }
        self.counts.iter().enumerate().max_by_key(|(_, &c)| c).map(|(i, _)| i)
    }

    /// Render the histogram as `(bin_center, fraction)` rows, convenient for
    /// the experiment harness to print.
    pub fn rows(&self) -> Vec<(f64, f64)> {
        self.fractions().iter().enumerate().map(|(i, &f)| (self.bin_center(i), f)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_binning() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.add_all(&[0.5, 1.5, 1.6, 9.9]);
        assert_eq!(h.counts()[0], 1);
        assert_eq!(h.counts()[1], 2);
        assert_eq!(h.counts()[9], 1);
        assert_eq!(h.total(), 4);
        assert_eq!(h.underflow(), 0);
        assert_eq!(h.overflow(), 0);
    }

    #[test]
    fn under_and_overflow_tracked() {
        let mut h = Histogram::new(-10.0, 10.0, 4);
        h.add(-11.0);
        h.add(10.0); // upper edge is exclusive
        h.add(250.0);
        h.add(f64::NAN);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 3);
        assert_eq!(h.total(), 4);
    }

    #[test]
    fn fractions_sum_with_overflow() {
        let mut h = Histogram::new(0.0, 1.0, 2);
        h.add_all(&[0.1, 0.6, 5.0]);
        let f = h.fractions();
        assert!((f.iter().sum::<f64>() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn densities_integrate_to_in_range_fraction() {
        let samples: Vec<f64> = (0..1000).map(|i| (i % 100) as f64 / 10.0).collect();
        let h = Histogram::from_samples(0.0, 10.0, 20, &samples);
        let integral: f64 = h.densities().iter().map(|d| d * h.bin_width()).sum();
        assert!((integral - 1.0).abs() < 1e-9);
    }

    #[test]
    fn bin_centers() {
        let h = Histogram::new(-40.0, 40.0, 8);
        assert!((h.bin_center(0) - -35.0).abs() < 1e-12);
        assert!((h.bin_center(7) - 35.0).abs() < 1e-12);
    }

    #[test]
    fn fraction_between_symmetric_window() {
        // 80 values inside [-20, 20], 20 outside.
        let mut xs = vec![];
        for i in 0..80 {
            xs.push(-19.0 + (i as f64) * 0.47);
        }
        for i in 0..20 {
            xs.push(30.0 + i as f64);
        }
        let h = Histogram::from_samples(-40.0, 60.0, 100, &xs);
        let frac = h.fraction_between(-20.0, 20.0);
        assert!((frac - 0.8).abs() < 0.05, "frac = {frac}");
    }

    #[test]
    fn mode_bin_found() {
        let h = Histogram::from_samples(0.0, 3.0, 3, &[0.5, 1.5, 1.6, 1.7, 2.5]);
        assert_eq!(h.mode_bin(), Some(1));
        let empty = Histogram::new(0.0, 1.0, 3);
        assert_eq!(empty.mode_bin(), None);
    }

    #[test]
    fn rows_align_with_counts() {
        let h = Histogram::from_samples(0.0, 4.0, 4, &[0.1, 1.1, 1.2, 3.9]);
        let rows = h.rows();
        assert_eq!(rows.len(), 4);
        assert!((rows[1].1 - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn zero_bins_panics() {
        let _ = Histogram::new(0.0, 1.0, 0);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn inverted_range_panics() {
        let _ = Histogram::new(1.0, 0.0, 4);
    }
}
