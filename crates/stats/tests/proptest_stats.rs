//! Property-based tests for the statistics kernels.

use proptest::prelude::*;
use wattroute_stats::{
    correlation, descriptive, online::OnlineStats, quantiles, timeseries, Histogram,
};

fn finite_vec(max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1e6f64..1e6f64, 1..max_len)
}

proptest! {
    #[test]
    fn mean_is_between_min_and_max(xs in finite_vec(200)) {
        let m = descriptive::mean(&xs).unwrap();
        let lo = descriptive::min(&xs).unwrap();
        let hi = descriptive::max(&xs).unwrap();
        prop_assert!(m >= lo - 1e-9 && m <= hi + 1e-9);
    }

    #[test]
    fn variance_is_non_negative(xs in finite_vec(200)) {
        prop_assert!(descriptive::variance(&xs).unwrap() >= -1e-9);
    }

    #[test]
    fn shifting_does_not_change_variance(xs in finite_vec(100), shift in -1e5f64..1e5f64) {
        let shifted: Vec<f64> = xs.iter().map(|x| x + shift).collect();
        let v1 = descriptive::variance(&xs).unwrap();
        let v2 = descriptive::variance(&shifted).unwrap();
        // relative tolerance: catastrophic cancellation is bounded for our ranges
        prop_assert!((v1 - v2).abs() <= 1e-6 * (1.0 + v1.abs()));
    }

    #[test]
    fn scaling_scales_std_dev(xs in finite_vec(100), scale in 0.1f64..10.0) {
        let scaled: Vec<f64> = xs.iter().map(|x| x * scale).collect();
        let s1 = descriptive::std_dev(&xs).unwrap();
        let s2 = descriptive::std_dev(&scaled).unwrap();
        prop_assert!((s2 - scale * s1).abs() <= 1e-6 * (1.0 + s2.abs()));
    }

    #[test]
    fn quantiles_are_monotone(xs in finite_vec(200), a in 0.0f64..1.0, b in 0.0f64..1.0) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let qlo = quantiles::quantile(&xs, lo).unwrap();
        let qhi = quantiles::quantile(&xs, hi).unwrap();
        prop_assert!(qlo <= qhi + 1e-12);
    }

    #[test]
    fn median_within_range(xs in finite_vec(200)) {
        let m = quantiles::median(&xs).unwrap();
        prop_assert!(m >= descriptive::min(&xs).unwrap());
        prop_assert!(m <= descriptive::max(&xs).unwrap());
    }

    #[test]
    fn trimmed_mean_within_raw_range(xs in finite_vec(200), frac in 0.0f64..0.2) {
        let t = descriptive::trimmed(&xs, frac).unwrap();
        prop_assert!(t.mean >= descriptive::min(&xs).unwrap() - 1e-9);
        prop_assert!(t.mean <= descriptive::max(&xs).unwrap() + 1e-9);
        prop_assert!(t.retained <= xs.len());
    }

    #[test]
    fn pearson_is_bounded_and_symmetric(
        xs in finite_vec(100),
        ys in finite_vec(100),
    ) {
        let n = xs.len().min(ys.len());
        if let Some(r) = correlation::pearson(&xs[..n], &ys[..n]) {
            prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&r));
            let r2 = correlation::pearson(&ys[..n], &xs[..n]).unwrap();
            prop_assert!((r - r2).abs() < 1e-9);
        }
    }

    #[test]
    fn pearson_self_correlation_is_one(xs in finite_vec(100)) {
        if let Some(r) = correlation::pearson(&xs, &xs) {
            prop_assert!((r - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn mutual_information_non_negative(xs in finite_vec(200), ys in finite_vec(200)) {
        let n = xs.len().min(ys.len());
        if let Some(mi) = correlation::mutual_information(&xs[..n], &ys[..n], 6) {
            prop_assert!(mi >= 0.0);
        }
    }

    #[test]
    fn online_stats_match_batch(xs in finite_vec(300)) {
        let mut o = OnlineStats::new();
        for &x in &xs {
            o.push(x);
        }
        let batch_mean = descriptive::mean(&xs).unwrap();
        let batch_var = descriptive::variance(&xs).unwrap();
        prop_assert!((o.mean().unwrap() - batch_mean).abs() < 1e-6 * (1.0 + batch_mean.abs()));
        prop_assert!((o.variance().unwrap() - batch_var).abs() < 1e-5 * (1.0 + batch_var.abs()));
    }

    #[test]
    fn histogram_conserves_observations(xs in finite_vec(300), lo in -100.0f64..0.0, width in 1.0f64..200.0) {
        let h = Histogram::from_samples(lo, lo + width, 16, &xs);
        let binned: u64 = h.counts().iter().sum();
        prop_assert_eq!(binned + h.underflow() + h.overflow(), h.total());
        prop_assert_eq!(h.total(), xs.len() as u64);
    }

    #[test]
    fn diff_series_length(xs in finite_vec(300)) {
        let d = timeseries::diff_series(&xs);
        prop_assert_eq!(d.len(), xs.len().saturating_sub(1));
    }

    #[test]
    fn window_average_preserves_total_mass_approximately(xs in finite_vec(300), w in 1usize..24) {
        // The mean of window means (weighted by window sizes) equals the overall mean.
        let means = timeseries::window_average(&xs, w);
        prop_assert!(!means.is_empty());
        let reconstructed: f64 = xs
            .chunks(w)
            .zip(&means)
            .map(|(chunk, m)| m * chunk.len() as f64)
            .sum();
        let total: f64 = xs.iter().sum();
        prop_assert!((reconstructed - total).abs() < 1e-6 * (1.0 + total.abs()));
    }

    #[test]
    fn run_lengths_sum_bounded(xs in finite_vec(300), threshold in -1e5f64..1e5) {
        let runs = timeseries::run_lengths(&xs, |x| x > threshold);
        let total: usize = runs.iter().sum();
        let matching = xs.iter().filter(|&&x| x > threshold).count();
        prop_assert_eq!(total, matching);
        prop_assert!(runs.iter().all(|&r| r >= 1));
    }
}
