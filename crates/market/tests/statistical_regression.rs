//! Statistical regression tests pinning the generator to the paper's
//! published calibration targets.
//!
//! The model replaces the paper's proprietary Platts/RTO archive with a
//! generative process, so the only way to keep it honest is to regenerate
//! the 39-month window (January 2006 – March 2009) and re-measure the
//! statistics the paper publishes:
//!
//! * **Figure 6** — 1 %-trimmed mean / standard deviation / kurtosis of
//!   hourly real-time prices for six named hubs;
//! * **Figure 7** — hour-to-hour price changes are near-zero-mean and far
//!   heavier-tailed than a Gaussian;
//! * **Figure 8** — hubs correlate much more strongly within an RTO than
//!   across RTOs, with the LA ↔ Palo Alto pair around 0.94.
//!
//! Tolerances are deliberately loose enough to survive reseeding the
//! generator (the targets are distributional, not golden numbers) but tight
//! enough that a calibration regression — a lost spike process, a broken
//! regional factor, a rescaled base price — fails loudly.
//!
//! One documented deviation (see `docs/paper_fidelity.md`): the synthetic
//! spike process concentrates essentially all tail mass in the outer 1 % of
//! hours, so *trimmed* kurtosis lands near-Gaussian (~2.6–3.0) where
//! Figure 6 reports 4.6–11.9 — while *untrimmed* kurtosis (11–35) clears
//! every published target. The tests pin both sides of that trade.

use wattroute_geo::{hubs, HubId, Rto};
use wattroute_market::generator::PriceGenerator;
use wattroute_market::model::MarketModel;
use wattroute_market::time::HourRange;
use wattroute_market::types::PriceSet;
use wattroute_stats as stats;

/// Figure 6 rows: hub, trimmed mean, trimmed std dev, trimmed kurtosis.
const FIGURE_6: [(HubId, f64, f64, f64); 6] = [
    (HubId::BostonMa, 66.5, 25.8, 5.7),
    (HubId::NewYorkNy, 77.9, 40.3, 7.9),
    (HubId::ChicagoIl, 40.6, 26.9, 4.6),
    (HubId::RichmondVa, 57.8, 39.2, 6.6),
    (HubId::IndianapolisIn, 44.0, 28.3, 5.8),
    (HubId::PaloAltoCa, 54.0, 34.2, 11.9),
];

/// One 39-month generation shared by every check in this file. The seed is
/// fixed, so every measured statistic below is exactly reproducible.
fn paper_window_prices() -> PriceSet {
    PriceGenerator::new(MarketModel::calibrated(), 2009)
        .realtime_hourly(HourRange::paper_39_months())
}

#[test]
fn figure_6_trimmed_moments_match_calibration_targets() {
    let set = paper_window_prices();
    for (hub, mean, std_dev, kurtosis) in FIGURE_6 {
        let series = set.for_hub(hub).expect("calibrated model covers the figure hubs");
        let t = stats::trimmed(&series.prices, 0.01).expect("non-empty series");
        assert!(
            (t.mean - mean).abs() < mean * 0.15,
            "{hub:?}: trimmed mean {:.1} vs Figure 6 target {mean}",
            t.mean
        );
        assert!(
            (t.std_dev - std_dev).abs() < std_dev * 0.35,
            "{hub:?}: trimmed std dev {:.1} vs Figure 6 target {std_dev}",
            t.std_dev
        );
        // The model's spikes live almost entirely in the trimmed 1 % tails:
        // untrimmed kurtosis must clear the published target, while trimmed
        // kurtosis stays in the near-Gaussian band the bulk process
        // produces (the documented deviation from Figure 6's trimmed rows).
        let full_kurtosis = stats::kurtosis(&series.prices).expect("non-empty series");
        assert!(
            full_kurtosis > kurtosis,
            "{hub:?}: untrimmed kurtosis {full_kurtosis:.1} must clear the \
             Figure 6 target {kurtosis}"
        );
        assert!(
            (2.2..3.6).contains(&t.kurtosis),
            "{hub:?}: trimmed kurtosis {:.1} left the near-Gaussian bulk band",
            t.kurtosis
        );
    }
}

#[test]
fn figure_7_hourly_changes_are_near_zero_mean_and_heavy_tailed() {
    let set = paper_window_prices();
    for (hub, ..) in FIGURE_6 {
        let series = set.for_hub(hub).expect("calibrated model covers the figure hubs");
        let diffs = stats::diff_series(&series.prices);
        let mean = stats::mean(&diffs).expect("non-empty diffs");
        let sd = stats::std_dev(&diffs).expect("non-empty diffs");
        assert!(
            mean.abs() < 0.05 * sd,
            "{hub:?}: hourly changes should be near zero-mean (mean {mean:.3}, sd {sd:.1})"
        );
        let kurt = stats::kurtosis(&diffs).expect("non-empty diffs");
        assert!(
            kurt > 6.0,
            "{hub:?}: hourly changes should be far heavier-tailed than Gaussian, kurtosis {kurt:.1}"
        );
    }
}

#[test]
fn figure_8_intra_rto_correlations_dominate_inter_rto() {
    let set = paper_window_prices();
    let rto_of = |hub: HubId| hubs::hub(hub).rto;
    // Only hubs in hourly markets — the Pacific Northwest has none.
    let market_hubs: Vec<HubId> = set
        .series
        .iter()
        .map(|s| s.hub)
        .filter(|&h| rto_of(h) != Rto::NonMarketNorthwest)
        .collect();

    let mut intra = Vec::new();
    let mut inter = Vec::new();
    for (i, &a) in market_hubs.iter().enumerate() {
        for &b in &market_hubs[i + 1..] {
            let r = stats::pearson(
                &set.for_hub(a).expect("series exists").prices,
                &set.for_hub(b).expect("series exists").prices,
            )
            .expect("equal-length series");
            if rto_of(a) == rto_of(b) {
                intra.push(r);
            } else {
                inter.push(r);
            }
        }
    }
    let mean = |xs: &[f64]| stats::mean(xs).expect("non-empty");
    let (intra_mean, inter_mean) = (mean(&intra), mean(&inter));
    assert!(
        intra_mean > inter_mean + 0.15,
        "intra-RTO correlation ({intra_mean:.2}) must clearly dominate inter-RTO ({inter_mean:.2})"
    );
    assert!(
        intra.iter().all(|&r| r > 0.35),
        "every intra-RTO pair should be strongly correlated (min {:.2})",
        intra.iter().cloned().fold(f64::INFINITY, f64::min)
    );

    // §3.2: the two CAISO cluster hubs track each other at ~0.94.
    let caiso = stats::pearson(
        &set.for_hub(HubId::LosAngelesCa).expect("series exists").prices,
        &set.for_hub(HubId::PaloAltoCa).expect("series exists").prices,
    )
    .expect("equal-length series");
    assert!(
        (caiso - 0.94).abs() < 0.08,
        "LA ↔ Palo Alto correlation {caiso:.3} vs the paper's 0.94"
    );
}
