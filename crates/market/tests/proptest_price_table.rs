//! Property-based tests pinning the compiled [`PriceTable`] to the
//! reference per-series lookups: for arbitrary series, ranges, and delays,
//! every table cell must agree exactly (bit-for-bit) with
//! `PriceSeries::price_at` / `delayed_price_at`.

use proptest::prelude::*;
use wattroute_geo::HubId;
use wattroute_market::price_table::PriceTable;
use wattroute_market::time::{HourRange, SimHour};
use wattroute_market::types::{MarketKind, PriceSeries, PriceSet};

const HUBS: [HubId; 4] = [HubId::BostonMa, HubId::ChicagoIl, HubId::AustinTx, HubId::PaloAltoCa];

fn hub_prices() -> impl Strategy<Value = Vec<Vec<f64>>> {
    // One price row per hub; rows are trimmed to a common length below.
    prop::collection::vec(
        prop::collection::vec(-50.0f64..900.0, 24..200),
        HUBS.len()..HUBS.len() + 1,
    )
}

proptest! {
    #[test]
    fn table_cells_agree_exactly_with_series_lookups(
        rows in hub_prices(),
        series_start in 0u64..500,
        lead in 0u64..48,
        delay in 0u64..60,
    ) {
        let hours = rows.iter().map(Vec::len).min().unwrap() as u64;
        let set = PriceSet::new(
            HUBS.iter()
                .zip(&rows)
                .map(|(hub, row)| {
                    PriceSeries::new(
                        *hub,
                        MarketKind::RealTimeHourly,
                        SimHour(series_start),
                        row[..hours as usize].to_vec(),
                    )
                })
                .collect(),
        );
        // A sub-range of the series, offset so clamping sometimes occurs
        // (lead < delay) and sometimes not.
        let lead = lead.min(hours.saturating_sub(1));
        let range = HourRange::new(
            SimHour(series_start + lead),
            SimHour(series_start + hours),
        );
        let table = PriceTable::build(&set, &HUBS, range, delay);

        for h in range.start.0..range.end.0 {
            let hour = SimHour(h);
            let billing = table.billing_at(hour).unwrap();
            let delayed = table.delayed_at(hour).unwrap();
            for (i, hub) in HUBS.iter().enumerate() {
                let series = set.for_hub(*hub).unwrap();
                prop_assert_eq!(billing[i], series.price_at(hour).unwrap());
                prop_assert_eq!(delayed[i], series.delayed_price_at(hour, delay).unwrap());
            }
        }

        // The clamped-lead accounting matches first principles: hours of
        // the range whose delayed lookup lands before the series start.
        let expected_clamped = (series_start + delay)
            .saturating_sub(range.start.0)
            .min(range.len_hours());
        prop_assert_eq!(table.clamped_lead_hours(), expected_clamped);

        // Outside the range both lookups are None.
        prop_assert!(table.billing_at(SimHour(range.end.0)).is_none());
        if range.start.0 > 0 {
            prop_assert!(table.delayed_at(SimHour(range.start.0 - 1)).is_none());
        }
    }
}
