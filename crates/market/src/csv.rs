//! Plain-text import/export of hourly price series.
//!
//! The workspace generates its own calibrated synthetic prices, but the
//! simulator is equally happy to run on real RTO data. This module defines
//! a minimal CSV interchange format so archived market data can be dropped
//! in without adding a CSV dependency:
//!
//! ```text
//! hub,hour,price
//! NP15,0,42.17
//! NP15,1,39.80
//! ...
//! ```
//!
//! `hub` is a market location code (see [`wattroute_geo::hubs::find_by_code`]),
//! `hour` is hours since 2006-01-01 00:00 EST, and `price` is $/MWh.

use crate::time::SimHour;
use crate::types::{MarketKind, PriceSeries, PriceSet};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use wattroute_geo::hubs;

/// Errors produced while parsing price CSV data.
#[derive(Debug, Clone, PartialEq, Eq)]
#[allow(missing_docs)] // variant fields are self-describing (line, code, ...)
pub enum CsvError {
    /// The header row was missing or malformed.
    BadHeader(String),
    /// A data row did not have exactly three fields.
    BadRow { line: usize, content: String },
    /// A field failed to parse.
    BadField { line: usize, field: &'static str, value: String },
    /// An unknown hub code was encountered.
    UnknownHub { line: usize, code: String },
    /// A hub's hours were not contiguous starting from its first hour.
    NonContiguous { hub: String, expected_hour: u64, found_hour: u64 },
}

impl std::fmt::Display for CsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CsvError::BadHeader(h) => write!(f, "bad header: {h:?} (expected 'hub,hour,price')"),
            CsvError::BadRow { line, content } => {
                write!(f, "line {line}: expected 3 fields, got {content:?}")
            }
            CsvError::BadField { line, field, value } => {
                write!(f, "line {line}: could not parse {field} from {value:?}")
            }
            CsvError::UnknownHub { line, code } => {
                write!(f, "line {line}: unknown hub code {code:?}")
            }
            CsvError::NonContiguous { hub, expected_hour, found_hour } => write!(
                f,
                "hub {hub}: hours must be contiguous, expected {expected_hour} found {found_hour}"
            ),
        }
    }
}

impl std::error::Error for CsvError {}

/// Serialize a price set to the CSV interchange format.
pub fn to_csv(set: &PriceSet) -> String {
    let mut out = String::from("hub,hour,price\n");
    for series in &set.series {
        let code = hubs::hub(series.hub).code;
        for (i, price) in series.hourly_prices().iter().enumerate() {
            let _ = writeln!(out, "{code},{},{:.4}", series.start.0 + i as u64, price);
        }
    }
    out
}

/// Parse the CSV interchange format into a [`PriceSet`] of hourly real-time
/// series. Rows may be grouped by hub in any order, but each hub's hours
/// must be contiguous.
pub fn from_csv(text: &str) -> Result<PriceSet, CsvError> {
    let mut lines = text.lines().enumerate();
    let header = loop {
        match lines.next() {
            Some((_, l)) if l.trim().is_empty() => continue,
            Some((_, l)) => break l,
            None => return Err(CsvError::BadHeader(String::new())),
        }
    };
    let normalized: String =
        header.split(',').map(|s| s.trim().to_ascii_lowercase()).collect::<Vec<_>>().join(",");
    if normalized != "hub,hour,price" {
        return Err(CsvError::BadHeader(header.to_string()));
    }

    // hub code -> (sorted map of hour -> price)
    let mut per_hub: BTreeMap<String, BTreeMap<u64, f64>> = BTreeMap::new();
    for (idx, line) in lines {
        let line_no = idx + 1;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let fields: Vec<&str> = trimmed.split(',').map(|s| s.trim()).collect();
        if fields.len() != 3 {
            return Err(CsvError::BadRow { line: line_no, content: trimmed.to_string() });
        }
        let code = fields[0].to_string();
        if hubs::find_by_code(&code).is_none() {
            return Err(CsvError::UnknownHub { line: line_no, code });
        }
        let hour: u64 = fields[1].parse().map_err(|_| CsvError::BadField {
            line: line_no,
            field: "hour",
            value: fields[1].to_string(),
        })?;
        let price: f64 = fields[2].parse().map_err(|_| CsvError::BadField {
            line: line_no,
            field: "price",
            value: fields[2].to_string(),
        })?;
        per_hub.entry(code).or_default().insert(hour, price);
    }

    let mut series = Vec::new();
    for (code, hours) in per_hub {
        let hub = hubs::find_by_code(&code).expect("validated above");
        let first = *hours.keys().next().expect("non-empty map");
        let mut prices = Vec::with_capacity(hours.len());
        for (expected, (&hour, &price)) in hours.iter().enumerate() {
            let expected_hour = first + expected as u64;
            if hour != expected_hour {
                return Err(CsvError::NonContiguous {
                    hub: code.clone(),
                    expected_hour,
                    found_hour: hour,
                });
            }
            prices.push(price);
        }
        series.push(PriceSeries::new(hub.id, MarketKind::RealTimeHourly, SimHour(first), prices));
    }
    Ok(PriceSet::new(series))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::PriceGenerator;
    use crate::time::HourRange;
    use wattroute_geo::HubId;

    #[test]
    fn roundtrip_generated_prices() {
        let g = PriceGenerator::nine_cluster_default(55);
        let r = HourRange::new(SimHour(0), SimHour(48));
        let set = g.realtime_hourly(r);
        let csv = to_csv(&set);
        let parsed = from_csv(&csv).unwrap();
        assert_eq!(parsed.series.len(), set.series.len());
        for original in &set.series {
            let round = parsed.for_hub(original.hub).unwrap();
            assert_eq!(round.start, original.start);
            for (a, b) in round.prices.iter().zip(&original.prices) {
                assert!((a - b).abs() < 1e-3, "{a} vs {b}");
            }
        }
    }

    #[test]
    fn parses_hand_written_csv() {
        let text = "hub,hour,price\nNP15,10,42.5\nNP15,11,40.0\nNYC,10,80.0\nNYC,11,85.5\n";
        let set = from_csv(text).unwrap();
        assert_eq!(set.series.len(), 2);
        let np15 = set.for_hub(HubId::PaloAltoCa).unwrap();
        assert_eq!(np15.start, SimHour(10));
        assert_eq!(np15.prices, vec![42.5, 40.0]);
    }

    #[test]
    fn header_is_required() {
        assert!(matches!(from_csv(""), Err(CsvError::BadHeader(_))));
        assert!(matches!(from_csv("a,b\n"), Err(CsvError::BadHeader(_))));
        // Header is case/space tolerant.
        assert!(from_csv("Hub, Hour, Price\nNYC,0,50\n").is_ok());
    }

    #[test]
    fn bad_rows_are_rejected_with_line_numbers() {
        let err = from_csv("hub,hour,price\nNYC,1\n").unwrap_err();
        assert!(matches!(err, CsvError::BadRow { line: 2, .. }));
        let err = from_csv("hub,hour,price\nNYC,xx,50\n").unwrap_err();
        assert!(matches!(err, CsvError::BadField { field: "hour", .. }));
        let err = from_csv("hub,hour,price\nNYC,1,abc\n").unwrap_err();
        assert!(matches!(err, CsvError::BadField { field: "price", .. }));
        let err = from_csv("hub,hour,price\nNOWHERE,1,50\n").unwrap_err();
        assert!(matches!(err, CsvError::UnknownHub { .. }));
    }

    #[test]
    fn gaps_are_rejected() {
        let err = from_csv("hub,hour,price\nNYC,0,50\nNYC,2,55\n").unwrap_err();
        assert!(matches!(err, CsvError::NonContiguous { expected_hour: 1, found_hour: 2, .. }));
    }

    #[test]
    fn error_messages_are_informative() {
        let err = from_csv("hub,hour,price\nNYC,0,50\nNYC,5,55\n").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("NYC") && msg.contains('5'));
    }
}
