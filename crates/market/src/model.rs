//! The stochastic price-process model and its per-hub calibration.
//!
//! # Substitution note
//!
//! The paper works from archived Platts / RTO price data (January 2006 –
//! March 2009), which is proprietary. This module replaces that data source
//! with a generative model whose components are calibrated to the summary
//! statistics the paper itself publishes:
//!
//! * Figure 6 — trimmed mean / standard deviation / kurtosis of hourly
//!   real-time prices for six named hubs;
//! * Figure 7 — heavy-tailed, zero-mean hour-to-hour change distributions;
//! * Figure 8 — intra-RTO correlations mostly above 0.6, inter-RTO
//!   correlations below it, CAISO internally ~0.94;
//! * Figure 3 — the 2008 fuel-price elevation, the 2009 downturn, and the
//!   Pacific Northwest's springtime hydro dip;
//! * Figure 10 — near-zero-mean, high-variance price differentials for
//!   cross-country pairs.
//!
//! The model composes, per hub `h` and hour `t`:
//!
//! ```text
//! price_h(t) = base_h · fuel(t) · seasonal_h(t) · demand_h(t)
//!              + rto_factor_{RTO(h)}(t) + local_factor_h(t)
//!              + spike_h(t) − negative_dip_h(t)
//! ```
//!
//! where `fuel` is a national slow-moving factor, `seasonal` is an annual
//! shape, `demand` is a local-time-of-day/day-of-week shape, the two AR(1)
//! factors provide correlated and idiosyncratic volatility, and the spike
//! term provides the heavy tails characteristic of real-time markets.

use crate::time::SimHour;
use serde::{Deserialize, Serialize};
use wattroute_geo::{hubs, HubId, Rto};

/// Parameters of the national fuel-price factor (shared by all hubs).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FuelFactorParams {
    /// Peak relative elevation of the 2008 natural-gas run-up (Figure 3
    /// shows prices elevated by roughly a third in mid-2008).
    pub gas_spike_2008_amplitude: f64,
    /// Relative decline after the late-2008 economic downturn.
    pub downturn_2009_amplitude: f64,
    /// Innovation standard deviation of the slow AR(1) noise on the factor.
    pub noise_sigma: f64,
    /// Autocorrelation of the slow AR(1) noise (close to 1).
    pub noise_rho: f64,
}

impl Default for FuelFactorParams {
    fn default() -> Self {
        Self {
            gas_spike_2008_amplitude: 0.38,
            downturn_2009_amplitude: 0.18,
            noise_sigma: 0.004,
            noise_rho: 0.995,
        }
    }
}

impl FuelFactorParams {
    /// Deterministic part of the fuel factor at a given hour (the stochastic
    /// AR(1) noise is added by the generator).
    pub fn deterministic(&self, hour: SimHour) -> f64 {
        // Hours since epoch expressed in years.
        let years = hour.0 as f64 / 8766.0;
        // Mid-2008 is ~2.5 years after January 2006.
        let gas_bump = self.gas_spike_2008_amplitude * gaussian_bump(years, 2.55, 0.30);
        // The downturn ramps in over late 2008 / 2009 and stays.
        let downturn = self.downturn_2009_amplitude * smooth_step(years, 2.9, 3.15);
        1.0 + gas_bump - downturn
    }
}

fn gaussian_bump(x: f64, center: f64, width: f64) -> f64 {
    (-(x - center) * (x - center) / (2.0 * width * width)).exp()
}

fn smooth_step(x: f64, lo: f64, hi: f64) -> f64 {
    if x <= lo {
        0.0
    } else if x >= hi {
        1.0
    } else {
        let t = (x - lo) / (hi - lo);
        t * t * (3.0 - 2.0 * t)
    }
}

/// Seasonal profile of a hub's prices.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SeasonalProfile {
    /// Summer-peaking (most thermal-dominated markets): prices rise with
    /// summer cooling demand and slightly in winter.
    SummerPeaking,
    /// Hydro-dominated Pacific Northwest: a pronounced dip in April/May when
    /// snowmelt fills the reservoirs (visible for MID-C in Figure 3).
    HydroSpringDip,
}

impl SeasonalProfile {
    /// Multiplicative seasonal factor given the fraction of the year
    /// elapsed (0 = January 1st).
    pub fn factor(&self, year_fraction: f64) -> f64 {
        match self {
            SeasonalProfile::SummerPeaking => {
                // Peak around late July (fraction ~0.57), secondary winter bump.
                1.0 + 0.14 * gaussian_bump(year_fraction, 0.57, 0.10)
                    + 0.06 * gaussian_bump(year_fraction, 0.04, 0.06)
                    + 0.06 * gaussian_bump(year_fraction, 0.98, 0.06)
            }
            SeasonalProfile::HydroSpringDip => {
                // April/May dip (fraction ~0.30) when hydro is abundant.
                1.0 - 0.28 * gaussian_bump(year_fraction, 0.30, 0.08)
                    + 0.08 * gaussian_bump(year_fraction, 0.60, 0.10)
            }
        }
    }
}

/// Per-hub parameters of the price process.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HubPriceParams {
    /// The hub these parameters describe.
    pub hub: HubId,
    /// Base price level in $/MWh (approximately the long-run mean).
    pub base_price: f64,
    /// Strength of the time-of-day demand swing as a fraction of the base
    /// price (0.5 means the peak-hour component adds up to 50 % of base).
    pub diurnal_amplitude: f64,
    /// Multiplier applied to the demand swing on weekends.
    pub weekend_discount: f64,
    /// Idiosyncratic (hub-local) AR(1) innovation sigma in $/MWh.
    pub local_sigma: f64,
    /// Probability per hour of a price spike during average demand.
    pub spike_rate: f64,
    /// Mean magnitude of a spike in $/MWh (exponentially distributed).
    pub spike_scale: f64,
    /// Probability per low-demand hour of a negative-price dip.
    pub negative_rate: f64,
    /// Seasonal profile.
    pub seasonal: SeasonalProfile,
}

/// Per-RTO parameters shared by all hubs in the region.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RtoParams {
    /// The region.
    pub rto: Rto,
    /// Innovation sigma of the region-wide AR(1) factor in $/MWh.
    pub regional_sigma: f64,
    /// Autocorrelation of the region-wide factor.
    pub regional_rho: f64,
    /// Probability that a spike event is region-wide (congestion affecting
    /// the whole market) rather than hub-local.
    pub shared_spike_fraction: f64,
}

/// Calibrated parameters for every hub and RTO, plus the national factor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MarketModel {
    /// National fuel factor parameters.
    pub fuel: FuelFactorParams,
    /// Region-level parameters.
    pub rtos: Vec<RtoParams>,
    /// Hub-level parameters.
    pub hubs: Vec<HubPriceParams>,
    /// Price floor in $/MWh (markets cap how negative prices may go).
    pub price_floor: f64,
    /// Price cap in $/MWh (offer caps; e.g. $1000-$3000 in most RTOs). The
    /// paper observes a $1900 differential spike, so the cap is set high.
    pub price_cap: f64,
}

impl MarketModel {
    /// The default calibration targeting the statistics published in the
    /// paper (see module docs).
    pub fn calibrated() -> Self {
        let rtos = vec![
            RtoParams {
                rto: Rto::IsoNe,
                regional_sigma: 11.0,
                regional_rho: 0.75,
                shared_spike_fraction: 0.5,
            },
            RtoParams {
                rto: Rto::Nyiso,
                regional_sigma: 14.0,
                regional_rho: 0.75,
                shared_spike_fraction: 0.4,
            },
            RtoParams {
                rto: Rto::Pjm,
                regional_sigma: 12.0,
                regional_rho: 0.75,
                shared_spike_fraction: 0.4,
            },
            RtoParams {
                rto: Rto::Miso,
                regional_sigma: 12.0,
                regional_rho: 0.75,
                shared_spike_fraction: 0.5,
            },
            RtoParams {
                rto: Rto::Caiso,
                regional_sigma: 15.0,
                regional_rho: 0.78,
                shared_spike_fraction: 0.85,
            },
            RtoParams {
                rto: Rto::Ercot,
                regional_sigma: 13.0,
                regional_rho: 0.75,
                shared_spike_fraction: 0.6,
            },
            RtoParams {
                rto: Rto::NonMarketNorthwest,
                regional_sigma: 8.0,
                regional_rho: 0.8,
                shared_spike_fraction: 0.5,
            },
        ];

        use HubId::*;
        use SeasonalProfile::*;
        let hub = |hub,
                   base: f64,
                   diurnal: f64,
                   local_sigma: f64,
                   spike_rate: f64,
                   spike_scale: f64,
                   seasonal| HubPriceParams {
            hub,
            base_price: base,
            diurnal_amplitude: diurnal,
            weekend_discount: 0.82,
            local_sigma,
            spike_rate,
            spike_scale,
            negative_rate: 0.002,
            seasonal,
        };

        let hubs = vec![
            // ISO New England — Boston's Figure 6 row: mean 66.5, sigma 25.8, kurtosis 5.7.
            hub(BostonMa, 64.0, 0.42, 5.5, 0.010, 70.0, SummerPeaking),
            hub(PortlandMe, 60.0, 0.40, 6.0, 0.009, 65.0, SummerPeaking),
            hub(HartfordCt, 66.0, 0.42, 6.0, 0.010, 70.0, SummerPeaking),
            hub(ManchesterNh, 62.0, 0.40, 6.0, 0.009, 65.0, SummerPeaking),
            // NYISO — NYC: mean 77.9, sigma 40.3, kurtosis 7.9.
            hub(NewYorkNy, 74.0, 0.55, 9.0, 0.018, 110.0, SummerPeaking),
            hub(AlbanyNy, 66.0, 0.48, 8.0, 0.013, 85.0, SummerPeaking),
            hub(BuffaloNy, 57.0, 0.45, 8.0, 0.011, 75.0, SummerPeaking),
            hub(LongIslandNy, 82.0, 0.58, 10.0, 0.020, 120.0, SummerPeaking),
            hub(PoughkeepsieNy, 68.0, 0.48, 8.0, 0.013, 85.0, SummerPeaking),
            // PJM — Chicago: 40.6 / 26.9 / 4.6; Richmond: 57.8 / 39.2 / 6.6.
            hub(ChicagoIl, 39.0, 0.50, 7.5, 0.010, 80.0, SummerPeaking),
            hub(RichmondVa, 55.0, 0.60, 10.0, 0.016, 110.0, SummerPeaking),
            hub(NewarkNj, 60.0, 0.52, 8.0, 0.013, 90.0, SummerPeaking),
            hub(WashingtonDc, 58.0, 0.55, 8.5, 0.014, 95.0, SummerPeaking),
            hub(BaltimoreMd, 59.0, 0.55, 8.5, 0.014, 95.0, SummerPeaking),
            hub(PittsburghPa, 50.0, 0.48, 7.5, 0.011, 80.0, SummerPeaking),
            hub(ColumbusOh, 46.0, 0.46, 7.5, 0.010, 75.0, SummerPeaking),
            // MISO — Indianapolis: 44.0 / 28.3 / 5.8.
            hub(PeoriaIl, 40.0, 0.52, 9.0, 0.011, 85.0, SummerPeaking),
            hub(MinneapolisMn, 43.0, 0.48, 8.0, 0.010, 75.0, SummerPeaking),
            hub(IndianapolisIn, 42.0, 0.50, 8.5, 0.011, 85.0, SummerPeaking),
            hub(DetroitMi, 45.0, 0.48, 8.0, 0.011, 80.0, SummerPeaking),
            hub(MadisonWi, 42.0, 0.47, 8.0, 0.010, 75.0, SummerPeaking),
            hub(StLouisMo, 41.0, 0.49, 8.5, 0.011, 80.0, SummerPeaking),
            // CAISO — Palo Alto: 54.0 / 34.2 / 11.9; LA–Palo Alto correlation 0.94.
            hub(PaloAltoCa, 52.0, 0.48, 3.0, 0.016, 120.0, SummerPeaking),
            hub(LosAngelesCa, 53.0, 0.50, 3.0, 0.016, 120.0, SummerPeaking),
            hub(FresnoCa, 52.0, 0.49, 3.5, 0.016, 120.0, SummerPeaking),
            // ERCOT — gas-heavy Texas.
            hub(DallasTx, 47.0, 0.55, 8.0, 0.015, 105.0, SummerPeaking),
            hub(AustinTx, 48.0, 0.56, 8.0, 0.015, 105.0, SummerPeaking),
            hub(HoustonTx, 50.0, 0.56, 8.5, 0.016, 110.0, SummerPeaking),
            hub(OdessaTx, 44.0, 0.52, 9.0, 0.014, 95.0, SummerPeaking),
            // Pacific Northwest — hydro-dominated, no hourly market.
            hub(PortlandOr, 52.0, 0.30, 6.0, 0.005, 50.0, HydroSpringDip),
        ];

        Self {
            fuel: FuelFactorParams::default(),
            rtos,
            hubs,
            price_floor: -150.0,
            price_cap: 2500.0,
        }
    }

    /// Parameters for a hub, if it is part of the model.
    pub fn hub_params(&self, hub: HubId) -> Option<&HubPriceParams> {
        self.hubs.iter().find(|p| p.hub == hub)
    }

    /// Parameters for an RTO.
    pub fn rto_params(&self, rto: Rto) -> Option<&RtoParams> {
        self.rtos.iter().find(|p| p.rto == rto)
    }

    /// Remove all hubs except the given subset (useful for faster
    /// simulations over the nine cluster hubs).
    pub fn restricted_to(&self, keep: &[HubId]) -> Self {
        let mut clone = self.clone();
        clone.hubs.retain(|p| keep.contains(&p.hub));
        clone
    }

    /// A variant of the calibration with spike generation disabled; used by
    /// the ablation benchmarks to quantify how much of the routing savings
    /// comes from heavy-tailed spikes versus ordinary diurnal variation.
    pub fn without_spikes(&self) -> Self {
        let mut clone = self.clone();
        for h in &mut clone.hubs {
            h.spike_rate = 0.0;
            h.negative_rate = 0.0;
        }
        clone
    }

    /// Hubs included in this model.
    pub fn hub_ids(&self) -> Vec<HubId> {
        self.hubs.iter().map(|p| p.hub).collect()
    }
}

/// The time-of-day / day-of-week demand shape common to all hubs, evaluated
/// in the hub's local time. Returns a multiplicative factor around 1.0.
pub fn demand_factor(params: &HubPriceParams, hour: SimHour) -> f64 {
    let state = hubs::hub(params.hub).state;
    let local_hour = hour.hour_of_day_local(state.utc_offset_hours()) as f64;
    // Smooth double-peaked daily load shape: morning ramp, evening peak.
    let phase = (local_hour - 4.0) / 24.0 * std::f64::consts::TAU;
    let base_shape = 0.5 * (1.0 - phase.cos()); // 0 at ~4am, 1 at ~4pm
    let evening = 0.25 * gaussian_bump(local_hour, 19.0, 2.5);
    let shape = (base_shape + evening).min(1.3);
    let weekend_scale = if hour.is_weekend() { params.weekend_discount } else { 1.0 };
    // Centre the swing so the long-run mean stays near 1.0.
    1.0 + params.diurnal_amplitude * weekend_scale * (shape - 0.55)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::HourRange;

    #[test]
    fn calibration_covers_all_thirty_hubs() {
        let m = MarketModel::calibrated();
        assert_eq!(m.hubs.len(), 30);
        for h in wattroute_geo::hubs::all_hubs() {
            assert!(m.hub_params(h.id).is_some(), "missing params for {:?}", h.id);
        }
        for rto in Rto::ALL {
            assert!(m.rto_params(rto).is_some(), "missing params for {rto}");
        }
    }

    #[test]
    fn base_prices_track_figure_6_ordering() {
        let m = MarketModel::calibrated();
        let base = |id| m.hub_params(id).unwrap().base_price;
        // Figure 6 ordering: Chicago < Indianapolis < Palo Alto < Richmond < Boston < NYC.
        assert!(base(HubId::ChicagoIl) < base(HubId::IndianapolisIn) + 5.0);
        assert!(base(HubId::IndianapolisIn) < base(HubId::PaloAltoCa));
        assert!(base(HubId::PaloAltoCa) < base(HubId::RichmondVa));
        assert!(base(HubId::RichmondVa) < base(HubId::BostonMa));
        assert!(base(HubId::BostonMa) < base(HubId::NewYorkNy));
    }

    #[test]
    fn fuel_factor_has_2008_peak_and_2009_decline() {
        let fuel = FuelFactorParams::default();
        let f_2006 = fuel.deterministic(SimHour::from_date(2006, 6, 15));
        let f_2008 = fuel.deterministic(SimHour::from_date(2008, 7, 1));
        let f_2009 = fuel.deterministic(SimHour::from_date(2009, 3, 15));
        assert!(f_2008 > f_2006 * 1.2, "2008 should be elevated: {f_2008} vs {f_2006}");
        assert!(f_2009 < f_2006, "2009 should be depressed: {f_2009} vs {f_2006}");
    }

    #[test]
    fn hydro_profile_dips_in_april() {
        let hydro = SeasonalProfile::HydroSpringDip;
        let april = hydro.factor(0.30);
        let august = hydro.factor(0.62);
        let january = hydro.factor(0.02);
        assert!(april < january, "April dip expected: {april} vs {january}");
        assert!(april < august);
        let summer = SeasonalProfile::SummerPeaking;
        assert!(summer.factor(0.57) > summer.factor(0.30));
    }

    #[test]
    fn demand_factor_peaks_in_local_afternoon() {
        let m = MarketModel::calibrated();
        let params = m.hub_params(HubId::PaloAltoCa).unwrap();
        // 4 PM Pacific = 7 PM Eastern = hour 19 of an epoch weekday.
        let monday = SimHour::from_date(2006, 1, 2);
        let afternoon_pacific = monday.plus_hours(19);
        let night_pacific = monday.plus_hours(7); // 2 AM Pacific
        assert!(demand_factor(params, afternoon_pacific) > demand_factor(params, night_pacific));
    }

    #[test]
    fn weekend_demand_is_discounted() {
        let m = MarketModel::calibrated();
        let params = m.hub_params(HubId::NewYorkNy).unwrap();
        let saturday_noon = SimHour::from_date(2006, 1, 7).plus_hours(17);
        let monday_noon = SimHour::from_date(2006, 1, 9).plus_hours(17);
        assert!(demand_factor(params, saturday_noon) < demand_factor(params, monday_noon));
    }

    #[test]
    fn demand_factor_long_run_mean_near_one() {
        let m = MarketModel::calibrated();
        let params = m.hub_params(HubId::ChicagoIl).unwrap();
        let range = HourRange::new(SimHour(0), SimHour(24 * 28));
        let mean: f64 =
            range.iter().map(|h| demand_factor(params, h)).sum::<f64>() / range.len_hours() as f64;
        assert!((mean - 1.0).abs() < 0.05, "mean demand factor = {mean}");
    }

    #[test]
    fn restricted_model_keeps_only_requested_hubs() {
        let m = MarketModel::calibrated();
        let nine: Vec<HubId> =
            wattroute_geo::hubs::simulation_hubs().iter().map(|h| h.id).collect();
        let r = m.restricted_to(&nine);
        assert_eq!(r.hubs.len(), 9);
        assert!(r.hub_params(HubId::PortlandOr).is_none());
        assert!(r.hub_params(HubId::NewYorkNy).is_some());
    }

    #[test]
    fn spike_free_variant() {
        let m = MarketModel::calibrated().without_spikes();
        assert!(m.hubs.iter().all(|h| h.spike_rate == 0.0 && h.negative_rate == 0.0));
    }

    #[test]
    fn caiso_hubs_have_low_local_noise() {
        // Required for the LA / Palo Alto correlation of 0.94 reported in §3.2.
        let m = MarketModel::calibrated();
        let pa = m.hub_params(HubId::PaloAltoCa).unwrap();
        let la = m.hub_params(HubId::LosAngelesCa).unwrap();
        let caiso = m.rto_params(Rto::Caiso).unwrap();
        assert!(pa.local_sigma < caiso.regional_sigma / 3.0);
        assert!(la.local_sigma < caiso.regional_sigma / 3.0);
    }
}
