//! Seeded generation of price series from the calibrated market model.
//!
//! The generator is deterministic given `(model, seed, range)`, so every
//! experiment in the workspace can reproduce exactly the same "historical"
//! price data set without shipping any proprietary data.

use crate::model::{demand_factor, HubPriceParams, MarketModel};
use crate::rng::{exponential, normal, Ar1};
#[cfg(test)]
use crate::time::SimHour;
use crate::time::{HourRange, STEPS_PER_HOUR_5MIN};
use crate::types::{MarketKind, PriceSeries, PriceSet};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use wattroute_geo::{hubs, HubId, Rto};

/// Derive the seed of Monte Carlo path `path` from one master seed.
///
/// The mapping is the canonical SplitMix64 stream seeded at `master_seed`:
/// path `k` gets the finalizer of `master_seed + (k + 1) × golden`, i.e.
/// the stream's `k`-th output in closed form. Path seeds are therefore a
/// well-mixed, collision-free stream — path `k` gets the same seed
/// whatever order (or worker thread) draws it — and nearby master seeds or
/// path indices do not produce correlated generator streams the way
/// `master ^ k` (or a bare `master + k`, whose adjacent-master streams
/// coincide shifted by one) would. This is the contract the Monte Carlo
/// engine's determinism rests on: a path's price series is a pure function
/// of `(model, master_seed, path, range)`.
pub fn path_seed(master_seed: u64, path: u64) -> u64 {
    let mut z = master_seed.wrapping_add(path.wrapping_add(1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic, seeded price-series generator.
#[derive(Debug, Clone)]
pub struct PriceGenerator {
    model: MarketModel,
    seed: u64,
}

impl PriceGenerator {
    /// Create a generator from a market model and seed.
    pub fn new(model: MarketModel, seed: u64) -> Self {
        Self { model, seed }
    }

    /// Convenience constructor: the default calibration restricted to the
    /// nine simulation hubs (the deployment used in most of the paper's
    /// simulations).
    pub fn nine_cluster_default(seed: u64) -> Self {
        let nine: Vec<HubId> = hubs::simulation_hubs().iter().map(|h| h.id).collect();
        Self::new(MarketModel::calibrated().restricted_to(&nine), seed)
    }

    /// The underlying model.
    pub fn model(&self) -> &MarketModel {
        &self.model
    }

    /// The seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Replace the seed in place, keeping the (often large) calibrated
    /// model. A reseeded generator is indistinguishable from a freshly
    /// constructed one: the Monte Carlo engine holds one generator per
    /// worker and reseeds it with [`path_seed`] for every path it draws,
    /// so drawing thousands of paths clones the model once, not per path.
    pub fn reseed(&mut self, seed: u64) {
        self.seed = seed;
    }

    /// Generate hourly **real-time** prices for every hub in the model over
    /// the given range. This is the primary data set (§3.1: "we focus
    /// exclusively on the RT market ... restrict ourselves to hourly
    /// prices").
    pub fn realtime_hourly(&self, range: HourRange) -> PriceSet {
        self.generate_hourly(range, Product::RealTime)
    }

    /// Generate hourly **day-ahead** prices: smoother, based on expected
    /// rather than actual conditions, with slightly higher average level
    /// (Figures 4 and 5).
    pub fn day_ahead(&self, range: HourRange) -> PriceSet {
        self.generate_hourly(range, Product::DayAhead)
    }

    /// Generate the five-minute real-time series for a single hub. The
    /// twelve intra-hour samples average to (approximately) the hourly RT
    /// price but are more volatile, as in Figure 4.
    pub fn realtime_5min(&self, hub: HubId, range: HourRange) -> Option<PriceSeries> {
        let hourly_set = self.realtime_hourly(range);
        let hourly = hourly_set.for_hub(hub)?;
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0x5A5A_0000 ^ hub_tag(hub));
        let mut noise = Ar1::new(0.6, 6.0);
        noise.warm_up(&mut rng, 32);
        let mut prices = Vec::with_capacity(hourly.prices.len() * STEPS_PER_HOUR_5MIN as usize);
        for &hour_price in &hourly.prices {
            // Generate 12 deviations and recentre them so the hour's mean is
            // preserved, then add an extra chance of a short-lived spike.
            let mut devs: Vec<f64> =
                (0..STEPS_PER_HOUR_5MIN).map(|_| noise.step(&mut rng)).collect();
            let mean_dev = devs.iter().sum::<f64>() / devs.len() as f64;
            for d in &mut devs {
                *d -= mean_dev;
            }
            if rng.gen::<f64>() < 0.03 {
                let idx = rng.gen_range(0..devs.len());
                devs[idx] += exponential(&mut rng, 40.0);
            }
            for d in devs {
                prices.push((hour_price + d).clamp(self.model.price_floor, self.model.price_cap));
            }
        }
        Some(PriceSeries::new(hub, MarketKind::RealTimeFiveMinute, range.start, prices))
    }

    fn generate_hourly(&self, range: HourRange, product: Product) -> PriceSet {
        let salt = match product {
            Product::RealTime => 0x11u64,
            Product::DayAhead => 0x22u64,
        };
        let mut rng = StdRng::seed_from_u64(self.seed ^ (salt << 32));

        // National fuel noise (shared by all hubs).
        let mut fuel_noise = Ar1::new(self.model.fuel.noise_rho, self.model.fuel.noise_sigma);
        fuel_noise.warm_up(&mut rng, 512);

        // One regional factor per RTO present in the model.
        let rtos: Vec<Rto> = {
            let mut v: Vec<Rto> = self.model.hubs.iter().map(|h| hubs::hub(h.hub).rto).collect();
            v.sort();
            v.dedup();
            v
        };
        let mut regional: Vec<Ar1> = rtos
            .iter()
            .map(|rto| {
                let p = self.model.rto_params(*rto).expect("rto params present");
                let sigma = match product {
                    Product::RealTime => p.regional_sigma,
                    // The day-ahead market clears on expectations; its
                    // regional volatility is noticeably lower.
                    Product::DayAhead => p.regional_sigma * 0.55,
                };
                let mut ar = Ar1::new(p.regional_rho, sigma);
                ar.warm_up(&mut rng, 128);
                ar
            })
            .collect();

        // One idiosyncratic factor per hub.
        let mut local: Vec<Ar1> = self
            .model
            .hubs
            .iter()
            .map(|h| {
                let sigma = match product {
                    Product::RealTime => h.local_sigma,
                    Product::DayAhead => h.local_sigma * 0.5,
                };
                let mut ar = Ar1::new(0.55, sigma);
                ar.warm_up(&mut rng, 64);
                ar
            })
            .collect();

        let n_hours = range.len_hours() as usize;
        let mut per_hub: Vec<Vec<f64>> = vec![Vec::with_capacity(n_hours); self.model.hubs.len()];

        for hour in range.iter() {
            let fuel = self.model.fuel.deterministic(hour) + fuel_noise.step(&mut rng);
            // Advance shared regional factors once per hour.
            let regional_values: Vec<f64> =
                regional.iter_mut().map(|ar| ar.step(&mut rng)).collect();
            // Region-wide congestion spike events. The shared-spike rate
            // scales with each RTO's `shared_spike_fraction`; hubs in RTOs
            // with a high fraction (e.g. CAISO) see most of their spikes
            // arrive as region-wide events, which is what couples LA and
            // Palo Alto so tightly (§3.2).
            let shared_spikes: Vec<f64> = rtos
                .iter()
                .map(|rto| {
                    let p = self.model.rto_params(*rto).expect("rto params present");
                    let base_rate = match product {
                        Product::RealTime => 0.040,
                        Product::DayAhead => 0.004,
                    };
                    if rng.gen::<f64>() < base_rate * p.shared_spike_fraction {
                        exponential(&mut rng, 60.0)
                    } else {
                        0.0
                    }
                })
                .collect();

            for (i, params) in self.model.hubs.iter().enumerate() {
                let rto = hubs::hub(params.hub).rto;
                let rto_idx = rtos.iter().position(|r| *r == rto).expect("rto present");
                let seasonal = params.seasonal.factor(hour.year_fraction());
                let demand = demand_factor(params, hour);
                let deterministic = params.base_price * fuel * seasonal * demand;

                let shared_fraction =
                    self.model.rto_params(rto).expect("rto params present").shared_spike_fraction;
                let mut price = deterministic + regional_values[rto_idx] + local[i].step(&mut rng);

                match product {
                    Product::RealTime => {
                        price += self.spike_term(
                            &mut rng,
                            params,
                            demand,
                            shared_spikes[rto_idx],
                            shared_fraction,
                        );
                        price -= self.negative_dip(&mut rng, params, demand);
                    }
                    Product::DayAhead => {
                        // Day-ahead prices incorporate a small risk premium
                        // and almost never spike (§2.2, Figure 5: higher
                        // average, lower short-term volatility).
                        price += 2.0 + normal(&mut rng, 0.0, 1.5);
                        price += 0.15 * shared_spikes[rto_idx];
                    }
                }

                // Soft floor: real-time prices rarely linger near zero.
                // Compress the region below $5/MWh so ordinary Gaussian
                // factor draws do not produce frequent negative prices,
                // while the explicit negative-dip events still can (§2.2).
                if price < 5.0 {
                    price = 5.0 + (price - 5.0) * 0.3;
                }

                per_hub[i].push(price.clamp(self.model.price_floor, self.model.price_cap));
            }
        }

        let kind = match product {
            Product::RealTime => MarketKind::RealTimeHourly,
            Product::DayAhead => MarketKind::DayAhead,
        };
        let series = self
            .model
            .hubs
            .iter()
            .zip(per_hub)
            .map(|(params, prices)| PriceSeries::new(params.hub, kind, range.start, prices))
            .collect();
        PriceSet::new(series)
    }

    fn spike_term<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        params: &HubPriceParams,
        demand: f64,
        shared_spike: f64,
        shared_fraction: f64,
    ) -> f64 {
        // Spikes are more likely when demand is high (scarcity pricing).
        // The hub's spike budget is split between hub-local events and
        // region-wide congestion events according to `shared_fraction`.
        let demand_boost = (demand - 0.85).max(0.0) * 3.0;
        let local_rate = params.spike_rate * (1.0 - shared_fraction) * (1.0 + demand_boost);
        let mut spike = 0.0;
        if rng.gen::<f64>() < local_rate {
            spike += exponential(rng, params.spike_scale);
        }
        // Regional congestion events hit every hub in the region, scaled by
        // how exposed the hub is (approximated by its spike scale).
        spike += shared_spike * (params.spike_scale / 100.0);
        spike
    }

    fn negative_dip<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        params: &HubPriceParams,
        demand: f64,
    ) -> f64 {
        // Negative prices occur in low-demand hours when inflexible base
        // load exceeds demand (§2.2 "negative prices can show up for brief
        // periods").
        if demand < 0.88 && rng.gen::<f64>() < params.negative_rate {
            exponential(rng, 55.0)
        } else {
            0.0
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Product {
    RealTime,
    DayAhead,
}

fn hub_tag(hub: HubId) -> u64 {
    // Stable per-hub salt derived from the discriminant order.
    hubs::all_hubs()
        .iter()
        .position(|h| h.id == hub)
        .map(|p| p as u64 + 1)
        .unwrap_or(0)
        .wrapping_mul(0x9E37_79B9)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wattroute_stats as stats;

    fn short_range() -> HourRange {
        // Eight weeks starting March 2006 — long enough for stable moments,
        // short enough to keep the test fast.
        let start = SimHour::from_date(2006, 3, 1);
        HourRange::new(start, start.plus_hours(8 * 7 * 24))
    }

    #[test]
    fn reseeding_matches_fresh_construction() {
        let r = HourRange::new(SimHour(0), SimHour(48));
        let mut recycled = PriceGenerator::nine_cluster_default(1);
        for seed in [7u64, 0, u64::MAX, 0xDEAD_BEEF] {
            recycled.reseed(seed);
            assert_eq!(recycled.seed(), seed);
            assert_eq!(
                recycled.realtime_hourly(r),
                PriceGenerator::nine_cluster_default(seed).realtime_hourly(r),
            );
        }
    }

    #[test]
    fn path_seed_stream_is_stable_and_well_mixed() {
        // Pin the stream so it can never silently change (every Monte
        // Carlo golden depends on it). path_seed(0, 0) is the first output
        // of the reference SplitMix64 sequence for seed 0.
        assert_eq!(path_seed(0, 0), 0xe220_a839_7b1d_cdaf);
        assert_eq!(path_seed(2009, 0), 0x1367_2694_7f5f_7f58);
        assert_eq!(path_seed(2009, 1), 0xa4ad_926e_8612_7a82);
        // Different masters, shifted paths: distinct streams (a bare
        // `master + path` sum would make these coincide).
        assert_ne!(path_seed(0, 1), path_seed(1, 0));
        // No collisions and no trivial structure over a realistic fan-out.
        let seeds: Vec<u64> = (0..4096).map(|k| path_seed(2009, k)).collect();
        let mut unique = seeds.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), seeds.len(), "path seeds must be collision-free");
        // Consecutive seeds differ in many bits (a ^ k scheme would not).
        let weak = seeds.windows(2).filter(|w| (w[0] ^ w[1]).count_ones() < 8).count();
        assert_eq!(weak, 0, "consecutive path seeds are too similar");
    }

    #[test]
    fn generation_is_deterministic_for_a_seed() {
        let g1 = PriceGenerator::nine_cluster_default(7);
        let g2 = PriceGenerator::nine_cluster_default(7);
        let r = short_range();
        assert_eq!(g1.realtime_hourly(r), g2.realtime_hourly(r));
        let g3 = PriceGenerator::nine_cluster_default(8);
        assert_ne!(g1.realtime_hourly(r), g3.realtime_hourly(r));
    }

    #[test]
    fn all_model_hubs_get_series_of_equal_length() {
        let g = PriceGenerator::new(MarketModel::calibrated(), 3);
        let r = HourRange::new(SimHour(0), SimHour(24 * 14));
        let set = g.realtime_hourly(r);
        assert_eq!(set.series.len(), 30);
        for s in &set.series {
            assert_eq!(s.len_hours(), 24 * 14);
            assert!(s.prices.iter().all(|p| p.is_finite()));
        }
    }

    #[test]
    fn prices_respect_floor_and_cap() {
        let g = PriceGenerator::nine_cluster_default(11);
        let set = g.realtime_hourly(short_range());
        let model = g.model();
        for s in &set.series {
            for &p in &s.prices {
                assert!(p >= model.price_floor && p <= model.price_cap);
            }
        }
    }

    #[test]
    fn mean_prices_are_in_calibrated_ballpark() {
        let g = PriceGenerator::nine_cluster_default(5);
        let set = g.realtime_hourly(short_range());
        for s in &set.series {
            let params = g.model().hub_params(s.hub).unwrap();
            let mean = s.mean().unwrap();
            assert!(
                (mean - params.base_price).abs() < params.base_price * 0.35,
                "{:?}: mean {mean} too far from base {}",
                s.hub,
                params.base_price
            );
        }
    }

    #[test]
    fn nyc_is_more_expensive_than_chicago_on_average() {
        let g = PriceGenerator::nine_cluster_default(13);
        let set = g.realtime_hourly(short_range());
        let nyc = set.for_hub(HubId::NewYorkNy).unwrap().mean().unwrap();
        let chi = set.for_hub(HubId::ChicagoIl).unwrap().mean().unwrap();
        assert!(nyc > chi + 10.0, "NYC {nyc} should exceed Chicago {chi}");
    }

    #[test]
    fn hourly_changes_are_heavy_tailed() {
        // Figure 7: hour-to-hour changes are zero-mean, Gaussian-like with
        // very long tails (kurtosis >> 3).
        let g = PriceGenerator::nine_cluster_default(17);
        let set = g.realtime_hourly(short_range());
        let prices = &set.for_hub(HubId::PaloAltoCa).unwrap().prices;
        let diffs = stats::diff_series(prices);
        let mean = stats::mean(&diffs).unwrap();
        let kurt = stats::kurtosis(&diffs).unwrap();
        assert!(mean.abs() < 2.0, "hourly changes should be near zero-mean, got {mean}");
        assert!(kurt > 4.0, "hourly changes should be heavy-tailed, kurtosis {kurt}");
    }

    #[test]
    fn day_ahead_is_smoother_than_real_time() {
        // Figure 5: at short windows the RT market has a larger standard
        // deviation than the day-ahead market.
        let g = PriceGenerator::nine_cluster_default(23);
        let r = short_range();
        let rt = g.realtime_hourly(r);
        let da = g.day_ahead(r);
        let rt_diffs = stats::diff_series(&rt.for_hub(HubId::NewYorkNy).unwrap().prices);
        let da_diffs = stats::diff_series(&da.for_hub(HubId::NewYorkNy).unwrap().prices);
        let rt_sd = stats::std_dev(&rt_diffs).unwrap();
        let da_sd = stats::std_dev(&da_diffs).unwrap();
        assert!(
            da_sd < rt_sd * 0.8,
            "day-ahead hour-to-hour volatility {da_sd} should be well below real-time {rt_sd}"
        );
    }

    #[test]
    fn five_minute_series_tracks_hourly_mean() {
        let g = PriceGenerator::nine_cluster_default(29);
        let start = SimHour::from_date(2009, 2, 10);
        let r = HourRange::new(start, start.plus_hours(48));
        let five = g.realtime_5min(HubId::NewYorkNy, r).unwrap();
        let hourly = g.realtime_hourly(r);
        let hourly_nyc = hourly.for_hub(HubId::NewYorkNy).unwrap();
        assert_eq!(five.prices.len(), 48 * 12);
        // Hour-averaged 5-minute prices should be close to the hourly price.
        for (h, avg) in five.hourly_prices().iter().enumerate() {
            let target = hourly_nyc.prices[h];
            assert!((avg - target).abs() < 20.0, "hour {h}: {avg} vs {target}");
        }
        // And the 5-minute samples should be more volatile than their means.
        let sd_5min = stats::std_dev(&five.prices).unwrap();
        let sd_hourly = stats::std_dev(&hourly_nyc.prices).unwrap();
        assert!(sd_5min >= sd_hourly * 0.95);
    }

    #[test]
    fn unknown_hub_returns_none_for_5min() {
        let g = PriceGenerator::nine_cluster_default(31);
        let r = HourRange::new(SimHour(0), SimHour(24));
        assert!(g.realtime_5min(HubId::PortlandOr, r).is_none());
    }

    #[test]
    fn occasional_negative_prices_occur_over_long_ranges() {
        // §2.2: "negative prices can show up for brief periods".
        let model =
            MarketModel::calibrated().restricted_to(&[HubId::MinneapolisMn, HubId::PeoriaIl]);
        let g = PriceGenerator::new(model, 37);
        let start = SimHour::from_date(2006, 1, 1);
        let r = HourRange::new(start, start.plus_hours(365 * 24));
        let set = g.realtime_hourly(r);
        let negatives: usize =
            set.series.iter().map(|s| s.prices.iter().filter(|&&p| p < 0.0).count()).sum();
        assert!(negatives > 0, "expected at least one negative-price hour in a year");
        // But they must stay rare.
        let total: usize = set.series.iter().map(|s| s.prices.len()).sum();
        assert!((negatives as f64) < 0.01 * total as f64);
    }
}
