//! Simulation calendar.
//!
//! The paper's price data span January 2006 through March 2009 (39 months of
//! hourly prices, > 28 000 samples per hub) and the Akamai trace covers 24
//! days around the turn of 2008/2009. We model time as *hours since
//! 2006-01-01 00:00 Eastern Standard Time* and provide the calendar
//! arithmetic the analyses need: hour-of-day in a hub's local time zone,
//! day-of-week, month index, and leap-year handling. Daylight-saving shifts
//! are deliberately ignored (a one-hour phase error is far below the
//! resolution of any result in the paper).

use serde::{Deserialize, Serialize};

/// Hours in a day.
pub const HOURS_PER_DAY: u64 = 24;
/// Hours in a (non-leap) year.
pub const HOURS_PER_YEAR: u64 = 8760;
/// Days per week.
pub const DAYS_PER_WEEK: u64 = 7;
/// Five-minute steps per hour (the Akamai trace resolution).
pub const STEPS_PER_HOUR_5MIN: u64 = 12;

/// The reference calendar year the epoch starts in.
pub const EPOCH_YEAR: u32 = 2006;

/// 2006-01-01 was a Sunday; day-of-week 0 = Sunday.
const EPOCH_DAY_OF_WEEK: u64 = 0;

/// An hour index relative to 2006-01-01 00:00 EST.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct SimHour(pub u64);

/// Day of week, Sunday = 0 ... Saturday = 6.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DayOfWeek {
    /// Sunday.
    Sunday,
    /// Monday.
    Monday,
    /// Tuesday.
    Tuesday,
    /// Wednesday.
    Wednesday,
    /// Thursday.
    Thursday,
    /// Friday.
    Friday,
    /// Saturday.
    Saturday,
}

impl DayOfWeek {
    /// From an index where Sunday = 0.
    pub fn from_index(i: u64) -> Self {
        match i % 7 {
            0 => DayOfWeek::Sunday,
            1 => DayOfWeek::Monday,
            2 => DayOfWeek::Tuesday,
            3 => DayOfWeek::Wednesday,
            4 => DayOfWeek::Thursday,
            5 => DayOfWeek::Friday,
            _ => DayOfWeek::Saturday,
        }
    }

    /// Index with Sunday = 0.
    pub fn index(&self) -> u64 {
        match self {
            DayOfWeek::Sunday => 0,
            DayOfWeek::Monday => 1,
            DayOfWeek::Tuesday => 2,
            DayOfWeek::Wednesday => 3,
            DayOfWeek::Thursday => 4,
            DayOfWeek::Friday => 5,
            DayOfWeek::Saturday => 6,
        }
    }

    /// Saturday or Sunday.
    pub fn is_weekend(&self) -> bool {
        matches!(self, DayOfWeek::Saturday | DayOfWeek::Sunday)
    }
}

/// Whether a calendar year is a leap year.
pub fn is_leap_year(year: u32) -> bool {
    (year % 4 == 0 && year % 100 != 0) || year % 400 == 0
}

/// Days in a given month (1-based) of a given year.
pub fn days_in_month(year: u32, month: u32) -> u64 {
    match month {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 => {
            if is_leap_year(year) {
                29
            } else {
                28
            }
        }
        _ => panic!("month must be 1-12, got {month}"),
    }
}

/// Hours in a given calendar year.
pub fn hours_in_year(year: u32) -> u64 {
    if is_leap_year(year) {
        HOURS_PER_YEAR + 24
    } else {
        HOURS_PER_YEAR
    }
}

impl SimHour {
    /// The epoch (2006-01-01 00:00 EST).
    pub const EPOCH: SimHour = SimHour(0);

    /// Hour of day (0-23) in the *reference* (Eastern) time zone.
    pub fn hour_of_day_eastern(&self) -> u64 {
        self.0 % HOURS_PER_DAY
    }

    /// Hour of day (0-23) in a local time zone given its UTC offset and the
    /// reference zone's UTC offset of -5 (EST).
    pub fn hour_of_day_local(&self, utc_offset_hours: i8) -> u64 {
        let shift = (utc_offset_hours as i64) - (-5i64);
        (((self.0 as i64 + shift) % 24 + 24) % 24) as u64
    }

    /// Days since the epoch.
    pub fn day_index(&self) -> u64 {
        self.0 / HOURS_PER_DAY
    }

    /// Day of week.
    pub fn day_of_week(&self) -> DayOfWeek {
        DayOfWeek::from_index(self.day_index() + EPOCH_DAY_OF_WEEK)
    }

    /// Whether this hour falls on a weekend (in the reference zone).
    pub fn is_weekend(&self) -> bool {
        self.day_of_week().is_weekend()
    }

    /// Hour of the week, 0..168, where 0 is Sunday 00:00.
    pub fn hour_of_week(&self) -> u64 {
        self.day_of_week().index() * 24 + self.hour_of_day_eastern()
    }

    /// `(year, month 1-12, day-of-month 1-31)` of this hour.
    pub fn calendar_date(&self) -> (u32, u32, u32) {
        let mut remaining_days = self.day_index();
        let mut year = EPOCH_YEAR;
        loop {
            let days_this_year = if is_leap_year(year) { 366 } else { 365 };
            if remaining_days < days_this_year {
                break;
            }
            remaining_days -= days_this_year;
            year += 1;
        }
        let mut month = 1;
        loop {
            let dim = days_in_month(year, month);
            if remaining_days < dim {
                break;
            }
            remaining_days -= dim;
            month += 1;
        }
        (year, month, remaining_days as u32 + 1)
    }

    /// Calendar year of this hour.
    pub fn year(&self) -> u32 {
        self.calendar_date().0
    }

    /// Calendar month (1-12) of this hour.
    pub fn month(&self) -> u32 {
        self.calendar_date().1
    }

    /// Months elapsed since January 2006 (0 = Jan 2006, 1 = Feb 2006, ...).
    /// This is the grouping key for Figure 11.
    pub fn month_index(&self) -> u64 {
        let (year, month, _) = self.calendar_date();
        ((year - EPOCH_YEAR) as u64) * 12 + (month as u64 - 1)
    }

    /// Fraction of the year elapsed, in `[0, 1)`; used for seasonal shapes.
    pub fn year_fraction(&self) -> f64 {
        let (year, _, _) = self.calendar_date();
        let mut hours_before_year = 0u64;
        for y in EPOCH_YEAR..year {
            hours_before_year += hours_in_year(y);
        }
        (self.0 - hours_before_year) as f64 / hours_in_year(year) as f64
    }

    /// Construct the first hour of a given calendar date.
    pub fn from_date(year: u32, month: u32, day: u32) -> SimHour {
        assert!(year >= EPOCH_YEAR, "dates before 2006 are unsupported");
        assert!((1..=12).contains(&month), "month must be 1-12");
        assert!(day >= 1 && day as u64 <= days_in_month(year, month), "invalid day");
        let mut days = 0u64;
        for y in EPOCH_YEAR..year {
            days += if is_leap_year(y) { 366 } else { 365 };
        }
        for m in 1..month {
            days += days_in_month(year, m);
        }
        days += day as u64 - 1;
        SimHour(days * HOURS_PER_DAY)
    }

    /// Add a number of hours.
    pub fn plus_hours(&self, hours: u64) -> SimHour {
        SimHour(self.0 + hours)
    }
}

/// A half-open range of simulation hours `[start, end)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HourRange {
    /// First hour (inclusive).
    pub start: SimHour,
    /// Last hour (exclusive).
    pub end: SimHour,
}

impl HourRange {
    /// Create a range; `end` must not precede `start`.
    pub fn new(start: SimHour, end: SimHour) -> Self {
        assert!(end.0 >= start.0, "HourRange end before start");
        Self { start, end }
    }

    /// The paper's full 39-month price window: January 2006 through
    /// March 2009 (inclusive).
    pub fn paper_39_months() -> Self {
        Self::new(SimHour::from_date(2006, 1, 1), SimHour::from_date(2009, 4, 1))
    }

    /// The 24-day Akamai trace window (mid-December 2008 through the second
    /// week of January 2009, matching Figure 14's x-axis).
    pub fn akamai_24_days() -> Self {
        let start = SimHour::from_date(2008, 12, 19);
        Self::new(start, start.plus_hours(24 * HOURS_PER_DAY))
    }

    /// Number of hours in the range.
    pub fn len_hours(&self) -> u64 {
        self.end.0 - self.start.0
    }

    /// Whether the range is empty.
    pub fn is_empty(&self) -> bool {
        self.len_hours() == 0
    }

    /// Iterate over all hours in the range.
    pub fn iter(&self) -> impl Iterator<Item = SimHour> {
        (self.start.0..self.end.0).map(SimHour)
    }

    /// Q1 2009 (the window used by Figure 5's volatility table).
    pub fn q1_2009() -> Self {
        Self::new(SimHour::from_date(2009, 1, 1), SimHour::from_date(2009, 4, 1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_is_sunday_jan_1_2006() {
        assert_eq!(SimHour::EPOCH.calendar_date(), (2006, 1, 1));
        assert_eq!(SimHour::EPOCH.day_of_week(), DayOfWeek::Sunday);
        assert!(SimHour::EPOCH.is_weekend());
    }

    #[test]
    fn leap_years() {
        assert!(is_leap_year(2008));
        assert!(!is_leap_year(2006));
        assert!(!is_leap_year(2100));
        assert!(is_leap_year(2000));
        assert_eq!(hours_in_year(2008), 8784);
        assert_eq!(hours_in_year(2007), 8760);
    }

    #[test]
    fn days_in_each_month() {
        assert_eq!(days_in_month(2008, 2), 29);
        assert_eq!(days_in_month(2009, 2), 28);
        assert_eq!(days_in_month(2006, 12), 31);
        assert_eq!(days_in_month(2006, 4), 30);
    }

    #[test]
    #[should_panic(expected = "month must be 1-12")]
    fn invalid_month_panics() {
        days_in_month(2006, 13);
    }

    #[test]
    fn date_roundtrip() {
        for &(y, m, d) in &[
            (2006, 1, 1),
            (2006, 12, 31),
            (2007, 6, 15),
            (2008, 2, 29),
            (2008, 12, 19),
            (2009, 3, 31),
        ] {
            let h = SimHour::from_date(y, m, d);
            assert_eq!(h.calendar_date(), (y, m, d), "roundtrip for {y}-{m}-{d}");
        }
    }

    #[test]
    fn hour_of_day_and_week_progression() {
        let h = SimHour::from_date(2006, 1, 2); // Monday
        assert_eq!(h.day_of_week(), DayOfWeek::Monday);
        assert_eq!(h.hour_of_day_eastern(), 0);
        assert_eq!(h.plus_hours(13).hour_of_day_eastern(), 13);
        assert_eq!(h.hour_of_week(), 24);
        assert!(!h.is_weekend());
    }

    #[test]
    fn local_hour_conversion() {
        let h = SimHour::from_date(2006, 1, 2); // midnight EST
                                                // Midnight EST is 21:00 the previous evening in California (UTC-8).
        assert_eq!(h.hour_of_day_local(-8), 21);
        // And midnight in the Eastern zone itself.
        assert_eq!(h.hour_of_day_local(-5), 0);
        // Central.
        assert_eq!(h.hour_of_day_local(-6), 23);
    }

    #[test]
    fn month_index_spans_39_months() {
        let range = HourRange::paper_39_months();
        assert_eq!(range.start.month_index(), 0);
        let last_hour = SimHour(range.end.0 - 1);
        assert_eq!(last_hour.month_index(), 38);
        // Paper: "> 28k samples" of hourly prices per hub.
        assert_eq!(range.len_hours(), 8760 + 8760 + 8784 + (31 + 28 + 31) * 24);
        assert!(range.len_hours() > 28_000);
    }

    #[test]
    fn akamai_window_is_24_days() {
        let range = HourRange::akamai_24_days();
        assert_eq!(range.len_hours(), 24 * 24);
        assert_eq!(range.start.calendar_date(), (2008, 12, 19));
        // The window straddles the new year as in Figure 14.
        let last = SimHour(range.end.0 - 1);
        assert_eq!(last.calendar_date().0, 2009);
    }

    #[test]
    fn q1_2009_has_90_days() {
        assert_eq!(HourRange::q1_2009().len_hours(), 90 * 24);
    }

    #[test]
    fn year_fraction_monotone_within_year() {
        let jan = SimHour::from_date(2007, 1, 15);
        let jul = SimHour::from_date(2007, 7, 15);
        let dec = SimHour::from_date(2007, 12, 15);
        assert!(jan.year_fraction() < jul.year_fraction());
        assert!(jul.year_fraction() < dec.year_fraction());
        assert!(dec.year_fraction() < 1.0);
    }

    #[test]
    fn range_iteration() {
        let r = HourRange::new(SimHour(5), SimHour(8));
        let hours: Vec<u64> = r.iter().map(|h| h.0).collect();
        assert_eq!(hours, vec![5, 6, 7]);
        assert_eq!(r.len_hours(), 3);
        assert!(!r.is_empty());
        assert!(HourRange::new(SimHour(3), SimHour(3)).is_empty());
    }

    #[test]
    #[should_panic(expected = "end before start")]
    fn inverted_range_panics() {
        HourRange::new(SimHour(5), SimHour(1));
    }

    #[test]
    fn day_of_week_cycles() {
        for i in 0..14 {
            let h = SimHour(i * 24);
            assert_eq!(h.day_of_week().index(), i % 7);
        }
    }
}
