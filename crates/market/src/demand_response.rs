//! Demand-response participation models (§7 of the paper, "Selling
//! Flexibility").
//!
//! Beyond passively reacting to spot prices, a distributed system with
//! energy-elastic clusters can *sell* its flexibility:
//!
//! * **Negawatt bids** — offering load reductions into the day-ahead
//!   auction ([`crate::auction::Auction::clear_with_negawatts`]).
//! * **Triggered demand-response programs** — agreeing to shed load when the
//!   grid operator calls an event, in exchange for capacity payments plus
//!   per-event energy payments. The paper notes that even consumers using as
//!   little as 10 kW (a few racks) can participate, and that aggregators
//!   such as EnerNOC package many small consumers into one bloc.
//!
//! This module models a triggered program: enrollment terms, event
//! generation correlated with price spikes, and the revenue a participating
//! cluster earns.

use crate::time::HourRange;
use crate::types::PriceSeries;
use serde::{Deserialize, Serialize};

/// Terms of a triggered demand-response program.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DemandResponseProgram {
    /// Capacity payment in $/kW-month for enrolled, verified-reducible load.
    pub capacity_payment_per_kw_month: f64,
    /// Energy payment in $/MWh actually curtailed during events.
    pub event_energy_payment_per_mwh: f64,
    /// Price above which the grid operator calls an event ($/MWh).
    pub event_trigger_price: f64,
    /// Maximum number of event hours per calendar month the participant can
    /// be called for.
    pub max_event_hours_per_month: u32,
    /// Advance notice in hours (from days to minutes in real programs; we
    /// record it for reporting but the simulation treats response as
    /// immediate at hourly resolution).
    pub notice_hours: f64,
}

impl Default for DemandResponseProgram {
    /// Terms loosely modelled on 2008-era commercial DR programs.
    fn default() -> Self {
        Self {
            capacity_payment_per_kw_month: 3.5,
            event_energy_payment_per_mwh: 500.0,
            event_trigger_price: 200.0,
            max_event_hours_per_month: 40,
            notice_hours: 2.0,
        }
    }
}

/// The outcome of enrolling a curtailable load in a program over a period.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DemandResponseOutcome {
    /// Number of event hours called.
    pub event_hours: u32,
    /// Energy curtailed over all events, in MWh.
    pub curtailed_mwh: f64,
    /// Capacity revenue over the period, in dollars.
    pub capacity_revenue: f64,
    /// Event energy revenue over the period, in dollars.
    pub event_revenue: f64,
    /// Number of hours in which an event was called but the monthly cap had
    /// been reached (missed opportunities).
    pub capped_hours: u32,
}

impl DemandResponseOutcome {
    /// Total revenue.
    pub fn total_revenue(&self) -> f64 {
        self.capacity_revenue + self.event_revenue
    }
}

/// Simulate enrolling `curtailable_mw` of load at one hub in a triggered
/// program over the range covered by `prices`.
///
/// Events are called whenever the hub's real-time price exceeds the
/// program's trigger price, up to the monthly cap. The participant curtails
/// its full enrolled capacity for each event hour.
pub fn simulate_program(
    program: &DemandResponseProgram,
    prices: &PriceSeries,
    curtailable_mw: f64,
) -> DemandResponseOutcome {
    assert!(curtailable_mw >= 0.0, "curtailable load must be non-negative");
    let hourly = prices.hourly_prices();
    let range = prices.range();
    let months = months_in_range(&range);

    let mut event_hours = 0u32;
    let mut capped_hours = 0u32;
    let mut curtailed_mwh = 0.0;
    let mut event_revenue = 0.0;
    let mut events_this_month = 0u32;
    let mut current_month = range.start.month_index();

    for (i, &price) in hourly.iter().enumerate() {
        let hour = range.start.plus_hours(i as u64);
        if hour.month_index() != current_month {
            current_month = hour.month_index();
            events_this_month = 0;
        }
        if price >= program.event_trigger_price {
            if events_this_month < program.max_event_hours_per_month {
                events_this_month += 1;
                event_hours += 1;
                curtailed_mwh += curtailable_mw;
                event_revenue += curtailable_mw * program.event_energy_payment_per_mwh;
            } else {
                capped_hours += 1;
            }
        }
    }

    let capacity_revenue =
        curtailable_mw * 1000.0 * program.capacity_payment_per_kw_month * months as f64;

    DemandResponseOutcome {
        event_hours,
        curtailed_mwh,
        capacity_revenue,
        event_revenue,
        capped_hours,
    }
}

/// Number of (whole or partial) calendar months touched by a range.
fn months_in_range(range: &HourRange) -> u64 {
    if range.is_empty() {
        return 0;
    }
    let last = crate::time::SimHour(range.end.0 - 1);
    last.month_index() - range.start.month_index() + 1
}

/// An aggregator that packages many small curtailable loads into one bloc
/// (the EnerNOC model described in §7). The aggregator takes a revenue share
/// and presents the combined capacity to the program.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Aggregator {
    /// Fraction of gross revenue retained by the aggregator.
    pub revenue_share: f64,
}

impl Aggregator {
    /// Create an aggregator taking the given revenue share (clamped to
    /// `[0, 1]`).
    pub fn new(revenue_share: f64) -> Self {
        Self { revenue_share: revenue_share.clamp(0.0, 1.0) }
    }

    /// Net revenue passed through to participants after aggregation of the
    /// given per-site outcomes.
    pub fn participant_revenue(&self, outcomes: &[DemandResponseOutcome]) -> f64 {
        let gross: f64 = outcomes.iter().map(|o| o.total_revenue()).sum();
        gross * (1.0 - self.revenue_share)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimHour;
    use crate::types::MarketKind;
    use wattroute_geo::HubId;

    fn series_with_spikes(spike_hours: &[usize], len: usize) -> PriceSeries {
        let mut prices = vec![60.0; len];
        for &h in spike_hours {
            prices[h] = 400.0;
        }
        PriceSeries::new(HubId::NewYorkNy, MarketKind::RealTimeHourly, SimHour(0), prices)
    }

    #[test]
    fn events_fire_on_price_spikes() {
        let prices = series_with_spikes(&[10, 20, 30], 100);
        let outcome = simulate_program(&DemandResponseProgram::default(), &prices, 2.0);
        assert_eq!(outcome.event_hours, 3);
        assert!((outcome.curtailed_mwh - 6.0).abs() < 1e-9);
        assert!((outcome.event_revenue - 6.0 * 500.0).abs() < 1e-9);
        assert_eq!(outcome.capped_hours, 0);
    }

    #[test]
    fn monthly_cap_limits_events() {
        let spike_hours: Vec<usize> = (0..60).collect();
        let prices = series_with_spikes(&spike_hours, 100);
        let program = DemandResponseProgram { max_event_hours_per_month: 10, ..Default::default() };
        let outcome = simulate_program(&program, &prices, 1.0);
        assert_eq!(outcome.event_hours, 10);
        assert_eq!(outcome.capped_hours, 50);
    }

    #[test]
    fn capacity_revenue_scales_with_months_and_load() {
        let quiet = PriceSeries::new(
            HubId::NewYorkNy,
            MarketKind::RealTimeHourly,
            SimHour::from_date(2006, 1, 1),
            vec![50.0; (31 + 28 + 31) * 24], // Jan-Mar 2006
        );
        let program = DemandResponseProgram::default();
        let outcome = simulate_program(&program, &quiet, 0.5);
        assert_eq!(outcome.event_hours, 0);
        // 0.5 MW = 500 kW, 3 months.
        let expected = 500.0 * program.capacity_payment_per_kw_month * 3.0;
        assert!((outcome.capacity_revenue - expected).abs() < 1e-6);
        assert_eq!(outcome.total_revenue(), outcome.capacity_revenue);
    }

    #[test]
    fn small_participants_can_take_part() {
        // "Even consumers using as little as 10 kW (a few racks) can
        // participate" — the model accepts arbitrarily small loads.
        let prices = series_with_spikes(&[5], 48);
        let outcome = simulate_program(&DemandResponseProgram::default(), &prices, 0.01);
        assert_eq!(outcome.event_hours, 1);
        assert!(outcome.total_revenue() > 0.0);
    }

    #[test]
    fn aggregator_takes_its_share() {
        let prices = series_with_spikes(&[5, 6], 48);
        let o1 = simulate_program(&DemandResponseProgram::default(), &prices, 1.0);
        let o2 = simulate_program(&DemandResponseProgram::default(), &prices, 2.0);
        let agg = Aggregator::new(0.3);
        let net = agg.participant_revenue(&[o1, o2]);
        let gross = o1.total_revenue() + o2.total_revenue();
        assert!((net - gross * 0.7).abs() < 1e-9);
        // Share is clamped.
        assert_eq!(Aggregator::new(2.0).revenue_share, 1.0);
    }

    #[test]
    fn month_counting() {
        let r = HourRange::new(SimHour::from_date(2006, 1, 15), SimHour::from_date(2006, 3, 2));
        assert_eq!(months_in_range(&r), 3);
        let single =
            HourRange::new(SimHour::from_date(2006, 5, 1), SimHour::from_date(2006, 5, 20));
        assert_eq!(months_in_range(&single), 1);
        let empty = HourRange::new(SimHour(10), SimHour(10));
        assert_eq!(months_in_range(&empty), 0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_load_rejected() {
        let prices = series_with_spikes(&[], 24);
        let _ = simulate_program(&DemandResponseProgram::default(), &prices, -1.0);
    }
}
