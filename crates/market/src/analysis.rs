//! Cross-hub market analysis: correlation structure, volatility windows and
//! hour-to-hour change distributions (§3.1–3.2, Figures 5–8).

use crate::types::{PriceSeries, PriceSet};
use serde::{Deserialize, Serialize};
use wattroute_geo::{hub_to_hub_km, hubs, HubId, Rto};
use wattroute_stats::{correlation, descriptive, timeseries, Histogram};

/// One point of the correlation-vs-distance scatter plot (Figure 8).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PairCorrelation {
    /// First hub of the pair.
    pub hub_a: HubId,
    /// Second hub of the pair.
    pub hub_b: HubId,
    /// Great-circle distance between the hubs in km.
    pub distance_km: f64,
    /// Pearson correlation coefficient of the hourly prices.
    pub correlation: f64,
    /// Mutual information of the hourly prices in bits (footnote 8).
    pub mutual_information: f64,
    /// Whether both hubs belong to the same RTO.
    pub same_rto: bool,
    /// RTO of hub A.
    pub rto_a: Rto,
    /// RTO of hub B.
    pub rto_b: Rto,
}

/// Compute the pairwise correlation structure of a price set: one entry per
/// unordered pair of hubs present in the set.
pub fn pairwise_correlations(set: &PriceSet) -> Vec<PairCorrelation> {
    let mut out = Vec::new();
    let series = &set.series;
    for i in 0..series.len() {
        for j in i + 1..series.len() {
            let a = &series[i];
            let b = &series[j];
            let (Some(corr), Some(mi)) = (
                correlation::pearson(&a.prices, &b.prices),
                correlation::mutual_information(&a.prices, &b.prices, 8),
            ) else {
                continue;
            };
            let hub_a = hubs::hub(a.hub);
            let hub_b = hubs::hub(b.hub);
            out.push(PairCorrelation {
                hub_a: a.hub,
                hub_b: b.hub,
                distance_km: hub_to_hub_km(hub_a, hub_b),
                correlation: corr,
                mutual_information: mi,
                same_rto: hub_a.rto == hub_b.rto,
                rto_a: hub_a.rto,
                rto_b: hub_b.rto,
            });
        }
    }
    out
}

/// Summary of the Figure 8 scatter: average correlation of same-RTO pairs,
/// average correlation of different-RTO pairs, and the fraction of same-RTO
/// pairs above a correlation threshold.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CorrelationSummary {
    /// Mean correlation over pairs within the same RTO.
    pub mean_same_rto: f64,
    /// Mean correlation over pairs straddling RTO boundaries.
    pub mean_cross_rto: f64,
    /// Fraction of same-RTO pairs whose correlation exceeds 0.6 (the paper's
    /// visual dividing line in Figure 8).
    pub same_rto_above_06: f64,
    /// Fraction of cross-RTO pairs whose correlation exceeds 0.6.
    pub cross_rto_above_06: f64,
    /// Number of same-RTO pairs.
    pub n_same: usize,
    /// Number of cross-RTO pairs.
    pub n_cross: usize,
}

/// Summarise a set of pairwise correlations.
pub fn correlation_summary(pairs: &[PairCorrelation]) -> Option<CorrelationSummary> {
    let same: Vec<f64> = pairs.iter().filter(|p| p.same_rto).map(|p| p.correlation).collect();
    let cross: Vec<f64> = pairs.iter().filter(|p| !p.same_rto).map(|p| p.correlation).collect();
    if same.is_empty() || cross.is_empty() {
        return None;
    }
    Some(CorrelationSummary {
        mean_same_rto: descriptive::mean(&same)?,
        mean_cross_rto: descriptive::mean(&cross)?,
        same_rto_above_06: same.iter().filter(|&&c| c > 0.6).count() as f64 / same.len() as f64,
        cross_rto_above_06: cross.iter().filter(|&&c| c > 0.6).count() as f64 / cross.len() as f64,
        n_same: same.len(),
        n_cross: cross.len(),
    })
}

/// Standard deviation of a price series after averaging over windows of
/// different lengths — the quantity tabulated in Figure 5. Window lengths
/// are given in *samples* of the series (so 12 means one hour for a
/// five-minute series and 12 hours for an hourly series).
pub fn windowed_std_devs(series: &PriceSeries, windows_samples: &[usize]) -> Vec<(usize, f64)> {
    windows_samples
        .iter()
        .filter_map(|&w| {
            let averaged = timeseries::window_average(&series.prices, w.max(1));
            descriptive::std_dev(&averaged).map(|sd| (w, sd))
        })
        .collect()
}

/// Distribution of hour-to-hour price changes for one hub (Figure 7).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HourlyChangeDistribution {
    /// Hub analysed.
    pub hub: HubId,
    /// Mean of the change distribution ($/MWh).
    pub mean: f64,
    /// Standard deviation ($/MWh).
    pub std_dev: f64,
    /// Kurtosis (non-excess).
    pub kurtosis: f64,
    /// Fraction of hours with |change| ≥ $20/MWh (the paper reports ~20 %).
    pub fraction_change_at_least_20: f64,
    /// Histogram of changes over `[-50, 50)` $/MWh in $2.5 bins.
    pub histogram: Histogram,
}

/// Compute the hour-to-hour change distribution for a series.
pub fn hourly_change_distribution(series: &PriceSeries) -> Option<HourlyChangeDistribution> {
    let diffs = timeseries::diff_series(&series.hourly_prices());
    if diffs.is_empty() {
        return None;
    }
    let histogram = Histogram::from_samples(-50.0, 50.0, 40, &diffs);
    Some(HourlyChangeDistribution {
        hub: series.hub,
        mean: descriptive::mean(&diffs)?,
        std_dev: descriptive::std_dev(&diffs)?,
        kurtosis: descriptive::kurtosis(&diffs).unwrap_or(f64::NAN),
        fraction_change_at_least_20: wattroute_stats::quantiles::fraction_abs_at_least(
            &diffs, 20.0,
        )?,
        histogram,
    })
}

/// Per-hub summary row of Figure 6: 1 %-trimmed mean, standard deviation
/// and kurtosis of hourly real-time prices.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HubPriceStats {
    /// Hub analysed.
    pub hub: HubId,
    /// RTO of the hub.
    pub rto: Rto,
    /// 1 %-trimmed mean ($/MWh).
    pub trimmed_mean: f64,
    /// 1 %-trimmed standard deviation ($/MWh).
    pub trimmed_std_dev: f64,
    /// 1 %-trimmed kurtosis.
    pub trimmed_kurtosis: f64,
    /// Ratio of the maximum to minimum daily price, averaged across days —
    /// §3.1 notes intra-day max/min ratios of 2 or more are easy to find.
    pub mean_daily_max_min_ratio: f64,
}

/// Compute Figure 6 style statistics for a price series.
pub fn hub_price_stats(series: &PriceSeries) -> Option<HubPriceStats> {
    let hourly = series.hourly_prices();
    let trimmed = descriptive::trimmed(&hourly, 0.01)?;
    // Average intra-day max/min ratio over whole days with positive minima.
    let mut ratios = Vec::new();
    for day in hourly.chunks(24) {
        if day.len() == 24 {
            let lo = descriptive::min(day)?;
            let hi = descriptive::max(day)?;
            if lo > 1.0 {
                ratios.push(hi / lo);
            }
        }
    }
    Some(HubPriceStats {
        hub: series.hub,
        rto: hubs::hub(series.hub).rto,
        trimmed_mean: trimmed.mean,
        trimmed_std_dev: trimmed.std_dev,
        trimmed_kurtosis: trimmed.kurtosis,
        mean_daily_max_min_ratio: descriptive::mean(&ratios).unwrap_or(f64::NAN),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::PriceGenerator;
    use crate::model::MarketModel;
    use crate::time::{HourRange, SimHour};

    fn generated_set(seed: u64, days: u64) -> PriceSet {
        let g = PriceGenerator::new(MarketModel::calibrated(), seed);
        let start = SimHour::from_date(2006, 2, 1);
        g.realtime_hourly(HourRange::new(start, start.plus_hours(days * 24)))
    }

    #[test]
    fn pairwise_correlations_cover_all_pairs() {
        let set = generated_set(101, 60);
        let pairs = pairwise_correlations(&set);
        // 30 hubs -> 435 unordered pairs.
        assert_eq!(pairs.len(), 30 * 29 / 2);
        for p in &pairs {
            assert!(p.correlation >= -1.0 && p.correlation <= 1.0);
            assert!(p.mutual_information >= 0.0);
            assert!(p.distance_km >= 0.0);
        }
    }

    #[test]
    fn same_rto_pairs_are_better_correlated() {
        // The qualitative claim of Figure 8.
        let set = generated_set(103, 90);
        let pairs = pairwise_correlations(&set);
        let summary = correlation_summary(&pairs).unwrap();
        assert!(
            summary.mean_same_rto > summary.mean_cross_rto + 0.1,
            "same-RTO {} should exceed cross-RTO {}",
            summary.mean_same_rto,
            summary.mean_cross_rto
        );
        assert!(summary.same_rto_above_06 > 0.5);
        assert!(summary.cross_rto_above_06 < 0.5);
        assert_eq!(summary.n_same + summary.n_cross, pairs.len());
    }

    #[test]
    fn california_hubs_are_tightly_coupled() {
        // §3.2: "LA and Palo Alto have a coefficient of 0.94".
        let set = generated_set(105, 90);
        let pairs = pairwise_correlations(&set);
        let ca = pairs
            .iter()
            .find(|p| {
                (p.hub_a == HubId::PaloAltoCa && p.hub_b == HubId::LosAngelesCa)
                    || (p.hub_a == HubId::LosAngelesCa && p.hub_b == HubId::PaloAltoCa)
            })
            .unwrap();
        assert!(ca.correlation > 0.85, "CAISO internal correlation = {}", ca.correlation);
    }

    #[test]
    fn correlation_decreases_with_distance_on_average() {
        let set = generated_set(107, 60);
        let pairs = pairwise_correlations(&set);
        let near: Vec<f64> =
            pairs.iter().filter(|p| p.distance_km < 500.0).map(|p| p.correlation).collect();
        let far: Vec<f64> =
            pairs.iter().filter(|p| p.distance_km > 2500.0).map(|p| p.correlation).collect();
        let near_mean = descriptive::mean(&near).unwrap();
        let far_mean = descriptive::mean(&far).unwrap();
        assert!(near_mean > far_mean, "near {near_mean} vs far {far_mean}");
    }

    #[test]
    fn windowed_std_dev_decreases_with_window() {
        let set = generated_set(109, 90);
        let nyc = set.for_hub(HubId::NewYorkNy).unwrap();
        let rows = windowed_std_devs(nyc, &[1, 3, 12, 24]);
        assert_eq!(rows.len(), 4);
        assert!(rows[0].1 > rows[3].1, "σ should fall with averaging window: {rows:?}");
    }

    #[test]
    fn hourly_change_distribution_matches_figure_7_shape() {
        let set = generated_set(111, 90);
        let palo = set.for_hub(HubId::PaloAltoCa).unwrap();
        let dist = hourly_change_distribution(palo).unwrap();
        assert!(dist.mean.abs() < 2.0, "mean change should be ~0, got {}", dist.mean);
        assert!(dist.kurtosis > 3.5, "changes should be heavy-tailed, got {}", dist.kurtosis);
        assert!(dist.fraction_change_at_least_20 > 0.02);
        assert!(dist.fraction_change_at_least_20 < 0.6);
        assert_eq!(dist.histogram.bins(), 40);
    }

    #[test]
    fn hub_price_stats_row() {
        let set = generated_set(113, 90);
        let boston = set.for_hub(HubId::BostonMa).unwrap();
        let row = hub_price_stats(boston).unwrap();
        assert_eq!(row.rto, Rto::IsoNe);
        assert!(row.trimmed_mean > 40.0 && row.trimmed_mean < 100.0);
        assert!(row.trimmed_std_dev > 5.0);
        assert!(
            row.mean_daily_max_min_ratio > 1.2,
            "intra-day swing too small: {}",
            row.mean_daily_max_min_ratio
        );
    }

    #[test]
    fn degenerate_series_are_rejected() {
        let flat = PriceSeries::new(
            HubId::BostonMa,
            crate::types::MarketKind::RealTimeHourly,
            SimHour(0),
            vec![50.0],
        );
        assert!(hourly_change_distribution(&flat).is_none());
        let empty_pairs: Vec<PairCorrelation> = Vec::new();
        assert!(correlation_summary(&empty_pairs).is_none());
    }
}
