//! Price-differential analysis between pairs of hubs (§3.3 of the paper).
//!
//! The economic opportunity the paper identifies lives entirely in the
//! *differential* between two locations' prices: if the differential is
//! zero-mean but high-variance, a dynamic router that always buys from the
//! cheaper side beats any static placement. This module provides the
//! differential series itself plus the summaries used by Figures 9-13:
//! distribution statistics, monthly evolution, hour-of-day dependence, and
//! the duration of sustained differentials.

use crate::time::SimHour;
use crate::types::PriceSeries;
use serde::{Deserialize, Serialize};
use wattroute_geo::HubId;
use wattroute_stats::{descriptive, quantiles, timeseries};

/// Default threshold (in $/MWh) below which a differential is considered
/// negligible; used both by the duration analysis (Figure 13) and by the
/// price-conscious router's price threshold (§6.1).
pub const DEFAULT_PRICE_THRESHOLD: f64 = 5.0;

/// The hourly price differential `a - b` between two hubs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Differential {
    /// First hub (the minuend).
    pub hub_a: HubId,
    /// Second hub (the subtrahend).
    pub hub_b: HubId,
    /// First hour covered.
    pub start: SimHour,
    /// Hourly values of `price_a - price_b` in $/MWh.
    pub values: Vec<f64>,
}

/// Summary statistics of a differential distribution (the annotations of
/// Figure 10: mean, standard deviation, kurtosis).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DifferentialStats {
    /// Mean differential in $/MWh.
    pub mean: f64,
    /// Standard deviation in $/MWh.
    pub std_dev: f64,
    /// Kurtosis (non-excess).
    pub kurtosis: f64,
    /// Fraction of hours in which hub A is strictly cheaper than hub B.
    pub fraction_a_cheaper: f64,
    /// Fraction of hours in which hub A is cheaper by more than
    /// [`DEFAULT_PRICE_THRESHOLD`].
    pub fraction_a_cheaper_by_threshold: f64,
    /// Fraction of hours in which hub B is cheaper by more than
    /// [`DEFAULT_PRICE_THRESHOLD`].
    pub fraction_b_cheaper_by_threshold: f64,
}

impl Differential {
    /// Compute the differential between two price series. The series must
    /// cover the same hours.
    ///
    /// Returns `None` if the series have different starts or lengths.
    pub fn between(a: &PriceSeries, b: &PriceSeries) -> Option<Differential> {
        if a.start != b.start || a.prices.len() != b.prices.len() {
            return None;
        }
        let values = timeseries::pairwise_difference(&a.prices, &b.prices)?;
        Some(Differential { hub_a: a.hub, hub_b: b.hub, start: a.start, values })
    }

    /// Summary statistics of the differential distribution.
    pub fn stats(&self) -> Option<DifferentialStats> {
        if self.values.is_empty() {
            return None;
        }
        let n = self.values.len() as f64;
        let a_cheaper = self.values.iter().filter(|&&d| d < 0.0).count() as f64 / n;
        let a_by_thresh =
            self.values.iter().filter(|&&d| d < -DEFAULT_PRICE_THRESHOLD).count() as f64 / n;
        let b_by_thresh =
            self.values.iter().filter(|&&d| d > DEFAULT_PRICE_THRESHOLD).count() as f64 / n;
        Some(DifferentialStats {
            mean: descriptive::mean(&self.values)?,
            std_dev: descriptive::std_dev(&self.values)?,
            kurtosis: descriptive::kurtosis(&self.values).unwrap_or(f64::NAN),
            fraction_a_cheaper: a_cheaper,
            fraction_a_cheaper_by_threshold: a_by_thresh,
            fraction_b_cheaper_by_threshold: b_by_thresh,
        })
    }

    /// Whether the pair is *dynamically exploitable*: neither side is
    /// strictly better, i.e. each side is cheaper by more than the price
    /// threshold for at least `min_fraction` of the hours.
    ///
    /// The paper's §3.3 notes 60 pairs with |µ| ≤ 5 and σ ≥ 50, the kind of
    /// pair for which dynamic routing clearly beats a static choice.
    pub fn is_dynamically_exploitable(&self, min_fraction: f64) -> bool {
        match self.stats() {
            Some(s) => {
                s.fraction_a_cheaper_by_threshold >= min_fraction
                    && s.fraction_b_cheaper_by_threshold >= min_fraction
            }
            None => false,
        }
    }

    /// Median and inter-quartile range of the differential for each month
    /// index (Figure 11). Returns `(month_index, summary)` pairs in
    /// ascending month order.
    pub fn monthly_distribution(&self) -> Vec<(u64, quantiles::MedianIqr)> {
        let start = self.start;
        let groups = timeseries::group_values(&self.values, |i| {
            SimHour(start.0 + i as u64).month_index() as usize
        });
        groups
            .into_iter()
            .filter_map(|(month, vals)| quantiles::median_iqr(&vals).map(|s| (month as u64, s)))
            .collect()
    }

    /// Median and inter-quartile range of the differential for each hour of
    /// the day, in the reference (Eastern) time zone as in Figure 12.
    pub fn hour_of_day_distribution(&self) -> Vec<(u64, quantiles::MedianIqr)> {
        let start = self.start;
        let groups = timeseries::group_values(&self.values, |i| {
            SimHour(start.0 + i as u64).hour_of_day_eastern() as usize
        });
        groups
            .into_iter()
            .filter_map(|(hour, vals)| quantiles::median_iqr(&vals).map(|s| (hour as u64, s)))
            .collect()
    }

    /// Durations (in hours) of sustained differentials exceeding
    /// `threshold` $/MWh in favour of either side, following the paper's
    /// definition in §3.3: a differential ends as soon as it falls below the
    /// threshold or reverses sign.
    pub fn sustained_durations(&self, threshold: f64) -> Vec<usize> {
        let mut durations = Vec::new();
        let mut current_sign = 0i8;
        let mut current_len = 0usize;
        for &d in &self.values {
            let sign = if d > threshold {
                1
            } else if d < -threshold {
                -1
            } else {
                0
            };
            if sign == current_sign && sign != 0 {
                current_len += 1;
            } else {
                if current_sign != 0 && current_len > 0 {
                    durations.push(current_len);
                }
                current_sign = sign;
                current_len = usize::from(sign != 0);
            }
        }
        if current_sign != 0 && current_len > 0 {
            durations.push(current_len);
        }
        durations
    }

    /// Fraction of total time spent in sustained differentials of each
    /// duration (the y-axis of Figure 13). Returns `(duration_hours,
    /// fraction_of_total_time)` pairs sorted by duration.
    pub fn duration_time_fractions(&self, threshold: f64) -> Vec<(usize, f64)> {
        use std::collections::BTreeMap;
        let total = self.values.len();
        if total == 0 {
            return Vec::new();
        }
        let mut time_by_duration: BTreeMap<usize, usize> = BTreeMap::new();
        for d in self.sustained_durations(threshold) {
            *time_by_duration.entry(d).or_insert(0) += d;
        }
        time_by_duration.into_iter().map(|(d, hours)| (d, hours as f64 / total as f64)).collect()
    }

    /// The money (in $/MWh-hours) a perfectly informed buyer of one MWh per
    /// hour would save by always buying at the cheaper of the two hubs,
    /// relative to buying always at hub A.
    pub fn oracle_savings_vs_a(&self) -> f64 {
        self.values.iter().map(|&d| d.max(0.0)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::PriceGenerator;
    use crate::time::HourRange;
    use crate::types::MarketKind;

    fn series(hub: HubId, start: u64, prices: Vec<f64>) -> PriceSeries {
        PriceSeries::new(hub, MarketKind::RealTimeHourly, SimHour(start), prices)
    }

    #[test]
    fn differential_requires_aligned_series() {
        let a = series(HubId::PaloAltoCa, 0, vec![50.0, 60.0]);
        let b = series(HubId::RichmondVa, 0, vec![55.0, 40.0]);
        let d = Differential::between(&a, &b).unwrap();
        assert_eq!(d.values, vec![-5.0, 20.0]);

        let misaligned = series(HubId::RichmondVa, 1, vec![55.0, 40.0]);
        assert!(Differential::between(&a, &misaligned).is_none());
        let short = series(HubId::RichmondVa, 0, vec![55.0]);
        assert!(Differential::between(&a, &short).is_none());
    }

    #[test]
    fn stats_fractions() {
        let a = series(HubId::BostonMa, 0, vec![50.0, 50.0, 50.0, 50.0]);
        let b = series(HubId::NewYorkNy, 0, vec![40.0, 60.0, 52.0, 80.0]);
        let d = Differential::between(&a, &b).unwrap();
        let s = d.stats().unwrap();
        // a - b = [10, -10, -2, -30]
        assert!((s.mean - -8.0).abs() < 1e-9);
        assert!((s.fraction_a_cheaper - 0.75).abs() < 1e-9);
        assert!((s.fraction_a_cheaper_by_threshold - 0.5).abs() < 1e-9);
        assert!((s.fraction_b_cheaper_by_threshold - 0.25).abs() < 1e-9);
    }

    #[test]
    fn empty_differential_has_no_stats() {
        let a = series(HubId::BostonMa, 0, vec![]);
        let b = series(HubId::NewYorkNy, 0, vec![]);
        let d = Differential::between(&a, &b).unwrap();
        assert!(d.stats().is_none());
        assert!(d.duration_time_fractions(5.0).is_empty());
    }

    #[test]
    fn sustained_durations_track_sign_and_threshold() {
        let a = series(HubId::PaloAltoCa, 0, vec![60.0, 60.0, 60.0, 50.0, 40.0, 40.0, 52.0, 60.0]);
        let b = series(HubId::RichmondVa, 0, vec![50.0, 50.0, 50.0, 50.0, 50.0, 50.0, 50.0, 50.0]);
        let d = Differential::between(&a, &b).unwrap();
        // diff: [10,10,10,0,-10,-10,2,10] threshold 5:
        // run of +1 length 3, then below-threshold, run of -1 length 2, gap, run of +1 length 1
        assert_eq!(d.sustained_durations(5.0), vec![3, 2, 1]);
    }

    #[test]
    fn duration_fractions_weight_by_time() {
        let values = vec![10.0, 10.0, 10.0, 0.0, -10.0, -10.0, 0.0, 10.0];
        let d = Differential {
            hub_a: HubId::PaloAltoCa,
            hub_b: HubId::RichmondVa,
            start: SimHour(0),
            values,
        };
        let fr = d.duration_time_fractions(5.0);
        // Durations: 3 (hours 0-2), 2 (hours 4-5), 1 (hour 7): fractions 3/8, 2/8, 1/8.
        assert_eq!(fr, vec![(1, 0.125), (2, 0.25), (3, 0.375)]);
    }

    #[test]
    fn reversal_ends_a_run() {
        let values = vec![10.0, 10.0, -10.0, -10.0];
        let d = Differential {
            hub_a: HubId::ChicagoIl,
            hub_b: HubId::PeoriaIl,
            start: SimHour(0),
            values,
        };
        assert_eq!(d.sustained_durations(5.0), vec![2, 2]);
    }

    #[test]
    fn hour_of_day_grouping_covers_24_hours() {
        let g = PriceGenerator::nine_cluster_default(41);
        let start = SimHour::from_date(2006, 6, 1);
        let r = HourRange::new(start, start.plus_hours(24 * 28));
        let set = g.realtime_hourly(r);
        let d = Differential::between(
            set.for_hub(HubId::PaloAltoCa).unwrap(),
            set.for_hub(HubId::RichmondVa).unwrap(),
        )
        .unwrap();
        let by_hour = d.hour_of_day_distribution();
        assert_eq!(by_hour.len(), 24);
        // Figure 12: before ~5 am Eastern, Virginia has the edge (the
        // differential Palo Alto − Virginia is positive), by mid-morning the
        // situation reverses. Check the qualitative time-of-day dependence:
        // the early-morning median exceeds the late-morning median.
        let median_at = |h: u64| by_hour.iter().find(|(hr, _)| *hr == h).unwrap().1.median;
        let early = (1..=4).map(median_at).sum::<f64>() / 4.0;
        let late_morning = (9..=12).map(median_at).sum::<f64>() / 4.0;
        assert!(
            early > late_morning,
            "expected PaloAlto-Virginia differential to fall after sunrise: {early} vs {late_morning}"
        );
    }

    #[test]
    fn monthly_grouping_spans_months() {
        let g = PriceGenerator::nine_cluster_default(43);
        let start = SimHour::from_date(2006, 1, 1);
        let r = HourRange::new(start, start.plus_hours(24 * 100));
        let set = g.realtime_hourly(r);
        let d = Differential::between(
            set.for_hub(HubId::PaloAltoCa).unwrap(),
            set.for_hub(HubId::RichmondVa).unwrap(),
        )
        .unwrap();
        let monthly = d.monthly_distribution();
        assert!(monthly.len() >= 4);
        assert_eq!(monthly[0].0, 0);
        for (_, summary) in &monthly {
            assert!(summary.q1 <= summary.median && summary.median <= summary.q3);
        }
    }

    #[test]
    fn cross_country_pair_is_dynamically_exploitable() {
        // Figure 10a: the Palo Alto / Virginia differential is roughly
        // zero-mean with large variance — both sides are cheaper a
        // substantial fraction of the time.
        let g = PriceGenerator::nine_cluster_default(47);
        let start = SimHour::from_date(2006, 1, 1);
        let r = HourRange::new(start, start.plus_hours(24 * 180));
        let set = g.realtime_hourly(r);
        let d = Differential::between(
            set.for_hub(HubId::PaloAltoCa).unwrap(),
            set.for_hub(HubId::RichmondVa).unwrap(),
        )
        .unwrap();
        assert!(d.is_dynamically_exploitable(0.15), "stats: {:?}", d.stats());
    }

    #[test]
    fn oracle_savings_non_negative_and_bounded() {
        let a = series(HubId::BostonMa, 0, vec![50.0, 70.0, 30.0]);
        let b = series(HubId::NewYorkNy, 0, vec![60.0, 40.0, 30.0]);
        let d = Differential::between(&a, &b).unwrap();
        // Savings vs always buying at A: hour 2 (A=70, B=40) saves 30.
        assert!((d.oracle_savings_vs_a() - 30.0).abs() < 1e-9);
    }
}
