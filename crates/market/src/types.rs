//! Core market data types: market kinds and price series.

use crate::time::{HourRange, SimHour, STEPS_PER_HOUR_5MIN};
use serde::{Deserialize, Serialize};
use wattroute_geo::HubId;

/// Price unit used throughout: US dollars per megawatt-hour.
pub type DollarsPerMwh = f64;

/// The wholesale market products modelled (§2.2 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MarketKind {
    /// Hourly real-time (balancing/spot) prices — the market the paper's
    /// routing analysis uses exclusively.
    RealTimeHourly,
    /// Five-minute real-time prices underlying the hourly averages.
    RealTimeFiveMinute,
    /// Day-ahead (futures) hourly prices, set the previous day.
    DayAhead,
}

impl MarketKind {
    /// Number of samples per hour for this product.
    pub fn samples_per_hour(&self) -> u64 {
        match self {
            MarketKind::RealTimeFiveMinute => STEPS_PER_HOUR_5MIN,
            _ => 1,
        }
    }

    /// Human-readable name.
    pub fn name(&self) -> &'static str {
        match self {
            MarketKind::RealTimeHourly => "real-time hourly",
            MarketKind::RealTimeFiveMinute => "real-time 5-minute",
            MarketKind::DayAhead => "day-ahead hourly",
        }
    }
}

/// A contiguous series of prices for one hub and one market product.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PriceSeries {
    /// The hub the prices apply to.
    pub hub: HubId,
    /// The market product.
    pub kind: MarketKind,
    /// First hour covered by the series.
    pub start: SimHour,
    /// Prices in $/MWh. For hourly products there is one sample per hour;
    /// for the 5-minute product there are twelve samples per hour, in order.
    pub prices: Vec<DollarsPerMwh>,
}

impl PriceSeries {
    /// Create a series; the number of samples must be a whole number of
    /// hours for the product's sampling rate.
    pub fn new(hub: HubId, kind: MarketKind, start: SimHour, prices: Vec<DollarsPerMwh>) -> Self {
        let sph = kind.samples_per_hour() as usize;
        assert!(
            prices.len() % sph == 0,
            "series length {} is not a whole number of hours at {} samples/hour",
            prices.len(),
            sph
        );
        Self { hub, kind, start, prices }
    }

    /// Number of hours covered.
    pub fn len_hours(&self) -> u64 {
        (self.prices.len() as u64) / self.kind.samples_per_hour()
    }

    /// The hour range covered.
    pub fn range(&self) -> HourRange {
        HourRange::new(self.start, self.start.plus_hours(self.len_hours()))
    }

    /// Price in effect at a given hour, or `None` if outside the series.
    /// For the 5-minute product this returns the average of the hour's
    /// twelve samples.
    pub fn price_at(&self, hour: SimHour) -> Option<DollarsPerMwh> {
        if hour.0 < self.start.0 {
            return None;
        }
        let offset = (hour.0 - self.start.0) as usize;
        match self.kind {
            MarketKind::RealTimeFiveMinute => {
                let sph = STEPS_PER_HOUR_5MIN as usize;
                let base = offset * sph;
                if base + sph > self.prices.len() {
                    return None;
                }
                Some(self.prices[base..base + sph].iter().sum::<f64>() / sph as f64)
            }
            _ => self.prices.get(offset).copied(),
        }
    }

    /// Price at a given hour with a *reaction delay*: the router acting at
    /// `hour` only knows the price from `delay_hours` earlier (§6.4 of the
    /// paper; the default simulation uses a one-hour delay). Hours before
    /// the series start clamp to the first sample.
    pub fn delayed_price_at(&self, hour: SimHour, delay_hours: u64) -> Option<DollarsPerMwh> {
        let effective = SimHour(hour.0.saturating_sub(delay_hours).max(self.start.0));
        self.price_at(effective)
    }

    /// All hourly prices as a plain vector (averaging within the hour for
    /// the 5-minute product).
    pub fn hourly_prices(&self) -> Vec<DollarsPerMwh> {
        match self.kind {
            MarketKind::RealTimeFiveMinute => self
                .prices
                .chunks(STEPS_PER_HOUR_5MIN as usize)
                .map(|c| c.iter().sum::<f64>() / c.len() as f64)
                .collect(),
            _ => self.prices.clone(),
        }
    }

    /// Daily average prices (the series plotted in Figure 3).
    pub fn daily_averages(&self) -> Vec<DollarsPerMwh> {
        let hourly = self.hourly_prices();
        hourly.chunks(24).map(|day| day.iter().sum::<f64>() / day.len() as f64).collect()
    }

    /// Restrict the series to a sub-range of hours (intersection).
    pub fn slice(&self, range: HourRange) -> PriceSeries {
        let start = range.start.0.max(self.start.0);
        let end = range.end.0.min(self.start.0 + self.len_hours());
        if end <= start {
            return PriceSeries::new(self.hub, self.kind, SimHour(start), Vec::new());
        }
        let sph = self.kind.samples_per_hour() as usize;
        let lo = (start - self.start.0) as usize * sph;
        let hi = (end - self.start.0) as usize * sph;
        PriceSeries::new(self.hub, self.kind, SimHour(start), self.prices[lo..hi].to_vec())
    }

    /// Mean price over the whole series.
    pub fn mean(&self) -> Option<DollarsPerMwh> {
        wattroute_stats::mean(&self.prices)
    }
}

/// Hourly real-time prices for a set of hubs over a common range — the data
/// set consumed by the routing simulator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PriceSet {
    /// One hourly series per hub. All series cover the same range.
    pub series: Vec<PriceSeries>,
}

impl PriceSet {
    /// Build a set from individual series, validating that ranges match.
    pub fn new(series: Vec<PriceSeries>) -> Self {
        if let Some(first) = series.first() {
            for s in &series {
                assert_eq!(s.start, first.start, "price series must share a start hour");
                assert_eq!(s.len_hours(), first.len_hours(), "price series must share a length");
            }
        }
        Self { series }
    }

    /// The series for a given hub, if present.
    pub fn for_hub(&self, hub: HubId) -> Option<&PriceSeries> {
        self.series.iter().find(|s| s.hub == hub)
    }

    /// Hubs present in the set.
    pub fn hubs(&self) -> Vec<HubId> {
        self.series.iter().map(|s| s.hub).collect()
    }

    /// The common hour range, or `None` if the set is empty.
    pub fn range(&self) -> Option<HourRange> {
        self.series.first().map(|s| s.range())
    }

    /// Hub with the lowest mean price over the whole set — the "cheapest
    /// market" a static placement would choose (§6.3, Figure 18).
    pub fn cheapest_hub_on_average(&self) -> Option<HubId> {
        self.series
            .iter()
            .filter_map(|s| s.mean().map(|m| (s.hub, m)))
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite means"))
            .map(|(hub, _)| hub)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hourly(hub: HubId, start: SimHour, prices: Vec<f64>) -> PriceSeries {
        PriceSeries::new(hub, MarketKind::RealTimeHourly, start, prices)
    }

    #[test]
    fn price_lookup_in_and_out_of_range() {
        let s = hourly(HubId::BostonMa, SimHour(10), vec![50.0, 60.0, 70.0]);
        assert_eq!(s.price_at(SimHour(10)), Some(50.0));
        assert_eq!(s.price_at(SimHour(12)), Some(70.0));
        assert_eq!(s.price_at(SimHour(13)), None);
        assert_eq!(s.price_at(SimHour(9)), None);
        assert_eq!(s.len_hours(), 3);
    }

    #[test]
    fn delayed_price_clamps_to_start() {
        let s = hourly(HubId::BostonMa, SimHour(10), vec![50.0, 60.0, 70.0]);
        assert_eq!(s.delayed_price_at(SimHour(12), 1), Some(60.0));
        assert_eq!(s.delayed_price_at(SimHour(12), 24), Some(50.0));
        assert_eq!(s.delayed_price_at(SimHour(10), 0), Some(50.0));
    }

    #[test]
    fn five_minute_series_averages_within_hour() {
        let mut prices = vec![10.0; 12];
        prices.extend(vec![20.0; 12]);
        let s =
            PriceSeries::new(HubId::NewYorkNy, MarketKind::RealTimeFiveMinute, SimHour(0), prices);
        assert_eq!(s.len_hours(), 2);
        assert_eq!(s.price_at(SimHour(0)), Some(10.0));
        assert_eq!(s.price_at(SimHour(1)), Some(20.0));
        assert_eq!(s.hourly_prices(), vec![10.0, 20.0]);
    }

    #[test]
    #[should_panic(expected = "whole number of hours")]
    fn ragged_five_minute_series_panics() {
        let _ = PriceSeries::new(
            HubId::NewYorkNy,
            MarketKind::RealTimeFiveMinute,
            SimHour(0),
            vec![10.0; 13],
        );
    }

    #[test]
    fn daily_averages() {
        let prices: Vec<f64> = (0..48).map(|h| if h < 24 { 40.0 } else { 80.0 }).collect();
        let s = hourly(HubId::ChicagoIl, SimHour(0), prices);
        assert_eq!(s.daily_averages(), vec![40.0, 80.0]);
    }

    #[test]
    fn slicing() {
        let s = hourly(HubId::ChicagoIl, SimHour(100), (0..50).map(|i| i as f64).collect());
        let sub = s.slice(HourRange::new(SimHour(110), SimHour(120)));
        assert_eq!(sub.len_hours(), 10);
        assert_eq!(sub.prices[0], 10.0);
        assert_eq!(sub.start, SimHour(110));
        // Disjoint slice is empty.
        let empty = s.slice(HourRange::new(SimHour(500), SimHour(510)));
        assert_eq!(empty.len_hours(), 0);
    }

    #[test]
    fn price_set_validation_and_lookup() {
        let a = hourly(HubId::BostonMa, SimHour(0), vec![50.0, 60.0]);
        let b = hourly(HubId::NewYorkNy, SimHour(0), vec![70.0, 90.0]);
        let set = PriceSet::new(vec![a, b]);
        assert_eq!(set.hubs().len(), 2);
        assert_eq!(set.for_hub(HubId::NewYorkNy).unwrap().prices[1], 90.0);
        assert!(set.for_hub(HubId::ChicagoIl).is_none());
        assert_eq!(set.cheapest_hub_on_average(), Some(HubId::BostonMa));
        assert_eq!(set.range().unwrap().len_hours(), 2);
    }

    #[test]
    #[should_panic(expected = "share a start hour")]
    fn mismatched_series_panics() {
        let a = hourly(HubId::BostonMa, SimHour(0), vec![50.0, 60.0]);
        let b = hourly(HubId::NewYorkNy, SimHour(5), vec![70.0, 90.0]);
        let _ = PriceSet::new(vec![a, b]);
    }

    #[test]
    fn market_kind_metadata() {
        assert_eq!(MarketKind::RealTimeFiveMinute.samples_per_hour(), 12);
        assert_eq!(MarketKind::DayAhead.samples_per_hour(), 1);
        assert!(MarketKind::RealTimeHourly.name().contains("hourly"));
    }
}
