//! Small random-variate helpers on top of `rand`.
//!
//! The price process needs Gaussian innovations and exponentially
//! distributed spike magnitudes. To keep the dependency set small we
//! implement the two transforms directly instead of pulling in
//! `rand_distr`.

use rand::Rng;

/// Draw a standard normal variate using the Box–Muller transform.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Avoid ln(0) by sampling the half-open interval (0, 1].
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen::<f64>();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Draw a normal variate with the given mean and standard deviation.
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, std_dev: f64) -> f64 {
    mean + std_dev * standard_normal(rng)
}

/// Draw an exponential variate with the given mean (scale).
pub fn exponential<R: Rng + ?Sized>(rng: &mut R, mean: f64) -> f64 {
    let u: f64 = 1.0 - rng.gen::<f64>();
    -mean * u.ln()
}

/// A first-order autoregressive process `x' = rho * x + sigma * N(0,1)`,
/// used for the national, RTO-level and hub-level price factors.
#[derive(Debug, Clone)]
pub struct Ar1 {
    /// Autocorrelation coefficient in `[0, 1)`.
    pub rho: f64,
    /// Innovation standard deviation.
    pub sigma: f64,
    state: f64,
}

impl Ar1 {
    /// Create a process starting at zero.
    pub fn new(rho: f64, sigma: f64) -> Self {
        assert!((0.0..1.0).contains(&rho), "AR(1) rho must be in [0,1)");
        assert!(sigma >= 0.0, "AR(1) sigma must be non-negative");
        Self { rho, sigma, state: 0.0 }
    }

    /// Stationary standard deviation of the process.
    pub fn stationary_std(&self) -> f64 {
        if self.sigma == 0.0 {
            0.0
        } else {
            self.sigma / (1.0 - self.rho * self.rho).sqrt()
        }
    }

    /// Advance one step and return the new state.
    pub fn step<R: Rng + ?Sized>(&mut self, rng: &mut R) -> f64 {
        self.state = self.rho * self.state + standard_normal(rng) * self.sigma;
        self.state
    }

    /// Current state without advancing.
    pub fn state(&self) -> f64 {
        self.state
    }

    /// Warm the process up so it starts from (approximately) its stationary
    /// distribution rather than from zero.
    pub fn warm_up<R: Rng + ?Sized>(&mut self, rng: &mut R, steps: usize) {
        for _ in 0..steps {
            self.step(rng);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn standard_normal_moments() {
        let mut rng = StdRng::seed_from_u64(7);
        let samples: Vec<f64> = (0..200_000).map(|_| standard_normal(&mut rng)).collect();
        let mean = wattroute_stats::mean(&samples).unwrap();
        let sd = wattroute_stats::std_dev(&samples).unwrap();
        assert!(mean.abs() < 0.02, "mean = {mean}");
        assert!((sd - 1.0).abs() < 0.02, "sd = {sd}");
    }

    #[test]
    fn normal_scales_and_shifts() {
        let mut rng = StdRng::seed_from_u64(8);
        let samples: Vec<f64> = (0..100_000).map(|_| normal(&mut rng, 50.0, 10.0)).collect();
        let mean = wattroute_stats::mean(&samples).unwrap();
        let sd = wattroute_stats::std_dev(&samples).unwrap();
        assert!((mean - 50.0).abs() < 0.3);
        assert!((sd - 10.0).abs() < 0.3);
    }

    #[test]
    fn exponential_mean_and_positivity() {
        let mut rng = StdRng::seed_from_u64(9);
        let samples: Vec<f64> = (0..100_000).map(|_| exponential(&mut rng, 60.0)).collect();
        assert!(samples.iter().all(|&x| x >= 0.0));
        let mean = wattroute_stats::mean(&samples).unwrap();
        assert!((mean - 60.0).abs() < 2.0, "mean = {mean}");
    }

    #[test]
    fn ar1_stationary_std() {
        let mut rng = StdRng::seed_from_u64(10);
        let mut proc = Ar1::new(0.7, 10.0);
        proc.warm_up(&mut rng, 1000);
        let samples: Vec<f64> = (0..100_000).map(|_| proc.step(&mut rng)).collect();
        let sd = wattroute_stats::std_dev(&samples).unwrap();
        assert!((sd - proc.stationary_std()).abs() < 0.5, "sd = {sd}");
        let ac = wattroute_stats::timeseries::autocorrelation(&samples, 1).unwrap();
        assert!((ac - 0.7).abs() < 0.05, "autocorrelation = {ac}");
    }

    #[test]
    fn ar1_zero_sigma_is_constant() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut proc = Ar1::new(0.5, 0.0);
        assert_eq!(proc.stationary_std(), 0.0);
        for _ in 0..10 {
            assert_eq!(proc.step(&mut rng), 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "rho must be in")]
    fn ar1_rejects_unit_root() {
        let _ = Ar1::new(1.0, 1.0);
    }

    #[test]
    fn seeded_reproducibility() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(standard_normal(&mut a), standard_normal(&mut b));
        }
    }
}
