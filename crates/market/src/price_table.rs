//! Precompiled price lookup tables for the simulation hot path.
//!
//! `Simulation::run` needs, for every 5-minute step, the billing price and
//! the delayed (router-visible) price of every cluster hub. Resolving those
//! through [`PriceSet::for_hub`] costs a linear scan per hub per step plus a
//! fresh `Vec` per step. A [`PriceTable`] does that work once per
//! (price set, hub order, trace range, delay): it materialises two dense
//! `[hour × hub]` matrices so the engine's inner loop reduces to a slice
//! index. The table is the unit the scenario-sweep runner shares across
//! runs that differ only in policy or bandwidth caps.

use crate::time::{HourRange, SimHour};
use crate::types::{DollarsPerMwh, PriceSet};
use wattroute_geo::HubId;

/// Dense `[hour × hub]` billing and delayed price matrices covering one
/// trace range.
///
/// Row `h` (for hour `start + h`) holds one price per hub, in the hub order
/// the table was built with — which the simulator keeps equal to cluster
/// order, so a row can be used directly as the per-cluster price slice.
#[derive(Debug, Clone, PartialEq)]
pub struct PriceTable {
    hubs: Vec<HubId>,
    start: SimHour,
    n_hours: usize,
    delay_hours: u64,
    /// Actual prices of each hour: what billing uses.
    billing: Vec<DollarsPerMwh>,
    /// Prices as the router sees them: `delay_hours` old, clamped to the
    /// series start (see [`crate::types::PriceSeries::delayed_price_at`]).
    delayed: Vec<DollarsPerMwh>,
    /// How many leading hours of `delayed` were clamped to the first
    /// available sample because the series does not extend `delay_hours`
    /// before the range (see [`Self::clamped_lead_hours`]).
    clamped_lead_hours: u64,
}

impl PriceTable {
    /// Build a table for `hubs` (in the given order) over `range`, with the
    /// router's reaction delay baked into the delayed matrix.
    ///
    /// # Panics
    /// Panics if any hub has no series in `prices` or its series does not
    /// cover `range` — the same configuration errors `Simulation::new`
    /// rejects.
    pub fn build(prices: &PriceSet, hubs: &[HubId], range: HourRange, delay_hours: u64) -> Self {
        let n_hours = range.len_hours() as usize;
        let n_hubs = hubs.len();
        let mut billing = Vec::with_capacity(n_hours * n_hubs);
        let mut delayed = Vec::with_capacity(n_hours * n_hubs);
        let mut clamped_lead_hours = 0u64;
        let series: Vec<&crate::types::PriceSeries> = hubs
            .iter()
            .map(|hub| {
                let s = prices
                    .for_hub(*hub)
                    .unwrap_or_else(|| panic!("no price series for hub {hub:?}"));
                let price_range = s.range();
                assert!(
                    price_range.start.0 <= range.start.0 && price_range.end.0 >= range.end.0,
                    "price series for {hub:?} ({price_range:?}) does not cover the trace ({range:?})"
                );
                if range.start.0 < price_range.start.0 + delay_hours {
                    clamped_lead_hours = clamped_lead_hours
                        .max((price_range.start.0 + delay_hours).min(range.end.0) - range.start.0);
                }
                s
            })
            .collect();
        for h in 0..n_hours {
            let hour = SimHour(range.start.0 + h as u64);
            for s in &series {
                billing.push(s.price_at(hour).expect("coverage validated above"));
                delayed
                    .push(s.delayed_price_at(hour, delay_hours).expect("coverage validated above"));
            }
        }
        Self {
            hubs: hubs.to_vec(),
            start: range.start,
            n_hours,
            delay_hours,
            billing,
            delayed,
            clamped_lead_hours,
        }
    }

    /// The hub order of every row.
    pub fn hubs(&self) -> &[HubId] {
        &self.hubs
    }

    /// The hour range covered.
    pub fn range(&self) -> HourRange {
        HourRange::new(self.start, self.start.plus_hours(self.n_hours as u64))
    }

    /// The reaction delay baked into the delayed matrix.
    pub fn delay_hours(&self) -> u64 {
        self.delay_hours
    }

    /// Number of leading hours of the range whose *delayed* price falls
    /// before the series start and is therefore clamped to the first sample.
    /// A run whose price data begin exactly at the trace start sees
    /// `min(delay_hours, range hours)` clamped hours; callers that need
    /// faithful delayed prices from the first step should supply series
    /// extending `delay_hours` earlier.
    pub fn clamped_lead_hours(&self) -> u64 {
        self.clamped_lead_hours
    }

    fn row<'a>(&self, matrix: &'a [DollarsPerMwh], hour: SimHour) -> Option<&'a [DollarsPerMwh]> {
        if hour.0 < self.start.0 {
            return None;
        }
        let h = (hour.0 - self.start.0) as usize;
        if h >= self.n_hours {
            return None;
        }
        let lo = h * self.hubs.len();
        Some(&matrix[lo..lo + self.hubs.len()])
    }

    /// Per-hub billing (actual) prices for an hour inside the range.
    pub fn billing_at(&self, hour: SimHour) -> Option<&[DollarsPerMwh]> {
        self.row(&self.billing, hour)
    }

    /// Per-hub delayed (router-visible) prices for an hour inside the range.
    pub fn delayed_at(&self, hour: SimHour) -> Option<&[DollarsPerMwh]> {
        self.row(&self.delayed, hour)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::PriceGenerator;
    use crate::types::{MarketKind, PriceSeries};

    fn two_hub_set(start: SimHour, hours: u64) -> (PriceSet, Vec<HubId>) {
        let hubs = vec![HubId::BostonMa, HubId::ChicagoIl];
        let series = hubs
            .iter()
            .enumerate()
            .map(|(i, hub)| {
                let prices = (0..hours).map(|h| 40.0 + h as f64 + 100.0 * i as f64).collect();
                PriceSeries::new(*hub, MarketKind::RealTimeHourly, start, prices)
            })
            .collect();
        (PriceSet::new(series), hubs)
    }

    #[test]
    fn rows_agree_exactly_with_series_lookups() {
        let range = HourRange::new(SimHour(100), SimHour(130));
        let (set, hubs) = two_hub_set(SimHour(100), 30);
        let table = PriceTable::build(&set, &hubs, range, 3);
        for h in range.start.0..range.end.0 {
            let hour = SimHour(h);
            let billing = table.billing_at(hour).unwrap();
            let delayed = table.delayed_at(hour).unwrap();
            for (i, hub) in hubs.iter().enumerate() {
                let series = set.for_hub(*hub).unwrap();
                assert_eq!(billing[i], series.price_at(hour).unwrap());
                assert_eq!(delayed[i], series.delayed_price_at(hour, 3).unwrap());
            }
        }
    }

    #[test]
    fn out_of_range_hours_return_none() {
        let range = HourRange::new(SimHour(10), SimHour(20));
        let (set, hubs) = two_hub_set(SimHour(10), 10);
        let table = PriceTable::build(&set, &hubs, range, 0);
        assert!(table.billing_at(SimHour(9)).is_none());
        assert!(table.billing_at(SimHour(20)).is_none());
        assert!(table.delayed_at(SimHour(25)).is_none());
        assert_eq!(table.range(), range);
        assert_eq!(table.hubs(), &hubs[..]);
    }

    #[test]
    fn delayed_rows_use_history_when_the_series_extends_earlier() {
        // Series start 24 hours before the table range: no clamping.
        let (set, hubs) = two_hub_set(SimHour(0), 72);
        let range = HourRange::new(SimHour(24), SimHour(48));
        let table = PriceTable::build(&set, &hubs, range, 24);
        assert_eq!(table.clamped_lead_hours(), 0);
        // Delayed price at the very first hour is the series' first sample,
        // reached through real history rather than clamping.
        assert_eq!(table.delayed_at(SimHour(24)).unwrap()[0], 40.0);
        assert_eq!(table.delayed_at(SimHour(47)).unwrap()[0], 40.0 + 23.0);
    }

    #[test]
    fn exactly_covering_series_reports_clamped_lead_hours() {
        let range = HourRange::new(SimHour(0), SimHour(48));
        let (set, hubs) = two_hub_set(SimHour(0), 48);
        let table = PriceTable::build(&set, &hubs, range, 24);
        assert_eq!(table.clamped_lead_hours(), 24);
        // The whole clamped lead reads the first sample.
        assert_eq!(table.delayed_at(SimHour(0)).unwrap()[0], 40.0);
        assert_eq!(table.delayed_at(SimHour(23)).unwrap()[0], 40.0);
        // The first unclamped hour sees true history.
        assert_eq!(table.delayed_at(SimHour(24)).unwrap()[0], 40.0);
        assert_eq!(table.delayed_at(SimHour(25)).unwrap()[0], 41.0);
        // A delay longer than the range clamps every hour of the range.
        let all = PriceTable::build(&set, &hubs, range, 1000);
        assert_eq!(all.clamped_lead_hours(), 48);
    }

    #[test]
    fn generated_set_round_trips() {
        let start = SimHour::from_date(2008, 12, 19);
        let range = HourRange::new(start, start.plus_hours(48));
        let set = PriceGenerator::nine_cluster_default(7).realtime_hourly(range);
        let hubs = set.hubs();
        let table = PriceTable::build(&set, &hubs, range, 1);
        for h in range.start.0..range.end.0 {
            let hour = SimHour(h);
            let billing = table.billing_at(hour).unwrap();
            for (i, hub) in hubs.iter().enumerate() {
                assert_eq!(billing[i], set.for_hub(*hub).unwrap().price_at(hour).unwrap());
            }
        }
        assert_eq!(table.clamped_lead_hours(), 1);
    }

    #[test]
    #[should_panic(expected = "no price series")]
    fn missing_hub_panics() {
        let range = HourRange::new(SimHour(0), SimHour(10));
        let (set, _) = two_hub_set(SimHour(0), 10);
        let _ = PriceTable::build(&set, &[HubId::AustinTx], range, 0);
    }

    #[test]
    #[should_panic(expected = "does not cover")]
    fn short_series_panics() {
        let range = HourRange::new(SimHour(0), SimHour(20));
        let (set, hubs) = two_hub_set(SimHour(0), 10);
        let _ = PriceTable::build(&set, &hubs, range, 0);
    }
}
