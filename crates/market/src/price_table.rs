//! Precompiled price lookup tables for the simulation hot path.
//!
//! `Simulation::run` needs, for every 5-minute step, the billing price and
//! the delayed (router-visible) price of every cluster hub. Resolving those
//! through [`PriceSet::for_hub`] costs a linear scan per hub per step plus a
//! fresh `Vec` per step. The compiled form does that work once and splits it
//! into two layers so sweeps can share the expensive half:
//!
//! * a [`BillingMatrix`] — the dense `[hour × hub]` matrix of *actual*
//!   prices, which depends only on (price set, hub order, trace range). It
//!   is delay-independent, so a reaction-delay sweep (Figure 20) needs
//!   exactly one, shared behind an [`Arc`];
//! * a [`PriceTable`] — a thin per-delay view pairing a shared billing
//!   matrix with the one matrix that *does* depend on the reaction delay:
//!   the delayed prices the router sees.
//!
//! The table is the unit the scenario-sweep runner shares across runs that
//! differ only in policy or bandwidth caps; the billing matrix is the unit
//! it shares across runs that differ in reaction delay.

use crate::time::{HourRange, SimHour};
use crate::types::{DollarsPerMwh, PriceSet};
use std::sync::Arc;
use wattroute_geo::HubId;

// Compile-count instrumentation lives on the `wattroute_obs` registry:
// `market.billing_matrix.builds` counts [`BillingMatrix::build`] calls,
// `market.price_table.views` counts delayed-view constructions. Tests use
// [`BillingMatrix::build_count`] / [`PriceTable::view_count`] to assert
// that sweeps share artifacts instead of recompiling per run; registry
// counters are always live, so those pins hold without enabling telemetry.

/// Dense `[hour × hub]` matrix of *actual* (billing) prices covering one
/// trace range.
///
/// Row `h` (for hour `start + h`) holds one price per hub, in the hub order
/// the matrix was built with — which the simulator keeps equal to cluster
/// order, so a row can be used directly as the per-cluster price slice.
/// The matrix is independent of the router's reaction delay; per-delay
/// [`PriceTable`] views share one matrix behind an [`Arc`].
#[derive(Debug, Clone, PartialEq)]
pub struct BillingMatrix {
    hubs: Vec<HubId>,
    start: SimHour,
    n_hours: usize,
    prices: Vec<DollarsPerMwh>,
}

impl BillingMatrix {
    /// Build the billing matrix for `hubs` (in the given order) over
    /// `range`.
    ///
    /// # Panics
    /// Panics if any hub has no series in `prices` or its series does not
    /// cover `range` — the same configuration errors `Simulation::new`
    /// rejects.
    pub fn build(prices: &PriceSet, hubs: &[HubId], range: HourRange) -> Self {
        wattroute_obs::counter!("market.billing_matrix.builds").inc();
        let n_hours = range.len_hours() as usize;
        let series = resolve_series(prices, hubs, range);
        let mut matrix = Vec::with_capacity(n_hours * hubs.len());
        for h in 0..n_hours {
            let hour = SimHour(range.start.0 + h as u64);
            for s in &series {
                matrix.push(s.price_at(hour).expect("coverage validated above"));
            }
        }
        Self { hubs: hubs.to_vec(), start: range.start, n_hours, prices: matrix }
    }

    /// The hub order of every row.
    pub fn hubs(&self) -> &[HubId] {
        &self.hubs
    }

    /// The hour range covered.
    pub fn range(&self) -> HourRange {
        HourRange::new(self.start, self.start.plus_hours(self.n_hours as u64))
    }

    /// Per-hub billing (actual) prices for an hour inside the range.
    pub fn at(&self, hour: SimHour) -> Option<&[DollarsPerMwh]> {
        row(&self.prices, self.start, self.n_hours, self.hubs.len(), hour)
    }

    /// Total number of [`BillingMatrix::build`] calls in this process.
    ///
    /// Instrumentation for tests asserting that a sweep compiles each
    /// billing matrix exactly once; meaningless as an absolute number when
    /// other code runs concurrently — measure deltas in a dedicated
    /// process (an integration-test binary of its own). Reads the
    /// `market.billing_matrix.builds` counter on the global
    /// [`wattroute_obs`] registry.
    pub fn build_count() -> usize {
        wattroute_obs::counter!("market.billing_matrix.builds").get() as usize
    }
}

/// Resolve and validate one price series per hub, in hub order.
fn resolve_series<'a>(
    prices: &'a PriceSet,
    hubs: &[HubId],
    range: HourRange,
) -> Vec<&'a crate::types::PriceSeries> {
    hubs.iter()
        .map(|hub| {
            let s =
                prices.for_hub(*hub).unwrap_or_else(|| panic!("no price series for hub {hub:?}"));
            let price_range = s.range();
            assert!(
                price_range.start.0 <= range.start.0 && price_range.end.0 >= range.end.0,
                "price series for {hub:?} ({price_range:?}) does not cover the trace ({range:?})"
            );
            s
        })
        .collect()
}

/// Shared row-slicing for the two matrix layouts.
fn row(
    matrix: &[DollarsPerMwh],
    start: SimHour,
    n_hours: usize,
    n_hubs: usize,
    hour: SimHour,
) -> Option<&[DollarsPerMwh]> {
    if hour.0 < start.0 {
        return None;
    }
    let h = (hour.0 - start.0) as usize;
    if h >= n_hours {
        return None;
    }
    let lo = h * n_hubs;
    Some(&matrix[lo..lo + n_hubs])
}

/// A per-delay view over a shared [`BillingMatrix`]: the billing prices
/// plus the dense `[hour × hub]` matrix of *delayed* (router-visible)
/// prices for one reaction delay.
///
/// Cloning a `PriceTable` clones only the delayed matrix; the billing half
/// stays shared. Tables built from the same billing matrix at different
/// delays — the shape of a Figure-20 reaction-delay sweep — therefore store
/// the billing prices once instead of once per distinct delay.
#[derive(Debug, Clone, PartialEq)]
pub struct PriceTable {
    billing: Arc<BillingMatrix>,
    delay_hours: u64,
    /// Prices as the router sees them: `delay_hours` old, clamped to the
    /// series start (see [`crate::types::PriceSeries::delayed_price_at`]).
    delayed: Vec<DollarsPerMwh>,
    /// How many leading hours of `delayed` were clamped to the first
    /// available sample because the series does not extend `delay_hours`
    /// before the range (see [`Self::clamped_lead_hours`]).
    clamped_lead_hours: u64,
}

impl PriceTable {
    /// Build a self-contained table for `hubs` (in the given order) over
    /// `range`, with the router's reaction delay baked into the delayed
    /// matrix. Compiles a fresh [`BillingMatrix`]; use
    /// [`Self::delayed_view`] to share one across several delays.
    ///
    /// # Panics
    /// Panics if any hub has no series in `prices` or its series does not
    /// cover `range` — the same configuration errors `Simulation::new`
    /// rejects.
    pub fn build(prices: &PriceSet, hubs: &[HubId], range: HourRange, delay_hours: u64) -> Self {
        Self::delayed_view(Arc::new(BillingMatrix::build(prices, hubs, range)), prices, delay_hours)
    }

    /// Build a per-delay view over an already-compiled billing matrix. Only
    /// the delayed matrix is computed; the billing matrix is shared as-is.
    ///
    /// `prices` must be the same price set the matrix was compiled from
    /// (the delayed prices are read from the series, not the matrix,
    /// because a delay may reach before the range start) — pairing a
    /// matrix with a different set would bill one history while routing on
    /// another. A first-row spot check panics on obvious mismatches.
    ///
    /// # Panics
    /// Panics if any hub of the billing matrix has no series in `prices`,
    /// its series does not cover the matrix's range, or the series' prices
    /// disagree with the matrix's first row.
    pub fn delayed_view(billing: Arc<BillingMatrix>, prices: &PriceSet, delay_hours: u64) -> Self {
        wattroute_obs::counter!("market.price_table.views").inc();
        let range = billing.range();
        let n_hours = billing.n_hours;
        let series = resolve_series(prices, &billing.hubs, range);
        if let Some(first_row) = billing.at(range.start) {
            for ((s, &cell), hub) in series.iter().zip(first_row).zip(&billing.hubs) {
                assert_eq!(
                    s.price_at(range.start),
                    Some(cell),
                    "price series for {hub:?} disagrees with the billing matrix — \
                     the view must be built from the same price set as the matrix"
                );
            }
        }
        let mut clamped_lead_hours = 0u64;
        for s in &series {
            let price_range = s.range();
            if range.start.0 < price_range.start.0 + delay_hours {
                clamped_lead_hours = clamped_lead_hours
                    .max((price_range.start.0 + delay_hours).min(range.end.0) - range.start.0);
            }
        }
        let mut delayed = Vec::with_capacity(n_hours * billing.hubs.len());
        for h in 0..n_hours {
            let hour = SimHour(range.start.0 + h as u64);
            for s in &series {
                delayed
                    .push(s.delayed_price_at(hour, delay_hours).expect("coverage validated above"));
            }
        }
        Self { billing, delay_hours, delayed, clamped_lead_hours }
    }

    /// The shared billing matrix backing this view.
    pub fn billing_matrix(&self) -> &Arc<BillingMatrix> {
        &self.billing
    }

    /// The hub order of every row.
    pub fn hubs(&self) -> &[HubId] {
        &self.billing.hubs
    }

    /// The hour range covered.
    pub fn range(&self) -> HourRange {
        self.billing.range()
    }

    /// The reaction delay baked into the delayed matrix.
    pub fn delay_hours(&self) -> u64 {
        self.delay_hours
    }

    /// Number of leading hours of the range whose *delayed* price falls
    /// before the series start and is therefore clamped to the first sample.
    /// A run whose price data begin exactly at the trace start sees
    /// `min(delay_hours, range hours)` clamped hours; callers that need
    /// faithful delayed prices from the first step should supply series
    /// extending `delay_hours` earlier.
    pub fn clamped_lead_hours(&self) -> u64 {
        self.clamped_lead_hours
    }

    /// Per-hub billing (actual) prices for an hour inside the range.
    pub fn billing_at(&self, hour: SimHour) -> Option<&[DollarsPerMwh]> {
        self.billing.at(hour)
    }

    /// Per-hub delayed (router-visible) prices for an hour inside the range.
    pub fn delayed_at(&self, hour: SimHour) -> Option<&[DollarsPerMwh]> {
        row(&self.delayed, self.billing.start, self.billing.n_hours, self.billing.hubs.len(), hour)
    }

    /// Total number of delayed-view constructions in this process (every
    /// [`Self::build`] or [`Self::delayed_view`] call). Instrumentation for
    /// compile-count tests; see [`BillingMatrix::build_count`] for caveats.
    /// Reads the `market.price_table.views` counter on the global
    /// [`wattroute_obs`] registry.
    pub fn view_count() -> usize {
        wattroute_obs::counter!("market.price_table.views").get() as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::PriceGenerator;
    use crate::types::{MarketKind, PriceSeries};

    fn two_hub_set(start: SimHour, hours: u64) -> (PriceSet, Vec<HubId>) {
        let hubs = vec![HubId::BostonMa, HubId::ChicagoIl];
        let series = hubs
            .iter()
            .enumerate()
            .map(|(i, hub)| {
                let prices = (0..hours).map(|h| 40.0 + h as f64 + 100.0 * i as f64).collect();
                PriceSeries::new(*hub, MarketKind::RealTimeHourly, start, prices)
            })
            .collect();
        (PriceSet::new(series), hubs)
    }

    #[test]
    fn rows_agree_exactly_with_series_lookups() {
        let range = HourRange::new(SimHour(100), SimHour(130));
        let (set, hubs) = two_hub_set(SimHour(100), 30);
        let table = PriceTable::build(&set, &hubs, range, 3);
        for h in range.start.0..range.end.0 {
            let hour = SimHour(h);
            let billing = table.billing_at(hour).unwrap();
            let delayed = table.delayed_at(hour).unwrap();
            for (i, hub) in hubs.iter().enumerate() {
                let series = set.for_hub(*hub).unwrap();
                assert_eq!(billing[i], series.price_at(hour).unwrap());
                assert_eq!(delayed[i], series.delayed_price_at(hour, 3).unwrap());
            }
        }
    }

    #[test]
    fn out_of_range_hours_return_none() {
        let range = HourRange::new(SimHour(10), SimHour(20));
        let (set, hubs) = two_hub_set(SimHour(10), 10);
        let table = PriceTable::build(&set, &hubs, range, 0);
        assert!(table.billing_at(SimHour(9)).is_none());
        assert!(table.billing_at(SimHour(20)).is_none());
        assert!(table.delayed_at(SimHour(25)).is_none());
        assert_eq!(table.range(), range);
        assert_eq!(table.hubs(), &hubs[..]);
    }

    #[test]
    fn delayed_views_share_one_billing_matrix() {
        let range = HourRange::new(SimHour(0), SimHour(48));
        let (set, hubs) = two_hub_set(SimHour(0), 48);
        let billing = Arc::new(BillingMatrix::build(&set, &hubs, range));
        let views: Vec<PriceTable> = [0u64, 1, 6, 24]
            .iter()
            .map(|&d| PriceTable::delayed_view(billing.clone(), &set, d))
            .collect();
        // Every view points at the same allocation, not a copy.
        for v in &views {
            assert!(Arc::ptr_eq(v.billing_matrix(), &billing));
            assert_eq!(v.billing_at(SimHour(5)), billing.at(SimHour(5)));
        }
        // And each view matches the self-contained build bit-for-bit.
        for (v, &d) in views.iter().zip([0u64, 1, 6, 24].iter()) {
            let standalone = PriceTable::build(&set, &hubs, range, d);
            assert_eq!(v, &standalone);
        }
    }

    #[test]
    fn delayed_rows_use_history_when_the_series_extends_earlier() {
        // Series start 24 hours before the table range: no clamping.
        let (set, hubs) = two_hub_set(SimHour(0), 72);
        let range = HourRange::new(SimHour(24), SimHour(48));
        let table = PriceTable::build(&set, &hubs, range, 24);
        assert_eq!(table.clamped_lead_hours(), 0);
        // Delayed price at the very first hour is the series' first sample,
        // reached through real history rather than clamping.
        assert_eq!(table.delayed_at(SimHour(24)).unwrap()[0], 40.0);
        assert_eq!(table.delayed_at(SimHour(47)).unwrap()[0], 40.0 + 23.0);
    }

    #[test]
    fn exactly_covering_series_reports_clamped_lead_hours() {
        let range = HourRange::new(SimHour(0), SimHour(48));
        let (set, hubs) = two_hub_set(SimHour(0), 48);
        let table = PriceTable::build(&set, &hubs, range, 24);
        assert_eq!(table.clamped_lead_hours(), 24);
        // The whole clamped lead reads the first sample.
        assert_eq!(table.delayed_at(SimHour(0)).unwrap()[0], 40.0);
        assert_eq!(table.delayed_at(SimHour(23)).unwrap()[0], 40.0);
        // The first unclamped hour sees true history.
        assert_eq!(table.delayed_at(SimHour(24)).unwrap()[0], 40.0);
        assert_eq!(table.delayed_at(SimHour(25)).unwrap()[0], 41.0);
        // A delay longer than the range clamps every hour of the range.
        let all = PriceTable::build(&set, &hubs, range, 1000);
        assert_eq!(all.clamped_lead_hours(), 48);
    }

    #[test]
    fn generated_set_round_trips() {
        let start = SimHour::from_date(2008, 12, 19);
        let range = HourRange::new(start, start.plus_hours(48));
        let set = PriceGenerator::nine_cluster_default(7).realtime_hourly(range);
        let hubs = set.hubs();
        let table = PriceTable::build(&set, &hubs, range, 1);
        for h in range.start.0..range.end.0 {
            let hour = SimHour(h);
            let billing = table.billing_at(hour).unwrap();
            for (i, hub) in hubs.iter().enumerate() {
                assert_eq!(billing[i], set.for_hub(*hub).unwrap().price_at(hour).unwrap());
            }
        }
        assert_eq!(table.clamped_lead_hours(), 1);
    }

    #[test]
    fn build_counters_increase_monotonically() {
        let range = HourRange::new(SimHour(0), SimHour(10));
        let (set, hubs) = two_hub_set(SimHour(0), 10);
        let b0 = BillingMatrix::build_count();
        let v0 = PriceTable::view_count();
        let billing = Arc::new(BillingMatrix::build(&set, &hubs, range));
        let _ = PriceTable::delayed_view(billing, &set, 2);
        // Other tests run concurrently in this process, so only lower bounds
        // are meaningful here; the exact-count assertions live in a
        // single-test integration binary.
        assert!(BillingMatrix::build_count() > b0);
        assert!(PriceTable::view_count() > v0);
    }

    #[test]
    #[should_panic(expected = "disagrees with the billing matrix")]
    fn delayed_view_from_a_different_price_set_panics() {
        let range = HourRange::new(SimHour(0), SimHour(10));
        let (set_a, hubs) = two_hub_set(SimHour(0), 10);
        // Same hubs and coverage, different history.
        let set_b = PriceSet::new(
            hubs.iter()
                .map(|hub| {
                    let prices = (0..10).map(|h| 900.0 + h as f64).collect();
                    PriceSeries::new(*hub, MarketKind::RealTimeHourly, SimHour(0), prices)
                })
                .collect(),
        );
        let billing = Arc::new(BillingMatrix::build(&set_a, &hubs, range));
        let _ = PriceTable::delayed_view(billing, &set_b, 1);
    }

    #[test]
    #[should_panic(expected = "no price series")]
    fn missing_hub_panics() {
        let range = HourRange::new(SimHour(0), SimHour(10));
        let (set, _) = two_hub_set(SimHour(0), 10);
        let _ = PriceTable::build(&set, &[HubId::AustinTx], range, 0);
    }

    #[test]
    #[should_panic(expected = "does not cover")]
    fn short_series_panics() {
        let range = HourRange::new(SimHour(0), SimHour(20));
        let (set, hubs) = two_hub_set(SimHour(0), 10);
        let _ = PriceTable::build(&set, &hubs, range, 0);
    }
}
