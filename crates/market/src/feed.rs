//! Incremental price ingestion for long-running routers.
//!
//! A [`PriceTable`](crate::price_table::PriceTable) is compiled once from a
//! complete price history — the right shape for batch simulation, and the
//! wrong one for a live daemon that learns each hour's prices only when the
//! market publishes them. [`PriceFeed`] is the incremental counterpart: it
//! accepts one row of per-hub prices per hour, in hour order, and at any
//! moment can answer the two questions one simulation step asks —
//!
//! * what prices does the *router* see (the delayed view, `delay_hours`
//!   behind real time, clamped to the first row while no older history
//!   exists yet), and
//! * what prices is the operator *billed* at (the current row)?
//!
//! The feed retains only the `delay_hours + 1` most recent rows, so a
//! daemon that runs for months holds a bounded window no matter how long
//! the replayed history grows. Fed the same rows a table was compiled
//! from, the feed reproduces the table's delayed and billing slices
//! exactly — the equivalence is pinned by tests here and drives the live
//! daemon's bit-identity with batch runs.

use crate::time::SimHour;
use crate::types::DollarsPerMwh;
use std::collections::VecDeque;
use wattroute_geo::HubId;

/// Why a [`PriceFeed::ingest`] call was rejected. The feed's state is
/// unchanged after any error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FeedError {
    /// The row does not carry one price per hub.
    WidthMismatch {
        /// Number of hubs the feed was built with.
        expected: usize,
        /// Number of prices in the rejected row.
        got: usize,
    },
    /// A price was NaN or infinite.
    NonFinite {
        /// Index (in hub order) of the offending price.
        hub_index: usize,
    },
    /// The row's hour is not the next hour the feed expects — feeds accept
    /// strictly contiguous hourly rows, never gaps or replays.
    NonContiguous {
        /// The hour the feed expected next.
        expected: SimHour,
        /// The hour the rejected row carried.
        got: SimHour,
    },
}

impl std::fmt::Display for FeedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::WidthMismatch { expected, got } => {
                write!(f, "price row has {got} entries for {expected} hubs")
            }
            Self::NonFinite { hub_index } => {
                write!(f, "price for hub index {hub_index} is not finite")
            }
            Self::NonContiguous { expected, got } => {
                write!(
                    f,
                    "price row for hour {} arrived when hour {} was expected \
                     (feeds accept contiguous hourly rows only)",
                    got.0, expected.0
                )
            }
        }
    }
}

impl std::error::Error for FeedError {}

/// An incremental, bounded-memory ingestor of hourly per-hub price rows.
///
/// See the [module docs](self) for the relationship to the batch
/// [`PriceTable`](crate::price_table::PriceTable).
#[derive(Debug, Clone, PartialEq)]
pub struct PriceFeed {
    hubs: Vec<HubId>,
    delay_hours: u64,
    /// The hour of the first row ever ingested (survives eviction — it
    /// anchors the clamping rule).
    first_hour: Option<SimHour>,
    /// The most recent `delay_hours + 1` rows, oldest first. The front row
    /// is the delayed (router-visible) view, the back row the billing view.
    rows: VecDeque<(SimHour, Vec<DollarsPerMwh>)>,
    clamped_lead_hours: u64,
}

impl PriceFeed {
    /// A feed for `hubs` (in cluster order) at the router's reaction delay.
    ///
    /// # Panics
    /// Panics on an empty hub list — a feed with no hubs can never produce
    /// a usable price slice.
    pub fn new(hubs: Vec<HubId>, delay_hours: u64) -> Self {
        assert!(!hubs.is_empty(), "a price feed needs at least one hub");
        Self {
            hubs,
            delay_hours,
            first_hour: None,
            rows: VecDeque::with_capacity(delay_hours as usize + 1),
            clamped_lead_hours: 0,
        }
    }

    /// The hub order of every row.
    pub fn hubs(&self) -> &[HubId] {
        &self.hubs
    }

    /// The reaction delay between the billing and router-visible views.
    pub fn delay_hours(&self) -> u64 {
        self.delay_hours
    }

    /// The hour of the most recently ingested row, if any.
    pub fn current_hour(&self) -> Option<SimHour> {
        self.rows.back().map(|(hour, _)| *hour)
    }

    /// Number of rows currently retained (at most `delay_hours + 1`).
    pub fn retained_rows(&self) -> usize {
        self.rows.len()
    }

    /// How many ingested hours so far had their delayed view clamped to
    /// the first row because `delay_hours` of history did not exist yet —
    /// the live counterpart of
    /// [`PriceTable::clamped_lead_hours`](crate::price_table::PriceTable::clamped_lead_hours).
    pub fn clamped_lead_hours(&self) -> u64 {
        self.clamped_lead_hours
    }

    /// Ingest the price row for the next hour. The first row fixes the
    /// feed's start hour; every later row must be for exactly the following
    /// hour. On any error the feed is unchanged.
    pub fn ingest(&mut self, hour: SimHour, prices: &[DollarsPerMwh]) -> Result<(), FeedError> {
        if prices.len() != self.hubs.len() {
            return Err(FeedError::WidthMismatch { expected: self.hubs.len(), got: prices.len() });
        }
        if let Some(bad) = prices.iter().position(|p| !p.is_finite()) {
            return Err(FeedError::NonFinite { hub_index: bad });
        }
        if let Some(current) = self.current_hour() {
            let expected = SimHour(current.0 + 1);
            if hour != expected {
                return Err(FeedError::NonContiguous { expected, got: hour });
            }
        }
        let first = *self.first_hour.get_or_insert(hour);
        if hour.0 < first.0 + self.delay_hours {
            self.clamped_lead_hours += 1;
        }
        self.rows.push_back((hour, prices.to_vec()));
        // Keep exactly the rows the delayed view can still reach: the row
        // for `hour - delay` (clamped to the first row) through `hour`.
        while self.rows.len() > self.delay_hours as usize + 1 {
            self.rows.pop_front();
        }
        Ok(())
    }

    /// The per-hub prices the *router* sees at the current hour: the row
    /// from `delay_hours` ago, or the oldest available row while that much
    /// history does not exist yet. `None` before the first ingest.
    pub fn delayed(&self) -> Option<&[DollarsPerMwh]> {
        self.rows.front().map(|(_, row)| row.as_slice())
    }

    /// The per-hub prices the operator is *billed* at for the current
    /// hour. `None` before the first ingest.
    pub fn billing(&self) -> Option<&[DollarsPerMwh]> {
        self.rows.back().map(|(_, row)| row.as_slice())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::PriceGenerator;
    use crate::price_table::PriceTable;
    use crate::time::HourRange;

    fn nine_hub_window(hours: u64) -> (crate::types::PriceSet, HourRange) {
        let start = SimHour::from_date(2008, 12, 19);
        let range = HourRange::new(start, start.plus_hours(hours));
        (PriceGenerator::nine_cluster_default(7).realtime_hourly(range), range)
    }

    #[test]
    fn feed_reproduces_the_compiled_table_row_for_row() {
        let (set, range) = nine_hub_window(72);
        let hubs = set.hubs();
        for delay in [0u64, 1, 3, 24] {
            let table = PriceTable::build(&set, &hubs, range, delay);
            let mut feed = PriceFeed::new(hubs.clone(), delay);
            for h in range.start.0..range.end.0 {
                let hour = SimHour(h);
                feed.ingest(hour, table.billing_at(hour).unwrap()).unwrap();
                assert_eq!(feed.current_hour(), Some(hour));
                assert_eq!(
                    feed.delayed().unwrap(),
                    table.delayed_at(hour).unwrap(),
                    "delayed view diverged at hour {h} (delay {delay})"
                );
                assert_eq!(feed.billing().unwrap(), table.billing_at(hour).unwrap());
            }
            assert_eq!(feed.clamped_lead_hours(), table.clamped_lead_hours());
            assert!(feed.retained_rows() <= delay as usize + 1);
        }
    }

    #[test]
    fn memory_stays_bounded_by_the_delay_window() {
        let (set, range) = nine_hub_window(200);
        let hubs = set.hubs();
        let mut feed = PriceFeed::new(hubs.clone(), 5);
        for h in range.start.0..range.end.0 {
            let hour = SimHour(h);
            let row: Vec<f64> =
                hubs.iter().map(|hub| set.for_hub(*hub).unwrap().price_at(hour).unwrap()).collect();
            feed.ingest(hour, &row).unwrap();
        }
        assert_eq!(feed.retained_rows(), 6);
        assert_eq!(feed.clamped_lead_hours(), 5);
    }

    #[test]
    fn empty_feed_answers_none() {
        let feed = PriceFeed::new(vec![HubId::BostonMa], 2);
        assert_eq!(feed.current_hour(), None);
        assert_eq!(feed.delayed(), None);
        assert_eq!(feed.billing(), None);
        assert_eq!(feed.clamped_lead_hours(), 0);
    }

    #[test]
    fn malformed_rows_are_rejected_and_leave_the_feed_unchanged() {
        let mut feed = PriceFeed::new(vec![HubId::BostonMa, HubId::ChicagoIl], 1);
        feed.ingest(SimHour(10), &[40.0, 50.0]).unwrap();
        let before = feed.clone();

        assert_eq!(
            feed.ingest(SimHour(11), &[40.0]),
            Err(FeedError::WidthMismatch { expected: 2, got: 1 })
        );
        assert_eq!(
            feed.ingest(SimHour(11), &[40.0, f64::NAN]),
            Err(FeedError::NonFinite { hub_index: 1 })
        );
        assert_eq!(
            feed.ingest(SimHour(13), &[40.0, 50.0]),
            Err(FeedError::NonContiguous { expected: SimHour(11), got: SimHour(13) })
        );
        assert_eq!(
            feed.ingest(SimHour(10), &[40.0, 50.0]),
            Err(FeedError::NonContiguous { expected: SimHour(11), got: SimHour(10) })
        );
        assert_eq!(feed, before, "a rejected row must not mutate the feed");

        // Errors render readably for daemon logs.
        let rendered =
            format!("{}", FeedError::NonContiguous { expected: SimHour(11), got: SimHour(13) });
        assert!(rendered.contains("11") && rendered.contains("13"));
    }

    #[test]
    #[should_panic(expected = "at least one hub")]
    fn empty_hub_list_panics() {
        let _ = PriceFeed::new(Vec::new(), 1);
    }
}
