//! A simplified wholesale market clearing model (§2.2 of the paper).
//!
//! "Generally speaking, the most expensive active generation resource
//! determines the market clearing price for each hour. The RTO attempts to
//! meet expected demand by activating the set of resources with the lowest
//! operating costs."
//!
//! This module implements that mechanism directly: a *supply stack* of
//! generation resources ordered by marginal cost, a demand level, and a
//! uniform-price clearing rule. It grounds the statistical price generator
//! (the diurnal/seasonal shape of prices is exactly what a supply stack
//! produces as demand moves up and down it) and provides the machinery the
//! demand-response analysis (§7) needs: *negawatt* bids enter the auction as
//! demand reductions and lower the clearing price.

use serde::{Deserialize, Serialize};

/// A generation fuel class, ordered roughly by typical marginal cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FuelType {
    /// Run-of-river / reservoir hydro (near-zero marginal cost).
    Hydro,
    /// Wind (zero marginal cost, non-dispatchable).
    Wind,
    /// Nuclear base load.
    Nuclear,
    /// Coal base load.
    Coal,
    /// Combined-cycle natural gas.
    NaturalGasCombinedCycle,
    /// Natural gas peaker turbines.
    NaturalGasPeaker,
    /// Oil-fired peakers (rarely run, very expensive).
    Oil,
}

impl FuelType {
    /// Typical marginal cost in $/MWh (2006-2009 era, order-of-magnitude).
    pub fn typical_marginal_cost(&self) -> f64 {
        match self {
            FuelType::Hydro => 5.0,
            FuelType::Wind => 0.0,
            FuelType::Nuclear => 10.0,
            FuelType::Coal => 25.0,
            FuelType::NaturalGasCombinedCycle => 55.0,
            FuelType::NaturalGasPeaker => 110.0,
            FuelType::Oil => 180.0,
        }
    }

    /// Approximate carbon intensity in metric tons of CO₂ per MWh, used by
    /// the carbon-aware routing extension (§8 "Environmental Cost").
    pub fn carbon_intensity_tons_per_mwh(&self) -> f64 {
        match self {
            FuelType::Hydro | FuelType::Wind | FuelType::Nuclear => 0.0,
            FuelType::Coal => 0.95,
            FuelType::NaturalGasCombinedCycle => 0.40,
            FuelType::NaturalGasPeaker => 0.55,
            FuelType::Oil => 0.80,
        }
    }
}

/// A supply offer: a block of capacity offered at a marginal price.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SupplyOffer {
    /// Fuel class of the offering resource.
    pub fuel: FuelType,
    /// Offered capacity in MW.
    pub capacity_mw: f64,
    /// Offer price in $/MWh.
    pub price: f64,
}

/// A demand bid: a quantity of load, optionally price-sensitive.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DemandBid {
    /// Demanded quantity in MW.
    pub quantity_mw: f64,
    /// Maximum price the consumer will pay; `None` means price-insensitive
    /// (must-serve load).
    pub max_price: Option<f64>,
}

/// Result of clearing one hour of the market.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClearingResult {
    /// Uniform clearing price in $/MWh.
    pub clearing_price: f64,
    /// Total cleared demand in MW.
    pub cleared_demand_mw: f64,
    /// Total dispatched supply in MW (equals cleared demand when feasible).
    pub dispatched_supply_mw: f64,
    /// Weighted-average carbon intensity of the dispatched mix (tCO₂/MWh).
    pub carbon_intensity: f64,
    /// Whether demand exceeded total offered supply (scarcity).
    pub scarcity: bool,
}

/// A single-hour uniform-price auction.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Auction {
    offers: Vec<SupplyOffer>,
    bids: Vec<DemandBid>,
}

impl Auction {
    /// Create an empty auction.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a supply offer.
    pub fn offer(&mut self, offer: SupplyOffer) -> &mut Self {
        assert!(offer.capacity_mw >= 0.0 && offer.price.is_finite());
        self.offers.push(offer);
        self
    }

    /// Add a demand bid.
    pub fn bid(&mut self, bid: DemandBid) -> &mut Self {
        assert!(bid.quantity_mw >= 0.0);
        self.bids.push(bid);
        self
    }

    /// A representative regional supply stack, scaled to a peak capacity in
    /// MW. The mix loosely follows the national generation shares quoted in
    /// §2.2 (coal ~50 %, gas ~20 %, nuclear ~20 %, hydro ~6 %).
    pub fn with_typical_stack(peak_capacity_mw: f64) -> Self {
        let mut auction = Self::new();
        let shares = [
            (FuelType::Wind, 0.02),
            (FuelType::Hydro, 0.06),
            (FuelType::Nuclear, 0.20),
            (FuelType::Coal, 0.42),
            (FuelType::NaturalGasCombinedCycle, 0.18),
            (FuelType::NaturalGasPeaker, 0.09),
            (FuelType::Oil, 0.03),
        ];
        for (fuel, share) in shares {
            auction.offer(SupplyOffer {
                fuel,
                capacity_mw: peak_capacity_mw * share,
                price: fuel.typical_marginal_cost(),
            });
        }
        auction
    }

    /// Clear the market: serve bids in descending willingness-to-pay using
    /// offers in ascending price; the price of the marginal dispatched offer
    /// sets the uniform clearing price.
    pub fn clear(&self) -> ClearingResult {
        let mut offers = self.offers.clone();
        offers.sort_by(|a, b| a.price.partial_cmp(&b.price).expect("finite offer prices"));
        let mut bids = self.bids.clone();
        bids.sort_by(|a, b| {
            let pa = a.max_price.unwrap_or(f64::INFINITY);
            let pb = b.max_price.unwrap_or(f64::INFINITY);
            pb.partial_cmp(&pa).expect("finite bid prices")
        });

        let total_supply: f64 = offers.iter().map(|o| o.capacity_mw).sum();

        let mut cleared = 0.0f64;
        let mut dispatched = 0.0f64;
        let mut clearing_price = offers.first().map(|o| o.price).unwrap_or(0.0);
        let mut carbon_weighted = 0.0f64;

        let mut offer_idx = 0usize;
        let mut remaining_in_offer = offers.first().map(|o| o.capacity_mw).unwrap_or(0.0);

        'bids: for bid in &bids {
            let mut to_serve = bid.quantity_mw;
            while to_serve > 1e-9 {
                if offer_idx >= offers.len() {
                    // Out of supply: scarcity. Unserved demand is dropped.
                    break 'bids;
                }
                let offer = &offers[offer_idx];
                // A price-sensitive bid stops being served once the marginal
                // offer exceeds its willingness to pay.
                if let Some(max_price) = bid.max_price {
                    if offer.price > max_price {
                        break;
                    }
                }
                let take = to_serve.min(remaining_in_offer);
                if take > 0.0 {
                    to_serve -= take;
                    cleared += take;
                    dispatched += take;
                    clearing_price = clearing_price.max(offer.price);
                    carbon_weighted += take * offer.fuel.carbon_intensity_tons_per_mwh();
                    remaining_in_offer -= take;
                }
                if remaining_in_offer <= 1e-9 {
                    offer_idx += 1;
                    remaining_in_offer =
                        offers.get(offer_idx).map(|o| o.capacity_mw).unwrap_or(0.0);
                }
            }
        }

        let total_demand: f64 =
            bids.iter().filter(|b| b.max_price.is_none()).map(|b| b.quantity_mw).sum();
        ClearingResult {
            clearing_price,
            cleared_demand_mw: cleared,
            dispatched_supply_mw: dispatched,
            carbon_intensity: if dispatched > 0.0 { carbon_weighted / dispatched } else { 0.0 },
            scarcity: total_demand > total_supply + 1e-9,
        }
    }

    /// Clear the market with an additional *negawatt* (demand-reduction) bid
    /// of the given size: the reduction is modelled by subtracting the
    /// negawatts from the largest price-insensitive bid before clearing.
    /// Returns the new clearing result. This is the §7 "Selling Flexibility"
    /// mechanism: bidding load reductions into the day-ahead auction
    /// moderates prices.
    pub fn clear_with_negawatts(&self, negawatts_mw: f64) -> ClearingResult {
        let mut reduced = self.clone();
        let mut remaining = negawatts_mw.max(0.0);
        // Reduce price-insensitive bids first (they are the load the data
        // center actually controls).
        reduced.bids.sort_by(|a, b| b.quantity_mw.partial_cmp(&a.quantity_mw).expect("finite"));
        for bid in &mut reduced.bids {
            if bid.max_price.is_none() && remaining > 0.0 {
                let cut = bid.quantity_mw.min(remaining);
                bid.quantity_mw -= cut;
                remaining -= cut;
            }
        }
        reduced.clear()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn must_serve(mw: f64) -> DemandBid {
        DemandBid { quantity_mw: mw, max_price: None }
    }

    #[test]
    fn clearing_price_is_marginal_offer() {
        let mut a = Auction::new();
        a.offer(SupplyOffer { fuel: FuelType::Nuclear, capacity_mw: 100.0, price: 10.0 });
        a.offer(SupplyOffer { fuel: FuelType::Coal, capacity_mw: 100.0, price: 25.0 });
        a.offer(SupplyOffer { fuel: FuelType::NaturalGasPeaker, capacity_mw: 100.0, price: 110.0 });
        a.bid(must_serve(150.0));
        let r = a.clear();
        assert_eq!(r.clearing_price, 25.0);
        assert!((r.cleared_demand_mw - 150.0).abs() < 1e-9);
        assert!(!r.scarcity);
    }

    #[test]
    fn rising_demand_activates_expensive_units() {
        // "When demand rises, additional resources, such as natural gas
        // turbines, need to be activated" — price jumps when peakers run.
        let stack = Auction::with_typical_stack(1000.0);
        let low = {
            let mut a = stack.clone();
            a.bid(must_serve(400.0));
            a.clear()
        };
        let high = {
            let mut a = stack.clone();
            a.bid(must_serve(950.0));
            a.clear()
        };
        assert!(low.clearing_price < high.clearing_price);
        assert!(high.clearing_price >= FuelType::NaturalGasPeaker.typical_marginal_cost());
    }

    #[test]
    fn scarcity_detected_when_demand_exceeds_supply() {
        let mut a = Auction::with_typical_stack(500.0);
        a.bid(must_serve(600.0));
        let r = a.clear();
        assert!(r.scarcity);
        assert!(r.dispatched_supply_mw <= 500.0 + 1e-6);
    }

    #[test]
    fn price_sensitive_bid_declines_expensive_power() {
        let mut a = Auction::new();
        a.offer(SupplyOffer { fuel: FuelType::Coal, capacity_mw: 50.0, price: 25.0 });
        a.offer(SupplyOffer { fuel: FuelType::Oil, capacity_mw: 50.0, price: 180.0 });
        a.bid(DemandBid { quantity_mw: 80.0, max_price: Some(100.0) });
        let r = a.clear();
        // Only the coal block clears; the bid refuses oil at $180.
        assert!((r.cleared_demand_mw - 50.0).abs() < 1e-9);
        assert_eq!(r.clearing_price, 25.0);
    }

    #[test]
    fn negawatts_lower_the_clearing_price() {
        let mut a = Auction::with_typical_stack(1000.0);
        a.bid(must_serve(950.0));
        let before = a.clear();
        let after = a.clear_with_negawatts(120.0);
        assert!(
            after.clearing_price < before.clearing_price,
            "negawatts should moderate prices: {} -> {}",
            before.clearing_price,
            after.clearing_price
        );
    }

    #[test]
    fn negawatts_beyond_load_are_harmless() {
        let mut a = Auction::with_typical_stack(1000.0);
        a.bid(must_serve(300.0));
        let r = a.clear_with_negawatts(1_000.0);
        assert_eq!(r.cleared_demand_mw, 0.0);
        assert!(!r.scarcity);
    }

    #[test]
    fn carbon_intensity_tracks_dispatched_mix() {
        // Low demand is served by clean base load; high demand brings coal
        // and gas online and raises the average carbon intensity.
        let stack = Auction::with_typical_stack(1000.0);
        let low = {
            let mut a = stack.clone();
            a.bid(must_serve(250.0));
            a.clear()
        };
        let high = {
            let mut a = stack.clone();
            a.bid(must_serve(900.0));
            a.clear()
        };
        assert!(low.carbon_intensity < high.carbon_intensity);
        assert!(high.carbon_intensity > 0.3 && high.carbon_intensity < 1.0);
    }

    #[test]
    fn empty_auction_clears_to_zero() {
        let r = Auction::new().clear();
        assert_eq!(r.cleared_demand_mw, 0.0);
        assert_eq!(r.clearing_price, 0.0);
        assert!(!r.scarcity);
    }

    #[test]
    fn fuel_metadata_is_ordered_sensibly() {
        assert!(FuelType::Nuclear.typical_marginal_cost() < FuelType::Coal.typical_marginal_cost());
        assert!(
            FuelType::Coal.typical_marginal_cost()
                < FuelType::NaturalGasPeaker.typical_marginal_cost()
        );
        assert_eq!(FuelType::Wind.carbon_intensity_tons_per_mwh(), 0.0);
        assert!(
            FuelType::Coal.carbon_intensity_tons_per_mwh()
                > FuelType::NaturalGasCombinedCycle.carbon_intensity_tons_per_mwh()
        );
    }
}
