//! Wholesale electricity market substrate for the `wattroute` workspace.
//!
//! Reproduces the market-data side of *Cutting the Electric Bill for
//! Internet-Scale Systems* (Qureshi et al., SIGCOMM 2009): the paper drives
//! its routing simulations with 39 months of hourly real-time prices for 29
//! US hubs plus day-ahead and five-minute series for selected locations.
//! Those archives are proprietary, so this crate provides:
//!
//! * a **calibrated stochastic price model** ([`model::MarketModel`])
//!   whose marginal statistics, diurnal/seasonal shapes, tail behaviour and
//!   cross-hub correlation structure match the summary numbers published in
//!   the paper (Figures 3–10);
//! * a **deterministic seeded generator** ([`generator::PriceGenerator`])
//!   producing hourly real-time, day-ahead and five-minute series over any
//!   calendar range between 2006 and 2009 (and beyond);
//! * **analysis tooling** for differentials, correlations, volatility
//!   windows and hour-to-hour changes ([`differential`], [`analysis`]);
//! * a simplified **uniform-price auction** and **demand-response** model
//!   (§2.2 and §7 of the paper) in [`auction`] and [`demand_response`];
//! * a CSV interchange format ([`csv`]) so real RTO archives can be
//!   substituted for the synthetic data.
//!
//! # Quick example
//!
//! ```
//! use wattroute_market::prelude::*;
//! use wattroute_geo::HubId;
//!
//! // Generate six weeks of hourly real-time prices for the nine cluster hubs.
//! let generator = PriceGenerator::nine_cluster_default(42);
//! let start = SimHour::from_date(2008, 6, 1);
//! let range = HourRange::new(start, start.plus_hours(6 * 7 * 24));
//! let prices = generator.realtime_hourly(range);
//!
//! // Ask which hub was cheapest on average, and how exploitable the
//! // California-Virginia differential is.
//! let cheapest = prices.cheapest_hub_on_average().unwrap();
//! let diff = Differential::between(
//!     prices.for_hub(HubId::PaloAltoCa).unwrap(),
//!     prices.for_hub(HubId::RichmondVa).unwrap(),
//! ).unwrap();
//! let stats = diff.stats().unwrap();
//! assert!(stats.std_dev > 5.0);
//! assert!(prices.hubs().contains(&cheapest));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod auction;
pub mod csv;
pub mod demand_response;
pub mod differential;
pub mod feed;
pub mod generator;
pub mod model;
pub mod price_table;
pub mod rng;
pub mod time;
pub mod types;

/// Convenient re-exports of the most commonly used items.
pub mod prelude {
    pub use crate::differential::{Differential, DifferentialStats};
    pub use crate::feed::{FeedError, PriceFeed};
    pub use crate::generator::{path_seed, PriceGenerator};
    pub use crate::model::MarketModel;
    pub use crate::price_table::PriceTable;
    pub use crate::time::{HourRange, SimHour};
    pub use crate::types::{DollarsPerMwh, MarketKind, PriceSeries, PriceSet};
}

pub use prelude::*;
