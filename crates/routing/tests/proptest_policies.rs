//! Property-based tests for the price-conscious optimizer's allocation
//! invariants: for arbitrary prices, demands, thresholds, and bandwidth
//! regimes, a feasible step (total demand within the deployment's effective
//! ceilings) is always served in full without overrunning any ceiling.

use proptest::prelude::*;
use wattroute_geo::UsState;
use wattroute_market::time::SimHour;
use wattroute_routing::baseline::{NearestClusterPolicy, StaticCheapestPolicy};
use wattroute_routing::constraints::{ConstraintSet, OverflowMode};
use wattroute_routing::policy::{RoutingContext, RoutingPolicy};
use wattroute_routing::price_conscious::PriceConsciousPolicy;
use wattroute_workload::ClusterSet;

const N_CLUSTERS: usize = 9;

fn states() -> Vec<UsState> {
    UsState::all().collect()
}

/// Per-cluster prices in a realistic $/MWh band (negative prices included —
/// RTOs do clear below zero).
fn prices() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-20.0f64..500.0, N_CLUSTERS..N_CLUSTERS + 1)
}

/// Raw per-state demand weights, later scaled to a feasible total.
fn demand_weights() -> impl Strategy<Value = Vec<f64>> {
    let n = states().len();
    prop::collection::vec(0.0f64..1.0, n..n + 1)
}

/// Scale raw weights so total demand is `fill` of the given total ceiling.
fn scale_demand(weights: &[f64], ceiling_total: f64, fill: f64) -> Vec<f64> {
    let sum: f64 = weights.iter().sum();
    if sum <= 0.0 {
        return vec![0.0; weights.len()];
    }
    let scale = ceiling_total * fill / sum;
    weights.iter().map(|w| w * scale).collect()
}

proptest! {
    #[test]
    fn feasible_demand_is_fully_served_within_capacity(
        weights in demand_weights(),
        price_vec in prices(),
        threshold in 0.0f64..6000.0,
        fill in 0.05f64..0.95,
    ) {
        let clusters = ClusterSet::akamai_like_nine();
        let states = states();
        let total_cap: f64 =
            clusters.clusters().iter().map(|c| c.capacity_hits_per_sec()).sum();
        let demand = scale_demand(&weights, total_cap, fill);

        let ctx = RoutingContext::new(&clusters, &states, &demand, &price_vec, SimHour(0));
        let mut policy = PriceConsciousPolicy::with_distance_threshold(threshold);
        let allocation = policy.allocate(&ctx);

        prop_assert!(
            allocation.serves_demand(&demand, 1e-6),
            "threshold {threshold}: allocation must serve all feasible demand"
        );
        let loads = allocation.cluster_loads();
        for (c, load) in loads.iter().enumerate() {
            let cap = clusters.get(c).unwrap().capacity_hits_per_sec();
            prop_assert!(
                *load <= cap * (1.0 + 1e-9) + 1e-6,
                "cluster {c} overloaded: {load} > {cap}"
            );
        }
    }

    #[test]
    fn feasible_demand_respects_bandwidth_caps(
        weights in demand_weights(),
        price_vec in prices(),
        threshold in 0.0f64..6000.0,
        cap_fracs in prop::collection::vec(0.3f64..1.2, N_CLUSTERS..N_CLUSTERS + 1),
        fill in 0.05f64..0.9,
    ) {
        let clusters = ClusterSet::akamai_like_nine();
        let states = states();
        let bw_caps: Vec<f64> = clusters
            .clusters()
            .iter()
            .zip(&cap_fracs)
            .map(|(c, frac)| c.capacity_hits_per_sec() * frac)
            .collect();
        // The effective ceiling per cluster is min(capacity, bandwidth cap).
        let effective: Vec<f64> = clusters
            .clusters()
            .iter()
            .zip(&bw_caps)
            .map(|(c, bw)| c.capacity_hits_per_sec().min(*bw))
            .collect();
        let demand = scale_demand(&weights, effective.iter().sum(), fill);

        let ctx = RoutingContext::new(&clusters, &states, &demand, &price_vec, SimHour(0))
            .with_bandwidth_caps(bw_caps);
        let mut policy = PriceConsciousPolicy::with_distance_threshold(threshold);
        let allocation = policy.allocate(&ctx);

        prop_assert!(allocation.serves_demand(&demand, 1e-6));
        let loads = allocation.cluster_loads();
        for (c, load) in loads.iter().enumerate() {
            prop_assert!(
                *load <= effective[c] * (1.0 + 1e-9) + 1e-6,
                "cluster {c} exceeds its effective (capacity ∧ 95/5) ceiling: {load} > {}",
                effective[c]
            );
        }
    }

    #[test]
    fn any_derived_constraint_set_is_respected_by_every_policy(
        weights in demand_weights(),
        price_vec in prices(),
        threshold in 0.0f64..6000.0,
        ceiling_fracs in prop::collection::vec(0.5f64..1.5, N_CLUSTERS..N_CLUSTERS + 1),
        cap_fracs in prop::collection::vec(0.3f64..1.2, N_CLUSTERS..N_CLUSTERS + 1),
        overflow in prop::sample::select(
            vec![OverflowMode::BillAtCapacity, OverflowMode::Reject]
        ),
        fill in 0.05f64..0.9,
    ) {
        // A ConstraintSet of the general shape a calibration pass derives:
        // explicit capacity ceilings (possibly above nominal — routing
        // still clamps at nominal capacity), 95/5 bandwidth caps, and
        // either overflow mode. No feasible allocation may ever exceed any
        // cluster's effective (capacity ∧ ceiling ∧ bandwidth) cap, for
        // the baseline policies and the price-conscious optimizer alike.
        let clusters = ClusterSet::akamai_like_nine();
        let states = states();
        let nominal: Vec<f64> =
            clusters.clusters().iter().map(|c| c.capacity_hits_per_sec()).collect();
        let ceilings: Vec<f64> =
            nominal.iter().zip(&ceiling_fracs).map(|(n, f)| n * f).collect();
        let bw_caps: Vec<f64> = nominal.iter().zip(&cap_fracs).map(|(n, f)| n * f).collect();
        let set = ConstraintSet::unconstrained()
            .with_capacity_ceilings(ceilings.clone())
            .with_bandwidth_caps(bw_caps.clone())
            .with_overflow(overflow);

        let effective: Vec<f64> = (0..N_CLUSTERS)
            .map(|c| set.effective_cap(c, nominal[c]))
            .collect();
        let demand = scale_demand(&weights, effective.iter().sum(), fill);
        let ctx = RoutingContext::new(&clusters, &states, &demand, &price_vec, SimHour(0))
            .with_constraints(&set);

        let mean_prices = price_vec.clone();
        let mut policies: Vec<Box<dyn RoutingPolicy>> = vec![
            Box::new(NearestClusterPolicy::new()),
            Box::new(StaticCheapestPolicy::new(mean_prices)),
            Box::new(PriceConsciousPolicy::with_distance_threshold(threshold)),
        ];
        for policy in &mut policies {
            let allocation = policy.allocate(&ctx);
            prop_assert!(
                allocation.serves_demand(&demand, 1e-6),
                "{}: feasible demand must be fully served",
                policy.name()
            );
            for (c, load) in allocation.cluster_loads().iter().enumerate() {
                prop_assert!(
                    *load <= effective[c] * (1.0 + 1e-9) + 1e-6,
                    "{}: cluster {c} exceeds its effective cap: {load} > {} (overflow {overflow:?})",
                    policy.name(),
                    effective[c]
                );
            }
        }
    }

    #[test]
    fn infeasible_demand_is_still_fully_served(
        weights in demand_weights(),
        price_vec in prices(),
        threshold in 0.0f64..6000.0,
        overfill in 1.1f64..5.0,
    ) {
        // The paper treats capacity as a soft planning constraint: requests
        // must land somewhere even when the deployment is over-subscribed
        // (the simulator's overflow accounting makes that visible).
        let clusters = ClusterSet::akamai_like_nine();
        let states = states();
        let total_cap: f64 =
            clusters.clusters().iter().map(|c| c.capacity_hits_per_sec()).sum();
        let demand = scale_demand(&weights, total_cap, overfill);

        let ctx = RoutingContext::new(&clusters, &states, &demand, &price_vec, SimHour(0));
        let mut policy = PriceConsciousPolicy::with_distance_threshold(threshold);
        let allocation = policy.allocate(&ctx);
        prop_assert!(allocation.serves_demand(&demand, 1e-6));
    }

    #[test]
    fn repeat_allocations_with_compiled_candidates_are_deterministic(
        weights in demand_weights(),
        price_vec in prices(),
        threshold in 0.0f64..6000.0,
    ) {
        // The policy compiles per-(deployment, state list) candidate
        // structures on first use; a fresh policy must produce the same
        // allocation as a warmed one.
        let clusters = ClusterSet::akamai_like_nine();
        let states = states();
        let total_cap: f64 =
            clusters.clusters().iter().map(|c| c.capacity_hits_per_sec()).sum();
        let demand = scale_demand(&weights, total_cap, 0.5);
        let ctx = RoutingContext::new(&clusters, &states, &demand, &price_vec, SimHour(0));

        let mut warmed = PriceConsciousPolicy::with_distance_threshold(threshold);
        let first = warmed.allocate(&ctx);
        let second = warmed.allocate(&ctx);
        let mut fresh = PriceConsciousPolicy::with_distance_threshold(threshold);
        let cold = fresh.allocate(&ctx);
        prop_assert_eq!(&first, &second);
        prop_assert_eq!(&first, &cold);
    }
}
