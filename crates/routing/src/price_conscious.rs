//! The paper's price-conscious request router (§6.1).
//!
//! > "Given a client, the price-conscious optimizer maps it to a cluster
//! > with the lowest price, only considering clusters within some maximum
//! > radial geographic distance. For clients that do not have any clusters
//! > within that maximum distance, the routing scheme finds the closest
//! > cluster and considers any other nearby clusters (< 50 km). If the
//! > selected cluster is nearing its capacity (or the 95/5 boundary), the
//! > optimizer iteratively finds another good cluster."
//!
//! Two parameters modulate its behaviour: a **distance threshold** (0 ⇒
//! optimal-distance routing, larger than the coast-to-coast distance ⇒
//! optimal-price routing) and a **price threshold** (differentials smaller
//! than $5/MWh are ignored, so ties go to the nearer cluster).

use crate::allocation::Allocation;
use crate::policy::{assign_by_preference, RoutingContext, RoutingPolicy};
use serde::{Deserialize, Serialize};
use wattroute_geo::distance::RankedHub;
use wattroute_geo::{distance, hubs, HubId, UsState};
use wattroute_market::differential::DEFAULT_PRICE_THRESHOLD;

/// Configuration of the price-conscious optimizer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PriceConsciousConfig {
    /// Maximum radial client-to-cluster distance considered, in km.
    /// `0.0` degenerates to nearest-cluster routing; anything larger than
    /// the East-West coast distance (~4100 km) gives pure price routing.
    pub distance_threshold_km: f64,
    /// Price differentials smaller than this ($/MWh) are ignored; the
    /// nearer cluster wins such ties. The paper uses $5/MWh.
    pub price_threshold: f64,
}

impl Default for PriceConsciousConfig {
    fn default() -> Self {
        Self { distance_threshold_km: 1500.0, price_threshold: DEFAULT_PRICE_THRESHOLD }
    }
}

/// Distance-dependent candidate structure for one client state, computed
/// once per (deployment, state list, distance threshold) and reused across
/// reallocations. Prices change every routing decision; geography does not.
#[derive(Debug, Clone)]
struct StateCandidates {
    /// Clusters within the distance threshold (or the paper's nearest +
    /// 50 km fallback set), sorted by ascending distance.
    candidates: Vec<RankedHub>,
    /// The remaining clusters, sorted by ascending distance — the
    /// last-resort overflow tail appended after the priced candidates.
    tail: Vec<usize>,
}

/// The per-(deployment, config) compilation of [`PriceConsciousPolicy`]'s
/// geometric work: candidate sets and overflow tails for every client state
/// of the routing context. Rebuilt whenever the deployment's hub list, the
/// context's state list, or the distance threshold it was compiled for
/// changes (the threshold is mutable through the public `config` field).
#[derive(Debug, Clone)]
struct CompiledPreferences {
    hub_ids: Vec<HubId>,
    states: Vec<UsState>,
    distance_threshold_km: f64,
    per_state: Vec<StateCandidates>,
}

impl CompiledPreferences {
    fn build(ctx: &RoutingContext<'_>, distance_threshold_km: f64) -> Self {
        let hub_ids = ctx.clusters.hub_ids().to_vec();
        let hub_refs: Vec<&wattroute_geo::Hub> = hub_ids.iter().map(|id| hubs::hub(*id)).collect();
        let per_state = ctx
            .states
            .iter()
            .map(|&state| {
                let candidates =
                    distance::hubs_within_threshold(state, &hub_refs, distance_threshold_km);
                let mut tail: Vec<RankedHub> = (0..hub_refs.len())
                    .filter(|i| !candidates.iter().any(|(c, _)| c == i))
                    .map(|i| (i, distance::state_to_hub_km(state, hub_refs[i])))
                    .collect();
                tail.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite distances"));
                StateCandidates { candidates, tail: tail.into_iter().map(|(i, _)| i).collect() }
            })
            .collect();
        Self { hub_ids, states: ctx.states.to_vec(), distance_threshold_km, per_state }
    }

    fn matches(&self, ctx: &RoutingContext<'_>, distance_threshold_km: f64) -> bool {
        self.distance_threshold_km == distance_threshold_km
            && self.hub_ids == ctx.clusters.hub_ids()
            && self.states == ctx.states
    }
}

/// The distance-constrained electricity price optimizer.
#[derive(Debug, Clone, Default)]
pub struct PriceConsciousPolicy {
    /// Tunable parameters.
    pub config: PriceConsciousConfig,
    /// Lazily compiled per-state candidate structure for the deployment and
    /// state list last routed over.
    compiled: Option<CompiledPreferences>,
}

impl PriceConsciousPolicy {
    /// Create a policy with an explicit configuration.
    pub fn new(config: PriceConsciousConfig) -> Self {
        Self { config, compiled: None }
    }

    /// Create a policy with the given distance threshold and the default
    /// $5/MWh price threshold.
    pub fn with_distance_threshold(distance_threshold_km: f64) -> Self {
        Self::new(PriceConsciousConfig { distance_threshold_km, ..Default::default() })
    }

    /// "Optimal price" variant: no effective distance constraint.
    pub fn unconstrained_distance() -> Self {
        Self::with_distance_threshold(50_000.0)
    }

    /// Preference order for one client state: candidate clusters within the
    /// distance threshold (with the paper's nearest + 50 km fallback),
    /// sorted by price with sub-threshold differences broken by distance,
    /// followed by the remaining clusters by distance (so capacity overflow
    /// degrades gracefully rather than arbitrarily). The distance-dependent
    /// parts come precomputed in `entry`; only the price-dependent ranking
    /// happens per reallocation.
    fn preference_order(&self, prices: &[f64], entry: &StateCandidates) -> Vec<usize> {
        // Split candidates into those whose price is within the price
        // threshold of the cheapest candidate ("as good as the cheapest";
        // among these the nearest wins, because sub-threshold differentials
        // are ignored) and the remainder, ordered by price then distance.
        // Doing it in two stages, rather than with a price-or-distance
        // comparator, keeps the ordering a total order.
        let cheapest =
            entry.candidates.iter().map(|(i, _)| prices[*i]).fold(f64::INFINITY, f64::min);
        let (cheap_set, mut rest): (Vec<RankedHub>, Vec<RankedHub>) = entry
            .candidates
            .iter()
            .copied()
            .partition(|(i, _)| prices[*i] <= cheapest + self.config.price_threshold);
        // `candidates` is pre-sorted by distance, so `cheap_set` (a
        // stable partition of it) already is too.
        rest.sort_by(|(ia, da), (ib, db)| {
            prices[*ia]
                .partial_cmp(&prices[*ib])
                .expect("finite prices")
                .then(da.partial_cmp(db).expect("finite distances"))
        });

        let mut order: Vec<usize> = Vec::with_capacity(entry.candidates.len() + entry.tail.len());
        order.extend(cheap_set.iter().chain(rest.iter()).map(|(i, _)| *i));
        // The out-of-threshold clusters, by distance, as a last resort for
        // overflow.
        order.extend_from_slice(&entry.tail);
        order
    }
}

impl RoutingPolicy for PriceConsciousPolicy {
    fn name(&self) -> &str {
        "price-conscious"
    }

    fn allocate(&mut self, ctx: &RoutingContext<'_>) -> Allocation {
        let threshold = self.config.distance_threshold_km;
        if !self.compiled.as_ref().is_some_and(|c| c.matches(ctx, threshold)) {
            self.compiled = Some(CompiledPreferences::build(ctx, threshold));
        }
        let compiled = self.compiled.as_ref().expect("compiled above");
        assign_by_preference(ctx, |state_idx, _| {
            self.preference_order(ctx.prices, &compiled.per_state[state_idx])
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wattroute_geo::HubId;
    use wattroute_market::time::SimHour;
    use wattroute_workload::ClusterSet;

    fn ctx<'a>(
        clusters: &'a ClusterSet,
        states: &'a [UsState],
        demand: &'a [f64],
        prices: &'a [f64],
    ) -> RoutingContext<'a> {
        RoutingContext::new(clusters, states, demand, prices, SimHour(0))
    }

    fn nine_prices(base: f64) -> Vec<f64> {
        vec![base; 9]
    }

    #[test]
    fn zero_threshold_degenerates_to_nearest() {
        let clusters = ClusterSet::akamai_like_nine();
        let states = [UsState::MA];
        let demand = [1000.0];
        // Make Boston expensive: a nearest-distance scheme must still pick it.
        let mut prices = nine_prices(30.0);
        let boston = clusters.index_of_hub(HubId::BostonMa).unwrap();
        prices[boston] = 500.0;
        let c = ctx(&clusters, &states, &demand, &prices);
        let mut policy = PriceConsciousPolicy::with_distance_threshold(0.0);
        let a = policy.allocate(&c);
        assert_eq!(a.matrix()[boston][0], 1000.0);
    }

    #[test]
    fn unconstrained_threshold_chases_the_cheapest_hub() {
        let clusters = ClusterSet::akamai_like_nine();
        let states = [UsState::MA];
        let demand = [1000.0];
        let mut prices = nine_prices(80.0);
        let austin = clusters.index_of_hub(HubId::AustinTx).unwrap();
        prices[austin] = 20.0;
        let c = ctx(&clusters, &states, &demand, &prices);
        let mut policy = PriceConsciousPolicy::unconstrained_distance();
        let a = policy.allocate(&c);
        assert_eq!(a.matrix()[austin][0], 1000.0);
        assert_eq!(policy.name(), "price-conscious");
    }

    #[test]
    fn distance_threshold_excludes_far_cheap_clusters() {
        let clusters = ClusterSet::akamai_like_nine();
        let states = [UsState::MA];
        let demand = [1000.0];
        let mut prices = nine_prices(80.0);
        // Palo Alto is nearly free, but ~4300km from Massachusetts clients.
        let pa = clusters.index_of_hub(HubId::PaloAltoCa).unwrap();
        prices[pa] = 1.0;
        let c = ctx(&clusters, &states, &demand, &prices);
        let mut policy = PriceConsciousPolicy::with_distance_threshold(1500.0);
        let a = policy.allocate(&c);
        assert_eq!(a.matrix()[pa][0], 0.0, "Palo Alto is beyond the 1500km threshold");
        assert!(a.serves_demand(&demand, 1e-9));
    }

    #[test]
    fn sub_threshold_differentials_prefer_the_nearer_cluster() {
        let clusters = ClusterSet::akamai_like_nine();
        let states = [UsState::MA];
        let demand = [1000.0];
        let boston = clusters.index_of_hub(HubId::BostonMa).unwrap();
        let nyc = clusters.index_of_hub(HubId::NewYorkNy).unwrap();
        // NYC is $3 cheaper — below the $5 threshold, so Boston (nearer) wins.
        let mut prices = nine_prices(60.0);
        prices[boston] = 50.0;
        prices[nyc] = 47.0;
        let c = ctx(&clusters, &states, &demand, &prices);
        let mut policy = PriceConsciousPolicy::with_distance_threshold(1500.0);
        let a = policy.allocate(&c);
        assert_eq!(a.matrix()[boston][0], 1000.0);

        // Make the differential exceed the threshold and NYC wins.
        let mut prices2 = nine_prices(60.0);
        prices2[boston] = 50.0;
        prices2[nyc] = 40.0;
        let c2 = ctx(&clusters, &states, &demand, &prices2);
        let a2 = policy.allocate(&c2);
        assert_eq!(a2.matrix()[nyc][0], 1000.0);
    }

    #[test]
    fn capacity_pressure_spills_to_next_cheapest_candidate() {
        let clusters = ClusterSet::akamai_like_nine().scaled(0.01);
        let states = [UsState::NY];
        let nyc = clusters.index_of_hub(HubId::NewYorkNy).unwrap();
        let nj = clusters.index_of_hub(HubId::NewarkNj).unwrap();
        let cap = clusters.get(nyc).unwrap().capacity_hits_per_sec();
        let demand = [cap * 1.5];
        let mut prices = nine_prices(90.0);
        prices[nyc] = 20.0;
        prices[nj] = 30.0;
        let c = ctx(&clusters, &states, &demand, &prices);
        let mut policy = PriceConsciousPolicy::with_distance_threshold(1000.0);
        let a = policy.allocate(&c);
        let loads = a.cluster_loads();
        assert!((loads[nyc] - cap).abs() < 1e-6, "cheapest candidate fills first");
        assert!(loads[nj] > 0.0, "overflow moves to the next cheapest nearby cluster");
        assert!(a.serves_demand(&demand, 1e-6));
    }

    #[test]
    fn bandwidth_caps_respected() {
        let clusters = ClusterSet::akamai_like_nine();
        let states = [UsState::CA];
        let demand = [100_000.0];
        let pa = clusters.index_of_hub(HubId::PaloAltoCa).unwrap();
        let la = clusters.index_of_hub(HubId::LosAngelesCa).unwrap();
        let mut prices = nine_prices(70.0);
        prices[pa] = 10.0;
        // Cap Palo Alto's 95/5 ceiling below the offered demand.
        let mut caps = vec![f64::INFINITY; 9];
        caps[pa] = 30_000.0;
        let c = ctx(&clusters, &states, &demand, &prices).with_bandwidth_caps(caps);
        let mut policy = PriceConsciousPolicy::with_distance_threshold(1000.0);
        let a = policy.allocate(&c);
        let loads = a.cluster_loads();
        assert!(loads[pa] <= 30_000.0 + 1e-6);
        assert!(loads[la] > 0.0, "the rest lands on the other in-threshold cluster");
    }

    #[test]
    fn remote_states_fall_back_to_nearest_cluster() {
        // Montana has no cluster within 1100 km in this deployment; the
        // fallback must still serve it from the nearest cluster.
        let clusters = ClusterSet::akamai_like_nine();
        let states = [UsState::MT];
        let demand = [500.0];
        let prices = nine_prices(50.0);
        let c = ctx(&clusters, &states, &demand, &prices);
        let mut policy = PriceConsciousPolicy::with_distance_threshold(1100.0);
        let a = policy.allocate(&c);
        assert!(a.serves_demand(&demand, 1e-9));
    }

    #[test]
    fn mutating_the_threshold_recompiles_candidates() {
        // `config` is a public field; a changed threshold must invalidate
        // the compiled candidate sets, not silently reuse them.
        let clusters = ClusterSet::akamai_like_nine();
        let states = [UsState::MA];
        let demand = [1000.0];
        let mut prices = nine_prices(80.0);
        let austin = clusters.index_of_hub(HubId::AustinTx).unwrap();
        prices[austin] = 20.0;
        let c = ctx(&clusters, &states, &demand, &prices);
        let mut policy = PriceConsciousPolicy::with_distance_threshold(0.0);
        let near = policy.allocate(&c);
        assert_eq!(near.matrix()[austin][0], 0.0, "0 km threshold routes to the nearest cluster");
        policy.config.distance_threshold_km = 50_000.0;
        let far = policy.allocate(&c);
        assert_eq!(far.matrix()[austin][0], 1000.0, "the new threshold must take effect");
    }

    #[test]
    fn default_config_matches_paper() {
        let cfg = PriceConsciousConfig::default();
        assert_eq!(cfg.price_threshold, 5.0);
        assert_eq!(cfg.distance_threshold_km, 1500.0);
    }
}
