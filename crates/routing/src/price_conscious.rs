//! The paper's price-conscious request router (§6.1).
//!
//! > "Given a client, the price-conscious optimizer maps it to a cluster
//! > with the lowest price, only considering clusters within some maximum
//! > radial geographic distance. For clients that do not have any clusters
//! > within that maximum distance, the routing scheme finds the closest
//! > cluster and considers any other nearby clusters (< 50 km). If the
//! > selected cluster is nearing its capacity (or the 95/5 boundary), the
//! > optimizer iteratively finds another good cluster."
//!
//! Two parameters modulate its behaviour: a **distance threshold** (0 ⇒
//! optimal-distance routing, larger than the coast-to-coast distance ⇒
//! optimal-price routing) and a **price threshold** (differentials smaller
//! than $5/MWh are ignored, so ties go to the nearer cluster).

use crate::allocation::Allocation;
use crate::policy::{assign_by_preference_into, AssignWorkspace, RoutingContext, RoutingPolicy};
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use wattroute_geo::distance::RankedHub;
use wattroute_geo::{distance, hubs, HubId, UsState};
use wattroute_market::differential::DEFAULT_PRICE_THRESHOLD;
use wattroute_workload::ClusterSet;

/// Configuration of the price-conscious optimizer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PriceConsciousConfig {
    /// Maximum radial client-to-cluster distance considered, in km.
    /// `0.0` degenerates to nearest-cluster routing; anything larger than
    /// the East-West coast distance (~4100 km) gives pure price routing.
    pub distance_threshold_km: f64,
    /// Price differentials smaller than this ($/MWh) are ignored; the
    /// nearer cluster wins such ties. The paper uses $5/MWh.
    pub price_threshold: f64,
}

impl Default for PriceConsciousConfig {
    fn default() -> Self {
        Self { distance_threshold_km: 1500.0, price_threshold: DEFAULT_PRICE_THRESHOLD }
    }
}

/// Distance-dependent candidate structure for one client state, derived
/// once per (compiled geometry, distance threshold) and reused across
/// reallocations. Prices change every routing decision; geography does not.
#[derive(Debug, Clone)]
struct StateCandidates {
    /// Clusters within the distance threshold (or the paper's nearest +
    /// 50 km fallback set), sorted by ascending distance.
    candidates: Vec<RankedHub>,
    /// The remaining clusters, sorted by ascending distance — the
    /// last-resort overflow tail appended after the priced candidates.
    tail: Vec<usize>,
}

// Compile-count instrumentation lives on the `wattroute_obs` registry: the
// `routing.compiled_preferences.builds` counter tracks every
// [`CompiledPreferences::build`] call so tests can assert that sweeps share
// one compiled geometry per (deployment, state list) instead of letting
// every run recompile its own. Registry counters are always live, so those
// pins hold without enabling telemetry.

/// The expensive, threshold-*independent* half of the price-conscious
/// optimizer's geometry: for every client state, all clusters ranked by
/// ascending population-weighted distance.
///
/// Depends only on the deployment's hub list and the client state list —
/// not on the distance threshold and not on prices — so one compilation can
/// be shared read-only (behind an [`Arc`]) by every run of a scenario sweep
/// that routes the same deployment over the same trace, whatever their
/// thresholds, delays, or bandwidth caps. Per-threshold candidate splits
/// and per-step price rankings are derived from it cheaply (no distance
/// computation, no sorting).
#[derive(Debug, Clone)]
pub struct CompiledPreferences {
    hub_ids: Vec<HubId>,
    states: Vec<UsState>,
    /// Per state: every cluster index with its distance, ascending.
    ranked: Vec<Vec<RankedHub>>,
}

impl CompiledPreferences {
    /// Compile the ranked-distance geometry for a deployment and client
    /// state list.
    pub fn build(clusters: &ClusterSet, states: &[UsState]) -> Self {
        wattroute_obs::counter!("routing.compiled_preferences.builds").inc();
        let hub_ids = clusters.hub_ids();
        let hub_refs: Vec<&wattroute_geo::Hub> = hub_ids.iter().map(|id| hubs::hub(*id)).collect();
        let ranked = states
            .iter()
            .map(|&state| distance::hubs_within_threshold(state, &hub_refs, f64::INFINITY))
            .collect();
        Self { hub_ids, states: states.to_vec(), ranked }
    }

    /// Whether this compilation was built for the context's deployment hub
    /// list and state list.
    pub fn matches(&self, ctx: &RoutingContext<'_>) -> bool {
        self.hub_ids == ctx.clusters.hub_ids() && self.states == ctx.states
    }

    /// The hub list this geometry was compiled for, in cluster order.
    pub fn hub_ids(&self) -> &[HubId] {
        &self.hub_ids
    }

    /// The client state list this geometry was compiled for.
    pub fn states(&self) -> &[UsState] {
        &self.states
    }

    /// Total number of [`CompiledPreferences::build`] calls in this
    /// process. Instrumentation for compile-count tests; only deltas
    /// measured in a dedicated process (a single-test integration binary)
    /// are meaningful, since any concurrently running code may compile too.
    /// Reads the `routing.compiled_preferences.builds` counter on the
    /// global [`wattroute_obs`] registry.
    pub fn build_count() -> usize {
        wattroute_obs::counter!("routing.compiled_preferences.builds").get() as usize
    }

    /// Ranked `(cluster index, distance)` pairs for one client state,
    /// ascending by distance. Stable-sorted from cluster-index order, so
    /// equidistant clusters keep their deployment order — the same
    /// tie-break every in-crate distance sort uses, which is what lets the
    /// baselines and extension policies ride this geometry bit-identically.
    pub(crate) fn ranked(&self, state_idx: usize) -> &[RankedHub] {
        &self.ranked[state_idx]
    }

    /// Derive the per-threshold candidate/tail split from the ranked
    /// geometry: candidates are the clusters within `threshold_km` (with
    /// the paper's nearest + 50 km fallback when none are), the tail is
    /// every other cluster, both in ascending-distance order.
    fn threshold_split(&self, threshold_km: f64) -> Vec<StateCandidates> {
        self.ranked
            .iter()
            .map(|ranked| {
                let within: Vec<RankedHub> =
                    ranked.iter().copied().filter(|(_, d)| *d <= threshold_km).collect();
                let candidates = if !within.is_empty() || ranked.is_empty() {
                    within
                } else {
                    // Fallback: nearest cluster plus any within 50 km of it.
                    let nearest = ranked[0].1;
                    ranked.iter().copied().filter(|(_, d)| *d <= nearest + 50.0).collect()
                };
                let tail = ranked
                    .iter()
                    .filter(|(i, _)| !candidates.iter().any(|(c, _)| c == i))
                    .map(|(i, _)| *i)
                    .collect();
                StateCandidates { candidates, tail }
            })
            .collect()
    }
}

/// Make sure `slot` holds compiled geometry matching `ctx`, lazily
/// self-compiling (and counting an own-build) when it does not. The shared
/// entry point for every policy that rides [`CompiledPreferences`]; returns
/// `true` when a recompile happened so callers can invalidate anything they
/// derived from the previous geometry.
pub(crate) fn ensure_compiled(
    slot: &mut Option<Arc<CompiledPreferences>>,
    own_builds: &mut usize,
    ctx: &RoutingContext<'_>,
) -> bool {
    if slot.as_ref().is_some_and(|c| c.matches(ctx)) {
        return false;
    }
    *slot = Some(Arc::new(CompiledPreferences::build(ctx.clusters, ctx.states)));
    *own_builds += 1;
    true
}

/// A [`CompiledPreferences`] specialised to one distance threshold — the
/// cheap, per-policy half of the compilation.
#[derive(Debug, Clone)]
struct ThresholdSplit {
    distance_threshold_km: f64,
    per_state: Vec<StateCandidates>,
}

/// Reusable re-ranking scratch: the cheap-set/rest partition buffers the
/// per-state price ranking is built in. Owned by the policy so steady-state
/// reallocation allocates nothing.
#[derive(Debug, Clone, Default)]
struct RankScratch {
    cheap: Vec<RankedHub>,
    rest: Vec<RankedHub>,
}

/// The distance-constrained electricity price optimizer.
#[derive(Debug, Clone, Default)]
pub struct PriceConsciousPolicy {
    /// Tunable parameters.
    pub config: PriceConsciousConfig,
    /// Compiled ranked-distance geometry for the deployment and state list
    /// last routed over — either attached by a sweep (shared) or compiled
    /// lazily by this instance.
    compiled: Option<Arc<CompiledPreferences>>,
    /// Candidate/tail split derived from `compiled` for the current
    /// distance threshold.
    split: Option<ThresholdSplit>,
    /// How many times *this instance* compiled its own geometry (attached
    /// shared geometry does not count). Instrumentation for tests proving
    /// that shared preferences eliminate per-run recompiles.
    own_geometry_builds: usize,
    /// Pour-engine scratch reused across reallocations.
    workspace: AssignWorkspace,
    /// Price re-ranking scratch reused across states and reallocations.
    scratch: RankScratch,
}

impl PriceConsciousPolicy {
    /// Create a policy with an explicit configuration.
    pub fn new(config: PriceConsciousConfig) -> Self {
        Self { config, ..Default::default() }
    }

    /// Create a policy with the given distance threshold and the default
    /// $5/MWh price threshold.
    pub fn with_distance_threshold(distance_threshold_km: f64) -> Self {
        Self::new(PriceConsciousConfig { distance_threshold_km, ..Default::default() })
    }

    /// "Optimal price" variant: no effective distance constraint.
    pub fn unconstrained_distance() -> Self {
        Self::with_distance_threshold(50_000.0)
    }

    /// Attach shared, pre-compiled ranked-distance geometry (typically from
    /// a scenario sweep's artifact cache). The policy routes with it as
    /// long as it matches the contexts it is handed; a mismatching context
    /// falls back to a lazy self-compile, so attaching can never change
    /// results — only avoid recompiles.
    pub fn with_shared_preferences(mut self, prefs: Arc<CompiledPreferences>) -> Self {
        self.attach_shared_preferences(&prefs);
        self
    }

    /// In-place form of [`Self::with_shared_preferences`].
    pub fn attach_shared_preferences(&mut self, prefs: &Arc<CompiledPreferences>) {
        self.compiled = Some(prefs.clone());
        self.split = None;
    }

    /// How many times this instance compiled its own geometry (a run fed
    /// shared preferences that match its contexts reports `0`).
    pub fn own_geometry_builds(&self) -> usize {
        self.own_geometry_builds
    }
}

/// Preference order for one client state, written into `out`: candidate
/// clusters within the distance threshold (with the paper's nearest + 50 km
/// fallback), sorted by price with sub-threshold differences broken by
/// distance, followed by the remaining clusters by distance (so capacity
/// overflow degrades gracefully rather than arbitrarily). The
/// distance-dependent parts come precomputed in `entry`; only the
/// price-dependent ranking happens per reallocation, entirely in the
/// caller's reused `scratch`/`out` buffers.
fn preference_order_into(
    config: &PriceConsciousConfig,
    prices: &[f64],
    entry: &StateCandidates,
    scratch: &mut RankScratch,
    out: &mut Vec<usize>,
) {
    // Split candidates into those whose price is within the price
    // threshold of the cheapest candidate ("as good as the cheapest";
    // among these the nearest wins, because sub-threshold differentials
    // are ignored) and the remainder, ordered by price then distance.
    // Doing it in two stages, rather than with a price-or-distance
    // comparator, keeps the ordering a total order.
    let cheapest = entry.candidates.iter().map(|(i, _)| prices[*i]).fold(f64::INFINITY, f64::min);
    scratch.cheap.clear();
    scratch.rest.clear();
    for &(i, d) in &entry.candidates {
        if prices[i] <= cheapest + config.price_threshold {
            scratch.cheap.push((i, d));
        } else {
            scratch.rest.push((i, d));
        }
    }
    // `candidates` is pre-sorted by distance, so `cheap` (a stable
    // partition of it) already is too.
    scratch.rest.sort_by(|(ia, da), (ib, db)| {
        prices[*ia]
            .partial_cmp(&prices[*ib])
            .expect("finite prices")
            .then(da.partial_cmp(db).expect("finite distances"))
    });

    out.extend(scratch.cheap.iter().chain(scratch.rest.iter()).map(|(i, _)| *i));
    // The out-of-threshold clusters, by distance, as a last resort for
    // overflow.
    out.extend_from_slice(&entry.tail);
}

impl RoutingPolicy for PriceConsciousPolicy {
    fn name(&self) -> &str {
        "price-conscious"
    }

    fn allocate(&mut self, ctx: &RoutingContext<'_>) -> Allocation {
        let mut out = Allocation::zeros(ctx.clusters.len(), ctx.states.len());
        self.allocate_into(&mut out, ctx);
        out
    }

    fn allocate_into(&mut self, out: &mut Allocation, ctx: &RoutingContext<'_>) {
        if !self.compiled.as_ref().is_some_and(|c| c.matches(ctx)) {
            self.compiled = Some(Arc::new(CompiledPreferences::build(ctx.clusters, ctx.states)));
            self.split = None;
            self.own_geometry_builds += 1;
        }
        let threshold = self.config.distance_threshold_km;
        if !self.split.as_ref().is_some_and(|s| s.distance_threshold_km == threshold) {
            let compiled = self.compiled.as_ref().expect("compiled above");
            self.split = Some(ThresholdSplit {
                distance_threshold_km: threshold,
                per_state: compiled.threshold_split(threshold),
            });
        }
        let Self { config, split, workspace, scratch, .. } = self;
        let split = split.as_ref().expect("derived above");
        assign_by_preference_into(ctx, workspace, out, |state_idx, _, buf| {
            preference_order_into(config, ctx.prices, &split.per_state[state_idx], scratch, buf);
        });
    }

    fn attach_preferences(&mut self, prefs: &Arc<CompiledPreferences>) {
        self.attach_shared_preferences(prefs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wattroute_geo::HubId;
    use wattroute_market::time::SimHour;
    use wattroute_workload::ClusterSet;

    fn ctx<'a>(
        clusters: &'a ClusterSet,
        states: &'a [UsState],
        demand: &'a [f64],
        prices: &'a [f64],
    ) -> RoutingContext<'a> {
        RoutingContext::new(clusters, states, demand, prices, SimHour(0))
    }

    fn nine_prices(base: f64) -> Vec<f64> {
        vec![base; 9]
    }

    #[test]
    fn zero_threshold_degenerates_to_nearest() {
        let clusters = ClusterSet::akamai_like_nine();
        let states = [UsState::MA];
        let demand = [1000.0];
        // Make Boston expensive: a nearest-distance scheme must still pick it.
        let mut prices = nine_prices(30.0);
        let boston = clusters.index_of_hub(HubId::BostonMa).unwrap();
        prices[boston] = 500.0;
        let c = ctx(&clusters, &states, &demand, &prices);
        let mut policy = PriceConsciousPolicy::with_distance_threshold(0.0);
        let a = policy.allocate(&c);
        assert_eq!(a.matrix()[boston][0], 1000.0);
    }

    #[test]
    fn unconstrained_threshold_chases_the_cheapest_hub() {
        let clusters = ClusterSet::akamai_like_nine();
        let states = [UsState::MA];
        let demand = [1000.0];
        let mut prices = nine_prices(80.0);
        let austin = clusters.index_of_hub(HubId::AustinTx).unwrap();
        prices[austin] = 20.0;
        let c = ctx(&clusters, &states, &demand, &prices);
        let mut policy = PriceConsciousPolicy::unconstrained_distance();
        let a = policy.allocate(&c);
        assert_eq!(a.matrix()[austin][0], 1000.0);
        assert_eq!(policy.name(), "price-conscious");
    }

    #[test]
    fn distance_threshold_excludes_far_cheap_clusters() {
        let clusters = ClusterSet::akamai_like_nine();
        let states = [UsState::MA];
        let demand = [1000.0];
        let mut prices = nine_prices(80.0);
        // Palo Alto is nearly free, but ~4300km from Massachusetts clients.
        let pa = clusters.index_of_hub(HubId::PaloAltoCa).unwrap();
        prices[pa] = 1.0;
        let c = ctx(&clusters, &states, &demand, &prices);
        let mut policy = PriceConsciousPolicy::with_distance_threshold(1500.0);
        let a = policy.allocate(&c);
        assert_eq!(a.matrix()[pa][0], 0.0, "Palo Alto is beyond the 1500km threshold");
        assert!(a.serves_demand(&demand, 1e-9));
    }

    #[test]
    fn sub_threshold_differentials_prefer_the_nearer_cluster() {
        let clusters = ClusterSet::akamai_like_nine();
        let states = [UsState::MA];
        let demand = [1000.0];
        let boston = clusters.index_of_hub(HubId::BostonMa).unwrap();
        let nyc = clusters.index_of_hub(HubId::NewYorkNy).unwrap();
        // NYC is $3 cheaper — below the $5 threshold, so Boston (nearer) wins.
        let mut prices = nine_prices(60.0);
        prices[boston] = 50.0;
        prices[nyc] = 47.0;
        let c = ctx(&clusters, &states, &demand, &prices);
        let mut policy = PriceConsciousPolicy::with_distance_threshold(1500.0);
        let a = policy.allocate(&c);
        assert_eq!(a.matrix()[boston][0], 1000.0);

        // Make the differential exceed the threshold and NYC wins.
        let mut prices2 = nine_prices(60.0);
        prices2[boston] = 50.0;
        prices2[nyc] = 40.0;
        let c2 = ctx(&clusters, &states, &demand, &prices2);
        let a2 = policy.allocate(&c2);
        assert_eq!(a2.matrix()[nyc][0], 1000.0);
    }

    #[test]
    fn capacity_pressure_spills_to_next_cheapest_candidate() {
        let clusters = ClusterSet::akamai_like_nine().scaled(0.01);
        let states = [UsState::NY];
        let nyc = clusters.index_of_hub(HubId::NewYorkNy).unwrap();
        let nj = clusters.index_of_hub(HubId::NewarkNj).unwrap();
        let cap = clusters.get(nyc).unwrap().capacity_hits_per_sec();
        let demand = [cap * 1.5];
        let mut prices = nine_prices(90.0);
        prices[nyc] = 20.0;
        prices[nj] = 30.0;
        let c = ctx(&clusters, &states, &demand, &prices);
        let mut policy = PriceConsciousPolicy::with_distance_threshold(1000.0);
        let a = policy.allocate(&c);
        let loads = a.cluster_loads();
        assert!((loads[nyc] - cap).abs() < 1e-6, "cheapest candidate fills first");
        assert!(loads[nj] > 0.0, "overflow moves to the next cheapest nearby cluster");
        assert!(a.serves_demand(&demand, 1e-6));
    }

    #[test]
    fn bandwidth_caps_respected() {
        let clusters = ClusterSet::akamai_like_nine();
        let states = [UsState::CA];
        let demand = [100_000.0];
        let pa = clusters.index_of_hub(HubId::PaloAltoCa).unwrap();
        let la = clusters.index_of_hub(HubId::LosAngelesCa).unwrap();
        let mut prices = nine_prices(70.0);
        prices[pa] = 10.0;
        // Cap Palo Alto's 95/5 ceiling below the offered demand.
        let mut caps = vec![f64::INFINITY; 9];
        caps[pa] = 30_000.0;
        let c = ctx(&clusters, &states, &demand, &prices).with_bandwidth_caps(caps);
        let mut policy = PriceConsciousPolicy::with_distance_threshold(1000.0);
        let a = policy.allocate(&c);
        let loads = a.cluster_loads();
        assert!(loads[pa] <= 30_000.0 + 1e-6);
        assert!(loads[la] > 0.0, "the rest lands on the other in-threshold cluster");
    }

    #[test]
    fn remote_states_fall_back_to_nearest_cluster() {
        // Montana has no cluster within 1100 km in this deployment; the
        // fallback must still serve it from the nearest cluster.
        let clusters = ClusterSet::akamai_like_nine();
        let states = [UsState::MT];
        let demand = [500.0];
        let prices = nine_prices(50.0);
        let c = ctx(&clusters, &states, &demand, &prices);
        let mut policy = PriceConsciousPolicy::with_distance_threshold(1100.0);
        let a = policy.allocate(&c);
        assert!(a.serves_demand(&demand, 1e-9));
    }

    #[test]
    fn mutating_the_threshold_recompiles_candidates() {
        // `config` is a public field; a changed threshold must invalidate
        // the compiled candidate sets, not silently reuse them.
        let clusters = ClusterSet::akamai_like_nine();
        let states = [UsState::MA];
        let demand = [1000.0];
        let mut prices = nine_prices(80.0);
        let austin = clusters.index_of_hub(HubId::AustinTx).unwrap();
        prices[austin] = 20.0;
        let c = ctx(&clusters, &states, &demand, &prices);
        let mut policy = PriceConsciousPolicy::with_distance_threshold(0.0);
        let near = policy.allocate(&c);
        assert_eq!(near.matrix()[austin][0], 0.0, "0 km threshold routes to the nearest cluster");
        policy.config.distance_threshold_km = 50_000.0;
        let far = policy.allocate(&c);
        assert_eq!(far.matrix()[austin][0], 1000.0, "the new threshold must take effect");
    }

    #[test]
    fn default_config_matches_paper() {
        let cfg = PriceConsciousConfig::default();
        assert_eq!(cfg.price_threshold, 5.0);
        assert_eq!(cfg.distance_threshold_km, 1500.0);
    }

    #[test]
    fn shared_preferences_allocate_identically_without_recompiling() {
        let clusters = ClusterSet::akamai_like_nine();
        let states: Vec<UsState> = UsState::all().collect();
        let demand: Vec<f64> = (0..states.len()).map(|i| 100.0 + 37.0 * i as f64).collect();
        let prices: Vec<f64> = (0..9).map(|i| 30.0 + 11.0 * i as f64).collect();
        let shared = Arc::new(CompiledPreferences::build(&clusters, &states));

        for threshold in [0.0, 800.0, 1500.0, 50_000.0] {
            let c = ctx(&clusters, &states, &demand, &prices);
            let mut own = PriceConsciousPolicy::with_distance_threshold(threshold);
            let mut borrowed = PriceConsciousPolicy::with_distance_threshold(threshold)
                .with_shared_preferences(shared.clone());
            let a = own.allocate(&c);
            let b = borrowed.allocate(&c);
            assert_eq!(a.matrix(), b.matrix(), "threshold {threshold}");
            assert_eq!(own.own_geometry_builds(), 1);
            assert_eq!(borrowed.own_geometry_builds(), 0, "shared geometry must be reused");
        }
    }

    #[test]
    fn mismatching_shared_preferences_fall_back_to_self_compile() {
        let clusters = ClusterSet::akamai_like_nine();
        let other =
            ClusterSet::new(clusters.clusters().iter().take(3).cloned().collect::<Vec<_>>());
        let states = [UsState::MA];
        let demand = [1000.0];
        let prices = nine_prices(50.0);
        // Geometry compiled for a *different* deployment.
        let wrong = Arc::new(CompiledPreferences::build(&other, &states));
        assert_eq!(wrong.hub_ids().len(), 3);
        assert_eq!(wrong.states(), &states[..]);

        let c = ctx(&clusters, &states, &demand, &prices);
        let mut policy =
            PriceConsciousPolicy::with_distance_threshold(1500.0).with_shared_preferences(wrong);
        let a = policy.allocate(&c);
        assert_eq!(policy.own_geometry_builds(), 1, "mismatch must trigger a self-compile");
        let mut fresh = PriceConsciousPolicy::with_distance_threshold(1500.0);
        assert_eq!(a.matrix(), fresh.allocate(&c).matrix());
    }

    #[test]
    fn attach_preferences_trait_hook_reaches_the_policy() {
        let clusters = ClusterSet::akamai_like_nine();
        let states = [UsState::NY];
        let demand = [2000.0];
        let prices = nine_prices(60.0);
        let shared = Arc::new(CompiledPreferences::build(&clusters, &states));
        let mut policy: Box<dyn RoutingPolicy> =
            Box::new(PriceConsciousPolicy::with_distance_threshold(1000.0));
        policy.attach_preferences(&shared);
        let c = ctx(&clusters, &states, &demand, &prices);
        let _ = policy.allocate(&c);
        // And the default no-op implementation is callable on any policy.
        let mut baseline: Box<dyn RoutingPolicy> =
            Box::new(crate::baseline::NearestClusterPolicy::new());
        baseline.attach_preferences(&shared);
    }
}
