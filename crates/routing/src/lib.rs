//! Request-routing policies for electricity-cost-aware load direction.
//!
//! This crate implements the routing side of *Cutting the Electric Bill for
//! Internet-Scale Systems* (Qureshi et al., SIGCOMM 2009):
//!
//! * [`allocation`] — the per-step assignment of client-state demand to
//!   clusters, plus distance accounting;
//! * [`policy`] — the [`policy::RoutingPolicy`] trait, the per-step
//!   [`policy::RoutingContext`] (demand, prices, and the constraint set in
//!   force), and the shared greedy assignment engine;
//! * [`constraints`] — the unified [`constraints::ConstraintSet`]
//!   (capacity ceilings, 95/5 bandwidth caps, overflow mode) that
//!   simulations own and routing contexts borrow, plus the hub-keyed
//!   [`constraints::HubBandwidthCaps`] used to carry one calibration
//!   across deployments;
//! * [`baseline`] — the comparison policies: nearest-cluster
//!   (distance-optimal), an Akamai-like baseline allocation, and the static
//!   cheapest-hub placement of §6.3;
//! * [`price_conscious`] — the paper's distance-constrained electricity
//!   price optimizer (§6.1) with its distance threshold and $5/MWh price
//!   threshold;
//! * [`extensions`] — the §8 future-work policies: carbon-aware routing and
//!   a joint price/distance optimizer.
//!
//! ```
//! use wattroute_routing::prelude::*;
//! use wattroute_workload::ClusterSet;
//! use wattroute_geo::UsState;
//! use wattroute_market::time::SimHour;
//!
//! let clusters = ClusterSet::akamai_like_nine();
//! let states = vec![UsState::MA, UsState::CA];
//! let demand = vec![1000.0, 3000.0];
//! // Palo Alto is currently cheap, everything else expensive.
//! let prices = vec![20.0, 80.0, 80.0, 80.0, 80.0, 80.0, 80.0, 80.0, 80.0];
//! let ctx = RoutingContext::new(&clusters, &states, &demand, &prices, SimHour(0));
//!
//! let mut optimizer = PriceConsciousPolicy::unconstrained_distance();
//! let allocation = optimizer.allocate(&ctx);
//! // All demand lands on the cheapest cluster (index 0 = Palo Alto).
//! assert!(allocation.cluster_loads()[0] > 3999.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod allocation;
pub mod baseline;
pub mod constraints;
pub mod extensions;
pub mod policy;
pub mod price_conscious;

/// Convenient re-exports of the most commonly used items.
pub mod prelude {
    pub use crate::allocation::Allocation;
    pub use crate::baseline::{AkamaiLikePolicy, NearestClusterPolicy, StaticCheapestPolicy};
    pub use crate::constraints::{ConstraintSet, HubBandwidthCaps, OverflowMode, TierCaps};
    pub use crate::extensions::{CarbonAwarePolicy, JointCostPolicy};
    pub use crate::policy::{RoutingContext, RoutingPolicy};
    pub use crate::price_conscious::{CompiledPreferences, PriceConsciousPolicy};
}

pub use prelude::*;
