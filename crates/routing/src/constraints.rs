//! The unified constraint layer: what a routing decision may not do.
//!
//! The paper's savings are only credible because the price-conscious
//! router is *constrained*: it may not raise any cluster's 95th-percentile
//! bandwidth above the level observed under the original assignment (§4,
//! §6.1), and it may not route demand beyond a cluster's request capacity.
//! A [`ConstraintSet`] gathers everything of that kind — per-cluster
//! capacity ceilings, per-cluster 95/5 bandwidth caps, and the
//! [`OverflowMode`] governing what happens to demand that no ceiling can
//! absorb — into one value that a simulation configuration owns and a
//! [`RoutingContext`](crate::policy::RoutingContext) *borrows*. Borrowing
//! matters: the simulator re-routes up to every five-minute step, and the
//! constraint set is immutable run-state, so the hot loop must not clone
//! cap vectors per step (it used to).
//!
//! Caps are positional (aligned with a deployment's cluster order). For
//! consumers that compare *different* deployments — the placement
//! optimizer searches over varying active-hub sets — [`HubBandwidthCaps`]
//! keys the same caps by [`HubId`] and resolves them against any cluster
//! set, so one calibration pass can constrain an entire search.

use wattroute_geo::topology::Topology;
use wattroute_geo::HubId;
use wattroute_workload::ClusterSet;

/// What happens to demand routed beyond a cluster's capacity.
///
/// The paper treats capacity as a soft planning constraint and never
/// models turned-away requests; [`OverflowMode::BillAtCapacity`] reproduces
/// that behaviour exactly. [`OverflowMode::Reject`] models the service
/// degradation explicitly: over-capacity demand is counted as
/// `rejected_hits` and excluded from served totals, so a cost-vs-QoS
/// objective can trade electricity savings against turned-away traffic.
/// Energy and dollars are identical in both modes — the power model
/// saturates at capacity either way; only the hit accounting moves.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OverflowMode {
    /// Demand beyond capacity is billed as if served at capacity and
    /// surfaced as `overflow_hits` (the original behaviour, and the
    /// default — results are bit-for-bit unchanged).
    #[default]
    BillAtCapacity,
    /// Demand beyond capacity is turned away: counted as `rejected_hits`,
    /// excluded from `total_hits`, and `overflow_hits` stays zero.
    Reject,
}

/// Aggregate bandwidth ceilings for the metro and region tiers of a
/// hierarchical deployment, in tree-indexed SoA form: each site (cluster
/// position) carries its parent metro and region index, and each tier
/// carries one cap per node (`f64::INFINITY` = uncapped).
///
/// A tier cap constrains the *sum* of loads over the tier's sites, so the
/// effective ceiling of a site is `site ∧ metro ∧ region ∧ 95/5` — the
/// router pours demand into a site only while all three tiers have
/// headroom. Flat deployments never carry tier caps and pay nothing.
#[derive(Debug, Clone, PartialEq)]
pub struct TierCaps {
    /// Parent metro of each site (cluster position).
    site_metro: Vec<usize>,
    /// Parent region of each site (cluster position).
    site_region: Vec<usize>,
    /// Aggregate cap per metro in hits/second (`∞` = uncapped).
    metro_caps: Vec<f64>,
    /// Aggregate cap per region in hits/second (`∞` = uncapped).
    region_caps: Vec<f64>,
}

impl TierCaps {
    /// Build from explicit parent vectors and per-tier caps.
    ///
    /// # Panics
    /// Panics when the parent vectors differ in length, a parent index is
    /// out of range, or a cap is NaN or negative.
    pub fn new(
        site_metro: Vec<usize>,
        site_region: Vec<usize>,
        metro_caps: Vec<f64>,
        region_caps: Vec<f64>,
    ) -> Self {
        assert_eq!(site_metro.len(), site_region.len(), "one parent pair per site required");
        assert!(site_metro.iter().all(|&m| m < metro_caps.len()), "site metro index out of range");
        assert!(
            site_region.iter().all(|&r| r < region_caps.len()),
            "site region index out of range"
        );
        let valid = |c: &f64| !c.is_nan() && *c >= 0.0;
        assert!(metro_caps.iter().all(valid), "metro caps must be >= 0");
        assert!(region_caps.iter().all(valid), "region caps must be >= 0");
        Self { site_metro, site_region, metro_caps, region_caps }
    }

    /// Lift a topology's metro/region caps into routing form. Returns
    /// `None` when every cap is infinite — an uncapped tree routes on the
    /// flat (and cheaper) path, bit-identical to a flat deployment.
    pub fn from_topology(topology: &Topology) -> Option<Self> {
        if !topology.has_tier_caps() {
            return None;
        }
        Some(Self::new(
            topology.site_metros().to_vec(),
            topology.site_regions().to_vec(),
            (0..topology.num_metros()).map(|m| topology.metro_cap_hits_per_sec(m)).collect(),
            (0..topology.num_regions()).map(|r| topology.region_cap_hits_per_sec(r)).collect(),
        ))
    }

    /// Number of sites the parent vectors describe.
    pub fn num_sites(&self) -> usize {
        self.site_metro.len()
    }

    /// Parent metro index of each site, in cluster order.
    pub fn site_metros(&self) -> &[usize] {
        &self.site_metro
    }

    /// Parent region index of each site, in cluster order.
    pub fn site_regions(&self) -> &[usize] {
        &self.site_region
    }

    /// Aggregate caps per metro.
    pub fn metro_caps(&self) -> &[f64] {
        &self.metro_caps
    }

    /// Aggregate caps per region.
    pub fn region_caps(&self) -> &[f64] {
        &self.region_caps
    }
}

/// Everything a routing decision must respect, for one deployment.
///
/// The set is cheap when unconstrained (no vectors allocated) and
/// immutable once a run starts, so the simulator hands the *same* set to
/// every reallocation by reference.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ConstraintSet {
    /// Optional per-cluster request-capacity ceilings in hits/second,
    /// overriding (tightening) each cluster's nominal capacity for
    /// routing purposes. `None` uses the nominal capacities.
    capacity_ceilings: Option<Vec<f64>>,
    /// Optional per-cluster 95/5 bandwidth ceilings in hits/second,
    /// typically derived from a baseline calibration pass ("follow
    /// original 95/5 constraints"). `None` relaxes the constraint.
    bandwidth_caps: Option<Vec<f64>>,
    /// Optional aggregate metro/region tier caps for hierarchical
    /// deployments. `None` (every flat deployment) routes on the
    /// per-cluster-only path.
    tier_caps: Option<TierCaps>,
    /// What happens to demand beyond every ceiling.
    overflow: OverflowMode,
}

impl ConstraintSet {
    /// A fully relaxed set: nominal capacities, no bandwidth caps, default
    /// overflow accounting. Allocates nothing.
    pub fn unconstrained() -> Self {
        Self::default()
    }

    /// Attach per-cluster 95/5 bandwidth ceilings (hits/second).
    pub fn with_bandwidth_caps(mut self, caps: Vec<f64>) -> Self {
        self.bandwidth_caps = Some(caps);
        self
    }

    /// Remove the bandwidth caps (back to the relaxed regime).
    pub fn without_bandwidth_caps(mut self) -> Self {
        self.bandwidth_caps = None;
        self
    }

    /// Attach per-cluster capacity ceilings (hits/second) that tighten the
    /// clusters' nominal capacities for routing.
    pub fn with_capacity_ceilings(mut self, ceilings: Vec<f64>) -> Self {
        self.capacity_ceilings = Some(ceilings);
        self
    }

    /// Attach aggregate metro/region tier caps (hierarchical deployments).
    pub fn with_tier_caps(mut self, tier_caps: TierCaps) -> Self {
        self.tier_caps = Some(tier_caps);
        self
    }

    /// Remove the tier caps (back to per-cluster-only constraints).
    pub fn without_tier_caps(mut self) -> Self {
        self.tier_caps = None;
        self
    }

    /// Set the overflow mode (what happens to over-capacity demand).
    pub fn with_overflow(mut self, overflow: OverflowMode) -> Self {
        self.overflow = overflow;
        self
    }

    /// The per-cluster 95/5 bandwidth ceilings, if any.
    pub fn bandwidth_caps(&self) -> Option<&[f64]> {
        self.bandwidth_caps.as_deref()
    }

    /// The per-cluster capacity ceilings, if any.
    pub fn capacity_ceilings(&self) -> Option<&[f64]> {
        self.capacity_ceilings.as_deref()
    }

    /// The aggregate metro/region tier caps, if any.
    pub fn tier_caps(&self) -> Option<&TierCaps> {
        self.tier_caps.as_ref()
    }

    /// The overflow mode in force.
    pub fn overflow(&self) -> OverflowMode {
        self.overflow
    }

    /// Whether 95/5 bandwidth caps are in force.
    pub fn is_bandwidth_constrained(&self) -> bool {
        self.bandwidth_caps.is_some()
    }

    /// The effective routing ceiling for one cluster: the minimum of its
    /// capacity (nominal, or the explicit ceiling when one is set) and its
    /// bandwidth cap (when one is set).
    pub fn effective_cap(&self, cluster: usize, nominal_capacity: f64) -> f64 {
        let capacity = match &self.capacity_ceilings {
            Some(ceilings) => nominal_capacity.min(ceilings[cluster]),
            None => nominal_capacity,
        };
        match &self.bandwidth_caps {
            Some(caps) => capacity.min(caps[cluster]),
            None => capacity,
        }
    }

    /// Scale the bandwidth caps by a factor — relaxing (factor > 1) or
    /// tightening the 95/5 regime, as the savings-vs-slack curve sweeps.
    /// A non-finite factor removes the caps entirely (the ∞ point of the
    /// curve *is* the unconstrained run). No-op on an uncapped set.
    ///
    /// # Panics
    /// Panics on a negative factor.
    pub fn with_bandwidth_caps_scaled(mut self, factor: f64) -> Self {
        assert!(factor >= 0.0, "cap multiplier must be non-negative");
        self.bandwidth_caps = match (self.bandwidth_caps, factor.is_finite()) {
            (Some(caps), true) => Some(caps.into_iter().map(|c| c * factor).collect()),
            _ => None,
        };
        self
    }

    /// Check every positional vector against a deployment size.
    ///
    /// # Panics
    /// Panics on a length mismatch — a configuration error, not a data
    /// condition.
    pub fn validate(&self, n_clusters: usize) {
        if let Some(caps) = &self.bandwidth_caps {
            assert_eq!(caps.len(), n_clusters, "bandwidth cap length mismatch");
        }
        if let Some(ceilings) = &self.capacity_ceilings {
            assert_eq!(ceilings.len(), n_clusters, "capacity ceiling length mismatch");
        }
        if let Some(tiers) = &self.tier_caps {
            assert_eq!(tiers.num_sites(), n_clusters, "tier cap site count mismatch");
        }
    }
}

/// 95/5 bandwidth caps keyed by market hub rather than cluster position,
/// so one calibration pass constrains *any* deployment over the same
/// hubs — including the placement optimizer's candidates, whose active-hub
/// sets differ from the calibrated deployment's.
///
/// Hubs the calibration never observed resolve to an unconstrained cap
/// (`f64::INFINITY`): the baseline assignment sent them no traffic, so
/// there is no observed 95/5 level to hold them to (a freshly activated
/// hub would negotiate a fresh bandwidth contract).
#[derive(Debug, Clone, PartialEq)]
pub struct HubBandwidthCaps {
    caps: Vec<(HubId, f64)>,
}

impl HubBandwidthCaps {
    /// Build from explicit (hub, cap) pairs. Later duplicates of a hub are
    /// ignored (first wins, matching cluster-order resolution).
    pub fn new(caps: Vec<(HubId, f64)>) -> Self {
        Self { caps }
    }

    /// Build from a deployment's hub order and its positional caps.
    ///
    /// # Panics
    /// Panics if the lengths differ.
    pub fn from_cluster_caps(clusters: &ClusterSet, caps: &[f64]) -> Self {
        let hub_ids = clusters.hub_ids();
        assert_eq!(hub_ids.len(), caps.len(), "cap vector must align with the deployment");
        Self::new(hub_ids.into_iter().zip(caps.iter().copied()).collect())
    }

    /// The cap for one hub, if the calibration observed it.
    pub fn get(&self, hub: HubId) -> Option<f64> {
        self.caps.iter().find(|(h, _)| *h == hub).map(|(_, c)| *c)
    }

    /// The (hub, cap) pairs, in calibration cluster order.
    pub fn entries(&self) -> &[(HubId, f64)] {
        &self.caps
    }

    /// Scale every cap by a factor (see
    /// [`ConstraintSet::with_bandwidth_caps_scaled`] for semantics — a
    /// non-finite factor here still yields caps, each infinite, which
    /// resolve to unconstrained sets; a zero calibrated cap becomes
    /// infinite too, not `0 × ∞ = NaN`).
    pub fn scaled(&self, factor: f64) -> Self {
        assert!(factor >= 0.0, "cap multiplier must be non-negative");
        let scale = |c: f64| if factor.is_finite() { c * factor } else { f64::INFINITY };
        Self::new(self.caps.iter().map(|&(h, c)| (h, scale(c))).collect())
    }

    /// Positional caps for an arbitrary deployment: each cluster gets its
    /// hub's calibrated cap, or `f64::INFINITY` when the hub was never
    /// observed.
    pub fn resolve(&self, clusters: &ClusterSet) -> Vec<f64> {
        clusters.hub_ids().into_iter().map(|h| self.get(h).unwrap_or(f64::INFINITY)).collect()
    }

    /// Derive a deployment's [`ConstraintSet`] from a base set: everything
    /// (overflow mode, capacity ceilings) is kept, the bandwidth caps are
    /// replaced by this calibration's resolution — unless every resolved
    /// cap is infinite, in which case the set is left bandwidth-relaxed.
    pub fn apply(&self, clusters: &ClusterSet, base: &ConstraintSet) -> ConstraintSet {
        let resolved = self.resolve(clusters);
        let mut set = base.clone();
        set.bandwidth_caps =
            if resolved.iter().all(|c| c.is_infinite()) { None } else { Some(resolved) };
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unconstrained_set_uses_nominal_capacity() {
        let set = ConstraintSet::unconstrained();
        assert_eq!(set.effective_cap(0, 1000.0), 1000.0);
        assert!(!set.is_bandwidth_constrained());
        assert_eq!(set.overflow(), OverflowMode::BillAtCapacity);
        set.validate(9); // no vectors, nothing to mismatch
    }

    #[test]
    fn effective_cap_is_the_minimum_of_all_ceilings() {
        let set = ConstraintSet::unconstrained()
            .with_capacity_ceilings(vec![800.0, 2000.0])
            .with_bandwidth_caps(vec![500.0, 1500.0]);
        // capacity ∧ ceiling ∧ bandwidth cap, per cluster.
        assert_eq!(set.effective_cap(0, 1000.0), 500.0);
        assert_eq!(set.effective_cap(1, 1000.0), 1000.0);
        assert_eq!(set.effective_cap(1, 1800.0), 1500.0);
    }

    #[test]
    fn scaling_relaxes_and_infinite_scaling_removes() {
        let set = ConstraintSet::unconstrained().with_bandwidth_caps(vec![100.0, 200.0]);
        let relaxed = set.clone().with_bandwidth_caps_scaled(1.5);
        assert_eq!(relaxed.bandwidth_caps(), Some(&[150.0, 300.0][..]));
        let removed = set.clone().with_bandwidth_caps_scaled(f64::INFINITY);
        assert_eq!(removed, ConstraintSet::unconstrained());
        // Scaling an uncapped set stays uncapped.
        let still = ConstraintSet::unconstrained().with_bandwidth_caps_scaled(2.0);
        assert!(!still.is_bandwidth_constrained());
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_multiplier_rejected() {
        let _ = ConstraintSet::unconstrained()
            .with_bandwidth_caps(vec![1.0])
            .with_bandwidth_caps_scaled(-0.5);
    }

    #[test]
    #[should_panic(expected = "bandwidth cap length mismatch")]
    fn validation_rejects_misaligned_caps() {
        ConstraintSet::unconstrained().with_bandwidth_caps(vec![1.0, 2.0]).validate(3);
    }

    #[test]
    fn overflow_mode_travels_with_the_set() {
        let set = ConstraintSet::unconstrained().with_overflow(OverflowMode::Reject);
        assert_eq!(set.overflow(), OverflowMode::Reject);
        assert_eq!(set.clone().with_bandwidth_caps_scaled(2.0).overflow(), OverflowMode::Reject);
    }

    #[test]
    fn hub_caps_resolve_against_any_deployment() {
        let nine = ClusterSet::akamai_like_nine();
        let caps: Vec<f64> = (0..nine.len()).map(|i| 1000.0 + i as f64).collect();
        let by_hub = HubBandwidthCaps::from_cluster_caps(&nine, &caps);
        assert_eq!(by_hub.resolve(&nine), caps);
        assert_eq!(by_hub.get(nine.hub_ids()[3]), Some(1003.0));

        // A subset deployment resolves each cluster to its own hub's cap.
        let subset = ClusterSet::new(nine.clusters().iter().skip(4).cloned().collect::<Vec<_>>());
        let resolved = by_hub.resolve(&subset);
        assert_eq!(resolved, caps[4..].to_vec());

        // An unobserved hub is unconstrained.
        let scaled = by_hub.scaled(2.0);
        assert_eq!(scaled.get(nine.hub_ids()[0]), Some(2000.0));
        assert_eq!(scaled.entries().len(), nine.len());
    }

    #[test]
    fn infinite_scaling_of_a_zero_cap_is_infinite_not_nan() {
        // A calibration against a concentrating baseline leaves unused
        // hubs with a 0.0 cap; infinite slack must relax them too (0 × ∞
        // would be NaN, which is neither infinite nor a usable ceiling).
        let nine = ClusterSet::akamai_like_nine();
        let mut caps = vec![1000.0; nine.len()];
        caps[3] = 0.0;
        let by_hub = HubBandwidthCaps::from_cluster_caps(&nine, &caps).scaled(f64::INFINITY);
        assert!(by_hub.entries().iter().all(|&(_, c)| c.is_infinite()));
        let relaxed = by_hub.apply(&nine, &ConstraintSet::unconstrained());
        assert!(!relaxed.is_bandwidth_constrained());
    }

    #[test]
    fn tier_caps_validate_and_travel_with_the_set() {
        let tiers =
            TierCaps::new(vec![0, 0, 1], vec![0, 0, 0], vec![500.0, f64::INFINITY], vec![800.0]);
        assert_eq!(tiers.num_sites(), 3);
        assert_eq!(tiers.metro_caps()[0], 500.0);
        let set = ConstraintSet::unconstrained().with_tier_caps(tiers.clone());
        set.validate(3);
        assert_eq!(set.tier_caps(), Some(&tiers));
        assert!(set.clone().without_tier_caps().tier_caps().is_none());
        // Tier caps survive bandwidth-cap scaling and hub-cap application.
        let scaled = set.clone().with_bandwidth_caps_scaled(2.0);
        assert_eq!(scaled.tier_caps(), Some(&tiers));
    }

    #[test]
    #[should_panic(expected = "tier cap site count mismatch")]
    fn tier_caps_length_checked_by_validate() {
        let tiers = TierCaps::new(vec![0], vec![0], vec![100.0], vec![100.0]);
        ConstraintSet::unconstrained().with_tier_caps(tiers).validate(9);
    }

    #[test]
    #[should_panic(expected = "metro index out of range")]
    fn tier_caps_reject_bad_parent_index() {
        let _ = TierCaps::new(vec![2], vec![0], vec![100.0], vec![100.0]);
    }

    #[test]
    fn tier_caps_from_topology() {
        use wattroute_geo::topology::Topology;
        let uncapped = Topology::synthetic(1, 50);
        assert!(TierCaps::from_topology(&uncapped).is_none());
        let capped = uncapped.with_tier_slack(0.8);
        let tiers = TierCaps::from_topology(&capped).expect("finite caps present");
        assert_eq!(tiers.num_sites(), 50);
        assert_eq!(tiers.metro_caps().len(), 29);
        assert_eq!(tiers.region_caps().len(), 6);
        assert!(tiers.metro_caps().iter().all(|c| c.is_finite()));
    }

    #[test]
    fn hub_caps_apply_keeps_the_rest_of_the_base_set() {
        let nine = ClusterSet::akamai_like_nine();
        let caps = vec![700.0; 9];
        let by_hub = HubBandwidthCaps::from_cluster_caps(&nine, &caps);
        let base = ConstraintSet::unconstrained().with_overflow(OverflowMode::Reject);
        let derived = by_hub.apply(&nine, &base);
        assert_eq!(derived.overflow(), OverflowMode::Reject);
        assert_eq!(derived.bandwidth_caps(), Some(&caps[..]));

        // All-infinite resolutions leave the set relaxed rather than
        // carrying a vector of infinities.
        let foreign = HubBandwidthCaps::new(vec![]);
        let relaxed = foreign.apply(&nine, &base);
        assert!(!relaxed.is_bandwidth_constrained());
        assert_eq!(relaxed.overflow(), OverflowMode::Reject);
    }
}
