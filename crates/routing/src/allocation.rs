//! Allocations: how much of each client state's demand each cluster serves
//! during one 5-minute step.

use serde::{Deserialize, Serialize};
use wattroute_geo::{hubs, state_to_hub_km, UsState};
use wattroute_workload::ClusterSet;

/// A per-step assignment of demand to clusters.
///
/// Entry `(cluster, state)` is the demand (hits/second) from
/// `states[state]` served by `clusters[cluster]`. Storage is one flat
/// row-major buffer (`num_states` is the row stride): a policy allocates
/// exactly once per reallocation however many clusters it routes, and the
/// row scans in [`Self::cluster_loads`] / [`Self::distance_samples`] stay
/// on contiguous memory — this is the allocation-epoch hot path of both
/// the batch engine and the hierarchical replay shards.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Allocation {
    num_clusters: usize,
    num_states: usize,
    loads: Vec<f64>,
}

impl Allocation {
    /// An empty allocation for a given number of clusters and states.
    pub fn zeros(num_clusters: usize, num_states: usize) -> Self {
        Self { num_clusters, num_states, loads: vec![0.0; num_clusters * num_states] }
    }

    /// Reset this allocation in place to all-zeros with the given shape,
    /// reusing the existing buffer when it is large enough. This is the
    /// buffer-recycling entry point behind
    /// [`RoutingPolicy::allocate_into`](crate::policy::RoutingPolicy::allocate_into):
    /// an engine hands its one cached allocation back to the policy every
    /// reallocation instead of allocating a fresh matrix.
    pub fn reset(&mut self, num_clusters: usize, num_states: usize) {
        self.num_clusters = num_clusters;
        self.num_states = num_states;
        self.loads.clear();
        self.loads.resize(num_clusters * num_states, 0.0);
    }

    /// Build from an explicit matrix (`loads[cluster][state]`).
    ///
    /// # Panics
    /// Panics if rows are ragged or any entry is negative / non-finite.
    pub fn from_matrix(loads: Vec<Vec<f64>>) -> Self {
        let width = loads.first().map(Vec::len).unwrap_or(0);
        for (c, row) in loads.iter().enumerate() {
            assert_eq!(row.len(), width, "ragged allocation row for cluster {c}");
            assert!(
                row.iter().all(|x| x.is_finite() && *x >= 0.0),
                "allocation for cluster {c} contains negative or non-finite demand"
            );
        }
        Self {
            num_clusters: loads.len(),
            num_states: width,
            loads: loads.into_iter().flatten().collect(),
        }
    }

    /// Number of clusters.
    pub fn num_clusters(&self) -> usize {
        self.num_clusters
    }

    /// Number of client states.
    pub fn num_states(&self) -> usize {
        if self.num_clusters == 0 {
            0
        } else {
            self.num_states
        }
    }

    /// Add demand from a state to a cluster.
    pub fn add(&mut self, cluster: usize, state: usize, hits_per_sec: f64) {
        assert!(hits_per_sec >= 0.0 && hits_per_sec.is_finite());
        assert!(cluster < self.num_clusters && state < self.num_states, "index out of range");
        self.loads[cluster * self.num_states + state] += hits_per_sec;
    }

    /// One cluster's per-state loads.
    pub fn row(&self, cluster: usize) -> &[f64] {
        &self.loads[cluster * self.num_states..(cluster + 1) * self.num_states]
    }

    /// The matrix as nested rows (`matrix[cluster][state]`), materialized.
    /// Convenient for tests and serialization; hot paths should use
    /// [`Self::row`] or the aggregate accessors instead.
    pub fn matrix(&self) -> Vec<Vec<f64>> {
        self.loads.chunks(self.num_states.max(1)).map(<[f64]>::to_vec).collect()
    }

    /// Total load per cluster in hits/second.
    pub fn cluster_loads(&self) -> Vec<f64> {
        let mut out = Vec::new();
        self.cluster_loads_into(&mut out);
        out
    }

    /// [`Self::cluster_loads`] into a caller-owned buffer (cleared first),
    /// so per-epoch accounting loops can reuse one allocation.
    pub fn cluster_loads_into(&self, out: &mut Vec<f64>) {
        out.clear();
        out.reserve(self.num_clusters);
        if self.num_states == 0 {
            out.extend((0..self.num_clusters).map(|_| 0.0));
            return;
        }
        out.extend(self.loads.chunks_exact(self.num_states).map(|row| row.iter().sum::<f64>()));
    }

    /// Total load per state in hits/second (how much of each state's demand
    /// was served).
    pub fn state_loads(&self) -> Vec<f64> {
        let mut out = vec![0.0; self.num_states()];
        if self.num_states == 0 {
            return out;
        }
        for row in self.loads.chunks_exact(self.num_states) {
            for (s, v) in row.iter().enumerate() {
                out[s] += v;
            }
        }
        out
    }

    /// Total demand served, hits/second.
    pub fn total_load(&self) -> f64 {
        self.loads.iter().sum()
    }

    /// Demand-weighted client–server distance statistics for this
    /// allocation: `(mean_km, weighted samples)` where each sample is the
    /// population-weighted distance from a client state to the hub of the
    /// cluster serving it, weighted by the assigned demand. The samples are
    /// returned so callers can accumulate 99th percentiles across steps
    /// (Figure 17).
    pub fn distance_samples(&self, clusters: &ClusterSet, states: &[UsState]) -> Vec<(f64, f64)> {
        let mut samples = Vec::new();
        self.distance_samples_into(clusters, states, &mut samples);
        samples
    }

    /// [`Self::distance_samples`] into a caller-owned buffer (cleared
    /// first), so per-epoch accounting loops can reuse one allocation.
    pub fn distance_samples_into(
        &self,
        clusters: &ClusterSet,
        states: &[UsState],
        samples: &mut Vec<(f64, f64)>,
    ) {
        assert_eq!(self.num_clusters(), clusters.len(), "cluster count mismatch");
        assert_eq!(self.num_states(), states.len(), "state count mismatch");
        samples.clear();
        if self.num_states == 0 {
            return;
        }
        for (c, row) in self.loads.chunks_exact(self.num_states).enumerate() {
            let hub = hubs::hub(clusters.get(c).expect("validated").hub);
            for (s, &load) in row.iter().enumerate() {
                if load > 0.0 {
                    samples.push((state_to_hub_km(states[s], hub), load));
                }
            }
        }
    }

    /// Demand-weighted mean client–server distance in km, or `None` if the
    /// allocation is empty.
    pub fn mean_distance_km(&self, clusters: &ClusterSet, states: &[UsState]) -> Option<f64> {
        let samples = self.distance_samples(clusters, states);
        let total: f64 = samples.iter().map(|(_, w)| w).sum();
        if total <= 0.0 {
            return None;
        }
        Some(samples.iter().map(|(d, w)| d * w).sum::<f64>() / total)
    }

    /// Check that the allocation serves exactly the given per-state demand
    /// (within a tolerance). Used by tests and debug assertions.
    pub fn serves_demand(&self, demand: &[f64], tolerance: f64) -> bool {
        if demand.len() != self.num_states() {
            return false;
        }
        self.state_loads()
            .iter()
            .zip(demand)
            .all(|(served, want)| (served - want).abs() <= tolerance * want.max(1.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_totals() {
        let mut a = Allocation::zeros(2, 3);
        a.add(0, 0, 100.0);
        a.add(0, 2, 50.0);
        a.add(1, 1, 200.0);
        assert_eq!(a.num_clusters(), 2);
        assert_eq!(a.num_states(), 3);
        assert_eq!(a.cluster_loads(), vec![150.0, 200.0]);
        assert_eq!(a.state_loads(), vec![100.0, 200.0, 50.0]);
        assert_eq!(a.total_load(), 350.0);
    }

    #[test]
    fn reset_zeroes_in_place_and_reshapes() {
        let mut a = Allocation::zeros(2, 3);
        a.add(0, 1, 42.0);
        a.reset(2, 3);
        assert_eq!(a, Allocation::zeros(2, 3), "same shape resets to zeros");
        a.add(1, 2, 7.0);
        a.reset(3, 2);
        assert_eq!(a, Allocation::zeros(3, 2), "reshape resets to the new zeros");
    }

    #[test]
    fn serves_demand_check() {
        let mut a = Allocation::zeros(2, 2);
        a.add(0, 0, 100.0);
        a.add(1, 1, 200.0);
        assert!(a.serves_demand(&[100.0, 200.0], 1e-9));
        assert!(!a.serves_demand(&[100.0, 150.0], 1e-9));
        assert!(!a.serves_demand(&[100.0], 1e-9));
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_matrix_rejected() {
        let _ = Allocation::from_matrix(vec![vec![1.0, 2.0], vec![3.0]]);
    }

    #[test]
    #[should_panic(expected = "negative or non-finite")]
    fn negative_entry_rejected() {
        let _ = Allocation::from_matrix(vec![vec![1.0, -2.0]]);
    }

    #[test]
    fn distance_accounting() {
        let clusters = ClusterSet::akamai_like_nine();
        let states = vec![UsState::MA, UsState::CA];
        // Serve MA from Boston (index 2) and CA from Palo Alto (index 0).
        let mut local = Allocation::zeros(clusters.len(), states.len());
        local.add(2, 0, 1000.0);
        local.add(0, 1, 1000.0);
        let mean_local = local.mean_distance_km(&clusters, &states).unwrap();

        // Serve both from New York (index 3): much longer average distance.
        let mut remote = Allocation::zeros(clusters.len(), states.len());
        remote.add(3, 0, 1000.0);
        remote.add(3, 1, 1000.0);
        let mean_remote = remote.mean_distance_km(&clusters, &states).unwrap();

        assert!(mean_local < 300.0, "local mean {mean_local}");
        assert!(mean_remote > 1500.0, "remote mean {mean_remote}");
        assert!(local.distance_samples(&clusters, &states).len() == 2);
    }

    #[test]
    fn empty_allocation_has_no_mean_distance() {
        let clusters = ClusterSet::akamai_like_nine();
        let states = vec![UsState::MA];
        let a = Allocation::zeros(clusters.len(), 1);
        assert!(a.mean_distance_km(&clusters, &states).is_none());
    }
}
