//! The routing-policy interface and the shared assignment engine.
//!
//! Every policy sees the same per-step picture (the [`RoutingContext`]):
//! which clusters exist, how much demand each client state is offering,
//! what each cluster's (possibly delayed) electricity price is, and what
//! capacity / 95-5 bandwidth ceilings apply. A policy produces an
//! [`Allocation`]. The heavy lifting — filling clusters in a preference
//! order while respecting ceilings — is shared by all policies through
//! [`assign_by_preference`].

use crate::allocation::Allocation;
use crate::constraints::ConstraintSet;
use crate::price_conscious::CompiledPreferences;
use std::borrow::Cow;
use std::sync::Arc;
use wattroute_geo::UsState;
use wattroute_market::time::SimHour;
use wattroute_workload::ClusterSet;

/// Everything a policy may consult when allocating one 5-minute step.
#[derive(Debug, Clone)]
pub struct RoutingContext<'a> {
    /// The deployment being routed over.
    pub clusters: &'a ClusterSet,
    /// Client states, aligned with `demand`.
    pub states: &'a [UsState],
    /// Demand per state in hits/second.
    pub demand: &'a [f64],
    /// Electricity price per cluster in $/MWh (already delayed by the
    /// simulator's reaction delay).
    pub prices: &'a [f64],
    /// The hour this step belongs to.
    pub hour: SimHour,
    /// The constraints in force: capacity ceilings, 95/5 bandwidth caps,
    /// overflow mode. Usually a *borrow* of the run's one
    /// [`ConstraintSet`] — the simulator builds a context per
    /// reallocation, so an owned cap vector here would be a per-step
    /// allocation on the hot path (it used to be).
    pub constraints: Cow<'a, ConstraintSet>,
}

impl<'a> RoutingContext<'a> {
    /// Build an unconstrained context (nominal capacities, no bandwidth
    /// caps). Allocates nothing.
    pub fn new(
        clusters: &'a ClusterSet,
        states: &'a [UsState],
        demand: &'a [f64],
        prices: &'a [f64],
        hour: SimHour,
    ) -> Self {
        assert_eq!(states.len(), demand.len(), "state/demand length mismatch");
        assert_eq!(clusters.len(), prices.len(), "cluster/price length mismatch");
        Self {
            clusters,
            states,
            demand,
            prices,
            hour,
            constraints: Cow::Owned(ConstraintSet::unconstrained()),
        }
    }

    /// Borrow a caller-owned constraint set (the simulator's per-run set).
    /// No vectors are cloned, however many contexts are built from it.
    pub fn with_constraints(mut self, constraints: &'a ConstraintSet) -> Self {
        constraints.validate(self.clusters.len());
        self.constraints = Cow::Borrowed(constraints);
        self
    }

    /// Attach 95/5 bandwidth ceilings (hits/second per cluster) to an
    /// owned constraint set — the convenient form for tests and one-off
    /// contexts; long-running callers should [`Self::with_constraints`] a
    /// borrowed set instead.
    pub fn with_bandwidth_caps(mut self, caps: Vec<f64>) -> Self {
        assert_eq!(caps.len(), self.clusters.len(), "bandwidth cap length mismatch");
        self.constraints = Cow::Owned(self.constraints.into_owned().with_bandwidth_caps(caps));
        self
    }

    /// The effective ceiling for a cluster: the minimum of its capacity
    /// (nominal, or the constraint set's explicit ceiling) and, when 95/5
    /// caps are in force, its bandwidth cap.
    pub fn effective_cap(&self, cluster: usize) -> f64 {
        let nominal = self.clusters.get(cluster).expect("index in range").capacity_hits_per_sec();
        self.constraints.effective_cap(cluster, nominal)
    }

    /// Total demand offered this step.
    pub fn total_demand(&self) -> f64 {
        self.demand.iter().sum()
    }
}

/// A request-routing policy.
pub trait RoutingPolicy {
    /// Short human-readable name for reports.
    fn name(&self) -> &str;

    /// Allocate one step's demand to clusters.
    fn allocate(&mut self, ctx: &RoutingContext<'_>) -> Allocation;

    /// Allocate one step's demand into a caller-owned [`Allocation`].
    ///
    /// This is the buffer-recycling twin of [`Self::allocate`]: a
    /// long-running engine hands the same allocation back every
    /// reallocation, so steady-state routing performs no heap allocation.
    /// `out` may hold stale loads from a previous call (even with a
    /// different shape) — implementations must fully overwrite it, which
    /// [`Allocation::reset`] does in place.
    ///
    /// The default implementation delegates to [`Self::allocate`], so the
    /// two paths are *definitionally* result-identical for policies that
    /// do not override it; policies that do must keep them bit-identical
    /// (pinned for the built-in policies by
    /// `crates/routing/tests/proptest_policies.rs` and the engine-level
    /// epoch-equivalence property test).
    fn allocate_into(&mut self, out: &mut Allocation, ctx: &RoutingContext<'_>) {
        *out = self.allocate(ctx);
    }

    /// Offer the policy shared, pre-compiled ranked-distance geometry for
    /// the deployment and state list it is about to route (see
    /// [`CompiledPreferences`]). Policies that do not use the geometry
    /// ignore the offer — the default implementation is a no-op — so
    /// callers (the scenario-sweep runner) can make it unconditionally.
    /// Accepting the offer must never change results, only avoid
    /// recompiles: implementations fall back to a self-compile when the
    /// attached geometry does not match a context they are handed.
    fn attach_preferences(&mut self, prefs: &Arc<CompiledPreferences>) {
        let _ = prefs;
    }
}

/// Assign demand to clusters by per-state preference lists.
///
/// For each state (processed in descending demand, so large states get
/// first pick of scarce capacity), the `preferences` callback supplies an
/// ordered list of candidate cluster indices. Demand is poured into the
/// candidates in order, up to each cluster's effective ceiling. Demand that
/// no candidate can absorb spills, in a final pass, onto the cluster with
/// the most remaining ceiling (and, if every ceiling is exhausted, onto the
/// first candidate regardless — requests must be served somewhere, which
/// mirrors the paper's treatment of capacity as a soft planning constraint).
///
/// When the context's constraints carry [`TierCaps`](crate::constraints::TierCaps),
/// the pour additionally respects each candidate's metro and region
/// aggregate ceilings — the effective headroom of a site is
/// `site ∧ metro ∧ region` — and the spill target is the cluster with the
/// most *tier-aware* headroom. Flat deployments (no tier caps) take the
/// original per-cluster path, byte-identical to before.
pub fn assign_by_preference<F>(ctx: &RoutingContext<'_>, mut preferences: F) -> Allocation
where
    F: FnMut(usize, UsState) -> Vec<usize>,
{
    let mut workspace = AssignWorkspace::new();
    let mut allocation = Allocation::zeros(ctx.clusters.len(), ctx.states.len());
    assign_by_preference_into(ctx, &mut workspace, &mut allocation, |state_idx, state, buf| {
        let candidates = preferences(state_idx, state);
        buf.clear();
        buf.extend_from_slice(&candidates);
    });
    allocation
}

/// Reusable scratch for [`assign_by_preference_into`]: the per-call vectors
/// the pour engine needs (remaining tier headroom, the demand-sorted state
/// order, and the candidate list the preference callback writes into). A
/// policy owns one workspace and hands it back every reallocation, so the
/// steady-state assignment performs no heap allocation.
#[derive(Debug, Clone, Default)]
pub struct AssignWorkspace {
    remaining_cap: Vec<f64>,
    order: Vec<usize>,
    candidates: Vec<usize>,
    metro_rem: Vec<f64>,
    region_rem: Vec<f64>,
}

impl AssignWorkspace {
    /// An empty workspace; buffers grow on first use and are reused after.
    pub fn new() -> Self {
        Self::default()
    }
}

/// The buffer-recycling twin of [`assign_by_preference`]: identical pour
/// logic, but the allocation, the engine's scratch vectors, and the
/// per-state candidate list all live in caller-owned storage. The
/// `preferences` callback writes each state's ordered candidate cluster
/// indices into the buffer it is handed (cleared by the caller first).
pub fn assign_by_preference_into<F>(
    ctx: &RoutingContext<'_>,
    workspace: &mut AssignWorkspace,
    out: &mut Allocation,
    mut preferences: F,
) where
    F: FnMut(usize, UsState, &mut Vec<usize>),
{
    if ctx.constraints.tier_caps().is_some() {
        return assign_by_preference_tiered_into(ctx, workspace, out, preferences);
    }
    let n_clusters = ctx.clusters.len();
    let n_states = ctx.states.len();
    out.reset(n_clusters, n_states);
    let AssignWorkspace { remaining_cap, order, candidates, .. } = workspace;
    remaining_cap.clear();
    remaining_cap.extend((0..n_clusters).map(|c| ctx.effective_cap(c)));

    // Process states in descending demand.
    order.clear();
    order.extend(0..n_states);
    order.sort_by(|&a, &b| ctx.demand[b].partial_cmp(&ctx.demand[a]).expect("finite demand"));

    for &state_idx in order.iter() {
        let mut unserved = ctx.demand[state_idx];
        if unserved <= 0.0 {
            continue;
        }
        candidates.clear();
        preferences(state_idx, ctx.states[state_idx], candidates);
        debug_assert!(
            candidates.iter().all(|&c| c < n_clusters),
            "preference list contains an out-of-range cluster index"
        );

        for &cluster in candidates.iter() {
            if unserved <= 0.0 {
                break;
            }
            let take = unserved.min(remaining_cap[cluster].max(0.0));
            if take > 0.0 {
                out.add(cluster, state_idx, take);
                remaining_cap[cluster] -= take;
                unserved -= take;
            }
        }

        if unserved > 0.0 {
            // Spill to the cluster with the most remaining headroom, or the
            // first candidate if everything is saturated.
            let spill_target = (0..n_clusters)
                .max_by(|&a, &b| {
                    remaining_cap[a].partial_cmp(&remaining_cap[b]).expect("finite caps")
                })
                .filter(|&c| remaining_cap[c] > 0.0)
                .or_else(|| candidates.first().copied())
                .unwrap_or(0);
            out.add(spill_target, state_idx, unserved);
            remaining_cap[spill_target] -= unserved;
        }
    }

    debug_assert!(out.serves_demand(ctx.demand, 1e-6));
}

/// The tier-aware variant of [`assign_by_preference`]: identical pour
/// order, but each take is bounded by the candidate's site, metro, and
/// region headroom simultaneously, all three tiers are drawn down in SoA
/// vectors as demand lands, and spill targets maximise the min-of-three
/// headroom.
fn assign_by_preference_tiered_into<F>(
    ctx: &RoutingContext<'_>,
    workspace: &mut AssignWorkspace,
    out: &mut Allocation,
    mut preferences: F,
) where
    F: FnMut(usize, UsState, &mut Vec<usize>),
{
    let tiers = ctx.constraints.tier_caps().expect("caller checked tier caps");
    let n_clusters = ctx.clusters.len();
    let n_states = ctx.states.len();
    out.reset(n_clusters, n_states);
    let AssignWorkspace { remaining_cap, order, candidates, metro_rem, region_rem } = workspace;
    remaining_cap.clear();
    remaining_cap.extend((0..n_clusters).map(|c| ctx.effective_cap(c)));
    metro_rem.clear();
    metro_rem.extend_from_slice(tiers.metro_caps());
    region_rem.clear();
    region_rem.extend_from_slice(tiers.region_caps());
    let site_metro = tiers.site_metros();
    let site_region = tiers.site_regions();

    // Tier-aware headroom of one site: the least of what the site, its
    // metro, and its region can still absorb.
    let headroom = |cap: &[f64], metro: &[f64], region: &[f64], c: usize| -> f64 {
        cap[c].min(metro[site_metro[c]]).min(region[site_region[c]])
    };

    order.clear();
    order.extend(0..n_states);
    order.sort_by(|&a, &b| ctx.demand[b].partial_cmp(&ctx.demand[a]).expect("finite demand"));

    for &state_idx in order.iter() {
        let mut unserved = ctx.demand[state_idx];
        if unserved <= 0.0 {
            continue;
        }
        candidates.clear();
        preferences(state_idx, ctx.states[state_idx], candidates);
        debug_assert!(
            candidates.iter().all(|&c| c < n_clusters),
            "preference list contains an out-of-range cluster index"
        );

        for &cluster in candidates.iter() {
            if unserved <= 0.0 {
                break;
            }
            let take =
                unserved.min(headroom(remaining_cap, metro_rem, region_rem, cluster).max(0.0));
            if take > 0.0 {
                out.add(cluster, state_idx, take);
                remaining_cap[cluster] -= take;
                metro_rem[site_metro[cluster]] -= take;
                region_rem[site_region[cluster]] -= take;
                unserved -= take;
            }
        }

        if unserved > 0.0 {
            // Spill onto the site with the most tier-aware headroom; when
            // every tier is exhausted, onto the first candidate regardless
            // (demand must be served somewhere).
            let spill_target = (0..n_clusters)
                .max_by(|&a, &b| {
                    headroom(remaining_cap, metro_rem, region_rem, a)
                        .partial_cmp(&headroom(remaining_cap, metro_rem, region_rem, b))
                        .expect("finite caps")
                })
                .filter(|&c| headroom(remaining_cap, metro_rem, region_rem, c) > 0.0)
                .or_else(|| candidates.first().copied())
                .unwrap_or(0);
            out.add(spill_target, state_idx, unserved);
            remaining_cap[spill_target] -= unserved;
            metro_rem[site_metro[spill_target]] -= unserved;
            region_rem[site_region[spill_target]] -= unserved;
        }
    }

    debug_assert!(out.serves_demand(ctx.demand, 1e-6));
}

#[cfg(test)]
mod tests {
    use super::*;
    use wattroute_workload::ClusterSet;

    fn two_state_ctx<'a>(
        clusters: &'a ClusterSet,
        states: &'a [UsState],
        demand: &'a [f64],
        prices: &'a [f64],
    ) -> RoutingContext<'a> {
        RoutingContext::new(clusters, states, demand, prices, SimHour(0))
    }

    #[test]
    fn preference_order_is_respected() {
        let clusters = ClusterSet::akamai_like_nine();
        let states = [UsState::MA, UsState::CA];
        let demand = [1000.0, 2000.0];
        let prices = vec![50.0; 9];
        let ctx = two_state_ctx(&clusters, &states, &demand, &prices);
        // Everyone prefers cluster 4 (Chicago).
        let allocation = assign_by_preference(&ctx, |_, _| vec![4]);
        assert_eq!(allocation.cluster_loads()[4], 3000.0);
        assert!(allocation.serves_demand(&demand, 1e-9));
    }

    #[test]
    fn capacity_overflow_goes_to_next_preference() {
        let clusters = ClusterSet::akamai_like_nine().scaled(0.001); // tiny clusters
        let states = [UsState::NY];
        let cap0 = clusters.get(0).unwrap().capacity_hits_per_sec();
        let demand = [cap0 * 2.5];
        let prices = vec![50.0; 9];
        let ctx = two_state_ctx(&clusters, &states, &demand, &prices);
        let allocation = assign_by_preference(&ctx, |_, _| vec![0, 1, 2]);
        let loads = allocation.cluster_loads();
        assert!((loads[0] - cap0).abs() < 1e-6, "first choice filled to capacity");
        assert!(loads[1] > 0.0, "overflow to second choice");
        assert!(allocation.serves_demand(&demand, 1e-6));
    }

    #[test]
    fn demand_is_always_served_even_when_all_caps_exhausted() {
        let clusters = ClusterSet::akamai_like_nine().scaled(1e-6);
        let states = [UsState::CA, UsState::TX];
        let demand = [1.0e6, 0.5e6];
        let prices = vec![50.0; 9];
        let ctx = two_state_ctx(&clusters, &states, &demand, &prices);
        let allocation = assign_by_preference(&ctx, |_, _| vec![0]);
        assert!(allocation.serves_demand(&demand, 1e-6));
    }

    #[test]
    fn bandwidth_caps_tighten_effective_ceiling() {
        let clusters = ClusterSet::akamai_like_nine();
        let states = [UsState::MA];
        let demand = [10_000.0];
        let prices = vec![50.0; 9];
        let bw: Vec<f64> = (0..9).map(|i| if i == 2 { 4_000.0 } else { 1.0e9 }).collect();
        let ctx = two_state_ctx(&clusters, &states, &demand, &prices).with_bandwidth_caps(bw);
        assert_eq!(ctx.effective_cap(2), 4_000.0);
        let allocation = assign_by_preference(&ctx, |_, _| vec![2, 3]);
        let loads = allocation.cluster_loads();
        assert!((loads[2] - 4_000.0).abs() < 1e-6);
        assert!((loads[3] - 6_000.0).abs() < 1e-6);
    }

    #[test]
    fn zero_demand_states_are_skipped() {
        let clusters = ClusterSet::akamai_like_nine();
        let states = [UsState::MA, UsState::CA];
        let demand = [0.0, 100.0];
        let prices = vec![50.0; 9];
        let ctx = two_state_ctx(&clusters, &states, &demand, &prices);
        let allocation = assign_by_preference(&ctx, |_, _| vec![0]);
        assert_eq!(allocation.total_load(), 100.0);
    }

    #[test]
    fn metro_cap_binds_across_sites_sharing_a_metro() {
        use crate::constraints::{ConstraintSet, TierCaps};
        // Nine clusters; put the first two in one capped metro, the rest in
        // an uncapped second metro. One region, uncapped.
        let clusters = ClusterSet::akamai_like_nine();
        let site_metro: Vec<usize> = (0..9).map(|c| usize::from(c >= 2)).collect();
        let tiers = TierCaps::new(
            site_metro,
            vec![0; 9],
            vec![5_000.0, f64::INFINITY],
            vec![f64::INFINITY],
        );
        let constraints = ConstraintSet::unconstrained().with_tier_caps(tiers);
        let states = [UsState::MA];
        let demand = [20_000.0];
        let prices = vec![50.0; 9];
        let ctx = RoutingContext::new(&clusters, &states, &demand, &prices, SimHour(0))
            .with_constraints(&constraints);
        // Preference order 0, 1, 2: both metro-0 sites together may absorb
        // only 5 000 despite ample per-site capacity.
        let allocation = assign_by_preference(&ctx, |_, _| vec![0, 1, 2]);
        let loads = allocation.cluster_loads();
        assert!((loads[0] - 5_000.0).abs() < 1e-9, "metro cap bounds the first site");
        assert_eq!(loads[1], 0.0, "metro headroom already spent");
        assert!((loads[2] - 15_000.0).abs() < 1e-9, "rest flows to the uncapped metro");
        assert!(allocation.serves_demand(&demand, 1e-6));
    }

    #[test]
    fn region_cap_binds_and_exhausted_tiers_still_serve() {
        use crate::constraints::{ConstraintSet, TierCaps};
        let clusters = ClusterSet::akamai_like_nine();
        // Every site its own metro; one region capped below total demand.
        let tiers =
            TierCaps::new((0..9).collect(), vec![0; 9], vec![f64::INFINITY; 9], vec![1_000.0]);
        let constraints = ConstraintSet::unconstrained().with_tier_caps(tiers);
        let states = [UsState::NY];
        let demand = [4_000.0];
        let prices = vec![50.0; 9];
        let ctx = RoutingContext::new(&clusters, &states, &demand, &prices, SimHour(0))
            .with_constraints(&constraints);
        let allocation = assign_by_preference(&ctx, |_, _| vec![3]);
        let loads = allocation.cluster_loads();
        // 1 000 fits under the region cap via the preferred site; the
        // remaining 3 000 has nowhere with headroom and spills onto the
        // first candidate — demand is always served.
        assert!((loads[3] - 4_000.0).abs() < 1e-9);
        assert!(allocation.serves_demand(&demand, 1e-6));
    }

    #[test]
    fn uncapped_tiers_match_flat_assignment() {
        use crate::constraints::{ConstraintSet, TierCaps};
        let clusters = ClusterSet::akamai_like_nine();
        let states = [UsState::MA, UsState::CA, UsState::TX];
        let demand = [9_000.0, 2.0e6, 3.0e5];
        let prices = vec![50.0; 9];
        let flat_ctx = RoutingContext::new(&clusters, &states, &demand, &prices, SimHour(0));
        let flat = assign_by_preference(&flat_ctx, |i, _| vec![i % 9, (i + 3) % 9]);
        let tiers = TierCaps::new(
            (0..9).collect(),
            vec![0; 9],
            vec![f64::INFINITY; 9],
            vec![f64::INFINITY],
        );
        let constraints = ConstraintSet::unconstrained().with_tier_caps(tiers);
        let tiered_ctx = RoutingContext::new(&clusters, &states, &demand, &prices, SimHour(0))
            .with_constraints(&constraints);
        let tiered = assign_by_preference(&tiered_ctx, |i, _| vec![i % 9, (i + 3) % 9]);
        assert_eq!(flat.matrix(), tiered.matrix(), "infinite tier caps change nothing");
    }

    #[test]
    fn into_variant_with_reused_buffers_matches_allocating_path() {
        use crate::constraints::{ConstraintSet, TierCaps};
        let clusters = ClusterSet::akamai_like_nine().scaled(0.01);
        let states = [UsState::MA, UsState::CA, UsState::TX];
        let prices = vec![50.0; 9];
        let tiers = TierCaps::new(
            (0..9).map(|c| c / 3).collect(),
            vec![0; 9],
            vec![40_000.0, f64::INFINITY, 25_000.0],
            vec![f64::INFINITY],
        );
        let constraints = ConstraintSet::unconstrained().with_tier_caps(tiers);

        // One workspace and one output allocation survive every call —
        // across demands AND across the flat/tiered engine switch — and
        // must keep matching the allocating path exactly.
        let mut ws = AssignWorkspace::new();
        let mut out = Allocation::zeros(1, 1); // wrong shape on purpose
        for demand in [[9_000.0, 2.0e6, 3.0e5], [0.0, 1.0e5, 777.0]] {
            let flat_ctx = RoutingContext::new(&clusters, &states, &demand, &prices, SimHour(0));
            let expected = assign_by_preference(&flat_ctx, |i, _| vec![i % 9, (i + 3) % 9]);
            assign_by_preference_into(&flat_ctx, &mut ws, &mut out, |i, _, buf| {
                buf.extend([i % 9, (i + 3) % 9])
            });
            assert_eq!(out, expected, "flat pour must be identical");

            let tiered_ctx = RoutingContext::new(&clusters, &states, &demand, &prices, SimHour(0))
                .with_constraints(&constraints);
            let expected = assign_by_preference(&tiered_ctx, |i, _| vec![i % 9, (i + 3) % 9]);
            assign_by_preference_into(&tiered_ctx, &mut ws, &mut out, |i, _, buf| {
                buf.extend([i % 9, (i + 3) % 9])
            });
            assert_eq!(out, expected, "tiered pour must be identical");
        }
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_rejected() {
        let clusters = ClusterSet::akamai_like_nine();
        let states = [UsState::MA];
        let demand = [1.0, 2.0];
        let prices = vec![50.0; 9];
        let _ = RoutingContext::new(&clusters, &states, &demand, &prices, SimHour(0));
    }
}
