//! Future-work policies sketched in §8 of the paper.
//!
//! * [`CarbonAwarePolicy`] — "a socially responsible service operator may
//!   instead choose to use an environmental impact cost function": identical
//!   machinery to the price optimizer, but the per-cluster cost vector is a
//!   time-varying carbon intensity (tCO₂/MWh) instead of a dollar price.
//! * [`JointCostPolicy`] — "existing systems already have frameworks in
//!   place that engineer traffic to optimize for bandwidth costs,
//!   performance and reliability. Dynamic energy costs represent another
//!   input that should be integrated into such frameworks": a weighted
//!   scalarisation of electricity price and client-server distance, the
//!   simplest form of that joint optimisation.

use crate::allocation::Allocation;
use crate::policy::{
    assign_by_preference, assign_by_preference_into, AssignWorkspace, RoutingContext, RoutingPolicy,
};
use crate::price_conscious::{ensure_compiled, CompiledPreferences};
use std::sync::Arc;
use wattroute_geo::distance::RankedHub;
use wattroute_geo::{distance, hubs, UsState};

/// Route to the cluster whose grid currently has the lowest carbon
/// intensity, subject to a distance threshold — the §8 "Environmental Cost"
/// idea with the same structure as the price optimizer.
#[derive(Debug, Clone)]
pub struct CarbonAwarePolicy {
    /// Maximum client-to-cluster distance in km.
    pub distance_threshold_km: f64,
    /// Carbon intensity per cluster in tCO₂/MWh for the current hour,
    /// aligned with cluster order. Updated by the caller each step.
    pub carbon_intensity: Vec<f64>,
    /// Intensity differences below this threshold (tCO₂/MWh) are ignored and
    /// the nearer cluster wins.
    pub intensity_threshold: f64,
}

impl CarbonAwarePolicy {
    /// Create a carbon-aware policy.
    pub fn new(distance_threshold_km: f64, carbon_intensity: Vec<f64>) -> Self {
        Self { distance_threshold_km, carbon_intensity, intensity_threshold: 0.02 }
    }

    /// Update the per-cluster carbon intensities for the current hour.
    pub fn set_intensities(&mut self, carbon_intensity: Vec<f64>) {
        self.carbon_intensity = carbon_intensity;
    }
}

impl RoutingPolicy for CarbonAwarePolicy {
    fn name(&self) -> &str {
        "carbon-aware"
    }

    fn allocate(&mut self, ctx: &RoutingContext<'_>) -> Allocation {
        assert_eq!(
            self.carbon_intensity.len(),
            ctx.clusters.len(),
            "carbon intensities must align with the deployment"
        );
        let intensities = self.carbon_intensity.clone();
        let threshold_km = self.distance_threshold_km;
        let intensity_threshold = self.intensity_threshold;
        assign_by_preference(ctx, |_, state| {
            preference_by_cost(ctx, state, &intensities, threshold_km, intensity_threshold)
        })
    }
}

/// Reused scoring buffers for [`JointCostPolicy`]: per-state distances
/// scattered back to cluster-index order, and the scored list the per-state
/// ranking sorts in place.
#[derive(Debug, Clone, Default)]
struct JointScratch {
    dist_by_cluster: Vec<f64>,
    scored: Vec<RankedHub>,
}

/// Minimise `price + distance_weight · distance_km`, i.e. fold the network
/// proximity objective and the electricity price into one scalar cost.
#[derive(Debug, Clone, Default)]
pub struct JointCostPolicy {
    /// Dollars-per-MWh-equivalent penalty applied per km of client-server
    /// distance. `0.0` reduces to pure price optimisation; large values
    /// reduce to nearest-cluster routing.
    pub distance_weight: f64,
    /// Compiled ranked-distance geometry (shared by a sweep or lazily
    /// self-compiled) — the source of per-state distances, replacing the
    /// per-state `hub_refs` rebuild + haversine walk of the original
    /// implementation.
    compiled: Option<Arc<CompiledPreferences>>,
    own_geometry_builds: usize,
    workspace: AssignWorkspace,
    scratch: JointScratch,
}

impl JointCostPolicy {
    /// Create a joint policy with the given distance weight.
    pub fn new(distance_weight: f64) -> Self {
        assert!(distance_weight >= 0.0, "distance weight must be non-negative");
        Self { distance_weight, ..Default::default() }
    }

    /// How many times this instance compiled its own geometry (a run fed
    /// shared preferences that match its contexts reports `0`).
    pub fn own_geometry_builds(&self) -> usize {
        self.own_geometry_builds
    }
}

impl RoutingPolicy for JointCostPolicy {
    fn name(&self) -> &str {
        "joint-price-distance"
    }

    fn allocate(&mut self, ctx: &RoutingContext<'_>) -> Allocation {
        let mut out = Allocation::zeros(ctx.clusters.len(), ctx.states.len());
        self.allocate_into(&mut out, ctx);
        out
    }

    fn allocate_into(&mut self, out: &mut Allocation, ctx: &RoutingContext<'_>) {
        ensure_compiled(&mut self.compiled, &mut self.own_geometry_builds, ctx);
        let Self { distance_weight, compiled, workspace, scratch, .. } = self;
        let compiled = compiled.as_ref().expect("compiled above");
        let w = *distance_weight;
        let n_clusters = ctx.clusters.len();
        assign_by_preference_into(ctx, workspace, out, |state_idx, _, buf| {
            // Scatter the compiled (distance-sorted) ranking back to
            // cluster-index order before scoring, so equal scores keep the
            // cluster-order tie-break the allocating path's stable sort had.
            let JointScratch { dist_by_cluster, scored } = scratch;
            dist_by_cluster.clear();
            dist_by_cluster.resize(n_clusters, 0.0);
            for &(i, d) in compiled.ranked(state_idx) {
                dist_by_cluster[i] = d;
            }
            scored.clear();
            scored.extend(
                dist_by_cluster.iter().enumerate().map(|(i, &d)| (i, ctx.prices[i] + w * d)),
            );
            scored.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite scores"));
            buf.extend(scored.iter().map(|(i, _)| *i));
        });
    }

    fn attach_preferences(&mut self, prefs: &Arc<CompiledPreferences>) {
        self.compiled = Some(prefs.clone());
    }
}

/// Shared preference builder: candidates within the distance threshold
/// (nearest + 50 km fallback), ordered by an arbitrary per-cluster cost with
/// near-ties broken by distance, followed by the remaining clusters by
/// distance for overflow.
fn preference_by_cost(
    ctx: &RoutingContext<'_>,
    state: UsState,
    costs: &[f64],
    distance_threshold_km: f64,
    cost_threshold: f64,
) -> Vec<usize> {
    let hub_refs: Vec<&wattroute_geo::Hub> =
        ctx.clusters.hub_ids().iter().map(|id| hubs::hub(*id)).collect();
    let candidates = distance::hubs_within_threshold(state, &hub_refs, distance_threshold_km);
    // Same two-stage ordering as the price-conscious policy: candidates
    // whose cost is within `cost_threshold` of the best candidate are ranked
    // by distance, the remainder by cost then distance. This keeps the
    // ordering a genuine total order.
    let best = candidates.iter().map(|(i, _)| costs[*i]).fold(f64::INFINITY, f64::min);
    let (mut cheap_set, mut rest): (Vec<RankedHub>, Vec<RankedHub>) =
        candidates.iter().copied().partition(|(i, _)| costs[*i] <= best + cost_threshold);
    cheap_set.sort_by(|(_, da), (_, db)| da.partial_cmp(db).expect("finite distances"));
    rest.sort_by(|(ia, da), (ib, db)| {
        costs[*ia]
            .partial_cmp(&costs[*ib])
            .expect("finite costs")
            .then(da.partial_cmp(db).expect("finite distances"))
    });
    let mut order: Vec<usize> = cheap_set.iter().chain(rest.iter()).map(|(i, _)| *i).collect();
    let mut rest: Vec<RankedHub> = (0..ctx.clusters.len())
        .filter(|i| !order.contains(i))
        .map(|i| (i, distance::state_to_hub_km(state, hub_refs[i])))
        .collect();
    rest.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite distances"));
    order.extend(rest.into_iter().map(|(i, _)| i));
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use wattroute_geo::{HubId, UsState};
    use wattroute_market::time::SimHour;
    use wattroute_workload::ClusterSet;

    fn ctx<'a>(
        clusters: &'a ClusterSet,
        states: &'a [UsState],
        demand: &'a [f64],
        prices: &'a [f64],
    ) -> RoutingContext<'a> {
        RoutingContext::new(clusters, states, demand, prices, SimHour(0))
    }

    #[test]
    fn carbon_aware_prefers_clean_grid_within_threshold() {
        let clusters = ClusterSet::akamai_like_nine();
        let states = [UsState::MA];
        let demand = [1000.0];
        let prices = vec![50.0; 9];
        let boston = clusters.index_of_hub(HubId::BostonMa).unwrap();
        let nyc = clusters.index_of_hub(HubId::NewYorkNy).unwrap();
        let mut intensity = vec![0.6; 9];
        intensity[boston] = 0.55;
        intensity[nyc] = 0.20; // NYC grid is much cleaner this hour
        let c = ctx(&clusters, &states, &demand, &prices);
        let mut policy = CarbonAwarePolicy::new(1500.0, intensity);
        let a = policy.allocate(&c);
        assert_eq!(a.matrix()[nyc][0], 1000.0);
        assert_eq!(policy.name(), "carbon-aware");
    }

    #[test]
    fn carbon_ties_go_to_nearer_cluster() {
        let clusters = ClusterSet::akamai_like_nine();
        let states = [UsState::MA];
        let demand = [1000.0];
        let prices = vec![50.0; 9];
        let boston = clusters.index_of_hub(HubId::BostonMa).unwrap();
        // All intensities within the 0.02 threshold of each other.
        let intensity = vec![0.50; 9];
        let c = ctx(&clusters, &states, &demand, &prices);
        let mut policy = CarbonAwarePolicy::new(1500.0, intensity);
        let a = policy.allocate(&c);
        assert_eq!(a.matrix()[boston][0], 1000.0);
    }

    #[test]
    fn carbon_distance_threshold_is_enforced() {
        let clusters = ClusterSet::akamai_like_nine();
        let states = [UsState::MA];
        let demand = [1000.0];
        let prices = vec![50.0; 9];
        let pa = clusters.index_of_hub(HubId::PaloAltoCa).unwrap();
        let mut intensity = vec![0.6; 9];
        intensity[pa] = 0.0; // hydro-clean but across the country
        let c = ctx(&clusters, &states, &demand, &prices);
        let mut policy = CarbonAwarePolicy::new(1500.0, intensity);
        let a = policy.allocate(&c);
        assert_eq!(a.matrix()[pa][0], 0.0);
        assert!(a.serves_demand(&demand, 1e-9));
    }

    #[test]
    fn set_intensities_replaces_vector() {
        let mut policy = CarbonAwarePolicy::new(1000.0, vec![0.5; 9]);
        policy.set_intensities(vec![0.1; 9]);
        assert_eq!(policy.carbon_intensity, vec![0.1; 9]);
    }

    #[test]
    #[should_panic(expected = "align with the deployment")]
    fn carbon_length_mismatch_panics() {
        let clusters = ClusterSet::akamai_like_nine();
        let states = [UsState::MA];
        let demand = [1.0];
        let prices = vec![50.0; 9];
        let c = ctx(&clusters, &states, &demand, &prices);
        let mut policy = CarbonAwarePolicy::new(1000.0, vec![0.5; 3]);
        let _ = policy.allocate(&c);
    }

    #[test]
    fn joint_policy_interpolates_between_price_and_distance() {
        let clusters = ClusterSet::akamai_like_nine();
        let states = [UsState::MA];
        let demand = [1000.0];
        let boston = clusters.index_of_hub(HubId::BostonMa).unwrap();
        let austin = clusters.index_of_hub(HubId::AustinTx).unwrap();
        let mut prices = vec![80.0; 9];
        prices[austin] = 20.0;
        prices[boston] = 75.0;
        let c = ctx(&clusters, &states, &demand, &prices);

        // Pure price: Austin wins despite the distance.
        let a_price = JointCostPolicy::new(0.0).allocate(&c);
        assert_eq!(a_price.matrix()[austin][0], 1000.0);

        // Heavy distance weight: Boston wins.
        let a_dist = JointCostPolicy::new(10.0).allocate(&c);
        assert_eq!(a_dist.matrix()[boston][0], 1000.0);

        // Intermediate weight: $60 price advantage vs ~2700 km extra
        // distance. At $0.01/km the distance penalty (~$27) is smaller than
        // the price advantage, so Austin still wins; at $0.05/km it is not.
        let a_mid_low = JointCostPolicy::new(0.01).allocate(&c);
        assert_eq!(a_mid_low.matrix()[austin][0], 1000.0);
        let a_mid_high = JointCostPolicy::new(0.05).allocate(&c);
        assert_eq!(a_mid_high.matrix()[boston][0], 1000.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_distance_weight_rejected() {
        let _ = JointCostPolicy::new(-1.0);
    }

    #[test]
    fn joint_shared_preferences_allocate_identically_without_recompiling() {
        let clusters = ClusterSet::akamai_like_nine();
        let states: Vec<UsState> = UsState::all().collect();
        let demand: Vec<f64> = (0..states.len()).map(|i| 100.0 + 29.0 * i as f64).collect();
        let prices: Vec<f64> = (0..9).map(|i| 25.0 + 9.0 * i as f64).collect();
        let shared = Arc::new(CompiledPreferences::build(&clusters, &states));

        for weight in [0.0, 0.01, 0.05, 10.0] {
            let c = ctx(&clusters, &states, &demand, &prices);
            let mut own = JointCostPolicy::new(weight);
            let mut borrowed = JointCostPolicy::new(weight);
            borrowed.attach_preferences(&shared);
            let a = own.allocate(&c);
            let b = borrowed.allocate(&c);
            assert_eq!(a.matrix(), b.matrix(), "weight {weight}");
            assert_eq!(own.own_geometry_builds(), 1);
            assert_eq!(borrowed.own_geometry_builds(), 0, "shared geometry must be reused");
        }
    }
}
