//! Baseline routing policies the paper compares against.
//!
//! * [`NearestClusterPolicy`] — the "optimal distance" scheme obtained by
//!   setting the price optimizer's distance threshold to zero (§6.1): every
//!   client goes to the geographically closest cluster.
//! * [`AkamaiLikePolicy`] — a stand-in for "Akamai's original allocation".
//!   The real mapping balances performance, partially replicated objects and
//!   bandwidth contracts; we model it as mostly-nearest routing with a
//!   deterministic fraction of each state's traffic sent to the
//!   second-nearest cluster (clients kept on-net even when that network's
//!   servers are farther away, §4). This is the normalisation baseline for
//!   Figures 15-19.
//! * [`StaticCheapestPolicy`] — "place all servers in the cheapest market"
//!   (§6.3, Figure 18): every request is served from the hub with the lowest
//!   long-run average price, subject to capacity.
//!
//! All three ride [`CompiledPreferences`] for their distance geometry: the
//! per-state ascending-distance ranking is compiled once per (deployment,
//! state list) — shared by a sweep or lazily self-compiled — instead of
//! being recomputed and re-sorted on every reallocation. The ranking's
//! stable sort from cluster-index order gives exactly the tie-break the old
//! per-realloc sort used, so the migration is bit-identical.

use crate::allocation::Allocation;
use crate::policy::{assign_by_preference_into, AssignWorkspace, RoutingContext, RoutingPolicy};
use crate::price_conscious::{ensure_compiled, CompiledPreferences};
use std::sync::Arc;

/// Route every client state to its nearest cluster (ties broken by cluster
/// order), overflowing to the next nearest when capacity or bandwidth caps
/// bind.
#[derive(Debug, Clone, Default)]
pub struct NearestClusterPolicy {
    compiled: Option<Arc<CompiledPreferences>>,
    own_geometry_builds: usize,
    workspace: AssignWorkspace,
}

impl NearestClusterPolicy {
    /// Create the policy.
    pub fn new() -> Self {
        Self::default()
    }

    /// How many times this instance compiled its own geometry (a run fed
    /// shared preferences that match its contexts reports `0`).
    pub fn own_geometry_builds(&self) -> usize {
        self.own_geometry_builds
    }
}

impl RoutingPolicy for NearestClusterPolicy {
    fn name(&self) -> &str {
        "nearest-cluster"
    }

    fn allocate(&mut self, ctx: &RoutingContext<'_>) -> Allocation {
        let mut out = Allocation::zeros(ctx.clusters.len(), ctx.states.len());
        self.allocate_into(&mut out, ctx);
        out
    }

    fn allocate_into(&mut self, out: &mut Allocation, ctx: &RoutingContext<'_>) {
        ensure_compiled(&mut self.compiled, &mut self.own_geometry_builds, ctx);
        let compiled = self.compiled.as_ref().expect("compiled above");
        assign_by_preference_into(ctx, &mut self.workspace, out, |state_idx, _, buf| {
            buf.extend(compiled.ranked(state_idx).iter().map(|(i, _)| *i));
        });
    }

    fn attach_preferences(&mut self, prefs: &Arc<CompiledPreferences>) {
        self.compiled = Some(prefs.clone());
    }
}

/// Reused buffers for the Akamai-like baseline's two-share pour: the split
/// demand vectors and the two partial allocations merged into the output.
#[derive(Debug, Clone, Default)]
struct AkamaiScratch {
    primary_demand: Vec<f64>,
    secondary_demand: Vec<f64>,
    primary: Allocation,
    secondary: Allocation,
}

/// An Akamai-like baseline: most of a state's demand goes to the nearest
/// cluster, a fixed fraction goes to the second nearest (standing in for
/// network-topology and contractual effects that keep some clients on
/// farther servers).
#[derive(Debug, Clone)]
pub struct AkamaiLikePolicy {
    /// Fraction of each state's demand sent to the second-nearest cluster.
    pub secondary_fraction: f64,
    compiled: Option<Arc<CompiledPreferences>>,
    own_geometry_builds: usize,
    workspace: AssignWorkspace,
    scratch: AkamaiScratch,
}

impl Default for AkamaiLikePolicy {
    fn default() -> Self {
        Self::new(0.2)
    }
}

impl AkamaiLikePolicy {
    /// Create the baseline with a given secondary fraction (clamped to
    /// `[0, 0.5]`).
    pub fn new(secondary_fraction: f64) -> Self {
        Self {
            secondary_fraction: secondary_fraction.clamp(0.0, 0.5),
            compiled: None,
            own_geometry_builds: 0,
            workspace: AssignWorkspace::new(),
            scratch: AkamaiScratch::default(),
        }
    }

    /// How many times this instance compiled its own geometry (a run fed
    /// shared preferences that match its contexts reports `0`).
    pub fn own_geometry_builds(&self) -> usize {
        self.own_geometry_builds
    }
}

impl RoutingPolicy for AkamaiLikePolicy {
    fn name(&self) -> &str {
        "akamai-like"
    }

    fn allocate(&mut self, ctx: &RoutingContext<'_>) -> Allocation {
        let mut out = Allocation::zeros(ctx.clusters.len(), ctx.states.len());
        self.allocate_into(&mut out, ctx);
        out
    }

    fn allocate_into(&mut self, out: &mut Allocation, ctx: &RoutingContext<'_>) {
        // Split each state's demand into a primary share (nearest) and a
        // secondary share (second nearest) and run the capacity-aware engine
        // on each share separately, then merge.
        let n_clusters = ctx.clusters.len();
        let n_states = ctx.states.len();
        ensure_compiled(&mut self.compiled, &mut self.own_geometry_builds, ctx);
        let compiled = self.compiled.as_ref().expect("compiled above");
        let fraction = self.secondary_fraction;
        let AkamaiScratch { primary_demand, secondary_demand, primary, secondary } =
            &mut self.scratch;

        primary_demand.clear();
        primary_demand.extend(ctx.demand.iter().map(|d| d * (1.0 - fraction)));
        secondary_demand.clear();
        secondary_demand.extend(ctx.demand.iter().map(|d| d * fraction));

        let primary_ctx = RoutingContext { demand: primary_demand, ..ctx.clone() };
        assign_by_preference_into(
            &primary_ctx,
            &mut self.workspace,
            primary,
            |state_idx, _, buf| {
                buf.extend(compiled.ranked(state_idx).iter().map(|(i, _)| *i));
            },
        );

        let secondary_ctx = RoutingContext { demand: secondary_demand, ..ctx.clone() };
        assign_by_preference_into(
            &secondary_ctx,
            &mut self.workspace,
            secondary,
            |state_idx, _, buf| {
                buf.extend(compiled.ranked(state_idx).iter().map(|(i, _)| *i));
                if buf.len() > 1 {
                    buf.rotate_left(1); // prefer the second nearest first
                }
            },
        );

        out.reset(n_clusters, n_states);
        for c in 0..n_clusters {
            let (primary_row, secondary_row) = (primary.row(c), secondary.row(c));
            for s in 0..n_states {
                let total = primary_row[s] + secondary_row[s];
                if total > 0.0 {
                    out.add(c, s, total);
                }
            }
        }
    }

    fn attach_preferences(&mut self, prefs: &Arc<CompiledPreferences>) {
        self.compiled = Some(prefs.clone());
    }
}

/// Send everything to the cheapest market on average — the static placement
/// of §6.3 — overflowing to the next cheapest when caps bind.
#[derive(Debug, Clone)]
pub struct StaticCheapestPolicy {
    /// Long-run mean price per cluster (aligned with cluster order), used to
    /// fix the preference order once.
    mean_prices: Vec<f64>,
    workspace: AssignWorkspace,
    order: Vec<usize>,
}

impl StaticCheapestPolicy {
    /// Create the policy from long-run mean prices per cluster.
    pub fn new(mean_prices: Vec<f64>) -> Self {
        assert!(!mean_prices.is_empty(), "need at least one cluster");
        Self { mean_prices, workspace: AssignWorkspace::new(), order: Vec::new() }
    }

    /// Recompute the preference order (ascending mean price) into the
    /// reused `order` buffer.
    fn refresh_order(&mut self) {
        self.order.clear();
        self.order.extend(0..self.mean_prices.len());
        let mean_prices = &self.mean_prices;
        self.order
            .sort_by(|&a, &b| mean_prices[a].partial_cmp(&mean_prices[b]).expect("finite prices"));
    }
}

impl RoutingPolicy for StaticCheapestPolicy {
    fn name(&self) -> &str {
        "static-cheapest-hub"
    }

    fn allocate(&mut self, ctx: &RoutingContext<'_>) -> Allocation {
        let mut out = Allocation::zeros(ctx.clusters.len(), ctx.states.len());
        self.allocate_into(&mut out, ctx);
        out
    }

    fn allocate_into(&mut self, out: &mut Allocation, ctx: &RoutingContext<'_>) {
        assert_eq!(
            self.mean_prices.len(),
            ctx.clusters.len(),
            "mean prices must align with the deployment"
        );
        self.refresh_order();
        let order = &self.order;
        assign_by_preference_into(ctx, &mut self.workspace, out, |_, _, buf| {
            buf.extend_from_slice(order);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wattroute_geo::{HubId, UsState};
    use wattroute_market::time::SimHour;
    use wattroute_workload::ClusterSet;

    fn ctx<'a>(
        clusters: &'a ClusterSet,
        states: &'a [UsState],
        demand: &'a [f64],
        prices: &'a [f64],
    ) -> RoutingContext<'a> {
        RoutingContext::new(clusters, states, demand, prices, SimHour(0))
    }

    #[test]
    fn nearest_sends_massachusetts_to_boston() {
        let clusters = ClusterSet::akamai_like_nine();
        let states = [UsState::MA, UsState::CA];
        let demand = [1000.0, 2000.0];
        let prices = vec![50.0; 9];
        let c = ctx(&clusters, &states, &demand, &prices);
        let mut policy = NearestClusterPolicy::new();
        let a = policy.allocate(&c);
        let boston = clusters.index_of_hub(HubId::BostonMa).unwrap();
        assert_eq!(a.matrix()[boston][0], 1000.0);
        // California goes to one of the two California clusters.
        let ca1 = clusters.index_of_hub(HubId::PaloAltoCa).unwrap();
        let ca2 = clusters.index_of_hub(HubId::LosAngelesCa).unwrap();
        assert_eq!(a.matrix()[ca1][1] + a.matrix()[ca2][1], 2000.0);
        assert!(a.serves_demand(&demand, 1e-9));
        assert_eq!(policy.name(), "nearest-cluster");
    }

    #[test]
    fn akamai_like_splits_between_two_nearest() {
        let clusters = ClusterSet::akamai_like_nine();
        let states = [UsState::MA];
        let demand = [1000.0];
        let prices = vec![50.0; 9];
        let c = ctx(&clusters, &states, &demand, &prices);
        let mut policy = AkamaiLikePolicy::default();
        let a = policy.allocate(&c);
        let boston = clusters.index_of_hub(HubId::BostonMa).unwrap();
        assert!((a.matrix()[boston][0] - 800.0).abs() < 1e-6);
        // The remaining 20% went somewhere else, and everything is served.
        assert!(a.serves_demand(&demand, 1e-9));
        let non_boston: f64 = a
            .cluster_loads()
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != boston)
            .map(|(_, l)| l)
            .sum();
        assert!((non_boston - 200.0).abs() < 1e-6);
    }

    #[test]
    fn akamai_like_has_longer_distances_than_nearest() {
        let clusters = ClusterSet::akamai_like_nine();
        let states: Vec<UsState> = UsState::all().collect();
        let demand: Vec<f64> = states.iter().map(|s| s.population() as f64 / 1000.0).collect();
        let prices = vec![50.0; 9];
        let c = ctx(&clusters, &states, &demand, &prices);
        let near = NearestClusterPolicy::new().allocate(&c);
        let akamai = AkamaiLikePolicy::default().allocate(&c);
        let d_near = near.mean_distance_km(&clusters, &states).unwrap();
        let d_akamai = akamai.mean_distance_km(&clusters, &states).unwrap();
        assert!(d_akamai > d_near, "{d_akamai} vs {d_near}");
    }

    #[test]
    fn baselines_reuse_shared_geometry_without_recompiling() {
        let clusters = ClusterSet::akamai_like_nine();
        let states: Vec<UsState> = UsState::all().collect();
        let demand: Vec<f64> = (0..states.len()).map(|i| 50.0 + 13.0 * i as f64).collect();
        let prices = vec![50.0; 9];
        let shared = Arc::new(CompiledPreferences::build(&clusters, &states));
        let c = ctx(&clusters, &states, &demand, &prices);

        let mut own_near = NearestClusterPolicy::new();
        let mut shared_near = NearestClusterPolicy::new();
        shared_near.attach_preferences(&shared);
        assert_eq!(own_near.allocate(&c).matrix(), shared_near.allocate(&c).matrix());
        assert_eq!(own_near.own_geometry_builds(), 1);
        assert_eq!(shared_near.own_geometry_builds(), 0, "shared geometry must be reused");

        let mut own_akamai = AkamaiLikePolicy::default();
        let mut shared_akamai = AkamaiLikePolicy::default();
        shared_akamai.attach_preferences(&shared);
        assert_eq!(own_akamai.allocate(&c).matrix(), shared_akamai.allocate(&c).matrix());
        assert_eq!(own_akamai.own_geometry_builds(), 1);
        assert_eq!(shared_akamai.own_geometry_builds(), 0, "shared geometry must be reused");
    }

    #[test]
    fn static_cheapest_prefers_lowest_mean_price() {
        let clusters = ClusterSet::akamai_like_nine();
        let states = [UsState::NY, UsState::CA];
        let demand = [1000.0, 1000.0];
        let prices = vec![50.0; 9]; // current prices are irrelevant to the static policy
        let c = ctx(&clusters, &states, &demand, &prices);
        // Chicago (index 4) has the lowest long-run mean.
        let mut means = vec![60.0; 9];
        means[4] = 38.0;
        let mut policy = StaticCheapestPolicy::new(means);
        let a = policy.allocate(&c);
        assert!((a.cluster_loads()[4] - 2000.0).abs() < 1e-6);
        assert_eq!(policy.name(), "static-cheapest-hub");
    }

    #[test]
    fn static_cheapest_overflows_in_price_order() {
        let clusters = ClusterSet::akamai_like_nine().scaled(0.01);
        let states = [UsState::CA];
        let cap = clusters.get(4).unwrap().capacity_hits_per_sec();
        let demand = [cap * 3.0];
        let prices = vec![50.0; 9];
        let c = ctx(&clusters, &states, &demand, &prices);
        let mut means = vec![60.0; 9];
        means[4] = 30.0;
        means[5] = 35.0;
        let a = StaticCheapestPolicy::new(means).allocate(&c);
        let loads = a.cluster_loads();
        assert!((loads[4] - cap).abs() < 1e-6);
        assert!(loads[5] > 0.0);
        assert!(a.serves_demand(&demand, 1e-6));
    }

    #[test]
    #[should_panic(expected = "align with the deployment")]
    fn static_cheapest_length_mismatch_panics() {
        let clusters = ClusterSet::akamai_like_nine();
        let states = [UsState::NY];
        let demand = [1.0];
        let prices = vec![50.0; 9];
        let c = ctx(&clusters, &states, &demand, &prices);
        let _ = StaticCheapestPolicy::new(vec![1.0, 2.0]).allocate(&c);
    }

    #[test]
    fn secondary_fraction_is_clamped() {
        assert_eq!(AkamaiLikePolicy::new(0.9).secondary_fraction, 0.5);
        assert_eq!(AkamaiLikePolicy::new(-0.1).secondary_fraction, 0.0);
    }
}
