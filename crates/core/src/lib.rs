//! # wattroute
//!
//! Electricity-price-aware request routing for Internet-scale systems — a
//! Rust reproduction of *Cutting the Electric Bill for Internet-Scale
//! Systems* (Qureshi, Weber, Balakrishnan, Guttag, Maggs — SIGCOMM 2009).
//!
//! The paper's thesis: wholesale electricity prices at different US
//! locations are volatile and imperfectly correlated, and a geographically
//! distributed system that already does dynamic request routing can shift
//! load toward wherever energy is currently cheap, cutting its electricity
//! *cost* (not its energy) by a few percent to tens of percent depending on
//! how energy-proportional its clusters are.
//!
//! This crate is the user-facing facade. It provides the discrete-time cost
//! [`simulation`] engine, pre-packaged [`scenario`]s matching the paper's
//! §6.2 (24 days of traffic) and §6.3 (39 months of prices) setups, and the
//! [`report`] types used to express savings. The substrates live in their
//! own crates and are re-exported here:
//!
//! | crate | role |
//! |---|---|
//! | [`market`] | calibrated wholesale price simulator, differentials, demand response |
//! | [`workload`] | Akamai-like CDN traces, 95/5 percentiles, capacity |
//! | [`energy`] | cluster power model, fleet cost estimates, router energy |
//! | [`routing`] | price-conscious optimizer, baselines, carbon/joint extensions |
//! | [`geo`] | hubs, RTOs, census populations, distances |
//! | [`stats`] | statistics kernels |
//!
//! See `docs/engine.md` for the compile-then-run engine design and
//! `docs/paper_fidelity.md` for the paper-section-by-section fidelity map.
//!
//! # Quickstart
//!
//! ```
//! use wattroute::prelude::*;
//!
//! // A small window keeps the doctest fast; examples/ and the bench harness
//! // run the full 24-day and 39-month scenarios.
//! let start = SimHour::from_date(2008, 12, 19);
//! let scenario = Scenario::custom_window(42, HourRange::new(start, start.plus_hours(48)))
//!     .with_energy(EnergyModelParams::optimistic_future());
//!
//! let baseline = scenario.baseline_report();
//! let mut optimizer = PriceConsciousPolicy::with_distance_threshold(1500.0);
//! let optimized = scenario.execute(&mut optimizer, RunOptions::new());
//!
//! let savings = optimized.savings_percent_vs(&baseline);
//! assert!(savings > 0.0, "price-conscious routing should save money, got {savings:.2}%");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod constraints;
pub mod engine;
pub mod hierarchy;
pub mod json;
pub mod jsonl;
pub mod montecarlo;
pub mod objective;
pub mod report;
pub mod run;
pub mod scenario;
pub mod simulation;
pub mod sweep;

/// Compiles and runs every Rust code block in the workspace README as a
/// doc-test, so the documented quickstart cannot drift from the real API.
#[cfg(doctest)]
#[doc = include_str!("../../../README.md")]
pub struct ReadmeDoctest;

pub use wattroute_energy as energy;
pub use wattroute_geo as geo;
pub use wattroute_market as market;
pub use wattroute_routing as routing;
pub use wattroute_stats as stats;
pub use wattroute_workload as workload;

/// Convenient re-exports of the most commonly used items across the
/// workspace.
pub mod prelude {
    pub use crate::constraints::{BandwidthTariff, CalibratedScenario};
    pub use crate::engine::{DemandSlice, EngineSnapshot, PriceSlice, SimulationEngine};
    pub use crate::hierarchy::{HierarchicalReplay, PolicyFactory};
    pub use crate::montecarlo::{
        BandSummary, ClusterBand, MonteCarlo, PathOutcome, PathPolicyFactory, SavingsDistribution,
    };
    pub use crate::objective::{Objective, ObjectiveTerms};
    pub use crate::report::{PolicyComparison, SimulationReport};
    pub use crate::run::RunOptions;
    pub use crate::scenario::Scenario;
    pub use crate::simulation::{
        ConfigError, LoadRecorder, Simulation, SimulationConfig, SimulationConfigBuilder,
    };
    pub use crate::sweep::{ScenarioSweep, SweepReport};
    pub use wattroute_energy::model::EnergyModelParams;
    pub use wattroute_geo::{HubId, Rto, UsState};
    pub use wattroute_market::prelude::*;
    pub use wattroute_routing::prelude::*;
    pub use wattroute_workload::prelude::*;
}
