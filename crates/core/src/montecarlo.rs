//! Monte Carlo replay: savings *distributions* instead of point estimates.
//!
//! Every other harness in this workspace replays one deterministic price
//! trace, so its savings figures are point estimates. The calibrated
//! stochastic market model ([`wattroute_market::model::MarketModel`]) can do
//! better: this module draws `N` seeded, cross-hub-correlated price paths
//! from [`PriceGenerator`], replays each one through the incremental
//! [`SimulationEngine`], and aggregates the per-path reports into a
//! [`SavingsDistribution`] — mean and p5/p50/p95 bands of the electric
//! bill and the savings percentage, conditional value-at-risk (CVaR) of the
//! bill, and per-cluster cost quantile rollups.
//!
//! # Determinism
//!
//! Path `k` draws its prices from the generator reseeded with
//! [`path_seed`]`(master_seed, k)` — a SplitMix64-mixed stream derived from
//! one master seed. A path's price series is therefore a pure function of
//! `(model, master_seed, k, range)`, independent of which worker thread
//! happens to draw it, and results are folded back in path order. The same
//! master seed yields a byte-identical [`SavingsDistribution::to_json`]
//! string at any worker-thread count, and an `n_paths = 1` run reproduces a
//! direct [`Simulation`](crate::simulation::Simulation) replay of the same
//! generated prices bit for bit (both are pinned by property tests).
//!
//! # Workspace reuse
//!
//! Each worker owns exactly one generator (reseeded per path — the
//! calibrated model is cloned once per worker, not per path), one
//! [`SimulationEngine`] reset from a pristine [`EngineSnapshot`] between
//! replays, and one flat `hour × hub` price buffer refilled per path. The
//! ranked-distance geometry ([`CompiledPreferences`]) is compiled once per
//! run and shared across workers, so drawing more paths performs **zero**
//! additional artifact compiles — asserted by the compile-counter tests.
//!
//! # CVaR
//!
//! `CVaR_α` of the bill is the expected bill in the worst `(1 − α)` tail of
//! the path distribution (Rockafellar–Uryasev sample form; see
//! [`wattroute_stats::quantiles::cvar`]). The objective layer's
//! [`with_cvar_weight`](crate::objective::Objective::with_cvar_weight)
//! charges deployments for the spread between that tail and the mean bill,
//! letting the placement optimizer prefer robust splits over fragile ones.
//!
//! ```
//! use wattroute::montecarlo::MonteCarlo;
//! use wattroute::prelude::*;
//!
//! let start = SimHour::from_date(2008, 6, 1);
//! let scenario = Scenario::custom_window(42, HourRange::new(start, start.plus_hours(24)));
//! let model = MarketModel::calibrated().restricted_to(&scenario.clusters.hub_ids());
//! let dist =
//!     MonteCarlo::new(&scenario.clusters, &scenario.trace, model, scenario.config.clone(), 2009)
//!         .with_paths(4)
//!         .with_threads(2)
//!         .run();
//! assert_eq!(dist.per_path.len(), 4);
//! assert!(dist.bill.p95 >= dist.bill.p5);
//! assert!(dist.bill_cvar_dollars >= dist.bill.mean);
//! ```

use crate::engine::{DemandSlice, EngineSnapshot, PriceSlice, SimulationEngine};
use crate::json::{self, JsonValue};
use crate::report::SimulationReport;
use crate::simulation::{step_coverage, SimulationConfig};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use wattroute_market::generator::{path_seed, PriceGenerator};
use wattroute_market::model::MarketModel;
use wattroute_routing::baseline::AkamaiLikePolicy;
use wattroute_routing::policy::RoutingPolicy;
use wattroute_routing::price_conscious::{CompiledPreferences, PriceConsciousPolicy};
use wattroute_stats as stats;
use wattroute_workload::trace::Trace;
use wattroute_workload::ClusterSet;

/// A shareable policy constructor: every worker thread builds its own
/// policy instance from the one factory, so policies need not be `Sync`.
pub type PathPolicyFactory = Arc<dyn Fn() -> Box<dyn RoutingPolicy> + Send + Sync>;

/// Mean and p5/p50/p95 band of one scalar across Monte Carlo paths.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BandSummary {
    /// Mean over paths.
    pub mean: f64,
    /// 5th percentile over paths.
    pub p5: f64,
    /// Median over paths.
    pub p50: f64,
    /// 95th percentile over paths.
    pub p95: f64,
}

impl BandSummary {
    /// Summarise a non-empty sample of per-path values.
    pub fn from_samples(samples: &[f64]) -> Self {
        assert!(!samples.is_empty(), "a band summary needs at least one sample");
        let q = |p: f64| stats::quantile(samples, p).expect("non-empty finite sample");
        Self {
            mean: stats::mean(samples).expect("non-empty sample"),
            p5: q(0.05),
            p50: q(0.50),
            p95: q(0.95),
        }
    }

    /// The p5–p95 band width.
    pub fn width(&self) -> f64 {
        self.p95 - self.p5
    }

    /// Encode as a JSON value.
    pub fn to_json_value(&self) -> JsonValue {
        json::object([
            ("mean", JsonValue::Number(self.mean)),
            ("p5", JsonValue::Number(self.p5)),
            ("p50", JsonValue::Number(self.p50)),
            ("p95", JsonValue::Number(self.p95)),
        ])
    }
}

/// Per-cluster cost band across paths.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterBand {
    /// Cluster label (e.g. `NY`).
    pub label: String,
    /// Electricity cost band for this cluster, in dollars.
    pub cost: BandSummary,
}

impl ClusterBand {
    /// Encode as a JSON value.
    pub fn to_json_value(&self) -> JsonValue {
        json::object([
            ("label", JsonValue::String(self.label.clone())),
            ("cost", self.cost.to_json_value()),
        ])
    }
}

/// The retained scalars of one Monte Carlo path: the optimized and baseline
/// bills plus the QoS aggregates the objective layer scores.
#[derive(Debug, Clone, PartialEq)]
pub struct PathOutcome {
    /// Path index in the master seed's stream.
    pub path: u64,
    /// The generator seed this path used ([`path_seed`] of the master seed).
    pub seed: u64,
    /// Optimized policy's total electricity cost in dollars.
    pub cost_dollars: f64,
    /// Baseline policy's total electricity cost in dollars.
    pub baseline_cost_dollars: f64,
    /// Savings of the optimized policy vs the baseline, in percent.
    pub savings_percent: f64,
    /// Overflow plus rejected hits under the optimized policy.
    pub unserved_hits: f64,
    /// Hits actually served (total minus overflow) under the optimized
    /// policy.
    pub served_hits: f64,
    /// Demand-weighted mean client–server distance (km) under the optimized
    /// policy.
    pub mean_distance_km: f64,
    /// 95/5 bandwidth bill in dollars under the optimized policy (zero when
    /// the run carries no tariff).
    pub bandwidth_cost_dollars: f64,
}

impl PathOutcome {
    /// Encode as a JSON value. Seeds are emitted as hex strings (`u64` does
    /// not round-trip through a JSON number); zero `unserved_hits` and
    /// `bandwidth_cost_dollars` are omitted, matching the report encoders.
    pub fn to_json_value(&self) -> JsonValue {
        let mut fields = vec![
            ("path", JsonValue::Number(self.path as f64)),
            ("seed", JsonValue::String(format!("{:#018x}", self.seed))),
            ("cost_dollars", JsonValue::Number(self.cost_dollars)),
            ("baseline_cost_dollars", JsonValue::Number(self.baseline_cost_dollars)),
            ("savings_percent", JsonValue::Number(self.savings_percent)),
            ("served_hits", JsonValue::Number(self.served_hits)),
            ("mean_distance_km", JsonValue::Number(self.mean_distance_km)),
        ];
        if self.unserved_hits != 0.0 {
            fields.push(("unserved_hits", JsonValue::Number(self.unserved_hits)));
        }
        if self.bandwidth_cost_dollars != 0.0 {
            fields.push(("bandwidth_cost_dollars", JsonValue::Number(self.bandwidth_cost_dollars)));
        }
        json::object_iter(fields)
    }
}

/// The aggregate of a Monte Carlo run: distribution bands over the electric
/// bill and the savings percentage, tail risk of the bill, per-cluster
/// rollups, and the per-path scalars they were folded from.
#[derive(Debug, Clone, PartialEq)]
pub struct SavingsDistribution {
    /// The master seed the path stream was derived from.
    pub master_seed: u64,
    /// First path index drawn (0 unless
    /// [`MonteCarlo::with_first_path`] shifted the stream).
    pub first_path: u64,
    /// Number of paths drawn.
    pub n_paths: usize,
    /// The CVaR confidence level used for [`Self::bill_cvar_dollars`].
    pub cvar_alpha: f64,
    /// Name of the optimized policy.
    pub policy: String,
    /// Name of the baseline policy.
    pub baseline: String,
    /// Distribution of the optimized policy's total bill, in dollars.
    pub bill: BandSummary,
    /// Distribution of the baseline policy's total bill, in dollars.
    pub baseline_bill: BandSummary,
    /// Distribution of the per-path savings percentage.
    pub savings_percent: BandSummary,
    /// `CVaR_α` of the optimized bill: the expected bill over the worst
    /// `(1 − α)` fraction of paths. Always at least the mean bill.
    pub bill_cvar_dollars: f64,
    /// Per-cluster cost bands, in cluster order.
    pub clusters: Vec<ClusterBand>,
    /// Per-path scalars, in path order.
    pub per_path: Vec<PathOutcome>,
}

impl SavingsDistribution {
    /// Standard error of the mean savings percentage
    /// (sample standard deviation over `√n`), or `None` below two paths.
    /// Shrinks like `1/√n`, which is what the convergence smoke pins.
    pub fn mean_savings_standard_error(&self) -> Option<f64> {
        let samples: Vec<f64> = self.per_path.iter().map(|p| p.savings_percent).collect();
        let sd = stats::descriptive::sample_std_dev(&samples)?;
        Some(sd / (samples.len() as f64).sqrt())
    }

    /// Width of the 90% confidence interval on the mean savings percentage
    /// (`2 × 1.645 ×` the standard error), or `None` below two paths.
    pub fn mean_savings_ci90_width(&self) -> Option<f64> {
        self.mean_savings_standard_error().map(|se| 2.0 * 1.645 * se)
    }

    /// Encode as a JSON value. Object keys are sorted (the encoder uses a
    /// `BTreeMap`), so the encoding is deterministic; seeds are hex strings;
    /// a zero `first_path` is omitted.
    pub fn to_json_value(&self) -> JsonValue {
        let mut fields = vec![
            ("master_seed", JsonValue::String(format!("{:#018x}", self.master_seed))),
            ("n_paths", JsonValue::Number(self.n_paths as f64)),
            ("cvar_alpha", JsonValue::Number(self.cvar_alpha)),
            ("policy", JsonValue::String(self.policy.clone())),
            ("baseline", JsonValue::String(self.baseline.clone())),
            ("bill", self.bill.to_json_value()),
            ("baseline_bill", self.baseline_bill.to_json_value()),
            ("savings_percent", self.savings_percent.to_json_value()),
            ("bill_cvar_dollars", JsonValue::Number(self.bill_cvar_dollars)),
            (
                "clusters",
                JsonValue::Array(self.clusters.iter().map(ClusterBand::to_json_value).collect()),
            ),
            (
                "per_path",
                JsonValue::Array(self.per_path.iter().map(PathOutcome::to_json_value).collect()),
            ),
        ];
        if self.first_path != 0 {
            fields.push(("first_path", JsonValue::Number(self.first_path as f64)));
        }
        json::object_iter(fields)
    }

    /// Serialize to a compact JSON string. Byte-identical across worker
    /// thread counts for the same configuration and master seed.
    pub fn to_json(&self) -> String {
        self.to_json_value().to_string()
    }
}

/// One worker's answer for one path, tagged with its slot so the collector
/// can fold results back in path order whatever order threads finish in.
struct PathResult {
    slot: usize,
    outcome: PathOutcome,
    cluster_costs: Vec<f64>,
}

/// The Monte Carlo replay engine. See the [module docs](self) for the
/// determinism and workspace-reuse contracts.
pub struct MonteCarlo<'a> {
    clusters: &'a ClusterSet,
    trace: &'a Trace,
    model: MarketModel,
    config: SimulationConfig,
    master_seed: u64,
    first_path: u64,
    n_paths: usize,
    threads: Option<usize>,
    cvar_alpha: f64,
    policy: PathPolicyFactory,
    baseline: PathPolicyFactory,
}

impl<'a> MonteCarlo<'a> {
    /// Create an engine over a deployment, a traffic trace, a calibrated
    /// price model (which must cover every deployment hub), a simulation
    /// configuration, and the master seed the path stream derives from.
    ///
    /// Defaults: 64 paths, all available threads, CVaR level 0.95,
    /// price-conscious routing (1500 km threshold) against the Akamai-like
    /// baseline.
    pub fn new(
        clusters: &'a ClusterSet,
        trace: &'a Trace,
        model: MarketModel,
        config: SimulationConfig,
        master_seed: u64,
    ) -> Self {
        assert!(trace.num_steps() > 0, "Monte Carlo needs a non-empty trace");
        Self {
            clusters,
            trace,
            model,
            config,
            master_seed,
            first_path: 0,
            n_paths: 64,
            threads: None,
            cvar_alpha: 0.95,
            policy: Arc::new(|| Box::new(PriceConsciousPolicy::with_distance_threshold(1500.0))),
            baseline: Arc::new(|| Box::new(AkamaiLikePolicy::default())),
        }
    }

    /// Set the number of price paths to draw (at least one).
    pub fn with_paths(mut self, n_paths: usize) -> Self {
        assert!(n_paths > 0, "at least one path is required");
        self.n_paths = n_paths;
        self
    }

    /// Pin the worker-thread count (results do not depend on it).
    pub fn with_threads(mut self, threads: usize) -> Self {
        assert!(threads > 0, "at least one worker thread is required");
        self.threads = Some(threads);
        self
    }

    /// Set the CVaR confidence level `α ∈ [0, 1)` (default 0.95).
    pub fn with_cvar_alpha(mut self, alpha: f64) -> Self {
        assert!((0.0..1.0).contains(&alpha), "CVaR level must be in [0, 1)");
        self.cvar_alpha = alpha;
        self
    }

    /// Start the path stream at index `first` instead of 0, so a run can be
    /// split across calls (or a single path `k` replayed on its own).
    pub fn with_first_path(mut self, first: u64) -> Self {
        self.first_path = first;
        self
    }

    /// Replace the optimized routing policy.
    pub fn with_policy<P, F>(mut self, factory: F) -> Self
    where
        P: RoutingPolicy + 'static,
        F: Fn() -> P + Send + Sync + 'static,
    {
        self.policy = Arc::new(move || Box::new(factory()));
        self
    }

    /// Replace the baseline routing policy.
    pub fn with_baseline<P, F>(mut self, factory: F) -> Self
    where
        P: RoutingPolicy + 'static,
        F: Fn() -> P + Send + Sync + 'static,
    {
        self.baseline = Arc::new(move || Box::new(factory()));
        self
    }

    /// Replace the optimized policy with an already-boxed shared factory
    /// (the placement optimizer's native currency).
    pub fn with_policy_factory(mut self, factory: PathPolicyFactory) -> Self {
        self.policy = factory;
        self
    }

    /// Replace the baseline policy with an already-boxed shared factory.
    pub fn with_baseline_factory(mut self, factory: PathPolicyFactory) -> Self {
        self.baseline = factory;
        self
    }

    /// Draw every path, replay it under both policies, and aggregate.
    pub fn run(&self) -> SavingsDistribution {
        let coverage = step_coverage(self.trace);
        let n_hours = coverage.len_hours() as usize;
        let hubs = self.clusters.hub_ids();
        let n_hubs = hubs.len();
        let delay = self.config.reaction_delay_hours as usize;
        let clamped = self.config.reaction_delay_hours.min(n_hours as u64);
        // The one artifact compile of the whole run: every worker's policies
        // share this geometry, so path count never changes compile counts.
        let prefs = Arc::new(CompiledPreferences::build(self.clusters, &self.trace.states));
        let policy_name = (self.policy)().name().to_string();
        let baseline_name = (self.baseline)().name().to_string();
        let n_paths = self.n_paths;
        let workers = self
            .threads
            .unwrap_or_else(|| std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1))
            .clamp(1, n_paths);

        let mut slots: Vec<Option<(PathOutcome, Vec<f64>)>> = (0..n_paths).map(|_| None).collect();
        let next = AtomicUsize::new(0);
        wattroute_obs::gauge!("montecarlo.workers").set(workers as f64);
        // Worker-utilization accounting (telemetry only): total busy
        // nanoseconds across workers vs. the pool's wall time.
        let run_start = wattroute_obs::Telemetry::enabled().then(std::time::Instant::now);
        let busy_ns = AtomicU64::new(0);
        let busy_ns_ref = &busy_ns;
        let (tx, rx) = mpsc::sync_channel::<PathResult>(workers);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                let tx = tx.clone();
                let prefs = Arc::clone(&prefs);
                let hubs = &hubs;
                let next = &next;
                scope.spawn(move || {
                    // Per-worker workspaces, reused across paths: one
                    // generator (the model clone), one engine + pristine
                    // snapshot, one flat hour × hub price buffer, one
                    // instance of each policy.
                    let mut generator = PriceGenerator::new(self.model.clone(), 0);
                    let mut engine = SimulationEngine::new(
                        self.clusters,
                        &self.trace.states,
                        self.config.clone(),
                    )
                    .with_clamped_lead_hours(clamped);
                    let pristine = engine.snapshot();
                    let mut billing = vec![0.0f64; n_hours * n_hubs];
                    let mut policy = (self.policy)();
                    policy.attach_preferences(&prefs);
                    let mut baseline = (self.baseline)();
                    baseline.attach_preferences(&prefs);
                    loop {
                        let slot = next.fetch_add(1, Ordering::Relaxed);
                        if slot >= n_paths {
                            break;
                        }
                        let path_span = wattroute_obs::span!("montecarlo.path");
                        let path_start = path_span.is_active().then(std::time::Instant::now);
                        let path = self.first_path + slot as u64;
                        let seed = path_seed(self.master_seed, path);
                        generator.reseed(seed);
                        let prices = generator.realtime_hourly(coverage);
                        for (j, hub) in hubs.iter().enumerate() {
                            let series = prices
                                .for_hub(*hub)
                                .expect("the model covers every deployment hub");
                            for (h, &p) in series.prices.iter().enumerate() {
                                billing[h * n_hubs + j] = p;
                            }
                        }
                        let optimized = replay(
                            &mut engine,
                            &pristine,
                            policy.as_mut(),
                            self.trace,
                            coverage.start.0,
                            &billing,
                            n_hubs,
                            delay,
                        );
                        let base = replay(
                            &mut engine,
                            &pristine,
                            baseline.as_mut(),
                            self.trace,
                            coverage.start.0,
                            &billing,
                            n_hubs,
                            delay,
                        );
                        let served: f64 = optimized.clusters.iter().map(|c| c.total_hits).sum();
                        let outcome = PathOutcome {
                            path,
                            seed,
                            cost_dollars: optimized.total_cost_dollars,
                            baseline_cost_dollars: base.total_cost_dollars,
                            savings_percent: optimized.savings_percent_vs(&base),
                            unserved_hits: optimized.total_overflow_hits
                                + optimized.total_rejected_hits,
                            served_hits: served - optimized.total_overflow_hits,
                            mean_distance_km: optimized.mean_distance_km,
                            bandwidth_cost_dollars: optimized.total_bandwidth_cost_dollars,
                        };
                        let cluster_costs =
                            optimized.clusters.iter().map(|c| c.cost_dollars).collect();
                        if let Some(start) = path_start {
                            busy_ns_ref
                                .fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
                        }
                        drop(path_span);
                        if tx.send(PathResult { slot, outcome, cluster_costs }).is_err() {
                            break;
                        }
                    }
                });
            }
            drop(tx);
            for result in rx {
                slots[result.slot] = Some((result.outcome, result.cluster_costs));
            }
        });
        if let Some(start) = run_start {
            let wall_secs = start.elapsed().as_secs_f64();
            if wall_secs > 0.0 {
                let busy_secs = busy_ns.load(Ordering::Relaxed) as f64 / 1.0e9;
                wattroute_obs::gauge!("montecarlo.worker_utilization")
                    .set(busy_secs / (wall_secs * workers as f64));
            }
        }

        let mut per_path = Vec::with_capacity(n_paths);
        let mut cluster_costs: Vec<Vec<f64>> = vec![Vec::with_capacity(n_paths); n_hubs];
        for slot in slots {
            let (outcome, costs) = slot.expect("every path index was drawn exactly once");
            for (samples, cost) in cluster_costs.iter_mut().zip(costs) {
                samples.push(cost);
            }
            per_path.push(outcome);
        }

        let bills: Vec<f64> = per_path.iter().map(|p| p.cost_dollars).collect();
        let baseline_bills: Vec<f64> = per_path.iter().map(|p| p.baseline_cost_dollars).collect();
        let savings: Vec<f64> = per_path.iter().map(|p| p.savings_percent).collect();
        let clusters = self
            .clusters
            .labels()
            .into_iter()
            .zip(&cluster_costs)
            .map(|(label, samples)| ClusterBand {
                label: label.to_string(),
                cost: BandSummary::from_samples(samples),
            })
            .collect();
        SavingsDistribution {
            master_seed: self.master_seed,
            first_path: self.first_path,
            n_paths,
            cvar_alpha: self.cvar_alpha,
            policy: policy_name,
            baseline: baseline_name,
            bill: BandSummary::from_samples(&bills),
            baseline_bill: BandSummary::from_samples(&baseline_bills),
            savings_percent: BandSummary::from_samples(&savings),
            bill_cvar_dollars: stats::cvar(&bills, self.cvar_alpha)
                .expect("non-empty finite bill sample"),
            clusters,
            per_path,
        }
    }
}

/// Replay one generated path through the engine from a pristine snapshot.
///
/// The billing buffer is indexed exactly like the batch path's
/// `PriceTable`: the billing row of hour `h` is row `h − start`, and the
/// delayed (router-visible) row is `max(h − start − delay, 0)` — the same
/// clamp `PriceSeries::delayed_price_at` applies for a series starting at
/// the coverage start. Together with the engine's snapshot/restore being
/// lossless, this makes a replay bit-identical to
/// [`Simulation::execute`](crate::simulation::Simulation) on the same
/// prices.
#[allow(clippy::too_many_arguments)]
fn replay(
    engine: &mut SimulationEngine<'_>,
    pristine: &EngineSnapshot,
    policy: &mut dyn RoutingPolicy,
    trace: &Trace,
    coverage_start: u64,
    billing: &[f64],
    n_hubs: usize,
    delay: usize,
) -> SimulationReport {
    engine.restore(pristine);
    for (i, step) in trace.steps().iter().enumerate() {
        let hour = trace.step_hour(i);
        let h_idx = (hour.0 - coverage_start) as usize;
        let delayed = &billing[h_idx.saturating_sub(delay) * n_hubs..][..n_hubs];
        let bill = &billing[h_idx * n_hubs..][..n_hubs];
        engine.tick(
            policy,
            PriceSlice::new(hour, delayed, bill),
            DemandSlice::new(&step.us_demand),
        );
    }
    engine.report()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Scenario;
    use wattroute_market::time::{HourRange, SimHour};

    fn small_scenario() -> Scenario {
        let start = SimHour::from_date(2008, 6, 1);
        Scenario::custom_window(42, HourRange::new(start, start.plus_hours(24)))
    }

    fn mc(scenario: &Scenario) -> MonteCarlo<'_> {
        let model = MarketModel::calibrated().restricted_to(&scenario.clusters.hub_ids());
        MonteCarlo::new(&scenario.clusters, &scenario.trace, model, scenario.config.clone(), 2009)
    }

    #[test]
    fn aggregates_are_internally_consistent() {
        let scenario = small_scenario();
        let dist = mc(&scenario).with_paths(6).with_threads(2).run();
        assert_eq!(dist.n_paths, 6);
        assert_eq!(dist.per_path.len(), 6);
        assert_eq!(dist.clusters.len(), scenario.clusters.len());
        // Paths come back sorted, each with its stream seed.
        for (k, path) in dist.per_path.iter().enumerate() {
            assert_eq!(path.path, k as u64);
            assert_eq!(path.seed, path_seed(2009, k as u64));
            assert!(path.cost_dollars > 0.0);
            assert!(path.baseline_cost_dollars > 0.0);
        }
        // Bands are ordered and CVaR dominates the mean bill.
        assert!(dist.bill.p5 <= dist.bill.p50 && dist.bill.p50 <= dist.bill.p95);
        assert!(dist.bill_cvar_dollars >= dist.bill.mean);
        // The bill band aggregates exactly the per-path bills.
        let bills: Vec<f64> = dist.per_path.iter().map(|p| p.cost_dollars).collect();
        assert_eq!(dist.bill, BandSummary::from_samples(&bills));
        // Per-cluster means sum to the mean total bill.
        let cluster_mean_sum: f64 = dist.clusters.iter().map(|c| c.cost.mean).sum();
        assert!((cluster_mean_sum - dist.bill.mean).abs() < 1e-6 * dist.bill.mean.abs());
    }

    #[test]
    fn json_round_trip_is_parseable_and_stable() {
        let scenario = small_scenario();
        let dist = mc(&scenario).with_paths(3).with_threads(1).run();
        let text = dist.to_json();
        let parsed = JsonValue::parse(&text).expect("valid JSON");
        assert_eq!(parsed.get("n_paths").and_then(JsonValue::as_f64), Some(3.0));
        assert_eq!(parsed.to_string(), text, "encoding is canonical");
    }

    #[test]
    fn first_path_shifts_the_stream() {
        let scenario = small_scenario();
        let full = mc(&scenario).with_paths(4).with_threads(2).run();
        let tail = mc(&scenario).with_paths(2).with_first_path(2).with_threads(2).run();
        assert_eq!(&full.per_path[2..], &tail.per_path[..]);
    }

    #[test]
    #[should_panic(expected = "at least one path")]
    fn zero_paths_rejected() {
        let scenario = small_scenario();
        let _ = mc(&scenario).with_paths(0);
    }
}
