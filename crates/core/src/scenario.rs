//! Pre-packaged scenarios: the paper's two main simulation setups plus
//! helpers to run and compare policies on them.
//!
//! * [`Scenario::akamai_24_day`] — the nine-cluster deployment over the
//!   24-day turn-of-2008/2009 traffic window (§6.2);
//! * [`Scenario::synthetic_39_month`] — the same deployment over the full
//!   January 2006 – March 2009 price history with the weekly-profile
//!   synthetic workload (§6.3).

use crate::report::{PolicyComparison, SimulationReport};
use crate::run::RunOptions;
use crate::simulation::{Simulation, SimulationConfig};
use wattroute_energy::model::EnergyModelParams;
use wattroute_market::generator::PriceGenerator;
use wattroute_market::time::HourRange;
use wattroute_market::types::PriceSet;
use wattroute_routing::baseline::{AkamaiLikePolicy, StaticCheapestPolicy};
use wattroute_routing::policy::RoutingPolicy;
use wattroute_routing::price_conscious::PriceConsciousPolicy;
use wattroute_workload::derive::WeeklyProfile;
use wattroute_workload::trace::Trace;
use wattroute_workload::{ClusterSet, SyntheticWorkloadConfig};

/// A fully materialised simulation scenario: deployment, traffic, prices and
/// default configuration.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// The deployment routed over.
    pub clusters: ClusterSet,
    /// The traffic trace.
    pub trace: Trace,
    /// Hourly real-time prices for every cluster hub.
    pub prices: PriceSet,
    /// Default simulation configuration (energy model, delay, ...).
    pub config: SimulationConfig,
}

impl Scenario {
    /// The 24-day scenario of §6.2: nine Akamai-like clusters, synthetic
    /// turn-of-year traffic, hourly real-time prices.
    pub fn akamai_24_day(seed: u64) -> Self {
        let clusters = ClusterSet::akamai_like_nine();
        let range = HourRange::akamai_24_days();
        let trace = SyntheticWorkloadConfig { seed, ..Default::default() }.generate(range);
        let prices = PriceGenerator::nine_cluster_default(seed).realtime_hourly(range);
        Self { clusters, trace, prices, config: SimulationConfig::default() }
    }

    /// A scenario over an arbitrary window, useful for tests and ablations.
    pub fn custom_window(seed: u64, range: HourRange) -> Self {
        let clusters = ClusterSet::akamai_like_nine();
        let trace = SyntheticWorkloadConfig { seed, ..Default::default() }.generate(range);
        let prices = PriceGenerator::nine_cluster_default(seed).realtime_hourly(range);
        Self { clusters, trace, prices, config: SimulationConfig::default() }
    }

    /// The 39-month scenario of §6.3: the 24-day workload reduced to a
    /// weekly profile (§6.1) and replayed over January 2006 – March 2009.
    /// Routing is re-decided hourly, which is exact because the replayed
    /// demand is constant within each hour.
    pub fn synthetic_39_month(seed: u64) -> Self {
        Self::synthetic_over(seed, HourRange::paper_39_months())
    }

    /// The weekly-profile synthetic workload replayed over an arbitrary
    /// range (used to keep tests fast while the benches run the full 39
    /// months).
    pub fn synthetic_over(seed: u64, range: HourRange) -> Self {
        let clusters = ClusterSet::akamai_like_nine();
        let base = SyntheticWorkloadConfig { seed, ..Default::default() }
            .generate(HourRange::akamai_24_days());
        let profile =
            WeeklyProfile::from_trace(&base).expect("24-day trace covers every hour-of-week");
        let trace = profile.replay(range);
        let prices = PriceGenerator::nine_cluster_default(seed).realtime_hourly(range);
        let config = SimulationConfig::default().with_reallocation_interval(12);
        Self { clusters, trace, prices, config }
    }

    /// Replace the energy model in the default configuration.
    pub fn with_energy(mut self, energy: EnergyModelParams) -> Self {
        self.config = self.config.with_energy(energy);
        self
    }

    /// Replace the reaction delay in the default configuration.
    pub fn with_reaction_delay(mut self, hours: u64) -> Self {
        self.config = self.config.with_reaction_delay(hours);
        self
    }

    /// Run an arbitrary policy over this scenario.
    ///
    /// Honoured options: [`RunOptions::with_config`] (replacing the
    /// scenario's default configuration for this run) and
    /// [`RunOptions::record_loads`]. An artifact cache belongs to the sweep
    /// layer and panics here (see [`crate::run`]).
    pub fn execute(
        &self,
        policy: &mut dyn RoutingPolicy,
        options: RunOptions<'_>,
    ) -> SimulationReport {
        let RunOptions { config, recorder, artifacts } = options;
        assert!(
            artifacts.is_none(),
            "RunOptions::reuse_artifacts applies to scenario sweeps; \
             a single scenario run compiles its own price table"
        );
        let config = config.unwrap_or_else(|| self.config.clone());
        let sim = Simulation::new(&self.clusters, &self.trace, &self.prices, config);
        let mut options = RunOptions::new();
        if let Some(recorder) = recorder {
            options = options.record_loads(recorder);
        }
        sim.execute(policy, options)
    }

    /// The Akamai-like baseline report for this scenario (the denominator of
    /// every normalised-cost figure).
    pub fn baseline_report(&self) -> SimulationReport {
        self.execute(&mut AkamaiLikePolicy::default(), RunOptions::new())
    }

    /// Per-cluster 95/5 ceilings observed under the baseline allocation —
    /// the "original 95/5 constraints" of Figures 15, 16 and 18.
    pub fn bandwidth_caps_from_baseline(&self) -> Vec<f64> {
        self.baseline_report().clusters.iter().map(|c| c.p95_hits_per_sec).collect()
    }

    /// Long-run mean price per cluster (for the static cheapest-hub policy).
    pub fn mean_prices(&self) -> Vec<f64> {
        self.clusters
            .hub_ids()
            .iter()
            .map(|hub| {
                self.prices
                    .for_hub(*hub)
                    .expect("scenario construction guarantees coverage")
                    .mean()
                    .expect("non-empty series")
            })
            .collect()
    }

    /// A static cheapest-hub policy parameterised by this scenario's mean
    /// prices (§6.3's "only use cheapest hub" comparison).
    pub fn static_cheapest_policy(&self) -> StaticCheapestPolicy {
        StaticCheapestPolicy::new(self.mean_prices())
    }

    /// Convenience: compare the baseline against the price-conscious
    /// optimizer at a distance threshold, with and without 95/5 caps.
    pub fn compare_price_conscious(&self, distance_threshold_km: f64) -> PolicyComparison {
        let baseline = self.baseline_report();
        let caps: Vec<f64> = baseline.clusters.iter().map(|c| c.p95_hits_per_sec).collect();

        let mut optimizer = PriceConsciousPolicy::with_distance_threshold(distance_threshold_km);
        let relaxed = self.execute(&mut optimizer, RunOptions::new());
        let constrained = self.execute(
            &mut optimizer,
            RunOptions::new().with_config(self.config.clone().with_bandwidth_caps(caps)),
        );

        PolicyComparison { baseline, alternatives: vec![relaxed, constrained] }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wattroute_market::time::SimHour;
    use wattroute_routing::prelude::*;

    fn short_scenario() -> Scenario {
        let start = SimHour::from_date(2008, 12, 19);
        Scenario::custom_window(11, HourRange::new(start, start.plus_hours(2 * 24)))
    }

    #[test]
    fn scenario_runs_and_baseline_is_positive() {
        let s = short_scenario();
        let baseline = s.baseline_report();
        assert!(baseline.total_cost_dollars > 0.0);
        assert_eq!(baseline.clusters.len(), 9);
        assert_eq!(baseline.policy, "akamai-like");
    }

    #[test]
    fn comparison_has_relaxed_and_constrained_runs() {
        let s = short_scenario().with_energy(EnergyModelParams::optimistic_future());
        let cmp = s.compare_price_conscious(1500.0);
        assert_eq!(cmp.alternatives.len(), 2);
        assert!(!cmp.alternatives[0].bandwidth_constrained);
        assert!(cmp.alternatives[1].bandwidth_constrained);
        // Constrained savings never exceed relaxed savings.
        let relaxed = cmp.alternatives[0].savings_percent_vs(&cmp.baseline);
        let constrained = cmp.alternatives[1].savings_percent_vs(&cmp.baseline);
        assert!(relaxed >= constrained - 1e-9, "relaxed {relaxed} vs constrained {constrained}");
        assert!(relaxed > 0.0, "price-conscious routing should save with elastic energy");
    }

    #[test]
    fn mean_prices_align_with_clusters() {
        let s = short_scenario();
        let means = s.mean_prices();
        assert_eq!(means.len(), 9);
        assert!(means.iter().all(|m| *m > 10.0 && *m < 200.0));
        let mut static_policy = s.static_cheapest_policy();
        let report = s.execute(&mut static_policy, RunOptions::new());
        assert_eq!(report.policy, "static-cheapest-hub");
    }

    #[test]
    fn synthetic_scenario_replays_weekly_profile() {
        let start = SimHour::from_date(2006, 2, 5);
        let s = Scenario::synthetic_over(5, HourRange::new(start, start.plus_hours(7 * 24)));
        assert_eq!(s.config.reallocate_every_steps, 12);
        assert_eq!(s.trace.num_steps(), 7 * 24 * 12);
        let report = s.execute(&mut NearestClusterPolicy::new(), RunOptions::new());
        assert!(report.total_cost_dollars > 0.0);
    }

    #[test]
    fn energy_model_override_changes_cost() {
        let s = short_scenario();
        let elastic =
            s.clone().with_energy(EnergyModelParams::optimistic_future()).baseline_report();
        let inelastic = s.with_energy(EnergyModelParams::no_power_management()).baseline_report();
        assert!(inelastic.total_cost_dollars > elastic.total_cost_dollars * 1.5);
    }

    #[test]
    fn reaction_delay_is_propagated() {
        let s = short_scenario().with_reaction_delay(6);
        let report = s.baseline_report();
        assert_eq!(report.reaction_delay_hours, 6);
    }
}
