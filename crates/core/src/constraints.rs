//! The calibrate → constrain → account pipeline (§4, §6.1).
//!
//! The paper's savings figures are measured under a hard rule: the
//! price-conscious router may not raise any cluster's 95th-percentile
//! bandwidth above the level observed under the *original* (baseline)
//! assignment — carriers bill on the 95th percentile of five-minute
//! samples, so exceeding it would trade electricity dollars for bandwidth
//! dollars. That turns every constrained experiment into a two-phase
//! pipeline:
//!
//! 1. **calibrate** — replay the baseline policy once, recording every
//!    cluster's five-minute load series (a [`LoadRecorder`] sink via
//!    [`RunOptions::record_loads`](crate::run::RunOptions::record_loads)
//!    on [`Simulation::execute`]), and derive the per-cluster 95th
//!    percentiles via
//!    [`BandwidthProfile::from_cluster_loads`](wattroute_workload::bandwidth::BandwidthProfile::from_cluster_loads);
//! 2. **constrain** — turn those levels (optionally scaled by a slack
//!    multiplier) into the [`ConstraintSet`] that constrained runs borrow;
//! 3. **account** — price the observed 95th percentiles under a
//!    [`BandwidthTariff`] so reports carry a bandwidth *bill* next to the
//!    electricity bill, and the optimizer's objective can weigh both.
//!
//! [`CalibratedScenario`] packages the pipeline for one [`Scenario`];
//! [`HubBandwidthCaps`] (re-exported here) carries the same calibration
//! across deployments for the placement optimizer.

use crate::report::SimulationReport;
use crate::run::RunOptions;
use crate::scenario::Scenario;
use crate::simulation::{LoadRecorder, Simulation, SimulationConfig};
use wattroute_geo::HubId;
use wattroute_routing::baseline::AkamaiLikePolicy;
use wattroute_routing::policy::RoutingPolicy;
use wattroute_workload::bandwidth::BandwidthProfile;
use wattroute_workload::trace::STEP_SECONDS;

pub use wattroute_routing::constraints::{ConstraintSet, HubBandwidthCaps, OverflowMode};

/// Steps in the 30-day month the tariff prorates against.
const STEPS_PER_MONTH: f64 = 30.0 * 24.0 * 3600.0 / STEP_SECONDS as f64;

/// A 95/5 bandwidth tariff: what a carrier charges per Mbps of
/// 95th-percentile traffic per 30-day month, plus the hits → megabits
/// conversion that maps the workload's hit rates onto wire bandwidth.
///
/// The bill for a run is prorated by its length:
/// `p95_hits/s × Mbit/hit × $/Mbps·month × run_months`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BandwidthTariff {
    /// Dollars per Mbps of 95th-percentile bandwidth per 30-day month.
    pub dollars_per_mbps_month: f64,
    /// Megabits transferred per hit (mean object size on the wire).
    pub megabits_per_hit: f64,
}

impl BandwidthTariff {
    /// Build a tariff.
    ///
    /// # Panics
    /// Panics on negative rates.
    pub fn new(dollars_per_mbps_month: f64, megabits_per_hit: f64) -> Self {
        assert!(dollars_per_mbps_month >= 0.0, "tariff must be non-negative");
        assert!(megabits_per_hit >= 0.0, "object size must be non-negative");
        Self { dollars_per_mbps_month, megabits_per_hit }
    }

    /// A paper-era CDN transit price: $10 per Mbps·month at the 95th
    /// percentile, 20 KB (0.16 Mbit) per hit.
    pub fn default_cdn() -> Self {
        Self::new(10.0, 0.16)
    }

    /// The bandwidth bill for one cluster over a run of `steps` five-minute
    /// steps, given its observed 95th-percentile hit rate.
    pub fn bill_dollars(&self, p95_hits_per_sec: f64, steps: usize) -> f64 {
        let p95_mbps = p95_hits_per_sec * self.megabits_per_hit;
        p95_mbps * self.dollars_per_mbps_month * (steps as f64 / STEPS_PER_MONTH)
    }
}

/// A scenario with its baseline calibration pass already run: the baseline
/// report, the observed per-cluster 95/5 bandwidth profile, and factories
/// for the constraint sets (positional or hub-keyed) that constrained runs
/// and searches need.
#[derive(Debug, Clone)]
pub struct CalibratedScenario {
    hub_ids: Vec<HubId>,
    baseline: SimulationReport,
    profile: BandwidthProfile,
}

impl CalibratedScenario {
    /// Run the calibration pass with the paper's baseline (the Akamai-like
    /// allocation) under the scenario's own configuration.
    pub fn calibrate(scenario: &Scenario) -> Self {
        Self::calibrate_with(scenario, &mut AkamaiLikePolicy::default())
    }

    /// Run the calibration pass with an arbitrary policy — the "original
    /// assignment" whose 95th percentiles become the caps.
    pub fn calibrate_with(scenario: &Scenario, policy: &mut dyn RoutingPolicy) -> Self {
        let mut recorder = LoadRecorder::new();
        let sim = Simulation::new(
            &scenario.clusters,
            &scenario.trace,
            &scenario.prices,
            scenario.config.clone(),
        );
        let baseline = sim.execute(policy, RunOptions::new().record_loads(&mut recorder));
        let profile = recorder
            .bandwidth_profile()
            .expect("a non-empty trace always yields per-cluster load series");
        Self { hub_ids: scenario.clusters.hub_ids(), baseline, profile }
    }

    /// The calibration run's report — the denominator of every
    /// savings-percent figure.
    pub fn baseline(&self) -> &SimulationReport {
        &self.baseline
    }

    /// The observed 95/5 bandwidth profile of the calibration run.
    pub fn profile(&self) -> &BandwidthProfile {
        &self.profile
    }

    /// The per-cluster 95th-percentile caps at multiplier 1.0 (the paper's
    /// "follow original 95/5 constraints" levels).
    pub fn p95_caps(&self) -> &[f64] {
        &self.profile.p95_hits_per_sec
    }

    /// Derive the constraint set for a constrained run: `base` with its
    /// bandwidth caps replaced by the calibrated 95th percentiles scaled
    /// by `cap_multiplier`. `1.0` is the paper's regime; larger
    /// multipliers model bandwidth slack; a non-finite multiplier removes
    /// the caps — the ∞ point of a savings-vs-slack curve *is* the
    /// unconstrained run.
    pub fn constraints(&self, base: &ConstraintSet, cap_multiplier: f64) -> ConstraintSet {
        base.clone()
            .with_bandwidth_caps(self.profile.p95_hits_per_sec.clone())
            .with_bandwidth_caps_scaled(cap_multiplier)
    }

    /// A full simulation configuration for a constrained run: `base` with
    /// its constraint set rewritten by [`Self::constraints`]. With a
    /// non-finite multiplier (and a bandwidth-relaxed `base`) the result
    /// equals `base`, so the ∞ point reproduces the unconstrained run
    /// byte-for-byte.
    pub fn constrained_config(
        &self,
        base: &SimulationConfig,
        cap_multiplier: f64,
    ) -> SimulationConfig {
        let mut config = base.clone();
        config.constraints = self.constraints(&base.constraints, cap_multiplier);
        config
    }

    /// The calibrated caps keyed by market hub (scaled by
    /// `cap_multiplier`), for constraining deployments *other* than the
    /// calibrated one — the placement optimizer resolves these against
    /// every candidate it visits.
    pub fn hub_caps(&self, cap_multiplier: f64) -> HubBandwidthCaps {
        HubBandwidthCaps::new(
            self.hub_ids
                .iter()
                .copied()
                .zip(self.profile.p95_hits_per_sec.iter().copied())
                .collect(),
        )
        .scaled(cap_multiplier)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wattroute_market::time::{HourRange, SimHour};
    use wattroute_routing::price_conscious::PriceConsciousPolicy;

    fn short_scenario() -> Scenario {
        let start = SimHour::from_date(2008, 12, 19);
        Scenario::custom_window(13, HourRange::new(start, start.plus_hours(2 * 24)))
    }

    #[test]
    fn tariff_prorates_by_run_length() {
        let tariff = BandwidthTariff::new(10.0, 0.16);
        // 1000 hits/s × 0.16 Mbit = 160 Mbps; one month = $1600.
        let month_steps = 30 * 24 * 12;
        assert!((tariff.bill_dollars(1000.0, month_steps) - 1600.0).abs() < 1e-9);
        // Half the steps, half the bill.
        assert!((tariff.bill_dollars(1000.0, month_steps / 2) - 800.0).abs() < 1e-9);
        assert_eq!(tariff.bill_dollars(0.0, month_steps), 0.0);
        let _ = BandwidthTariff::default_cdn();
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_tariff_rejected() {
        let _ = BandwidthTariff::new(-1.0, 0.16);
    }

    #[test]
    fn calibration_matches_the_baseline_reports_p95() {
        let s = short_scenario();
        let calibrated = CalibratedScenario::calibrate(&s);
        // The profile's p95 levels are exactly the baseline report's — one
        // quantile implementation, two consumers.
        for (cap, cluster) in calibrated.p95_caps().iter().zip(&calibrated.baseline().clusters) {
            assert_eq!(*cap, cluster.p95_hits_per_sec);
        }
        assert_eq!(calibrated.profile().len(), s.clusters.len());
        assert_eq!(calibrated.baseline().policy, "akamai-like");
    }

    #[test]
    fn constrained_config_scales_caps_and_infinite_multiplier_is_identity() {
        let s = short_scenario();
        let calibrated = CalibratedScenario::calibrate(&s);

        let follow = calibrated.constrained_config(&s.config, 1.0);
        assert_eq!(follow.constraints.bandwidth_caps(), Some(calibrated.p95_caps()));

        let slack = calibrated.constrained_config(&s.config, 1.5);
        let caps = slack.constraints.bandwidth_caps().unwrap();
        for (got, base) in caps.iter().zip(calibrated.p95_caps()) {
            assert!((got - base * 1.5).abs() < 1e-9);
        }

        // The ∞ point is *the* unconstrained configuration.
        assert_eq!(calibrated.constrained_config(&s.config, f64::INFINITY), s.config);
    }

    #[test]
    fn constrained_run_respects_caps_and_infinity_matches_unconstrained_bitwise() {
        let s = short_scenario();
        let calibrated = CalibratedScenario::calibrate(&s);
        let mut optimizer = PriceConsciousPolicy::with_distance_threshold(2500.0);

        let follow = s.execute(
            &mut optimizer,
            RunOptions::new().with_config(calibrated.constrained_config(&s.config, 1.0)),
        );
        assert!(follow.bandwidth_constrained);
        assert!(follow.respects_p95_caps(calibrated.p95_caps(), 0.05));

        let infinite = s.execute(
            &mut optimizer,
            RunOptions::new().with_config(calibrated.constrained_config(&s.config, f64::INFINITY)),
        );
        let relaxed = s.execute(&mut optimizer, RunOptions::new());
        assert_eq!(infinite, relaxed, "the ∞ point must reproduce the unconstrained run exactly");
        assert!(
            follow.total_cost_dollars >= relaxed.total_cost_dollars - 1e-6,
            "following 95/5 cannot be cheaper than ignoring it"
        );
    }

    #[test]
    fn concentrating_calibrations_with_zero_caps_behave_at_both_extremes() {
        // A static-cheapest calibration leaves most clusters unused, so
        // their calibrated caps are 0.0 — the two historical traps are
        // 0 × ∞ = NaN at infinite slack, and idle clusters counted as
        // "binding" every step at multiplier 1.0.
        let s = short_scenario();
        let mut policy = s.static_cheapest_policy();
        let calibrated = CalibratedScenario::calibrate_with(&s, &mut policy);
        assert!(calibrated.p95_caps().contains(&0.0), "calibration must concentrate");

        // Infinite slack relaxes everything, positionally and hub-keyed.
        assert_eq!(calibrated.constrained_config(&s.config, f64::INFINITY), s.config);
        let by_hub = calibrated.hub_caps(f64::INFINITY);
        let relaxed = by_hub.apply(&s.clusters, &s.config.constraints);
        assert!(!relaxed.is_bandwidth_constrained());

        // At 1.0× with a tariff, a cluster that served nothing has a zero
        // cap but zero binding hours — the constraint never shaped it.
        let config = calibrated
            .constrained_config(&s.config, 1.0)
            .with_bandwidth_tariff(BandwidthTariff::default_cdn());
        let report =
            s.execute(&mut s.static_cheapest_policy(), RunOptions::new().with_config(config));
        let idle: Vec<_> = report.clusters.iter().filter(|c| c.total_hits == 0.0).collect();
        assert!(!idle.is_empty(), "the concentrating policy must leave idle clusters");
        for cluster in idle {
            assert_eq!(cluster.bandwidth_cap_hits_per_sec, Some(0.0));
            assert_eq!(
                cluster.bandwidth_binding_hours, 0.0,
                "idle cluster {} must not count as binding",
                cluster.label
            );
        }
    }

    #[test]
    fn hub_caps_resolve_the_calibrated_deployment_to_its_own_caps() {
        let s = short_scenario();
        let calibrated = CalibratedScenario::calibrate(&s);
        let by_hub = calibrated.hub_caps(1.0);
        assert_eq!(by_hub.resolve(&s.clusters), calibrated.p95_caps());
        let scaled = calibrated.hub_caps(2.0);
        for (a, b) in scaled.resolve(&s.clusters).iter().zip(calibrated.p95_caps()) {
            assert!((a - 2.0 * b).abs() < 1e-9);
        }
    }
}
