//! Dependency-free JSON reading and writing for report types.
//!
//! The build environment pins external dependencies to offline stand-ins
//! (see `vendor/`), so reports serialize through this small hand-rolled
//! JSON layer instead of `serde_json`. It supports exactly the JSON subset
//! the report types need: objects, arrays, strings, IEEE-754 numbers,
//! booleans and null, with shortest-round-trip float formatting.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (always carried as `f64`).
    Number(f64),
    /// A string (unescaped).
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object. Keys are kept sorted for deterministic output.
    Object(BTreeMap<String, JsonValue>),
}

/// An error produced while parsing JSON text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset at which parsing failed.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

impl JsonValue {
    /// Parse JSON text into a value.
    pub fn parse(text: &str) -> Result<JsonValue, JsonError> {
        let mut p = Parser { text, bytes: text.as_bytes(), pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after JSON value"));
        }
        Ok(v)
    }

    /// Append this value's compact JSON encoding to a caller-owned buffer.
    ///
    /// The buffer is *not* cleared: callers that recycle one `String`
    /// across messages (`buf.clear()` then `write_to`) serialize with zero
    /// per-message allocations once the buffer reaches steady-state
    /// capacity — the daemon's per-connection reply loop does exactly
    /// this. [`fmt::Display`] (`to_string()`) remains the convenient
    /// one-shot form.
    pub fn write_to(&self, out: &mut String) {
        self.write(out);
    }

    fn write(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Number(x) => write_number(*x, out),
            JsonValue::String(s) => write_string(s, out),
            JsonValue::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            JsonValue::Object(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(key, out);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }

    /// The value as `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(x) => Some(*x),
            _ => None,
        }
    }

    /// The value as `bool`, if it is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as `&str`, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a slice, if it is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// A field of the value, if it is an object containing `key`.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(fields) => fields.get(key),
            _ => None,
        }
    }
}

impl fmt::Display for JsonValue {
    /// Formats as compact JSON text (so `to_string()` serializes).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

/// Build a [`JsonValue::Object`] from `(key, value)` pairs.
pub fn object<const N: usize>(fields: [(&str, JsonValue); N]) -> JsonValue {
    object_iter(fields)
}

/// Build a [`JsonValue::Object`] from a dynamically sized collection of
/// fields (the fixed-arity [`object`] covers the common literal case).
pub fn object_iter<'a>(fields: impl IntoIterator<Item = (&'a str, JsonValue)>) -> JsonValue {
    JsonValue::Object(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

/// Build a [`JsonValue::Array`] of numbers from a slice of floats.
pub fn number_array(xs: &[f64]) -> JsonValue {
    JsonValue::Array(xs.iter().map(|&x| JsonValue::Number(x)).collect())
}

fn write_number(x: f64, out: &mut String) {
    if x.is_finite() {
        // Rust's float Display is shortest-round-trip, which is exactly
        // what a lossless JSON encoding needs.
        use fmt::Write as _;
        let _ = write!(out, "{x}");
    } else {
        // JSON has no NaN/Infinity; encode as null like serde_json does.
        out.push_str("null");
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    text: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError { offset: self.pos, message: message.to_string() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", byte as char)))
        }
    }

    fn literal(&mut self, text: &str, value: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{text}'")))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        let mut fields = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(fields));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let code = self.hex4()?;
                            // Surrogate pairs are not needed by report data;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            continue;
                        }
                        _ => return Err(self.err("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character. `pos` only ever advances
                    // by whole characters, so slicing the source text here
                    // is on a char boundary and costs O(1).
                    let c = self.text[self.pos..].chars().next().expect("peeked a byte");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut code = 0u32;
        for _ in 0..4 {
            let b = self.peek().ok_or_else(|| self.err("truncated \\u escape"))?;
            let digit = (b as char).to_digit(16).ok_or_else(|| self.err("bad hex digit"))?;
            code = code * 16 + digit;
            self.pos += 1;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid UTF-8 in number"))?;
        text.parse::<f64>()
            .map(JsonValue::Number)
            .map_err(|_| JsonError { offset: start, message: format!("bad number '{text}'") })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars() {
        for text in ["null", "true", "false", "42", "-3.25", "\"hi\""] {
            let v = JsonValue::parse(text).unwrap();
            assert_eq!(v.to_string(), text);
        }
    }

    #[test]
    fn write_to_appends_and_matches_display() {
        let v = object([
            ("cmd", JsonValue::String("stats".into())),
            ("weights", number_array(&[1.0, 2.5])),
        ]);
        let mut buf = String::from("reply: ");
        v.write_to(&mut buf);
        assert_eq!(buf, format!("reply: {v}"), "write_to appends without clearing");
        buf.clear();
        v.write_to(&mut buf);
        assert_eq!(buf, v.to_string(), "recycled buffer serializes identically");
    }

    #[test]
    fn round_trips_nested_structures() {
        let v = object([
            ("name", JsonValue::String("nine \"clusters\"".into())),
            ("weights", number_array(&[1.0, 2.5, 1e-9])),
            ("ok", JsonValue::Bool(true)),
        ]);
        let text = v.to_string();
        assert_eq!(JsonValue::parse(&text).unwrap(), v);
    }

    #[test]
    fn floats_round_trip_exactly() {
        for &x in &[0.1, 1.0 / 3.0, 1e300, -2.2250738585072014e-308, 12345.6789] {
            let text = JsonValue::Number(x).to_string();
            assert_eq!(JsonValue::parse(&text).unwrap().as_f64().unwrap(), x);
        }
    }

    #[test]
    fn parses_whitespace_and_escapes() {
        let v = JsonValue::parse(" { \"a\\n\" : [ 1 , 2 ] , \"b\" : \"\\u0041\" } ").unwrap();
        assert_eq!(v.get("a\n").unwrap().as_array().unwrap().len(), 2);
        assert_eq!(v.get("b").unwrap().as_str().unwrap(), "A");
    }

    #[test]
    fn rejects_malformed_input() {
        for text in ["", "{", "[1,", "tru", "\"unterminated", "{\"a\" 1}", "1 2"] {
            assert!(JsonValue::parse(text).is_err(), "should reject {text:?}");
        }
    }

    #[test]
    fn non_finite_numbers_become_null() {
        assert_eq!(JsonValue::Number(f64::NAN).to_string(), "null");
        assert_eq!(JsonValue::Number(f64::INFINITY).to_string(), "null");
    }
}
