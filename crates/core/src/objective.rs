//! Cost-vs-QoS objectives for deployment search.
//!
//! The deployment optimizer (`crates/optimizer`) needs a single scalar to
//! minimize, but "good placement" is not just the electricity bill: a
//! deployment that parks all its capacity at the cheapest hub saves money
//! by turning traffic away and serving the rest from far away. Following
//! the cost-vs-QoS framing of the dynamic-pricing literature, an
//! [`Objective`] scores a [`SimulationReport`] as
//!
//! ```text
//! total = energy_cost
//!       + sla_penalty_per_mhit      × (rejected + overflow hits, in M)
//!       + distance_penalty_per_mhit × served Mhits × km beyond the free radius
//!       + bandwidth_weight          × 95/5 bandwidth bill
//! ```
//!
//! The SLA term consumes the engine's explicit over-capacity accounting —
//! [`rejected_hits`](crate::report::ClusterReport::rejected_hits) under
//! [`OverflowMode::Reject`](wattroute_routing::constraints::OverflowMode) or
//! `overflow_hits` under the default billing mode — so under-provisioned
//! candidates price their unserved demand instead of looking cheap. The
//! distance term prices the performance cost of chasing cheap power with
//! long routes (the paper's §6.2 distance-threshold discussion, made a
//! soft penalty). The bandwidth term consumes the 95/5 bandwidth bill a
//! [`BandwidthTariff`](crate::constraints::BandwidthTariff) priced into
//! the report
//! ([`total_bandwidth_cost_dollars`](SimulationReport::total_bandwidth_cost_dollars))
//! — the §4 trade-off made explicit: shifting load chases cheap
//! electricity but raises some cluster's 95th percentile, and the carrier
//! bills that. Every term is in dollars, so [`ObjectiveTerms::total`] is
//! directly comparable to a report's `total_cost_dollars`.
//!
//! When a candidate is evaluated under the Monte Carlo layer
//! ([`Objective::score_distribution`]) a fifth, risk-adjusted term is
//! available: `cvar_weight × (CVaR_α(bill) − mean bill)`, charging the
//! deployment for how much worse its tail price regimes are than its
//! average — so the optimizer can prefer robust splits over fragile ones.
//! Single-report scoring never pays it, so every deterministic score is
//! unchanged.

use crate::json::{self, JsonValue};
use crate::montecarlo::SavingsDistribution;
use crate::report::{ReportDecodeError, SimulationReport};

/// Weights turning a [`SimulationReport`] into a scalar objective.
#[derive(Debug, Clone, PartialEq)]
pub struct Objective {
    /// Dollars charged per million hits of unserved (rejected or
    /// overflowed) demand.
    pub sla_penalty_per_mhit: f64,
    /// Dollars charged per million served hits, per kilometre of
    /// demand-weighted mean client–server distance beyond
    /// [`Self::free_distance_km`].
    pub distance_penalty_per_mhit_km: f64,
    /// Mean distance (km) under which the distance term charges nothing.
    pub free_distance_km: f64,
    /// Multiplier on the report's 95/5 bandwidth bill
    /// ([`SimulationReport::total_bandwidth_cost_dollars`]). The bill is
    /// already in dollars, so `1.0` prices it at face value; `0.0` ignores
    /// bandwidth; larger values model expensive transit. Untariffed runs
    /// carry a zero bill, so every pre-tariff score is unchanged.
    pub bandwidth_weight: f64,
    /// Multiplier on the Monte Carlo bill's tail spread,
    /// `CVaR_α(bill) − mean(bill)` (see
    /// [`SavingsDistribution::bill_cvar_dollars`]). Only
    /// [`Self::score_distribution`] pays this term — a single report has no
    /// distribution — so deterministic scores never change. `0.0` is
    /// risk-neutral; `1.0` treats a dollar of tail exposure like a dollar
    /// of expected bill.
    pub cvar_weight: f64,
}

impl Objective {
    /// Pure electricity cost: no SLA or distance terms. With this
    /// objective the optimizer reproduces the paper's "cheapest placement"
    /// reading of §6.3.
    pub fn energy_only() -> Self {
        Self {
            sla_penalty_per_mhit: 0.0,
            distance_penalty_per_mhit_km: 0.0,
            free_distance_km: 0.0,
            bandwidth_weight: 0.0,
            cvar_weight: 0.0,
        }
    }

    /// A balanced default: unserved demand is charged well above the
    /// revenue any hit could plausibly generate (so capacity-starving a
    /// deployment never pays), and distance stays free inside the paper's
    /// preferred 1500 km radius.
    pub fn default_qos() -> Self {
        Self {
            sla_penalty_per_mhit: 50.0,
            distance_penalty_per_mhit_km: 0.0,
            free_distance_km: 1500.0,
            bandwidth_weight: 1.0,
            cvar_weight: 0.0,
        }
    }

    /// Set the SLA penalty in dollars per million unserved hits.
    pub fn with_sla_penalty_per_mhit(mut self, dollars: f64) -> Self {
        assert!(dollars >= 0.0, "penalties must be non-negative");
        self.sla_penalty_per_mhit = dollars;
        self
    }

    /// Set the distance penalty in dollars per million served hits per km
    /// of mean distance beyond the free radius.
    pub fn with_distance_penalty_per_mhit_km(
        mut self,
        dollars: f64,
        free_distance_km: f64,
    ) -> Self {
        assert!(dollars >= 0.0, "penalties must be non-negative");
        assert!(free_distance_km >= 0.0, "free radius must be non-negative");
        self.distance_penalty_per_mhit_km = dollars;
        self.free_distance_km = free_distance_km;
        self
    }

    /// Set the multiplier on the report's 95/5 bandwidth bill.
    pub fn with_bandwidth_weight(mut self, weight: f64) -> Self {
        assert!(weight >= 0.0, "penalties must be non-negative");
        self.bandwidth_weight = weight;
        self
    }

    /// Set the multiplier on the Monte Carlo bill's tail spread
    /// (`CVaR_α − mean`). Only [`Self::score_distribution`] pays the term.
    pub fn with_cvar_weight(mut self, weight: f64) -> Self {
        assert!(weight >= 0.0, "penalties must be non-negative");
        self.cvar_weight = weight;
        self
    }

    /// Score one report.
    pub fn score(&self, report: &SimulationReport) -> ObjectiveTerms {
        // Exactly one of the two buckets is nonzero per run (the engine
        // routes over-capacity demand into one or the other depending on
        // the overflow mode); summing handles both without mode plumbing.
        let unserved_mhits = (report.total_rejected_hits + report.total_overflow_hits) / 1.0e6;
        // Under BillAtCapacity `total_hits` still includes the overflow;
        // subtract it so the distance term weights genuinely served
        // traffic and both overflow modes rank candidates consistently
        // (under Reject the engine already excluded rejected hits).
        let served_mhits: f64 = (report.clusters.iter().map(|c| c.total_hits).sum::<f64>()
            - report.total_overflow_hits)
            / 1.0e6;
        let excess_km = (report.mean_distance_km - self.free_distance_km).max(0.0);
        ObjectiveTerms {
            energy_cost_dollars: report.total_cost_dollars,
            sla_penalty_dollars: self.sla_penalty_per_mhit * unserved_mhits,
            distance_penalty_dollars: self.distance_penalty_per_mhit_km * served_mhits * excess_km,
            bandwidth_cost_dollars: self.bandwidth_weight * report.total_bandwidth_cost_dollars,
            risk_premium_dollars: 0.0,
        }
    }

    /// Score a Monte Carlo [`SavingsDistribution`]: the expectation of each
    /// per-path term (so a one-path distribution scores exactly like
    /// [`Self::score`] of that path's report), plus the risk premium
    /// `cvar_weight × (CVaR_α(bill) − mean bill)` charging the candidate
    /// for its tail exposure across price regimes.
    pub fn score_distribution(&self, dist: &SavingsDistribution) -> ObjectiveTerms {
        let n = dist.per_path.len() as f64;
        let mean_of = |f: &dyn Fn(&crate::montecarlo::PathOutcome) -> f64| {
            dist.per_path.iter().map(f).sum::<f64>() / n
        };
        let unserved_mhits = mean_of(&|p| p.unserved_hits) / 1.0e6;
        let distance = mean_of(&|p| {
            (p.served_hits / 1.0e6) * (p.mean_distance_km - self.free_distance_km).max(0.0)
        });
        ObjectiveTerms {
            energy_cost_dollars: dist.bill.mean,
            sla_penalty_dollars: self.sla_penalty_per_mhit * unserved_mhits,
            distance_penalty_dollars: self.distance_penalty_per_mhit_km * distance,
            bandwidth_cost_dollars: self.bandwidth_weight * mean_of(&|p| p.bandwidth_cost_dollars),
            risk_premium_dollars: self.cvar_weight
                * (dist.bill_cvar_dollars - dist.bill.mean).max(0.0),
        }
    }
}

impl Default for Objective {
    fn default() -> Self {
        Self::default_qos()
    }
}

/// The per-term breakdown of one scored report (all dollars).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ObjectiveTerms {
    /// The report's electricity cost.
    pub energy_cost_dollars: f64,
    /// Penalty on unserved (rejected or overflowed) demand.
    pub sla_penalty_dollars: f64,
    /// Penalty on demand-weighted mean distance beyond the free radius.
    pub distance_penalty_dollars: f64,
    /// The (weighted) 95/5 bandwidth bill. Zero on untariffed runs; the
    /// JSON encoding omits zero values so pre-tariff score JSON (and the
    /// optimizer golden) is byte-identical.
    pub bandwidth_cost_dollars: f64,
    /// The CVaR risk premium. Zero on single-report scores and under a
    /// zero [`Objective::cvar_weight`]; the JSON encoding omits zero
    /// values so risk-neutral score JSON is byte-identical.
    pub risk_premium_dollars: f64,
}

impl ObjectiveTerms {
    /// The scalar the optimizer minimizes.
    pub fn total(&self) -> f64 {
        self.energy_cost_dollars
            + self.sla_penalty_dollars
            + self.distance_penalty_dollars
            + self.bandwidth_cost_dollars
            + self.risk_premium_dollars
    }

    /// Encode as a JSON value.
    pub fn to_json_value(&self) -> JsonValue {
        let mut fields = vec![
            ("energy_cost_dollars", JsonValue::Number(self.energy_cost_dollars)),
            ("sla_penalty_dollars", JsonValue::Number(self.sla_penalty_dollars)),
            ("distance_penalty_dollars", JsonValue::Number(self.distance_penalty_dollars)),
        ];
        if self.bandwidth_cost_dollars != 0.0 {
            fields.push(("bandwidth_cost_dollars", JsonValue::Number(self.bandwidth_cost_dollars)));
        }
        if self.risk_premium_dollars != 0.0 {
            fields.push(("risk_premium_dollars", JsonValue::Number(self.risk_premium_dollars)));
        }
        fields.push(("total_dollars", JsonValue::Number(self.total())));
        json::object_iter(fields)
    }

    /// Decode from a JSON value produced by [`Self::to_json_value`] (the
    /// redundant `total_dollars` field is ignored).
    pub fn from_json_value(v: &JsonValue) -> Result<Self, ReportDecodeError> {
        let num = |key: &str| {
            v.get(key)
                .and_then(JsonValue::as_f64)
                .ok_or_else(|| ReportDecodeError::new(format!("missing number '{key}'")))
        };
        Ok(Self {
            energy_cost_dollars: num("energy_cost_dollars")?,
            sla_penalty_dollars: num("sla_penalty_dollars")?,
            distance_penalty_dollars: num("distance_penalty_dollars")?,
            // Absent in pre-tariff scores (and whenever the bill is zero).
            bandwidth_cost_dollars: v
                .get("bandwidth_cost_dollars")
                .and_then(JsonValue::as_f64)
                .unwrap_or(0.0),
            // Absent in risk-neutral (and all pre-Monte-Carlo) scores.
            risk_premium_dollars: v
                .get("risk_premium_dollars")
                .and_then(JsonValue::as_f64)
                .unwrap_or(0.0),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::{ClusterReport, DistanceHistogram};

    fn report(
        cost: f64,
        overflow: f64,
        rejected: f64,
        mean_km: f64,
        hits: f64,
    ) -> SimulationReport {
        SimulationReport {
            policy: "test".into(),
            steps: 1,
            reaction_delay_hours: 0,
            bandwidth_constrained: false,
            total_cost_dollars: cost,
            total_energy_mwh: 1.0,
            total_overflow_hits: overflow,
            total_rejected_hits: rejected,
            total_bandwidth_binding_hours: 0.0,
            total_bandwidth_cost_dollars: 0.0,
            delay_clamped_hours: 0,
            clusters: vec![ClusterReport {
                label: "X".into(),
                cost_dollars: cost,
                energy_mwh: 1.0,
                mean_utilization: 0.3,
                p95_hits_per_sec: 0.0,
                peak_hits_per_sec: 0.0,
                total_hits: hits,
                overflow_hits: overflow,
                rejected_hits: rejected,
                bandwidth_cap_hits_per_sec: None,
                bandwidth_binding_hours: 0.0,
                bandwidth_cost_dollars: 0.0,
            }],
            mean_distance_km: mean_km,
            p99_distance_km: mean_km * 2.0,
            distances: DistanceHistogram::default_resolution(),
            tiers: None,
        }
    }

    #[test]
    fn energy_only_is_just_the_bill() {
        let r = report(1234.0, 5.0e6, 0.0, 4000.0, 1.0e9);
        let terms = Objective::energy_only().score(&r);
        assert_eq!(terms.total(), 1234.0);
        assert_eq!(terms.sla_penalty_dollars, 0.0);
        assert_eq!(terms.distance_penalty_dollars, 0.0);
    }

    #[test]
    fn sla_penalty_prices_both_overflow_and_rejections() {
        let objective = Objective::energy_only().with_sla_penalty_per_mhit(10.0);
        let overflowing = report(100.0, 3.0e6, 0.0, 100.0, 1.0e9);
        let rejecting = report(100.0, 0.0, 3.0e6, 100.0, 1.0e9);
        for r in [overflowing, rejecting] {
            let terms = objective.score(&r);
            assert!((terms.sla_penalty_dollars - 30.0).abs() < 1e-12);
            assert!((terms.total() - 130.0).abs() < 1e-12);
        }
    }

    #[test]
    fn distance_penalty_charges_only_beyond_the_free_radius() {
        let objective = Objective::energy_only().with_distance_penalty_per_mhit_km(0.01, 1000.0);
        let near = objective.score(&report(100.0, 0.0, 0.0, 900.0, 2.0e9));
        assert_eq!(near.distance_penalty_dollars, 0.0);
        let far = objective.score(&report(100.0, 0.0, 0.0, 1300.0, 2.0e9));
        // 2000 Mhits × 300 km × $0.01 = $6000.
        assert!((far.distance_penalty_dollars - 6000.0).abs() < 1e-9);
    }

    #[test]
    fn both_overflow_modes_score_identically() {
        // The same physical situation — 2.0e9 hits served, 3.0e6 turned
        // away — reported under each mode: BillAtCapacity includes the
        // overflow in total_hits, Reject excludes it. The objective must
        // not care which accounting the run used.
        let objective = Objective::energy_only()
            .with_sla_penalty_per_mhit(10.0)
            .with_distance_penalty_per_mhit_km(0.01, 1000.0);
        let billed = objective.score(&report(100.0, 3.0e6, 0.0, 1300.0, 2.0e9 + 3.0e6));
        let rejecting = objective.score(&report(100.0, 0.0, 3.0e6, 1300.0, 2.0e9));
        assert_eq!(billed, rejecting);
        assert!((billed.sla_penalty_dollars - 30.0).abs() < 1e-9);
        // 2000 Mhits genuinely served × 300 km × $0.01 = $6000.
        assert!((billed.distance_penalty_dollars - 6000.0).abs() < 1e-6);
    }

    #[test]
    fn bandwidth_term_prices_the_95_5_bill() {
        let mut r = report(100.0, 0.0, 0.0, 100.0, 1.0e9);
        r.total_bandwidth_cost_dollars = 40.0;
        // energy_only ignores bandwidth entirely.
        assert_eq!(Objective::energy_only().score(&r).total(), 100.0);
        // default_qos prices the bill at face value.
        let terms = Objective::default_qos().score(&r);
        assert_eq!(terms.bandwidth_cost_dollars, 40.0);
        assert_eq!(terms.total(), 140.0);
        // An explicit weight scales it.
        let heavy = Objective::energy_only().with_bandwidth_weight(2.5).score(&r);
        assert_eq!(heavy.bandwidth_cost_dollars, 100.0);
    }

    #[test]
    fn terms_round_trip_through_json() {
        let terms = ObjectiveTerms {
            energy_cost_dollars: 12.5,
            sla_penalty_dollars: 3.25,
            distance_penalty_dollars: 0.125,
            bandwidth_cost_dollars: 0.0,
            risk_premium_dollars: 0.0,
        };
        let v = terms.to_json_value();
        assert_eq!(v.get("total_dollars").and_then(JsonValue::as_f64), Some(terms.total()));
        // A zero bandwidth bill is omitted, keeping pre-tariff JSON stable.
        assert!(v.get("bandwidth_cost_dollars").is_none());
        // Ditto a zero risk premium, keeping risk-neutral JSON stable.
        assert!(v.get("risk_premium_dollars").is_none());
        assert_eq!(ObjectiveTerms::from_json_value(&v).unwrap(), terms);

        let billed = ObjectiveTerms { bandwidth_cost_dollars: 7.5, ..terms };
        let v = billed.to_json_value();
        assert_eq!(v.get("bandwidth_cost_dollars").and_then(JsonValue::as_f64), Some(7.5));
        assert_eq!(ObjectiveTerms::from_json_value(&v).unwrap(), billed);

        let risky = ObjectiveTerms { risk_premium_dollars: 2.5, ..terms };
        let v = risky.to_json_value();
        assert_eq!(v.get("risk_premium_dollars").and_then(JsonValue::as_f64), Some(2.5));
        assert_eq!(v.get("total_dollars").and_then(JsonValue::as_f64), Some(terms.total() + 2.5));
        assert_eq!(ObjectiveTerms::from_json_value(&v).unwrap(), risky);
    }

    fn toy_distribution(bills: &[f64]) -> crate::montecarlo::SavingsDistribution {
        use crate::montecarlo::{BandSummary, PathOutcome, SavingsDistribution};
        let per_path: Vec<PathOutcome> = bills
            .iter()
            .enumerate()
            .map(|(k, &bill)| PathOutcome {
                path: k as u64,
                seed: k as u64,
                cost_dollars: bill,
                baseline_cost_dollars: bill * 2.0,
                savings_percent: 50.0,
                unserved_hits: 2.0e6,
                served_hits: 1.0e9,
                mean_distance_km: 1300.0,
                bandwidth_cost_dollars: 4.0,
            })
            .collect();
        SavingsDistribution {
            master_seed: 0,
            first_path: 0,
            n_paths: per_path.len(),
            cvar_alpha: 0.95,
            policy: "test".into(),
            baseline: "base".into(),
            bill: BandSummary::from_samples(bills),
            baseline_bill: BandSummary::from_samples(bills),
            savings_percent: BandSummary::from_samples(&vec![50.0; bills.len()]),
            bill_cvar_dollars: wattroute_stats::cvar(bills, 0.95).unwrap(),
            clusters: vec![],
            per_path,
        }
    }

    #[test]
    fn distribution_score_averages_per_path_terms() {
        let bills: Vec<f64> = (1..=100).map(f64::from).collect();
        let dist = toy_distribution(&bills);
        let objective = Objective::energy_only()
            .with_sla_penalty_per_mhit(10.0)
            .with_distance_penalty_per_mhit_km(0.01, 1000.0)
            .with_bandwidth_weight(2.0);
        let terms = objective.score_distribution(&dist);
        assert!((terms.energy_cost_dollars - 50.5).abs() < 1e-9, "mean bill of 1..=100");
        assert!((terms.sla_penalty_dollars - 20.0).abs() < 1e-9, "2 Mhits unserved × $10");
        // 1000 Mhits × 300 km beyond the radius × $0.01.
        assert!((terms.distance_penalty_dollars - 3000.0).abs() < 1e-9);
        assert!((terms.bandwidth_cost_dollars - 8.0).abs() < 1e-9);
        // Risk-neutral by default, even though the tail is real.
        assert_eq!(terms.risk_premium_dollars, 0.0);
    }

    #[test]
    fn cvar_weight_charges_the_tail_spread() {
        let bills: Vec<f64> = (1..=100).map(f64::from).collect();
        let dist = toy_distribution(&bills);
        let neutral = Objective::energy_only().score_distribution(&dist);
        let averse = Objective::energy_only().with_cvar_weight(2.0).score_distribution(&dist);
        // CVaR_0.95 of 1..=100 is exactly 98; the premium is 2 × (98 − 50.5).
        assert!((averse.risk_premium_dollars - 2.0 * (98.0 - 50.5)).abs() < 1e-9);
        assert!((averse.total() - neutral.total() - 95.0).abs() < 1e-9);
        assert_eq!(neutral.risk_premium_dollars, 0.0);
    }
}
