//! Parallel scenario sweeps over a shared compiled trace.
//!
//! The paper's headline figures (15–20) all sweep the price-conscious
//! router across a grid of what-ifs — distance thresholds, reaction delays,
//! elasticity models, bandwidth regimes — and every grid point is a full
//! trace replay. A [`ScenarioSweep`] runs such a grid as one unit: the
//! deployment, trace, and per-delay [`PriceTable`]s are compiled once and
//! shared (immutably) across all runs, and the runs execute on a small pool
//! of scoped worker threads. Results come back as a [`SweepReport`], which
//! serializes through the same dependency-free JSON module as individual
//! [`SimulationReport`]s — CI diffs one against a golden file so engine
//! refactors cannot silently change results.
//!
//! ```
//! use wattroute::prelude::*;
//! use wattroute::sweep::ScenarioSweep;
//!
//! let start = SimHour::from_date(2008, 12, 19);
//! let scenario = Scenario::custom_window(7, HourRange::new(start, start.plus_hours(24)));
//! let mut sweep = ScenarioSweep::new(&scenario.clusters, &scenario.trace, &scenario.prices);
//! for threshold in [0.0, 1500.0] {
//!     sweep.add_point(format!("t{threshold}"), scenario.config.clone(), move || {
//!         PriceConsciousPolicy::with_distance_threshold(threshold)
//!     });
//! }
//! let report = sweep.run();
//! assert_eq!(report.runs.len(), 2);
//! assert!(report.get("t1500").unwrap().total_cost_dollars > 0.0);
//! ```

use crate::json::{self, JsonValue};
use crate::report::{ReportDecodeError, SimulationReport};
use crate::simulation::{step_coverage, Simulation, SimulationConfig};
use std::borrow::Cow;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use wattroute_market::price_table::PriceTable;
use wattroute_market::types::PriceSet;
use wattroute_routing::policy::RoutingPolicy;
use wattroute_workload::trace::Trace;
use wattroute_workload::ClusterSet;

/// Builds a fresh policy instance for one sweep run. Factories (not policy
/// instances) are what the grid stores, because runs execute concurrently
/// and policies are stateful (`allocate` takes `&mut self`).
pub type PolicyFactory = Box<dyn Fn() -> Box<dyn RoutingPolicy> + Send + Sync>;

/// One grid point: a label, a simulation configuration, and the policy to
/// run under it.
pub struct SweepPoint {
    /// Stable label identifying the point in the [`SweepReport`].
    pub label: String,
    /// The configuration for this run.
    pub config: SimulationConfig,
    /// Factory for the policy to run.
    pub policy: PolicyFactory,
}

/// A grid of simulation runs over one (deployment, trace, prices) triple,
/// executed on a worker pool with the compiled price tables shared.
pub struct ScenarioSweep<'a> {
    clusters: &'a ClusterSet,
    trace: &'a Trace,
    prices: &'a PriceSet,
    points: Vec<SweepPoint>,
    threads: Option<usize>,
}

impl<'a> ScenarioSweep<'a> {
    /// Start an empty sweep over a deployment, trace, and price set.
    pub fn new(clusters: &'a ClusterSet, trace: &'a Trace, prices: &'a PriceSet) -> Self {
        Self { clusters, trace, prices, points: Vec::new(), threads: None }
    }

    /// Pin the worker-pool size (default: available parallelism, capped by
    /// the number of grid points).
    pub fn with_threads(mut self, threads: usize) -> Self {
        assert!(threads >= 1, "worker pool needs at least one thread");
        self.threads = Some(threads);
        self
    }

    /// Add one grid point.
    pub fn add_point<F, P>(&mut self, label: impl Into<String>, config: SimulationConfig, policy: F)
    where
        F: Fn() -> P + Send + Sync + 'static,
        P: RoutingPolicy + 'static,
    {
        self.points.push(SweepPoint {
            label: label.into(),
            config,
            policy: Box::new(move || Box::new(policy())),
        });
    }

    /// Add a pre-boxed grid point (for heterogeneous policy grids).
    pub fn add_boxed_point(
        &mut self,
        label: impl Into<String>,
        config: SimulationConfig,
        policy: PolicyFactory,
    ) {
        self.points.push(SweepPoint { label: label.into(), config, policy });
    }

    /// Number of grid points queued.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the grid is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Compile shared price tables and execute every grid point, in
    /// parallel, returning reports in grid order.
    pub fn run(self) -> SweepReport {
        let range = step_coverage(self.trace);

        // One compiled table per distinct reaction delay, shared by every
        // run with that delay.
        let mut tables: BTreeMap<u64, PriceTable> = BTreeMap::new();
        for point in &self.points {
            tables.entry(point.config.reaction_delay_hours).or_insert_with(|| {
                PriceTable::build(
                    self.prices,
                    &self.clusters.hub_ids(),
                    range,
                    point.config.reaction_delay_hours,
                )
            });
        }

        let workers = self
            .threads
            .unwrap_or_else(|| std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1))
            .clamp(1, self.points.len().max(1));

        let mut slots: Vec<Option<SweepRun>> = Vec::new();
        slots.resize_with(self.points.len(), || None);
        let results = Mutex::new(slots);
        let next = AtomicUsize::new(0);
        let points = &self.points;
        let tables_ref = &tables;
        let (clusters, trace) = (self.clusters, self.trace);

        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= points.len() {
                        break;
                    }
                    let point = &points[i];
                    let table = &tables_ref[&point.config.reaction_delay_hours];
                    let sim = Simulation::with_price_table(
                        clusters,
                        trace,
                        Cow::Borrowed(table),
                        point.config.clone(),
                    );
                    let mut policy = (point.policy)();
                    let report = sim.run(policy.as_mut());
                    let run = SweepRun { label: point.label.clone(), report };
                    results.lock().expect("no poisoned runs")[i] = Some(run);
                });
            }
        });

        let runs = results
            .into_inner()
            .expect("no poisoned runs")
            .into_iter()
            .map(|slot| slot.expect("every grid point ran"))
            .collect();
        SweepReport { runs }
    }
}

/// One completed sweep run.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepRun {
    /// The grid point's label.
    pub label: String,
    /// The simulation report it produced.
    pub report: SimulationReport,
}

/// All runs of a sweep, in grid order.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepReport {
    /// One entry per grid point, in the order the points were added.
    pub runs: Vec<SweepRun>,
}

impl SweepReport {
    /// The report for a labelled grid point, if present.
    pub fn get(&self, label: &str) -> Option<&SimulationReport> {
        self.runs.iter().find(|r| r.label == label).map(|r| &r.report)
    }

    /// Serialize to a compact JSON string.
    pub fn to_json(&self) -> String {
        self.to_json_value().to_string()
    }

    /// Encode as a JSON value.
    pub fn to_json_value(&self) -> JsonValue {
        json::object([(
            "runs",
            JsonValue::Array(
                self.runs
                    .iter()
                    .map(|r| {
                        json::object([
                            ("label", JsonValue::String(r.label.clone())),
                            ("report", r.report.to_json_value()),
                        ])
                    })
                    .collect(),
            ),
        )])
    }

    /// Deserialize from JSON text produced by [`Self::to_json`].
    pub fn from_json(text: &str) -> Result<Self, ReportDecodeError> {
        let v = JsonValue::parse(text)?;
        let runs = v
            .get("runs")
            .and_then(JsonValue::as_array)
            .ok_or_else(|| ReportDecodeError::new("missing 'runs' array"))?
            .iter()
            .map(|entry| {
                let label = entry
                    .get("label")
                    .and_then(JsonValue::as_str)
                    .ok_or_else(|| ReportDecodeError::new("run missing 'label'"))?
                    .to_string();
                let report = SimulationReport::from_json_value(
                    entry
                        .get("report")
                        .ok_or_else(|| ReportDecodeError::new("run missing 'report'"))?,
                )?;
                Ok(SweepRun { label, report })
            })
            .collect::<Result<Vec<_>, ReportDecodeError>>()?;
        Ok(Self { runs })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Scenario;
    use wattroute_market::time::{HourRange, SimHour};
    use wattroute_routing::baseline::AkamaiLikePolicy;
    use wattroute_routing::price_conscious::PriceConsciousPolicy;

    fn short_scenario() -> Scenario {
        let start = SimHour::from_date(2008, 12, 19);
        Scenario::custom_window(17, HourRange::new(start, start.plus_hours(36)))
    }

    #[test]
    fn sweep_matches_sequential_runs_exactly() {
        let s = short_scenario();
        let thresholds = [0.0, 1000.0, 2000.0];

        let mut sweep = ScenarioSweep::new(&s.clusters, &s.trace, &s.prices);
        sweep.add_point("baseline", s.config.clone(), AkamaiLikePolicy::default);
        for t in thresholds {
            sweep.add_point(format!("t{t}"), s.config.clone(), move || {
                PriceConsciousPolicy::with_distance_threshold(t)
            });
        }
        let report = sweep.run();
        assert_eq!(report.runs.len(), 4);

        let sequential_baseline = s.run(&mut AkamaiLikePolicy::default());
        assert_eq!(report.runs[0].report, sequential_baseline);
        for (i, t) in thresholds.iter().enumerate() {
            let sequential = s.run(&mut PriceConsciousPolicy::with_distance_threshold(*t));
            assert_eq!(&report.runs[i + 1].report, &sequential, "threshold {t}");
        }
    }

    #[test]
    fn sweep_shares_tables_across_delays_and_respects_order() {
        let s = short_scenario();
        let mut sweep = ScenarioSweep::new(&s.clusters, &s.trace, &s.prices).with_threads(2);
        for delay in [0u64, 1, 1, 6] {
            sweep.add_point(
                format!("d{delay}-{}", sweep.len()),
                s.config.clone().with_reaction_delay(delay),
                || PriceConsciousPolicy::with_distance_threshold(1500.0),
            );
        }
        let report = sweep.run();
        assert_eq!(report.runs.len(), 4);
        // Grid order is preserved regardless of which worker finished first.
        assert!(report.runs[0].label.starts_with("d0"));
        assert!(report.runs[3].label.starts_with("d6"));
        // Same-delay runs are byte-identical (shared table, same policy).
        assert_eq!(report.runs[1].report, report.runs[2].report);
        // Delay changes routing and therefore cost.
        assert_ne!(
            report.runs[0].report.total_cost_dollars,
            report.runs[3].report.total_cost_dollars
        );
    }

    #[test]
    fn sweep_report_round_trips_through_json() {
        let s = short_scenario();
        let mut sweep = ScenarioSweep::new(&s.clusters, &s.trace, &s.prices);
        sweep.add_point("only", s.config.clone(), AkamaiLikePolicy::default);
        let report = sweep.run();
        let json = report.to_json();
        let back = SweepReport::from_json(&json).expect("round trip");
        assert_eq!(report, back);
        assert!(report.get("only").is_some());
        assert!(report.get("missing").is_none());
    }

    #[test]
    fn empty_sweep_is_fine() {
        let s = short_scenario();
        let sweep = ScenarioSweep::new(&s.clusters, &s.trace, &s.prices);
        assert!(sweep.is_empty());
        let report = sweep.run();
        assert!(report.runs.is_empty());
    }
}
